module pramemu

go 1.24
