// Command routebench runs a single routing experiment with explicit
// parameters and prints one line of statistics — the interactive
// companion to cmd/tables for exploring the routing algorithms.
//
// Examples:
//
//	routebench -net star -n 6 -workload perm
//	routebench -net mesh -n 128 -workload transpose -alg greedy
//	routebench -net shuffle -n 5 -workload relation -trials 10
//	routebench -net butterfly -n 12 -workload bitrev -skipphase1
//	routebench -net star -n 7 -workload relation -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pramemu/internal/hypercube"
	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/shuffle"
	"pramemu/internal/simnet"
	"pramemu/internal/star"
	"pramemu/internal/workload"
)

// config carries one fully parsed invocation.
type config struct {
	net        string
	n          int
	workload   string
	alg        string
	disc       string
	locality   int
	trials     int
	seed       uint64
	skipPhase1 bool
	workers    int
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.net, "net", "star", "network: star, shuffle, butterfly, hypercube, mesh")
	flag.IntVar(&cfg.n, "n", 5, "network size parameter (star n, shuffle n, butterfly/hypercube dimension, mesh side)")
	flag.StringVar(&cfg.workload, "workload", "perm", "workload: perm, relation, bitrev, transpose, local, hotspot")
	flag.StringVar(&cfg.alg, "alg", "threestage", "mesh algorithm: threestage, vb, greedy")
	flag.StringVar(&cfg.disc, "disc", "furthest", "mesh discipline: furthest, fifo")
	flag.IntVar(&cfg.locality, "d", 8, "locality distance for -workload local")
	flag.IntVar(&cfg.trials, "trials", 5, "number of seeded trials")
	flag.Uint64Var(&cfg.seed, "seed", 1991, "base seed")
	flag.BoolVar(&cfg.skipPhase1, "skipphase1", false, "disable the randomizing phase (ablation)")
	flag.IntVar(&cfg.workers, "workers", 0, "round-engine workers (0 = GOMAXPROCS, 1 = sequential; identical results either way)")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "routebench: %v\n", err)
		os.Exit(1)
	}
}

// run executes one invocation, writing the report to w. It is the
// testable core of the command.
func run(w io.Writer, cfg config) error {
	switch cfg.net {
	case "mesh":
		return runMesh(w, cfg)
	case "star", "shuffle", "butterfly", "hypercube":
		return runPointToPoint(w, cfg)
	default:
		return fmt.Errorf("unknown network %q", cfg.net)
	}
}

func runMesh(w io.Writer, cfg config) error {
	g := mesh.New(cfg.n)
	opts := mesh.Options{Workers: cfg.workers}
	switch cfg.alg {
	case "threestage":
		opts.Algorithm = mesh.ThreeStage
	case "vb":
		opts.Algorithm = mesh.ValiantBrebner
	case "greedy":
		opts.Algorithm = mesh.Greedy
	default:
		return fmt.Errorf("unknown mesh algorithm %q", cfg.alg)
	}
	if cfg.disc == "fifo" {
		opts.Discipline = mesh.FIFODiscipline
	}
	rounds := make([]int, 0, cfg.trials)
	maxQ := 0
	for trial := 0; trial < cfg.trials; trial++ {
		s := cfg.seed + uint64(trial)
		var pkts []*packet.Packet
		switch cfg.workload {
		case "perm":
			pkts = workload.Permutation(g.Nodes(), packet.Transit, s)
		case "transpose":
			pkts = workload.Transpose(g)
		case "local":
			pkts = workload.MeshLocal(g, cfg.locality, s)
			opts.LocalityBound = cfg.locality
			opts.SliceRows = max(1, cfg.locality/4)
		default:
			return fmt.Errorf("workload %q unsupported on mesh", cfg.workload)
		}
		opts.Seed = s * 31
		st := mesh.Route(g, pkts, opts)
		rounds = append(rounds, st.Rounds)
		if st.MaxQueue > maxQ {
			maxQ = st.MaxQueue
		}
	}
	fmt.Fprintf(w, "%s %s alg=%s: rounds mean=%.1f max=%d (rounds/n=%.2f) maxQ=%d\n",
		g.Name(), cfg.workload, cfg.alg, mathx.MeanInts(rounds), mathx.MaxInts(rounds),
		mathx.MeanInts(rounds)/float64(cfg.n), maxQ)
	return nil
}

func runPointToPoint(w io.Writer, cfg config) error {
	var topo simnet.Topology
	var spec leveled.Spec
	switch cfg.net {
	case "star":
		g := star.New(cfg.n)
		topo = g
		spec = g.AsLeveled()
	case "shuffle":
		g := shuffle.NewNWay(cfg.n)
		topo = g
		spec = g.AsLeveled()
	case "butterfly":
		spec = leveled.NewButterfly(cfg.n)
	case "hypercube":
		topo = hypercube.New(cfg.n)
	}
	nodes := 0
	if spec != nil {
		nodes = spec.Width()
	} else {
		nodes = topo.Nodes()
	}
	rounds := make([]int, 0, cfg.trials)
	maxQ := 0
	for trial := 0; trial < cfg.trials; trial++ {
		s := cfg.seed + uint64(trial)
		var pkts []*packet.Packet
		switch cfg.workload {
		case "perm":
			pkts = workload.Permutation(nodes, packet.Transit, s)
		case "relation":
			pkts = workload.Relation(nodes, max(2, cfg.n), packet.Transit, s)
		case "bitrev":
			pkts = workload.BitReversal(nodes, packet.Transit)
		case "hotspot":
			pkts = workload.HotSpot(nodes, 0.5, 0, s)
		default:
			return fmt.Errorf("unknown workload %q", cfg.workload)
		}
		var r, q int
		if spec != nil {
			st := leveled.Route(spec, pkts, leveled.Options{
				Seed: s * 31, SkipPhase1: cfg.skipPhase1, Workers: cfg.workers,
			})
			r, q = st.Rounds, st.MaxQueue
		} else {
			st := simnet.Route(topo, pkts, simnet.Options{
				Seed: s * 31, SkipPhase1: cfg.skipPhase1, Workers: cfg.workers,
			})
			r, q = st.Rounds, st.MaxQueue
		}
		rounds = append(rounds, r)
		if q > maxQ {
			maxQ = q
		}
	}
	name := cfg.net
	if spec != nil {
		name = spec.Name()
	} else {
		name = topo.Name()
	}
	fmt.Fprintf(w, "%s %s: rounds mean=%.1f max=%d maxQ=%d (N=%d)\n",
		name, cfg.workload, mathx.MeanInts(rounds), mathx.MaxInts(rounds), maxQ, nodes)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
