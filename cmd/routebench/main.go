// Command routebench runs routing experiments with explicit
// parameters — the interactive companion to cmd/tables. Networks are
// selected by topology-registry name and traffic by workload-registry
// name, so every registered family and generator runs without command
// changes; -list prints both registries with each workload's
// capability requirements, and incompatible (family, workload) pairs
// are rejected with an error naming the missing capability.
//
// A single invocation prices one (network, workload) cell and prints
// one report line (or one JSON object with -json); -mode erew/crcw
// prices one emulated PRAM step per trial instead of raw routing
// (Theorems 2.5/2.6), with the workload as the step's memory-access
// pattern; -engine event prices the same routing on the asynchronous
// discrete-event engine instead of synchronous rounds, with the link
// latency model (-latency/-base/-jitter/-lscale/-gap) and fault axes
// (-linkfail/-repair, -straggler/-stragglerx, -drop/-rto) dialed in
// from the command line. The engine's link-table layout has its own
// knobs: -paged forces the paged dense tables (the layout key spaces
// beyond 2^24 get automatically — million-node graphs route in one
// invocation), -membudget caps the fixed table footprint in bytes
// (over-budget layouts degrade to the hashed fallback instead of
// erroring), and -memstats prints the resolved state and
// table/arena/B-per-node footprint after the report line (-json
// always carries the same fields). With -sweep it instead executes a
// declarative scenario spec — the cross-product of topology ×
// workload × discipline × emulation-mode × engine × fault × ablation
// × engine-workers axes — in parallel over a worker pool, emitting
// one JSON line per cell in deterministic scenario-key order (the
// same Result schema as -json, minus the wall-clock fields, so sweep
// artifacts diff cleanly); -report appends the derived speedup and
// per-class aggregate rows, which `tables -sweep` renders from a
// saved artifact. `-reportdiff a.jsonl b.jsonl` compares two saved
// sweep artifacts byte-exactly and exits nonzero on drift — the CI
// regression gate over checked-in smoke artifacts; both sides must
// end in the trailer line every sweep writes, so truncated artifacts
// fail loudly. Sweeps are fault-tolerant: a panicking cell becomes a
// structured error line and the rest of the grid still runs
// (-failfast cancels instead), -timeout deadlines each cell
// individually, -out <file> runs crash-safely through the cell
// journal with an atomic final rename (an interrupted run resumed
// over the same path is byte-identical), and -server <url> submits
// the spec to a cmd/sweepd daemon and streams the artifact back
// instead of running locally.
//
// `-advsearch spec.json` runs the adversarial search instead: per
// named family, the seeds / structured / greedy strategies from
// internal/advsearch hunt inputs maximizing observed rounds and maxQ,
// and each (family, strategy) worst prints as one line with its
// theorem-bound comparison (-json emits the full finding report).
// With -out the seed-sweep stage journals to <out>.cells and resumes
// like a sweep; -freeze <dir> writes each family's best searched
// permutation as a frozen workload file that -frozen <dir> loads back
// into the registry as `adv:<family>:<name>` — runnable by -workload
// and -sweep like any generator, and regression-gated by
// TestAdvSearchFrozenRegression.
//
// Point-to-point families route directly on the graph (Algorithm
// 2.2) by default; pass -leveled for the Algorithm 2.1 unrolling
// where one exists. Leveled-only families (butterfly) always route on
// their unrolling. The mesh keeps its specialized §3.4 router for
// permutation-class and local traffic; h-relations and many-one
// traffic route generically on its graph view, with CRCW combining
// enabled for the many-one generators.
//
// Examples:
//
//	routebench -net star -n 6 -workload perm
//	routebench -net pancake -n 6 -workload relation
//	routebench -net torus -n 16 -k 2 -workload tornado
//	routebench -net debruijn -n 10 -workload bitcomp -leveled
//	routebench -net mesh -n 128 -workload transpose -alg greedy
//	routebench -net hypercube -n 8 -workload khot -workers 8
//	routebench -net butterfly -n 12 -workload bitrev -skipphase1
//	routebench -net star -n 7 -workload relation -json
//	routebench -net star -n 6 -workload perm -mode erew
//	routebench -net shuffle -n 4 -workload khot -mode crcw
//	routebench -net star -n 6 -workload perm -engine event -latency jitter -jitter 3
//	routebench -net torus -n 8 -k 2 -workload perm -engine event -drop 0.1 -straggler 0.2
//	routebench -net debruijn -n 24 -k 2 -workload perm -trials 1 -memstats
//	routebench -net debruijn -n 20 -k 2 -workload perm -trials 1 -paged -memstats
//	routebench -net debruijn -n 20 -k 2 -workload perm -trials 1 -membudget 1048576 -memstats
//	routebench -sweep sweeps/smoke.json
//	routebench -sweep sweeps/scale.json
//	routebench -sweep sweeps/emul.json -report
//	routebench -sweep sweeps/event.json
//	routebench -sweep - < my-sweep.json
//	routebench -reportdiff sweeps/expected/event.jsonl BENCH_sweep_event.jsonl
//	routebench -advsearch sweeps/advsearch.json -out BENCH_advsearch.json
//	routebench -advsearch sweeps/advsearch.json -freeze sweeps/adversarial
//	routebench -frozen sweeps/adversarial -sweep sweeps/adv.json
//	routebench -list
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pramemu/internal/advsearch"
	"pramemu/internal/buildcache"
	"pramemu/internal/scenario"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// config carries one fully parsed invocation.
type config struct {
	net        string
	n          int
	k          int
	workload   string
	alg        string
	disc       string
	mode       string
	locality   int
	trials     int
	seed       uint64
	skipPhase1 bool
	useLeveled bool
	jsonOut    bool
	workers    int
	list       bool
	hashed     bool
	paged      bool
	memBudget  int64
	memStats   bool
	sweep      string
	report     bool
	out        string
	advsearch  string
	frozen     string
	freeze     string
	buildCache int64
	timeout    time.Duration
	failFast   bool
	server     string
	cpuprofile string
	memprofile string

	// Event-engine knobs (-engine event): the link latency model and
	// the fault level of the asynchronous run.
	engine     string
	latency    string
	base       int
	jitter     int
	lscale     int
	gap        int
	linkFail   float64
	repair     int
	straggler  float64
	stragglerX int
	drop       float64
	rto        int

	// reportdiff compares two sweep artifacts byte-exactly.
	reportdiff bool
	diffArgs   []string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.net, "net", "star", "network family from the topology registry (see -list)")
	flag.IntVar(&cfg.n, "n", 5, "primary size parameter (star/pancake/ttree n, shuffle/debruijn digits, butterfly/hypercube dimension, mesh side, torus radix)")
	flag.IntVar(&cfg.k, "k", 0, "secondary size parameter where one exists (shuffle/debruijn alphabet, torus dimensions, ttree shape); 0 = family default")
	flag.StringVar(&cfg.workload, "workload", "perm", "workload generator from the workload registry (see -list)")
	flag.StringVar(&cfg.alg, "alg", "threestage", "mesh algorithm: threestage, vb, greedy")
	flag.StringVar(&cfg.disc, "disc", "furthest", "mesh discipline: furthest, fifo")
	flag.StringVar(&cfg.mode, "mode", "route", "cell mode: route (raw routing), erew or crcw (one emulated PRAM step per trial, Thm 2.5/2.6)")
	flag.IntVar(&cfg.locality, "d", 8, "locality distance for -workload local")
	flag.IntVar(&cfg.trials, "trials", 5, "number of seeded trials")
	flag.Uint64Var(&cfg.seed, "seed", 1991, "base seed")
	flag.BoolVar(&cfg.skipPhase1, "skipphase1", false, "disable the randomizing phase (ablation)")
	flag.BoolVar(&cfg.useLeveled, "leveled", false, "route on the leveled unrolling (Algorithm 2.1) when the family has one")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit one JSON object instead of the report line (for BENCH_*.json artifacts)")
	flag.IntVar(&cfg.workers, "workers", 0, "round-engine workers (0 = GOMAXPROCS, 1 = sequential; identical results either way)")
	flag.BoolVar(&cfg.list, "list", false, "list the registered network families and workload generators, then exit")
	flag.BoolVar(&cfg.hashed, "hashed", false, "force the engine's hashed-map link state instead of the dense tables (identical results; for A/B profiling)")
	flag.BoolVar(&cfg.paged, "paged", false, "force the engine's paged dense tables even on small key spaces (identical results; for A/B profiling)")
	flag.Int64Var(&cfg.memBudget, "membudget", 0, "cap the engine's fixed link-table footprint in bytes; over-budget dense/paged runs degrade to the hashed fallback (0 = no budget)")
	flag.BoolVar(&cfg.memStats, "memstats", false, "append the memory line (resolved state, table/arena bytes, B/node) to the report")
	flag.StringVar(&cfg.sweep, "sweep", "", "run the scenario sweep spec from this JSON file ('-' = stdin) and emit JSONL")
	flag.BoolVar(&cfg.report, "report", false, "with -sweep: append the derived report rows (workers-axis speedups, per-class aggregates) after the result lines")
	flag.StringVar(&cfg.out, "out", "", "with -sweep: write the artifact crash-safely to this path (journaled; atomic rename after the trailer; an interrupted run resumes)")
	flag.StringVar(&cfg.advsearch, "advsearch", "", "run the adversarial-search spec from this JSON file ('-' = stdin): hunt worst-case inputs per family; with -out the seed sweep journals to <out>.cells and the report lands at -out via atomic rename (an interrupted search resumes)")
	flag.StringVar(&cfg.frozen, "frozen", "", "load frozen adversarial workloads (*"+workload.FrozenExt+") from this directory into the registry before running (composes with -list, -workload adv:..., -sweep)")
	flag.StringVar(&cfg.freeze, "freeze", "", "with -advsearch: write each family's best searched permutation into this directory as a frozen regression workload")
	flag.Int64Var(&cfg.buildCache, "buildcache", 0, "topology build-cache budget in bytes: cells and successive sweeps sharing a topology reuse one build (0 = default 256 MiB; negative disables caching)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "with -sweep: per-cell deadline; an expired cell becomes an error line instead of killing the sweep (0 = none)")
	flag.BoolVar(&cfg.failFast, "failfast", false, "with -sweep: cancel remaining cells when one fails hard instead of draining the grid")
	flag.StringVar(&cfg.server, "server", "", "with -sweep: submit the spec to this sweepd base URL (e.g. http://localhost:8080) and stream the artifact back instead of running locally")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the routing trials to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile (taken after the trials) to this file")
	flag.StringVar(&cfg.engine, "engine", "round", "pricing engine: round (synchronous rounds) or event (asynchronous discrete-event simulation in ticks)")
	flag.StringVar(&cfg.latency, "latency", "fixed", "event link-latency model: fixed, jitter or matrix")
	flag.IntVar(&cfg.base, "base", 1, "event base link latency in ticks")
	flag.IntVar(&cfg.jitter, "jitter", 0, "event uniform extra-latency span (jitter model)")
	flag.IntVar(&cfg.lscale, "lscale", 0, "event coordinate-grid side of the matrix model (0 = default 8)")
	flag.IntVar(&cfg.gap, "gap", 1, "event sender-side bandwidth cap: min ticks between transmission starts per link")
	flag.Float64Var(&cfg.linkFail, "linkfail", 0, "event probability a link starts in a transient outage")
	flag.IntVar(&cfg.repair, "repair", 0, "event outage-duration bound in ticks (0 = default 8*base)")
	flag.Float64Var(&cfg.straggler, "straggler", 0, "event per-node slowdown probability")
	flag.IntVar(&cfg.stragglerX, "stragglerx", 0, "event straggler slowdown multiple (0 = default 4)")
	flag.Float64Var(&cfg.drop, "drop", 0, "event per-transmission loss probability (< 1; sender retransmits)")
	flag.IntVar(&cfg.rto, "rto", 0, "event retransmit timeout in ticks (0 = default 4*(base+jitter))")
	flag.BoolVar(&cfg.reportdiff, "reportdiff", false, "compare the two JSONL artifacts named as arguments byte-exactly; nonzero exit on drift")
	flag.Parse()
	cfg.diffArgs = flag.Args()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "routebench: %v\n", err)
		os.Exit(1)
	}
}

// result is the report schema of one invocation: the scenario
// package's Result, shared between -json output and sweep JSONL lines.
type result = scenario.Result

// run executes one invocation, writing the report to w. It is the
// testable core of the command; the profile flags are honored here so
// tests can exercise them without a child process.
func run(w io.Writer, cfg config) (err error) {
	if cfg.frozen != "" {
		if _, err := workload.LoadFrozenDir(cfg.frozen); err != nil {
			return err
		}
	}
	if cfg.list {
		return list(w)
	}
	if cfg.reportdiff {
		if cfg.server != "" {
			return runServerDiff(w, cfg)
		}
		return runReportDiff(w, cfg.diffArgs)
	}
	if cfg.buildCache != 0 {
		buildcache.SetDefaultBudget(cfg.buildCache)
	}
	if cfg.cpuprofile != "" {
		f, ferr := os.Create(cfg.cpuprofile)
		if ferr != nil {
			return fmt.Errorf("cpuprofile: %w", ferr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", perr)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}
	if cfg.memprofile != "" {
		defer func() {
			if err == nil {
				err = writeHeapProfile(cfg.memprofile)
			}
		}()
	}
	if cfg.advsearch != "" {
		return runAdvSearch(w, cfg)
	}
	if cfg.sweep != "" {
		return runSweep(w, cfg)
	}
	res, err := scenario.RunCell(cell(cfg))
	if err != nil {
		return err
	}
	return report(w, cfg, res)
}

// cell maps the single-run flags onto one scenario grid cell. The
// h-relation height keeps its historical default of max(2, n).
func cell(cfg config) scenario.Cell {
	c := scenario.Cell{
		Topo:       scenario.TopoRef{Family: cfg.net, N: cfg.n, K: cfg.k, Leveled: cfg.useLeveled},
		Work:       scenario.WorkRef{Name: cfg.workload, H: max(2, cfg.n), D: cfg.locality},
		Algorithm:  cfg.alg,
		Discipline: cfg.disc,
		Mode:       cfg.mode,
		Workers:    cfg.workers,
		Trials:     cfg.trials,
		Seed:       cfg.seed,
		SkipPhase1: cfg.skipPhase1,
		Hashed:     cfg.hashed,
		Paged:      cfg.paged,
		MemBudget:  cfg.memBudget,
		Timing:     true,
	}
	if cfg.engine != "" && cfg.engine != scenario.EngineRound {
		c.Engine = cfg.engine
		c.Latency = scenario.LatencySpec{
			Model:  cfg.latency,
			Base:   cfg.base,
			Jitter: cfg.jitter,
			Scale:  cfg.lscale,
			Gap:    cfg.gap,
		}
		c.Fault = scenario.FaultSpec{
			LinkFailure:     cfg.linkFail,
			RepairTime:      cfg.repair,
			Straggler:       cfg.straggler,
			StragglerFactor: cfg.stragglerX,
			Drop:            cfg.drop,
			RetransmitAfter: cfg.rto,
		}
	}
	return c
}

// runAdvSearch executes an adversarial-search spec: every requested
// strategy hunts worst-case inputs on every named family, the worst
// finding per (family, strategy) prints as one report line (or the
// full report as JSON with -json), -out makes the seed-sweep stage
// journaled and resumable, and -freeze writes each family's best
// searched permutation into a directory of frozen regression
// workloads.
func runAdvSearch(w io.Writer, cfg config) error {
	var (
		raw []byte
		err error
	)
	if cfg.advsearch == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(cfg.advsearch)
	}
	if err != nil {
		return fmt.Errorf("advsearch: %w", err)
	}
	spec, err := advsearch.ReadSpec(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	var rep advsearch.Report
	if cfg.out != "" {
		rep, err = advsearch.RunJournaled(context.Background(), spec, cfg.out)
	} else {
		rep, err = advsearch.Run(context.Background(), spec)
	}
	if err != nil {
		return err
	}
	if cfg.freeze != "" {
		for _, f := range rep.Worst() {
			if len(f.Perm) == 0 {
				continue // only searched permutations freeze
			}
			fr, err := advsearch.Freeze(fmt.Sprintf("g%d", f.Nodes), f)
			if err != nil {
				return err
			}
			path, err := workload.WriteFrozenFile(cfg.freeze, fr)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "froze %s (rounds=%d maxQ=%d) -> %s\n", fr.WorkloadName(), fr.Rounds, fr.MaxQ, path)
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	for _, f := range rep.Worst() {
		fmt.Fprintf(w, "advsearch %s strategy=%s workload=%s seed=%d: rounds=%d (%.2f/diam) maxQ=%d bound=%.0f within=%v\n",
			f.Topology, f.Strategy, f.Workload, f.Seed, f.Rounds, f.RoundsPerDiam, f.MaxQ, f.Bound, f.WithinBound)
	}
	return nil
}

// runReportDiff is the CI regression gate over sweep artifacts: the
// two JSONL files must match byte for byte. Both must carry the
// end-of-sweep trailer — a truncated artifact fails loudly here
// instead of silently gating on partial data. On drift it names the
// first differing line of each and errors (nonzero exit from main).
func runReportDiff(w io.Writer, paths []string) error {
	if len(paths) != 2 {
		return fmt.Errorf("reportdiff: want exactly two artifact paths, got %d", len(paths))
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		return fmt.Errorf("reportdiff: %w", err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		return fmt.Errorf("reportdiff: %w", err)
	}
	detail, same, err := scenario.DiffArtifacts(paths[0], a, paths[1], b)
	if err != nil {
		return fmt.Errorf("reportdiff: %w", err)
	}
	if same {
		fmt.Fprintf(w, "reportdiff: %s and %s are identical (%d bytes)\n", paths[0], paths[1], len(a))
		return nil
	}
	return fmt.Errorf("reportdiff: %s", detail)
}

// runServerDiff is -reportdiff against a sweepd instance: the two
// arguments are job IDs, and the daemon compares its stored,
// trailer-verified artifacts server-side via GET
// /sweeps/{a}/diff?against={b} — no artifact bytes cross the wire.
func runServerDiff(w io.Writer, cfg config) error {
	if len(cfg.diffArgs) != 2 {
		return fmt.Errorf("reportdiff: want exactly two job IDs with -server, got %d", len(cfg.diffArgs))
	}
	base := strings.TrimRight(cfg.server, "/")
	resp, err := http.Get(base + "/sweeps/" + cfg.diffArgs[0] + "/diff?against=" + cfg.diffArgs[1])
	if err != nil {
		return fmt.Errorf("reportdiff: %w", err)
	}
	defer resp.Body.Close()
	var d struct {
		A         string `json:"a"`
		B         string `json:"b"`
		Identical bool   `json:"identical"`
		Detail    string `json:"detail,omitempty"`
		Error     string `json:"error,omitempty"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return fmt.Errorf("reportdiff: %s: %w", resp.Status, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reportdiff: %s: %s", resp.Status, d.Error)
	}
	if d.Identical {
		fmt.Fprintf(w, "reportdiff: jobs %s and %s are identical\n", d.A, d.B)
		return nil
	}
	return fmt.Errorf("reportdiff: %s", d.Detail)
}

// runSweep reads the spec from the file (or stdin with "-") and
// executes it: locally — streaming the JSONL artifact to w, or
// journaled to -out with an atomic rename after the trailer — or
// remotely via a sweepd instance with -server. A cell failure costs
// one error line, the rest of the grid still prices, and the
// aggregate failure comes back as the (nonzero-exit) error after the
// artifact is written in full.
func runSweep(w io.Writer, cfg config) error {
	var (
		raw []byte
		err error
	)
	if cfg.sweep == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(cfg.sweep)
	}
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	spec, err := scenario.ReadSpec(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if cfg.timeout > 0 {
		spec.TimeoutMS = cfg.timeout.Milliseconds()
	}
	if cfg.failFast {
		spec.FailFast = true
	}
	if cfg.server != "" {
		return runSweepClient(w, cfg, spec)
	}
	if cfg.report {
		if cfg.out != "" {
			return fmt.Errorf("sweep: -out and -report do not compose (the journaled artifact holds result lines only); redirect stdout instead")
		}
		// Time the run so the report's speedup column is real, but
		// strip the wall-clock fields from the result lines: those
		// stay byte-reproducible, only the trailing report rows carry
		// run-dependent numbers. Cells run sequentially here — timed
		// cells sharing cores with a GOMAXPROCS-wide pool would
		// measure co-scheduling noise, not engine scaling.
		spec.Timing = true
		spec.Pool = 1
	}
	hash, err := scenario.SpecHash(spec)
	if err != nil {
		return err
	}
	cache := buildcache.Default()
	if cfg.out != "" {
		_, err := scenario.RunJournaled(context.Background(), spec, cfg.out, scenario.JournalOptions{Cache: cache})
		return err
	}
	before := cache.Stats()
	results, runErr := scenario.RunContextOptions(context.Background(), spec, scenario.RunOptions{Cache: cache})
	if runErr != nil {
		var agg *scenario.AggregateError
		if !errors.As(runErr, &agg) {
			return runErr
		}
		// Cell failures: the full artifact (error lines included)
		// still streams; the aggregate error exits nonzero after.
	}
	if !cfg.report {
		if err := scenario.WriteArtifact(w, hash, results); err != nil {
			return err
		}
		return runErr
	}
	stripped := make([]scenario.Result, len(results))
	for i, r := range results {
		r.ElapsedMS, r.RoundsPerSec = 0, 0
		stripped[i] = r
	}
	if err := scenario.WriteJSONL(w, stripped); err != nil {
		return err
	}
	if err := scenario.WriteReportJSONL(w, scenario.Report(results)); err != nil {
		return err
	}
	// The trailer closes the stream after the report rows; its cell
	// count covers the result lines above them. Only this report-mode
	// trailer carries the cache and build-vs-route accounting — the
	// result lines (and plain/journaled artifacts) stay byte-
	// reproducible from the spec alone.
	t := scenario.NewTrailer(hash, stripped)
	d := cache.Stats().Delta(before)
	t.CacheHits, t.CacheMisses, t.CacheEvictions = d.Hits, d.Misses, d.Evictions
	t.BuildMS = float64(d.BuildNS) / 1e6
	for _, r := range results {
		t.RouteMS += r.ElapsedMS
	}
	if err := scenario.WriteTrailerLine(w, t); err != nil {
		return err
	}
	return runErr
}

// runSweepClient submits the spec to a sweepd instance, polls the job
// until it settles, and streams the artifact to w (and -out, when
// set). Identical specs are served from the daemon's content-
// addressed cache without re-running.
func runSweepClient(w io.Writer, cfg config, spec scenario.Spec) error {
	base := strings.TrimRight(cfg.server, "/")
	body, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	st, code, err := postJSON(base+"/sweeps", body)
	if err != nil {
		return fmt.Errorf("sweep: submitting to %s: %w", base, err)
	}
	switch code {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusTooManyRequests:
		return fmt.Errorf("sweep: %s is shedding load (queue full); retry later", base)
	default:
		return fmt.Errorf("sweep: %s rejected the spec: %s", base, st.Error)
	}
	for st.State != "done" {
		switch st.State {
		case "failed", "canceled":
			return fmt.Errorf("sweep: job %s %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(200 * time.Millisecond)
		if st, err = getStatus(base + "/sweeps/" + st.ID); err != nil {
			return fmt.Errorf("sweep: polling job: %w", err)
		}
	}
	resp, err := http.Get(base + "/sweeps/" + st.ID + "/artifact")
	if err != nil {
		return fmt.Errorf("sweep: fetching artifact: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sweep: fetching artifact: %s", resp.Status)
	}
	if cfg.out == "" {
		_, err := io.Copy(w, resp.Body)
		return err
	}
	tmp := cfg.out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweep: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: %w", err)
	}
	if err := os.Rename(tmp, cfg.out); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// sweepdStatus mirrors sweepd's job-status JSON (decoded loosely so
// the client has no package dependency on the daemon).
type sweepdStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

func postJSON(url string, body []byte) (sweepdStatus, int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return sweepdStatus{}, 0, err
	}
	defer resp.Body.Close()
	var st sweepdStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return sweepdStatus{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

func getStatus(url string) (sweepdStatus, error) {
	resp, err := http.Get(url)
	if err != nil {
		return sweepdStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sweepdStatus{}, fmt.Errorf("%s", resp.Status)
	}
	var st sweepdStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return sweepdStatus{}, err
	}
	return st, nil
}

// list prints both registries: the -net families and the -workload
// generators with their traffic class and capability requirements.
func list(w io.Writer) error {
	fmt.Fprintln(w, "topologies:")
	for _, name := range topology.Names() {
		f, _ := topology.Lookup(name)
		fmt.Fprintf(w, "  %-10s %s\n", name, f.Params)
	}
	fmt.Fprintln(w, "workloads:")
	for _, name := range workload.Names() {
		g, _ := workload.Lookup(name)
		fmt.Fprintf(w, "  %-10s %-11s needs=%-9s %s\n", name, g.Class, g.Needs, g.Traffic)
	}
	return nil
}

// report renders res as the human line or the JSON object, with the
// memory-pricing line appended when -memstats asks for it.
func report(w io.Writer, cfg config, res result) error {
	if cfg.jsonOut {
		return json.NewEncoder(w).Encode(res)
	}
	if cfg.memStats {
		defer func() {
			if res.State == "" {
				fmt.Fprintln(w, "memory: not priced (event cells track time, not table memory)")
				return
			}
			degraded := ""
			if res.Degraded {
				degraded = " degraded(over budget)"
			}
			fmt.Fprintf(w, "memory: state=%s%s table=%dB arena=%dB b/node=%.1f\n",
				res.State, degraded, res.TableBytes, res.ArenaBytes, res.BPerNode)
		}()
	}
	if res.Engine != "" {
		fmt.Fprintf(w, "%s %s engine=%s fault=%s: delivered mean=%.1f max=%d ticks (ticks/diam=%.2f) retransmits=%d maxQ=%d\n",
			res.Topology, res.Workload, res.Engine, res.Fault, res.RoundsMean, res.RoundsMax,
			res.RoundsPerDiam, res.Retransmits, res.MaxQueue)
		return nil
	}
	if res.Mode != "" {
		fmt.Fprintf(w, "%s %s mode=%s: step cost mean=%.1f max=%d (cost/diam=%.2f) merges=%d rehashes=%d maxQ=%d\n",
			res.Topology, res.Workload, res.Mode, res.RoundsMean, res.RoundsMax,
			res.RoundsPerDiam, res.Merges, res.Rehashes, res.MaxQueue)
		return nil
	}
	if res.Algorithm != "" {
		fmt.Fprintf(w, "%s %s alg=%s: rounds mean=%.1f max=%d (rounds/diam=%.2f) maxQ=%d\n",
			res.Topology, res.Workload, res.Algorithm, res.RoundsMean, res.RoundsMax,
			res.RoundsPerDiam, res.MaxQueue)
		return nil
	}
	fmt.Fprintf(w, "%s %s: rounds mean=%.1f max=%d maxQ=%d (N=%d)\n",
		res.Topology, res.Workload, res.RoundsMean, res.RoundsMax, res.MaxQueue, res.Nodes)
	return nil
}

// writeHeapProfile snapshots the heap (after a GC, so live objects —
// not garbage — dominate) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
