// Command routebench runs a single routing experiment with explicit
// parameters and prints one line of statistics — the interactive
// companion to cmd/tables for exploring the routing algorithms.
// Networks are selected by topology-registry name, so every
// registered family (including pancake, ttree, torus and debruijn)
// runs without command changes; -list prints the registry.
//
// Point-to-point families route directly on the graph (Algorithm
// 2.2) by default; pass -leveled for the Algorithm 2.1 unrolling
// where one exists. (Before the registry, star and shuffle defaulted
// to the leveled view — report lines for those two changed with that
// unification, and the mesh line now normalizes by the diameter
// 2(n-1) as rounds/diam instead of rounds/n.) Leveled-only families
// (butterfly) always route on their unrolling.
//
// Examples:
//
//	routebench -net star -n 6 -workload perm
//	routebench -net pancake -n 6 -workload relation
//	routebench -net torus -n 16 -k 2 -workload transpose
//	routebench -net debruijn -n 10 -workload bitrev -leveled
//	routebench -net mesh -n 128 -workload transpose -alg greedy
//	routebench -net ttree -n 6 -k 1 -workload perm -workers 8
//	routebench -net butterfly -n 12 -workload bitrev -skipphase1
//	routebench -net star -n 7 -workload relation -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/simnet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// config carries one fully parsed invocation.
type config struct {
	net        string
	n          int
	k          int
	workload   string
	alg        string
	disc       string
	locality   int
	trials     int
	seed       uint64
	skipPhase1 bool
	useLeveled bool
	jsonOut    bool
	workers    int
	list       bool
	hashed     bool
	cpuprofile string
	memprofile string
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.net, "net", "star", "network family from the topology registry (see -list)")
	flag.IntVar(&cfg.n, "n", 5, "primary size parameter (star/pancake/ttree n, shuffle/debruijn digits, butterfly/hypercube dimension, mesh side, torus radix)")
	flag.IntVar(&cfg.k, "k", 0, "secondary size parameter where one exists (shuffle/debruijn alphabet, torus dimensions, ttree shape); 0 = family default")
	flag.StringVar(&cfg.workload, "workload", "perm", "workload: perm, relation, bitrev, transpose, local, hotspot")
	flag.StringVar(&cfg.alg, "alg", "threestage", "mesh algorithm: threestage, vb, greedy")
	flag.StringVar(&cfg.disc, "disc", "furthest", "mesh discipline: furthest, fifo")
	flag.IntVar(&cfg.locality, "d", 8, "locality distance for -workload local")
	flag.IntVar(&cfg.trials, "trials", 5, "number of seeded trials")
	flag.Uint64Var(&cfg.seed, "seed", 1991, "base seed")
	flag.BoolVar(&cfg.skipPhase1, "skipphase1", false, "disable the randomizing phase (ablation)")
	flag.BoolVar(&cfg.useLeveled, "leveled", false, "route on the leveled unrolling (Algorithm 2.1) when the family has one")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit one JSON object instead of the report line (for BENCH_*.json artifacts)")
	flag.IntVar(&cfg.workers, "workers", 0, "round-engine workers (0 = GOMAXPROCS, 1 = sequential; identical results either way)")
	flag.BoolVar(&cfg.list, "list", false, "list the registered network families and exit")
	flag.BoolVar(&cfg.hashed, "hashed", false, "force the engine's hashed-map link state instead of the dense tables (identical results; for A/B profiling)")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile of the routing trials to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile (taken after the trials) to this file")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "routebench: %v\n", err)
		os.Exit(1)
	}
}

// result aggregates the trials of one invocation; it doubles as the
// -json schema, so bench trajectories can be captured as
// BENCH_*.json artifacts.
type result struct {
	Family        string  `json:"family"`
	Topology      string  `json:"topology"`
	Nodes         int     `json:"nodes"`
	Diameter      int     `json:"diameter"`
	Workload      string  `json:"workload"`
	Algorithm     string  `json:"algorithm,omitempty"`
	Workers       int     `json:"workers"`
	Trials        int     `json:"trials"`
	Seed          uint64  `json:"seed"`
	RoundsMean    float64 `json:"rounds_mean"`
	RoundsMax     int     `json:"rounds_max"`
	RoundsPerDiam float64 `json:"rounds_per_diam"`
	MaxQueue      int     `json:"max_queue"`
	ElapsedMS     float64 `json:"elapsed_ms"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
}

// run executes one invocation, writing the report to w. It is the
// testable core of the command; the profile flags are honored here so
// tests can exercise them without a child process.
func run(w io.Writer, cfg config) (err error) {
	if cfg.list {
		for _, name := range topology.Names() {
			f, _ := topology.Lookup(name)
			fmt.Fprintf(w, "%-10s %s\n", name, f.Params)
		}
		return nil
	}
	if cfg.cpuprofile != "" {
		f, ferr := os.Create(cfg.cpuprofile)
		if ferr != nil {
			return fmt.Errorf("cpuprofile: %w", ferr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", perr)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("cpuprofile: %w", cerr)
			}
		}()
	}
	if cfg.memprofile != "" {
		defer func() {
			if err == nil {
				err = writeHeapProfile(cfg.memprofile)
			}
		}()
	}
	b, err := topology.Build(cfg.net, topology.Params{N: cfg.n, K: cfg.k})
	if err != nil {
		return err
	}
	if cfg.useLeveled && b.Spec == nil {
		return fmt.Errorf("%s has no leveled unrolling", b.Name())
	}
	// Both routers key links on 24-bit node ids; reject oversized
	// graphs before any per-node workload is allocated.
	if b.Nodes() > topology.MaxNodes {
		return fmt.Errorf("%s has %d nodes, exceeding the simulator's 24-bit key space", b.Name(), b.Nodes())
	}
	// The mesh keeps its specialized §3.4 router (three-stage slices,
	// queue disciplines); every other family routes generically.
	if g, ok := b.Graph.(*mesh.Grid); ok {
		return runMesh(w, g, cfg)
	}
	return runGeneric(w, b, cfg)
}

// report renders res as the human line or the JSON object.
func report(w io.Writer, cfg config, res result, rounds []int, elapsed time.Duration) error {
	res.Workload = cfg.workload
	res.Workers = cfg.workers
	res.Trials = cfg.trials
	res.Seed = cfg.seed
	res.RoundsMean = mathx.MeanInts(rounds)
	res.RoundsMax = mathx.MaxInts(rounds)
	if res.Diameter > 0 {
		res.RoundsPerDiam = res.RoundsMean / float64(res.Diameter)
	}
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		total := 0
		for _, r := range rounds {
			total += r
		}
		res.RoundsPerSec = float64(total) / elapsed.Seconds()
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		return enc.Encode(res)
	}
	if res.Algorithm != "" {
		fmt.Fprintf(w, "%s %s alg=%s: rounds mean=%.1f max=%d (rounds/diam=%.2f) maxQ=%d\n",
			res.Topology, res.Workload, res.Algorithm, res.RoundsMean, res.RoundsMax,
			res.RoundsPerDiam, res.MaxQueue)
		return nil
	}
	fmt.Fprintf(w, "%s %s: rounds mean=%.1f max=%d maxQ=%d (N=%d)\n",
		res.Topology, res.Workload, res.RoundsMean, res.RoundsMax, res.MaxQueue, res.Nodes)
	return nil
}

func runMesh(w io.Writer, g *mesh.Grid, cfg config) error {
	opts := mesh.Options{Workers: cfg.workers}
	switch cfg.alg {
	case "threestage":
		opts.Algorithm = mesh.ThreeStage
	case "vb":
		opts.Algorithm = mesh.ValiantBrebner
	case "greedy":
		opts.Algorithm = mesh.Greedy
	default:
		return fmt.Errorf("unknown mesh algorithm %q", cfg.alg)
	}
	switch cfg.disc {
	case "furthest", "":
		opts.Discipline = mesh.FurthestFirst
	case "fifo":
		opts.Discipline = mesh.FIFODiscipline
	default:
		return fmt.Errorf("unknown mesh discipline %q", cfg.disc)
	}
	opts.HashedKeys = cfg.hashed
	rounds := make([]int, 0, cfg.trials)
	maxQ := 0
	arena := packet.NewArena()
	start := time.Now()
	for trial := 0; trial < cfg.trials; trial++ {
		s := cfg.seed + uint64(trial)
		arena.Reset()
		var pkts []*packet.Packet
		switch cfg.workload {
		case "perm":
			pkts = workload.PermutationInto(arena, g.Nodes(), packet.Transit, s)
		case "transpose":
			pkts = workload.Transpose(g)
		case "local":
			pkts = workload.MeshLocal(g, cfg.locality, s)
			opts.LocalityBound = cfg.locality
			opts.SliceRows = max(1, cfg.locality/4)
		default:
			return fmt.Errorf("workload %q unsupported on mesh", cfg.workload)
		}
		opts.Seed = s * 31
		st := mesh.Route(g, pkts, opts)
		rounds = append(rounds, st.Rounds)
		if st.MaxQueue > maxQ {
			maxQ = st.MaxQueue
		}
	}
	return report(w, cfg, result{
		Family:    cfg.net,
		Topology:  g.Name(),
		Nodes:     g.Nodes(),
		Diameter:  g.Diameter(),
		Algorithm: cfg.alg,
		MaxQueue:  maxQ,
	}, rounds, time.Since(start))
}

func runGeneric(w io.Writer, b topology.Built, cfg config) error {
	useSpec := b.Graph == nil || (cfg.useLeveled && b.Spec != nil)
	nodes := b.Nodes()
	rounds := make([]int, 0, cfg.trials)
	maxQ := 0
	arena := packet.NewArena()
	start := time.Now()
	for trial := 0; trial < cfg.trials; trial++ {
		s := cfg.seed + uint64(trial)
		arena.Reset()
		pkts, err := buildWorkload(cfg, arena, nodes, s)
		if err != nil {
			return err
		}
		var r, q int
		if useSpec {
			st := leveled.Route(b.Spec, pkts, leveled.Options{
				Seed: s * 31, SkipPhase1: cfg.skipPhase1, Workers: cfg.workers,
				HashedKeys: cfg.hashed,
			})
			r, q = st.Rounds, st.MaxQueue
		} else {
			st, err := simnet.Route(b.Graph, pkts, simnet.Options{
				Seed: s * 31, SkipPhase1: cfg.skipPhase1, Workers: cfg.workers,
				HashedKeys: cfg.hashed,
			})
			if err != nil {
				return err
			}
			r, q = st.Rounds, st.MaxQueue
		}
		rounds = append(rounds, r)
		if q > maxQ {
			maxQ = q
		}
	}
	name := b.Name()
	if useSpec {
		name = b.Spec.Name()
	}
	return report(w, cfg, result{
		Family:   cfg.net,
		Topology: name,
		Nodes:    nodes,
		Diameter: b.Diameter(),
		MaxQueue: maxQ,
	}, rounds, time.Since(start))
}

// buildWorkload realizes the named request pattern on nodes,
// allocating packets from arena where the generator supports it.
func buildWorkload(cfg config, arena *packet.Arena, nodes int, seed uint64) ([]*packet.Packet, error) {
	switch cfg.workload {
	case "perm":
		return workload.PermutationInto(arena, nodes, packet.Transit, seed), nil
	case "relation":
		return workload.RelationInto(arena, nodes, max(2, cfg.n), packet.Transit, seed), nil
	case "bitrev":
		if nodes&(nodes-1) != 0 {
			return nil, fmt.Errorf("workload bitrev needs a power-of-two node count, have %d", nodes)
		}
		return workload.BitReversal(nodes, packet.Transit), nil
	case "transpose":
		if !workload.IsSquare(nodes) {
			return nil, fmt.Errorf("workload transpose needs a square node count, have %d", nodes)
		}
		return workload.TransposeSquare(nodes, packet.Transit), nil
	case "hotspot":
		return workload.HotSpot(nodes, 0.5, 0, seed), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.workload)
	}
}

// writeHeapProfile snapshots the heap (after a GC, so live objects —
// not garbage — dominate) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
