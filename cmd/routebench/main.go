// Command routebench runs a single routing experiment with explicit
// parameters and prints one line of statistics — the interactive
// companion to cmd/tables for exploring the routing algorithms.
//
// Examples:
//
//	routebench -net star -n 6 -workload perm
//	routebench -net mesh -n 128 -workload transpose -alg greedy
//	routebench -net shuffle -n 5 -workload relation -trials 10
//	routebench -net butterfly -n 12 -workload bitrev -skipphase1
package main

import (
	"flag"
	"fmt"
	"os"

	"pramemu/internal/hypercube"
	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/shuffle"
	"pramemu/internal/simnet"
	"pramemu/internal/star"
	"pramemu/internal/workload"
)

func main() {
	netName := flag.String("net", "star", "network: star, shuffle, butterfly, hypercube, mesh")
	n := flag.Int("n", 5, "network size parameter (star n, shuffle n, butterfly/hypercube dimension, mesh side)")
	wl := flag.String("workload", "perm", "workload: perm, relation, bitrev, transpose, local, hotspot")
	alg := flag.String("alg", "threestage", "mesh algorithm: threestage, vb, greedy")
	disc := flag.String("disc", "furthest", "mesh discipline: furthest, fifo")
	locality := flag.Int("d", 8, "locality distance for -workload local")
	trials := flag.Int("trials", 5, "number of seeded trials")
	seed := flag.Uint64("seed", 1991, "base seed")
	skipPhase1 := flag.Bool("skipphase1", false, "disable the randomizing phase (ablation)")
	flag.Parse()

	switch *netName {
	case "mesh":
		runMesh(*n, *wl, *alg, *disc, *locality, *trials, *seed)
	case "star", "shuffle", "butterfly", "hypercube":
		runPointToPoint(*netName, *n, *wl, *trials, *seed, *skipPhase1)
	default:
		fmt.Fprintf(os.Stderr, "routebench: unknown network %q\n", *netName)
		os.Exit(1)
	}
}

func runMesh(n int, wl, alg, disc string, locality, trials int, seed uint64) {
	g := mesh.New(n)
	opts := mesh.Options{}
	switch alg {
	case "threestage":
		opts.Algorithm = mesh.ThreeStage
	case "vb":
		opts.Algorithm = mesh.ValiantBrebner
	case "greedy":
		opts.Algorithm = mesh.Greedy
	default:
		fmt.Fprintf(os.Stderr, "routebench: unknown mesh algorithm %q\n", alg)
		os.Exit(1)
	}
	if disc == "fifo" {
		opts.Discipline = mesh.FIFODiscipline
	}
	rounds := make([]int, 0, trials)
	maxQ := 0
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)
		var pkts []*packet.Packet
		switch wl {
		case "perm":
			pkts = workload.Permutation(g.Nodes(), packet.Transit, s)
		case "transpose":
			pkts = workload.Transpose(g)
		case "local":
			pkts = workload.MeshLocal(g, locality, s)
			opts.LocalityBound = locality
			opts.SliceRows = max(1, locality/4)
		default:
			fmt.Fprintf(os.Stderr, "routebench: workload %q unsupported on mesh\n", wl)
			os.Exit(1)
		}
		opts.Seed = s * 31
		st := mesh.Route(g, pkts, opts)
		rounds = append(rounds, st.Rounds)
		if st.MaxQueue > maxQ {
			maxQ = st.MaxQueue
		}
	}
	fmt.Printf("%s %s alg=%s: rounds mean=%.1f max=%d (rounds/n=%.2f) maxQ=%d\n",
		g.Name(), wl, alg, mathx.MeanInts(rounds), mathx.MaxInts(rounds),
		mathx.MeanInts(rounds)/float64(n), maxQ)
}

func runPointToPoint(netName string, n int, wl string, trials int, seed uint64, skip bool) {
	var topo simnet.Topology
	var spec leveled.Spec
	switch netName {
	case "star":
		g := star.New(n)
		topo = g
		spec = g.AsLeveled()
	case "shuffle":
		g := shuffle.NewNWay(n)
		topo = g
		spec = g.AsLeveled()
	case "butterfly":
		spec = leveled.NewButterfly(n)
	case "hypercube":
		topo = hypercube.New(n)
	}
	nodes := 0
	if spec != nil {
		nodes = spec.Width()
	} else {
		nodes = topo.Nodes()
	}
	rounds := make([]int, 0, trials)
	maxQ := 0
	for trial := 0; trial < trials; trial++ {
		s := seed + uint64(trial)
		var pkts []*packet.Packet
		switch wl {
		case "perm":
			pkts = workload.Permutation(nodes, packet.Transit, s)
		case "relation":
			pkts = workload.Relation(nodes, max(2, n), packet.Transit, s)
		case "bitrev":
			pkts = workload.BitReversal(nodes, packet.Transit)
		case "hotspot":
			pkts = workload.HotSpot(nodes, 0.5, 0, s)
		default:
			fmt.Fprintf(os.Stderr, "routebench: unknown workload %q\n", wl)
			os.Exit(1)
		}
		var r, q int
		if spec != nil {
			st := leveled.Route(spec, pkts, leveled.Options{Seed: s * 31, SkipPhase1: skip})
			r, q = st.Rounds, st.MaxQueue
		} else {
			st := simnet.Route(topo, pkts, simnet.Options{Seed: s * 31, SkipPhase1: skip})
			r, q = st.Rounds, st.MaxQueue
		}
		rounds = append(rounds, r)
		if q > maxQ {
			maxQ = q
		}
	}
	name := netName
	if spec != nil {
		name = spec.Name()
	} else {
		name = topo.Name()
	}
	fmt.Printf("%s %s: rounds mean=%.1f max=%d maxQ=%d (N=%d)\n",
		name, wl, mathx.MeanInts(rounds), mathx.MaxInts(rounds), maxQ, nodes)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
