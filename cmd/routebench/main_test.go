package main

import (
	"strings"
	"testing"
)

// The smoke tests run each main path in-process on a tiny
// configuration and assert the report line comes out clean.

func TestRunPointToPointSmoke(t *testing.T) {
	for _, net := range []string{"star", "shuffle", "butterfly", "hypercube"} {
		var b strings.Builder
		cfg := config{net: net, n: 3, workload: "perm", trials: 1, seed: 7, workers: 2}
		if err := run(&b, cfg); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		if !strings.Contains(b.String(), "rounds mean=") {
			t.Fatalf("%s: unexpected report %q", net, b.String())
		}
	}
}

func TestRunMeshSmoke(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, seed: 7}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mesh(8x8)") {
		t.Fatalf("unexpected report %q", b.String())
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{net: "torus"}); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, config{net: "mesh", n: 8, alg: "magic"}); err == nil {
		t.Fatal("unknown mesh algorithm accepted")
	}
	if err := run(&b, config{net: "star", n: 3, workload: "nope", trials: 1, alg: "threestage"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
