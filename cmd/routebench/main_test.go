package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pramemu/internal/scenario"
	"pramemu/internal/sweepd"
)

// The smoke tests run each main path in-process on a tiny
// configuration and assert the report line comes out clean.

func TestRunPointToPointSmoke(t *testing.T) {
	for _, net := range []string{"star", "shuffle", "butterfly", "hypercube", "pancake", "ttree", "debruijn"} {
		var b strings.Builder
		cfg := config{net: net, n: 3, workload: "perm", trials: 1, seed: 7, workers: 2}
		if err := run(&b, cfg); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		if !strings.Contains(b.String(), "rounds mean=") {
			t.Fatalf("%s: unexpected report %q", net, b.String())
		}
	}
}

func TestRunTorusSmoke(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "torus", n: 4, k: 3, workload: "perm", trials: 1, seed: 7, workers: 2}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torus(k=4,n=3)") {
		t.Fatalf("unexpected report %q", b.String())
	}
}

func TestRunLeveledViewSmoke(t *testing.T) {
	// -leveled routes on the unrolling when the family has one
	// (Algorithm 2.1 on the de Bruijn graph here).
	var b strings.Builder
	cfg := config{net: "debruijn", n: 4, k: 2, workload: "perm", trials: 1, seed: 7, useLeveled: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "debruijn-leveled") {
		t.Fatalf("unexpected report %q", b.String())
	}
	// ...and errors cleanly when it has none — including on the mesh,
	// which dispatches to its specialized router.
	if err := run(&b, config{net: "torus", n: 4, workload: "perm", trials: 1, useLeveled: true}); err == nil {
		t.Fatal("leveled view of the torus accepted")
	}
	if err := run(&b, config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, useLeveled: true}); err == nil {
		t.Fatal("leveled view of the mesh accepted")
	}
}

func TestRunRejectsOversizedGraphsBeforeAllocating(t *testing.T) {
	// A 2^32-node de Bruijn graph exceeds the simulator's node-id
	// limit (topology.MaxNodes); the command must refuse it with an
	// error naming the bound before materializing any per-node
	// workload, on both the direct and the leveled path. (2^25-node
	// graphs, which the old 24-bit packed keys refused, now route on
	// the paged tables — the debruijn package's huge-construction test
	// covers that cheaply.)
	for _, cfg := range []config{
		{net: "debruijn", n: 32, k: 2, workload: "perm", trials: 1},
		{net: "debruijn", n: 32, k: 2, workload: "perm", trials: 1, useLeveled: true},
	} {
		var b strings.Builder
		err := run(&b, cfg)
		if err == nil {
			t.Fatalf("%+v accepted", cfg)
		}
		if !strings.Contains(err.Error(), "bound") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestRunMeshSmoke(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, seed: 7}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mesh(8x8)") {
		t.Fatalf("unexpected report %q", b.String())
	}
}

func TestRunTransposeOnTorus(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "torus", n: 8, k: 2, workload: "transpose", trials: 1, seed: 7}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "transpose") {
		t.Fatalf("unexpected report %q", b.String())
	}
	// Non-square node counts (5^3 = 125) reject the workload cleanly.
	if err := run(&b, config{net: "torus", n: 5, k: 3, workload: "transpose", trials: 1}); err == nil {
		t.Fatal("transpose accepted on a non-square torus")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "star", n: 4, workload: "perm", trials: 2, seed: 7, jsonOut: true, workers: 2}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, b.String())
	}
	if res.Family != "star" || res.Topology != "star(n=4)" || res.Nodes != 24 {
		t.Fatalf("unexpected fields: %+v", res)
	}
	if res.Trials != 2 || res.Workers != 2 || res.RoundsMean <= 0 || res.RoundsMax <= 0 {
		t.Fatalf("run metadata wrong: %+v", res)
	}
	if res.RoundsPerDiam <= 0 || res.ElapsedMS < 0 {
		t.Fatalf("derived metrics wrong: %+v", res)
	}
}

func TestRunJSONOnMesh(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, seed: 7, jsonOut: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("mesh JSON malformed: %v\n%s", err, b.String())
	}
	if res.Algorithm != "threestage" || res.Nodes != 64 {
		t.Fatalf("unexpected fields: %+v", res)
	}
}

func TestRunListsFamiliesAndWorkloads(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{list: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"star", "pancake", "ttree", "torus", "debruijn", "mesh", "butterfly"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("-list missing family %q:\n%s", name, b.String())
		}
	}
	for _, name := range []string{"perm", "relation", "bitrev", "bitcomp", "shift", "transpose", "tornado", "khot", "hotspot", "local", "ident"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("-list missing workload %q:\n%s", name, b.String())
		}
	}
	// Capability requirements are listed alongside each generator.
	for _, needs := range []string{"needs=coords", "needs=square", "needs=pow2", "needs=graph"} {
		if !strings.Contains(b.String(), needs) {
			t.Fatalf("-list missing capability annotation %q:\n%s", needs, b.String())
		}
	}
}

// TestRunRejectsIncompatiblePairs pins that a (family, workload) pair
// failing the capability gate errors with the missing capability
// named, not a generic failure.
func TestRunRejectsIncompatiblePairs(t *testing.T) {
	var b strings.Builder
	for _, tc := range []struct {
		cfg  config
		want string
	}{
		{config{net: "star", n: 4, workload: "tornado", trials: 1}, "coordinates"},
		{config{net: "star", n: 4, workload: "bitrev", trials: 1}, "power-of-two"},
		{config{net: "torus", n: 5, k: 3, workload: "transpose", trials: 1}, "square"},
		{config{net: "butterfly", n: 3, workload: "local", trials: 1}, "graph"},
	} {
		err := run(&b, tc.cfg)
		if err == nil {
			t.Fatalf("%+v accepted", tc.cfg)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%+v: error %q does not name the missing capability %q", tc.cfg, err, tc.want)
		}
	}
}

// TestRunNewGeneratorsSmoke routes each newly registered generator on
// a compatible family through the single-run path.
func TestRunNewGeneratorsSmoke(t *testing.T) {
	for _, tc := range []config{
		{net: "torus", n: 4, k: 2, workload: "tornado", trials: 1, seed: 7},
		{net: "hypercube", n: 4, workload: "bitcomp", trials: 1, seed: 7},
		{net: "star", n: 4, workload: "shift", trials: 1, seed: 7},
		{net: "star", n: 4, workload: "khot", trials: 1, seed: 7, workers: 2},
		{net: "debruijn", n: 3, k: 2, workload: "local", locality: 2, trials: 1, seed: 7},
		{net: "mesh", n: 8, workload: "khot", trials: 1, seed: 7},
	} {
		var b strings.Builder
		if err := run(&b, tc); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if !strings.Contains(b.String(), "rounds mean=") {
			t.Fatalf("%+v: unexpected report %q", tc, b.String())
		}
	}
}

// TestRunSweep drives -sweep end to end: a spec file crossing three
// families and three workloads yields one deterministic JSON line per
// cell, each parseable as the shared Result schema.
func TestRunSweep(t *testing.T) {
	spec := `{
		"name": "test",
		"topologies": [
			{"family": "star", "n": 4},
			{"family": "torus", "n": 4, "k": 2},
			{"family": "mesh", "n": 4}
		],
		"workloads": [{"name": "perm"}, {"name": "shift"}, {"name": "khot", "hot": 2}],
		"workers": [1, 2],
		"trials": 2,
		"seed": 7,
		"pool": 2
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := func() string {
		var b strings.Builder
		if err := run(&b, config{sweep: path}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := out()
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 19 { // 3 families x 3 workloads x 2 workers + trailer
		t.Fatalf("sweep emitted %d lines, want 19:\n%s", len(lines), first)
	}
	var trailer scenario.Trailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil || trailer.Report != scenario.TrailerReport {
		t.Fatalf("last line is not the trailer: %v\n%s", err, lines[len(lines)-1])
	}
	if trailer.Cells != 18 || trailer.Errors != 0 {
		t.Fatalf("trailer counts wrong: %+v", trailer)
	}
	prevKey := ""
	for _, line := range lines[:len(lines)-1] {
		var res result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line is not a Result: %v\n%s", err, line)
		}
		if res.Scenario == "" || res.RoundsMean <= 0 || res.Trials != 2 {
			t.Fatalf("degenerate sweep line: %+v", res)
		}
		if res.ElapsedMS != 0 {
			t.Fatalf("sweep line carries wall-clock timing: %+v", res)
		}
		if res.Scenario <= prevKey {
			t.Fatalf("sweep lines not sorted by scenario key: %q after %q", res.Scenario, prevKey)
		}
		prevKey = res.Scenario
	}
	if second := out(); second != first {
		t.Fatalf("sweep output not deterministic:\n%s\nvs\n%s", first, second)
	}
	// A missing spec file errors cleanly.
	var b strings.Builder
	if err := run(&b, config{sweep: filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Fatal("missing sweep spec accepted")
	}

	// -out runs the same sweep through the journaled writer: the
	// published artifact is byte-identical to the streamed one, and no
	// .tmp or .journal intermediate survives the atomic finalize.
	outPath := filepath.Join(t.TempDir(), "artifact.jsonl")
	b.Reset()
	if err := run(&b, config{sweep: path, out: outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != first {
		t.Fatalf("-out artifact drifted from the streamed sweep:\n%s\nvs\n%s", data, first)
	}
	for _, leftover := range []string{outPath + ".tmp", outPath + ".journal"} {
		if _, err := os.Stat(leftover); !os.IsNotExist(err) {
			t.Fatalf("journaled sweep left %s behind", leftover)
		}
	}
	// -out and -report do not compose.
	if err := run(&b, config{sweep: path, out: outPath, report: true}); err == nil {
		t.Fatal("-out -report accepted")
	}
}

// TestRunEmulationMode drives -mode end to end: erew and crcw single
// runs print the step-cost line (and emit the extended JSON schema),
// and mode/workload mismatches error with the constraint named.
func TestRunEmulationMode(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{net: "star", n: 4, workload: "perm", mode: "erew", trials: 2, seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mode=erew: step cost mean=") {
		t.Fatalf("unexpected emulation report %q", b.String())
	}
	b.Reset()
	if err := run(&b, config{net: "star", n: 4, workload: "khot", mode: "crcw", trials: 2, seed: 7, jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("emulation JSON malformed: %v\n%s", err, b.String())
	}
	if res.Mode != "crcw" || res.RoundsMean <= 0 || res.MaxModuleLoad <= 0 {
		t.Fatalf("unexpected emulation fields: %+v", res)
	}
	if err := run(&b, config{net: "star", n: 4, workload: "khot", mode: "erew", trials: 1}); err == nil ||
		!strings.Contains(err.Error(), "crcw") {
		t.Fatalf("many-one erew run: want a crcw-gating error, got %v", err)
	}
	if err := run(&b, config{net: "star", n: 4, workload: "relation", mode: "crcw", trials: 1}); err == nil ||
		!strings.Contains(err.Error(), "single-step") {
		t.Fatalf("relation crcw run: want a single-step error, got %v", err)
	}
	if err := run(&b, config{net: "star", n: 4, workload: "perm", mode: "quantum", trials: 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestRunSweepEmulSpec runs the checked-in sweeps/emul.json (the CI
// perf-smoke artifact): deterministic output, every line parseable,
// erew and crcw cells present, hashed twins identical.
func TestRunSweepEmulSpec(t *testing.T) {
	out := func() string {
		var b strings.Builder
		if err := run(&b, config{sweep: filepath.Join("..", "..", "sweeps", "emul.json")}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := out()
	if second := out(); second != first {
		t.Fatalf("emul sweep output not deterministic:\n%s\nvs\n%s", first, second)
	}
	modes := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(first), "\n") {
		if strings.Contains(line, `"report":`) {
			continue // the trailer line
		}
		var res result
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line is not a Result: %v\n%s", err, line)
		}
		if res.Mode == "" || res.RoundsMean <= 0 || res.ElapsedMS != 0 {
			t.Fatalf("degenerate emul sweep line: %+v", res)
		}
		modes[res.Mode]++
	}
	if modes["erew"] == 0 || modes["crcw"] == 0 {
		t.Fatalf("emul sweep missing a mode: %v", modes)
	}
}

// TestRunSweepReport drives -sweep -report: the result lines stay
// wall-clock-free and are followed by speedup and class report rows.
func TestRunSweepReport(t *testing.T) {
	spec := `{
		"topologies": [{"family": "star", "n": 4}],
		"workloads": [{"name": "perm"}, {"name": "khot", "hot": 2}],
		"workers": [1, 2],
		"trials": 2,
		"seed": 7
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, config{sweep: path, report: true}); err != nil {
		t.Fatal(err)
	}
	results, speedups, classes := 0, 0, 0
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var row struct {
			Report    string  `json:"report"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Speedup   float64 `json:"speedup"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line is not JSON: %v\n%s", err, line)
		}
		switch row.Report {
		case "":
			results++
			if row.ElapsedMS != 0 {
				t.Fatalf("-report leaked wall clock into a result line: %s", line)
			}
		case "speedup":
			speedups++
			if row.Speedup <= 0 {
				t.Fatalf("timed report row lacks a speedup: %s", line)
			}
		case "class":
			classes++
		}
	}
	// 2 workloads x 2 workers result cells; a speedup row per cell;
	// one class row per traffic class.
	if results != 4 || speedups != 4 || classes != 2 {
		t.Fatalf("unexpected row mix: %d results, %d speedups, %d classes:\n%s",
			results, speedups, classes, b.String())
	}
}

// TestRunEventEngine drives -engine event end to end: the single-run
// report line prices delivered ticks and retransmits, the JSON object
// carries the engine/fault fields, and bad knobs error cleanly.
func TestRunEventEngine(t *testing.T) {
	var b strings.Builder
	cfg := config{
		net: "star", n: 4, workload: "perm", trials: 2, seed: 7,
		engine: "event", latency: "jitter", base: 1, jitter: 2, gap: 1,
		drop: 0.2, rto: 4,
	}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "engine=event") || !strings.Contains(b.String(), "retransmits=") {
		t.Fatalf("unexpected event report %q", b.String())
	}
	b.Reset()
	cfg.jsonOut = true
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("event JSON malformed: %v\n%s", err, b.String())
	}
	if res.Engine != "event" || res.Fault != "dp0.2t4" || res.RoundsMean <= 0 {
		t.Fatalf("unexpected event fields: %+v", res)
	}
	// Unknown engines and invalid fault knobs error with the knob named.
	if err := run(&b, config{net: "star", n: 4, workload: "perm", trials: 1, engine: "quantum"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run(&b, config{
		net: "star", n: 4, workload: "perm", trials: 1,
		engine: "event", latency: "fixed", base: 1, gap: 1, drop: 1,
	}); err == nil || !strings.Contains(err.Error(), "drop") {
		t.Fatalf("drop=1 run: want a drop-probability error, got %v", err)
	}
	// The event engine prices raw routing only; combining it with a
	// PRAM emulation mode is rejected, not silently ignored.
	if err := run(&b, config{
		net: "star", n: 4, workload: "perm", trials: 1, mode: "erew",
		engine: "event", latency: "fixed", base: 1, gap: 1,
	}); err == nil || !strings.Contains(err.Error(), "synchronous rounds") {
		t.Fatalf("event+erew run: want the engine/mode conflict error, got %v", err)
	}
}

// TestRunReportDiff pins the -reportdiff gate: identical artifacts
// pass, a one-byte drift errors naming the differing line, a
// truncated (trailer-less) artifact fails loudly, and wrong usage
// errors.
func TestRunReportDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	c := filepath.Join(dir, "c.jsonl")
	truncated := filepath.Join(dir, "truncated.jsonl")
	body := "{\"scenario\":\"x/w=1\",\"rounds_mean\":4}\n{\"scenario\":\"x/w=2\",\"rounds_mean\":4}\n" +
		"{\"report\":\"trailer\",\"cells\":2}\n"
	for path, content := range map[string]string{
		a: body, b: body,
		c:         strings.Replace(body, "mean\":4}\n{", "mean\":5}\n{", 1),
		truncated: strings.Replace(body, "{\"report\":\"trailer\",\"cells\":2}\n", "", 1),
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if err := run(&out, config{reportdiff: true, diffArgs: []string{a, b}}); err != nil {
		t.Fatalf("identical artifacts flagged: %v", err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("unexpected reportdiff output %q", out.String())
	}
	err := run(&out, config{reportdiff: true, diffArgs: []string{a, c}})
	if err == nil {
		t.Fatal("drifting artifacts accepted")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("drift error does not locate the line: %v", err)
	}
	if err := run(&out, config{reportdiff: true, diffArgs: []string{a, truncated}}); err == nil ||
		!strings.Contains(err.Error(), "trailer") {
		t.Fatalf("trailer-less artifact: want a loud truncation error, got %v", err)
	}
	if err := run(&out, config{reportdiff: true, diffArgs: []string{a}}); err == nil {
		t.Fatal("single-artifact reportdiff accepted")
	}
	if err := run(&out, config{reportdiff: true, diffArgs: []string{a, filepath.Join(dir, "absent.jsonl")}}); err == nil {
		t.Fatal("missing artifact accepted")
	}
}

// TestRunSweepReportRoundTrip feeds a -sweep -report artifact back
// through the consumption path: ReadResults must skip the trailing
// report rows and Report over the parsed results must regenerate the
// same derived rows (modulo the wall-clock columns the artifact
// strips from its result lines).
func TestRunSweepReportRoundTrip(t *testing.T) {
	spec := `{
		"topologies": [{"family": "star", "n": 4}, {"family": "torus", "n": 4, "k": 2}],
		"workloads": [{"name": "perm"}, {"name": "khot", "hot": 2}],
		"engines": ["round", "event"],
		"workers": [1, 2],
		"trials": 2,
		"seed": 7
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, config{sweep: path, report: true}); err != nil {
		t.Fatal(err)
	}
	artifact := b.String()
	parsed, err := scenario.ReadResults(strings.NewReader(artifact))
	if err != nil {
		t.Fatalf("artifact does not round-trip through ReadResults: %v", err)
	}
	resultLines := 0
	for _, line := range strings.Split(strings.TrimSpace(artifact), "\n") {
		if !strings.Contains(line, `"report":`) {
			resultLines++
		}
	}
	if len(parsed) != resultLines || resultLines == 0 {
		t.Fatalf("ReadResults kept %d of %d result lines", len(parsed), resultLines)
	}
	sawEvent := false
	for _, r := range parsed {
		if r.Engine == "event" {
			sawEvent = true
		}
	}
	if !sawEvent {
		t.Fatal("round-tripped sweep lost its event cells")
	}
	// Rebuilding the report from the parsed results must produce the
	// artifact's derived rows: same groups, workers and rounds. The
	// speedup column is wall-clock-derived and the artifact's result
	// lines are stripped of timing, so it regenerates as zero — blank
	// it on both sides before comparing.
	rebuilt := scenario.Report(parsed)
	var fromArtifact []scenario.ReportRow
	for _, line := range strings.Split(strings.TrimSpace(artifact), "\n") {
		if !strings.Contains(line, `"report":`) || strings.Contains(line, `"report":"trailer"`) {
			continue
		}
		var row scenario.ReportRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("report row malformed: %v\n%s", err, line)
		}
		row.Speedup, row.RoundsPerSec = 0, 0
		fromArtifact = append(fromArtifact, row)
	}
	if len(rebuilt) != len(fromArtifact) {
		t.Fatalf("rebuilt %d report rows, artifact has %d", len(rebuilt), len(fromArtifact))
	}
	for i := range rebuilt {
		row := rebuilt[i]
		row.Speedup, row.RoundsPerSec = 0, 0
		if row != fromArtifact[i] {
			t.Fatalf("report row %d drifted in the round trip:\n%+v\n%+v", i, row, fromArtifact[i])
		}
	}
}

// TestRunSweepsMatchExpectedArtifacts is the in-process twin of the
// CI reportdiff gate: every checked-in sweep spec must reproduce its
// checked-in expected artifact byte for byte, whatever this machine's
// pool width. Drift means a behavior change — regenerate the
// expectation (see sweeps/README.md) when it is intentional.
func TestRunSweepsMatchExpectedArtifacts(t *testing.T) {
	for _, name := range []string{"smoke", "emul", "event"} {
		var b strings.Builder
		spec := filepath.Join("..", "..", "sweeps", name+".json")
		if err := run(&b, config{sweep: spec}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		expected := filepath.Join("..", "..", "sweeps", "expected", name+".jsonl")
		want, err := os.ReadFile(expected)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.String() != string(want) {
			t.Fatalf("%s sweep drifted from %s — regenerate it if the change is intentional", name, expected)
		}
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{net: "moebius"}); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, config{net: "mesh", n: 8, alg: "magic"}); err == nil {
		t.Fatal("unknown mesh algorithm accepted")
	}
	if err := run(&b, config{net: "star", n: 3, workload: "nope", trials: 1, alg: "threestage"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run(&b, config{net: "ttree", n: 5, k: 9, workload: "perm", trials: 1}); err == nil {
		t.Fatal("unknown ttree shape accepted")
	}
}

// TestRunWritesProfiles is the satellite smoke test for -cpuprofile /
// -memprofile: both files must exist and be non-empty after a run
// through the testable core.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	cfg := config{
		net: "star", n: 4, workload: "perm", trials: 2, seed: 7,
		cpuprofile: cpu, memprofile: mem,
	}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// An unwritable profile path errors instead of silently skipping.
	if err := run(&b, config{
		net: "star", n: 3, workload: "perm", trials: 1,
		cpuprofile: filepath.Join(dir, "no", "such", "dir.pprof"),
	}); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}

// TestRunHashedMatchesDense pins the -hashed and -paged A/B knobs:
// all three link-state paths must report identical rounds on a fixed
// seed.
func TestRunHashedMatchesDense(t *testing.T) {
	out := func(hashed, paged bool) string {
		var b strings.Builder
		cfg := config{net: "star", n: 4, workload: "perm", trials: 2, seed: 7, hashed: hashed, paged: paged}
		if err := run(&b, cfg); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	dense := out(false, false)
	if hashed := out(true, false); dense != hashed {
		t.Fatalf("dense and hashed reports differ:\n%s%s", dense, hashed)
	}
	if paged := out(false, true); dense != paged {
		t.Fatalf("dense and paged reports differ:\n%s%s", dense, paged)
	}
}

// TestRunMemStatsFlags drives the -memstats/-paged/-membudget trio
// through the testable core: the memory line names the resolved state,
// the JSON object carries the pricing fields, and an impossible budget
// degrades to the hashed fallback instead of erroring.
func TestRunMemStatsFlags(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "star", n: 4, workload: "perm", trials: 1, seed: 7, memStats: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memory: state=dense table=") {
		t.Fatalf("missing dense memory line in %q", b.String())
	}
	b.Reset()
	cfg.paged = true
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memory: state=paged") {
		t.Fatalf("missing paged memory line in %q", b.String())
	}
	b.Reset()
	cfg.paged = false
	cfg.memBudget = 1 // no table fits one byte: degrade, don't error
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "state=hashed degraded(over budget)") {
		t.Fatalf("missing degraded memory line in %q", b.String())
	}
	b.Reset()
	jcfg := config{net: "star", n: 4, workload: "perm", trials: 1, seed: 7, paged: true, jsonOut: true}
	if err := run(&b, jcfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("memstats JSON malformed: %v\n%s", err, b.String())
	}
	if res.State != "paged" || !res.Paged || res.TableBytes <= 0 || res.ArenaBytes <= 0 || res.BPerNode <= 0 {
		t.Fatalf("unexpected memory fields: %+v", res)
	}
	// Event cells price time, not table memory: the line says so
	// instead of reporting zeroes as a footprint.
	b.Reset()
	ecfg := config{
		net: "star", n: 4, workload: "perm", trials: 1, seed: 7, memStats: true,
		engine: "event", latency: "fixed", base: 1, gap: 1,
	}
	if err := run(&b, ecfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memory: not priced") {
		t.Fatalf("missing event memory note in %q", b.String())
	}
}

// TestRunServerDiff pins the server-side diff client: -reportdiff
// with -server sends job IDs to the daemon's diff endpoint instead of
// reading local files. A job against itself is identical, different
// seeds error with the server's drift detail, and bad usage (wrong
// arity, unknown jobs) errors loudly.
func TestRunServerDiff(t *testing.T) {
	srv, err := sweepd.New(sweepd.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	submit := func(seed int) string {
		t.Helper()
		spec := fmt.Sprintf(`{"name":"diff","topologies":[{"family":"star","n":4}],"workloads":[{"name":"perm"}],"trials":1,"seed":%d}`, seed)
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for st.State != "done" {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", st.ID, st.State)
			}
			time.Sleep(5 * time.Millisecond)
			r, err := http.Get(ts.URL + "/sweeps/" + st.ID)
			if err != nil {
				t.Fatal(err)
			}
			err = json.NewDecoder(r.Body).Decode(&st)
			r.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		return st.ID
	}
	a := submit(7)
	b := submit(8)

	var out strings.Builder
	if err := run(&out, config{reportdiff: true, server: ts.URL, diffArgs: []string{a, a}}); err != nil {
		t.Fatalf("self-diff flagged: %v", err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("unexpected server diff output %q", out.String())
	}
	if err := run(&out, config{reportdiff: true, server: ts.URL, diffArgs: []string{a, b}}); err == nil ||
		!strings.Contains(err.Error(), "line") {
		t.Fatalf("cross-seed server diff: want a drift error locating the line, got %v", err)
	}
	if err := run(&out, config{reportdiff: true, server: ts.URL, diffArgs: []string{a}}); err == nil {
		t.Fatal("single-ID server diff accepted")
	}
	if err := run(&out, config{reportdiff: true, server: ts.URL, diffArgs: []string{a, "nope"}}); err == nil {
		t.Fatal("diff against an unknown job accepted")
	}
}

// TestRunAdvSearch drives the adversarial-search mode end to end in
// process: spec from disk, worst-per-(family,strategy) report lines,
// -freeze writing a loadable frozen workload, and -json carrying the
// full finding report.
func TestRunAdvSearch(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "adv.json")
	const body = `{"name":"t","families":[{"family":"hypercube","n":3}],"seeds":3,"iters":2,"trials":1,"seed":7}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	freeze := filepath.Join(dir, "frozen")
	var b strings.Builder
	if err := run(&b, config{advsearch: spec, freeze: freeze}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"advsearch hypercube(k=3)", "strategy=greedy", "strategy=seeds", "strategy=structured", "within=true", "froze adv:hypercube:g8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report %q lacks %q", out, want)
		}
	}
	// The frozen file loads back and prices as a workload.
	b.Reset()
	if err := run(&b, config{frozen: freeze, net: "hypercube", n: 3, workload: "adv:hypercube:g8", trials: 1, seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "adv:hypercube:g8: rounds mean=") {
		t.Fatalf("frozen workload report %q", b.String())
	}
	// ...but refuses every other node count.
	if err := run(&b, config{frozen: freeze, net: "star", n: 4, workload: "adv:hypercube:g8", trials: 1}); err == nil ||
		!strings.Contains(err.Error(), "pinned to 8 nodes") {
		t.Fatalf("frozen workload on the wrong instance: %v", err)
	}
	b.Reset()
	if err := run(&b, config{advsearch: spec, jsonOut: true}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []map[string]any `json:"findings"`
	}
	if err := json.Unmarshal([]byte(b.String()), &rep); err != nil {
		t.Fatalf("-json output unparseable: %v\n%s", err, b.String())
	}
	if len(rep.Findings) == 0 {
		t.Fatal("-json report carries no findings")
	}
	// Bad inputs fail loudly.
	if err := run(&b, config{advsearch: filepath.Join(dir, "absent.json")}); err == nil {
		t.Fatal("missing spec accepted")
	}
	if err := run(&b, config{frozen: filepath.Join(dir, "nope", "deeper")}); err == nil {
		// A missing -frozen directory is tolerated (zero files); only a
		// corrupt file errors. Write one and retry.
		bad := filepath.Join(dir, "badfrozen")
		if err := os.MkdirAll(bad, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(bad, "x.advperm"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(&b, config{frozen: bad, list: true}); err == nil {
			t.Fatal("corrupt frozen directory accepted")
		}
	}
}

// TestRunAdvSearchJournaled pins the -out contract: the report and
// its .cells seed-sweep artifact land on disk, and a re-run resumes
// over the journal to the byte-identical report.
func TestRunAdvSearchJournaled(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "adv.json")
	const body = `{"name":"t","families":[{"family":"star","n":4}],"strategies":["seeds"],"seeds":3,"seed":7}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "report.json")
	var b strings.Builder
	if err := run(&b, config{advsearch: spec, out: out}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out + ".cells"); err != nil {
		t.Fatalf("seed-sweep artifact missing: %v", err)
	}
	if err := run(&b, config{advsearch: spec, out: out}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("resumed advsearch report drifted")
	}
}

// TestRunAdvSweepMatchesExpectedArtifact is the adversarial
// regression gate's local twin: the checked-in frozen adversaries
// swept over sweeps/adv.json must reproduce the expected artifact
// byte for byte.
func TestRunAdvSweepMatchesExpectedArtifact(t *testing.T) {
	var b strings.Builder
	cfg := config{
		frozen: filepath.Join("..", "..", "sweeps", "adversarial"),
		sweep:  filepath.Join("..", "..", "sweeps", "adv.json"),
	}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	expected := filepath.Join("..", "..", "sweeps", "expected", "adv.jsonl")
	want, err := os.ReadFile(expected)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Fatalf("adversarial sweep drifted from %s — a router change moved a frozen worst case; regenerate only if intentional", expected)
	}
}
