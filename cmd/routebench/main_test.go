package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The smoke tests run each main path in-process on a tiny
// configuration and assert the report line comes out clean.

func TestRunPointToPointSmoke(t *testing.T) {
	for _, net := range []string{"star", "shuffle", "butterfly", "hypercube", "pancake", "ttree", "debruijn"} {
		var b strings.Builder
		cfg := config{net: net, n: 3, workload: "perm", trials: 1, seed: 7, workers: 2}
		if err := run(&b, cfg); err != nil {
			t.Fatalf("%s: %v", net, err)
		}
		if !strings.Contains(b.String(), "rounds mean=") {
			t.Fatalf("%s: unexpected report %q", net, b.String())
		}
	}
}

func TestRunTorusSmoke(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "torus", n: 4, k: 3, workload: "perm", trials: 1, seed: 7, workers: 2}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torus(k=4,n=3)") {
		t.Fatalf("unexpected report %q", b.String())
	}
}

func TestRunLeveledViewSmoke(t *testing.T) {
	// -leveled routes on the unrolling when the family has one
	// (Algorithm 2.1 on the de Bruijn graph here).
	var b strings.Builder
	cfg := config{net: "debruijn", n: 4, k: 2, workload: "perm", trials: 1, seed: 7, useLeveled: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "debruijn-leveled") {
		t.Fatalf("unexpected report %q", b.String())
	}
	// ...and errors cleanly when it has none — including on the mesh,
	// which dispatches to its specialized router.
	if err := run(&b, config{net: "torus", n: 4, workload: "perm", trials: 1, useLeveled: true}); err == nil {
		t.Fatal("leveled view of the torus accepted")
	}
	if err := run(&b, config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, useLeveled: true}); err == nil {
		t.Fatal("leveled view of the mesh accepted")
	}
}

func TestRunRejectsOversizedGraphsBeforeAllocating(t *testing.T) {
	// A 2^25-node de Bruijn graph builds in O(1); the command must
	// refuse it with an error before materializing any per-node
	// workload, on both the direct and the leveled path.
	for _, cfg := range []config{
		{net: "debruijn", n: 25, k: 2, workload: "perm", trials: 1},
		{net: "debruijn", n: 25, k: 2, workload: "perm", trials: 1, useLeveled: true},
	} {
		var b strings.Builder
		err := run(&b, cfg)
		if err == nil {
			t.Fatalf("%+v accepted", cfg)
		}
		if !strings.Contains(err.Error(), "key space") {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestRunMeshSmoke(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, seed: 7}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mesh(8x8)") {
		t.Fatalf("unexpected report %q", b.String())
	}
}

func TestRunTransposeOnTorus(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "torus", n: 8, k: 2, workload: "transpose", trials: 1, seed: 7}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "transpose") {
		t.Fatalf("unexpected report %q", b.String())
	}
	// Non-square node counts (5^3 = 125) reject the workload cleanly.
	if err := run(&b, config{net: "torus", n: 5, k: 3, workload: "transpose", trials: 1}); err == nil {
		t.Fatal("transpose accepted on a non-square torus")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "star", n: 4, workload: "perm", trials: 2, seed: 7, jsonOut: true, workers: 2}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, b.String())
	}
	if res.Family != "star" || res.Topology != "star(n=4)" || res.Nodes != 24 {
		t.Fatalf("unexpected fields: %+v", res)
	}
	if res.Trials != 2 || res.Workers != 2 || res.RoundsMean <= 0 || res.RoundsMax <= 0 {
		t.Fatalf("run metadata wrong: %+v", res)
	}
	if res.RoundsPerDiam <= 0 || res.ElapsedMS < 0 {
		t.Fatalf("derived metrics wrong: %+v", res)
	}
}

func TestRunJSONOnMesh(t *testing.T) {
	var b strings.Builder
	cfg := config{net: "mesh", n: 8, workload: "perm", alg: "threestage", trials: 1, seed: 7, jsonOut: true}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(b.String()), &res); err != nil {
		t.Fatalf("mesh JSON malformed: %v\n%s", err, b.String())
	}
	if res.Algorithm != "threestage" || res.Nodes != 64 {
		t.Fatalf("unexpected fields: %+v", res)
	}
}

func TestRunListsFamilies(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{list: true}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"star", "pancake", "ttree", "torus", "debruijn", "mesh", "butterfly"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("-list missing %q:\n%s", name, b.String())
		}
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{net: "moebius"}); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, config{net: "mesh", n: 8, alg: "magic"}); err == nil {
		t.Fatal("unknown mesh algorithm accepted")
	}
	if err := run(&b, config{net: "star", n: 3, workload: "nope", trials: 1, alg: "threestage"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := run(&b, config{net: "ttree", n: 5, k: 9, workload: "perm", trials: 1}); err == nil {
		t.Fatal("unknown ttree shape accepted")
	}
}

// TestRunWritesProfiles is the satellite smoke test for -cpuprofile /
// -memprofile: both files must exist and be non-empty after a run
// through the testable core.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var b strings.Builder
	cfg := config{
		net: "star", n: 4, workload: "perm", trials: 2, seed: 7,
		cpuprofile: cpu, memprofile: mem,
	}
	if err := run(&b, cfg); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	// An unwritable profile path errors instead of silently skipping.
	if err := run(&b, config{
		net: "star", n: 3, workload: "perm", trials: 1,
		cpuprofile: filepath.Join(dir, "no", "such", "dir.pprof"),
	}); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
}

// TestRunHashedMatchesDense pins the -hashed A/B knob: both link-state
// paths must report identical rounds on a fixed seed.
func TestRunHashedMatchesDense(t *testing.T) {
	out := func(hashed bool) string {
		var b strings.Builder
		cfg := config{net: "star", n: 4, workload: "perm", trials: 2, seed: 7, hashed: hashed}
		if err := run(&b, cfg); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if dense, hashed := out(false), out(true); dense != hashed {
		t.Fatalf("dense and hashed reports differ:\n%s%s", dense, hashed)
	}
}
