// Command sweepd serves the sweep pipeline over HTTP: POST a scenario
// spec, poll the job, fetch the byte-reproducible JSONL artifact.
// Jobs are content-addressed by spec hash (duplicate submissions are
// served from the artifact cache), the queue is bounded (full = 429 +
// Retry-After), and every job runs through the journaled runner — a
// SIGTERM checkpoints running jobs and a restarted daemon resumes
// them to byte-identical artifacts.
//
// Examples:
//
//	sweepd -addr :8080 -data /var/lib/sweepd
//	curl -s -XPOST --data-binary @sweeps/smoke.json localhost:8080/sweeps
//	curl -s localhost:8080/sweeps/<id>
//	curl -s localhost:8080/sweeps/<id>/artifact
//	curl -s -XPOST localhost:8080/sweeps/<id>/cancel
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pramemu/internal/sweepd"
	_ "pramemu/internal/topology/families"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		data    = flag.String("data", "sweepd-data", "data directory: specs, journals and artifacts (the daemon's durable state)")
		queue   = flag.Int("queue", 16, "bounded job-queue depth; submissions beyond it get 429 + Retry-After")
		jobs    = flag.Int("jobs", 1, "jobs priced concurrently (each sweep parallelizes internally over its spec's pool)")
		timeout = flag.Duration("timeout", 0, "per-job wall-clock cap; 0 = none (expired jobs checkpoint completed cells)")
		retries = flag.Int("retries", 2, "extra passes re-running transiently failed (timed-out) cells before an artifact finalizes")
		backoff = flag.Duration("backoff", 100*time.Millisecond, "first cell-retry delay, doubling per pass")
		bcache  = flag.Int64("buildcache", 0, "topology build-cache budget in bytes, shared by all jobs (0 = default 256 MiB; negative disables)")
	)
	flag.Parse()
	if err := run(*addr, sweepd.Config{
		DataDir:          *data,
		QueueDepth:       *queue,
		Workers:          *jobs,
		JobTimeout:       *timeout,
		Retries:          *retries,
		RetryBackoff:     *backoff,
		BuildCacheBudget: *bcache,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "sweepd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cfg sweepd.Config) error {
	srv, err := sweepd.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sweepd: listening on %s, data in %s\n", addr, cfg.DataDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, checkpoint running jobs (the
	// journals keep every completed cell), then exit. A restart over
	// the same data directory resumes them.
	fmt.Fprintln(os.Stderr, "sweepd: shutting down, checkpointing running jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		return err
	}
	srv.Close()
	return nil
}
