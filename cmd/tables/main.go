// Command tables regenerates every experiment table of the paper
// reproduction (the E1-E21 index in DESIGN.md) and prints them to
// stdout in the format recorded in EXPERIMENTS.md. With -sweep it
// instead consumes a `routebench -sweep` JSONL artifact (report rows,
// if present, are skipped and recomputed) and renders the derived
// report: the engine-workers speedup table and the per-class
// aggregate table.
//
// Usage:
//
//	tables [-quick] [-trials N] [-seed S] [-only E7]
//	tables -sweep BENCH_sweep_smoke.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pramemu/internal/experiments"
	"pramemu/internal/metrics"
	"pramemu/internal/scenario"
	_ "pramemu/internal/topology/families"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced configurations")
	trials := flag.Int("trials", 5, "seeded repetitions per configuration")
	seed := flag.Uint64("seed", 1991, "base random seed")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E7,E8)")
	sweep := flag.String("sweep", "", "render the derived report of this routebench -sweep JSONL artifact instead of running experiments")
	flag.Parse()

	if *sweep != "" {
		if err := runSweepReport(os.Stdout, *sweep); err != nil {
			fmt.Fprintf(os.Stderr, "tables: %v\n", err)
			os.Exit(1)
		}
		return
	}
	o := experiments.Options{Quick: *quick, Trials: *trials, Seed: *seed}
	if err := run(os.Stdout, o, *only); err != nil {
		fmt.Fprintf(os.Stderr, "tables: %v\n", err)
		os.Exit(1)
	}
}

// runSweepReport reads a sweep JSONL artifact and renders the derived
// report tables. It is the consumption side of `routebench -sweep
// -report`: the same scenario.Report pass runs over the parsed result
// rows, so an untimed artifact still yields the per-class aggregates
// and the workers-equivalence rows (with the speedup column dashed).
func runSweepReport(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	results, err := scenario.ReadResults(f)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("sweep: %s holds no result rows", path)
	}
	for _, t := range scenario.ReportTables(scenario.Report(results)) {
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	return nil
}

// run renders the selected experiment tables to w. It is the testable
// core of the command.
func run(w io.Writer, o experiments.Options, only string) error {
	type exp struct {
		id  string
		run func(experiments.Options) *metrics.Table
	}
	all := []exp{
		{"E1", experiments.E1LeveledPermutation},
		{"E2", experiments.E2StarRouting},
		{"E3", experiments.E3ShuffleRouting},
		{"E4", experiments.E4HashLoad},
		{"E5", experiments.E5PRAMStepLeveled},
		{"E6", experiments.E6StarVsHypercube},
		{"E7", experiments.E7MeshRouting},
		{"E8", experiments.E8MeshEmulation},
		{"E9", experiments.E9MeshLocality},
		{"E10", experiments.E10QueueSizes},
		{"E11", experiments.E11Rehash},
		{"E12", experiments.E12SortVsRoute},
		{"E14", experiments.E14CrossFamily},
		{"E16", experiments.E16ScenarioMatrix},
		{"E17", experiments.E17EmulationMatrix},
		{"E18", experiments.E18AsynchronyMatrix},
		{"E19", experiments.E19ScaleCeiling},
		{"E20", experiments.E20BuildCache},
		{"E21", experiments.E21AdversarialBounds},
	}
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		e.run(o).Fprint(w)
		fmt.Fprintln(w)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", only)
	}
	return nil
}
