package main

import (
	"strings"
	"testing"

	"pramemu/internal/experiments"
)

// The smoke test renders one cheap experiment table in-process with
// quick sizes; the full sweep belongs to cmd/tables runs and the
// internal/experiments suite.

func TestRunSingleQuickTable(t *testing.T) {
	var b strings.Builder
	o := experiments.Options{Quick: true, Trials: 1, Seed: 7}
	if err := run(&b, o, "E4"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "maxload") {
		t.Fatalf("E4 table malformed:\n%s", out)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, experiments.Options{Quick: true, Trials: 1}, "E99"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
