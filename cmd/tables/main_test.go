package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pramemu/internal/experiments"
	"pramemu/internal/scenario"
)

// The smoke test renders one cheap experiment table in-process with
// quick sizes; the full sweep belongs to cmd/tables runs and the
// internal/experiments suite.

func TestRunSingleQuickTable(t *testing.T) {
	var b strings.Builder
	o := experiments.Options{Quick: true, Trials: 1, Seed: 7}
	if err := run(&b, o, "E4"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "maxload") {
		t.Fatalf("E4 table malformed:\n%s", out)
	}
}

// TestRunSweepReport drives -sweep: a JSONL artifact produced by the
// scenario runner (report rows interleaved, as `routebench -sweep
// -report` emits them) renders into the two derived-report tables.
func TestRunSweepReport(t *testing.T) {
	results, err := scenario.Run(scenario.Spec{
		Topologies: []scenario.TopoRef{{Family: "star", N: 4}},
		Workloads:  []scenario.WorkRef{{Name: "perm"}, {Name: "khot", Hot: 2}},
		Workers:    []int{1, 2},
		Trials:     1, Seed: 7, Pool: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.WriteJSONL(f, results); err != nil {
		t.Fatal(err)
	}
	if err := scenario.WriteReportJSONL(f, scenario.Report(results)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := runSweepReport(&b, path); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"speedup across the engine-workers axis", "per-class aggregates", "many-one", "star[n=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep report missing %q:\n%s", want, out)
		}
	}
	// Missing and empty artifacts error cleanly.
	if err := runSweepReport(&b, filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing artifact accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSweepReport(&b, empty); err == nil {
		t.Fatal("empty artifact accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, experiments.Options{Quick: true, Trials: 1}, "E99"); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}
