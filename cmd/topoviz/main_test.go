package main

import (
	"os"
	"strings"
	"testing"

	"pramemu/internal/testio"
)

// The smoke test runs main in-process (topoviz reads os.Args, not
// flag.CommandLine, so the test harness flags don't interfere) and
// asserts all five figures render.

func TestMainRendersAllFigures(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"topoviz", "all"}
	out := testio.CaptureStdout(t, main)
	for _, want := range []string{"Figure 1", "Figure 2(a)", "Figure 3", "Figure 4", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestMainSingleFigure(t *testing.T) {
	oldArgs := os.Args
	defer func() { os.Args = oldArgs }()
	os.Args = []string{"topoviz", "fig4"}
	out := testio.CaptureStdout(t, main)
	if !strings.Contains(out, "2-way shuffle") || strings.Contains(out, "Figure 1") {
		t.Fatalf("fig4 selection broken:\n%s", out)
	}
}
