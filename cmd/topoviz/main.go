// Command topoviz renders the paper's five figures as ASCII:
//
//	fig1 — a leveled network of ℓ levels with degree d (§2.3.1)
//	fig2 — the 3-star graph and 4-star adjacency summary (§2.3.4)
//	fig3 — the logical leveled network of the 3-star (Algorithm 2.2)
//	fig4 — the 2-way shuffle with n = 2 (§2.3.5)
//	fig5 — the sliced partitioning of the mesh (§3.4)
//
// Usage: topoviz [fig1|fig2|fig3|fig4|fig5|all]
package main

import (
	"fmt"
	"os"
	"strings"

	"pramemu/internal/leveled"
	"pramemu/internal/mesh"
	"pramemu/internal/shuffle"
	"pramemu/internal/star"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	figs := map[string]func(){
		"fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5,
	}
	if which == "all" {
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5"} {
			figs[name]()
			fmt.Println()
		}
		return
	}
	f, ok := figs[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "topoviz: unknown figure %q (want fig1..fig5 or all)\n", which)
		os.Exit(1)
	}
	f()
}

func fig1() {
	fmt.Println("Figure 1: a leveled network (ℓ levels, width N, degree d)")
	fmt.Println("  shown: d-ary butterfly d=2, ℓ=4 (binary butterfly, 8 rows)")
	spec := leveled.NewButterfly(3)
	for node := 0; node < spec.Width(); node++ {
		var b strings.Builder
		fmt.Fprintf(&b, "  node %d: ", node)
		for level := 0; level < spec.Levels()-1; level++ {
			fmt.Fprintf(&b, "L%d->{", level)
			for slot := 0; slot < spec.OutDegree(level, node); slot++ {
				if slot > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%d", spec.Out(level, node, slot))
			}
			b.WriteString("} ")
		}
		fmt.Println(b.String())
	}
}

func fig2() {
	fmt.Println("Figure 2(a): the 3-star graph (6 nodes, a 6-cycle of SWAP2/SWAP3 edges)")
	g := star.New(3)
	perm := make([]int, 3)
	label := func(u int) string {
		g.Perm(u, perm)
		letters := []rune{'A', 'B', 'C'}
		var b strings.Builder
		for _, s := range perm {
			b.WriteRune(letters[s])
		}
		return b.String()
	}
	for u := 0; u < g.Nodes(); u++ {
		fmt.Printf("  %s --SWAP2--> %s   --SWAP3--> %s\n",
			label(u), label(g.Neighbor(u, 0)), label(g.Neighbor(u, 1)))
	}
	fmt.Println("Figure 2(b): 4-star adjacency summary")
	g4 := star.New(4)
	fmt.Printf("  nodes=%d degree=%d diameter=%d (4 interconnected 3-stars)\n",
		g4.Nodes(), g4.Degree(0), g4.Diameter())
}

func fig3() {
	fmt.Println("Figure 3: logical leveled network of the 3-star")
	g := star.New(3)
	spec := g.AsLeveled()
	fmt.Printf("  %d columns x %d nodes, degree %d (n-1 SWAP links + 1 stay link)\n",
		spec.Levels(), spec.Width(), spec.Degree())
	fmt.Println("  unique greedy path example: node 5 (CBA) -> node 0 (ABC):")
	node, dst := g.Nodes()-1, 0
	perm := make([]int, 3)
	for level := 0; level < spec.Levels()-1; level++ {
		g.Perm(node, perm)
		next := spec.Out(level, node, spec.NextHop(level, node, dst))
		fmt.Printf("    column %d: node %d %v\n", level, node, perm)
		node = next
	}
	g.Perm(node, perm)
	fmt.Printf("    column %d: node %d %v (destination)\n", spec.Levels()-1, node, perm)
}

func fig4() {
	fmt.Println("Figure 4: the 2-way shuffle with n=2 (4 nodes)")
	g := shuffle.New(2, 2)
	for node := 0; node < g.Nodes(); node++ {
		fmt.Printf("  %02b -> {%02b, %02b}\n", node, g.Neighbor(node, 0), g.Neighbor(node, 1))
	}
}

func fig5() {
	fmt.Println("Figure 5: partitioning of the mesh into horizontal slices (ε = 1/log n)")
	const n = 16
	g := mesh.New(n)
	slice := 4 // n / log2(n) = 16/4
	fmt.Printf("  %dx%d mesh, slice height %d:\n", n, n, slice)
	for r := 0; r < n; r++ {
		if r%slice == 0 {
			fmt.Println("  +" + strings.Repeat("-", 2*n-1) + "+")
		}
		fmt.Println("  |" + strings.TrimRight(strings.Repeat("o ", n), " ") + "|")
	}
	fmt.Println("  +" + strings.Repeat("-", 2*n-1) + "+")
	_ = g
}
