// Command pramemu runs a PRAM algorithm from the library on a chosen
// emulated network and reports the PRAM step count, the emulated
// network time, and the slowdown per step — the quantity the paper's
// emulation theorems bound by the network diameter. Networks are
// selected by topology-registry name, so every registered family
// (including pancake, ttree, torus and debruijn) emulates without
// command changes.
//
// Examples:
//
//	pramemu -alg prefixsum -net star -n 5
//	pramemu -alg sort -net shuffle -n 3
//	pramemu -alg maxcrcw -net pancake -n 5 -combine
//	pramemu -alg matmul -net mesh -n 8
//	pramemu -alg listrank -net torus -n 8 -k 3
//	pramemu -alg prefixsum -net debruijn -n 9 -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/mesh"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

func main() {
	algName := flag.String("alg", "prefixsum", "algorithm: prefixsum, sort, listrank, maxcrcw, matmul, broadcast")
	netName := flag.String("net", "star", "network family from the topology registry, or \"ideal\"")
	n := flag.Int("n", 5, "primary network size parameter")
	k := flag.Int("k", 0, "secondary network size parameter (0 = family default)")
	seed := flag.Uint64("seed", 1991, "random seed")
	combine := flag.Bool("combine", false, "enable CRCW combining in the network")
	workers := flag.Int("workers", 0, "round-engine workers (0 = GOMAXPROCS, 1 = sequential; identical results either way)")
	flag.Parse()

	if err := run(os.Stdout, *algName, *netName, *n, *k, *seed, *combine, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "pramemu: %v\n", err)
		os.Exit(1)
	}
}

// run executes one invocation, writing the report to w. It is the
// testable core of the command.
func run(w io.Writer, algName, netName string, n, k int, seed uint64, combine bool, workers int) error {
	net, err := buildNetwork(netName, n, k)
	if err != nil {
		return err
	}
	// The ideal machine has no network to size the processor count, so
	// -n names it directly there.
	procs := n
	if net != nil {
		procs = net.Nodes()
	}

	variant, runAlg, err := buildAlgorithm(algName, &procs, seed)
	if err != nil {
		return err
	}
	if net != nil && procs > net.Nodes() {
		return fmt.Errorf("%s needs %d processors, %s has %d nodes",
			algName, procs, net.Name(), net.Nodes())
	}

	var exec pram.StepExecutor = pram.Unit{}
	netLabel := "ideal PRAM"
	diam := 1
	var e *emul.Emulator
	if net != nil {
		e, err = emul.New(net, emul.Config{Memory: 1 << 24, Seed: seed, Combine: combine, Workers: workers})
		if err != nil {
			return err
		}
		exec = e
		netLabel = net.Name()
		diam = net.Diameter()
	}
	m := pram.New(pram.Config{
		Procs:    procs,
		Memory:   1 << 24,
		Variant:  variant,
		Executor: exec,
	})
	runAlg(m)

	fmt.Fprintf(w, "algorithm    : %s (%s)\n", algName, variant)
	fmt.Fprintf(w, "network      : %s (%d processors, diameter %d)\n", netLabel, procs, diam)
	fmt.Fprintf(w, "PRAM steps   : %d\n", m.Steps())
	fmt.Fprintf(w, "emulated time: %d\n", m.Time())
	if m.Steps() > 0 {
		perStep := float64(m.Time()) / float64(m.Steps())
		fmt.Fprintf(w, "per step     : %.1f network rounds (%.2f x diameter)\n",
			perStep, perStep/float64(diam))
	}
	if e != nil {
		fmt.Fprintf(w, "rehashes     : %d (hash description: %d bits)\n", e.Rehashes(), e.HashBits())
	}
	return nil
}

// buildNetwork resolves the name through the topology registry and
// adapts the result for the emulator; nil means the ideal machine.
// The mesh keeps its specialized §3.3 two-phase scheme; every other
// family goes through the generic topology adapter.
func buildNetwork(name string, n, k int) (emul.Network, error) {
	if name == "ideal" {
		return nil, nil
	}
	b, err := topology.Build(name, topology.Params{N: n, K: k})
	if err != nil {
		return nil, err
	}
	if g, ok := b.Graph.(*mesh.Grid); ok {
		return &emul.MeshNetwork{G: g}, nil
	}
	return emul.NewTopologyNetwork(b)
}

// buildAlgorithm returns the machine variant and a closure running the
// algorithm with verified results. procs is adjusted to the
// algorithm's requirement (power of two for sorting, squares for
// matmul) while staying within the provided node budget.
func buildAlgorithm(name string, procs *int, seed uint64) (pram.Variant, func(*pram.Machine), error) {
	switch name {
	case "prefixsum":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			for i := 0; i < n; i++ {
				m.Store(uint64(i), 1)
			}
			algorithms.PrefixSums(m, 0, n)
			for i := 0; i < n; i++ {
				if m.Load(uint64(i)) != int64(i+1) {
					panic("prefix sum incorrect")
				}
			}
		}, nil
	case "broadcast":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			m.Store(0, 42)
			algorithms.Broadcast(m, 0, 1, n)
		}, nil
	case "sort":
		n := 1
		for n*2 <= *procs {
			n *= 2
		}
		*procs = n
		return pram.EREW, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.OddEvenMergeSort(m, 0, n)
			prev := int64(-1)
			for i := 0; i < n; i++ {
				v := m.Load(uint64(i))
				if v < prev {
					panic("sort incorrect")
				}
				prev = v
			}
		}, nil
	case "listrank":
		n := *procs
		return pram.CREW, func(m *pram.Machine) {
			order := prng.New(seed).Perm(n)
			for pos, node := range order {
				next := int64(-1)
				if pos+1 < n {
					next = int64(order[pos+1])
				}
				m.Store(uint64(node), next)
			}
			algorithms.ListRank(m, 0, uint64(n), n)
		}, nil
	case "maxcrcw":
		n := *procs
		return pram.CRCWMax, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.MaxConcurrent(m, 0, n, uint64(n))
		}, nil
	case "matmul":
		side := 1
		for (side+1)*(side+1) <= *procs {
			side++
		}
		*procs = side * side
		return pram.CREW, func(m *pram.Machine) {
			src := prng.New(seed)
			nn := uint64(side * side)
			for i := uint64(0); i < 2*nn; i++ {
				m.Store(i, int64(src.Intn(7)-3))
			}
			algorithms.MatMul(m, 0, nn, 2*nn, side)
		}, nil
	default:
		return pram.EREW, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
