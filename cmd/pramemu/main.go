// Command pramemu runs a PRAM algorithm from the library on a chosen
// emulated network and reports the PRAM step count, the emulated
// network time, and the slowdown per step — the quantity the paper's
// emulation theorems bound by the network diameter. Networks are
// selected by topology-registry name, so every registered family
// (including pancake, ttree, torus and debruijn) emulates without
// command changes.
//
// With -step it prices one synthetic emulated PRAM step instead of a
// whole program: the named workload-registry pattern becomes the
// step's memory accesses and the cell runs on scenario.RunCell — the
// exact path a `routebench -sweep` spec with a mode axis takes — so
// its numbers reproduce the equivalent sweep cell line for line.
//
// Examples:
//
//	pramemu -alg prefixsum -net star -n 5
//	pramemu -alg sort -net shuffle -n 3
//	pramemu -alg maxcrcw -net pancake -n 5 -combine
//	pramemu -alg matmul -net mesh -n 8
//	pramemu -alg listrank -net torus -n 8 -k 3
//	pramemu -alg prefixsum -net debruijn -n 9 -workers 8
//	pramemu -step perm -net star -n 5 -mode erew
//	pramemu -step khot -net shuffle -n 3 -mode crcw -trials 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/mesh"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/scenario"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

// config carries one fully parsed invocation.
type config struct {
	alg     string
	net     string
	step    string // workload name; non-empty selects single-step mode
	mode    string // erew | crcw (single-step mode)
	n, k    int
	trials  int
	seed    uint64
	combine bool
	workers int
}

func main() {
	cfg := config{}
	flag.StringVar(&cfg.alg, "alg", "prefixsum", "algorithm: prefixsum, sort, listrank, maxcrcw, matmul, broadcast")
	flag.StringVar(&cfg.net, "net", "star", "network family from the topology registry, or \"ideal\" (algorithm mode only)")
	flag.StringVar(&cfg.step, "step", "", "price one emulated PRAM step of this workload-registry pattern instead of running -alg")
	flag.StringVar(&cfg.mode, "mode", "erew", "emulation mode for -step: erew (Thm 2.5) or crcw (Thm 2.6, combining)")
	flag.IntVar(&cfg.n, "n", 5, "primary network size parameter")
	flag.IntVar(&cfg.k, "k", 0, "secondary network size parameter (0 = family default)")
	flag.IntVar(&cfg.trials, "trials", 5, "seeded trials for -step")
	flag.Uint64Var(&cfg.seed, "seed", 1991, "random seed")
	flag.BoolVar(&cfg.combine, "combine", false, "enable CRCW combining in the network (algorithm mode)")
	flag.IntVar(&cfg.workers, "workers", 0, "round-engine workers (0 = GOMAXPROCS, 1 = sequential; identical results either way)")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pramemu: %v\n", err)
		os.Exit(1)
	}
}

// run executes one invocation, writing the report to w. It is the
// testable core of the command.
func run(w io.Writer, cfg config) error {
	if cfg.step != "" {
		return runStep(w, cfg)
	}
	return runAlgorithm(w, cfg.alg, cfg.net, cfg.n, cfg.k, cfg.seed, cfg.combine, cfg.workers)
}

// stepCell maps a -step invocation onto the scenario grid cell the
// equivalent `routebench -sweep` spec would expand to, preferring the
// leveled view where one exists (the emulator's preference, matching
// the algorithm path's buildNetwork).
func stepCell(cfg config) (scenario.Cell, error) {
	if cfg.net == "ideal" {
		return scenario.Cell{}, fmt.Errorf("-step prices a network step; the ideal machine has no network (every step costs 1)")
	}
	b, err := topology.Build(cfg.net, topology.Params{N: cfg.n, K: cfg.k})
	if err != nil {
		return scenario.Cell{}, err
	}
	return scenario.Cell{
		Topo:    scenario.TopoRef{Family: cfg.net, N: cfg.n, K: cfg.k, Leveled: b.Spec != nil && b.Graph != nil},
		Work:    scenario.WorkRef{Name: cfg.step},
		Built:   b,
		Mode:    cfg.mode,
		Workers: cfg.workers,
		Trials:  cfg.trials,
		Seed:    cfg.seed,
	}, nil
}

// runStep prices one synthetic emulated step through scenario.RunCell
// — pramemu and routebench sweeps share this path, so the two reports
// agree on every number.
func runStep(w io.Writer, cfg config) error {
	cell, err := stepCell(cfg)
	if err != nil {
		return err
	}
	res, err := scenario.RunCell(cell)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "step         : %s (mode=%s, %d trials)\n", res.Workload, res.Mode, res.Trials)
	fmt.Fprintf(w, "network      : %s (%d processors, diameter %d, view %s)\n",
		res.Topology, res.Nodes, res.Diameter, res.View)
	fmt.Fprintf(w, "step cost    : mean=%.1f max=%d (%.2f x diameter)\n",
		res.RoundsMean, res.RoundsMax, res.RoundsPerDiam)
	fmt.Fprintf(w, "merges       : %d (total)\n", res.Merges)
	fmt.Fprintf(w, "rehashes     : %d (total)\n", res.Rehashes)
	fmt.Fprintf(w, "max queue    : %d\n", res.MaxQueue)
	return nil
}

// runAlgorithm executes one algorithm-mode invocation.
func runAlgorithm(w io.Writer, algName, netName string, n, k int, seed uint64, combine bool, workers int) error {
	net, err := buildNetwork(netName, n, k)
	if err != nil {
		return err
	}
	// The ideal machine has no network to size the processor count, so
	// -n names it directly there.
	procs := n
	if net != nil {
		procs = net.Nodes()
	}

	variant, runAlg, err := buildAlgorithm(algName, &procs, seed)
	if err != nil {
		return err
	}
	if net != nil && procs > net.Nodes() {
		return fmt.Errorf("%s needs %d processors, %s has %d nodes",
			algName, procs, net.Name(), net.Nodes())
	}

	var exec pram.StepExecutor = pram.Unit{}
	netLabel := "ideal PRAM"
	diam := 1
	var e *emul.Emulator
	if net != nil {
		e, err = emul.New(net, emul.Config{Memory: 1 << 24, Seed: seed, Combine: combine, Workers: workers})
		if err != nil {
			return err
		}
		exec = e
		netLabel = net.Name()
		diam = net.Diameter()
	}
	m := pram.New(pram.Config{
		Procs:    procs,
		Memory:   1 << 24,
		Variant:  variant,
		Executor: exec,
	})
	runAlg(m)

	fmt.Fprintf(w, "algorithm    : %s (%s)\n", algName, variant)
	fmt.Fprintf(w, "network      : %s (%d processors, diameter %d)\n", netLabel, procs, diam)
	fmt.Fprintf(w, "PRAM steps   : %d\n", m.Steps())
	fmt.Fprintf(w, "emulated time: %d\n", m.Time())
	if m.Steps() > 0 {
		perStep := float64(m.Time()) / float64(m.Steps())
		fmt.Fprintf(w, "per step     : %.1f network rounds (%.2f x diameter)\n",
			perStep, perStep/float64(diam))
	}
	if e != nil {
		fmt.Fprintf(w, "rehashes     : %d (hash description: %d bits)\n", e.Rehashes(), e.HashBits())
	}
	return nil
}

// buildNetwork resolves the name through the topology registry and
// adapts the result for the emulator; nil means the ideal machine.
// The mesh keeps its specialized §3.3 two-phase scheme; every other
// family goes through the generic topology adapter.
func buildNetwork(name string, n, k int) (emul.Network, error) {
	if name == "ideal" {
		return nil, nil
	}
	b, err := topology.Build(name, topology.Params{N: n, K: k})
	if err != nil {
		return nil, err
	}
	if g, ok := b.Graph.(*mesh.Grid); ok {
		return &emul.MeshNetwork{G: g}, nil
	}
	return emul.NewTopologyNetwork(b)
}

// buildAlgorithm returns the machine variant and a closure running the
// algorithm with verified results. procs is adjusted to the
// algorithm's requirement (power of two for sorting, squares for
// matmul) while staying within the provided node budget.
func buildAlgorithm(name string, procs *int, seed uint64) (pram.Variant, func(*pram.Machine), error) {
	switch name {
	case "prefixsum":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			for i := 0; i < n; i++ {
				m.Store(uint64(i), 1)
			}
			algorithms.PrefixSums(m, 0, n)
			for i := 0; i < n; i++ {
				if m.Load(uint64(i)) != int64(i+1) {
					panic("prefix sum incorrect")
				}
			}
		}, nil
	case "broadcast":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			m.Store(0, 42)
			algorithms.Broadcast(m, 0, 1, n)
		}, nil
	case "sort":
		n := 1
		for n*2 <= *procs {
			n *= 2
		}
		*procs = n
		return pram.EREW, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.OddEvenMergeSort(m, 0, n)
			prev := int64(-1)
			for i := 0; i < n; i++ {
				v := m.Load(uint64(i))
				if v < prev {
					panic("sort incorrect")
				}
				prev = v
			}
		}, nil
	case "listrank":
		n := *procs
		return pram.CREW, func(m *pram.Machine) {
			order := prng.New(seed).Perm(n)
			for pos, node := range order {
				next := int64(-1)
				if pos+1 < n {
					next = int64(order[pos+1])
				}
				m.Store(uint64(node), next)
			}
			algorithms.ListRank(m, 0, uint64(n), n)
		}, nil
	case "maxcrcw":
		n := *procs
		return pram.CRCWMax, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.MaxConcurrent(m, 0, n, uint64(n))
		}, nil
	case "matmul":
		side := 1
		for (side+1)*(side+1) <= *procs {
			side++
		}
		*procs = side * side
		return pram.CREW, func(m *pram.Machine) {
			src := prng.New(seed)
			nn := uint64(side * side)
			for i := uint64(0); i < 2*nn; i++ {
				m.Store(i, int64(src.Intn(7)-3))
			}
			algorithms.MatMul(m, 0, nn, 2*nn, side)
		}, nil
	default:
		return pram.EREW, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
