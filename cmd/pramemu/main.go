// Command pramemu runs a PRAM algorithm from the library on a chosen
// emulated network and reports the PRAM step count, the emulated
// network time, and the slowdown per step — the quantity the paper's
// emulation theorems bound by the network diameter.
//
// Examples:
//
//	pramemu -alg prefixsum -net star -n 5
//	pramemu -alg sort -net shuffle -n 3
//	pramemu -alg maxcrcw -net star -n 5 -combine
//	pramemu -alg matmul -net mesh -n 8
package main

import (
	"flag"
	"fmt"
	"os"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/hypercube"
	"pramemu/internal/mesh"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/shuffle"
	"pramemu/internal/star"
)

func main() {
	algName := flag.String("alg", "prefixsum", "algorithm: prefixsum, sort, listrank, maxcrcw, matmul, broadcast")
	netName := flag.String("net", "star", "network: star, shuffle, hypercube, mesh, ideal")
	n := flag.Int("n", 5, "network size parameter")
	seed := flag.Uint64("seed", 1991, "random seed")
	combine := flag.Bool("combine", false, "enable CRCW combining in the network")
	flag.Parse()

	net := buildNetwork(*netName, *n)
	procs := 0
	if net != nil {
		procs = net.Nodes()
	}

	variant, run := buildAlgorithm(*algName, &procs, *seed)
	if net != nil && procs > net.Nodes() {
		fmt.Fprintf(os.Stderr, "pramemu: %s needs %d processors, %s has %d nodes\n",
			*algName, procs, net.Name(), net.Nodes())
		os.Exit(1)
	}

	var exec pram.StepExecutor = pram.Unit{}
	netLabel := "ideal PRAM"
	diam := 1
	var e *emul.Emulator
	if net != nil {
		e = emul.New(net, emul.Config{Memory: 1 << 24, Seed: *seed, Combine: *combine})
		exec = e
		netLabel = net.Name()
		diam = net.Diameter()
	}
	m := pram.New(pram.Config{
		Procs:    procs,
		Memory:   1 << 24,
		Variant:  variant,
		Executor: exec,
	})
	run(m)

	fmt.Printf("algorithm    : %s (%s)\n", *algName, variant)
	fmt.Printf("network      : %s (%d processors, diameter %d)\n", netLabel, procs, diam)
	fmt.Printf("PRAM steps   : %d\n", m.Steps())
	fmt.Printf("emulated time: %d\n", m.Time())
	if m.Steps() > 0 {
		perStep := float64(m.Time()) / float64(m.Steps())
		fmt.Printf("per step     : %.1f network rounds (%.2f x diameter)\n",
			perStep, perStep/float64(diam))
	}
	if e != nil {
		fmt.Printf("rehashes     : %d (hash description: %d bits)\n", e.Rehashes(), e.HashBits())
	}
}

// buildNetwork returns nil for the ideal machine.
func buildNetwork(name string, n int) emul.Network {
	switch name {
	case "ideal":
		return nil
	case "star":
		g := star.New(n)
		return &emul.LeveledNetwork{Spec: g.AsLeveled(), Diam: g.Diameter()}
	case "shuffle":
		g := shuffle.NewNWay(n)
		return &emul.LeveledNetwork{Spec: g.AsLeveled(), Diam: g.Diameter()}
	case "hypercube":
		return &emul.DirectNetwork{Topo: hypercube.New(n)}
	case "mesh":
		return &emul.MeshNetwork{G: mesh.New(n)}
	default:
		fmt.Fprintf(os.Stderr, "pramemu: unknown network %q\n", name)
		os.Exit(1)
		return nil
	}
}

// buildAlgorithm returns the machine variant and a closure running the
// algorithm with verified results. procs is adjusted to the
// algorithm's requirement (power of two for sorting, squares for
// matmul) while staying within the provided node budget.
func buildAlgorithm(name string, procs *int, seed uint64) (pram.Variant, func(*pram.Machine)) {
	switch name {
	case "prefixsum":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			for i := 0; i < n; i++ {
				m.Store(uint64(i), 1)
			}
			algorithms.PrefixSums(m, 0, n)
			for i := 0; i < n; i++ {
				if m.Load(uint64(i)) != int64(i+1) {
					panic("prefix sum incorrect")
				}
			}
		}
	case "broadcast":
		n := *procs
		return pram.EREW, func(m *pram.Machine) {
			m.Store(0, 42)
			algorithms.Broadcast(m, 0, 1, n)
		}
	case "sort":
		n := 1
		for n*2 <= *procs {
			n *= 2
		}
		*procs = n
		return pram.EREW, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.OddEvenMergeSort(m, 0, n)
			prev := int64(-1)
			for i := 0; i < n; i++ {
				v := m.Load(uint64(i))
				if v < prev {
					panic("sort incorrect")
				}
				prev = v
			}
		}
	case "listrank":
		n := *procs
		return pram.CREW, func(m *pram.Machine) {
			order := prng.New(seed).Perm(n)
			for pos, node := range order {
				next := int64(-1)
				if pos+1 < n {
					next = int64(order[pos+1])
				}
				m.Store(uint64(node), next)
			}
			algorithms.ListRank(m, 0, uint64(n), n)
		}
	case "maxcrcw":
		n := *procs
		return pram.CRCWMax, func(m *pram.Machine) {
			src := prng.New(seed)
			for i := 0; i < n; i++ {
				m.Store(uint64(i), int64(src.Intn(1<<20)))
			}
			algorithms.MaxConcurrent(m, 0, n, uint64(n))
		}
	case "matmul":
		side := 1
		for (side+1)*(side+1) <= *procs {
			side++
		}
		*procs = side * side
		return pram.CREW, func(m *pram.Machine) {
			src := prng.New(seed)
			nn := uint64(side * side)
			for i := uint64(0); i < 2*nn; i++ {
				m.Store(i, int64(src.Intn(7)-3))
			}
			algorithms.MatMul(m, 0, nn, 2*nn, side)
		}
	default:
		fmt.Fprintf(os.Stderr, "pramemu: unknown algorithm %q\n", name)
		os.Exit(1)
		return pram.EREW, nil
	}
}
