package main

import (
	"strings"
	"testing"
)

// The smoke tests run the command's core in-process on tiny networks
// and algorithms, asserting the report prints and errors are clean.

func TestRunPrefixSumOnStar(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "prefixsum", "star", 4, 0, 7, false, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algorithm    : prefixsum", "star", "PRAM steps", "rehashes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunIdealMachine(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "broadcast", "ideal", 5, 0, 7, false, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ideal PRAM") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

func TestRunCombiningOnCRCW(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "maxcrcw", "shuffle", 3, 0, 7, true, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "per step") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

// TestRunNewFamilies drives the registry payoff end to end: the four
// families added with the unified topology layer emulate PRAM
// programs with no pramemu-side changes, under a parallel engine.
func TestRunNewFamilies(t *testing.T) {
	for _, cfg := range []struct {
		net  string
		n, k int
	}{
		{"pancake", 4, 0},  // 24 nodes
		{"ttree", 4, 1},    // 24 nodes, binary tree
		{"torus", 4, 2},    // 16 nodes
		{"debruijn", 4, 2}, // 16 nodes
	} {
		var b strings.Builder
		if err := run(&b, "prefixsum", cfg.net, cfg.n, cfg.k, 7, false, 2); err != nil {
			t.Fatalf("%s: %v", cfg.net, err)
		}
		if !strings.Contains(b.String(), cfg.net) {
			t.Fatalf("%s: report does not name the network:\n%s", cfg.net, b.String())
		}
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "prefixsum", "moebius", 4, 0, 7, false, 1); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, "quantum", "star", 4, 0, 7, false, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(&b, "prefixsum", "star", 99, 0, 7, false, 1); err == nil {
		t.Fatal("out-of-range star size accepted")
	}
}
