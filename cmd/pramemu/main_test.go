package main

import (
	"fmt"
	"strings"
	"testing"

	"pramemu/internal/scenario"
)

// The smoke tests run the command's core in-process on tiny networks
// and algorithms, asserting the report prints and errors are clean.

func TestRunPrefixSumOnStar(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{alg: "prefixsum", net: "star", n: 4, k: 0, seed: 7, combine: false, workers: 2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algorithm    : prefixsum", "star", "PRAM steps", "rehashes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunIdealMachine(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{alg: "broadcast", net: "ideal", n: 5, k: 0, seed: 7, combine: false, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ideal PRAM") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

func TestRunCombiningOnCRCW(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{alg: "maxcrcw", net: "shuffle", n: 3, k: 0, seed: 7, combine: true, workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "per step") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

// TestRunNewFamilies drives the registry payoff end to end: the four
// families added with the unified topology layer emulate PRAM
// programs with no pramemu-side changes, under a parallel engine.
func TestRunNewFamilies(t *testing.T) {
	for _, cfg := range []struct {
		net  string
		n, k int
	}{
		{"pancake", 4, 0},  // 24 nodes
		{"ttree", 4, 1},    // 24 nodes, binary tree
		{"torus", 4, 2},    // 16 nodes
		{"debruijn", 4, 2}, // 16 nodes
	} {
		var b strings.Builder
		if err := run(&b, config{alg: "prefixsum", net: cfg.net, n: cfg.n, k: cfg.k, seed: 7, combine: false, workers: 2}); err != nil {
			t.Fatalf("%s: %v", cfg.net, err)
		}
		if !strings.Contains(b.String(), cfg.net) {
			t.Fatalf("%s: report does not name the network:\n%s", cfg.net, b.String())
		}
	}
}

// TestRunStepMatchesSweepCell pins the -step refactor: pramemu's
// single-step pricing runs on scenario.RunCell — the same path a
// `routebench -sweep` spec with a mode axis takes — so its printed
// numbers reproduce the equivalent sweep cell exactly.
func TestRunStepMatchesSweepCell(t *testing.T) {
	for _, mode := range []string{scenario.ModeEREW, scenario.ModeCRCW} {
		results, err := scenario.Run(scenario.Spec{
			Topologies: []scenario.TopoRef{{Family: "star", N: 4, Leveled: true}},
			Workloads:  []scenario.WorkRef{{Name: "perm"}},
			Modes:      []string{mode},
			Workers:    []int{1},
			Trials:     2,
			Seed:       9,
			Pool:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 1 {
			t.Fatalf("sweep expanded to %d cells, want 1", len(results))
		}
		r := results[0]
		var b strings.Builder
		if err := run(&b, config{step: "perm", net: "star", n: 4, mode: mode, trials: 2, seed: 9, workers: 1}); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{
			fmt.Sprintf("network      : %s (%d processors, diameter %d, view %s)", r.Topology, r.Nodes, r.Diameter, r.View),
			fmt.Sprintf("step cost    : mean=%.1f max=%d (%.2f x diameter)", r.RoundsMean, r.RoundsMax, r.RoundsPerDiam),
			fmt.Sprintf("merges       : %d", r.Merges),
			fmt.Sprintf("max queue    : %d", r.MaxQueue),
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("mode %s: step report missing %q:\n%s", mode, want, out)
			}
		}
	}
}

// TestRunStepRejectsBadModes: mode/workload mismatches come back as
// errors naming the constraint, not as degenerate runs.
func TestRunStepRejectsBadModes(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{step: "khot", net: "star", n: 4, mode: "erew", trials: 1}); err == nil ||
		!strings.Contains(err.Error(), "crcw") {
		t.Fatalf("many-one erew step: want a crcw-gating error, got %v", err)
	}
	if err := run(&b, config{step: "perm", net: "star", n: 4, mode: "quantum", trials: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("unknown mode: want an unknown-mode error, got %v", err)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, config{alg: "prefixsum", net: "moebius", n: 4, k: 0, seed: 7, combine: false, workers: 1}); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, config{alg: "quantum", net: "star", n: 4, k: 0, seed: 7, combine: false, workers: 1}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(&b, config{alg: "prefixsum", net: "star", n: 99, k: 0, seed: 7, combine: false, workers: 1}); err == nil {
		t.Fatal("out-of-range star size accepted")
	}
}
