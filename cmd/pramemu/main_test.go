package main

import (
	"strings"
	"testing"
)

// The smoke tests run the command's core in-process on tiny networks
// and algorithms, asserting the report prints and errors are clean.

func TestRunPrefixSumOnStar(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "prefixsum", "star", 4, 7, false, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"algorithm    : prefixsum", "star", "PRAM steps", "rehashes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunIdealMachine(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "broadcast", "ideal", 5, 7, false, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ideal PRAM") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

func TestRunCombiningOnCRCW(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "maxcrcw", "shuffle", 3, 7, true, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "per step") {
		t.Fatalf("unexpected report:\n%s", b.String())
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "prefixsum", "torus", 4, 7, false, 1); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(&b, "quantum", "star", 4, 7, false, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
