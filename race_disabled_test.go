//go:build !race

package pramemu

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
