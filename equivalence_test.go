// Determinism-equivalence property tests for the parallel sharded
// round engine: for every topology the paper treats (star graph,
// hypercube, d-way shuffle, butterfly, mesh — plus Ranade's butterfly
// emulation), routing the same seeded workload with Workers: 1 and
// Workers: N must produce identical aggregate statistics (round
// counts, queue maxima, delays) and identical per-packet delivery
// traces (arrival round, hops, delay, kind, value, recorded path).
// This is the engine's defining invariant; everything else in the PR
// rests on it.
package pramemu

import (
	"fmt"
	"runtime"
	"testing"

	"pramemu/internal/engine"
	"pramemu/internal/leveled"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/pancake"
	"pramemu/internal/prng"
	"pramemu/internal/ranade"
	"pramemu/internal/shuffle"
	"pramemu/internal/simnet"
	"pramemu/internal/star"
	"pramemu/internal/torus"
	"pramemu/internal/workload"

	"pramemu/internal/hypercube"
)

// mustSimRoute wraps simnet.Route for the statically sized
// equivalence topologies (all far below the key-space bound).
func mustSimRoute(topo simnet.Topology, pkts []*packet.Packet, opts simnet.Options) simnet.Stats {
	st, err := simnet.Route(topo, pkts, opts)
	if err != nil {
		panic(err)
	}
	return st
}

// ptrace is the observable outcome of one packet: if any field
// differs between worker counts, the simulation diverged.
type ptrace struct {
	ID, Src, Dst         int
	Kind                 packet.Kind
	Arrived, Hops, Delay int
	Value                int64
	Path                 string
}

func tracesOf(pkts []*packet.Packet) []ptrace {
	out := make([]ptrace, len(pkts))
	for i, p := range pkts {
		out[i] = ptrace{
			ID: p.ID, Src: p.Src, Dst: p.Dst,
			Kind: p.Kind, Arrived: p.Arrived, Hops: p.Hops, Delay: p.Delay,
			Value: p.Value, Path: fmt.Sprint(p.Path),
		}
	}
	return out
}

// readHotSpots builds a read-request permutation workload with shared
// addresses (four requesters per address), so runs with combining
// exercise the merge/fan-out machinery.
func readHotSpots(nodes int, seed uint64) []*packet.Packet {
	perm := prng.New(seed).Perm(nodes)
	pkts := make([]*packet.Packet, nodes)
	for i, dst := range perm {
		p := packet.New(i, i, dst, packet.ReadRequest)
		p.Addr = uint64(dst / 4)
		p.Proc = i
		pkts[i] = p
	}
	return pkts
}

// simCase routes one topology's workload at the given worker count
// and returns the stats (as a comparable value) plus delivery traces.
type simCase struct {
	name string
	run  func(seed uint64, workers int) (any, []ptrace)
}

func equivalenceCases() []simCase {
	return []simCase{
		{"star5", func(seed uint64, workers int) (any, []ptrace) {
			g := star.New(5) // 120 nodes
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"hypercube7", func(seed uint64, workers int) (any, []ptrace) {
			g := hypercube.New(7) // 128 nodes
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"shuffle4", func(seed uint64, workers int) (any, []ptrace) {
			g := shuffle.NewNWay(4) // 256 nodes
			pkts := readHotSpots(g.Nodes(), seed)
			st := leveled.Route(g.AsLeveled(), pkts, leveled.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"pancake6", func(seed uint64, workers int) (any, []ptrace) {
			g := pancake.New(6) // 720 nodes, greedy prefix-reversal paths
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"torus8x3", func(seed uint64, workers int) (any, []ptrace) {
			g := torus.New(8, 3) // 512 nodes, wraparound dimension-order paths
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"butterfly7", func(seed uint64, workers int) (any, []ptrace) {
			spec := leveled.NewButterfly(7) // 128 rows, 8 levels
			pkts := readHotSpots(spec.Width(), seed)
			st := leveled.Route(spec, pkts, leveled.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"mesh24", func(seed uint64, workers int) (any, []ptrace) {
			g := mesh.New(24) // 576 nodes, furthest-first heaps
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mesh.Route(g, pkts, mesh.Options{Seed: seed * 31, Workers: workers})
			return st, tracesOf(pkts)
		}},
		{"mesh16-fifo", func(seed uint64, workers int) (any, []ptrace) {
			g := mesh.New(16)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mesh.Route(g, pkts, mesh.Options{
				Seed: seed * 31, Discipline: mesh.FIFODiscipline, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"hypercube10-large", func(seed uint64, workers int) (any, []ptrace) {
			// 1024 nodes: enough concurrent traffic to cross the
			// engine's inline-round threshold, so the goroutine path
			// itself runs (and is raced) here.
			g := hypercube.New(10)
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers,
			})
			return st, tracesOf(pkts)
		}},
		{"ranade7", func(seed uint64, workers int) (any, []ptrace) {
			n := ranade.New(7) // 128 rows
			pkts := readHotSpots(n.Nodes(), seed)
			st := n.RouteOpts(pkts, ranade.Options{Combine: true, Seed: seed, Workers: workers})
			return st, tracesOf(pkts)
		}},
		{"ranade9-large", func(seed uint64, workers int) (any, []ptrace) {
			// 512 rows: above ranade's 256-row inline cutoff, so its
			// per-level worker fan-out (the one parallel path not on
			// internal/engine) runs — and is raced — here.
			n := ranade.New(9)
			pkts := readHotSpots(n.Nodes(), seed)
			st := n.RouteOpts(pkts, ranade.Options{Combine: true, Seed: seed, Workers: workers})
			return st, tracesOf(pkts)
		}},
	}
}

// TestWorkerEquivalence is the PR's core property: Workers: 1 and
// Workers: N are byte-identical for fixed seeds on every topology.
func TestWorkerEquivalence(t *testing.T) {
	seeds := []uint64{1, 7, 1991}
	workerSet := []int{2, 3, 8}
	if testing.Short() {
		seeds = seeds[:2]
		workerSet = []int{3}
	}
	for _, c := range equivalenceCases() {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range seeds {
				wantStats, wantTraces := c.run(seed, 1)
				for _, workers := range workerSet {
					gotStats, gotTraces := c.run(seed, workers)
					if gotStats != wantStats {
						t.Fatalf("seed %d: stats diverged between Workers=1 and Workers=%d:\nseq: %+v\npar: %+v",
							seed, workers, wantStats, gotStats)
					}
					if len(gotTraces) != len(wantTraces) {
						t.Fatalf("seed %d workers %d: trace count %d != %d",
							seed, workers, len(gotTraces), len(wantTraces))
					}
					for i := range wantTraces {
						if gotTraces[i] != wantTraces[i] {
							t.Fatalf("seed %d: packet %d trace diverged between Workers=1 and Workers=%d:\nseq: %+v\npar: %+v",
								seed, workers, i, wantTraces[i], gotTraces[i])
						}
					}
				}
			}
		})
	}
}

// denseCase routes one reply-free workload — the configuration on
// which the simulators declare their dense link-key space — with an
// explicit storage-path selector.
type denseCase struct {
	name string
	run  func(seed uint64, workers int, hashed bool) (any, []ptrace)
}

func denseHashedCases() []denseCase {
	return []denseCase{
		{"star5-direct", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			g := star.New(5)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"shuffle3-direct", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			g := shuffle.NewNWay(3) // taken-sensitive NextHop under slot keys
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"butterfly7-leveled", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			spec := leveled.NewButterfly(7)
			pkts := workload.Permutation(spec.Width(), packet.Transit, seed)
			st := leveled.Route(spec, pkts, leveled.Options{
				Seed: seed * 31, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"star5-leveled-combine", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			// Combining without replies keeps the dense path on while
			// exercising the push-phase combiner hook.
			g := star.New(5)
			pkts := readHotSpots(g.Nodes(), seed)
			st := leveled.Route(g.AsLeveled(), pkts, leveled.Options{
				Seed: seed * 31, Combine: true, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"mesh16", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			g := mesh.New(16)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mesh.Route(g, pkts, mesh.Options{
				Seed: seed * 31, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"ranade6-replylinks", func(seed uint64, workers int, hashed bool) (any, []ptrace) {
			// The knob selects the reply pass's dense reverse-link
			// table vs its hashed map (the forward pass has no engine
			// link state).
			n := ranade.New(6)
			pkts := readHotSpots(n.Nodes(), seed)
			st := n.RouteOpts(pkts, ranade.Options{
				Combine: true, Seed: seed, Workers: workers, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
	}
}

// TestWorkerEquivalenceDenseHashed is the storage-path half of the
// engine invariant: for every reply-free configuration, the dense
// slice-table path and the hashed-map fallback produce identical
// stats and per-packet traces at Workers 1 and 4 — all four
// combinations collapse to one result. (The name keeps it inside the
// CI race job's TestWorker filter, so both paths are race-checked.)
func TestWorkerEquivalenceDenseHashed(t *testing.T) {
	seeds := []uint64{3, 1991}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, c := range denseHashedCases() {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range seeds {
				wantStats, wantTraces := c.run(seed, 1, false)
				for _, v := range []struct {
					workers int
					hashed  bool
				}{{4, false}, {1, true}, {4, true}} {
					gotStats, gotTraces := c.run(seed, v.workers, v.hashed)
					if gotStats != wantStats {
						t.Fatalf("seed %d: workers=%d hashed=%v stats diverged from dense workers=1:\nwant: %+v\ngot:  %+v",
							seed, v.workers, v.hashed, wantStats, gotStats)
					}
					for i := range wantTraces {
						if gotTraces[i] != wantTraces[i] {
							t.Fatalf("seed %d: workers=%d hashed=%v packet %d trace diverged:\nwant: %+v\ngot:  %+v",
								seed, v.workers, v.hashed, i, wantTraces[i], gotTraces[i])
						}
					}
				}
			}
		})
	}
}

// pagedCase routes one reply-free workload with the full three-way
// storage selector: flat dense tables (the small-key default), the
// paged directory (the million-node path) and the hashed-map
// fallback.
type pagedCase struct {
	name string
	run  func(seed uint64, workers int, paged, hashed bool) (any, []ptrace)
}

func pagedCases() []pagedCase {
	return []pagedCase{
		{"star5-direct", func(seed uint64, workers int, paged, hashed bool) (any, []ptrace) {
			g := star.New(5)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Workers: workers, PagedKeys: paged, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"butterfly7-leveled", func(seed uint64, workers int, paged, hashed bool) (any, []ptrace) {
			spec := leveled.NewButterfly(7)
			pkts := workload.Permutation(spec.Width(), packet.Transit, seed)
			st := leveled.Route(spec, pkts, leveled.Options{
				Seed: seed * 31, Workers: workers, PagedKeys: paged, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
		{"mesh16", func(seed uint64, workers int, paged, hashed bool) (any, []ptrace) {
			g := mesh.New(16)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mesh.Route(g, pkts, mesh.Options{
				Seed: seed * 31, Workers: workers, PagedKeys: paged, HashedKeys: hashed,
			})
			return st, tracesOf(pkts)
		}},
	}
}

// TestWorkerEquivalencePagedDenseHashed closes the storage-path
// invariant over all three link-table states: on every configuration
// the paged directory must reproduce the flat dense result bit for
// bit — same stats, same per-packet traces — at Workers 1, 4 and 0
// (GOMAXPROCS), exactly as the hashed fallback does. Routing decisions
// never depend on how the link state is stored, which is what lets
// the engine degrade dense→paged→hashed purely on footprint grounds.
// (The name keeps it inside the CI race job's TestWorker filter, so
// the paged path's first-touch page allocation is race-checked across
// shards.)
func TestWorkerEquivalencePagedDenseHashed(t *testing.T) {
	seeds := []uint64{3, 1991}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, c := range pagedCases() {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range seeds {
				wantStats, wantTraces := c.run(seed, 1, false, false)
				for _, v := range []struct {
					workers       int
					paged, hashed bool
				}{{1, true, false}, {4, true, false}, {0, true, false}, {4, false, true}} {
					gotStats, gotTraces := c.run(seed, v.workers, v.paged, v.hashed)
					if gotStats != wantStats {
						t.Fatalf("seed %d: workers=%d paged=%v hashed=%v stats diverged from dense workers=1:\nwant: %+v\ngot:  %+v",
							seed, v.workers, v.paged, v.hashed, wantStats, gotStats)
					}
					for i := range wantTraces {
						if gotTraces[i] != wantTraces[i] {
							t.Fatalf("seed %d: workers=%d paged=%v hashed=%v packet %d trace diverged:\nwant: %+v\ngot:  %+v",
								seed, v.workers, v.paged, v.hashed, i, wantTraces[i], gotTraces[i])
						}
					}
				}
			}
		})
	}
}

// eventFaulty is a kitchen-sink asynchronous configuration — jittered
// latency, transient outages, stragglers and packet loss all at once.
func eventFaulty() *engine.EventOptions {
	return &engine.EventOptions{
		Model:           engine.LatencyJitter,
		Base:            1,
		Jitter:          2,
		LinkFailure:     0.1,
		Straggler:       0.2,
		Drop:            0.1,
		RetransmitAfter: 4,
	}
}

// eventCases routes on the asynchronous event engine through both
// simulator layers, faults dialed in.
func eventCases() []simCase {
	return []simCase{
		{"star5-event", func(seed uint64, workers int) (any, []ptrace) {
			g := star.New(5)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Workers: workers, Event: eventFaulty(),
			})
			return st, tracesOf(pkts)
		}},
		{"torus8x3-event", func(seed uint64, workers int) (any, []ptrace) {
			g := torus.New(8, 3)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Workers: workers, Event: eventFaulty(),
			})
			return st, tracesOf(pkts)
		}},
		{"star5-event-replies", func(seed uint64, workers int) (any, []ptrace) {
			// Replies + combining: the event loop carries the request
			// pass, the reply fan-out and the merge hooks alike.
			g := star.New(5)
			pkts := readHotSpots(g.Nodes(), seed)
			st := mustSimRoute(g, pkts, simnet.Options{
				Seed: seed * 31, Replies: true, Combine: true, Workers: workers, Event: eventFaulty(),
			})
			return st, tracesOf(pkts)
		}},
		{"butterfly7-event-combine", func(seed uint64, workers int) (any, []ptrace) {
			spec := leveled.NewButterfly(7)
			pkts := readHotSpots(spec.Width(), seed)
			st := leveled.Route(spec, pkts, leveled.Options{
				Seed: seed * 31, Combine: true, Workers: workers, Event: eventFaulty(),
			})
			return st, tracesOf(pkts)
		}},
	}
}

// TestWorkerEquivalenceEventEngine extends the invariant to the
// asynchronous event engine: the Workers knob must be a no-op there —
// the loop is strictly sequential and every random link property keys
// to stable entities (link key, node, packet ID), never to shard
// streams — so a fully faulty configuration produces identical stats
// and per-packet traces at any worker count, and reruns replay byte
// for byte. (The name keeps it inside the CI race job's TestWorker
// filter.)
func TestWorkerEquivalenceEventEngine(t *testing.T) {
	seeds := []uint64{7, 1991}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, c := range eventCases() {
		t.Run(c.name, func(t *testing.T) {
			for _, seed := range seeds {
				wantStats, wantTraces := c.run(seed, 1)
				for _, workers := range []int{4, 0} {
					gotStats, gotTraces := c.run(seed, workers)
					if gotStats != wantStats {
						t.Fatalf("seed %d: event stats diverged between Workers=1 and Workers=%d:\nseq: %+v\npar: %+v",
							seed, workers, wantStats, gotStats)
					}
					for i := range wantTraces {
						if gotTraces[i] != wantTraces[i] {
							t.Fatalf("seed %d: packet %d event trace diverged between Workers=1 and Workers=%d:\nseq: %+v\npar: %+v",
								seed, i, workers, wantTraces[i], gotTraces[i])
						}
					}
				}
			}
		})
	}
}

// TestWorkerEquivalenceDefaultWorkers pins the GOMAXPROCS default
// (Workers: 0) to the sequential result, since that is what every
// existing caller now gets implicitly.
func TestWorkerEquivalenceDefaultWorkers(t *testing.T) {
	for _, c := range equivalenceCases() {
		wantStats, _ := c.run(42, 1)
		gotStats, _ := c.run(42, 0)
		if gotStats != wantStats {
			t.Fatalf("%s: Workers=0 (GOMAXPROCS=%d) diverged from Workers=1:\nseq: %+v\ndef: %+v",
				c.name, runtime.GOMAXPROCS(0), wantStats, gotStats)
		}
	}
}
