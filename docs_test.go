// Documentation checks, run by the CI docs job: every intra-repo
// markdown link resolves to a file that exists, and every flag a
// README command example uses is actually defined by that command.
package pramemu

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles returns every tracked .md file under the repo root.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "bench-artifacts" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

// TestMarkdownLinks fails on broken intra-repo markdown links: every
// relative [text](target) must name an existing file or directory.
func TestMarkdownLinks(t *testing.T) {
	link := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Drop fenced code blocks: SNIPPETS.md and friends quote
		// exemplar markdown from other repositories verbatim.
		var prose []string
		inFence := false
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if !inFence {
				prose = append(prose, line)
			}
		}
		for _, m := range link.FindAllStringSubmatch(strings.Join(prose, "\n"), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
		}
	}
}

// commandFlags parses the flag names a command defines from its
// main.go flag registrations.
func commandFlags(t *testing.T, cmd string) map[string]bool {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("cmd", cmd, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	defs := regexp.MustCompile(`flag\.\w+(?:Var)?\((?:&[\w.]+, )?"([a-z0-9]+)"`)
	flags := make(map[string]bool)
	for _, m := range defs.FindAllStringSubmatch(string(src), -1) {
		flags[m[1]] = true
	}
	if len(flags) == 0 {
		t.Fatalf("no flag definitions found in cmd/%s", cmd)
	}
	return flags
}

// TestREADMEExamplesUseRealFlags cross-checks README.md's command
// examples against the binaries: each `-flag` in a routebench /
// pramemu / tables invocation must be a defined flag, and every
// file path the examples mention must exist.
func TestREADMEExamplesUseRealFlags(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	flagsByCmd := map[string]map[string]bool{
		"routebench": commandFlags(t, "routebench"),
		"pramemu":    commandFlags(t, "pramemu"),
		"tables":     commandFlags(t, "tables"),
		"sweepd":     commandFlags(t, "sweepd"),
	}
	flagRe := regexp.MustCompile(`(^| )-([a-z0-9]+)`)
	pathRe := regexp.MustCompile(`(^| )((?:\./)?(?:cmd|sweeps|internal|examples)/[\w./-]+)`)
	for _, line := range strings.Split(string(data), "\n") {
		// A line naming several commands is validated against the one
		// named first — deterministic, unlike map iteration order.
		var flags map[string]bool
		first := len(line) + 1
		for cmd, f := range flagsByCmd {
			i := strings.Index(line, cmd+" ")
			if i < 0 && strings.HasSuffix(line, cmd) {
				i = len(line) - len(cmd)
			}
			if i >= 0 && i < first {
				first = i
				flags = f
			}
		}
		for _, m := range pathRe.FindAllStringSubmatch(line, -1) {
			p := strings.TrimSuffix(strings.TrimPrefix(m[2], "./"), ".")
			if _, err := os.Stat(p); err != nil {
				t.Errorf("README mentions missing path %q in line %q", m[2], strings.TrimSpace(line))
			}
		}
		if flags == nil {
			continue
		}
		for _, m := range flagRe.FindAllStringSubmatch(line, -1) {
			if !flags[m[2]] {
				t.Errorf("README example uses undefined flag -%s in line %q", m[2], strings.TrimSpace(line))
			}
		}
	}
}
