// Package pramemu's root benchmark harness: one benchmark per
// experiment in DESIGN.md's index (E1-E21), regenerating the series
// behind every claim of the paper. Custom metrics report the
// normalized quantities the theorems bound (rounds/ℓ, rounds/n,
// cost/diameter, ...) so `go test -bench=.` output reads directly
// against the paper: Theorem 2.1 predicts a flat rounds/l column,
// Theorem 3.1 a rounds/n near 2, Theorem 3.2 a cost/n near 4, etc.
package pramemu

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pramemu/internal/advsearch"
	"pramemu/internal/buildcache"
	"pramemu/internal/emul"
	"pramemu/internal/experiments"
	"pramemu/internal/hashing"
	"pramemu/internal/leveled"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/scenario"
	"pramemu/internal/shuffle"
	"pramemu/internal/simnet"
	"pramemu/internal/star"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

const benchSeed = 1991

// mustSim routes on a statically sized benchmark topology, where a
// key-space failure is a programming error.
func mustSim(topo simnet.Topology, pkts []*packet.Packet, opts simnet.Options) simnet.Stats {
	s, err := simnet.Route(topo, pkts, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// benchEmul builds an emulator for a statically sized configuration.
func benchEmul(net emul.Network, cfg emul.Config) *emul.Emulator {
	e, err := emul.New(net, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// benchNet adapts a registry family for the emulator benchmarks
// (leveled view preferred, as the emulator does).
func benchNet(name string, p topology.Params) emul.Network {
	b, err := topology.Build(name, p)
	if err != nil {
		panic(err)
	}
	net, err := emul.NewTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	return net
}

// benchDirectNet forces the point-to-point view (Algorithm 2.2).
func benchDirectNet(name string, p topology.Params) emul.Network {
	b, err := topology.Build(name, p)
	if err != nil {
		panic(err)
	}
	net, err := emul.NewDirectTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	return net
}

// BenchmarkE1LeveledPermutation — Theorem 2.1: permutation routing on
// leveled networks in Õ(ℓ) with Õ(ℓ) FIFO queues.
func BenchmarkE1LeveledPermutation(b *testing.B) {
	specs := []leveled.Spec{
		leveled.NewButterfly(8),
		leveled.NewButterfly(12),
		leveled.NewDAry(4, 5),
		leveled.NewDAry(6, 7),
	}
	for _, spec := range specs {
		b.Run(spec.Name(), func(b *testing.B) {
			var rounds, maxQ int
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(spec.Width(), packet.Transit, benchSeed+uint64(i))
				s := leveled.Route(spec, pkts, leveled.Options{Seed: uint64(i) * 31})
				rounds += s.Rounds
				if s.MaxQueue > maxQ {
					maxQ = s.MaxQueue
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(spec.Levels()), "rounds/l")
			b.ReportMetric(float64(maxQ), "maxQ")
		})
	}
}

// BenchmarkE2StarRouting — Theorem 2.2 / Corollary 2.1: n-star
// permutation and n-relation routing in Õ(n).
func BenchmarkE2StarRouting(b *testing.B) {
	for _, n := range []int{5, 6, 7} {
		g := star.New(n)
		b.Run(fmt.Sprintf("perm/n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
				s := mustSim(g, pkts, simnet.Options{Seed: uint64(i) * 17})
				rounds += s.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(g.Diameter()), "rounds/diam")
		})
		b.Run(fmt.Sprintf("relation/n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Relation(g.Nodes(), n, packet.Transit, benchSeed+uint64(i))
				s := mustSim(g, pkts, simnet.Options{Seed: uint64(i) * 17})
				rounds += s.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(g.Diameter()), "rounds/diam")
		})
	}
}

// BenchmarkE3ShuffleRouting — Theorem 2.3 / Corollary 2.2: n-way
// shuffle routing in Õ(n) via Algorithm 2.3.
func BenchmarkE3ShuffleRouting(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		g := shuffle.NewNWay(n)
		spec := g.AsLeveled()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
				s := leveled.Route(spec, pkts, leveled.Options{Seed: uint64(i) * 13})
				rounds += s.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(n), "rounds/n")
		})
	}
}

// BenchmarkE4HashLoad — Lemma 2.2: max module load of one step's
// addresses under the Karlin-Upfal class, degree S = cL (star n=7:
// N = 5040 modules, L = 9).
func BenchmarkE4HashLoad(b *testing.B) {
	for _, degree := range []int{9, 18, 36} {
		b.Run(fmt.Sprintf("S=%d", degree), func(b *testing.B) {
			maxLoad := 0
			for i := 0; i < b.N; i++ {
				if load := benchHashLoadOnce(5040, degree, benchSeed+uint64(i)); load > maxLoad {
					maxLoad = load
				}
			}
			b.ReportMetric(float64(maxLoad), "maxload")
		})
	}
}

// benchHashLoadOnce draws one hash function and maps n random
// addresses onto n modules, returning the max module load.
func benchHashLoadOnce(n, degree int, seed uint64) int {
	src := prng.New(seed)
	f := hashing.NewClass(1<<30, n, degree).Draw(src)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = src.Uint64n(1 << 30)
	}
	return f.MaxLoad(addrs)
}

// BenchmarkE5PRAMStepLeveled — Theorems 2.5/2.6: EREW and CRCW step
// emulation on star and shuffle in Õ(diameter).
func BenchmarkE5PRAMStepLeveled(b *testing.B) {
	nets := map[string]emul.Network{
		"star6":    benchNet("star", topology.Params{N: 6}),
		"shuffle4": benchNet("shuffle", topology.Params{N: 4}),
	}
	for name, net := range nets {
		b.Run(name+"/erew", func(b *testing.B) {
			cost := 0
			for i := 0; i < b.N; i++ {
				e := benchEmul(net, emul.Config{Memory: 1 << 24, Seed: benchSeed + uint64(i)})
				_, c := e.RouteRequests(workload.RandomStep(net.Nodes(), 1<<24, false, uint64(i)*7))
				cost += c
			}
			b.ReportMetric(float64(cost)/float64(b.N)/float64(net.Diameter()), "cost/diam")
		})
		b.Run(name+"/crcw-combining", func(b *testing.B) {
			cost := 0
			for i := 0; i < b.N; i++ {
				e := benchEmul(net, emul.Config{Memory: 1 << 24, Seed: benchSeed + uint64(i), Combine: true})
				_, c := e.RouteRequests(workload.CRCWStep(net.Nodes(), 12345))
				cost += c
			}
			b.ReportMetric(float64(cost)/float64(b.N)/float64(net.Diameter()), "cost/diam")
		})
	}
}

// BenchmarkE6StarVsHypercube — the introduction's claim: emulation
// cost tracks diameter, so the star graph (sub-logarithmic diameter)
// beats the hypercube (logarithmic) at comparable sizes.
func BenchmarkE6StarVsHypercube(b *testing.B) {
	configs := []struct {
		name string
		net  emul.Network
	}{
		{"star6-720", benchDirectNet("star", topology.Params{N: 6})},
		{"cube10-1024", benchDirectNet("hypercube", topology.Params{N: 10})},
		{"star7-5040", benchDirectNet("star", topology.Params{N: 7})},
		{"cube12-4096", benchDirectNet("hypercube", topology.Params{N: 12})},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			cost := 0
			for i := 0; i < b.N; i++ {
				e := benchEmul(cfg.net, emul.Config{Memory: 1 << 24, Seed: benchSeed + uint64(i)})
				_, c := e.RouteRequests(workload.RandomStep(cfg.net.Nodes(), 1<<24, false, uint64(i)*3))
				cost += c
			}
			b.ReportMetric(float64(cost)/float64(b.N), "cost")
			b.ReportMetric(float64(cost)/float64(b.N)/float64(cfg.net.Diameter()), "cost/diam")
		})
	}
}

// BenchmarkE7MeshRouting — Theorem 3.1: three-stage mesh routing at
// 2n + o(n) vs Valiant-Brebner at 3n + o(n).
func BenchmarkE7MeshRouting(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g := mesh.New(n)
		for _, alg := range []struct {
			name string
			a    mesh.Algorithm
		}{{"threestage", mesh.ThreeStage}, {"valiant-brebner", mesh.ValiantBrebner}} {
			b.Run(fmt.Sprintf("%s/n=%d", alg.name, n), func(b *testing.B) {
				rounds := 0
				for i := 0; i < b.N; i++ {
					pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
					s := mesh.Route(g, pkts, mesh.Options{Seed: uint64(i) * 7, Algorithm: alg.a})
					rounds += s.Rounds
				}
				b.ReportMetric(float64(rounds)/float64(b.N)/float64(n), "rounds/n")
			})
		}
	}
}

// BenchmarkE8MeshEmulation — Theorem 3.2: EREW PRAM step on the mesh,
// two-phase (4n + o(n)) vs Karlin-Upfal four-phase (~8n).
func BenchmarkE8MeshEmulation(b *testing.B) {
	for _, n := range []int{32, 64} {
		g := mesh.New(n)
		for _, scheme := range []struct {
			name string
			s    emul.MeshScheme
		}{{"twophase", emul.TwoPhase}, {"ku4phase", emul.KarlinUpfal4Phase}} {
			b.Run(fmt.Sprintf("%s/n=%d", scheme.name, n), func(b *testing.B) {
				cost := 0
				for i := 0; i < b.N; i++ {
					net := &emul.MeshNetwork{G: g, Scheme: scheme.s}
					e := benchEmul(net, emul.Config{Memory: 1 << 26, Seed: benchSeed + uint64(i)})
					_, c := e.RouteRequests(workload.RandomStep(g.Nodes(), 1<<26, false, uint64(i)*5))
					cost += c
				}
				b.ReportMetric(float64(cost)/float64(b.N)/float64(n), "cost/n")
			})
		}
	}
}

// BenchmarkE9MeshLocality — Theorem 3.3: distance-d-local requests
// complete in O(d), within 6d + o(d).
func BenchmarkE9MeshLocality(b *testing.B) {
	g := mesh.New(128)
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.MeshLocal(g, d, benchSeed+uint64(i))
				s := mesh.Route(g, pkts, mesh.Options{
					Seed:          uint64(i) * 3,
					LocalityBound: d,
					SliceRows:     maxi(1, d/4),
				})
				rounds += s.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(d), "rounds/d")
		})
	}
}

// BenchmarkE10QueueSizes — §3.4 queue discipline ablation.
func BenchmarkE10QueueSizes(b *testing.B) {
	g := mesh.New(64)
	for _, disc := range []struct {
		name string
		d    mesh.Discipline
	}{{"furthest-first", mesh.FurthestFirst}, {"fifo", mesh.FIFODiscipline}} {
		b.Run(disc.name, func(b *testing.B) {
			maxQ, rounds := 0, 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
				s := mesh.Route(g, pkts, mesh.Options{Seed: uint64(i) * 19, Discipline: disc.d})
				rounds += s.Rounds
				if s.MaxQueue > maxQ {
					maxQ = s.MaxQueue
				}
			}
			b.ReportMetric(float64(maxQ), "maxQ")
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
		})
	}
}

// BenchmarkE11Rehash — §2.1: rehash frequency across emulated steps
// (expected: zero on healthy configurations).
func BenchmarkE11Rehash(b *testing.B) {
	net := benchNet("star", topology.Params{N: 5})
	b.Run("star5", func(b *testing.B) {
		e := benchEmul(net, emul.Config{Memory: 1 << 22, Seed: benchSeed})
		for i := 0; i < b.N; i++ {
			e.RouteRequests(workload.RandomStep(net.Nodes(), 1<<22, i%2 == 0, uint64(i)))
		}
		b.ReportMetric(float64(e.Rehashes()), "rehashes")
	})
}

// BenchmarkE12SortVsRoute — §2.2.1: sorting-based deterministic
// routing vs the randomized three-stage algorithm.
func BenchmarkE12SortVsRoute(b *testing.B) {
	for _, n := range []int{32, 64} {
		g := mesh.New(n)
		b.Run(fmt.Sprintf("shearsort/n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
				rounds += mesh.SortRoute(g, pkts)
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(n), "rounds/n")
		})
		b.Run(fmt.Sprintf("threestage/n=%d", n), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(g.Nodes(), packet.Transit, benchSeed+uint64(i))
				s := mesh.Route(g, pkts, mesh.Options{Seed: uint64(i)})
				rounds += s.Rounds
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(n), "rounds/n")
		})
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// speedupCase is one large-n configuration of the E13 harness: route
// runs once with Workers=1 and once with Workers=GOMAXPROCS on
// identical workloads (the engine guarantees identical results), and
// the wall-clock ratio is the parallel engine's speedup.
type speedupCase struct {
	name string
	run  func(seed uint64, workers int) int // returns Rounds
}

func speedupCases() []speedupCase {
	return []speedupCase{
		{"star7-relation", func(seed uint64, workers int) int {
			g := star.New(7) // 5040 nodes, 7-relation: 35280 packets
			pkts := workload.Relation(g.Nodes(), 7, packet.Transit, seed)
			return leveled.Route(g.AsLeveled(), pkts, leveled.Options{Seed: seed * 31, Workers: workers}).Rounds
		}},
		{"butterfly14-perm", func(seed uint64, workers int) int {
			spec := leveled.NewButterfly(14) // 16384 rows, 15 levels
			pkts := workload.Permutation(spec.Width(), packet.Transit, seed)
			return leveled.Route(spec, pkts, leveled.Options{Seed: seed * 31, Workers: workers}).Rounds
		}},
		{"mesh128-perm", func(seed uint64, workers int) int {
			g := mesh.New(128) // 16384 nodes
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			return mesh.Route(g, pkts, mesh.Options{Seed: seed * 31, Workers: workers}).Rounds
		}},
	}
}

// BenchmarkE13ParallelEngine — the parallel sharded round engine PR:
// each sub-benchmark reports seq_rounds/sec (Workers=1),
// par_rounds/sec (Workers=GOMAXPROCS) and their wall-clock ratio as
// "speedup" (> 1 means the parallel engine wins; expect ~1 on a
// single-core runner, where the engine degrades to the sequential
// loop).
func BenchmarkE13ParallelEngine(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, c := range speedupCases() {
		b.Run(c.name, func(b *testing.B) {
			var seqNS, parNS time.Duration
			var rounds int
			for i := 0; i < b.N; i++ {
				seed := benchSeed + uint64(i)
				t0 := time.Now()
				seqRounds := c.run(seed, 1)
				seqNS += time.Since(t0)
				t0 = time.Now()
				parRounds := c.run(seed, workers)
				parNS += time.Since(t0)
				if seqRounds != parRounds {
					b.Fatalf("determinism violated: seq %d rounds, par %d", seqRounds, parRounds)
				}
				rounds += seqRounds
			}
			b.ReportMetric(float64(rounds)/seqNS.Seconds(), "seq_rounds/sec")
			b.ReportMetric(float64(rounds)/parNS.Seconds(), "par_rounds/sec")
			b.ReportMetric(seqNS.Seconds()/parNS.Seconds(), "speedup")
		})
	}
}

// BenchmarkE15EngineHotPath — the flat-state round engine PR: the
// same large-n configurations priced on the dense slice-table path
// and on the hashed-map fallback (the pre-PR layout), with Workers: 1
// so the metrics isolate the data plane. ns/round, B/round and
// allocs/round are per simulated round across all trials; packets
// come from one slab arena recycled per trial. The residual B/round
// is injection-time setup (per-packet PRNG substreams, workload
// vectors) amortized over the run — steady-state rounds themselves
// allocate zero, which TestSteadyStateRoundIsAllocationFree asserts
// exactly.
func BenchmarkE15EngineHotPath(b *testing.B) {
	type hotCase struct {
		name string
		run  func(a *packet.Arena, seed uint64, hashed bool) int // returns Rounds
	}
	cases := []hotCase{
		{"star7-relation", func(a *packet.Arena, seed uint64, hashed bool) int {
			g := star.New(7) // 5040 nodes, 7-relation: 35280 packets
			pkts := workload.RelationInto(a, g.Nodes(), 7, packet.Transit, seed)
			return leveled.Route(g.AsLeveled(), pkts, leveled.Options{
				Seed: seed * 31, Workers: 1, HashedKeys: hashed,
			}).Rounds
		}},
		{"shuffle5-perm", func(a *packet.Arena, seed uint64, hashed bool) int {
			g := shuffle.NewNWay(5) // 3125 nodes, 6-column unrolling
			pkts := workload.PermutationInto(a, g.Nodes(), packet.Transit, seed)
			return leveled.Route(g.AsLeveled(), pkts, leveled.Options{
				Seed: seed * 31, Workers: 1, HashedKeys: hashed,
			}).Rounds
		}},
		{"mesh128-perm", func(a *packet.Arena, seed uint64, hashed bool) int {
			g := mesh.New(128) // 16384 nodes, furthest-first heaps
			pkts := workload.PermutationInto(a, g.Nodes(), packet.Transit, seed)
			return mesh.Route(g, pkts, mesh.Options{
				Seed: seed * 31, Workers: 1, HashedKeys: hashed,
			}).Rounds
		}},
	}
	for _, c := range cases {
		for _, mode := range []struct {
			name   string
			hashed bool
		}{{"dense", false}, {"hashed", true}} {
			b.Run(c.name+"/"+mode.name, func(b *testing.B) {
				arena := packet.NewArena()
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				rounds := 0
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					arena.Reset()
					rounds += c.run(arena, benchSeed+uint64(i), mode.hashed)
				}
				elapsed := time.Since(start)
				b.StopTimer()
				runtime.ReadMemStats(&after)
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(rounds), "ns/round")
				b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(rounds), "B/round")
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(rounds), "allocs/round")
				b.ReportMetric(float64(rounds)/elapsed.Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkE16ScenarioMatrix — the workload-registry payoff: every
// registered topology family priced against every applicable
// registered workload generator, the full cross-product of the two
// registries gated by the workload capability checks. A family or
// generator registered tomorrow appears as a new sub-benchmark with
// no edits here. Cells run at the quick comparable sizes on the
// scenario runner (the same path -sweep uses), Workers: 1.
func BenchmarkE16ScenarioMatrix(b *testing.B) {
	sizes := experiments.CrossFamilySizes(true)
	for _, family := range topology.Names() {
		p := sizes[family]
		bt, err := topology.Build(family, p)
		if err != nil {
			b.Fatalf("%s: %v", family, err)
		}
		for _, wl := range workload.Names() {
			gen, _ := workload.Lookup(wl)
			if gen.Check(bt) != nil {
				continue // capability-gated pair (e.g. bitrev on a factorial family)
			}
			cell := scenario.Cell{
				Topo:    scenario.TopoRef{Family: family, N: p.N, K: p.K, Leveled: bt.Spec != nil},
				Work:    scenario.WorkRef{Name: wl},
				Built:   bt, // reuse the built graph so ns/op prices routing, not construction
				Workers: 1,
				Trials:  1,
			}
			b.Run(family+"/"+wl, func(b *testing.B) {
				rounds, diam := 0, 1
				for i := 0; i < b.N; i++ {
					cell.Seed = benchSeed + uint64(i)
					res, err := scenario.RunCell(cell)
					if err != nil {
						b.Fatal(err)
					}
					rounds += res.RoundsMax
					diam = res.Diameter
				}
				b.ReportMetric(float64(rounds)/float64(b.N)/float64(diam), "rounds/diam")
			})
		}
	}
}

// BenchmarkE17EmulationMatrix — Theorems 2.5/2.6 over the whole grid:
// one emulated PRAM step priced on every emulation-capable registered
// family × every single-step access pattern × both emulation modes
// (erew: exclusive accesses; crcw: combining enabled). The reported
// cost/diam is the theorems' bound — emulation cost tracks the
// diameter, whatever the family — and a family or generator
// registered tomorrow appears as new sub-benchmarks with no edits
// here. Cells run on the scenario runner's emulation path (the same
// one `-sweep` specs with a mode axis use), Workers: 1.
func BenchmarkE17EmulationMatrix(b *testing.B) {
	sizes := experiments.CrossFamilySizes(true)
	for _, family := range topology.Names() {
		p := sizes[family]
		bt, err := topology.Build(family, p)
		if err != nil {
			b.Fatalf("%s: %v", family, err)
		}
		for _, wl := range workload.Names() {
			gen, _ := workload.Lookup(wl)
			if gen.Check(bt) != nil {
				continue // capability-gated pair
			}
			for _, mode := range []string{scenario.ModeEREW, scenario.ModeCRCW} {
				if scenario.ModeCheck(mode, gen.Class) != nil {
					continue // e.g. many-one patterns are crcw-only
				}
				cell := scenario.Cell{
					Topo:    scenario.TopoRef{Family: family, N: p.N, K: p.K, Leveled: bt.Spec != nil},
					Work:    scenario.WorkRef{Name: wl},
					Built:   bt,
					Mode:    mode,
					Workers: 1,
					Trials:  1,
				}
				b.Run(family+"/"+wl+"/"+mode, func(b *testing.B) {
					cost, diam := 0, 1
					for i := 0; i < b.N; i++ {
						cell.Seed = benchSeed + uint64(i)
						res, err := scenario.RunCell(cell)
						if err != nil {
							b.Fatal(err)
						}
						cost += res.RoundsMax
						diam = res.Diameter
					}
					b.ReportMetric(float64(cost)/float64(b.N)/float64(diam), "cost/diam")
				})
			}
		}
	}
}

// BenchmarkE18AsynchronyMatrix — routing under asynchrony: every
// registered family × a permutation and a many-one workload, priced
// on the synchronous round engine and on the asynchronous event
// engine at each fault level of the E18 ladder (none / moderate /
// harsh). ticks/diam is the asynchronous counterpart of rounds/diam —
// the last delivery tick over the diameter — and retransmits/op
// prices the loss recovery of the drop axis explicitly. Cells run on
// the scenario runner (the same path `-sweep` specs with an engine
// axis use) at the quick comparable sizes, Workers: 1.
func BenchmarkE18AsynchronyMatrix(b *testing.B) {
	sizes := experiments.CrossFamilySizes(true)
	latency := experiments.E18Latency()
	for _, family := range topology.Names() {
		p := sizes[family]
		bt, err := topology.Build(family, p)
		if err != nil {
			b.Fatalf("%s: %v", family, err)
		}
		for _, wl := range []string{"perm", "khot"} {
			gen, _ := workload.Lookup(wl)
			if gen.Check(bt) != nil {
				continue // capability-gated pair
			}
			run := func(name string, cell scenario.Cell) {
				b.Run(family+"/"+wl+"/"+name, func(b *testing.B) {
					ticks, retransmits, diam := 0, 0, 1
					for i := 0; i < b.N; i++ {
						cell.Seed = benchSeed + uint64(i)
						res, err := scenario.RunCell(cell)
						if err != nil {
							b.Fatal(err)
						}
						ticks += res.RoundsMax
						retransmits += res.Retransmits
						diam = res.Diameter
					}
					b.ReportMetric(float64(ticks)/float64(b.N)/float64(diam), "ticks/diam")
					b.ReportMetric(float64(retransmits)/float64(b.N), "retransmits/op")
				})
			}
			base := scenario.Cell{
				Topo:    scenario.TopoRef{Family: family, N: p.N, K: p.K, Leveled: bt.Spec != nil},
				Work:    scenario.WorkRef{Name: wl},
				Built:   bt, // reuse the built graph so ns/op prices routing, not construction
				Workers: 1,
				Trials:  1,
			}
			run("round", base)
			for _, fault := range experiments.E18FaultLevels() {
				cell := base
				cell.Engine = scenario.EngineEvent
				cell.Latency = *latency
				cell.Fault = fault
				run("event/"+fault.Name, cell)
			}
		}
	}
}

// BenchmarkE14CrossFamily — the topology-registry payoff: permutation
// routing priced on every registered family at comparable sizes, with
// rounds/diam as the reported metric. The paper's framework predicts
// a modest constant on every family — including the four registered
// after the refactor (pancake, ttree, torus, debruijn) — because the
// two-phase argument only uses the unique-path structure, never the
// family identity.
func BenchmarkE14CrossFamily(b *testing.B) {
	sizes := experiments.CrossFamilySizes(false)
	for _, name := range topology.Names() {
		bt, err := topology.Build(name, sizes[name])
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		b.Run(name, func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				pkts := workload.Permutation(bt.Nodes(), packet.Transit, benchSeed+uint64(i))
				if bt.Spec != nil {
					rounds += leveled.Route(bt.Spec, pkts, leveled.Options{Seed: uint64(i) * 23}).Rounds
				} else {
					rounds += mustSim(bt.Graph, pkts, simnet.Options{Seed: uint64(i) * 23}).Rounds
				}
			}
			b.ReportMetric(float64(rounds)/float64(b.N)/float64(bt.Diameter()), "rounds/diam")
			b.ReportMetric(float64(bt.Diameter()), "diam")
		})
	}
}

// BenchmarkE19ScaleCeiling — the paged-tables/64-bit-key PR: the E19
// A/B rungs (quick sizes; the full 16.7M-node ladder lives in the
// table, not a benchmark loop), each priced once on the flat dense
// tables and once on the forced paged path. Identical rounds by
// construction — the engine guarantees bit-identical routing across
// table states — so the comparison isolates the paged directory's
// cost: tableB and B/node price the footprint, ns/op the indirection.
func BenchmarkE19ScaleCeiling(b *testing.B) {
	ab, _ := experiments.E19Sizes(true)
	for _, ref := range ab {
		bt, err := topology.Build(ref.Family, topology.Params{N: ref.N, K: ref.K})
		if err != nil {
			b.Fatalf("%s: %v", ref.Family, err)
		}
		for _, paged := range []struct {
			name  string
			force bool
		}{{"dense", false}, {"paged", true}} {
			cell := scenario.Cell{
				Topo:    ref,
				Work:    scenario.WorkRef{Name: "perm"},
				Built:   bt, // reuse the built graph so ns/op prices routing, not construction
				Workers: 1,
				Trials:  1,
				Paged:   paged.force,
			}
			b.Run(fmt.Sprintf("%s%d/%s", ref.Family, bt.Nodes(), paged.name), func(b *testing.B) {
				rounds, diam := 0, 1
				var last scenario.Result
				for i := 0; i < b.N; i++ {
					cell.Seed = benchSeed + uint64(i)
					res, err := scenario.RunCell(cell)
					if err != nil {
						b.Fatal(err)
					}
					rounds += res.RoundsMax
					diam = res.Diameter
					last = res
				}
				b.ReportMetric(float64(rounds)/float64(b.N)/float64(diam), "rounds/diam")
				b.ReportMetric(float64(last.TableBytes), "tableB")
				b.ReportMetric(last.BPerNode, "B/node")
			})
		}
	}
}

// BenchmarkE20BuildCache — the cross-cell build-cache PR: the same
// cross-family sweep priced cold (a fresh cache per iteration, so
// every topology is constructed) and warm (one cache primed before
// the loop, so every build is adopted and only routing is paid). The
// ns/op gap is the construction cost the cache removes from a warm
// sweep farm; build-ms/sweep isolates it, and KB/cell shows the
// allocation the cache and the pooled arenas/tables avoid. Routing is
// bit-identical across the two modes by construction — the E20 table
// asserts it — so the comparison prices reuse, nothing else.
func BenchmarkE20BuildCache(b *testing.B) {
	sizes := experiments.CrossFamilySizes(true)
	var topos []scenario.TopoRef
	for _, family := range topology.Names() {
		p := sizes[family]
		bt, err := topology.Build(family, p)
		if err != nil {
			b.Fatalf("%s: %v", family, err)
		}
		topos = append(topos, scenario.TopoRef{Family: family, N: p.N, K: p.K, Leveled: bt.Spec != nil})
	}
	spec := scenario.Spec{
		Name:             "bench-e20",
		Topologies:       topos,
		Workloads:        []scenario.WorkRef{{Name: "perm"}},
		Workers:          []int{1},
		Trials:           1,
		Seed:             benchSeed,
		SkipIncompatible: true,
	}
	priceSweep := func(b *testing.B, nextCache func() *buildcache.Cache) {
		var m0, m1 runtime.MemStats
		var buildNS int64
		cells := 1
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache := nextCache()
			before := cache.Stats()
			results, err := scenario.RunContextOptions(context.Background(), spec, scenario.RunOptions{Cache: cache})
			if err != nil {
				b.Fatal(err)
			}
			buildNS += cache.Stats().Delta(before).BuildNS
			cells = len(results)
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		b.ReportMetric(float64(buildNS)/float64(b.N)/1e6, "build-ms/sweep")
		b.ReportMetric(float64(m1.TotalAlloc-m0.TotalAlloc)/float64(b.N)/float64(cells)/1024, "KB/cell")
	}
	b.Run("cold", func(b *testing.B) {
		priceSweep(b, func() *buildcache.Cache { return buildcache.New(buildcache.DefaultBudget) })
	})
	b.Run("warm", func(b *testing.B) {
		cache := buildcache.New(buildcache.DefaultBudget)
		if _, err := scenario.RunContextOptions(context.Background(), spec, scenario.RunOptions{Cache: cache}); err != nil {
			b.Fatal(err)
		}
		priceSweep(b, func() *buildcache.Cache { return cache })
	})
}

// BenchmarkE21AdversarialBounds prices the adversarial search per
// strategy on a three-family slice of the registry and reports the
// worst observed rounds/diam each strategy reaches — the tail the
// whp bounds hide, as a benchmark series. The budgets are small: the
// benchmark tracks the searchers' cost and their findings' severity
// across commits, not the full nightly hunt.
func BenchmarkE21AdversarialBounds(b *testing.B) {
	families := []scenario.TopoRef{
		{Family: "hypercube", N: 8},
		{Family: "torus", N: 4, K: 4},
		{Family: "mesh", N: 16},
	}
	for _, strategy := range advsearch.Strategies() {
		b.Run(strategy, func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				rep, err := advsearch.Run(context.Background(), advsearch.Spec{
					Name:       "bench-e21",
					Families:   families,
					Strategies: []string{strategy},
					Seeds:      8,
					Iters:      8,
					Trials:     1,
					Seed:       benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, f := range rep.Findings {
					if f.RoundsPerDiam > worst {
						worst = f.RoundsPerDiam
					}
				}
			}
			b.ReportMetric(worst, "worst-rounds/diam")
		})
	}
}
