//go:build race

package pramemu

// raceEnabled reports whether the race detector is compiled in; the
// speedup assertion skips under it, since instrumentation distorts the
// sequential/parallel wall-clock ratio.
const raceEnabled = true
