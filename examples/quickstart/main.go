// Quickstart: route a random permutation on the 5-star graph with the
// paper's two-phase randomized algorithm (Algorithm 2.2), then emulate
// one EREW PRAM step on the same network — the two core operations of
// this library in ~40 lines.
package main

import (
	"fmt"

	"pramemu/internal/emul"
	"pramemu/internal/packet"
	"pramemu/internal/simnet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

func main() {
	// 1. Build the 5-star graph from the topology registry: 120
	//    nodes, degree 4, diameter 6 — sub-logarithmic in the network
	//    size. Any registered family name works here (pancake, torus,
	//    debruijn, ttree, ...).
	b, err := topology.Build("star", topology.Params{N: 5})
	if err != nil {
		panic(err)
	}
	g := b.Graph
	fmt.Printf("network: %s, %d nodes, diameter %d\n", g.Name(), g.Nodes(), g.Diameter())

	// 2. Permutation routing (Theorem 2.2): every node sends one
	//    packet, destinations form a random permutation.
	pkts := workload.Permutation(g.Nodes(), packet.Transit, 7)
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("permutation routing: %d rounds (%.1f x diameter), max queue %d\n",
		stats.Rounds, float64(stats.Rounds)/float64(g.Diameter()), stats.MaxQueue)

	// 3. Emulate one EREW PRAM step (Theorem 2.5): each processor
	//    reads a random shared-memory address; the Karlin-Upfal hash
	//    scatters the address space over the 120 memory modules, and
	//    the step costs Õ(diameter) network rounds.
	net, err := emul.NewDirectTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	e, err := emul.New(net, emul.Config{Memory: 1 << 20, Seed: 99})
	if err != nil {
		panic(err)
	}
	reqs := workload.RandomStep(g.Nodes(), 1<<20, false, 3)
	_, cost := e.RouteRequests(reqs)
	fmt.Printf("one EREW PRAM step: %d rounds (%.1f x diameter), hash = %d bits\n",
		cost, float64(cost)/float64(g.Diameter()), e.HashBits())
}
