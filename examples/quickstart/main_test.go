package main

import (
	"strings"
	"testing"

	"pramemu/internal/testio"
)

// The quickstart runs in milliseconds on its real configuration, so
// the smoke test executes main itself and checks both demonstrated
// operations report.
func TestMainSmoke(t *testing.T) {
	out := testio.CaptureStdout(t, main)
	for _, want := range []string{"permutation routing:", "one EREW PRAM step:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
