package main

import (
	"strings"
	"testing"

	"pramemu/internal/testio"
)

// The hot-spot demo runs in well under a second, so the smoke test
// executes main itself and checks both the combining and
// non-combining rows print.
func TestMainSmoke(t *testing.T) {
	out := testio.CaptureStdout(t, main)
	if !strings.Contains(out, "combining=false") || !strings.Contains(out, "combining=true") {
		t.Fatalf("missing combining comparison:\n%s", out)
	}
	if !strings.Contains(out, "merges=") {
		t.Fatalf("missing merge count:\n%s", out)
	}
}
