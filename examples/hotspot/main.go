// Hotspot: demonstrate Theorem 2.6's CRCW message combining on the
// 6-star graph. All 720 processors read the same shared address in
// one step; without combining the requests serialize at the module's
// incoming links, with combining they merge en route into a tree and
// the step stays near the diameter.
package main

import (
	"fmt"

	"pramemu/internal/emul"
	"pramemu/internal/star"
	"pramemu/internal/workload"
)

func main() {
	g := star.New(6) // 720 nodes, diameter 7
	net := &emul.LeveledNetwork{Spec: g.AsLeveled(), Diam: g.Diameter()}
	fmt.Printf("%s: %d processors, diameter %d\n", g.Name(), g.Nodes(), g.Diameter())
	fmt.Println("all processors read one shared address (a fully concurrent CRCW step):")

	for _, combine := range []bool{false, true} {
		e := emul.New(net, emul.Config{Memory: 1 << 20, Seed: 8, Combine: combine})
		stats, cost := e.RouteRequests(workload.CRCWStep(g.Nodes(), 4242))
		fmt.Printf("  combining=%-5v  cost=%-5d rounds (%.1f x diameter), merges=%d, replies=%d\n",
			combine, cost, float64(cost)/float64(g.Diameter()), stats.Merges, stats.Replies)
	}

	fmt.Println("\nand a partially hot workload (50% of reads hit one address):")
	for _, combine := range []bool{false, true} {
		e := emul.New(net, emul.Config{Memory: 1 << 20, Seed: 8, Combine: combine})
		pkts := workload.HotSpot(g.Nodes(), 0.5, 0, 77)
		reqs := workload.Requests(g.Nodes(), pkts)
		_, cost := e.RouteRequests(reqs)
		fmt.Printf("  combining=%-5v  cost=%d rounds\n", combine, cost)
	}
}
