// Hotspot: demonstrate Theorem 2.6's CRCW message combining on the
// 6-star graph. All 720 processors read the same shared address in
// one step; without combining the requests serialize at the module's
// incoming links, with combining they merge en route into a tree and
// the step stays near the diameter.
package main

import (
	"fmt"

	"pramemu/internal/emul"
	"pramemu/internal/packet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

func main() {
	b, err := topology.Build("star", topology.Params{N: 6}) // 720 nodes, diameter 7
	if err != nil {
		panic(err)
	}
	net, err := emul.NewTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	nodes, diam := b.Nodes(), b.Diameter()
	fmt.Printf("%s: %d processors, diameter %d\n", b.Name(), nodes, diam)
	fmt.Println("all processors read one shared address (a fully concurrent CRCW step):")

	mustEmul := func(combine bool) *emul.Emulator {
		e, err := emul.New(net, emul.Config{Memory: 1 << 20, Seed: 8, Combine: combine})
		if err != nil {
			panic(err)
		}
		return e
	}
	for _, combine := range []bool{false, true} {
		e := mustEmul(combine)
		stats, cost := e.RouteRequests(workload.CRCWStep(nodes, 4242))
		fmt.Printf("  combining=%-5v  cost=%-5d rounds (%.1f x diameter), merges=%d, replies=%d\n",
			combine, cost, float64(cost)/float64(diam), stats.Merges, stats.Replies)
	}

	fmt.Println("\nand a partially hot workload (50% of reads hit one address):")
	for _, combine := range []bool{false, true} {
		e := mustEmul(combine)
		pkts := workload.HotSpot(nodes, 0.5, 0, packet.ReadRequest, 77)
		reqs := workload.Requests(nodes, pkts)
		_, cost := e.RouteRequests(reqs)
		fmt.Printf("  combining=%-5v  cost=%d rounds\n", combine, cost)
	}
}
