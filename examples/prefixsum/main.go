// Prefixsum: run the same EREW prefix-sums program on the ideal PRAM
// and on a spread of emulated networks picked from the topology
// registry — the star graph, the shuffle, the hypercube, plus two
// families the registry made cheap to add (pancake, de Bruijn) — the
// portability the emulation theorems promise — and compare the
// per-step emulation cost against each diameter.
package main

import (
	"fmt"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/pram"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

func run(name string, net emul.Network, procs, diam int) {
	var exec pram.StepExecutor = pram.Unit{}
	if net != nil {
		e, err := emul.New(net, emul.Config{Memory: 1 << 20, Seed: 5})
		if err != nil {
			panic(err)
		}
		exec = e
	}
	m := pram.New(pram.Config{Procs: procs, Memory: 1 << 20, Variant: pram.EREW, Executor: exec})
	for i := 0; i < procs; i++ {
		m.Store(uint64(i), int64(i))
	}
	algorithms.PrefixSums(m, 0, procs)
	// Verify: prefix sums of 0..procs-1.
	for i := 0; i < procs; i++ {
		if m.Load(uint64(i)) != int64(i*(i+1)/2) {
			panic("prefix sums incorrect on " + name)
		}
	}
	perStep := float64(m.Time()) / float64(m.Steps())
	fmt.Printf("%-22s procs=%-5d steps=%-3d time=%-6d per-step=%6.1f  (diam %d, %.2fx)\n",
		name, procs, m.Steps(), m.Time(), perStep, diam, perStep/float64(diam))
}

func main() {
	fmt.Println("EREW prefix sums, same program on six machines:")
	run("ideal PRAM", nil, 120, 1)

	for _, sel := range []struct {
		family string
		p      topology.Params
	}{
		{"star", topology.Params{N: 5}},      // 120 nodes, diameter 6
		{"shuffle", topology.Params{N: 3}},   // 27 nodes, diameter 3
		{"hypercube", topology.Params{N: 7}}, // 128 nodes, diameter 7
		{"pancake", topology.Params{N: 5}},   // 120 nodes, diameter 5
		{"debruijn", topology.Params{N: 7}},  // 128 nodes, diameter 7
	} {
		b, err := topology.Build(sel.family, sel.p)
		if err != nil {
			panic(err)
		}
		net, err := emul.NewTopologyNetwork(b)
		if err != nil {
			panic(err)
		}
		run(b.Name(), net, b.Nodes(), b.Diameter())
	}

	fmt.Println("\nthe emulated cost per PRAM step tracks each network's diameter,")
	fmt.Println("which for the star and pancake graphs is sub-logarithmic in the node count.")
}
