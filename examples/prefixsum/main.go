// Prefixsum: run the same EREW prefix-sums program on the ideal PRAM,
// on the 5-star graph, on the 4-way shuffle and on a hypercube of
// comparable size — the portability the emulation theorems promise —
// and compare the per-step emulation cost against each diameter.
package main

import (
	"fmt"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/hypercube"
	"pramemu/internal/pram"
	"pramemu/internal/shuffle"
	"pramemu/internal/star"
)

func run(name string, net emul.Network, procs, diam int) {
	var exec pram.StepExecutor = pram.Unit{}
	if net != nil {
		exec = emul.New(net, emul.Config{Memory: 1 << 20, Seed: 5})
	}
	m := pram.New(pram.Config{Procs: procs, Memory: 1 << 20, Variant: pram.EREW, Executor: exec})
	for i := 0; i < procs; i++ {
		m.Store(uint64(i), int64(i))
	}
	algorithms.PrefixSums(m, 0, procs)
	// Verify: prefix sums of 0..procs-1.
	for i := 0; i < procs; i++ {
		if m.Load(uint64(i)) != int64(i*(i+1)/2) {
			panic("prefix sums incorrect on " + name)
		}
	}
	perStep := float64(m.Time()) / float64(m.Steps())
	fmt.Printf("%-22s procs=%-5d steps=%-3d time=%-6d per-step=%6.1f  (diam %d, %.2fx)\n",
		name, procs, m.Steps(), m.Time(), perStep, diam, perStep/float64(diam))
}

func main() {
	fmt.Println("EREW prefix sums, same program on four machines:")
	run("ideal PRAM", nil, 120, 1)

	sg := star.New(5) // 120 nodes, diameter 6
	run(sg.Name(), &emul.LeveledNetwork{Spec: sg.AsLeveled(), Diam: sg.Diameter()}, sg.Nodes(), sg.Diameter())

	sh := shuffle.NewNWay(3) // 27 nodes, diameter 3
	run(sh.Name(), &emul.LeveledNetwork{Spec: sh.AsLeveled(), Diam: sh.Diameter()}, sh.Nodes(), sh.Diameter())

	hc := hypercube.New(7) // 128 nodes, diameter 7
	run(hc.Name(), &emul.DirectNetwork{Topo: hc}, hc.Nodes(), hc.Diameter())

	fmt.Println("\nthe emulated cost per PRAM step tracks each network's diameter,")
	fmt.Println("which for the star graph is sub-logarithmic in the node count.")
}
