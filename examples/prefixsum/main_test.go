package main

import (
	"strings"
	"testing"

	"pramemu/internal/testio"
)

// The prefix-sums demo verifies its own results (it panics on a wrong
// sum), so the smoke test executes main itself and checks all four
// machines report.
func TestMainSmoke(t *testing.T) {
	out := testio.CaptureStdout(t, main)
	for _, want := range []string{"ideal PRAM", "star", "shuffle", "hypercube"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
