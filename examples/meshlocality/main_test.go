package main

import (
	"strings"
	"testing"
)

// The smoke test runs the demo's core on a tiny 16 x 16 grid with two
// distance bounds; the 128 x 128 sweep stays in main.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	run(&b, 16, []int{2, 4})
	out := b.String()
	if !strings.Contains(out, "mesh(16x16)") || !strings.Contains(out, "non-local permutation") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// One data row per distance bound plus header and footer.
	if strings.Count(out, "\n") < 5 {
		t.Fatalf("too few report lines:\n%s", out)
	}
}
