// Meshlocality: demonstrate Theorem 3.3 on a 128 x 128 mesh — when
// every memory request originates within L1 distance d of the module
// that holds the address, the emulation finishes in O(d) steps
// (bounded by 6d + o(d)) instead of O(n), so locality in the program
// translates directly into locality in time.
package main

import (
	"fmt"
	"io"
	"os"

	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/workload"
)

func main() {
	run(os.Stdout, 128, []int{4, 8, 16, 32, 64})
}

// run reports the locality experiment on an n x n mesh for each
// distance bound in ds; main uses the paper's 128, tests a tiny grid.
func run(w io.Writer, n int, ds []int) {
	g := mesh.New(n)
	fmt.Fprintf(w, "%s: diameter %d\n", g.Name(), g.Diameter())
	fmt.Fprintln(w, "d     request  reply  step   step/d  bound 6d")

	for _, d := range ds {
		opts := mesh.Options{
			Seed:          uint64(d) * 7,
			LocalityBound: d,
			SliceRows:     maxi(1, d/4),
		}
		// Request phase: every node reads from a module within
		// distance d.
		pkts := workload.MeshLocal(g, d, uint64(d))
		req := mesh.Route(g, pkts, opts)
		// Reply phase: modules answer.
		replies := make([]*packet.Packet, len(pkts))
		for i, p := range pkts {
			replies[i] = packet.New(i, p.Dst, p.Src, packet.Transit)
		}
		opts.Seed *= 3
		rep := mesh.Route(g, replies, opts)
		step := req.Rounds + rep.Rounds
		fmt.Fprintf(w, "%-4d  %-7d  %-5d  %-5d  %-6.2f  %d\n",
			d, req.Rounds, rep.Rounds, step, float64(step)/float64(d), 6*d)
	}

	// Contrast: a non-local random permutation costs ~2n per phase.
	pkts := workload.Permutation(g.Nodes(), packet.Transit, 3)
	global := mesh.Route(g, pkts, mesh.Options{Seed: 11})
	fmt.Fprintf(w, "\nnon-local permutation for comparison: %d rounds (%.2f x n)\n",
		global.Rounds, float64(global.Rounds)/float64(n))
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
