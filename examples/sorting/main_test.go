package main

import (
	"strings"
	"testing"
)

// The smoke test runs the demo's core on a tiny configuration: the
// 2-way shuffle (4 nodes, 4 keys) and an 8 x 8 mesh.
func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	run(&b, 2, 8)
	out := b.String()
	if !strings.Contains(out, "odd-even merge sort") || !strings.Contains(out, "shearsort") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
