// Sorting: run Batcher's odd-even merge sort (an EREW PRAM program
// from the library) on the ideal machine and through the 4-way
// shuffle emulation, and separately contrast randomized vs sorting-
// based *routing* on the mesh (§2.2.1's remark that Batcher-style
// routing costs ~7n while randomized routing costs ~2n).
package main

import (
	"fmt"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/shuffle"
	"pramemu/internal/workload"
)

func main() {
	// Part 1: odd-even merge sort as a PRAM program, n = 256 keys on
	// the 4-way shuffle (256 nodes, diameter 4).
	const n = 256
	sh := shuffle.NewNWay(4)
	net := &emul.LeveledNetwork{Spec: sh.AsLeveled(), Diam: sh.Diameter()}

	for _, cfg := range []struct {
		name string
		exec pram.StepExecutor
	}{
		{"ideal PRAM", pram.Unit{}},
		{sh.Name(), emul.New(net, emul.Config{Memory: 1 << 16, Seed: 2})},
	} {
		m := pram.New(pram.Config{Procs: n, Memory: 1 << 16, Variant: pram.EREW, Executor: cfg.exec})
		src := prng.New(9)
		for i := 0; i < n; i++ {
			m.Store(uint64(i), int64(src.Intn(100000)))
		}
		algorithms.OddEvenMergeSort(m, 0, n)
		prev := int64(-1)
		for i := 0; i < n; i++ {
			v := m.Load(uint64(i))
			if v < prev {
				panic("sort produced out-of-order output")
			}
			prev = v
		}
		fmt.Printf("odd-even merge sort of %d keys on %-18s steps=%-4d time=%d\n",
			n, cfg.name, m.Steps(), m.Time())
	}

	// Part 2: routing a permutation on a 64 x 64 mesh, randomized
	// three-stage vs deterministic shearsort-based.
	g := mesh.New(64)
	perm := workload.Permutation(g.Nodes(), packet.Transit, 5)
	three := mesh.Route(g, perm, mesh.Options{Seed: 3})
	sortRounds := mesh.SortRoute(g, workload.Permutation(g.Nodes(), packet.Transit, 5))
	fmt.Printf("\nmesh(64x64) permutation routing:\n")
	fmt.Printf("  randomized three-stage: %4d rounds (%.2f x n)\n",
		three.Rounds, float64(three.Rounds)/64)
	fmt.Printf("  shearsort (sort-based): %4d rounds (%.2f x n) — no queues, but %0.1fx slower\n",
		sortRounds, float64(sortRounds)/64, float64(sortRounds)/float64(three.Rounds))
}
