// Sorting: run Batcher's odd-even merge sort (an EREW PRAM program
// from the library) on the ideal machine and through the 4-way
// shuffle emulation, and separately contrast randomized vs sorting-
// based *routing* on the mesh (§2.2.1's remark that Batcher-style
// routing costs ~7n while randomized routing costs ~2n).
package main

import (
	"fmt"
	"io"
	"os"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/pram"
	"pramemu/internal/prng"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

func main() {
	run(os.Stdout, 4, 64)
}

// run sorts shuffleN^shuffleN keys through the shuffleN-way shuffle
// emulation and contrasts routing schemes on a meshSide x meshSide
// grid; main uses the full sizes, tests smaller ones.
func run(w io.Writer, shuffleN, meshSide int) {
	// Part 1: odd-even merge sort as a PRAM program, n keys on the
	// shuffleN-way shuffle (n = shuffleN^shuffleN nodes).
	b, err := topology.Build("shuffle", topology.Params{N: shuffleN})
	if err != nil {
		panic(err)
	}
	n := b.Nodes()
	net, err := emul.NewTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	shuffleEmul, err := emul.New(net, emul.Config{Memory: 1 << 16, Seed: 2})
	if err != nil {
		panic(err)
	}

	for _, cfg := range []struct {
		name string
		exec pram.StepExecutor
	}{
		{"ideal PRAM", pram.Unit{}},
		{b.Name(), shuffleEmul},
	} {
		m := pram.New(pram.Config{Procs: n, Memory: 1 << 16, Variant: pram.EREW, Executor: cfg.exec})
		src := prng.New(9)
		for i := 0; i < n; i++ {
			m.Store(uint64(i), int64(src.Intn(100000)))
		}
		algorithms.OddEvenMergeSort(m, 0, n)
		prev := int64(-1)
		for i := 0; i < n; i++ {
			v := m.Load(uint64(i))
			if v < prev {
				panic("sort produced out-of-order output")
			}
			prev = v
		}
		fmt.Fprintf(w, "odd-even merge sort of %d keys on %-18s steps=%-4d time=%d\n",
			n, cfg.name, m.Steps(), m.Time())
	}

	// Part 2: routing a permutation on a meshSide x meshSide mesh,
	// randomized three-stage vs deterministic shearsort-based.
	g := mesh.New(meshSide)
	perm := workload.Permutation(g.Nodes(), packet.Transit, 5)
	three := mesh.Route(g, perm, mesh.Options{Seed: 3})
	sortRounds := mesh.SortRoute(g, workload.Permutation(g.Nodes(), packet.Transit, 5))
	fmt.Fprintf(w, "\nmesh(%dx%d) permutation routing:\n", meshSide, meshSide)
	fmt.Fprintf(w, "  randomized three-stage: %4d rounds (%.2f x n)\n",
		three.Rounds, float64(three.Rounds)/float64(meshSide))
	fmt.Fprintf(w, "  shearsort (sort-based): %4d rounds (%.2f x n) — no queues, but %0.1fx slower\n",
		sortRounds, float64(sortRounds)/float64(meshSide), float64(sortRounds)/float64(three.Rounds))
}
