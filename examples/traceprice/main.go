// Traceprice: record a PRAM program's instruction stream once (on the
// ideal machine) and replay the identical trace against several
// emulated networks to price it everywhere — the cleanest way to see
// the emulation theorems as a cost model: same program, same steps,
// cost proportional to each network's diameter.
package main

import (
	"fmt"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/pram"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

func main() {
	const procs = 120 // 5-star size; every network below has >= 120 nodes
	const mem = 1 << 20

	// Record the trace of EREW prefix sums on the ideal machine.
	tr := &pram.TraceExecutor{}
	m := pram.New(pram.Config{Procs: procs, Memory: mem, Variant: pram.EREW, Executor: tr})
	for i := 0; i < procs; i++ {
		m.Store(uint64(i), 1)
	}
	algorithms.PrefixSums(m, 0, procs)
	trace := tr.Trace()
	if err := pram.Validate(trace); err != nil {
		panic(err)
	}
	fmt.Printf("recorded %d PRAM steps of EREW prefix sums over %d processors\n\n",
		len(trace), procs)

	sb, err := topology.Build("star", topology.Params{N: 5})
	if err != nil {
		panic(err)
	}
	hb, err := topology.Build("hypercube", topology.Params{N: 7})
	if err != nil {
		panic(err)
	}
	pb, err := topology.Build("pancake", topology.Params{N: 5})
	if err != nil {
		panic(err)
	}
	starLeveled, err := emul.NewTopologyNetwork(sb) // Algorithm 2.1 on the unrolling
	if err != nil {
		panic(err)
	}
	starDirect, err := emul.NewDirectTopologyNetwork(sb) // Algorithm 2.2 on the graph
	if err != nil {
		panic(err)
	}
	cube, err := emul.NewTopologyNetwork(hb)
	if err != nil {
		panic(err)
	}
	pancakeNet, err := emul.NewTopologyNetwork(pb)
	if err != nil {
		panic(err)
	}
	networks := []emul.Network{starLeveled, starDirect, cube, pancakeNet}
	fmt.Println("network                 diameter  total cost  cost/step  /diameter")
	for _, net := range networks {
		e, err := emul.New(net, emul.Config{Memory: mem, Seed: 31})
		if err != nil {
			panic(err)
		}
		cost := pram.Replay(trace, e)
		perStep := float64(cost) / float64(len(trace))
		fmt.Printf("%-22s  %-8d  %-10d  %-9.1f  %.2f\n",
			net.Name(), net.Diameter(), cost, perStep, perStep/float64(net.Diameter()))
	}
	fmt.Println("\nidentical instruction stream; cost scales with each diameter.")
}
