// Traceprice: record a PRAM program's instruction stream once (on the
// ideal machine) and replay the identical trace against several
// emulated networks to price it everywhere — the cleanest way to see
// the emulation theorems as a cost model: same program, same steps,
// cost proportional to each network's diameter.
package main

import (
	"fmt"

	"pramemu/internal/algorithms"
	"pramemu/internal/emul"
	"pramemu/internal/hypercube"
	"pramemu/internal/pram"
	"pramemu/internal/star"
)

func main() {
	const procs = 120 // 5-star size; every network below has >= 120 nodes
	const mem = 1 << 20

	// Record the trace of EREW prefix sums on the ideal machine.
	tr := &pram.TraceExecutor{}
	m := pram.New(pram.Config{Procs: procs, Memory: mem, Variant: pram.EREW, Executor: tr})
	for i := 0; i < procs; i++ {
		m.Store(uint64(i), 1)
	}
	algorithms.PrefixSums(m, 0, procs)
	trace := tr.Trace()
	if err := pram.Validate(trace); err != nil {
		panic(err)
	}
	fmt.Printf("recorded %d PRAM steps of EREW prefix sums over %d processors\n\n",
		len(trace), procs)

	sg := star.New(5)
	hc := hypercube.New(7)
	networks := []emul.Network{
		&emul.LeveledNetwork{Spec: sg.AsLeveled(), Diam: sg.Diameter()},
		&emul.DirectNetwork{Topo: sg},
		&emul.DirectNetwork{Topo: hc},
	}
	fmt.Println("network                 diameter  total cost  cost/step  /diameter")
	for _, net := range networks {
		e := emul.New(net, emul.Config{Memory: mem, Seed: 31})
		cost := pram.Replay(trace, e)
		perStep := float64(cost) / float64(len(trace))
		fmt.Printf("%-22s  %-8d  %-10d  %-9.1f  %.2f\n",
			net.Name(), net.Diameter(), cost, perStep, perStep/float64(net.Diameter()))
	}
	fmt.Println("\nidentical instruction stream; cost scales with each diameter.")
}
