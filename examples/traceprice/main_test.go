package main

import (
	"strings"
	"testing"

	"pramemu/internal/testio"
)

// The trace-pricing demo records and replays a real program trace in
// well under a second, so the smoke test executes main itself.
func TestMainSmoke(t *testing.T) {
	out := testio.CaptureStdout(t, main)
	if !strings.Contains(out, "recorded") || !strings.Contains(out, "cost/step") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
