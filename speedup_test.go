package pramemu

import (
	"runtime"
	"testing"
	"time"
)

// TestParallelSpeedupMulticore asserts the engine's raison d'être: on
// a multicore runner, Workers=GOMAXPROCS beats Workers=1 wall-clock on
// a large-n configuration. Skipped on small machines, under the race
// detector (instrumentation distorts the ratio) and in -short mode;
// BenchmarkE13ParallelEngine reports the same ratio as a metric
// everywhere.
func TestParallelSpeedupMulticore(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement in -short mode")
	}
	if raceEnabled {
		t.Skip("speedup measurement under the race detector")
	}
	workers := runtime.GOMAXPROCS(0)
	if runtime.NumCPU() < 4 || workers < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup bound, have %d (GOMAXPROCS %d)",
			runtime.NumCPU(), workers)
	}
	c := speedupCases()[0] // star7-relation: 5040 nodes, 35280 packets
	best := func(workers int) time.Duration {
		min := time.Duration(1<<62 - 1)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			c.run(benchSeed+uint64(trial), workers)
			if d := time.Since(t0); d < min {
				min = d
			}
		}
		return min
	}
	seq := best(1)
	par := best(workers)
	speedup := seq.Seconds() / par.Seconds()
	t.Logf("%s: seq %v, par %v (%d workers), speedup %.2fx", c.name, seq, par, workers, speedup)
	if speedup <= 1.0 {
		// On small shared runners (e.g. 4-vCPU CI machines) a noisy
		// neighbor can erase the margin without any code defect; a
		// wall-clock assertion is only trustworthy with headroom.
		if runtime.NumCPU() >= 8 {
			t.Errorf("parallel engine slower than sequential on %d CPUs: speedup %.2f", runtime.NumCPU(), speedup)
		} else {
			t.Skipf("inconclusive on a %d-CPU machine: speedup %.2f (see BenchmarkE13ParallelEngine)", runtime.NumCPU(), speedup)
		}
	}
}
