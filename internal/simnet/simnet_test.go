package simnet

import (
	"fmt"
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

// ring is a minimal bidirectional ring topology for black-box
// simulator tests: slot 0 = clockwise, slot 1 = counter-clockwise.
type ring struct{ n int }

func (r ring) Name() string        { return fmt.Sprintf("ring(%d)", r.n) }
func (r ring) Nodes() int          { return r.n }
func (r ring) Degree(node int) int { return 2 }
func (r ring) Diameter() int       { return r.n / 2 }
func (r ring) Neighbor(node, slot int) int {
	if slot == 0 {
		return (node + 1) % r.n
	}
	return (node - 1 + r.n) % r.n
}

// NextHop goes clockwise or counter-clockwise along the shorter arc;
// ties go clockwise, making paths unique.
func (r ring) NextHop(node, dst, taken int) (int, bool) {
	if node == dst {
		return 0, true
	}
	cw := (dst - node + r.n) % r.n
	if cw <= r.n-cw {
		return 0, false
	}
	return 1, false
}

func TestRingPermutation(t *testing.T) {
	topo := ring{16}
	perm := prng.New(3).Perm(16)
	pkts := make([]*packet.Packet, 16)
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats := mustRoute(t, topo, pkts, Options{Seed: 5})
	if stats.DeliveredRequests != 16 {
		t.Fatalf("delivered %d", stats.DeliveredRequests)
	}
	for _, p := range pkts {
		if p.Arrived < 0 {
			t.Fatalf("packet %d lost", p.ID)
		}
	}
}

func TestRingShortestPathsWhenDirect(t *testing.T) {
	topo := ring{10}
	// Single packet, no contention, SkipPhase1: must take exactly the
	// ring distance.
	for dst := 0; dst < 10; dst++ {
		p := packet.New(0, 0, dst, packet.Transit)
		mustRoute(t, topo, []*packet.Packet{p}, Options{Seed: 1, SkipPhase1: true})
		want := dst
		if dst > 5 {
			want = 10 - dst
		}
		if p.Hops != want {
			t.Fatalf("0->%d took %d hops, want %d", dst, p.Hops, want)
		}
	}
}

func TestZeroHopPacketWithReplies(t *testing.T) {
	topo := ring{8}
	// src == dst and SkipPhase1: request and reply complete at round 0.
	p := packet.New(0, 3, 3, packet.ReadRequest)
	stats := mustRoute(t, topo, []*packet.Packet{p}, Options{Seed: 1, SkipPhase1: true, Replies: true})
	if stats.DeliveredRequests != 1 || stats.DeliveredReplies != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Rounds != 0 {
		t.Fatalf("zero-hop packet took %d rounds", stats.Rounds)
	}
	if p.Kind != packet.ReadReply {
		t.Fatalf("kind %v", p.Kind)
	}
}

func TestDeterminism(t *testing.T) {
	topo := ring{32}
	perm := prng.New(9).Perm(32)
	run := func() Stats {
		pkts := make([]*packet.Packet, 32)
		for i, dst := range perm {
			pkts[i] = packet.New(i, i, dst, packet.ReadRequest)
		}
		return mustRoute(t, topo, pkts, Options{Seed: 7, Replies: true})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestRepliesRetraceExactPath(t *testing.T) {
	topo := ring{12}
	pkts := []*packet.Packet{packet.New(0, 1, 7, packet.ReadRequest)}
	mustRoute(t, topo, pkts, Options{Seed: 2, Replies: true, RecordPaths: true})
	p := pkts[0]
	if int(p.Path[0]) != 1 {
		t.Fatalf("path start %d", p.Path[0])
	}
	// Reply finished back at source.
	if p.Arrived < 0 || p.Kind != packet.ReadReply {
		t.Fatalf("reply not home: %+v", p)
	}
}

func TestSharedLinkSerializes(t *testing.T) {
	topo := ring{8}
	// Three packets all must cross link 0->1 (SkipPhase1, dsts 1,2,3
	// from src 0 go clockwise). One link crossing per round.
	pkts := []*packet.Packet{
		packet.New(0, 0, 1, packet.Transit),
		packet.New(1, 0, 2, packet.Transit),
		packet.New(2, 0, 3, packet.Transit),
	}
	stats := mustRoute(t, topo, pkts, Options{Seed: 1, SkipPhase1: true})
	// First crossing at round 1; third packet crosses at round 3 and
	// then needs 2 more hops: total >= 5.
	if stats.Rounds < 5 {
		t.Fatalf("three packets over one link finished in %d rounds", stats.Rounds)
	}
	var total int64
	for _, p := range pkts {
		total += int64(p.Delay)
	}
	if total != stats.TotalDelay {
		t.Fatalf("TotalDelay %d != sum of packet delays %d", stats.TotalDelay, total)
	}
	if stats.TotalDelay == 0 {
		t.Fatal("shared-link contention produced no queueing delay")
	}
}

func TestPanicsOnDuplicateIDs(t *testing.T) {
	topo := ring{4}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate IDs should panic")
		}
	}()
	mustRoute(t, topo, []*packet.Packet{
		packet.New(0, 0, 1, packet.Transit),
		packet.New(0, 1, 2, packet.Transit),
	}, Options{})
}

func TestPanicsOnBadEndpoints(t *testing.T) {
	topo := ring{4}
	defer func() {
		if recover() == nil {
			t.Fatal("bad endpoints should panic")
		}
	}()
	mustRoute(t, topo, []*packet.Packet{packet.New(0, 0, 9, packet.Transit)}, Options{})
}

func TestCombiningOnRing(t *testing.T) {
	topo := ring{16}
	// Four packets at each of two nodes, all reading the same address
	// at node 0: a steady ring drains at link rate, so collisions (and
	// hence merges) happen where requests are co-located.
	var pkts []*packet.Packet
	id := 0
	for _, src := range []int{4, 12} {
		for j := 0; j < 4; j++ {
			p := packet.New(id, src, 0, packet.ReadRequest)
			p.Addr = 99
			pkts = append(pkts, p)
			id++
		}
	}
	stats := mustRoute(t, topo, pkts, Options{Seed: 3, SkipPhase1: true, Replies: true, Combine: true})
	if stats.Merges == 0 {
		t.Fatal("no merges on co-located same-address reads")
	}
	if stats.DeliveredReplies != len(pkts) {
		t.Fatalf("replies %d/%d", stats.DeliveredReplies, len(pkts))
	}
	if stats.DeliveredRequests != len(pkts) {
		t.Fatalf("requests %d/%d", stats.DeliveredRequests, len(pkts))
	}
}

// TestCombiningRepliesWithUnequalPaths is the regression test for the
// merge-index bug the emulation axis exposed: with phase 1 enabled,
// two same-address requests meeting in a queue have generally taken
// different-length routes there (each detoured via its own random
// intermediate node), so the merge must be recorded at the host's
// path index while the child's own path simply ends at the merge
// node. Before the fix a combined child's reply could be dropped
// (host path shorter than the recorded index) or released at the
// wrong node; every read must get its reply, across many seeds.
func TestCombiningRepliesWithUnequalPaths(t *testing.T) {
	topo := ring{16}
	merges := 0
	for seed := uint64(0); seed < 30; seed++ {
		pkts := make([]*packet.Packet, 16)
		for i := range pkts {
			pkts[i] = packet.New(i, i, 5, packet.ReadRequest)
			pkts[i].Addr = 7
		}
		stats := mustRoute(t, topo, pkts, Options{Seed: seed, Replies: true, Combine: true})
		if stats.DeliveredReplies != len(pkts) {
			t.Fatalf("seed %d: replies %d/%d", seed, stats.DeliveredReplies, len(pkts))
		}
		for _, p := range pkts {
			if p.Arrived < 0 {
				t.Fatalf("seed %d: packet %d never completed", seed, p.ID)
			}
		}
		merges += stats.Merges
	}
	// Phase-1 scattering means individual seeds may see no queue
	// meetings; across 30 seeds the all-same-address reads must merge.
	if merges == 0 {
		t.Fatal("no merges across any seed")
	}
}

func TestMaxModuleLoadCountsConstituents(t *testing.T) {
	topo := ring{8}
	pkts := make([]*packet.Packet, 8)
	for i := range pkts {
		pkts[i] = packet.New(i, i, 4, packet.ReadRequest)
		pkts[i].Addr = 1
	}
	stats := mustRoute(t, topo, pkts, Options{Seed: 2, SkipPhase1: true, Replies: true, Combine: true})
	if stats.MaxModuleLoad != 8 {
		t.Fatalf("module load %d, want 8", stats.MaxModuleLoad)
	}
}

// mustRoute is the test-side wrapper around Route for topologies that
// are known to fit the key space.
func mustRoute(t *testing.T, topo Topology, pkts []*packet.Packet, opts Options) Stats {
	t.Helper()
	s, err := Route(topo, pkts, opts)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	return s
}

// hugeTopo is a fake topology claiming more nodes than the node-id
// limit (topology.MaxNodes, 2^31 — where recorded int32 path entries
// and 32-bit packed link-key halves overflow); Route must reject it
// with an error before building any routing state.
type hugeTopo struct{ ring }

func (hugeTopo) Nodes() int { return 1<<31 + 1 }

func TestOversizedTopologyReturnsError(t *testing.T) {
	_, err := Route(hugeTopo{ring{4}}, nil, Options{Seed: 1})
	if err == nil {
		t.Fatal("Route accepted a topology beyond the node-id limit")
	}
}
