// Package simnet is a synchronous packet-routing simulator for
// arbitrary point-to-point interconnection networks, used for the
// "parallel model" simulations of the n-star graph (Algorithm 2.2)
// and the binary hypercube baseline. One round moves at most one
// packet across each directed link; per-link queues are FIFO, the
// discipline the paper prescribes for leveled networks.
//
// Routing is Valiant two-phase: each packet first travels to a
// uniformly random intermediate node along the topology's
// deterministic path, then on to its true destination ("select a
// random intermediate node ... send each packet from its intermediate
// node to its correct destination"). Replies retrace the recorded
// request path in reverse, and CRCW combining (Theorem 2.6) merges
// same-address requests that meet in a queue during the deterministic
// final approach.
//
// The round loop runs on the shared internal/engine core: link queues
// are sharded over a worker pool, and the result is bit-for-bit
// identical for any Workers setting.
package simnet

import (
	"context"
	"fmt"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
	"pramemu/internal/topology"
)

// Topology is the unified graph interface of internal/topology; the
// simulator routes on any registered family. The alias keeps existing
// implementations and callers source-compatible.
type Topology = topology.Graph

// TakenSensitive re-exports the capability interface for topologies
// whose NextHop depends on the hops already taken within a phase (the
// d-way shuffle and the de Bruijn graph, whose unique paths have
// fixed length n). For such topologies two packets may combine only
// at equal progress; memoryless topologies (star, hypercube, ring)
// may combine whenever node and destination match.
type TakenSensitive = topology.TakenSensitive

// Options configures a routing run.
type Options struct {
	// Context, when non-nil, lets callers cancel or deadline a run;
	// the engine polls it cheaply (per round / every few thousand
	// events) and unwinds with an engine.Abort panic on expiry. A
	// never-canceled run is bit-identical to one without a context.
	Context context.Context
	// Seed drives the random intermediate destinations.
	Seed uint64
	// SkipPhase1 routes packets directly along deterministic paths
	// (the ablation showing why the randomizing phase matters).
	SkipPhase1 bool
	// Replies makes delivered requests retrace their paths as replies.
	Replies bool
	// Combine enables Theorem 2.6 message combining during phase 2.
	Combine bool
	// RecordPaths forces path recording even without Replies/Combine.
	RecordPaths bool
	// Workers is the round-engine worker count: 0 selects GOMAXPROCS,
	// 1 the sequential loop. Any value yields identical results.
	Workers int
	// HashedKeys forces the engine's hashed-map link state instead of
	// the dense-table fast path (reply-free runs encode links densely
	// as node*degree + slot and declare the key space to the engine).
	// Results are bit-identical either way; the knob exists for
	// benchmarking the fallback and for path-coverage tests.
	HashedKeys bool
	// PagedKeys forces the engine's paged dense tables even when the
	// declared key space is small enough for flat ones. The engine
	// selects paged tables automatically beyond 2^24 keys; the knob
	// exists so equivalence tests and benchmarks can price the paged
	// path at small scale. Results are bit-identical either way.
	PagedKeys bool
	// MemBudget caps the engine's fixed link-table footprint in bytes;
	// over budget the run degrades to hashed state (pay-per-live-key)
	// instead of erroring. Zero means no budget. See
	// engine.Options.MemBudget.
	MemBudget int64
	// MemStats, when non-nil, receives the engine's resolved state and
	// table footprint after the run (ArenaBytes is left to the caller,
	// which owns the packet arena).
	MemStats *engine.MemStats
	// Lease, when non-nil, recycles the engine's table and scratch
	// allocations across same-shape runs (see engine.Options.Lease);
	// results are bit-identical with or without it.
	Lease *engine.Lease
	// Event, when non-nil, routes on the asynchronous discrete-event
	// engine instead of synchronous rounds: per-link latency from the
	// configured distribution, sender-side bandwidth caps and fault
	// injection (see engine.EventOptions). The simulator fills the
	// node-decoding hooks so the straggler and delay-matrix axes key
	// to topology nodes. Stats.Rounds then reports the last delivery
	// tick (the delivered time).
	Event *engine.EventOptions
}

// Stats aggregates one routing run; the fields mirror the measures of
// §2.2.1 (routing time, queue size, delay).
type Stats struct {
	Rounds            int
	RequestRounds     int
	MaxQueue          int
	TotalDelay        int64
	MaxPacketSteps    int
	DeliveredRequests int
	DeliveredReplies  int
	Merges            int
	Retransmits       int
	MaxModuleLoad     int
}

// router holds the immutable per-run configuration; all mutable state
// lives in the engine's shard contexts.
type router struct {
	topo       Topology
	opts       Options
	record     bool
	matchTaken bool // combining requires equal per-phase progress
	// slotKeys selects the dense link encoding node*stride + slot,
	// used whenever the run spawns no replies. Replies retrace
	// recorded paths as (from, to) node pairs with no slot attached,
	// and on directed topologies the reverse hop has no forward slot
	// at all, so reply-bearing runs keep the packed-pair encoding for
	// forward and reverse traffic alike (sharing one queue per
	// directed link between requests and replies, as §2.2.1's
	// one-packet-per-link round model requires).
	slotKeys bool
	stride   uint64 // maximum out-degree, the slot-key stride
}

// edgeKey packs a directed (from, to) node pair into one 64-bit link
// key, 32 bits per endpoint. topology.MaxNodes (2^31) keeps both
// halves in range, so the encoding cannot collide.
func edgeKey(from, to int) uint64 { return uint64(from)<<32 | uint64(to) }

// maxDegree scans the topology for the widest node, the stride of the
// dense link encoding.
func maxDegree(topo Topology) int {
	deg := 0
	for v := 0; v < topo.Nodes(); v++ {
		if d := topo.Degree(v); d > deg {
			deg = d
		}
	}
	return deg
}

// Route routes pkts through topo. Packets need unique IDs and
// endpoints within range. It mutates the packets and returns Stats.
// A topology larger than topology.MaxNodes (2^31 nodes — the bound at
// which recorded path entries and packed 32-bit link-key halves would
// overflow) is rejected with an error before any routing state is
// built; everything below it routes, with table memory bounded by
// touched links via the engine's paged tables.
func Route(topo Topology, pkts []*packet.Packet, opts Options) (Stats, error) {
	if topo.Nodes() > topology.MaxNodes {
		return Stats{}, fmt.Errorf("simnet: %s has %d nodes, exceeding the node-id limit (%d)",
			topo.Name(), topo.Nodes(), topology.MaxNodes)
	}
	r := &router{
		topo:   topo,
		opts:   opts,
		record: opts.Replies || opts.Combine || opts.RecordPaths,
	}
	if ts, ok := topo.(TakenSensitive); ok {
		r.matchTaken = ts.TakenSensitive()
	}
	var maxKey uint64
	if !opts.Replies {
		if deg := maxDegree(topo); deg > 0 {
			r.slotKeys = true
			r.stride = uint64(deg)
			if !opts.HashedKeys {
				maxKey = uint64(topo.Nodes()) * r.stride
			}
		}
	}
	engOpts := engine.Options{
		Context:    opts.Context,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		MaxKey:     maxKey,
		MemBudget:  opts.MemBudget,
		ForcePaged: opts.PagedKeys,
		Lease:      opts.Lease,
	}
	if opts.Event != nil {
		ev := *opts.Event
		ev.Nodes = topo.Nodes()
		if r.slotKeys {
			stride := r.stride
			ev.NodeOf = func(key uint64) int { return int(key / stride) }
			ev.PeerOf = func(key uint64) int { return topo.Neighbor(int(key/stride), int(key%stride)) }
		} else {
			// Reply-bearing runs use the packed (from, to) pair encoding
			// for forward and reverse traffic alike.
			ev.NodeOf = func(key uint64) int { return int(key >> 32) }
			ev.PeerOf = func(key uint64) int { return int(key & 0xffffffff) }
		}
		engOpts.Event = &ev
	}
	eng := engine.New(engOpts)
	var combiner engine.Combiner
	if opts.Combine {
		combiner = r.combine
	}
	st := eng.Run(func(ctx *engine.Ctx) {
		root := prng.New(opts.Seed)
		seen := make(map[int]bool, len(pkts))
		for _, p := range pkts {
			if seen[p.ID] {
				panic(fmt.Sprintf("simnet: duplicate packet ID %d", p.ID))
			}
			seen[p.ID] = true
			if p.Src < 0 || p.Src >= topo.Nodes() || p.Dst < 0 || p.Dst >= topo.Nodes() {
				panic(fmt.Sprintf("simnet: packet %d endpoints out of range", p.ID))
			}
			p.Rand = root.Split(uint64(p.ID))
			p.Injected = 0
			p.Arrived = -1
			p.Phase = 1
			p.Stage = 0 // hops taken toward the current target
			if opts.SkipPhase1 {
				p.Phase = 2
				p.Inter = p.Dst
			} else {
				p.Inter = p.Rand.Intn(topo.Nodes())
			}
			if r.record {
				p.Path = append(p.Path[:0], int32(p.Src))
			}
			if a, delivered := r.advance(ctx, p, p.Src, 0); !delivered {
				ctx.Emit(a.Key, a.P)
			}
			// src == intermediate == dst: the packet never moves.
		}
	}, r.handle, combiner)
	if opts.MemStats != nil {
		*opts.MemStats = eng.MemStats()
	}
	return Stats{
		Rounds:            st.Rounds,
		RequestRounds:     st.RequestRounds,
		MaxQueue:          st.MaxQueue,
		TotalDelay:        st.TotalDelay,
		MaxPacketSteps:    st.MaxPacketSteps,
		DeliveredRequests: st.DeliveredRequests,
		DeliveredReplies:  st.DeliveredReplies,
		Merges:            st.Merges,
		Retransmits:       st.Retransmits,
		MaxModuleLoad:     st.MaxModuleLoad,
	}, nil
}

// advance decides the next queue insertion for a forward packet
// standing at node, or reports final delivery. round is the current
// simulation round (used for delivery bookkeeping).
func (r *router) advance(ctx *engine.Ctx, p *packet.Packet, node, round int) (engine.Arrival, bool) {
	for {
		target := p.Inter
		if p.Phase == 2 {
			target = p.Dst
		}
		slot, done := r.topo.NextHop(node, target, p.Stage)
		if !done {
			if r.slotKeys {
				return engine.Arrival{Key: uint64(node)*r.stride + uint64(slot), P: p}, false
			}
			to := r.topo.Neighbor(node, slot)
			return engine.Arrival{Key: edgeKey(node, to), P: p}, false
		}
		if p.Phase == 1 {
			p.Phase = 2
			p.Stage = 0
			continue
		}
		r.deliverForward(ctx, p, node, round)
		return engine.Arrival{}, true
	}
}

// handle advances one popped packet: it just crossed the link encoded
// in a.Key. Runs concurrently on distinct packets when Workers > 1.
func (r *router) handle(ctx *engine.Ctx, a engine.Arrival, round int) {
	p := a.P
	p.Hops++
	if p.Kind.IsReply() {
		r.handleReplyArrival(ctx, p, round)
		return
	}
	var to int
	if r.slotKeys {
		to = r.topo.Neighbor(int(a.Key/r.stride), int(a.Key%r.stride))
	} else {
		to = int(a.Key & 0xffffffff)
	}
	p.Stage++
	if r.record {
		p.RecordPath(to)
	}
	if next, delivered := r.advance(ctx, p, to, round); !delivered {
		ctx.Emit(next.Key, next.P)
	} else if p.Kind == packet.ReadReply && p.Stage > 0 {
		a := r.replyArrival(p)
		ctx.Emit(a.Key, a.P)
	}
}

func (r *router) deliverForward(ctx *engine.Ctx, p *packet.Packet, node, round int) {
	if node != p.Dst {
		panic(fmt.Sprintf("simnet: packet %d delivered to %d, want %d", p.ID, node, p.Dst))
	}
	st := ctx.Stats()
	p.Arrived = round
	if round > st.RequestRounds {
		st.RequestRounds = round
	}
	n := p.TotalCombined()
	st.DeliveredRequests += n
	ctx.AddLoad(node, n)
	if r.opts.Replies && p.Kind == packet.ReadRequest {
		r.makeReply(p)
		p.Stage = len(p.Path) - 1 // index into Path while retracing
		if p.Stage == 0 {
			// The request never left home (src == dst == intermediate);
			// its reply is immediately home too.
			r.finishReply(ctx, p, round)
		}
	} else {
		// Writes are fire-and-forget ("back in case of a read
		// instruction", §2.1).
		r.noteFinished(ctx, p)
	}
}

func (r *router) makeReply(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadRequest:
		p.Kind = packet.ReadReply
	case packet.WriteRequest:
		p.Kind = packet.WriteAck
	default:
		p.Kind = packet.ReadReply
	}
}

// replyArrival builds the queue insertion for a reply at Path index
// p.Stage about to move to index p.Stage-1.
func (r *router) replyArrival(p *packet.Packet) engine.Arrival {
	from := int(p.Path[p.Stage])
	to := int(p.Path[p.Stage-1])
	return engine.Arrival{Key: edgeKey(from, to), P: p}
}

func (r *router) handleReplyArrival(ctx *engine.Ctx, p *packet.Packet, round int) {
	p.Stage--
	idx := p.Stage
	for i, at := range p.CombinedAt {
		if at != idx {
			continue
		}
		child := p.Children[i]
		r.makeReply(child)
		if child.Kind == packet.ReadReply {
			child.Value = p.Value
		}
		// The merge node is the last entry of the child's own frozen
		// path; its index there can differ from idx when the two
		// requests reached the node over different-length routes.
		child.Stage = len(child.Path) - 1
		if child.Stage == 0 {
			r.finishReply(ctx, child, round)
		} else {
			a := r.replyArrival(child)
			ctx.Emit(a.Key, a.P)
		}
	}
	if idx == 0 {
		r.finishReply(ctx, p, round)
		return
	}
	a := r.replyArrival(p)
	ctx.Emit(a.Key, a.P)
}

func (r *router) finishReply(ctx *engine.Ctx, p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("simnet: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	ctx.Stats().DeliveredReplies++
	r.noteFinished(ctx, p)
}

func (r *router) noteFinished(ctx *engine.Ctx, p *packet.Packet) {
	st := ctx.Stats()
	st.TotalDelay += int64(p.Delay)
	if s := p.Steps(); s > st.MaxPacketSteps {
		st.MaxPacketSteps = s
	}
	if p.Arrived > st.Rounds {
		st.Rounds = p.Arrived
	}
}

// combine merges an arriving phase-2 request into a queued one with
// the same kind, address and destination, if present. On memoryless
// topologies matching (node, dst) guarantees the remaining
// deterministic paths coincide; on taken-sensitive topologies
// (shuffle) equal per-phase progress is additionally required.
func (r *router) combine(ctx *engine.Ctx, q queue.Discipline, a engine.Arrival) bool {
	p := a.P
	if !p.Kind.IsRequest() || p.Phase != 2 {
		return false
	}
	var host *packet.Packet
	q.Each(func(c *packet.Packet) bool {
		if c.Kind == p.Kind && c.Phase == 2 && c.Addr == p.Addr &&
			c.Dst == p.Dst && (!r.matchTaken || c.Stage == p.Stage) {
			host = c
			return false
		}
		return true
	})
	if host == nil {
		return false
	}
	// Both packets stand at the same node, but unlike on a leveled
	// network their recorded routes there may have different lengths
	// (phase-1 detours vary per packet), so the merge is recorded at
	// the HOST's path index — the trigger the host's reply counts
	// down — while the child's own path simply ends at the merge node.
	host.Combine(p, len(host.Path)-1)
	ctx.Stats().Merges++
	return true
}
