// Package simnet is a synchronous packet-routing simulator for
// arbitrary point-to-point interconnection networks, used for the
// "parallel model" simulations of the n-star graph (Algorithm 2.2)
// and the binary hypercube baseline. One round moves at most one
// packet across each directed link; per-link queues are FIFO, the
// discipline the paper prescribes for leveled networks.
//
// Routing is Valiant two-phase: each packet first travels to a
// uniformly random intermediate node along the topology's
// deterministic path, then on to its true destination ("select a
// random intermediate node ... send each packet from its intermediate
// node to its correct destination"). Replies retrace the recorded
// request path in reverse, and CRCW combining (Theorem 2.6) merges
// same-address requests that meet in a queue during the deterministic
// final approach.
package simnet

import (
	"fmt"
	"sort"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Topology describes a static network. Implementations must be
// stateless and cheap: NextHop is called once per packet per hop.
type Topology interface {
	// Name identifies the topology in reports.
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Degree returns the number of outgoing link slots of node.
	Degree(node int) int
	// Neighbor returns the node reached from node via link slot.
	Neighbor(node, slot int) int
	// NextHop returns the outgoing slot of the deterministic path
	// from node to dst, given that the packet has already taken
	// `taken` hops since it last chose a target; done reports that
	// the packet has arrived (slot is then ignored). For
	// distance-defined topologies (star, hypercube) `taken` is
	// ignored; the d-way shuffle uses it because its unique paths
	// have fixed length n regardless of endpoints.
	NextHop(node, dst, taken int) (slot int, done bool)
	// Diameter returns the network diameter in links.
	Diameter() int
}

// TakenSensitive is implemented by topologies whose NextHop depends
// on the hops already taken within a phase (the d-way shuffle, whose
// unique paths have fixed length n). For such topologies two packets
// may combine only at equal progress; memoryless topologies (star,
// hypercube, ring) may combine whenever node and destination match.
type TakenSensitive interface {
	// TakenSensitive reports whether NextHop depends on `taken`.
	TakenSensitive() bool
}

// Options configures a routing run.
type Options struct {
	// Seed drives the random intermediate destinations.
	Seed uint64
	// SkipPhase1 routes packets directly along deterministic paths
	// (the ablation showing why the randomizing phase matters).
	SkipPhase1 bool
	// Replies makes delivered requests retrace their paths as replies.
	Replies bool
	// Combine enables Theorem 2.6 message combining during phase 2.
	Combine bool
	// RecordPaths forces path recording even without Replies/Combine.
	RecordPaths bool
}

// Stats aggregates one routing run; the fields mirror the measures of
// §2.2.1 (routing time, queue size, delay).
type Stats struct {
	Rounds            int
	RequestRounds     int
	MaxQueue          int
	TotalDelay        int64
	MaxPacketSteps    int
	DeliveredRequests int
	DeliveredReplies  int
	Merges            int
	MaxModuleLoad     int
}

type arrival struct {
	key uint64
	p   *packet.Packet
}

type router struct {
	topo       Topology
	opts       Options
	edges      map[uint64]*queue.FIFO
	free       []*queue.FIFO
	stats      Stats
	loads      map[int]int
	record     bool
	matchTaken bool // combining requires equal per-phase progress
}

func edgeKey(from, to int) uint64 { return uint64(from)<<24 | uint64(to) }

// Route routes pkts through topo. Packets need unique IDs and
// endpoints within range. It mutates the packets and returns Stats.
func Route(topo Topology, pkts []*packet.Packet, opts Options) Stats {
	if topo.Nodes() > 1<<24 {
		panic("simnet: topology exceeds 24-bit key space")
	}
	r := &router{
		topo:   topo,
		opts:   opts,
		edges:  make(map[uint64]*queue.FIFO),
		loads:  make(map[int]int),
		record: opts.Replies || opts.Combine || opts.RecordPaths,
	}
	if ts, ok := topo.(TakenSensitive); ok {
		r.matchTaken = ts.TakenSensitive()
	}
	root := prng.New(opts.Seed)
	seen := make(map[int]bool, len(pkts))
	var injections []arrival
	for _, p := range pkts {
		if seen[p.ID] {
			panic(fmt.Sprintf("simnet: duplicate packet ID %d", p.ID))
		}
		seen[p.ID] = true
		if p.Src < 0 || p.Src >= topo.Nodes() || p.Dst < 0 || p.Dst >= topo.Nodes() {
			panic(fmt.Sprintf("simnet: packet %d endpoints out of range", p.ID))
		}
		p.Rand = root.Split(uint64(p.ID))
		p.Injected = 0
		p.Arrived = -1
		p.Phase = 1
		p.Stage = 0 // hops taken toward the current target
		if opts.SkipPhase1 {
			p.Phase = 2
			p.Inter = p.Dst
		} else {
			p.Inter = p.Rand.Intn(topo.Nodes())
		}
		if r.record {
			p.Path = append(p.Path[:0], int32(p.Src))
		}
		if a, delivered := r.advance(p, p.Src, 0); delivered {
			// src == intermediate == dst: the packet never moves.
			continue
		} else {
			injections = append(injections, a)
		}
	}
	r.pushAll(injections, 0)
	for round := 1; len(r.edges) > 0; round++ {
		popped := r.popPhase(round)
		arrivals := r.handlePhase(popped, round)
		r.pushAll(arrivals, round)
	}
	return r.stats
}

// advance decides the next queue insertion for a forward packet
// standing at node, or reports final delivery. round is the current
// simulation round (used for delivery bookkeeping).
func (r *router) advance(p *packet.Packet, node, round int) (arrival, bool) {
	for {
		target := p.Inter
		if p.Phase == 2 {
			target = p.Dst
		}
		slot, done := r.topo.NextHop(node, target, p.Stage)
		if !done {
			to := r.topo.Neighbor(node, slot)
			return arrival{edgeKey(node, to), p}, false
		}
		if p.Phase == 1 {
			p.Phase = 2
			p.Stage = 0
			continue
		}
		r.deliverForward(p, node, round)
		return arrival{}, true
	}
}

func (r *router) popPhase(round int) []arrival {
	popped := make([]arrival, 0, len(r.edges))
	for key, q := range r.edges {
		p := q.Pop()
		p.Delay += round - p.EnqueuedAt - 1
		popped = append(popped, arrival{key, p})
		if q.Len() == 0 {
			delete(r.edges, key)
			r.free = append(r.free, q)
		}
	}
	return popped
}

func (r *router) handlePhase(popped []arrival, round int) []arrival {
	arrivals := make([]arrival, 0, len(popped))
	for _, a := range popped {
		p := a.p
		p.Hops++
		to := int(a.key & 0xffffff)
		if p.Kind.IsReply() {
			arrivals = r.handleReplyArrival(arrivals, p, round)
			continue
		}
		p.Stage++
		if r.record {
			p.RecordPath(to)
		}
		if next, delivered := r.advance(p, to, round); !delivered {
			arrivals = append(arrivals, next)
		} else if p.Kind == packet.ReadReply && p.Stage > 0 {
			arrivals = append(arrivals, r.replyArrival(p))
		}
	}
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].key != arrivals[j].key {
			return arrivals[i].key < arrivals[j].key
		}
		return arrivals[i].p.ID < arrivals[j].p.ID
	})
	return arrivals
}

func (r *router) deliverForward(p *packet.Packet, node, round int) {
	if node != p.Dst {
		panic(fmt.Sprintf("simnet: packet %d delivered to %d, want %d", p.ID, node, p.Dst))
	}
	p.Arrived = round
	if round > r.stats.RequestRounds {
		r.stats.RequestRounds = round
	}
	n := p.TotalCombined()
	r.stats.DeliveredRequests += n
	r.loads[node] += n
	if r.loads[node] > r.stats.MaxModuleLoad {
		r.stats.MaxModuleLoad = r.loads[node]
	}
	if r.opts.Replies && p.Kind == packet.ReadRequest {
		r.makeReply(p)
		p.Stage = len(p.Path) - 1 // index into Path while retracing
		if p.Stage == 0 {
			// The request never left home (src == dst == intermediate);
			// its reply is immediately home too.
			r.finishReply(p, round)
		}
	} else {
		// Writes are fire-and-forget ("back in case of a read
		// instruction", §2.1).
		r.noteFinished(p)
	}
}

func (r *router) makeReply(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadRequest:
		p.Kind = packet.ReadReply
	case packet.WriteRequest:
		p.Kind = packet.WriteAck
	default:
		p.Kind = packet.ReadReply
	}
}

// replyArrival builds the queue insertion for a reply at Path index
// p.Stage about to move to index p.Stage-1.
func (r *router) replyArrival(p *packet.Packet) arrival {
	from := int(p.Path[p.Stage])
	to := int(p.Path[p.Stage-1])
	return arrival{edgeKey(from, to), p}
}

func (r *router) handleReplyArrival(arrivals []arrival, p *packet.Packet, round int) []arrival {
	p.Stage--
	idx := p.Stage
	for i, at := range p.CombinedAt {
		if at != idx {
			continue
		}
		child := p.Children[i]
		r.makeReply(child)
		if child.Kind == packet.ReadReply {
			child.Value = p.Value
		}
		child.Stage = idx
		if idx == 0 {
			r.finishReply(child, round)
		} else {
			arrivals = append(arrivals, r.replyArrival(child))
		}
	}
	if idx == 0 {
		r.finishReply(p, round)
		return arrivals
	}
	return append(arrivals, r.replyArrival(p))
}

func (r *router) finishReply(p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("simnet: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	r.stats.DeliveredReplies++
	r.noteFinished(p)
}

func (r *router) noteFinished(p *packet.Packet) {
	r.stats.TotalDelay += int64(p.Delay)
	if s := p.Steps(); s > r.stats.MaxPacketSteps {
		r.stats.MaxPacketSteps = s
	}
	if p.Arrived > r.stats.Rounds {
		r.stats.Rounds = p.Arrived
	}
}

func (r *router) pushAll(arrivals []arrival, round int) {
	for _, a := range arrivals {
		p := a.p
		if r.opts.Combine && p.Kind.IsRequest() && p.Phase == 2 {
			if r.tryCombine(a.key, p) {
				continue
			}
		}
		q := r.edges[a.key]
		if q == nil {
			if n := len(r.free); n > 0 {
				q = r.free[n-1]
				r.free = r.free[:n-1]
			} else {
				q = queue.NewFIFO(4)
			}
			r.edges[a.key] = q
		}
		p.EnqueuedAt = round
		q.Push(p)
		if q.Len() > r.stats.MaxQueue {
			r.stats.MaxQueue = q.Len()
		}
	}
}

// tryCombine merges p into a queued phase-2 request with the same
// kind, address and destination. On memoryless topologies matching
// (node, dst) guarantees the remaining deterministic paths coincide;
// on taken-sensitive topologies (shuffle) equal per-phase progress is
// additionally required.
func (r *router) tryCombine(key uint64, p *packet.Packet) bool {
	q := r.edges[key]
	if q == nil {
		return false
	}
	var host *packet.Packet
	q.Each(func(c *packet.Packet) bool {
		if c.Kind == p.Kind && c.Phase == 2 && c.Addr == p.Addr &&
			c.Dst == p.Dst && (!r.matchTaken || c.Stage == p.Stage) {
			host = c
			return false
		}
		return true
	})
	if host == nil {
		return false
	}
	host.Combine(p, len(p.Path)-1)
	r.stats.Merges++
	return true
}
