package hypercube

import (
	"fmt"

	"pramemu/internal/topology"
)

func init() {
	topology.Register(topology.Family{
		Name:    "hypercube",
		Params:  "N = dimension k in [1,31] (default 10); 2^k nodes",
		Theorem: "the logarithmic-diameter baseline of the introduction",
		Build: func(p topology.Params) (topology.Built, error) {
			k := topology.DefaultInt(p.N, 10)
			if k < 1 || k > 31 {
				return topology.Built{}, fmt.Errorf("hypercube dimension must be in [1, 31], got %d", k)
			}
			return topology.Built{Graph: New(k)}, nil
		},
	})
}
