// Package hypercube implements the binary n-cube, the logarithmic-
// diameter reference network of the paper's introduction: Ranade's
// emulation achieves O(log N) per PRAM step on it, which the star
// graph and n-way shuffle beat with their sub-logarithmic diameters.
// Deterministic paths follow e-cube (dimension-order) routing, and
// Valiant-Brebner two-phase randomized routing is obtained by running
// the shared simnet simulator over this topology.
package hypercube

import (
	"fmt"
	"math/bits"
)

// Graph is a binary hypercube of dimension k with 2^k nodes.
type Graph struct {
	k     int
	nodes int
}

// New constructs a k-dimensional hypercube. It panics unless
// 1 <= k <= 31 (2^31 is the simulator's node-id limit,
// topology.MaxNodes).
func New(k int) *Graph {
	if k < 1 || k > 31 {
		panic("hypercube: dimension must be in [1, 31]")
	}
	return &Graph{k: k, nodes: 1 << k}
}

// K returns the dimension.
func (g *Graph) K() int { return g.k }

// Name implements simnet.Topology.
func (g *Graph) Name() string { return fmt.Sprintf("hypercube(k=%d)", g.k) }

// Nodes implements simnet.Topology: 2^k.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements simnet.Topology: k links per node.
func (g *Graph) Degree(node int) int { return g.k }

// Neighbor implements simnet.Topology: flip bit `slot`.
func (g *Graph) Neighbor(node, slot int) int { return node ^ (1 << slot) }

// Diameter implements simnet.Topology: k.
func (g *Graph) Diameter() int { return g.k }

// NextHop implements simnet.Topology with e-cube routing: correct the
// lowest-order differing bit first. The path from node to dst is the
// unique dimension-ordered path of length popcount(node^dst).
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	diff := node ^ dst
	if diff == 0 {
		return 0, true
	}
	return bits.TrailingZeros(uint(diff)), false
}

// Distance returns the Hamming distance between node labels.
func (g *Graph) Distance(u, v int) int { return bits.OnesCount(uint(u ^ v)) }
