package hypercube

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
)

func TestDimensions(t *testing.T) {
	g := New(5)
	if g.Nodes() != 32 || g.Degree(0) != 5 || g.Diameter() != 5 || g.K() != 5 {
		t.Fatalf("cube(5): nodes=%d degree=%d diam=%d", g.Nodes(), g.Degree(0), g.Diameter())
	}
}

func TestNewPanics(t *testing.T) {
	for _, k := range []int{0, 32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestNeighborInvolution(t *testing.T) {
	g := New(6)
	for node := 0; node < g.Nodes(); node++ {
		for slot := 0; slot < g.k; slot++ {
			v := g.Neighbor(node, slot)
			if g.Distance(node, v) != 1 {
				t.Fatalf("neighbor at Hamming distance %d", g.Distance(node, v))
			}
			if g.Neighbor(v, slot) != node {
				t.Fatal("neighbor relation is not an involution")
			}
		}
	}
}

func TestECubePathLengthIsHamming(t *testing.T) {
	g := New(7)
	for src := 0; src < g.Nodes(); src += 5 {
		for dst := 0; dst < g.Nodes(); dst += 3 {
			node, hops := src, 0
			for {
				slot, done := g.NextHop(node, dst, hops)
				if done {
					break
				}
				node = g.Neighbor(node, slot)
				hops++
				if hops > g.k {
					t.Fatal("e-cube routing did not terminate")
				}
			}
			if node != dst || hops != g.Distance(src, dst) {
				t.Fatalf("path %d->%d: ended %d after %d hops, want dist %d",
					src, dst, node, hops, g.Distance(src, dst))
			}
		}
	}
}

func TestECubeIsDimensionOrdered(t *testing.T) {
	g := New(8)
	src, dst := 0b10110100, 0b00011001
	node, last := src, -1
	for {
		slot, done := g.NextHop(node, dst, 0)
		if done {
			break
		}
		if slot <= last {
			t.Fatalf("dimensions corrected out of order: %d after %d", slot, last)
		}
		last = slot
		node = g.Neighbor(node, slot)
	}
}

func TestValiantPermutationRouting(t *testing.T) {
	g := New(9) // 512 nodes
	perm := prng.New(12).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
	// Õ(log N): generously under 10k for k=9.
	if stats.Rounds > 10*g.k {
		t.Fatalf("rounds %d not Õ(k)", stats.Rounds)
	}
}
