// Package mathx supplies the number-theoretic and statistical
// primitives the reproduction depends on: 64-bit modular arithmetic
// (for the Karlin–Upfal polynomial hash class of §2.1), deterministic
// Miller–Rabin primality and next-prime search (the class needs a prime
// P >= M), factorials and permutation ranking (the n-star graph has n!
// nodes labelled by permutations), and summary statistics and linear
// fits used by the benchmark harness to report measured constants.
package mathx

import "math/bits"

// MulMod returns a*b mod m without overflow for any uint64 inputs,
// using the 128-bit product from math/bits.
func MulMod(a, b, m uint64) uint64 {
	if m == 0 {
		panic("mathx: MulMod modulus is zero")
	}
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// AddMod returns a+b mod m without overflow.
func AddMod(a, b, m uint64) uint64 {
	a %= m
	b %= m
	if a >= m-b && b != 0 {
		return a - (m - b)
	}
	return a + b
}

// PowMod returns base^exp mod m by binary exponentiation.
func PowMod(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod(result, base, m)
		}
		base = MulMod(base, base, m)
		exp >>= 1
	}
	return result
}
