package mathx

// IsPrime reports whether n is prime. It is a deterministic
// Miller–Rabin test: the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23,
// 29, 31, 37} is known to be correct for every n < 2^64.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	// Write n-1 = d * 2^r with d odd.
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	witnesses := [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
	for _, a := range witnesses {
		if a%n == 0 {
			continue
		}
		x := PowMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n. It panics if no prime
// >= n fits in a uint64 (n > 18446744073709551557, the largest 64-bit
// prime).
func NextPrime(n uint64) uint64 {
	const largest64BitPrime = 18446744073709551557
	if n > largest64BitPrime {
		panic("mathx: NextPrime argument exceeds the largest 64-bit prime")
	}
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}
