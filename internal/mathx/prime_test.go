package mathx

import "testing"

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		6: false, 7: true, 9: false, 11: true, 15: false, 17: true,
		25: false, 97: true, 91: false, // 91 = 7*13
		561:  false, // Carmichael number
		1729: false, // Carmichael number
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeSieveAgreement(t *testing.T) {
	const limit = 10000
	sieve := make([]bool, limit)
	for i := range sieve {
		sieve[i] = i >= 2
	}
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			for j := i * i; j < limit; j += i {
				sieve[j] = false
			}
		}
	}
	for n := 0; n < limit; n++ {
		if IsPrime(uint64(n)) != sieve[n] {
			t.Fatalf("IsPrime(%d) disagrees with sieve", n)
		}
	}
}

func TestIsPrimeLarge(t *testing.T) {
	cases := map[uint64]bool{
		1000000007:           true,
		1000000009:           true,
		1000000011:           false,
		2147483647:           true,  // 2^31 - 1, Mersenne prime
		4294967297:           false, // F5 = 641 * 6700417
		18446744073709551557: true,  // largest 64-bit prime
		18446744073709551615: false, // 2^64 - 1
		3825123056546413051:  false, // strong pseudoprime to bases 2..23
	}
	for n, want := range cases {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[uint64]uint64{
		0: 2, 1: 2, 2: 2, 3: 3, 4: 5, 8: 11, 9: 11,
		90: 97, 97: 97, 98: 101,
		1000000000: 1000000007,
	}
	for n, want := range cases {
		if got := NextPrime(n); got != want {
			t.Errorf("NextPrime(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPrimeIsPrimeAndMinimal(t *testing.T) {
	for n := uint64(0); n < 2000; n++ {
		p := NextPrime(n)
		if p < n {
			t.Fatalf("NextPrime(%d) = %d < n", n, p)
		}
		if !IsPrime(p) {
			t.Fatalf("NextPrime(%d) = %d is not prime", n, p)
		}
		for q := n; q < p; q++ {
			if IsPrime(q) {
				t.Fatalf("NextPrime(%d) = %d skipped prime %d", n, p, q)
			}
		}
	}
}

func TestNextPrimePanicsBeyondLargest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextPrime beyond the largest 64-bit prime should panic")
		}
	}()
	NextPrime(18446744073709551558)
}
