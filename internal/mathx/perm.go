package mathx

// Factorial returns n!. It panics for n > 20, the largest factorial
// representable in a uint64; star graphs of that size (2.4 * 10^18
// nodes) are far beyond what can be simulated anyway.
func Factorial(n int) uint64 {
	if n < 0 || n > 20 {
		panic("mathx: Factorial argument out of range [0, 20]")
	}
	f := uint64(1)
	for i := 2; i <= n; i++ {
		f *= uint64(i)
	}
	return f
}

// PermRank returns the lexicographic rank (0-based) of the permutation
// p of {0, ..., len(p)-1}. It is the inverse of PermUnrank and is used
// to give each n-star node a dense integer identifier.
func PermRank(p []int) uint64 {
	n := len(p)
	// Lehmer code via counting smaller elements to the right.
	// O(n^2) is fine: n <= 20 always.
	rank := uint64(0)
	for i := 0; i < n; i++ {
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank += uint64(smaller) * Factorial(n-1-i)
	}
	return rank
}

// PermUnrank writes into out the permutation of {0, ..., len(out)-1}
// with lexicographic rank r. It panics if r >= len(out)!.
func PermUnrank(r uint64, out []int) {
	n := len(out)
	if r >= Factorial(n) {
		panic("mathx: PermUnrank rank out of range")
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	for i := 0; i < n; i++ {
		f := Factorial(n - 1 - i)
		idx := int(r / f)
		r %= f
		out[i] = avail[idx]
		copy(avail[idx:], avail[idx+1:])
		avail = avail[:len(avail)-1]
	}
}

// PermInverse writes the inverse of permutation p into out.
func PermInverse(p, out []int) {
	for i, v := range p {
		out[v] = i
	}
}

// PermCompose writes a∘b (apply b first, then a) into out:
// out[i] = a[b[i]]. out must not alias a.
func PermCompose(a, b, out []int) {
	for i := range out {
		out[i] = a[b[i]]
	}
}

// IsPermutation reports whether p is a permutation of {0, ..., len(p)-1}.
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
