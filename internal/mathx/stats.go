package mathx

import (
	"math"
	"sort"
)

// Summary holds order statistics of a sample of measurements, as
// reported by the benchmark harness for each experiment.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	P50    float64
	P95    float64
	P99    float64
	P999   float64
}

// Summarize computes summary statistics of xs. It panics on an empty
// sample: every experiment must produce at least one measurement.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("mathx: Summarize of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against rounding
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		P50:    Percentile(sorted, 0.50),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
		P999:   Percentile(sorted, 0.999),
	}
}

// SummarizeInts is Summarize over integer measurements (round counts,
// queue lengths) — the tail-statistics entry point of the adversarial
// search's seed sweeps.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0 <= p <= 1) of a sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("mathx: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit fits y = a*x + b by least squares and returns the slope a,
// intercept b, and the coefficient of determination r2. The benchmark
// harness uses it to extract the constant in front of the leading term
// of each theorem's bound (e.g. "time = 2.03*n + o(n)"). It panics if
// fewer than two points are supplied or all x are identical.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) {
		panic("mathx: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("mathx: LinearFit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		panic("mathx: LinearFit with constant x")
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1 // all y identical: perfect (degenerate) fit
	}
	ssRes := 0.0
	for i := range x {
		d := y[i] - (a*x[i] + b)
		ssRes += d * d
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}

// MeanInts is a convenience wrapper converting integer measurements
// (step counts, queue lengths) to their mean.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		panic("mathx: MeanInts of empty sample")
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of a non-empty integer sample.
func MaxInts(xs []int) int {
	if len(xs) == 0 {
		panic("mathx: MaxInts of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Binomial returns "n choose k" as a float64, saturating gracefully
// for large arguments; it backs the Chernoff-bound calculators used in
// analysis-validation tests.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1.0
	for i := 0; i < k; i++ {
		result *= float64(n-i) / float64(i+1)
	}
	return result
}

// BinomialTail returns P[X >= m] for X ~ Binomial(n, p), computed by
// direct summation (suitable for the modest n used in tests).
func BinomialTail(m, n int, p float64) float64 {
	if m <= 0 {
		return 1
	}
	if m > n {
		return 0
	}
	tail := 0.0
	for k := m; k <= n; k++ {
		tail += Binomial(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// ChernoffUpper returns the multiplicative Chernoff upper-tail bound
// P[X >= (1+delta) * mu] <= exp(-mu * delta^2 / (2 + delta)) for a sum
// of independent 0/1 trials with mean mu. Fact 2.3 in the paper.
func ChernoffUpper(mu, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp(-mu * delta * delta / (2 + delta))
}
