package mathx

import (
	"math"
	"testing"

	"pramemu/internal/prng"
)

func TestPoissonTrialsTailMatchesBinomialWhenUniform(t *testing.T) {
	// With equal probabilities, Poisson trials ARE Bernoulli trials.
	ps := make([]float64, 20)
	for i := range ps {
		ps[i] = 0.3
	}
	for m := 0; m <= 21; m++ {
		exact := PoissonTrialsTail(m, ps)
		binom := BinomialTail(m, 20, 0.3)
		if math.Abs(exact-binom) > 1e-9 {
			t.Fatalf("m=%d: poisson %v vs binomial %v", m, exact, binom)
		}
	}
}

func TestPoissonTrialsTailEdges(t *testing.T) {
	ps := []float64{0.5, 0.5}
	if PoissonTrialsTail(0, ps) != 1 {
		t.Fatal("P[X >= 0] must be 1")
	}
	if PoissonTrialsTail(3, ps) != 0 {
		t.Fatal("P[X >= 3] of 2 trials must be 0")
	}
	if got := PoissonTrialsTail(2, ps); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("P[both] = %v, want 0.25", got)
	}
}

// TestFact22Hoeffding verifies Fact 2.2 numerically: the exact
// Poisson-trials tail is dominated by the Bernoulli tail at the mean
// probability, for m >= NP+1, across random probability vectors.
func TestFact22Hoeffding(t *testing.T) {
	src := prng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 5 + src.Intn(20)
		ps := make([]float64, n)
		sum := 0.0
		for i := range ps {
			ps[i] = src.Float64()
			sum += ps[i]
		}
		mStart := int(math.Ceil(sum + 1)) // Fact 2.2 requires m >= NP + 1
		for m := mStart; m <= n; m++ {
			exact := PoissonTrialsTail(m, ps)
			bound := HoeffdingBound(m, ps)
			if exact > bound+1e-9 {
				t.Fatalf("Hoeffding violated: n=%d m=%d exact=%v bound=%v ps=%v",
					n, m, exact, bound, ps)
			}
		}
	}
}

func TestGeneratingFunctionBasics(t *testing.T) {
	g := NewGeneratingFunction([]float64{0.5, 0.3, 0.2})
	if math.Abs(g.Eval(1)-1) > 1e-12 {
		t.Fatal("G(1) must be 1")
	}
	if math.Abs(g.Mean()-0.7) > 1e-12 {
		t.Fatalf("mean = %v, want 0.7", g.Mean())
	}
	if math.Abs(g.Tail(1)-0.5) > 1e-12 || g.Tail(0) != 1 || g.Tail(5) != 0 {
		t.Fatal("tail values wrong")
	}
}

func TestGeneratingFunctionPanics(t *testing.T) {
	for name, probs := range map[string][]float64{
		"negative":   {1.5, -0.5},
		"not summed": {0.5, 0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			NewGeneratingFunction(probs)
		}()
	}
}

// TestFact24ProductOfGeneratingFunctions: the generating function of a
// sum of independent variables is the product of theirs. Check by
// convolving two coins and comparing against the binomial.
func TestFact24ProductOfGeneratingFunctions(t *testing.T) {
	coin := NewGeneratingFunction([]float64{0.5, 0.5})
	sum := coin
	for i := 1; i < 6; i++ {
		sum = sum.Mul(coin)
	}
	// sum is now Binomial(6, 0.5).
	for k := 0; k <= 6; k++ {
		want := Binomial(6, k) / 64
		if math.Abs(sum[k]-want) > 1e-12 {
			t.Fatalf("coefficient %d = %v, want %v", k, sum[k], want)
		}
	}
	if math.Abs(sum.Eval(1)-1) > 1e-9 {
		t.Fatal("product G(1) drifted from 1")
	}
}

// TestTheorem24DelayBound evaluates the delay-tail expression at the
// paper's parameter point ℓ = O(d): with s = ℓ/d² constant, the
// probability that the total delay exceeds c·ℓ drops geometrically in
// c — the heart of the Õ(ℓ) routing time proof.
func TestTheorem24DelayBound(t *testing.T) {
	const levels = 10
	s := 0.5 // ℓ/d² for ℓ = 2d... conservative
	prev := 1.0
	for c := 1; c <= 4; c++ {
		tail := DelayBound(levels, s, c*levels, 40)
		if tail >= prev {
			t.Fatalf("delay tail not decreasing: c=%d tail=%v prev=%v", c, tail, prev)
		}
		prev = tail
	}
	// At c = 3 the bound must already be tiny (the "w.h.p." regime).
	if tail := DelayBound(levels, s, 3*levels, 40); tail > 1e-9 {
		t.Fatalf("delay tail at 3ℓ = %v, want < 1e-9", tail)
	}
}

// TestDelayBoundMatchesEmpirical cross-checks the analytical bound
// against simulation: observed total delays in E1-style runs must not
// exceed the 1e-6 quantile of the analytic bound.
func TestDelayBoundMatchesEmpirical(t *testing.T) {
	// This is a consistency check of the bound's shape only: mean
	// delay per level s=0.5 gives expected total 5 over 10 levels;
	// the bound at 30 is astronomically small, so any simulated delay
	// beyond 30 would indicate either a simulator or a bound bug.
	if DelayBound(10, 0.5, 30, 40) > 1e-9 {
		t.Fatal("bound unexpectedly weak")
	}
	if DelayBound(10, 0.5, 2, 40) < 0.5 {
		t.Fatal("bound unexpectedly strong near the mean")
	}
}
