package mathx

import (
	"testing"
	"testing/quick"

	"pramemu/internal/prng"
)

func TestFactorial(t *testing.T) {
	want := []uint64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if got := Factorial(20); got != 2432902008176640000 {
		t.Errorf("Factorial(20) = %d", got)
	}
}

func TestFactorialPanics(t *testing.T) {
	for _, n := range []int{-1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) should panic", n)
				}
			}()
			Factorial(n)
		}()
	}
}

func TestPermRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 7; n++ {
		total := Factorial(n)
		out := make([]int, n)
		for r := uint64(0); r < total; r++ {
			PermUnrank(r, out)
			if !IsPermutation(out) {
				t.Fatalf("PermUnrank(%d) over n=%d is not a permutation: %v", r, n, out)
			}
			if got := PermRank(out); got != r {
				t.Fatalf("rank(unrank(%d)) = %d over n=%d", r, got, n)
			}
		}
	}
}

func TestPermRankLexOrder(t *testing.T) {
	// Successive ranks must be lexicographically increasing.
	const n = 5
	prev := make([]int, n)
	cur := make([]int, n)
	PermUnrank(0, prev)
	for r := uint64(1); r < Factorial(n); r++ {
		PermUnrank(r, cur)
		less := false
		for i := range cur {
			if prev[i] != cur[i] {
				less = prev[i] < cur[i]
				break
			}
		}
		if !less {
			t.Fatalf("rank %d (%v) not lexicographically after rank %d (%v)", r, cur, r-1, prev)
		}
		copy(prev, cur)
	}
}

func TestPermIdentityRankZero(t *testing.T) {
	id := []int{0, 1, 2, 3, 4, 5}
	if got := PermRank(id); got != 0 {
		t.Errorf("rank(identity) = %d, want 0", got)
	}
	rev := []int{5, 4, 3, 2, 1, 0}
	if got := PermRank(rev); got != Factorial(6)-1 {
		t.Errorf("rank(reverse) = %d, want %d", got, Factorial(6)-1)
	}
}

func TestPermUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PermUnrank with rank >= n! should panic")
		}
	}()
	PermUnrank(6, make([]int, 3))
}

func TestPermInverse(t *testing.T) {
	check := func(seed uint64) bool {
		p := prng.New(seed).Perm(9)
		inv := make([]int, 9)
		comp := make([]int, 9)
		PermInverse(p, inv)
		PermCompose(p, inv, comp)
		for i, v := range comp {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermCompose(t *testing.T) {
	a := []int{2, 0, 1}
	b := []int{1, 2, 0}
	out := make([]int, 3)
	PermCompose(a, b, out)
	want := []int{0, 1, 2} // a[b[i]]: a[1]=0, a[2]=1, a[0]=2
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("PermCompose = %v, want %v", out, want)
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int{0}) || !IsPermutation([]int{1, 0, 2}) {
		t.Error("valid permutations rejected")
	}
	for _, bad := range [][]int{{1}, {0, 0}, {0, 2}, {-1, 0}} {
		if IsPermutation(bad) {
			t.Errorf("IsPermutation(%v) = true", bad)
		}
	}
	if !IsPermutation(nil) {
		t.Error("empty slice is vacuously a permutation")
	}
}
