package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.StdDev != 0 || s.P99 != 7 {
		t.Fatalf("unexpected summary of singleton: %+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) should panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestPercentileBounds(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("percentile endpoints wrong")
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Fatalf("P50 of 10..40 = %v, want 25", got)
	}
	if Percentile(sorted, -0.5) != 10 || Percentile(sorted, 1.5) != 40 {
		t.Fatal("out-of-range p must clamp")
	}
}

// TestQuantileHandComputedTable pins the interpolated quantile math —
// the numbers the sweep distribution rows report — against values
// worked out by hand. For a sorted sample of n points the p-quantile
// sits at position p*(n-1): on 1..100, P99 is position 98.01, i.e.
// 99 + 0.01*(100-99) = 99.01, and P999 is position 98.901 = 99.901.
func TestQuantileHandComputedTable(t *testing.T) {
	hundred := make([]int, 100)
	for i := range hundred {
		hundred[i] = i + 1
	}
	cases := []struct {
		name                 string
		xs                   []int
		max                  int
		mean, std, p99, p999 float64
	}{
		// 1..100: mean 50.5, population variance (n^2-1)/12 = 833.25.
		{"1..100", hundred, 100, 50.5, math.Sqrt(833.25), 99.01, 99.901},
		// 10,20,..,50: positions 3.96 and 3.996 between 40 and 50.
		{"tens", []int{10, 20, 30, 40, 50}, 50, 30, math.Sqrt(200), 49.6, 49.96},
		// A constant sample has zero spread at every quantile.
		{"constant", []int{7, 7, 7, 7}, 7, 7, 0, 7, 7},
		// A singleton is its own every-quantile.
		{"single", []int{42}, 42, 42, 0, 42, 42},
	}
	for _, c := range cases {
		s := SummarizeInts(c.xs)
		if s.N != len(c.xs) || s.Max != float64(c.max) {
			t.Errorf("%s: N=%d Max=%v, want N=%d Max=%d", c.name, s.N, s.Max, len(c.xs), c.max)
		}
		for _, q := range []struct {
			label     string
			got, want float64
		}{
			{"mean", s.Mean, c.mean},
			{"stddev", s.StdDev, c.std},
			{"p99", s.P99, c.p99},
			{"p999", s.P999, c.p999},
		} {
			if math.Abs(q.got-q.want) > 1e-9 {
				t.Errorf("%s: %s = %v, want %v", c.name, q.label, q.got, q.want)
			}
		}
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-2) > 1e-12 || math.Abs(b-3) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("LinearFit = (%v, %v, %v), want (2, 3, 1)", a, b, r2)
	}
}

func TestLinearFitRecoversSlope(t *testing.T) {
	check := func(slopeRaw, interceptRaw int8) bool {
		slope := float64(slopeRaw)
		intercept := float64(interceptRaw)
		var x, y []float64
		for i := 1; i <= 10; i++ {
			x = append(x, float64(i))
			y = append(y, slope*float64(i)+intercept)
		}
		a, b, _ := LinearFit(x, y)
		return math.Abs(a-slope) < 1e-9 && math.Abs(b-intercept) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if a != 0 || b != 4 || r2 != 1 {
		t.Fatalf("constant-y fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch":   func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"too short":  func() { LinearFit([]float64{1}, []float64{1}) },
		"constant x": func() { LinearFit([]float64{2, 2}, []float64{1, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LinearFit %s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMeanMaxInts(t *testing.T) {
	if got := MeanInts([]int{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("MeanInts = %v", got)
	}
	if got := MaxInts([]int{3, 9, 2}); got != 9 {
		t.Fatalf("MaxInts = %v", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Binomial(%d, %d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialTail(t *testing.T) {
	// For fair-coin n=4: P[X >= 2] = 11/16.
	if got := BinomialTail(2, 4, 0.5); math.Abs(got-11.0/16) > 1e-12 {
		t.Fatalf("BinomialTail(2,4,0.5) = %v, want 11/16", got)
	}
	if BinomialTail(0, 10, 0.3) != 1 {
		t.Fatal("P[X >= 0] must be 1")
	}
	if BinomialTail(11, 10, 0.3) != 0 {
		t.Fatal("P[X >= n+1] must be 0")
	}
}

func TestChernoffUpperDominatesExactTail(t *testing.T) {
	// The Chernoff bound must upper-bound the exact binomial tail.
	n, p := 100, 0.1
	mu := float64(n) * p
	for _, delta := range []float64{0.5, 1, 2, 3} {
		m := int(math.Ceil((1 + delta) * mu))
		exact := BinomialTail(m, n, p)
		bound := ChernoffUpper(mu, delta)
		if exact > bound+1e-12 {
			t.Fatalf("Chernoff bound %v below exact tail %v at delta=%v", bound, exact, delta)
		}
	}
	if ChernoffUpper(10, 0) != 1 || ChernoffUpper(10, -1) != 1 {
		t.Fatal("non-positive delta must give the trivial bound 1")
	}
}
