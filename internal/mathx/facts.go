package mathx

import "math"

// This file implements the probability toolkit of §2.2.2 of the paper
// (Facts 2.2-2.4), used by the analysis-validation tests to check the
// machinery behind the Õ(ℓ) routing proofs numerically.

// PoissonTrialsTail returns P[X >= m] where X is the sum of
// independent 0/1 trials with success probabilities ps (Poisson
// trials in the paper's terminology), computed exactly by dynamic
// programming over the distribution of X.
func PoissonTrialsTail(m int, ps []float64) float64 {
	if m <= 0 {
		return 1
	}
	if m > len(ps) {
		return 0
	}
	// dist[k] = P[X = k] over the trials processed so far.
	dist := make([]float64, len(ps)+1)
	dist[0] = 1
	for i, p := range ps {
		for k := i + 1; k >= 1; k-- {
			dist[k] = dist[k]*(1-p) + dist[k-1]*p
		}
		dist[0] *= 1 - p
	}
	tail := 0.0
	for k := m; k <= len(ps); k++ {
		tail += dist[k]
	}
	if tail > 1 {
		tail = 1
	}
	return tail
}

// HoeffdingBound is Fact 2.2: for independent Poisson trials with
// mean probability P = (Σ ps)/N and any integer m >= NP+1, the tail
// P[X >= m] is at most the corresponding Bernoulli tail B(m, N, P).
// It returns that dominating Bernoulli tail.
func HoeffdingBound(m int, ps []float64) float64 {
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	pBar := sum / float64(len(ps))
	return BinomialTail(m, len(ps), pBar)
}

// GeneratingFunction is the probability generating function of a
// nonnegative integer random variable: G(z) = Σ p_k z^k (Definition
// 2.3). Coefficients beyond the slice are zero.
type GeneratingFunction []float64

// NewGeneratingFunction validates and wraps a distribution.
func NewGeneratingFunction(probs []float64) GeneratingFunction {
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			panic("mathx: negative probability")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic("mathx: probabilities must sum to 1")
	}
	return GeneratingFunction(append([]float64(nil), probs...))
}

// Eval computes G(z).
func (g GeneratingFunction) Eval(z float64) float64 {
	v, zp := 0.0, 1.0
	for _, p := range g {
		v += p * zp
		zp *= z
	}
	return v
}

// Mul returns the generating function of the sum of two independent
// variables — Fact 2.4: the generating function of ΣX_i is the
// product ΠG_i. Implemented as coefficient convolution.
func (g GeneratingFunction) Mul(h GeneratingFunction) GeneratingFunction {
	out := make(GeneratingFunction, len(g)+len(h)-1)
	for i, a := range g {
		if a == 0 {
			continue
		}
		for j, b := range h {
			out[i+j] += a * b
		}
	}
	return out
}

// Tail returns P[X >= m] for the variable described by g.
func (g GeneratingFunction) Tail(m int) float64 {
	if m <= 0 {
		return 1
	}
	tail := 0.0
	for k := m; k < len(g); k++ {
		tail += g[k]
	}
	return tail
}

// Mean returns E[X] = G'(1).
func (g GeneratingFunction) Mean() float64 {
	mean := 0.0
	for k, p := range g {
		mean += float64(k) * p
	}
	return mean
}

// DelayBound evaluates the paper's Theorem 2.4 delay-tail expression:
// the probability that a packet's total queueing delay across ℓ
// levels exceeds delta, where the per-level first-meeting counts are
// Poisson-dominated with generating function bound G_i(z) = e^{s(z-1)}
// truncated at maxK terms. s is the per-level expected overlap
// (ℓ d^{i-1} / d^{i+1} = ℓ/d², constant when ℓ = O(d)). It returns
// P[Σ delays >= delta] under the product bound of Fact 2.4.
func DelayBound(levels int, s float64, delta, maxK int) float64 {
	// Poisson(s) truncated to maxK, renormalized upward (the tail mass
	// is folded into the last bucket to keep the bound conservative).
	probs := make([]float64, maxK+1)
	p := math.Exp(-s)
	total := 0.0
	for k := 0; k <= maxK; k++ {
		probs[k] = p
		total += p
		p *= s / float64(k+1)
	}
	probs[maxK] += 1 - total
	g := NewGeneratingFunction(probs)
	acc := g
	for i := 1; i < levels; i++ {
		acc = acc.Mul(g)
	}
	return acc.Tail(delta)
}
