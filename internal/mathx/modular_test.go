package mathx

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMulModSmall(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{0, 0, 1, 0},
		{7, 8, 5, 1},
		{123456789, 987654321, 1000000007, 259106859},
		{1 << 63, 2, 3, (1 << 63 % 3) * 2 % 3},
	}
	for _, c := range cases {
		if got := MulMod(c.a, c.b, c.m); got != c.want {
			t.Errorf("MulMod(%d, %d, %d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}

func TestMulModMatchesWideProduct(t *testing.T) {
	check := func(a, b, m uint64) bool {
		if m == 0 {
			m = 1
		}
		hi, lo := bits.Mul64(a, b)
		_, want := bits.Div64(hi%m, lo, m)
		return MulMod(a, b, m) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulModPanicsOnZeroModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulMod with m=0 should panic")
		}
	}()
	MulMod(1, 1, 0)
}

func TestAddMod(t *testing.T) {
	check := func(a, b uint64, mRaw uint64) bool {
		m := mRaw%1000003 + 1
		want := (a%m + b%m) % m
		return AddMod(a, b, m) == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	// Overflow-prone case: a, b near 2^64.
	const big = ^uint64(0) - 1
	if got := AddMod(big, big, ^uint64(0)); got != big-1 {
		t.Fatalf("AddMod near overflow = %d", got)
	}
}

func TestPowMod(t *testing.T) {
	cases := []struct{ b, e, m, want uint64 }{
		{2, 10, 1000, 24},
		{3, 0, 7, 1},
		{5, 3, 13, 8},
		{10, 18, 1000000007, PowMod(10, 18, 1000000007)},
		{2, 64, 97, 61}, // 2^64 mod 97
	}
	for _, c := range cases {
		if got := PowMod(c.b, c.e, c.m); got != c.want {
			t.Errorf("PowMod(%d, %d, %d) = %d, want %d", c.b, c.e, c.m, got, c.want)
		}
	}
	if got := PowMod(12345, 67890, 1); got != 0 {
		t.Errorf("PowMod mod 1 = %d, want 0", got)
	}
}

func TestPowModFermat(t *testing.T) {
	// Fermat's little theorem: a^(p-1) = 1 mod p for prime p, a not
	// divisible by p.
	const p = 1000000007
	for a := uint64(2); a < 50; a++ {
		if got := PowMod(a, p-1, p); got != 1 {
			t.Fatalf("a^(p-1) mod p = %d for a=%d, want 1", got, a)
		}
	}
}
