package torus

import (
	"testing"

	"pramemu/internal/hypercube"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
)

func TestBasicShape(t *testing.T) {
	g := New(8, 2)
	if g.Nodes() != 64 {
		t.Fatalf("nodes %d, want 64", g.Nodes())
	}
	if g.Degree(0) != 4 {
		t.Fatalf("degree %d, want 4", g.Degree(0))
	}
	if g.Diameter() != 8 {
		t.Fatalf("diameter %d, want 8", g.Diameter())
	}
}

func TestRadixTwoIsHypercube(t *testing.T) {
	// The 2-ary n-cube is the binary hypercube: same shape, same
	// distances.
	g := New(2, 6)
	h := hypercube.New(6)
	if g.Nodes() != h.Nodes() || g.Degree(0) != h.Degree(0) || g.Diameter() != h.Diameter() {
		t.Fatalf("2-ary 6-cube shape (%d, %d, %d) != hypercube (%d, %d, %d)",
			g.Nodes(), g.Degree(0), g.Diameter(), h.Nodes(), h.Degree(0), h.Diameter())
	}
	for u := 0; u < g.Nodes(); u += 7 {
		for v := 0; v < g.Nodes(); v += 5 {
			if g.Distance(u, v) != h.Distance(u, v) {
				t.Fatalf("distance(%d, %d): torus %d != hamming %d",
					u, v, g.Distance(u, v), h.Distance(u, v))
			}
		}
	}
}

func TestNeighborsAreMutual(t *testing.T) {
	g := New(5, 3)
	for u := 0; u < g.Nodes(); u++ {
		for s := 0; s < g.Degree(u); s++ {
			v := g.Neighbor(u, s)
			if g.Distance(u, v) != 1 {
				t.Fatalf("neighbor %d of %d at distance %d", v, u, g.Distance(u, v))
			}
			// Some slot of v must lead back to u.
			back := false
			for s2 := 0; s2 < g.Degree(v); s2++ {
				if g.Neighbor(v, s2) == u {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("link %d->%d has no reverse", u, v)
			}
		}
	}
}

func TestNextHopIsShortestExhaustive(t *testing.T) {
	// Dimension-ordered shorter-arc routing realizes the wraparound
	// L1 distance exactly, for every pair (odd and even radix).
	for _, g := range []*Graph{New(5, 2), New(6, 2), New(4, 3)} {
		for u := 0; u < g.Nodes(); u++ {
			for v := 0; v < g.Nodes(); v++ {
				at, hops := u, 0
				for {
					slot, done := g.NextHop(at, v, hops)
					if done {
						break
					}
					at = g.Neighbor(at, slot)
					hops++
					if hops > g.Diameter() {
						t.Fatalf("%s: path %d->%d exceeded the diameter", g.Name(), u, v)
					}
				}
				if at != v {
					t.Fatalf("%s: path %d->%d ended at %d", g.Name(), u, v, at)
				}
				if hops != g.Distance(u, v) {
					t.Fatalf("%s: path %d->%d took %d hops, distance %d",
						g.Name(), u, v, hops, g.Distance(u, v))
				}
			}
		}
	}
}

func TestValiantPermutationRouting(t *testing.T) {
	g := New(8, 3) // 512 nodes
	perm := prng.New(2).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
	if stats.Rounds > 12*g.Diameter() {
		t.Fatalf("rounds %d not Õ(diameter %d)", stats.Rounds, g.Diameter())
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for name, build := range map[string]func(){
		"radix 1":   func() { New(1, 2) },
		"zero dims": func() { New(4, 0) },
		"too big":   func() { New(2, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			build()
		}()
	}
}
