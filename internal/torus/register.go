package torus

import "pramemu/internal/topology"

func init() {
	topology.Register(topology.Family{
		Name:    "torus",
		Params:  "N = radix k >= 2 (default 8); K = dimensions >= 1 (default 2); k^dims nodes",
		Theorem: "§3 generalized: wraparound mesh, hypercube at k = 2",
		Build: func(p topology.Params) (topology.Built, error) {
			k := topology.DefaultInt(p.N, 8)
			dims := topology.DefaultInt(p.K, 2)
			if err := topology.CheckPow("torus", k, dims, topology.MaxNodes); err != nil {
				return topology.Built{}, err
			}
			return topology.Built{Graph: New(k, dims)}, nil
		},
	})
}
