// Package torus implements the k-ary n-cube: k^n nodes labelled by
// n-digit base-k strings, each node linked to its ±1 neighbors (mod
// k) in every dimension. The family generalizes both reference
// networks of the paper at once — the binary hypercube is the 2-ary
// n-cube and the mesh of §3 is the 2-dimensional k-ary cube with
// wraparound — so Valiant two-phase routing and the PRAM emulation
// recipe apply to it with the same Õ(diameter) pricing.
//
// Deterministic paths are dimension-ordered: correct the lowest
// differing dimension first, travelling around the shorter arc (ties
// break toward +1), the torus analogue of e-cube routing.
package torus

import (
	"fmt"

	"pramemu/internal/topology"
)

// Graph is a k-ary n-cube on k^n nodes.
type Graph struct {
	k, dims int
	nodes   int
	pow     []int // pow[d] = k^d
}

// New constructs the k-ary n-cube with the given radix and dimension
// count. It panics if k < 2, dims < 1, or k^dims exceeds the
// simulator's node-id limit (topology.MaxNodes, 2^31).
func New(k, dims int) *Graph {
	if k < 2 {
		panic("torus: radix must be >= 2")
	}
	if dims < 1 {
		panic("torus: need at least one dimension")
	}
	nodes := 1
	pow := make([]int, dims)
	for d := 0; d < dims; d++ {
		pow[d] = nodes
		if nodes > topology.MaxNodes/k {
			panic("torus: k^n exceeds the simulator's node-id limit")
		}
		nodes *= k
	}
	return &Graph{k: k, dims: dims, nodes: nodes, pow: pow}
}

// K returns the radix k.
func (g *Graph) K() int { return g.k }

// Dims returns the dimension count n.
func (g *Graph) Dims() int { return g.dims }

// Name implements topology.Graph.
func (g *Graph) Name() string { return fmt.Sprintf("torus(k=%d,n=%d)", g.k, g.dims) }

// Nodes implements topology.Graph: k^n.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements topology.Graph: two links per dimension, except
// that a radix-2 torus has a single neighbor per dimension (+1 and -1
// coincide), making it exactly the binary hypercube.
func (g *Graph) Degree(node int) int {
	if g.k == 2 {
		return g.dims
	}
	return 2 * g.dims
}

// digit returns base-k digit d of node.
func (g *Graph) digit(node, d int) int { return node / g.pow[d] % g.k }

// withDigit returns node with digit d replaced by v.
func (g *Graph) withDigit(node, d, v int) int {
	return node + (v-g.digit(node, d))*g.pow[d]
}

// Neighbor implements topology.Graph: for k > 2, slot 2d moves +1 and
// slot 2d+1 moves -1 (mod k) in dimension d; for k = 2, slot d flips
// dimension d.
func (g *Graph) Neighbor(node, slot int) int {
	if g.k == 2 {
		return g.withDigit(node, slot, 1-g.digit(node, slot))
	}
	d := slot / 2
	v := g.digit(node, d)
	if slot%2 == 0 {
		v = (v + 1) % g.k
	} else {
		v = (v - 1 + g.k) % g.k
	}
	return g.withDigit(node, d, v)
}

// Diameter implements topology.Graph: ⌊k/2⌋ per dimension.
func (g *Graph) Diameter() int { return g.dims * (g.k / 2) }

// NextHop implements topology.Graph with dimension-ordered
// shorter-arc routing; `taken` is ignored (paths are memoryless).
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	for d := 0; d < g.dims; d++ {
		have, want := g.digit(node, d), g.digit(dst, d)
		if have == want {
			continue
		}
		if g.k == 2 {
			return d, false
		}
		up := (want - have + g.k) % g.k // +1 steps needed
		if up <= g.k-up {
			return 2 * d, false
		}
		return 2*d + 1, false
	}
	return 0, true
}

// Extent implements topology.Coordinated: every axis has extent k.
func (g *Graph) Extent(dim int) int { return g.k }

// Coord implements topology.Coordinated: base-k digit dim of node.
func (g *Graph) Coord(node, dim int) int { return g.digit(node, dim) }

// NodeAt implements topology.Coordinated.
func (g *Graph) NodeAt(coords []int) int {
	node := 0
	for d, v := range coords {
		node += v * g.pow[d]
	}
	return node
}

// Distance returns the torus (wraparound L1) distance between nodes.
func (g *Graph) Distance(u, v int) int {
	total := 0
	for d := 0; d < g.dims; d++ {
		diff := (g.digit(u, d) - g.digit(v, d) + g.k) % g.k
		if diff > g.k-diff {
			diff = g.k - diff
		}
		total += diff
	}
	return total
}
