// The fault-tolerance contract of the sweep pipeline: a poisoned cell
// costs one structured error line (never the sweep), FailFast turns
// the first failure into a grid-wide cancel, malformed specs fail
// naming the offending field, per-cell timeouts classify as transient,
// and the journaled runner resumes an interrupted sweep to a
// byte-identical artifact. TestSweep* names keep these under the race
// detector in CI.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pramemu/internal/packet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// The test-only generators: boom panics inside the cell (a
// planted routing bug), test-sleepy stalls long enough for any
// millisecond-scale deadline to expire before handing over a real
// permutation, so timeout cells are deterministic, not racy.
func init() {
	perm, ok := workload.Lookup("perm")
	if !ok {
		panic("robust_test: perm workload missing")
	}
	workload.Register(workload.Generator{
		Name:  "boom",
		Class: workload.ClassPermutation,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			panic("poisoned cell")
		},
	})
	workload.Register(workload.Generator{
		Name:  "test-sleepy",
		Class: workload.ClassPermutation,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			time.Sleep(100 * time.Millisecond)
			return perm.Generate(b, p, a, seed)
		},
	})
}

// TestSweepPanicIsolation is the poisoned-cell regression: with
// FailFast off (the default), a cell that panics yields one error
// line with the panic kind and message, and every other cell's line
// still lands — the sweep completes with an AggregateError, not a
// crash.
func TestSweepPanicIsolation(t *testing.T) {
	spec := Spec{
		Name: "poisoned",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "mesh", N: 4},
		},
		Workloads: []WorkRef{{Name: "boom"}, {Name: "perm"}},
		Trials:    1,
		Seed:      7,
		Pool:      2,
	}
	results, err := Run(spec)
	var agg *AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("want *AggregateError, got %v", err)
	}
	if agg.Failed != 2 || agg.Total != 4 {
		t.Fatalf("want 2 of 4 cells failed, got %d of %d", agg.Failed, agg.Total)
	}
	if len(results) != 4 {
		t.Fatalf("want all 4 lines (2 errors + 2 results), got %d", len(results))
	}
	healthy, failed := 0, 0
	for _, r := range results {
		if r.Failed() {
			failed++
			if r.ErrorKind != ErrKindPanic {
				t.Errorf("%s: want error_kind %q, got %q", r.Scenario, ErrKindPanic, r.ErrorKind)
			}
			if !strings.Contains(r.Error, "poisoned cell") {
				t.Errorf("%s: error %q lost the panic message", r.Scenario, r.Error)
			}
			if r.Workload != "boom" || r.Family == "" {
				t.Errorf("error line lost its identifying axes: %+v", r)
			}
		} else {
			healthy++
			if r.RoundsMean <= 0 {
				t.Errorf("%s: healthy cell has no metrics: %+v", r.Scenario, r)
			}
		}
	}
	if healthy != 2 || failed != 2 {
		t.Fatalf("want 2 healthy + 2 failed lines, got %d + %d", healthy, failed)
	}
}

// TestSweepFailFast pins the FailFast contract: the first failure
// cancels the rest of the grid, so the artifact holds the error line
// and only the cells that finished before the cancel — while the
// default keeps going (TestSweepPanicIsolation).
func TestSweepFailFast(t *testing.T) {
	spec := Spec{
		Name:       "failfast",
		Topologies: []TopoRef{{Family: "star", N: 4}},
		// Expansion order puts the poison cell first; Pool 1 makes the
		// cancellation deterministic: the perm cell never starts.
		Workloads: []WorkRef{{Name: "boom"}, {Name: "perm"}},
		Trials:    1,
		Seed:      7,
		Pool:      1,
		FailFast:  true,
	}
	results, err := Run(spec)
	var agg *AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("want *AggregateError, got %v", err)
	}
	if len(results) != 1 || results[0].ErrorKind != ErrKindPanic {
		t.Fatalf("want exactly the poison error line, got %d lines: %+v", len(results), results)
	}
}

// TestSweepSpecValidation is the malformed-spec property: every bad
// axis value comes back as a *SpecError naming the offending spec
// field — never a panic, never a bare error the caller cannot route.
func TestSweepSpecValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			Topologies: []TopoRef{{Family: "star", N: 4}},
			Workloads:  []WorkRef{{Name: "perm"}},
			Trials:     1,
		}
	}
	cases := map[string]struct {
		mutate func(*Spec)
		field  string
	}{
		"no topologies":     {func(s *Spec) { s.Topologies = nil }, "topologies"},
		"unknown family":    {func(s *Spec) { s.Topologies = []TopoRef{{Family: "klein", N: 4}} }, "topologies"},
		"no workloads":      {func(s *Spec) { s.Workloads = nil }, "workloads"},
		"unknown workload":  {func(s *Spec) { s.Workloads = []WorkRef{{Name: "nope"}} }, "workloads"},
		"bad fraction":      {func(s *Spec) { s.Workloads = []WorkRef{{Name: "khot", Fraction: 2}} }, "workloads"},
		"negative trials":   {func(s *Spec) { s.Trials = -1 }, "trials"},
		"negative timeout":  {func(s *Spec) { s.TimeoutMS = -5 }, "timeout_ms"},
		"hashed and paged":  {func(s *Spec) { s.Hashed = []bool{true}; s.Paged = []bool{true} }, "paged"},
		"unknown algorithm": {func(s *Spec) { s.Algorithm = "quantum" }, "algorithm"},
		"unknown disc":      {func(s *Spec) { s.Disciplines = []string{"lifo"} }, "disciplines"},
		"unknown mode":      {func(s *Spec) { s.Modes = []string{"qrqw"} }, "modes"},
		"unknown engine":    {func(s *Spec) { s.Engines = []string{"quantum"} }, "engines"},
		"bad latency":       {func(s *Spec) { s.Latency = &LatencySpec{Model: "warp"} }, "latency"},
		"bad fault knob":    {func(s *Spec) { s.Faults = []FaultSpec{{Drop: 2}} }, "faults"},
		"duplicate faults":  {func(s *Spec) { s.Faults = []FaultSpec{{}, {}} }, "faults"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			_, err := Run(spec)
			var serr *SpecError
			if !errors.As(err, &serr) {
				t.Fatalf("want *SpecError, got %v", err)
			}
			if serr.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, serr.Field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("message %q does not name field %q", err.Error(), tc.field)
			}
		})
	}
}

// TestSweepCellTimeout pins the per-cell deadline: a stalling cell is
// cut off with the transient timeout kind (so journals re-run it),
// and a pre-canceled context classifies as canceled, not timeout.
func TestSweepCellTimeout(t *testing.T) {
	cell := Cell{
		Topo:    TopoRef{Family: "star", N: 4},
		Work:    WorkRef{Name: "test-sleepy"},
		Trials:  1,
		Seed:    7,
		Timeout: 5 * time.Millisecond,
	}
	r := RunCellSafe(context.Background(), cell)
	if r.ErrorKind != ErrKindTimeout {
		t.Fatalf("want error_kind %q, got %q (%q)", ErrKindTimeout, r.ErrorKind, r.Error)
	}
	if !transientKind(r.ErrorKind) {
		t.Fatal("timeout must be transient: journals re-run those cells")
	}
	if r.Scenario == "" {
		t.Fatal("timeout line lost its scenario key")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cell.Timeout = 0
	r = RunCellSafe(ctx, Cell{Topo: cell.Topo, Work: WorkRef{Name: "perm"}, Trials: 1, Seed: 7})
	if r.ErrorKind != ErrKindCanceled {
		t.Fatalf("want error_kind %q, got %q (%q)", ErrKindCanceled, r.ErrorKind, r.Error)
	}
}

// journalSpec is the grid of the resume tests: two routers, one
// workload, deterministic seeds.
func journalSpec() Spec {
	return Spec{
		Name: "journal-test",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "mesh", N: 4},
		},
		Workloads: []WorkRef{{Name: "perm"}},
		Trials:    2,
		Seed:      7,
		Pool:      1,
	}
}

// TestSweepJournalResume is the crash-recovery acceptance property: a
// sweep resumed from a journal holding some completed cells produces
// an artifact byte-identical to the uninterrupted run, the journal is
// removed on finalize, and the resumed run actually skips the
// journaled cells instead of re-pricing them.
func TestSweepJournalResume(t *testing.T) {
	dir := t.TempDir()
	spec := journalSpec()
	hash, err := SpecHash(spec)
	if err != nil {
		t.Fatal(err)
	}

	full := filepath.Join(dir, "full.jsonl")
	if _, err := RunJournaled(context.Background(), spec, full, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyTrailer(bytes.NewReader(want)); err != nil {
		t.Fatalf("uninterrupted artifact fails its own trailer check: %v", err)
	}
	if _, err := os.Stat(full + ".journal"); !os.IsNotExist(err) {
		t.Fatal("journal survived finalize")
	}
	lines := strings.Split(strings.TrimSpace(string(want)), "\n")
	firstLine := lines[0]

	// Simulate the crash: a journal holding the header and the first
	// completed cell. The resumed artifact must be byte-identical.
	resumed := filepath.Join(dir, "resumed.jsonl")
	writeJournal(t, resumed+".journal", hash, firstLine)
	if _, err := RunJournaled(context.Background(), spec, resumed, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact drifted from the uninterrupted run:\n--- want\n%s--- got\n%s", want, got)
	}

	// Prove the skip: plant a sentinel metric in the journaled line —
	// if the cell re-ran, routing would overwrite it.
	var sentinel Result
	if err := json.Unmarshal([]byte(firstLine), &sentinel); err != nil {
		t.Fatal(err)
	}
	sentinel.RoundsMean = 999999
	sb, err := json.Marshal(sentinel)
	if err != nil {
		t.Fatal(err)
	}
	marked := filepath.Join(dir, "marked.jsonl")
	writeJournal(t, marked+".journal", hash, string(sb))
	if _, err := RunJournaled(context.Background(), spec, marked, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(marked)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "999999") {
		t.Fatal("journaled cell was re-run: sentinel metric overwritten")
	}

	// A journal from a different spec hash is stale: the resume starts
	// over and still converges on the same bytes.
	stale := filepath.Join(dir, "stale.jsonl")
	writeJournal(t, stale+".journal", "feedfacefeedfacefeedfacefeedface", firstLine)
	if _, err := RunJournaled(context.Background(), spec, stale, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	gb, err := os.ReadFile(stale)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, want) {
		t.Fatal("stale-journal run drifted from the uninterrupted artifact")
	}
}

// writeJournal fabricates an interrupted run's sidecar: the header
// line for the given spec hash plus the provided completed-cell lines.
func writeJournal(t *testing.T, path, hash string, lines ...string) {
	t.Helper()
	var b bytes.Buffer
	if err := json.NewEncoder(&b).Encode(journalHeader{Report: journalReport, SpecHash: hash}); err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSweepJournalCancelKeepsCheckpoint pins the shutdown contract: a
// canceled journaled run publishes no artifact and leaves the journal
// on disk — the checkpoint the next run resumes from.
func TestSweepJournalCancelKeepsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunJournaled(ctx, journalSpec(), out, JournalOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("canceled run published an artifact")
	}
	if _, err := os.Stat(out + ".journal"); err != nil {
		t.Fatalf("canceled run lost its checkpoint journal: %v", err)
	}
	// The next run over the same path resumes and finalizes.
	if _, err := RunJournaled(context.Background(), journalSpec(), out, JournalOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("resumed run published no artifact: %v", err)
	}
}

// TestSweepJournalRetriesTransient pins the retry loop: timed-out
// cells re-run with exponential backoff, and when every retry pass
// still times out the artifact finalizes with the timeout error line
// on record.
func TestSweepJournalRetriesTransient(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.jsonl")
	spec := Spec{
		Name:       "retry-test",
		Topologies: []TopoRef{{Family: "star", N: 4}},
		Workloads:  []WorkRef{{Name: "test-sleepy"}},
		Trials:     1,
		Seed:       7,
		Pool:       1,
		TimeoutMS:  5,
	}
	var slept []time.Duration
	results, err := RunJournaled(context.Background(), spec, out, JournalOptions{
		Retries: 2,
		Backoff: time.Millisecond,
		Sleep:   func(d time.Duration) { slept = append(slept, d) },
	})
	var agg *AggregateError
	if !errors.As(err, &agg) {
		t.Fatalf("want *AggregateError after exhausted retries, got %v", err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("want backoff [1ms 2ms], got %v", slept)
	}
	if len(results) != 1 || results[0].ErrorKind != ErrKindTimeout {
		t.Fatalf("want one timeout line, got %+v", results)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := VerifyTrailer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cells != 1 || tr.Errors != 1 {
		t.Fatalf("want trailer cells=1 errors=1, got %+v", tr)
	}
}

// FuzzReadResults hardens the artifact reader against truncated and
// garbage JSONL: whatever the bytes, ReadResults and VerifyTrailer
// return values or errors — they never panic.
func FuzzReadResults(f *testing.F) {
	f.Add([]byte(`{"scenario":"a","rounds_mean":1}` + "\n"))
	f.Add([]byte(`{"report":"trailer","cells":1}` + "\n"))
	f.Add([]byte(`{"report":"rows","scenario":"a"}` + "\n"))
	f.Add([]byte(`{"scenario":"a","rounds_me`))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(""))
	f.Add([]byte(`{"scenario":"a"}` + "\n" + `{"report":"trailer","cells":1}` + "\n" + `{"scenario":"late"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		results, err := ReadResults(bytes.NewReader(data))
		if err == nil {
			for _, r := range results {
				_ = r.Failed()
			}
		}
		_, _ = VerifyTrailer(bytes.NewReader(data))
	})
}
