// The sweep runner's contract: pool-width independence (a parallel
// sweep's JSONL is line-for-line identical to a sequential one),
// engine-worker equivalence along the workers axis, capability gating
// with errors that name the missing capability, and spec parsing.
// TestSweep* runs under the race detector in CI, so the runner's pool
// is race-checked over every axis it exercises.
package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	_ "pramemu/internal/topology/families"
)

// testSpec is a small grid crossing the mesh router, the generic
// direct router, the leveled view and a many-one combining workload.
func testSpec() Spec {
	return Spec{
		Name: "test",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "torus", N: 4, K: 2},
			{Family: "mesh", N: 4},
			{Family: "butterfly", N: 3},
		},
		Workloads: []WorkRef{
			{Name: "perm"},
			{Name: "khot", Hot: 2},
		},
		Disciplines: []string{"furthest", "fifo"},
		Workers:     []int{1, 4},
		Trials:      2,
		Seed:        7,
		Pool:        1,
	}
}

// emulSpec crosses the emulation-mode axis (route, erew, crcw) with
// both ablation axes over the three router kinds (generic direct,
// specialized mesh, leveled-only), so the pool-width property covers
// every dispatch path the mode axis can take.
func emulSpec() Spec {
	return Spec{
		Name: "emul-test",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "mesh", N: 4},
			{Family: "butterfly", N: 3},
		},
		Workloads: []WorkRef{
			{Name: "perm"},
			{Name: "khot", Hot: 2},
		},
		Modes:            []string{"route", "erew", "crcw"},
		SkipPhase1:       []bool{false, true},
		Hashed:           []bool{false, true},
		Workers:          []int{1, 4},
		Trials:           1,
		Seed:             7,
		Pool:             1,
		SkipIncompatible: true,
	}
}

// eventSpec crosses the engine axis (round, event) with a jittered
// latency model and a two-level fault axis over the three router
// kinds, so the pool-width property covers the event engine's
// dispatch paths too.
func eventSpec() Spec {
	return Spec{
		Name: "event-test",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "mesh", N: 4},
			{Family: "butterfly", N: 3},
		},
		Workloads: []WorkRef{
			{Name: "perm"},
			{Name: "khot", Hot: 2},
		},
		Engines: []string{EngineRound, EngineEvent},
		Latency: &LatencySpec{Model: "jitter", Jitter: 2},
		Faults: []FaultSpec{
			{},
			{Name: "faulty", LinkFailure: 0.1, Straggler: 0.2, Drop: 0.1},
		},
		Workers: []int{1, 4},
		Trials:  1,
		Seed:    7,
		Pool:    1,
	}
}

func mustRun(t *testing.T, spec Spec) []Result {
	t.Helper()
	results, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func jsonl(t *testing.T, results []Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSweepPoolWidthIndependence is the acceptance property: the
// JSONL of a Pool=4 sweep is byte-identical to the sequential Pool=1
// sweep with the same seed — over the routing grid and over the
// emulation-mode and ablation axes alike.
func TestSweepPoolWidthIndependence(t *testing.T) {
	for name, spec := range map[string]Spec{"route": testSpec(), "emul": emulSpec(), "event": eventSpec()} {
		seq := spec
		par := spec
		par.Pool = 4
		a, b := jsonl(t, mustRun(t, seq)), jsonl(t, mustRun(t, par))
		if a != b {
			t.Fatalf("%s: parallel sweep diverged from sequential:\n--- pool=1\n%s--- pool=4\n%s", name, a, b)
		}
		if a != jsonl(t, mustRun(t, seq)) {
			t.Fatalf("%s: repeated sweep not deterministic", name)
		}
	}
}

// TestSweepEventGrid pins the engine axis's expansion and results:
// round cells ride fault-free exactly once, event cells expand the
// fault axis, the workers axis is vacuously identical on event cells
// (the loop is sequential whatever the knob says), and the faulty
// level's drop probability records retransmits somewhere.
func TestSweepEventGrid(t *testing.T) {
	results := mustRun(t, eventSpec())
	byKey := make(map[string]Result)
	faults := map[string]int{}
	faultyRetransmits := 0
	for _, r := range results {
		if r.Engine == "" {
			if r.Fault != "" || r.Retransmits != 0 {
				t.Fatalf("round cell carries event fields: %+v", r)
			}
		} else {
			faults[r.Fault]++
			if !strings.Contains(r.Scenario, "/eng=event/lat=jitter,b1,j2,g1") {
				t.Fatalf("event key lacks the latency segment: %q", r.Scenario)
			}
			if r.Fault == "faulty" {
				faultyRetransmits += r.Retransmits
			}
			if r.RoundsMean <= 0 {
				t.Fatalf("degenerate event cell: %+v", r)
			}
		}
		key := strings.TrimSuffix(strings.TrimSuffix(r.Scenario, "/w=1"), "/w=4")
		if prev, seen := byKey[key]; seen {
			prevCmp, cmp := prev, r
			prevCmp.Workers, cmp.Workers, prevCmp.Scenario, cmp.Scenario = 0, 0, "", ""
			if !reflect.DeepEqual(prevCmp, cmp) {
				t.Fatalf("workers axis diverged for %s:\n%+v\n%+v", key, prev, r)
			}
			continue
		}
		byKey[key] = r
	}
	// Two fault levels expand on event cells only, and each carries the
	// same number of cells; "none" is the zero level's label.
	if len(faults) != 2 || faults["none"] == 0 || faults["none"] != faults["faulty"] {
		t.Fatalf("unexpected fault-level mix: %v", faults)
	}
	if faultyRetransmits == 0 {
		t.Fatal("the faulty level (10% drop) recorded no retransmits anywhere")
	}
	if len(byKey)*2 != len(results) {
		t.Fatalf("%d results for %d worker-collapsed keys", len(results), len(byKey))
	}
}

// TestSweepWorkersAxisEquivalent pins the engine guarantee end to
// end: cells differing only in round-engine workers report identical
// routing statistics.
func TestSweepWorkersAxisEquivalent(t *testing.T) {
	results := mustRun(t, testSpec())
	byKey := make(map[string]Result)
	for _, r := range results {
		key := strings.TrimSuffix(r.Scenario, "/w=1")
		key = strings.TrimSuffix(key, "/w=4")
		prev, seen := byKey[key]
		if !seen {
			byKey[key] = r
			continue
		}
		if prev.RoundsMean != r.RoundsMean || prev.RoundsMax != r.RoundsMax || prev.MaxQueue != r.MaxQueue {
			t.Fatalf("workers axis diverged for %s:\n%+v\n%+v", key, prev, r)
		}
	}
	if len(byKey)*2 != len(results) {
		t.Fatalf("%d results for %d worker-collapsed keys", len(results), len(byKey))
	}
}

// TestSweepPagedAxisAndBudget pins the paged-table axis and the
// memory-budget path end to end: paged twins reproduce the flat-dense
// rounds bit-identically under "/pagedkeys" keys and record
// state=paged, the contradictory hashed∧paged combination is dropped
// from the grid, and an impossible budget degrades every cell to the
// hashed fallback — same rounds, Degraded recorded, and the
// "/state=hashed" key suffix marking the demotion in the artifact.
func TestSweepPagedAxisAndBudget(t *testing.T) {
	spec := Spec{
		Name: "paged-test",
		// The three router kinds: generic direct, specialized mesh,
		// leveled-only.
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "mesh", N: 4},
			{Family: "butterfly", N: 3},
		},
		Workloads: []WorkRef{{Name: "perm"}},
		Hashed:    []bool{false, true},
		Paged:     []bool{false, true},
		Workers:   []int{1, 4},
		Trials:    1,
		Seed:      7,
	}
	results := mustRun(t, spec)
	// 3 surviving (hashed, paged) combinations x 3 topologies x 2
	// workers: the hashed∧paged cell contradicts and is dropped.
	if len(results) != 18 {
		t.Fatalf("grid expanded to %d cells, want 18", len(results))
	}
	byKey := make(map[string]Result, len(results))
	for _, r := range results {
		byKey[r.Scenario] = r
		if r.TableBytes <= 0 || r.ArenaBytes <= 0 || r.BPerNode <= 0 {
			t.Fatalf("cell missing memory pricing: %+v", r)
		}
		if r.Degraded {
			t.Fatalf("unbudgeted cell reports degradation: %+v", r)
		}
	}
	pagedCells := 0
	for key, r := range byKey {
		if !strings.Contains(key, "/pagedkeys") {
			continue
		}
		pagedCells++
		if r.State != "paged" || !r.Paged {
			t.Fatalf("%s resolved state %q", key, r.State)
		}
		flat := byKey[strings.Replace(key, "/pagedkeys", "", 1)]
		if flat.State != "dense" {
			t.Fatalf("flat twin of %s resolved %q", key, flat.State)
		}
		if r.RoundsMean != flat.RoundsMean || r.RoundsMax != flat.RoundsMax || r.MaxQueue != flat.MaxQueue {
			t.Fatalf("paged twin diverged from flat for %s:\n%+v\n%+v", key, r, flat)
		}
		hashed := byKey[strings.Replace(key, "/pagedkeys", "/hashedkeys", 1)]
		if hashed.State != "hashed" {
			t.Fatalf("hashed twin of %s resolved %q", key, hashed.State)
		}
		if r.RoundsMean != hashed.RoundsMean || r.MaxQueue != hashed.MaxQueue {
			t.Fatalf("paged twin diverged from hashed for %s:\n%+v\n%+v", key, r, hashed)
		}
	}
	if pagedCells != 6 {
		t.Fatalf("%d paged cells, want 6", pagedCells)
	}
	// One byte of budget fits no table: every cell degrades to the
	// hashed fallback with identical rounds and a marked key.
	spec.Hashed = nil
	spec.Paged = nil
	spec.MemBudget = 1
	for _, r := range mustRun(t, spec) {
		if r.State != "hashed" || !r.Degraded {
			t.Fatalf("budgeted cell did not degrade: %+v", r)
		}
		if !strings.HasSuffix(r.Scenario, "/state=hashed") {
			t.Fatalf("degraded cell key lacks the state suffix: %q", r.Scenario)
		}
		if !strings.Contains(r.Scenario, "/mem=1/") {
			t.Fatalf("budgeted cell key lacks the budget segment: %q", r.Scenario)
		}
		base := strings.TrimSuffix(r.Scenario, "/state=hashed")
		base = strings.Replace(base, "/mem=1", "", 1)
		flat, ok := byKey[base]
		if !ok {
			t.Fatalf("no unbudgeted twin for %q", r.Scenario)
		}
		if r.RoundsMean != flat.RoundsMean || r.RoundsMax != flat.RoundsMax || r.MaxQueue != flat.MaxQueue {
			t.Fatalf("degraded cell diverged from its dense twin:\n%+v\n%+v", r, flat)
		}
	}
}

// TestSweepGridShape checks the discipline axis expands only on
// mesh-routed cells and many-one traffic leaves the mesh's
// specialized router for the generic one.
func TestSweepGridShape(t *testing.T) {
	results := mustRun(t, testSpec())
	// star/torus/butterfly: 2 workloads x 2 workers = 4 cells each;
	// mesh: perm expands 2 disciplines x 2 workers, khot collapses to
	// 2 workers = 6 cells.
	if len(results) != 3*4+6 {
		t.Fatalf("grid expanded to %d cells, want 18", len(results))
	}
	for _, r := range results {
		switch {
		case r.Family == "mesh" && r.Workload == "perm":
			if r.View != "mesh(§3.4)" || r.Discipline == "" || r.Algorithm == "" {
				t.Fatalf("mesh perm cell missing router metadata: %+v", r)
			}
		case r.Family == "mesh":
			if r.View != "direct(2.2)" || r.Discipline != "" {
				t.Fatalf("mesh many-one cell should route generically: %+v", r)
			}
		case r.Family == "butterfly":
			if r.View != "leveled(2.1)" {
				t.Fatalf("butterfly cell should route on its unrolling: %+v", r)
			}
		default:
			if r.View != "direct(2.2)" {
				t.Fatalf("%s cell should route directly: %+v", r.Family, r)
			}
		}
		if r.RoundsMean <= 0 || r.RoundsMax <= 0 || r.Trials != 2 {
			t.Fatalf("degenerate result: %+v", r)
		}
		if r.ElapsedMS != 0 || r.RoundsPerSec != 0 {
			t.Fatalf("sweep result carries wall-clock fields: %+v", r)
		}
	}
}

// TestSweepEmulGridShape pins the emulation axis's dispatch and axis
// collapsing: erew cells carry only permutation-class traffic, the
// specialized §3.3 scheme serves erew on the mesh while crcw routes
// generically there, the skip-phase-1 axis collapses on the
// specialized mesh router, and cells differing only in the hashed
// link-state ablation report bit-identical routing statistics.
func TestSweepEmulGridShape(t *testing.T) {
	results := mustRun(t, emulSpec())
	byKey := make(map[string]Result, len(results))
	emulCells := 0
	for _, r := range results {
		byKey[r.Scenario] = r
		switch r.Mode {
		case "":
			if r.Merges != 0 || r.Rehashes != 0 || r.MaxModuleLoad != 0 {
				t.Fatalf("route cell carries emulation fields: %+v", r)
			}
			continue
		case "erew", "crcw":
			emulCells++
		default:
			t.Fatalf("unexpected mode: %+v", r)
		}
		if r.Mode == "erew" && r.Workload != "perm" {
			t.Fatalf("erew cell carries non-permutation traffic: %+v", r)
		}
		switch {
		case r.Family == "mesh" && r.Mode == "erew":
			if r.View != "mesh(§3.3)" || r.Discipline == "" {
				t.Fatalf("mesh erew cell should use the §3.3 scheme: %+v", r)
			}
			if r.SkipPhase1 {
				t.Fatalf("skip-phase-1 axis should collapse on the §3.3 scheme: %+v", r)
			}
		case r.Family == "mesh":
			if r.View != "direct(2.2)" {
				t.Fatalf("mesh crcw cell should route generically: %+v", r)
			}
		case r.Family == "butterfly":
			if r.View != "leveled(2.1)" {
				t.Fatalf("butterfly emulation should use the unrolling: %+v", r)
			}
		default:
			if r.View != "direct(2.2)" {
				t.Fatalf("%s emulation should route directly: %+v", r.Family, r)
			}
		}
		if r.RoundsMean <= 0 || r.RoundsPerDiam <= 0 {
			t.Fatalf("degenerate emulation cell: %+v", r)
		}
	}
	if emulCells == 0 {
		t.Fatal("spec expanded no emulation cells")
	}
	// khot only survives on crcw cells; combining must fire somewhere.
	merges := 0
	hashedPairs := 0
	for key, r := range byKey {
		if r.Workload == "khot" && r.Mode == "crcw" {
			merges += r.Merges
		}
		if !r.Hashed {
			continue
		}
		dense, ok := byKey[strings.Replace(key, "/hashedkeys", "", 1)]
		if !ok {
			t.Fatalf("hashed cell %s has no dense twin", key)
		}
		hashedPairs++
		if dense.RoundsMean != r.RoundsMean || dense.RoundsMax != r.RoundsMax ||
			dense.MaxQueue != r.MaxQueue || dense.Merges != r.Merges {
			t.Fatalf("hashed link state diverged:\n%+v\n%+v", dense, r)
		}
	}
	if merges == 0 {
		t.Fatal("no crcw cell recorded a combining merge")
	}
	if hashedPairs == 0 {
		t.Fatal("hashed ablation axis did not expand")
	}
}

// TestSweepModeGating: mode/workload mismatches fail the sweep with
// the constraint named, unless SkipIncompatible drops them.
func TestSweepModeGating(t *testing.T) {
	spec := Spec{
		Topologies: []TopoRef{{Family: "star", N: 4}},
		Workloads:  []WorkRef{{Name: "khot"}},
		Modes:      []string{"erew"},
		Trials:     1, Seed: 7, Pool: 1,
	}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "crcw") {
		t.Fatalf("many-one erew cell: want a crcw-gating error, got %v", err)
	}
	spec.Workloads = []WorkRef{{Name: "relation"}}
	spec.Modes = []string{"crcw"}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "single-step") {
		t.Fatalf("relation crcw cell: want a single-step error, got %v", err)
	}
	spec.Workloads = []WorkRef{{Name: "relation"}, {Name: "perm"}}
	spec.SkipIncompatible = true
	results := mustRun(t, spec)
	if len(results) != 1 || results[0].Workload != "perm" || results[0].Mode != "crcw" {
		t.Fatalf("SkipIncompatible should keep only the perm crcw cell: %+v", results)
	}
}

// TestSweepCapabilityGate: incompatible pairs fail the sweep with the
// missing capability named, unless SkipIncompatible drops them.
func TestSweepCapabilityGate(t *testing.T) {
	spec := Spec{
		Topologies: []TopoRef{{Family: "star", N: 4}},
		Workloads:  []WorkRef{{Name: "tornado"}},
		Trials:     1, Seed: 7, Pool: 1,
	}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("tornado on star: want a coordinates-capability error, got %v", err)
	}
	spec.Workloads = []WorkRef{{Name: "local"}}
	spec.Topologies = []TopoRef{{Family: "butterfly", N: 3}}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "graph") {
		t.Fatalf("local on butterfly: want a graph-view error, got %v", err)
	}
	spec.SkipIncompatible = true
	spec.Topologies = append(spec.Topologies, TopoRef{Family: "mesh", N: 4})
	results := mustRun(t, spec)
	if len(results) != 1 || results[0].Family != "mesh" {
		t.Fatalf("SkipIncompatible should keep only the mesh cell: %+v", results)
	}
}

// TestSweepRejectsBadAxes: unknown names fail before any routing.
func TestSweepRejectsBadAxes(t *testing.T) {
	base := testSpec()
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Topologies = []TopoRef{{Family: "moebius"}} },
		func(s *Spec) { s.Workloads = []WorkRef{{Name: "nope"}} },
		func(s *Spec) { s.Workloads = []WorkRef{{Name: "hotspot", Fraction: 1.5}} },
		func(s *Spec) { s.Disciplines = []string{"magic"} },
		func(s *Spec) { s.Algorithm = "magic" },
		func(s *Spec) { s.Modes = []string{"quantum"} },
		func(s *Spec) { s.Mode = "quantum"; s.SkipIncompatible = true },
		func(s *Spec) { s.Topologies = nil },
		func(s *Spec) { s.Workloads = nil },
		func(s *Spec) { s.Topologies = []TopoRef{{Family: "torus", N: 4, K: 2, Leveled: true}} },
	} {
		spec := base
		mutate(&spec)
		if _, err := Run(spec); err == nil {
			t.Fatalf("invalid spec accepted: %+v", spec)
		}
	}
}

// TestReadSpec: JSON round-trip and unknown-field rejection.
func TestReadSpec(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(`{
		"name": "smoke",
		"topologies": [{"family": "star", "n": 4}],
		"workloads": [{"name": "perm"}, {"name": "khot", "hot": 2}],
		"workers": [1, 2],
		"trials": 2,
		"seed": 99
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || len(spec.Topologies) != 1 || len(spec.Workloads) != 2 ||
		spec.Seed != 99 || len(spec.Workers) != 2 {
		t.Fatalf("spec mis-parsed: %+v", spec)
	}
	if _, err := ReadSpec(strings.NewReader(`{"topologiez": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	// The singular "mode" shorthand folds into the Modes axis.
	spec, err = ReadSpec(strings.NewReader(`{
		"topologies": [{"family": "star", "n": 4}],
		"workloads": [{"name": "perm"}],
		"mode": "crcw"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Mode != "crcw" {
		t.Fatalf(`"mode": "crcw" should expand one crcw cell: %+v`, results)
	}
}

// TestRunCellMatchesSweepLine: a single RunCell with a cell's exact
// parameters reproduces the corresponding sweep line (minus the
// wall-clock fields), so routebench invocations and sweep rows agree.
func TestRunCellMatchesSweepLine(t *testing.T) {
	spec := testSpec()
	results := mustRun(t, spec)
	probe := results[0]
	for _, r := range results {
		if r.Family == "torus" && r.Workload == "perm" && r.Workers == 1 {
			probe = r
			break
		}
	}
	res, err := RunCell(Cell{
		Topo:    TopoRef{Family: "torus", N: 4, K: 2},
		Work:    WorkRef{Name: "perm"},
		Workers: 1, Trials: spec.Trials, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Scenario = probe.Scenario
	if !reflect.DeepEqual(res, probe) {
		t.Fatalf("single cell diverged from sweep line:\n%+v\n%+v", res, probe)
	}
}
