// The sweep runner's contract: pool-width independence (a parallel
// sweep's JSONL is line-for-line identical to a sequential one),
// engine-worker equivalence along the workers axis, capability gating
// with errors that name the missing capability, and spec parsing.
// TestSweep* runs under the race detector in CI, so the runner's pool
// is race-checked over every axis it exercises.
package scenario

import (
	"bytes"
	"strings"
	"testing"

	_ "pramemu/internal/topology/families"
)

// testSpec is a small grid crossing the mesh router, the generic
// direct router, the leveled view and a many-one combining workload.
func testSpec() Spec {
	return Spec{
		Name: "test",
		Topologies: []TopoRef{
			{Family: "star", N: 4},
			{Family: "torus", N: 4, K: 2},
			{Family: "mesh", N: 4},
			{Family: "butterfly", N: 3},
		},
		Workloads: []WorkRef{
			{Name: "perm"},
			{Name: "khot", Hot: 2},
		},
		Disciplines: []string{"furthest", "fifo"},
		Workers:     []int{1, 4},
		Trials:      2,
		Seed:        7,
		Pool:        1,
	}
}

func mustRun(t *testing.T, spec Spec) []Result {
	t.Helper()
	results, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func jsonl(t *testing.T, results []Result) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSweepPoolWidthIndependence is the acceptance property: the
// JSONL of a Pool=4 sweep is byte-identical to the sequential Pool=1
// sweep with the same seed.
func TestSweepPoolWidthIndependence(t *testing.T) {
	seq := testSpec()
	par := testSpec()
	par.Pool = 4
	a, b := jsonl(t, mustRun(t, seq)), jsonl(t, mustRun(t, par))
	if a != b {
		t.Fatalf("parallel sweep diverged from sequential:\n--- pool=1\n%s--- pool=4\n%s", a, b)
	}
	if a != jsonl(t, mustRun(t, seq)) {
		t.Fatal("repeated sweep not deterministic")
	}
}

// TestSweepWorkersAxisEquivalent pins the engine guarantee end to
// end: cells differing only in round-engine workers report identical
// routing statistics.
func TestSweepWorkersAxisEquivalent(t *testing.T) {
	results := mustRun(t, testSpec())
	byKey := make(map[string]Result)
	for _, r := range results {
		key := strings.TrimSuffix(r.Scenario, "/w=1")
		key = strings.TrimSuffix(key, "/w=4")
		prev, seen := byKey[key]
		if !seen {
			byKey[key] = r
			continue
		}
		if prev.RoundsMean != r.RoundsMean || prev.RoundsMax != r.RoundsMax || prev.MaxQueue != r.MaxQueue {
			t.Fatalf("workers axis diverged for %s:\n%+v\n%+v", key, prev, r)
		}
	}
	if len(byKey)*2 != len(results) {
		t.Fatalf("%d results for %d worker-collapsed keys", len(results), len(byKey))
	}
}

// TestSweepGridShape checks the discipline axis expands only on
// mesh-routed cells and many-one traffic leaves the mesh's
// specialized router for the generic one.
func TestSweepGridShape(t *testing.T) {
	results := mustRun(t, testSpec())
	// star/torus/butterfly: 2 workloads x 2 workers = 4 cells each;
	// mesh: perm expands 2 disciplines x 2 workers, khot collapses to
	// 2 workers = 6 cells.
	if len(results) != 3*4+6 {
		t.Fatalf("grid expanded to %d cells, want 18", len(results))
	}
	for _, r := range results {
		switch {
		case r.Family == "mesh" && r.Workload == "perm":
			if r.View != "mesh(§3.4)" || r.Discipline == "" || r.Algorithm == "" {
				t.Fatalf("mesh perm cell missing router metadata: %+v", r)
			}
		case r.Family == "mesh":
			if r.View != "direct(2.2)" || r.Discipline != "" {
				t.Fatalf("mesh many-one cell should route generically: %+v", r)
			}
		case r.Family == "butterfly":
			if r.View != "leveled(2.1)" {
				t.Fatalf("butterfly cell should route on its unrolling: %+v", r)
			}
		default:
			if r.View != "direct(2.2)" {
				t.Fatalf("%s cell should route directly: %+v", r.Family, r)
			}
		}
		if r.RoundsMean <= 0 || r.RoundsMax <= 0 || r.Trials != 2 {
			t.Fatalf("degenerate result: %+v", r)
		}
		if r.ElapsedMS != 0 || r.RoundsPerSec != 0 {
			t.Fatalf("sweep result carries wall-clock fields: %+v", r)
		}
	}
}

// TestSweepCapabilityGate: incompatible pairs fail the sweep with the
// missing capability named, unless SkipIncompatible drops them.
func TestSweepCapabilityGate(t *testing.T) {
	spec := Spec{
		Topologies: []TopoRef{{Family: "star", N: 4}},
		Workloads:  []WorkRef{{Name: "tornado"}},
		Trials:     1, Seed: 7, Pool: 1,
	}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "coordinates") {
		t.Fatalf("tornado on star: want a coordinates-capability error, got %v", err)
	}
	spec.Workloads = []WorkRef{{Name: "local"}}
	spec.Topologies = []TopoRef{{Family: "butterfly", N: 3}}
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "graph") {
		t.Fatalf("local on butterfly: want a graph-view error, got %v", err)
	}
	spec.SkipIncompatible = true
	spec.Topologies = append(spec.Topologies, TopoRef{Family: "mesh", N: 4})
	results := mustRun(t, spec)
	if len(results) != 1 || results[0].Family != "mesh" {
		t.Fatalf("SkipIncompatible should keep only the mesh cell: %+v", results)
	}
}

// TestSweepRejectsBadAxes: unknown names fail before any routing.
func TestSweepRejectsBadAxes(t *testing.T) {
	base := testSpec()
	for _, mutate := range []func(*Spec){
		func(s *Spec) { s.Topologies = []TopoRef{{Family: "moebius"}} },
		func(s *Spec) { s.Workloads = []WorkRef{{Name: "nope"}} },
		func(s *Spec) { s.Workloads = []WorkRef{{Name: "hotspot", Fraction: 1.5}} },
		func(s *Spec) { s.Disciplines = []string{"magic"} },
		func(s *Spec) { s.Algorithm = "magic" },
		func(s *Spec) { s.Topologies = nil },
		func(s *Spec) { s.Workloads = nil },
		func(s *Spec) { s.Topologies = []TopoRef{{Family: "torus", N: 4, K: 2, Leveled: true}} },
	} {
		spec := base
		mutate(&spec)
		if _, err := Run(spec); err == nil {
			t.Fatalf("invalid spec accepted: %+v", spec)
		}
	}
}

// TestReadSpec: JSON round-trip and unknown-field rejection.
func TestReadSpec(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(`{
		"name": "smoke",
		"topologies": [{"family": "star", "n": 4}],
		"workloads": [{"name": "perm"}, {"name": "khot", "hot": 2}],
		"workers": [1, 2],
		"trials": 2,
		"seed": 99
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "smoke" || len(spec.Topologies) != 1 || len(spec.Workloads) != 2 ||
		spec.Seed != 99 || len(spec.Workers) != 2 {
		t.Fatalf("spec mis-parsed: %+v", spec)
	}
	if _, err := ReadSpec(strings.NewReader(`{"topologiez": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestRunCellMatchesSweepLine: a single RunCell with a cell's exact
// parameters reproduces the corresponding sweep line (minus the
// wall-clock fields), so routebench invocations and sweep rows agree.
func TestRunCellMatchesSweepLine(t *testing.T) {
	spec := testSpec()
	results := mustRun(t, spec)
	probe := results[0]
	for _, r := range results {
		if r.Family == "torus" && r.Workload == "perm" && r.Workers == 1 {
			probe = r
			break
		}
	}
	res, err := RunCell(Cell{
		Topo:    TopoRef{Family: "torus", N: 4, K: 2},
		Work:    WorkRef{Name: "perm"},
		Workers: 1, Trials: spec.Trials, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Scenario = probe.Scenario
	if res != probe {
		t.Fatalf("single cell diverged from sweep line:\n%+v\n%+v", res, probe)
	}
}
