// The sweep error taxonomy: every way a cell can fail maps onto one
// of four kinds, carried as structured fields on an error Result line
// instead of crashing the sweep. Spec-level failures name the field
// they arrived in (SpecError); a completed sweep with failed cells
// reports them in aggregate (AggregateError) alongside the full
// result set, error lines included.

package scenario

import (
	"context"
	"errors"
	"fmt"
)

// The error_kind values of error Result lines.
const (
	// ErrKindPanic marks a recovered panic: a bug or data corruption
	// in the cell's routing, isolated to its one error line.
	ErrKindPanic = "panic"
	// ErrKindTimeout marks a cell cut off by its per-cell deadline
	// (Spec.TimeoutMS / Cell.Timeout). Transient: a resumed or
	// retried sweep runs the cell again.
	ErrKindTimeout = "timeout"
	// ErrKindCanceled marks a cell aborted by sweep-level
	// cancellation. Transient, like ErrKindTimeout.
	ErrKindCanceled = "canceled"
	// ErrKindInvalidSpec marks a cell whose configuration cannot run:
	// unknown axis values, capability mismatches, resource refusals.
	// Deterministic — re-running reproduces it.
	ErrKindInvalidSpec = "invalid_spec"
)

// transientKind reports whether the kind depends on run conditions
// (load, deadlines, cancellation) rather than the spec: transient
// error lines are never journaled, so a resumed or retried sweep runs
// those cells again instead of trusting a stale verdict.
func transientKind(kind string) bool {
	return kind == ErrKindTimeout || kind == ErrKindCanceled
}

// classifyErr maps a cell error onto its error_kind.
func classifyErr(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrKindTimeout
	case errors.Is(err, context.Canceled):
		return ErrKindCanceled
	default:
		return ErrKindInvalidSpec
	}
}

// SpecError is a sweep-spec validation failure naming the offending
// field (the JSON key of the Spec axis or knob), so malformed specs
// fail with an actionable message — and as an invalid_spec error line
// when a cell-level check trips one.
type SpecError struct {
	// Field is the Spec's JSON key the bad value arrived in
	// ("topologies", "workloads", "modes", "trials", ...).
	Field string
	Err   error
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: spec field %q: %v", e.Field, e.Err)
}

func (e *SpecError) Unwrap() error { return e.Err }

// AggregateError reports that a completed sweep carried failed cells.
// Run returns it alongside the full result set — error lines included
// — so callers can persist the artifact and still exit nonzero;
// errors.As distinguishes it from spec-level failures that produced
// no results at all.
type AggregateError struct {
	// Failed counts the error Result lines; Total the grid size.
	Failed, Total int
	// First is the first failing result in scenario-key order.
	First Result
}

func (e *AggregateError) Error() string {
	return fmt.Sprintf("scenario: %d of %d cells failed (first: %s: %s: %s)",
		e.Failed, e.Total, e.First.Scenario, e.First.ErrorKind, e.First.Error)
}
