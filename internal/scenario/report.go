package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pramemu/internal/mathx"
	"pramemu/internal/metrics"
	"pramemu/internal/workload"
)

// DistStats summarizes one metric's per-trial sample — the tail the
// mean-only columns hide. Hist is a fixed-width histogram over
// [HistLo, HistLo+len(Hist)*HistW): bucket i counts samples in
// [HistLo+i*HistW, HistLo+(i+1)*HistW), with the top bucket absorbing
// the maximum. Everything derives deterministically from the sample.
type DistStats struct {
	N      int     `json:"n"`
	Max    int     `json:"max"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	P99    float64 `json:"p99"`
	P999   float64 `json:"p999"`
	HistLo int     `json:"hist_lo"`
	HistW  int     `json:"hist_w"`
	Hist   []int   `json:"hist"`
}

// distHistBuckets caps the histogram width so distribution rows stay
// one readable line even for thousand-seed sweeps.
const distHistBuckets = 16

// NewDistStats summarizes an integer sample into distribution
// statistics. It returns the zero value for an empty sample (a cell
// group that carried no per-trial arrays contributes nothing).
func NewDistStats(samples []int) DistStats {
	if len(samples) == 0 {
		return DistStats{}
	}
	s := mathx.SummarizeInts(samples)
	lo, hi := samples[0], samples[0]
	for _, x := range samples {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	buckets := hi - lo + 1
	if buckets > distHistBuckets {
		buckets = distHistBuckets
	}
	w := (hi - lo + buckets) / buckets // ceil((hi-lo+1)/buckets)
	if w < 1 {
		w = 1
	}
	hist := make([]int, buckets)
	for _, x := range samples {
		i := (x - lo) / w
		if i >= buckets {
			i = buckets - 1
		}
		hist[i]++
	}
	return DistStats{
		N:      s.N,
		Max:    hi,
		Mean:   s.Mean,
		StdDev: s.StdDev,
		P99:    s.P99,
		P999:   s.P999,
		HistLo: lo,
		HistW:  w,
		Hist:   hist,
	}
}

// ReportRow is one line of the sweep-level derived report: either a
// "speedup" row (one cell of the engine-workers axis, with the
// wall-clock speedup over the group's smallest workers value when the
// sweep was timed) or a "class" row (one traffic class × emulation
// mode aggregated across every family in the sweep). The Report field
// discriminates the two, so report rows can ride in the same JSONL
// stream as Result rows without ambiguity — Result has no "report"
// key.
type ReportRow struct {
	Report string `json:"report"` // "speedup" | "class" | "dist"

	// Speedup rows: Scenario is the cell key with the trailing
	// workers segment stripped (the group identity), Workers the axis
	// value, and Speedup the wall-clock ratio against the group's
	// smallest workers value (1.0 for the baseline itself; 0 when the
	// sweep carried no timing). RoundsMean documents the engine
	// invariant: it is identical across the group's rows.
	Scenario     string  `json:"scenario,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	RoundsMean   float64 `json:"rounds_mean,omitempty"`
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`

	// Class rows: aggregates across families for one (traffic class,
	// mode) pair — Cells grid cells over Families distinct families.
	Class             string  `json:"class,omitempty"`
	Mode              string  `json:"mode,omitempty"`
	Cells             int     `json:"cells,omitempty"`
	Families          int     `json:"families,omitempty"`
	RoundsPerDiamMean float64 `json:"rounds_per_diam_mean,omitempty"`
	RoundsPerDiamMax  float64 `json:"rounds_per_diam_max,omitempty"`
	MaxQueue          int     `json:"max_queue,omitempty"`

	// Dist rows: tail statistics over the per-trial samples of every
	// Distribution cell sharing one workers-stripped scenario key (the
	// engine invariant makes the rounds identical along the workers
	// axis, so pooling the group costs nothing). Present only when the
	// sweep ran with "distribution": true.
	RoundsDist *DistStats `json:"rounds_dist,omitempty"`
	MaxQDist   *DistStats `json:"max_q_dist,omitempty"`
}

// Report derives the sweep-level summary rows from a sweep's results:
// speedup rows across the engine-workers axis (for every group of
// cells identical up to Workers, when the axis has more than one
// value) followed by per-class aggregate rows across families. Both
// orderings are canonical — by scenario key and workers, then by
// class and mode — so the report is as deterministic as its inputs
// (wall-clock speedups, when present, are inherently run-dependent).
func Report(results []Result) []ReportRow {
	rows := append(speedupRows(results), classRows(results)...)
	return append(rows, distRows(results)...)
}

// distRows derives the tail-statistics rows from Distribution cells:
// results carrying per-trial arrays are grouped by their
// workers-stripped scenario key and each group's pooled samples are
// summarized. Sweeps without the distribution axis produce none.
func distRows(results []Result) []ReportRow {
	type samples struct {
		rounds, maxQ []int
	}
	groups := make(map[string]*samples)
	var keys []string
	for _, r := range results {
		if len(r.TrialRounds) == 0 && len(r.TrialMaxQ) == 0 {
			continue
		}
		base := workersStrippedKey(r)
		g := groups[base]
		if g == nil {
			g = &samples{}
			groups[base] = g
			keys = append(keys, base)
		}
		g.rounds = append(g.rounds, r.TrialRounds...)
		g.maxQ = append(g.maxQ, r.TrialMaxQ...)
	}
	sort.Strings(keys)
	var rows []ReportRow
	for _, base := range keys {
		g := groups[base]
		row := ReportRow{Report: "dist", Scenario: base}
		if len(g.rounds) > 0 {
			d := NewDistStats(g.rounds)
			row.RoundsDist = &d
		}
		if len(g.maxQ) > 0 {
			d := NewDistStats(g.maxQ)
			row.MaxQDist = &d
		}
		rows = append(rows, row)
	}
	return rows
}

// speedupRows groups results by their workers-stripped scenario key
// and emits one row per (group, workers) cell for groups that sweep
// more than one workers value. Speedup is computed from RoundsPerSec
// when the results carry timing (routebench -sweep -report times its
// run); untimed results still get their rows — documenting that
// RoundsMean is identical along the axis — with Speedup zero.
func speedupRows(results []Result) []ReportRow {
	groups := make(map[string][]Result)
	var keys []string
	for _, r := range results {
		base := workersStrippedKey(r)
		if _, seen := groups[base]; !seen {
			keys = append(keys, base)
		}
		groups[base] = append(groups[base], r)
	}
	sort.Strings(keys)
	var rows []ReportRow
	for _, base := range keys {
		group := groups[base]
		if len(group) < 2 {
			continue
		}
		// Order by the EFFECTIVE worker count: the axis value 0 means
		// GOMAXPROCS (fully parallel), so sorting it first by raw value
		// would crown the widest run as the "baseline" and invert every
		// speedup. Ties (0 vs an explicit GOMAXPROCS) break on the raw
		// value, keeping the order deterministic.
		sort.Slice(group, func(i, j int) bool {
			ei, ej := effectiveWorkers(group[i].Workers), effectiveWorkers(group[j].Workers)
			if ei != ej {
				return ei < ej
			}
			return group[i].Workers < group[j].Workers
		})
		baseline := group[0]
		for _, r := range group {
			row := ReportRow{
				Report:       "speedup",
				Scenario:     base,
				Workers:      r.Workers,
				RoundsMean:   r.RoundsMean,
				RoundsPerSec: r.RoundsPerSec,
			}
			if baseline.RoundsPerSec > 0 && r.RoundsPerSec > 0 {
				row.Speedup = r.RoundsPerSec / baseline.RoundsPerSec
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// effectiveWorkers resolves the workers axis value 0 (= GOMAXPROCS)
// to the width it actually ran with, for baseline ordering.
func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// workersStrippedKey removes the trailing workers segment from the
// result's scenario key (reconstructing the key when the result came
// from a single run and has none). The reconstructed fallback carries
// every axis the sweep key does — topology instance, mode, engine,
// fault level, discipline, algorithm and the ablations — so two
// single runs differing only in, say, mode can never collapse into
// one bogus speedup group.
func workersStrippedKey(r Result) string {
	key := r.Scenario
	if key == "" {
		var b strings.Builder
		fmt.Fprintf(&b, "%s/%s", r.Topology, r.Workload)
		if r.Algorithm != "" {
			fmt.Fprintf(&b, "/alg=%s", r.Algorithm)
		}
		if r.Discipline != "" {
			fmt.Fprintf(&b, "/disc=%s", r.Discipline)
		}
		if r.View != "" {
			fmt.Fprintf(&b, "/view=%s", r.View)
		}
		if r.Mode != "" {
			fmt.Fprintf(&b, "/mode=%s", r.Mode)
		}
		if r.Engine != "" {
			fmt.Fprintf(&b, "/eng=%s", r.Engine)
			if r.Fault != "" {
				fmt.Fprintf(&b, "/fault=%s", r.Fault)
			}
		}
		if r.SkipPhase1 {
			b.WriteString("/nophase1")
		}
		if r.Hashed {
			b.WriteString("/hashedkeys")
		}
		return b.String()
	}
	suffix := "/w=" + strconv.Itoa(r.Workers)
	if len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix {
		return key[:len(key)-len(suffix)]
	}
	return key
}

// classRows aggregates the sweep across the family axis: one row per
// (traffic class, emulation mode) pair present in the results.
func classRows(results []Result) []ReportRow {
	type agg struct {
		cells    int
		families map[string]bool
		sum, max float64
		maxQ     int
	}
	aggs := make(map[[2]string]*agg)
	var keys [][2]string
	for _, r := range results {
		class := r.Workload
		if gen, ok := workload.Lookup(r.Workload); ok {
			class = gen.Class.String()
		}
		k := [2]string{class, r.Mode}
		a := aggs[k]
		if a == nil {
			a = &agg{families: make(map[string]bool)}
			aggs[k] = a
			keys = append(keys, k)
		}
		a.cells++
		a.families[r.Family] = true
		a.sum += r.RoundsPerDiam
		if r.RoundsPerDiam > a.max {
			a.max = r.RoundsPerDiam
		}
		if r.MaxQueue > a.maxQ {
			a.maxQ = r.MaxQueue
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var rows []ReportRow
	for _, k := range keys {
		a := aggs[k]
		rows = append(rows, ReportRow{
			Report:            "class",
			Class:             k[0],
			Mode:              k[1],
			Cells:             a.cells,
			Families:          len(a.families),
			RoundsPerDiamMean: a.sum / float64(a.cells),
			RoundsPerDiamMax:  a.max,
			MaxQueue:          a.maxQ,
		})
	}
	return rows
}

// WriteReportJSONL appends one JSON object per report row — the rows
// `routebench -sweep -report` emits after the result lines.
func WriteReportJSONL(w io.Writer, rows []ReportRow) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadResults parses a sweep JSONL artifact back into results,
// skipping any interleaved report rows — the consumption path of
// `cmd/tables -sweep`.
func ReadResults(r io.Reader) ([]Result, error) {
	dec := json.NewDecoder(r)
	var results []Result
	for lineNo := 1; dec.More(); lineNo++ {
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("scenario: parsing sweep line %d: %w", lineNo, err)
		}
		if _, isReport := raw["report"]; isReport {
			continue
		}
		line, err := json.Marshal(raw)
		if err != nil {
			return nil, err
		}
		var res Result
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, fmt.Errorf("scenario: parsing sweep line %d: %w", lineNo, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// ReportTables renders the derived report as the tables `cmd/tables
// -sweep` prints: the engine-workers speedup table, the per-class
// aggregate table, and — when the sweep carried the distribution axis
// — the per-group tail-statistics table.
func ReportTables(rows []ReportRow) []*metrics.Table {
	speed := metrics.NewTable("sweep report: speedup across the engine-workers axis",
		"scenario", "workers", "rounds(mean)", "rounds/sec", "speedup")
	classes := metrics.NewTable("sweep report: per-class aggregates across families",
		"class", "mode", "cells", "families", "rounds/diam(mean)", "rounds/diam(max)", "maxQ")
	dists := metrics.NewTable("sweep report: per-group distribution tails over trials",
		"scenario", "n", "rounds(max)", "rounds(p99)", "rounds(p999)", "rounds(stddev)", "maxQ(max)", "maxQ(p99)")
	for _, r := range rows {
		switch r.Report {
		case "dist":
			n, rMax, rP99, rP999, rStd := "-", "-", "-", "-", "-"
			if d := r.RoundsDist; d != nil {
				n = fmt.Sprintf("%d", d.N)
				rMax = fmt.Sprintf("%d", d.Max)
				rP99 = fmt.Sprintf("%.1f", d.P99)
				rP999 = fmt.Sprintf("%.1f", d.P999)
				rStd = fmt.Sprintf("%.2f", d.StdDev)
			}
			qMax, qP99 := "-", "-"
			if d := r.MaxQDist; d != nil {
				if n == "-" {
					n = fmt.Sprintf("%d", d.N)
				}
				qMax = fmt.Sprintf("%d", d.Max)
				qP99 = fmt.Sprintf("%.1f", d.P99)
			}
			dists.AddRow(r.Scenario, n, rMax, rP99, rP999, rStd, qMax, qP99)
		case "speedup":
			rps, speedup := "-", "-"
			if r.RoundsPerSec > 0 {
				rps = fmt.Sprintf("%.0f", r.RoundsPerSec)
			}
			if r.Speedup > 0 {
				speedup = fmt.Sprintf("%.2f", r.Speedup)
			}
			speed.AddRow(r.Scenario,
				fmt.Sprintf("%d", r.Workers),
				fmt.Sprintf("%.1f", r.RoundsMean),
				rps, speedup)
		case "class":
			mode := r.Mode
			if mode == "" {
				mode = ModeRoute
			}
			classes.AddRow(r.Class, mode,
				fmt.Sprintf("%d", r.Cells),
				fmt.Sprintf("%d", r.Families),
				fmt.Sprintf("%.2f", r.RoundsPerDiamMean),
				fmt.Sprintf("%.2f", r.RoundsPerDiamMax),
				fmt.Sprintf("%d", r.MaxQueue))
		}
	}
	tables := []*metrics.Table{speed, classes}
	if dists.Rows() > 0 {
		tables = append(tables, dists)
	}
	return tables
}
