// The crash-safety layer of long sweeps: a content hash identifying
// the spec, an explicit trailer line closing every artifact (so a
// truncated file is detectable), and a journaled runner that appends
// each completed cell to a sidecar file and — after a crash or kill —
// skips the cells already priced. Per-cell seeds derive from the spec
// alone, so a resumed artifact is byte-identical to an uninterrupted
// run.

package scenario

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pramemu/internal/buildcache"
)

// SpecHash is the canonical content hash of a sweep spec: the sha256
// (truncated to 128 bits of hex) of the defaulted spec's JSON with
// the knobs that cannot change output bytes cleared — Name labels,
// Pool only schedules. Everything else, timeouts and FailFast
// included, is hashed: equal hashes mean byte-equal artifacts, which
// makes the hash a resume guard for journals and a job ID / cache key
// for sweepd.
func SpecHash(spec Spec) (string, error) {
	s := spec.withDefaults()
	s.Name = ""
	s.Pool = 0
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("scenario: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// Trailer is the explicit end-of-sweep line closing every artifact.
// Its "report" discriminator keeps ReadResults (which skips all
// report rows) compatible; VerifyTrailer fails loudly when the line
// is missing, so a truncated artifact can no longer pass for a
// complete one.
type Trailer struct {
	Report   string `json:"report"` // always TrailerReport
	SpecHash string `json:"spec_hash,omitempty"`
	// Cells counts the result lines above the trailer; Errors how
	// many of them are error lines.
	Cells  int `json:"cells"`
	Errors int `json:"errors,omitempty"`
	// The build-cache observability fields, filled only on report-mode
	// runs (routebench -report stamps them from the cache's stat delta
	// over the sweep). Plain and journaled artifacts leave them empty —
	// cache activity depends on process history, and artifact bytes
	// must depend on the spec alone. BuildMS prices the topology builds
	// the sweep actually ran (cache misses), RouteMS the wall-clock of
	// the routing itself.
	CacheHits      int64   `json:"cache_hits,omitempty"`
	CacheMisses    int64   `json:"cache_misses,omitempty"`
	CacheEvictions int64   `json:"cache_evictions,omitempty"`
	BuildMS        float64 `json:"build_ms,omitempty"`
	RouteMS        float64 `json:"route_ms,omitempty"`
}

// TrailerReport is the Trailer's report-discriminator value.
const TrailerReport = "trailer"

// journalReport discriminates the sidecar journal's header line.
const journalReport = "journal"

// journalHeader is the first line of a journal sidecar: the spec hash
// it was written for, so a stale journal from a different spec is
// discarded instead of poisoning a resume.
type journalHeader struct {
	Report   string `json:"report"` // always journalReport
	SpecHash string `json:"spec_hash"`
}

// WriteArtifact writes the complete sweep artifact: one JSON line per
// result followed by the trailer. hash may be empty (stdout streams
// without a spec hash still get a verifiable trailer).
func WriteArtifact(w io.Writer, hash string, results []Result) error {
	if err := WriteJSONL(w, results); err != nil {
		return err
	}
	return WriteTrailer(w, hash, results)
}

// NewTrailer derives the trailer line for a result set. Callers that
// want the observability extras (cache stats, build/route time) fill
// them on the returned value before WriteTrailerLine — artifact
// writers use the zero extras so bytes stay spec-deterministic.
func NewTrailer(hash string, results []Result) Trailer {
	failed := 0
	for _, r := range results {
		if r.Failed() {
			failed++
		}
	}
	return Trailer{
		Report:   TrailerReport,
		SpecHash: hash,
		Cells:    len(results),
		Errors:   failed,
	}
}

// WriteTrailerLine encodes one trailer as a JSONL line.
func WriteTrailerLine(w io.Writer, t Trailer) error {
	return json.NewEncoder(w).Encode(t)
}

// WriteTrailer writes just the trailer line for the given results —
// for callers interleaving report rows between the result lines and
// the close.
func WriteTrailer(w io.Writer, hash string, results []Result) error {
	return WriteTrailerLine(w, NewTrailer(hash, results))
}

// VerifyTrailer scans an artifact for its closing trailer line and
// returns it, or an error when the artifact is truncated (no trailer,
// or lines after it). It reads the whole stream; use it on files, not
// unbounded pipes.
func VerifyTrailer(r io.Reader) (Trailer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var (
		last    Trailer
		found   bool
		tailing int // non-trailer lines after the trailer
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if found {
			tailing++
			continue
		}
		var t Trailer
		if err := json.Unmarshal([]byte(line), &t); err == nil && t.Report == TrailerReport {
			last, found = t, true
		}
	}
	if err := sc.Err(); err != nil {
		return Trailer{}, fmt.Errorf("scenario: scanning artifact: %w", err)
	}
	if !found {
		return Trailer{}, fmt.Errorf("scenario: artifact has no trailer line — truncated or written by a pre-trailer sweep")
	}
	if tailing > 0 {
		return Trailer{}, fmt.Errorf("scenario: artifact has %d lines after its trailer", tailing)
	}
	return last, nil
}

// DiffArtifacts compares two trailer-closed sweep artifacts byte for
// byte — the shared core of routebench -reportdiff and sweepd's
// /sweeps/{id}/diff endpoint. Both sides must carry the end-of-sweep
// trailer (a truncated side errors, named by its label). Identical
// artifacts return ("", true, nil); drifting ones return (detail,
// false, nil) with the detail naming the first line that differs.
func DiffArtifacts(aName string, a []byte, bName string, b []byte) (string, bool, error) {
	if _, err := VerifyTrailer(bytes.NewReader(a)); err != nil {
		return "", false, fmt.Errorf("%s: %w", aName, err)
	}
	if _, err := VerifyTrailer(bytes.NewReader(b)); err != nil {
		return "", false, fmt.Errorf("%s: %w", bName, err)
	}
	if bytes.Equal(a, b) {
		return "", true, nil
	}
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		la, lb := "<absent>", "<absent>"
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la != lb {
			return fmt.Sprintf("artifacts drift at line %d:\n%s: %s\n%s: %s",
				i+1, aName, la, bName, lb), false, nil
		}
	}
	// Same lines but unequal bytes: a trailing-newline mismatch.
	return fmt.Sprintf("artifacts differ only in trailing bytes (%d vs %d)", len(a), len(b)), false, nil
}

// JournalOptions tunes RunJournaled beyond the spec itself.
type JournalOptions struct {
	// Retries re-runs transiently failed cells (timeout kind) up to
	// this many extra passes before finalizing; deterministic
	// failures (panic, invalid_spec) never retry. Zero finalizes
	// after one pass.
	Retries int
	// Backoff sleeps before the first retry pass and doubles each
	// pass (default 100ms when Retries > 0).
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
	// Cache, when non-nil, resolves the spec's topology axis through
	// the shared build cache (see RunOptions.Cache) — sweepd passes
	// its per-server cache here so successive jobs over the same
	// families rebuild nothing. Artifact bytes are unaffected.
	Cache *buildcache.Cache
}

// RunJournaled runs the spec crash-safely: every completed cell is
// appended (and flushed) to out+".journal" as it lands, and the
// sorted artifact with its trailer is written to out+".tmp" then
// atomically renamed over out — a path either holds a complete,
// trailer-closed artifact or the previous one, never a truncation.
// When a journal from an interrupted run of the same spec hash is
// found, its completed cells are skipped and the resumed artifact is
// byte-identical to an uninterrupted run. Transient error lines
// (timeout, canceled) are never journaled — those cells re-run on
// resume — and per JournalOptions.Retries, timed-out cells get fresh
// passes before the artifact finalizes. Cell failures surface as an
// *AggregateError after the artifact is written; cancellation of ctx
// aborts before finalizing, leaving the journal for the next resume.
func RunJournaled(ctx context.Context, spec Spec, out string, opts JournalOptions) ([]Result, error) {
	spec = spec.withDefaults()
	hash, err := SpecHash(spec)
	if err != nil {
		return nil, err
	}
	cells, release, err := spec.cells(opts.Cache)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenario: spec %q expands to no runnable cells", spec.Name)
	}
	jpath := out + ".journal"
	skip, err := readJournal(jpath, hash)
	if err != nil {
		return nil, err
	}
	var jf *os.File
	if skip == nil {
		skip = make(map[string]Result)
		jf, err = os.Create(jpath)
		if err != nil {
			return nil, fmt.Errorf("scenario: creating journal: %w", err)
		}
		if err := json.NewEncoder(jf).Encode(journalHeader{Report: journalReport, SpecHash: hash}); err != nil {
			jf.Close()
			return nil, fmt.Errorf("scenario: writing journal header: %w", err)
		}
	} else {
		jf, err = os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("scenario: reopening journal: %w", err)
		}
	}
	defer jf.Close()
	jenc := json.NewEncoder(jf)
	var jerr error
	onDone := func(r Result) {
		if transientKind(r.ErrorKind) {
			return // resume and retry passes must re-run these
		}
		if err := jenc.Encode(r); err != nil && jerr == nil {
			jerr = err
		}
		jf.Sync()
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var results []Result
	for pass := 0; ; pass++ {
		results, err = runCells(ctx, spec, cells, skip, onDone)
		if err != nil && !isAggregate(err) {
			// Sweep-level cancellation: the journal stays for resume.
			return results, err
		}
		if jerr != nil {
			return results, fmt.Errorf("scenario: appending journal: %w", jerr)
		}
		timeouts := 0
		for _, r := range results {
			if transientKind(r.ErrorKind) {
				timeouts++
			} else if r.Scenario != "" {
				skip[baseKey(r)] = r
			}
		}
		if timeouts == 0 || pass >= opts.Retries {
			break
		}
		sleep(backoff << uint(pass))
	}
	if ferr := finalizeArtifact(out, hash, results); ferr != nil {
		return results, ferr
	}
	os.Remove(jpath)
	return results, err
}

// isAggregate reports whether err is a completed-sweep aggregate (the
// artifact is whole, some cells failed) rather than a run-stopping
// error.
func isAggregate(err error) bool {
	var agg *AggregateError
	return errors.As(err, &agg)
}

// baseKey strips the resolved-state suffix a budget demotion appends
// to the scenario key, recovering the cell's expansion key — the
// identity journal resume matches on.
func baseKey(r Result) string {
	if r.Degraded {
		return strings.TrimSuffix(r.Scenario, "/state="+r.State)
	}
	return r.Scenario
}

// finalizeArtifact writes the sorted artifact plus trailer to
// out+".tmp" and atomically renames it over out.
func finalizeArtifact(out, hash string, results []Result) error {
	tmp := out + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("scenario: creating artifact: %w", err)
	}
	if err := WriteArtifact(f, hash, results); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("scenario: writing artifact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("scenario: syncing artifact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("scenario: closing artifact: %w", err)
	}
	if err := os.Rename(tmp, out); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("scenario: publishing artifact: %w", err)
	}
	return nil
}

// readJournal loads an interrupted run's journal into a skip map
// keyed by base cell key. It returns (nil, nil) when no usable
// journal exists: missing file, wrong spec hash, or an unreadable
// header — resume then starts from scratch. A torn final line (the
// crash interrupting a write) is dropped, not fatal.
func readJournal(path, hash string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("scenario: opening journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, nil // empty journal: start over
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Report != journalReport || hdr.SpecHash != hash {
		return nil, nil // foreign or stale journal: start over
	}
	skip := make(map[string]Result)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			break // torn tail from the crash: everything before it counts
		}
		if r.Scenario == "" || transientKind(r.ErrorKind) {
			continue
		}
		skip[baseKey(r)] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: reading journal: %w", err)
	}
	return skip, nil
}
