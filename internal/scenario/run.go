// The sweep runner: RunCell prices one grid cell, Run fans the whole
// grid out over a worker pool. Result is the one JSON schema shared
// by `routebench -json` (one object per invocation) and `routebench
// -sweep` (one object per line of JSONL).

package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"pramemu/internal/buildcache"
	"pramemu/internal/emul"
	"pramemu/internal/engine"
	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/simnet"
	"pramemu/internal/topology"
	"pramemu/internal/workload"
)

// Result aggregates the trials of one cell. It is the -json schema of
// cmd/routebench and the per-line schema of sweep JSONL artifacts.
// The wall-clock fields (elapsed_ms, rounds_per_sec) are filled only
// for Timing cells — sweep output omits them so it is bit-reproducible.
type Result struct {
	Scenario      string  `json:"scenario,omitempty"` // sweep cell key; empty on single runs
	Family        string  `json:"family"`
	Topology      string  `json:"topology"`
	Nodes         int     `json:"nodes"`
	Diameter      int     `json:"diameter"`
	Workload      string  `json:"workload"`
	Algorithm     string  `json:"algorithm,omitempty"`
	Discipline    string  `json:"discipline,omitempty"`
	View          string  `json:"view,omitempty"`   // direct(2.2) | leveled(2.1) | mesh(§3.4) | mesh(§3.3)
	Mode          string  `json:"mode,omitempty"`   // erew | crcw; empty = raw routing
	Engine        string  `json:"engine,omitempty"` // "event"; empty = synchronous rounds
	Fault         string  `json:"fault,omitempty"`  // fault-level label of event cells
	SkipPhase1    bool    `json:"skip_phase1,omitempty"`
	Hashed        bool    `json:"hashed,omitempty"`
	Paged         bool    `json:"paged,omitempty"`
	Workers       int     `json:"workers"`
	Trials        int     `json:"trials"`
	Seed          uint64  `json:"seed"`
	RoundsMean    float64 `json:"rounds_mean"`
	RoundsMax     int     `json:"rounds_max"`
	RoundsPerDiam float64 `json:"rounds_per_diam"`
	MaxQueue      int     `json:"max_queue"`
	// The emulation-mode extras (Theorems 2.5/2.6): on erew/crcw
	// cells RoundsMean/RoundsMax carry the emulated step cost
	// (routing rounds plus any rehash penalty), Merges the total CRCW
	// combining events and Rehashes the total rehash events across
	// trials, and MaxModuleLoad the largest per-module request load
	// observed.
	Merges        int `json:"merges,omitempty"`
	Rehashes      int `json:"rehashes,omitempty"`
	MaxModuleLoad int `json:"max_module_load,omitempty"`
	// Retransmits totals the event engine's dropped-and-retried
	// transmissions across trials (zero on round cells). On event
	// cells RoundsMean/RoundsMax/RoundsPerDiam price delivered time in
	// ticks rather than synchronous rounds.
	Retransmits int `json:"retransmits,omitempty"`
	// The memory-pricing fields (E19), filled on round-engine cells:
	// State names the link-state representation that actually priced
	// the cell ("dense", "paged" or "hashed"), Degraded that a
	// MemBudget demoted a dense/paged request to the hashed fallback,
	// TableBytes the engine's link-table footprint, ArenaBytes the
	// packet-arena slab footprint, and BPerNode their sum per network
	// node — the scaling figure E19 sweeps. Event cells leave them
	// empty (the event loop prices time, not table memory).
	State        string  `json:"state,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	TableBytes   int64   `json:"table_bytes,omitempty"`
	ArenaBytes   int64   `json:"arena_bytes,omitempty"`
	BPerNode     float64 `json:"b_per_node,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms,omitempty"`
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	// The distribution fields, filled only on Distribution cells: the
	// per-trial round counts and per-trial max queue lengths in trial
	// order (trial t runs seed Seed+t), the raw samples behind the
	// report layer's tail statistics and the adversarial search's
	// worst-seed identification. Off-by-default so historical artifacts
	// keep their exact bytes.
	TrialRounds []int `json:"trial_rounds,omitempty"`
	TrialMaxQ   []int `json:"trial_max_q,omitempty"`
	// The failure-isolation fields: a cell that panics, times out, is
	// canceled or cannot run lands in the sweep as an error line —
	// Error the message, ErrorKind the taxonomy value (panic |
	// timeout | canceled | invalid_spec) — with the metric fields
	// zero. Successful cells leave both empty.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
}

// Failed reports whether the result is an error line.
func (r Result) Failed() bool { return r.ErrorKind != "" }

// RunCell builds the cell's topology, gates its workload through the
// registry's capability check, routes Trials seeded repetitions on
// the appropriate router (the specialized §3.4 mesh router for
// permutation-class and local traffic on the mesh, the generic
// simulators elsewhere, with CRCW combining enabled for many-one
// traffic) and aggregates one Result. Packets come from one slab
// arena recycled across trials, so repeated cells stay on the
// engine's zero-allocation steady-state path.
func RunCell(c Cell) (Result, error) {
	return RunCellContext(context.Background(), c)
}

// RunCellContext is RunCell under a context: the deadline or
// cancellation is checked between trials and polled inside the
// engines' round and event loops (the engine's Abort unwind is caught
// here), so an expired context stops the cell within a round or a few
// thousand events and returns ctx.Err(). A context that never expires
// leaves results bit-identical to RunCell. Cell.Timeout is NOT
// applied here — it is RunCellSafe's job, so callers composing their
// own deadlines are not second-guessed.
func RunCellContext(ctx context.Context, c Cell) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(engine.Abort)
			if !ok {
				panic(r)
			}
			res, err = Result{}, a.Err
		}
	}()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	b := c.Built
	if b.Graph == nil && b.Spec == nil {
		// Fallback builds go through the process-wide build cache, so
		// benchmarks and servers rerunning one cell share a topology
		// even without Run's expansion filling Built.
		built, ref, err := buildcache.Default().Get(c.Topo.Family, topology.Params{N: c.Topo.N, K: c.Topo.K}, c.Topo.Leveled)
		if err != nil {
			return Result{}, err
		}
		defer ref.Release()
		b = built
	}
	gen, ok := workload.Lookup(c.Work.Name)
	if !ok {
		return Result{}, fmt.Errorf("unknown workload %q (known: %v)", c.Work.Name, workload.Names())
	}
	if err := gen.Check(b); err != nil {
		return Result{}, err
	}
	p := c.Work.params().Defaulted()
	if p.Fraction < 0 || p.Fraction > 1 {
		return Result{}, fmt.Errorf("workload %s: fraction %v out of [0,1]", c.Work.Name, p.Fraction)
	}
	if c.Topo.Leveled && b.Spec == nil {
		return Result{}, fmt.Errorf("%s has no leveled unrolling", b.Name())
	}
	if b.Nodes() > topology.MaxNodes {
		return Result{}, fmt.Errorf("%s has %d nodes, exceeding the simulator's node-id limit (%d)", b.Name(), b.Nodes(), topology.MaxNodes)
	}
	if c.Trials < 1 {
		c.Trials = 1
	}
	if c.Mode == ModeRoute {
		c.Mode = ""
	}
	if err := ModeCheck(c.Mode, gen.Class); err != nil {
		return Result{}, fmt.Errorf("workload %s: %w", c.Work.Name, err)
	}
	if c.Engine == EngineRound {
		c.Engine = ""
	}
	if err := EngineCheck(c.Engine); err != nil {
		return Result{}, err
	}
	if c.Engine != "" && c.Mode != "" {
		return Result{}, fmt.Errorf("the event engine prices raw routing only; %s cells use synchronous rounds", c.Mode)
	}
	if c.Mode != "" {
		return runEmulCell(ctx, b, gen, p, c)
	}
	// Event cells route generically even on the mesh: the §3.4
	// three-stage router is a synchronous construction.
	if c.Engine == "" && meshRouted(b, c.Topo, gen.Class, c.Mode) {
		return runMeshCell(ctx, b, b.Graph.(*mesh.Grid), gen, p, c)
	}
	return runGenericCell(ctx, b, gen, p, c)
}

// RunCellSafe prices the cell like RunCellContext but never panics
// and never fails the caller: Cell.Timeout is applied as a derived
// deadline, recovered panics and errors come back as a structured
// error Result carrying the cell's scenario key and the error
// taxonomy (see ErrKind*), so one poisoned cell costs one line.
func RunCellSafe(ctx context.Context, c Cell) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = errorResult(c, fmt.Errorf("panic: %v", r), ErrKindPanic)
		}
	}()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	r, err := RunCellContext(ctx, c)
	if err != nil {
		return errorResult(c, err, classifyErr(err))
	}
	r.Scenario = c.Key()
	// A budget demotion means the cell ran on a different link state
	// than its axes requested; the key records the resolved state so
	// the A/B pair cannot be read as two runs of one configuration.
	if r.Degraded {
		r.Scenario += "/state=" + r.State
	}
	return r
}

// errorResult is the structured error line of a failed cell: the
// identifying axes survive, the metrics stay zero, and the taxonomy
// fields say what happened. Error messages are deterministic (no
// wall-clock, no addresses), so journaled error lines reproduce.
func errorResult(c Cell, err error, kind string) Result {
	return Result{
		Scenario:  c.Key(),
		Family:    c.Topo.Family,
		Workload:  c.Work.Name,
		Workers:   c.Workers,
		Trials:    c.Trials,
		Seed:      c.Seed,
		Error:     err.Error(),
		ErrorKind: kind,
	}
}

// emulMemory is the minimum PRAM address-space size M of
// emulation-mode cells, matching cmd/pramemu's default. Networks up
// to 2^24 nodes use it as-is (keeping historical artifacts
// byte-identical); emulMemorySize doubles it for larger networks so
// every memory module still owns at least one address.
const emulMemory = 1 << 24

// emulMemorySize returns the PRAM address-space size for a network:
// the emulMemory default, doubled until it covers the node count.
func emulMemorySize(nodes int) uint64 {
	m := uint64(emulMemory)
	for m < uint64(nodes) {
		m <<= 1
	}
	return m
}

// leases recycles engine table and scratch allocations across cells:
// a cell checks a Lease out for its trials (the engine adopts it when
// the shape matches, reallocates otherwise) and returns it when done.
// Reuse is bit-invisible — the engine's drain/clearScratch invariants
// leave returned buffers logically empty — so pooled and fresh cells
// produce identical artifacts.
var leases = engine.NewLeasePool(0)

// leaseKey buckets cells whose engines resolve to identically-shaped
// state, so a pooled lease usually matches on adoption. The key is a
// heuristic only: the engine re-checks the actual shape and
// reallocates on mismatch, so a coarse bucket costs a miss, never
// correctness.
func leaseKey(c Cell) string {
	return fmt.Sprintf("%s/n=%d/k=%d/lv=%t/m=%s/w=%d/h=%t/p=%t/mb=%d",
		c.Topo.Family, c.Topo.N, c.Topo.K, c.Topo.Leveled, c.Mode, c.Workers, c.Hashed, c.Paged, c.MemBudget)
}

// memStats fills the Result's memory-pricing fields from the engine's
// resolved state and the cell arena's slab footprint. Event cells
// never reach it: the event loop prices time in ticks, not table
// memory, so their Results leave the fields empty.
func memStats(res Result, ms engine.MemStats, arena *packet.Arena) Result {
	res.State = ms.State.String()
	res.Degraded = ms.Degraded
	res.TableBytes = ms.TableBytes
	res.ArenaBytes = arena.Bytes()
	if res.Nodes > 0 {
		res.BPerNode = float64(res.TableBytes+res.ArenaBytes) / float64(res.Nodes)
	}
	return res
}

// emulNetwork adapts the cell's topology for the emulator, mirroring
// the route-mode dispatch: the specialized §3.3 two-phase scheme
// serves erew cells on the mesh, and everything else goes through the
// generic topology adapter — on the Algorithm 2.1 unrolling when the
// cell (or a leveled-only family) selects it, on the Algorithm
// 2.2-style point-to-point view otherwise. The returned view string
// names the router for reports.
func emulNetwork(ctx context.Context, b topology.Built, gen workload.Generator, c Cell, ms *engine.MemStats, lease *engine.Lease) (emul.Network, string, error) {
	if meshRouted(b, c.Topo, gen.Class, c.Mode) {
		alg, err := meshAlgorithm(c.Algorithm)
		if err != nil {
			return nil, "", err
		}
		disc, err := meshDiscipline(c.Discipline)
		if err != nil {
			return nil, "", err
		}
		net := &emul.MeshNetwork{
			G: b.Graph.(*mesh.Grid),
			Opts: mesh.Options{
				Context: ctx, Algorithm: alg, Discipline: disc,
				HashedKeys: c.Hashed, PagedKeys: c.Paged,
				MemBudget: c.MemBudget, MemStats: ms, Lease: lease,
			},
		}
		return net, "mesh(§3.3)", nil
	}
	var (
		net  *emul.TopologyNetwork
		view string
		err  error
	)
	if b.Graph != nil && !c.Topo.Leveled {
		net, err = emul.NewDirectTopologyNetwork(b)
		view = "direct(2.2)"
	} else {
		net, err = emul.NewTopologyNetwork(b)
		view = "leveled(2.1)"
	}
	if err != nil {
		return nil, "", err
	}
	net.Context = ctx
	net.SkipPhase1 = c.SkipPhase1
	net.HashedKeys = c.Hashed
	net.PagedKeys = c.Paged
	net.MemBudget = c.MemBudget
	net.MemStats = ms
	net.Lease = lease
	return net, view, nil
}

// runEmulCell prices one emulated PRAM step per trial instead of raw
// routing (Theorems 2.5/2.6): the workload's packets become the
// step's memory-access pattern via workload.StepRequests, the
// emulator hashes each address to its module and routes requests with
// read replies — combining enabled on crcw cells — and the recorded
// rounds are the step's total cost including any rehash penalty. Each
// trial draws a fresh hash function from the trial seed, so results
// derive from the spec alone. p arrives pre-defaulted and validated
// by RunCell.
func runEmulCell(ctx context.Context, b topology.Built, gen workload.Generator, p workload.Params, c Cell) (Result, error) {
	var ms engine.MemStats
	lk := leaseKey(c)
	lease := leases.Get(lk)
	defer leases.Put(lk, lease)
	net, view, err := emulNetwork(ctx, b, gen, c, &ms, lease)
	if err != nil {
		return Result{}, err
	}
	rounds := make([]int, 0, c.Trials)
	maxQs := make([]int, 0, c.Trials)
	merges, rehashes, maxLoad := 0, 0, 0
	arena := packet.GetArena()
	defer packet.PutArena(arena)
	start := time.Now()
	for trial := 0; trial < c.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s := c.Seed + uint64(trial)
		arena.Reset()
		pkts, err := gen.Generate(b, p, arena, s)
		if err != nil {
			return Result{}, err
		}
		reqs := workload.StepRequests(gen.Class, net.Nodes(), pkts)
		e, err := emul.New(net, emul.Config{
			Memory:  emulMemorySize(net.Nodes()),
			Seed:    s * 31,
			Combine: c.Mode == ModeCRCW,
			Workers: c.Workers,
		})
		if err != nil {
			return Result{}, err
		}
		stats, cost := e.RouteRequests(reqs)
		rounds = append(rounds, cost)
		maxQs = append(maxQs, stats.MaxQueue)
		if stats.MaxModuleLoad > maxLoad {
			maxLoad = stats.MaxModuleLoad
		}
		merges += stats.Merges
		rehashes += e.Rehashes()
	}
	res := Result{
		Family:        c.Topo.Family,
		Topology:      net.Name(),
		Nodes:         net.Nodes(),
		Diameter:      net.Diameter(),
		View:          view,
		Mode:          c.Mode,
		Merges:        merges,
		Rehashes:      rehashes,
		MaxModuleLoad: maxLoad,
	}
	if view == "mesh(§3.3)" {
		res.Algorithm = algName(c.Algorithm)
		res.Discipline = discName(c.Discipline)
	} else {
		// Only the generic adapters honor the ablation; the §3.3 mesh
		// scheme has no phase-1 switch, so the flag must not be
		// recorded as applied there.
		res.SkipPhase1 = c.SkipPhase1
	}
	res = memStats(res, ms, arena)
	return finish(res, c, rounds, maxQs, time.Since(start)), nil
}

// runMeshCell routes on the paper's specialized three-stage router.
// p arrives pre-defaulted and validated by RunCell.
func runMeshCell(ctx context.Context, b topology.Built, g *mesh.Grid, gen workload.Generator, p workload.Params, c Cell) (Result, error) {
	alg, err := meshAlgorithm(c.Algorithm)
	if err != nil {
		return Result{}, err
	}
	disc, err := meshDiscipline(c.Discipline)
	if err != nil {
		return Result{}, err
	}
	var ms engine.MemStats
	lk := leaseKey(c)
	lease := leases.Get(lk)
	defer leases.Put(lk, lease)
	opts := mesh.Options{
		Context:    ctx,
		Algorithm:  alg,
		Discipline: disc,
		Workers:    c.Workers,
		HashedKeys: c.Hashed,
		PagedKeys:  c.Paged,
		MemBudget:  c.MemBudget,
		MemStats:   &ms,
		Lease:      lease,
	}
	if gen.Class == workload.ClassLocal {
		opts.LocalityBound = p.D
		opts.SliceRows = max(1, p.D/4)
	}
	rounds := make([]int, 0, c.Trials)
	maxQs := make([]int, 0, c.Trials)
	arena := packet.GetArena()
	defer packet.PutArena(arena)
	start := time.Now()
	for trial := 0; trial < c.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s := c.Seed + uint64(trial)
		arena.Reset()
		pkts, err := gen.Generate(b, p, arena, s)
		if err != nil {
			return Result{}, err
		}
		opts.Seed = s * 31
		st := mesh.Route(g, pkts, opts)
		rounds = append(rounds, st.Rounds)
		maxQs = append(maxQs, st.MaxQueue)
	}
	res := Result{
		Family:     c.Topo.Family,
		Topology:   g.Name(),
		Nodes:      g.Nodes(),
		Diameter:   g.Diameter(),
		Algorithm:  algName(c.Algorithm),
		Discipline: discName(c.Discipline),
		View:       "mesh(§3.4)",
	}
	res = memStats(res, ms, arena)
	return finish(res, c, rounds, maxQs, time.Since(start)), nil
}

// runGenericCell routes on the generic simulators: Algorithm 2.1 on
// the leveled unrolling when the cell (or a leveled-only family)
// selects it, Algorithm 2.2 on the graph otherwise. p arrives
// pre-defaulted and validated by RunCell.
func runGenericCell(ctx context.Context, b topology.Built, gen workload.Generator, p workload.Params, c Cell) (Result, error) {
	useSpec := b.Graph == nil || (c.Topo.Leveled && b.Spec != nil)
	combine := gen.Needs&workload.NeedsCombining != 0
	var evOpts *engine.EventOptions
	if c.Engine == EngineEvent {
		var err error
		if evOpts, err = eventOptions(c.Latency, c.Fault); err != nil {
			return Result{}, err
		}
	}
	rounds := make([]int, 0, c.Trials)
	maxQs := make([]int, 0, c.Trials)
	retransmits := 0
	var ms engine.MemStats
	var lease *engine.Lease
	if c.Engine == "" {
		// Event cells keep their own link map; only round cells carry
		// engine tables worth recycling.
		lk := leaseKey(c)
		lease = leases.Get(lk)
		defer leases.Put(lk, lease)
	}
	arena := packet.GetArena()
	defer packet.PutArena(arena)
	start := time.Now()
	for trial := 0; trial < c.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		s := c.Seed + uint64(trial)
		arena.Reset()
		pkts, err := gen.Generate(b, p, arena, s)
		if err != nil {
			return Result{}, err
		}
		var r, q int
		if useSpec {
			st := leveled.Route(b.Spec, pkts, leveled.Options{
				Context: ctx,
				Seed:    s * 31, SkipPhase1: c.SkipPhase1, Workers: c.Workers,
				HashedKeys: c.Hashed, PagedKeys: c.Paged, MemBudget: c.MemBudget,
				MemStats: &ms, Lease: lease, Combine: combine, Event: evOpts,
			})
			r, q = st.Rounds, st.MaxQueue
			retransmits += st.Retransmits
		} else {
			st, err := simnet.Route(b.Graph, pkts, simnet.Options{
				Context: ctx,
				Seed:    s * 31, SkipPhase1: c.SkipPhase1, Workers: c.Workers,
				HashedKeys: c.Hashed, PagedKeys: c.Paged, MemBudget: c.MemBudget,
				MemStats: &ms, Lease: lease, Combine: combine, Event: evOpts,
			})
			if err != nil {
				return Result{}, err
			}
			r, q = st.Rounds, st.MaxQueue
			retransmits += st.Retransmits
		}
		rounds = append(rounds, r)
		maxQs = append(maxQs, q)
	}
	name, view := b.Name(), "direct(2.2)"
	if useSpec {
		name, view = b.Spec.Name(), "leveled(2.1)"
	}
	res := Result{
		Family:     c.Topo.Family,
		Topology:   name,
		Nodes:      b.Nodes(),
		Diameter:   b.Diameter(),
		View:       view,
		SkipPhase1: c.SkipPhase1,
	}
	if c.Engine == EngineEvent {
		res.Engine = EngineEvent
		res.Fault = c.Fault.Label()
		res.Retransmits = retransmits
	} else {
		res = memStats(res, ms, arena)
	}
	return finish(res, c, rounds, maxQs, time.Since(start)), nil
}

// finish fills the cell metadata and derived metrics shared by both
// routers. maxQs holds the per-trial max queue lengths in trial order,
// collapsed into MaxQueue here and kept raw (with the per-trial round
// counts) on Distribution cells.
func finish(res Result, c Cell, rounds, maxQs []int, elapsed time.Duration) Result {
	res.Workload = c.Work.Name
	res.Workers = c.Workers
	res.Trials = c.Trials
	res.Seed = c.Seed
	res.Hashed = c.Hashed
	res.Paged = c.Paged
	res.RoundsMean = mathx.MeanInts(rounds)
	res.RoundsMax = mathx.MaxInts(rounds)
	res.MaxQueue = mathx.MaxInts(maxQs)
	if c.Distribution {
		res.TrialRounds = rounds
		res.TrialMaxQ = maxQs
	}
	if res.Diameter > 0 {
		res.RoundsPerDiam = res.RoundsMean / float64(res.Diameter)
	}
	if c.Timing {
		res.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
		if elapsed > 0 {
			total := 0
			for _, r := range rounds {
				total += r
			}
			res.RoundsPerSec = float64(total) / elapsed.Seconds()
		}
	}
	return res
}

// algName canonicalizes the algorithm axis value for reports.
func algName(name string) string {
	if name == "" {
		return "threestage"
	}
	return name
}

// discName canonicalizes the discipline axis value for reports.
func discName(name string) string {
	if name == "" {
		return "furthest"
	}
	return name
}

// Run expands the spec into its grid and executes every cell over a
// pool of Spec.Pool workers. Results come back sorted by scenario key
// with the wall-clock fields zeroed (unless Spec.Timing asks for
// them), so the output is identical for any pool width — each cell's
// seeds derive from the spec alone, never from execution order. Axis
// values, workload parameters, emulation modes and capability
// pairings are validated during expansion, before any cell routes. A
// cell that still fails at run time (panic, timeout, invalid
// configuration) costs one structured error line, the grid keeps
// draining (unless Spec.FailFast), and the failures come back in
// aggregate as an *AggregateError alongside the full result set.
func Run(spec Spec) ([]Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run under a context: cancellation stops queued cells,
// aborts running ones within a round, and returns the completed
// results with ctx.Err(). Cells a sweep-level cancellation cut short
// produce no lines (they carry no verdict — a resumed sweep runs them
// again), unlike per-cell timeouts, which do.
func RunContext(ctx context.Context, spec Spec) ([]Result, error) {
	return RunContextOptions(ctx, spec, RunOptions{})
}

// RunOptions tunes Run beyond the spec itself.
type RunOptions struct {
	// Cache, when non-nil, resolves the spec's topology axis through
	// the shared build cache: every cell of one topology reference
	// pins a single cached Built for the duration of the sweep, and
	// successive sweeps reuse it. Results are identical with or
	// without a cache — builds are deterministic and Built is
	// immutable — only the build work is saved.
	Cache *buildcache.Cache
}

// RunContextOptions is RunContext with explicit options; see
// RunOptions for the knobs.
func RunContextOptions(ctx context.Context, spec Spec, opts RunOptions) ([]Result, error) {
	spec = spec.withDefaults()
	cells, release, err := spec.cells(opts.Cache)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenario: spec %q expands to no runnable cells", spec.Name)
	}
	return runCells(ctx, spec, cells, nil, nil)
}

// runCells executes the expanded grid over the spec's pool — the core
// Run, RunContext and RunJournaled share. Cells whose base key
// appears in skip return the cached Result without running (journal
// resume and retry passes); onDone, when non-nil, observes each
// freshly computed, non-dropped result serially (the journal's
// append hook). See RunContext for the cancellation contract.
func runCells(ctx context.Context, spec Spec, cells []Cell, skip map[string]Result, onDone func(Result)) ([]Result, error) {
	pool := spec.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if pool > len(cells) {
		pool = len(cells)
	}
	// FailFast cancels the grid's own context on the first failure;
	// the parent stays distinguishable so a user cancellation is not
	// misread as a failed sweep.
	runCtx := ctx
	cancel := context.CancelFunc(func() {})
	if spec.FailFast {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	results := make([]Result, len(cells))
	include := make([]bool, len(cells))
	var mu sync.Mutex // serializes onDone and guards nothing else
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if cached, ok := skip[cells[i].Key()]; ok {
					results[i], include[i] = cached, true
					continue
				}
				if runCtx.Err() != nil {
					// Canceled before starting: drop the cell entirely
					// so a resumed sweep runs it fresh.
					continue
				}
				r := RunCellSafe(runCtx, cells[i])
				if r.ErrorKind == ErrKindCanceled && runCtx.Err() != nil {
					// Aborted mid-run by sweep-level cancellation, not
					// a per-cell verdict: drop it too.
					continue
				}
				results[i], include[i] = r, true
				if r.Failed() && spec.FailFast {
					cancel()
				}
				if onDone != nil {
					mu.Lock()
					onDone(r)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	out := make([]Result, 0, len(cells))
	for i, ok := range include {
		if ok {
			out = append(out, results[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario < out[j].Scenario })
	if err := ctx.Err(); err != nil {
		return out, err
	}
	failed := 0
	var first Result
	for _, r := range out {
		if r.Failed() {
			if failed == 0 {
				first = r
			}
			failed++
		}
	}
	if failed > 0 {
		return out, &AggregateError{Failed: failed, Total: len(cells), First: first}
	}
	return out, nil
}

// ReadSpec parses a sweep spec from JSON, rejecting unknown fields so
// typos in axis names fail loudly instead of silently defaulting.
func ReadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s, nil
}

// WriteJSONL writes one JSON object per result line — the sweep
// artifact format.
func WriteJSONL(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
