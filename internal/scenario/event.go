// The event-engine axis of the sweep layer: the engine axis values,
// the latency-model and fault-level knobs of the Spec, and their
// mapping onto engine.EventOptions.

package scenario

import (
	"fmt"
	"strings"

	"pramemu/internal/engine"
)

// The engine axis values.
const (
	// EngineRound prices idealized synchronous rounds (the default).
	EngineRound = "round"
	// EngineEvent prices the asynchronous discrete-event engine: per-
	// link latency from the sweep's Latency model, sender-side
	// bandwidth caps and the fault axes of its FaultSpec level.
	EngineEvent = "event"
)

// EngineCheck validates an engine axis value.
func EngineCheck(name string) error {
	switch name {
	case "", EngineRound, EngineEvent:
		return nil
	default:
		return fmt.Errorf("unknown engine %q (known: %s, %s)", name, EngineRound, EngineEvent)
	}
}

// LatencySpec configures the event cells' link model. The zero value
// is fixed unit latency with a unit bandwidth gap — the synchronous
// round geometry under asynchronous scheduling.
type LatencySpec struct {
	// Model is the per-link latency distribution: "fixed" (default),
	// "jitter" (uniform in [base, base+jitter]) or "matrix" (base plus
	// the Manhattan distance between the endpoints' seeded coordinates
	// on a scale×scale grid — a per-node-pair delay matrix).
	Model string `json:"model,omitempty"`
	// Base is the minimum link crossing time in ticks (default 1).
	Base int `json:"base,omitempty"`
	// Jitter is the uniform extra-latency span of the jitter model.
	Jitter int `json:"jitter,omitempty"`
	// Scale is the coordinate-grid side of the matrix model (default 8).
	Scale int `json:"scale,omitempty"`
	// Gap is the sender-side bandwidth cap: minimum ticks between
	// transmission starts on one link (default 1).
	Gap int `json:"gap,omitempty"`
}

// withDefaults substitutes the documented defaults (mirroring
// engine.EventOptions) so key segments show the values a cell runs with.
func (l LatencySpec) withDefaults() LatencySpec {
	if l.Model == "" {
		l.Model = engine.LatencyFixed
	}
	if l.Base <= 0 {
		l.Base = 1
	}
	if l.Scale <= 0 {
		l.Scale = 8
	}
	if l.Gap <= 0 {
		l.Gap = 1
	}
	return l
}

// segment renders the canonical key segment, defaults substituted.
// Knobs the model does not read are omitted, so explicitly writing an
// unused default and leaving it zero produce one key (and one cell).
func (l LatencySpec) segment() string {
	l = l.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "%s,b%d", l.Model, l.Base)
	switch l.Model {
	case engine.LatencyJitter:
		fmt.Fprintf(&b, ",j%d", l.Jitter)
	case engine.LatencyMatrix:
		fmt.Fprintf(&b, ",s%d", l.Scale)
	}
	fmt.Fprintf(&b, ",g%d", l.Gap)
	return b.String()
}

// FaultSpec is one fault level of the Faults axis. The zero value is
// fault-free.
type FaultSpec struct {
	// Name labels the level in scenario keys and reports; when empty
	// the label is derived from the active knobs.
	Name string `json:"name,omitempty"`
	// LinkFailure is the probability a link starts the run in a
	// transient outage, repaired by a seeded tick in [1, RepairTime].
	LinkFailure float64 `json:"link_failure,omitempty"`
	// RepairTime bounds the outage duration in ticks (default 8*base).
	RepairTime int `json:"repair_time,omitempty"`
	// Straggler is the per-node slowdown probability; a straggler's
	// outgoing links have latency and gap multiplied by StragglerFactor.
	Straggler float64 `json:"straggler,omitempty"`
	// StragglerFactor is the slowdown multiple (default 4).
	StragglerFactor int `json:"straggler_factor,omitempty"`
	// Drop is the per-transmission loss probability (< 1); the sender
	// retransmits after RetransmitAfter ticks, counting retransmits.
	Drop float64 `json:"drop,omitempty"`
	// RetransmitAfter is the loss-detection timeout in ticks (default
	// 4*(base+jitter)).
	RetransmitAfter int `json:"retransmit_after,omitempty"`
}

// zero reports whether the level injects no faults.
func (f FaultSpec) zero() bool {
	return f.LinkFailure == 0 && f.Straggler == 0 && f.Drop == 0
}

// Label is the fault level's report label: its Name, a compact knob
// encoding, or "none".
func (f FaultSpec) Label() string {
	if f.Name != "" {
		return f.Name
	}
	if f.zero() {
		return "none"
	}
	var parts []string
	if f.LinkFailure > 0 {
		s := fmt.Sprintf("lf%g", f.LinkFailure)
		if f.RepairTime > 0 {
			s += fmt.Sprintf("r%d", f.RepairTime)
		}
		parts = append(parts, s)
	}
	if f.Straggler > 0 {
		s := fmt.Sprintf("st%g", f.Straggler)
		if f.StragglerFactor > 0 {
			s += fmt.Sprintf("x%d", f.StragglerFactor)
		}
		parts = append(parts, s)
	}
	if f.Drop > 0 {
		s := fmt.Sprintf("dp%g", f.Drop)
		if f.RetransmitAfter > 0 {
			s += fmt.Sprintf("t%d", f.RetransmitAfter)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "+")
}

// eventOptions maps the cell's latency and fault knobs onto the
// engine's event configuration, validating user input so bad knob
// values fail with an error before the engine's panic-level check.
func eventOptions(l LatencySpec, f FaultSpec) (*engine.EventOptions, error) {
	o := &engine.EventOptions{
		Model:           l.Model,
		Base:            l.Base,
		Jitter:          l.Jitter,
		Scale:           l.Scale,
		Gap:             l.Gap,
		LinkFailure:     f.LinkFailure,
		RepairTime:      f.RepairTime,
		Straggler:       f.Straggler,
		StragglerFactor: f.StragglerFactor,
		Drop:            f.Drop,
		RetransmitAfter: f.RetransmitAfter,
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("event engine: %w", err)
	}
	return o, nil
}
