// The derived-report pass: speedup rows group the engine-workers axis
// (with identical rounds along it — the engine invariant), class rows
// aggregate across families, timing fills the speedup column, and a
// JSONL artifact with report rows interleaved parses back into its
// result rows.
package scenario

import (
	"bytes"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestReportRows(t *testing.T) {
	results := mustRun(t, testSpec())
	rows := Report(results)
	speedups, classes := 0, 0
	groupRounds := make(map[string]float64)
	for _, r := range rows {
		switch r.Report {
		case "speedup":
			speedups++
			if r.Workers != 1 && r.Workers != 4 {
				t.Fatalf("unexpected workers value: %+v", r)
			}
			if r.Speedup != 0 {
				t.Fatalf("untimed sweep produced a speedup: %+v", r)
			}
			if prev, seen := groupRounds[r.Scenario]; seen && prev != r.RoundsMean {
				t.Fatalf("rounds diverged along the workers axis for %s: %v vs %v",
					r.Scenario, prev, r.RoundsMean)
			}
			groupRounds[r.Scenario] = r.RoundsMean
			if strings.Contains(r.Scenario, "/w=") {
				t.Fatalf("speedup group key retains a workers segment: %+v", r)
			}
		case "class":
			classes++
			if r.Cells == 0 || r.Families == 0 || r.RoundsPerDiamMean <= 0 {
				t.Fatalf("degenerate class row: %+v", r)
			}
		default:
			t.Fatalf("unknown report kind: %+v", r)
		}
	}
	// testSpec crosses workers {1, 4} everywhere: every one of the 18
	// cells lands in a speedup group of two.
	if speedups != len(results) {
		t.Fatalf("%d speedup rows for %d results", speedups, len(results))
	}
	// Two workload classes (permutation, many-one), route mode only.
	if classes != 2 {
		t.Fatalf("%d class rows, want 2", classes)
	}
}

func TestReportTimedSpeedup(t *testing.T) {
	spec := testSpec()
	spec.Timing = true
	rows := Report(mustRun(t, spec))
	sawBaseline, sawRatio := false, false
	for _, r := range rows {
		if r.Report != "speedup" {
			continue
		}
		if r.RoundsPerSec <= 0 {
			t.Fatalf("timed sweep left rounds/sec empty: %+v", r)
		}
		if r.Workers == 1 && r.Speedup == 1 {
			sawBaseline = true
		}
		if r.Workers == 4 && r.Speedup > 0 {
			sawRatio = true
		}
	}
	if !sawBaseline || !sawRatio {
		t.Fatalf("timed report missing baselines or ratios: baseline=%v ratio=%v", sawBaseline, sawRatio)
	}
}

// TestSpeedupBaselineResolvesAutoWorkers pins the baseline choice on
// a workers axis containing 0 (= GOMAXPROCS): the widest run must not
// sort first and become the "baseline" — that inverted every speedup.
// The baseline is the smallest EFFECTIVE worker count, and every ratio
// is taken against its throughput.
func TestSpeedupBaselineResolvesAutoWorkers(t *testing.T) {
	mk := func(workers int, rps float64) Result {
		return Result{
			Family:       "line",
			Topology:     "line[n=16,k=1]",
			Workload:     "perm",
			Workers:      workers,
			Scenario:     "line[n=16,k=1]/perm[h=1,d=1,f=1,hot=0]/w=" + strconv.Itoa(workers),
			RoundsMean:   10,
			RoundsPerSec: rps,
		}
	}
	axis := []Result{mk(0, 400), mk(1, 100), mk(4, 300)}
	rows := Report(axis)
	var speedups []ReportRow
	for _, r := range rows {
		if r.Report == "speedup" {
			speedups = append(speedups, r)
		}
	}
	if len(speedups) != 3 {
		t.Fatalf("%d speedup rows, want 3", len(speedups))
	}
	// The expected baseline under the fixed comparator: smallest
	// effective workers, raw value breaking ties (GOMAXPROCS-dependent,
	// so compute it the same way rather than hard-coding 1).
	base := axis[0]
	for _, r := range axis[1:] {
		if e, eb := effectiveWorkers(r.Workers), effectiveWorkers(base.Workers); e < eb ||
			(e == eb && r.Workers < base.Workers) {
			base = r
		}
	}
	if runtime.GOMAXPROCS(0) > 1 && base.Workers != 1 {
		t.Fatalf("expected the workers=1 run as baseline on a multi-core box, got %d", base.Workers)
	}
	for _, r := range speedups {
		var src Result
		for _, a := range axis {
			if a.Workers == r.Workers {
				src = a
			}
		}
		want := src.RoundsPerSec / base.RoundsPerSec
		if r.Speedup != want {
			t.Fatalf("workers=%d speedup %v, want %v (baseline workers=%d)",
				r.Workers, r.Speedup, want, base.Workers)
		}
	}
}

// TestWorkersStrippedKeyFallbackSeparatesModes pins the single-run
// grouping fallback: results without a sweep scenario key but
// differing in mode, engine/fault or the ablations must land in
// distinct speedup groups — collapsing them to family/workload mixed
// an EREW emulation with raw routing in one bogus ratio.
func TestWorkersStrippedKeyFallbackSeparatesModes(t *testing.T) {
	variants := []Result{
		{},
		{Mode: ModeEREW},
		{Mode: ModeCRCW, Hashed: true},
		{Engine: EngineEvent, Fault: "dp0.2t4"},
		{Discipline: "lifo", SkipPhase1: true},
	}
	var results []Result
	for _, v := range variants {
		for _, w := range []int{1, 4} {
			r := v
			r.Family = "line"
			r.Topology = "line[n=16,k=1]"
			r.Workload = "perm"
			r.Workers = w
			r.RoundsMean = 10
			r.RoundsPerSec = float64(100 * w)
			results = append(results, r)
		}
	}
	rows := speedupRows(results)
	if len(rows) != len(results) {
		t.Fatalf("%d speedup rows for %d results", len(rows), len(results))
	}
	groups := make(map[string]int)
	for _, r := range rows {
		groups[r.Scenario]++
	}
	if len(groups) != len(variants) {
		t.Fatalf("fallback keys collapsed %d variants into %d groups: %v",
			len(variants), len(groups), groups)
	}
	for key, n := range groups {
		if n != 2 {
			t.Fatalf("group %q has %d rows, want 2", key, n)
		}
	}
}

// TestReportDistRows pins the distribution layer: a sweep with
// "distribution": true carries the per-trial samples on every result,
// the derived report grows one "dist" row per workers-stripped group
// with tail statistics consistent with the raw samples, and the JSONL
// round trip preserves the arrays bit-exactly.
func TestReportDistRows(t *testing.T) {
	spec := testSpec()
	spec.Trials = 5
	spec.Distribution = true
	results := mustRun(t, spec)
	for _, r := range results {
		if len(r.TrialRounds) != spec.Trials || len(r.TrialMaxQ) != spec.Trials {
			t.Fatalf("distribution cell %s carries %d/%d samples, want %d",
				r.Scenario, len(r.TrialRounds), len(r.TrialMaxQ), spec.Trials)
		}
		rMax, qMax := r.TrialRounds[0], r.TrialMaxQ[0]
		for i := 1; i < spec.Trials; i++ {
			rMax = max(rMax, r.TrialRounds[i])
			qMax = max(qMax, r.TrialMaxQ[i])
		}
		if rMax != r.RoundsMax || qMax != r.MaxQueue {
			t.Fatalf("%s: trial arrays (max %d/%d) disagree with scalars (%d/%d)",
				r.Scenario, rMax, qMax, r.RoundsMax, r.MaxQueue)
		}
		if !strings.Contains(r.Scenario, "/dist") {
			t.Fatalf("distribution cell key lacks the /dist segment: %s", r.Scenario)
		}
	}
	rows := Report(results)
	dists := 0
	for _, row := range rows {
		if row.Report != "dist" {
			continue
		}
		dists++
		d := row.RoundsDist
		if d == nil || row.MaxQDist == nil {
			t.Fatalf("dist row without stats: %+v", row)
		}
		// The group pools both workers values: 2 cells × 5 trials.
		if d.N != 2*spec.Trials {
			t.Fatalf("dist row %s pooled %d samples, want %d", row.Scenario, d.N, 2*spec.Trials)
		}
		if d.P999 < d.P99 || float64(d.Max) < d.P999 || d.Mean > float64(d.Max) {
			t.Fatalf("inconsistent tail stats: %+v", *d)
		}
		total := 0
		for _, c := range d.Hist {
			total += c
		}
		if total != d.N || d.HistW < 1 {
			t.Fatalf("histogram does not partition the sample: %+v", *d)
		}
	}
	// One dist row per workers-stripped group: half the result count,
	// since the only crossed axis besides workers is the grid itself.
	if dists == 0 || dists != len(results)/2 {
		t.Fatalf("%d dist rows for %d results", dists, len(results))
	}
	var b bytes.Buffer
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadResults(&b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parsed {
		if !reflect.DeepEqual(parsed[i], results[i]) {
			t.Fatalf("distribution arrays mutated in the round trip:\n%+v\n%+v", parsed[i], results[i])
		}
	}
	tables := ReportTables(rows)
	if len(tables) != 3 {
		t.Fatalf("%d report tables for a distribution sweep, want 3", len(tables))
	}
	if tables[2].Rows() != dists {
		t.Fatalf("dist table has %d rows, want %d", tables[2].Rows(), dists)
	}
}

func TestReadResultsSkipsReportRows(t *testing.T) {
	results := mustRun(t, testSpec())
	var b bytes.Buffer
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJSONL(&b, Report(results)); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadResults(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(results) {
		t.Fatalf("round-tripped %d results, want %d", len(parsed), len(results))
	}
	for i := range parsed {
		if !reflect.DeepEqual(parsed[i], results[i]) {
			t.Fatalf("result %d mutated in the round trip:\n%+v\n%+v", i, parsed[i], results[i])
		}
	}
	if _, err := ReadResults(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
}

func TestReportTables(t *testing.T) {
	tables := ReportTables(Report(mustRun(t, testSpec())))
	if len(tables) != 2 {
		t.Fatalf("%d report tables, want 2", len(tables))
	}
	for _, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("empty report table:\n%s", tb)
		}
	}
	if !strings.Contains(tables[1].String(), "many-one") {
		t.Fatalf("class table lacks the many-one row:\n%s", tables[1])
	}
}
