// The derived-report pass: speedup rows group the engine-workers axis
// (with identical rounds along it — the engine invariant), class rows
// aggregate across families, timing fills the speedup column, and a
// JSONL artifact with report rows interleaved parses back into its
// result rows.
package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportRows(t *testing.T) {
	results := mustRun(t, testSpec())
	rows := Report(results)
	speedups, classes := 0, 0
	groupRounds := make(map[string]float64)
	for _, r := range rows {
		switch r.Report {
		case "speedup":
			speedups++
			if r.Workers != 1 && r.Workers != 4 {
				t.Fatalf("unexpected workers value: %+v", r)
			}
			if r.Speedup != 0 {
				t.Fatalf("untimed sweep produced a speedup: %+v", r)
			}
			if prev, seen := groupRounds[r.Scenario]; seen && prev != r.RoundsMean {
				t.Fatalf("rounds diverged along the workers axis for %s: %v vs %v",
					r.Scenario, prev, r.RoundsMean)
			}
			groupRounds[r.Scenario] = r.RoundsMean
			if strings.Contains(r.Scenario, "/w=") {
				t.Fatalf("speedup group key retains a workers segment: %+v", r)
			}
		case "class":
			classes++
			if r.Cells == 0 || r.Families == 0 || r.RoundsPerDiamMean <= 0 {
				t.Fatalf("degenerate class row: %+v", r)
			}
		default:
			t.Fatalf("unknown report kind: %+v", r)
		}
	}
	// testSpec crosses workers {1, 4} everywhere: every one of the 18
	// cells lands in a speedup group of two.
	if speedups != len(results) {
		t.Fatalf("%d speedup rows for %d results", speedups, len(results))
	}
	// Two workload classes (permutation, many-one), route mode only.
	if classes != 2 {
		t.Fatalf("%d class rows, want 2", classes)
	}
}

func TestReportTimedSpeedup(t *testing.T) {
	spec := testSpec()
	spec.Timing = true
	rows := Report(mustRun(t, spec))
	sawBaseline, sawRatio := false, false
	for _, r := range rows {
		if r.Report != "speedup" {
			continue
		}
		if r.RoundsPerSec <= 0 {
			t.Fatalf("timed sweep left rounds/sec empty: %+v", r)
		}
		if r.Workers == 1 && r.Speedup == 1 {
			sawBaseline = true
		}
		if r.Workers == 4 && r.Speedup > 0 {
			sawRatio = true
		}
	}
	if !sawBaseline || !sawRatio {
		t.Fatalf("timed report missing baselines or ratios: baseline=%v ratio=%v", sawBaseline, sawRatio)
	}
}

func TestReadResultsSkipsReportRows(t *testing.T) {
	results := mustRun(t, testSpec())
	var b bytes.Buffer
	if err := WriteJSONL(&b, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportJSONL(&b, Report(results)); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadResults(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(results) {
		t.Fatalf("round-tripped %d results, want %d", len(parsed), len(results))
	}
	for i := range parsed {
		if parsed[i] != results[i] {
			t.Fatalf("result %d mutated in the round trip:\n%+v\n%+v", i, parsed[i], results[i])
		}
	}
	if _, err := ReadResults(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
}

func TestReportTables(t *testing.T) {
	tables := ReportTables(Report(mustRun(t, testSpec())))
	if len(tables) != 2 {
		t.Fatalf("%d report tables, want 2", len(tables))
	}
	for _, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("empty report table:\n%s", tb)
		}
	}
	if !strings.Contains(tables[1].String(), "many-one") {
		t.Fatalf("class table lacks the many-one row:\n%s", tables[1])
	}
}
