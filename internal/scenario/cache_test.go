// The build-cache contract at the sweep layer: routing on cached
// topologies (and the pooled arenas and leased engine tables that
// ride along) is bit-invisible — a warm sweep's JSONL is byte-
// identical to a cold one — and one immutable Built value is safe to
// share across concurrent routing cells. TestSweep* runs under the
// race detector in CI, so the sharing is race-checked over all nine
// registered families.
package scenario

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"pramemu/internal/buildcache"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

// crossFamilyRefs names every registered family at the E14 quick
// comparable sizes.
func crossFamilyRefs() []TopoRef {
	return []TopoRef{
		{Family: "star", N: 5},
		{Family: "pancake", N: 5},
		{Family: "ttree", N: 5},
		{Family: "shuffle", N: 4},
		{Family: "debruijn", N: 8, K: 2},
		{Family: "hypercube", N: 8},
		{Family: "torus", N: 4, K: 4},
		{Family: "mesh", N: 16},
		{Family: "butterfly", N: 8},
	}
}

// TestSweepWarmCacheByteIdentity is the acceptance property of the
// build cache: a sweep run through a warm cache (every topology
// adopted, arenas and engine tables pooled) serializes byte-identical
// to a cold cache-less run — twice, so the second pass also proves
// released builds stay clean — and a disabled cache matches too. The
// Pool=4 runs route cells sharing one cached Built concurrently.
func TestSweepWarmCacheByteIdentity(t *testing.T) {
	spec := Spec{
		Name:             "cache-identity",
		Topologies:       crossFamilyRefs(),
		Workloads:        []WorkRef{{Name: "perm"}, {Name: "khot", Hot: 2}},
		Workers:          []int{1, 2},
		Trials:           2,
		Seed:             1991,
		Pool:             4,
		SkipIncompatible: true,
	}
	coldRes, err := RunContextOptions(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold := jsonl(t, coldRes)

	cache := buildcache.New(buildcache.DefaultBudget)
	for pass := 0; pass < 2; pass++ {
		res, err := RunContextOptions(context.Background(), spec, RunOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if got := jsonl(t, res); got != cold {
			t.Fatalf("cached pass %d drifted from the cold artifact:\n%s\nvs\n%s", pass, got, cold)
		}
	}
	st := cache.Stats()
	if st.Misses != int64(len(spec.Topologies)) {
		t.Errorf("Misses = %d over two passes, want %d (one build per family)", st.Misses, len(spec.Topologies))
	}
	if st.Hits != int64(len(spec.Topologies)) {
		t.Errorf("Hits = %d, want %d (second pass adopts every build)", st.Hits, len(spec.Topologies))
	}

	disabled := buildcache.New(-1)
	res, err := RunContextOptions(context.Background(), spec, RunOptions{Cache: disabled})
	if err != nil {
		t.Fatal(err)
	}
	if got := jsonl(t, res); got != cold {
		t.Fatalf("disabled-cache run drifted from the cold artifact")
	}
}

// TestSweepSharedBuiltConcurrentCells pins the contract the cache
// rests on: topology.Built is immutable and safe for concurrent use,
// so one cached build can serve many routing cells at once. Every
// registered family routes the same Built from four goroutines, each
// result compared against a sequential baseline.
func TestSweepSharedBuiltConcurrentCells(t *testing.T) {
	cache := buildcache.New(buildcache.DefaultBudget)
	for _, tr := range crossFamilyRefs() {
		b, ref, err := cache.Get(tr.Family, topology.Params{N: tr.N, K: tr.K}, tr.Leveled)
		if err != nil {
			t.Fatalf("%s: %v", tr.Family, err)
		}
		cell := Cell{
			Topo:    tr,
			Work:    WorkRef{Name: "perm"},
			Built:   b,
			Workers: 2,
			Trials:  1,
			Seed:    1991,
		}
		base, err := RunCell(cell)
		if err != nil {
			t.Fatalf("%s: %v", tr.Family, err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := RunCell(cell)
				if err != nil {
					t.Errorf("%s: concurrent cell: %v", tr.Family, err)
					return
				}
				if !reflect.DeepEqual(res, base) {
					t.Errorf("%s: concurrent cell on shared Built diverged:\n%+v\nvs\n%+v", tr.Family, res, base)
				}
			}()
		}
		wg.Wait()
		ref.Release()
	}
}
