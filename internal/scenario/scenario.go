// Package scenario turns (topology × workload × discipline ×
// emulation mode × ablations × engine workers × trials) grids into
// results: the declarative sweep layer the ROADMAP's "as many
// scenarios as you can imagine" north star calls for. A Spec names
// axes by registry key — the topology registry supplies the networks,
// the workload registry the traffic — so a family or generator
// registered tomorrow is sweepable with zero edits here. The mode
// axis decides what a cell prices: raw routing ("route"), or one
// emulated PRAM step per trial ("erew"/"crcw", Theorems 2.5/2.6)
// dispatched through internal/emul with the workload's packets as the
// step's memory accesses; the skip_phase1 and hashed axes are
// ablations, so A/B pairs land in one artifact. Run executes the
// cross-product in parallel over a worker pool and returns
// seed-deterministic, order-independent results: the JSONL a parallel
// sweep emits is line-for-line identical (after the built-in sort by
// scenario key) to a sequential run with the same seed. Report
// derives sweep-level summaries (workers-axis speedups, per-class
// aggregates across families) from the results.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pramemu/internal/buildcache"
	"pramemu/internal/mesh"
	"pramemu/internal/topology"
	"pramemu/internal/workload"
)

// TopoRef selects one topology configuration by registry name.
type TopoRef struct {
	// Family is the topology-registry key.
	Family string `json:"family"`
	// N and K are the registry's size parameters (0 = family default).
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// Leveled routes on the Algorithm 2.1 unrolling where one exists
	// (leveled-only families use theirs regardless).
	Leveled bool `json:"leveled,omitempty"`
}

// WorkRef selects one workload configuration by registry name.
type WorkRef struct {
	// Name is the workload-registry key.
	Name string `json:"name"`
	// H, D, Fraction and Hot map onto workload.Params (0 = default).
	H        int     `json:"h,omitempty"`
	D        int     `json:"d,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Hot      int     `json:"hot,omitempty"`
}

// params converts the reference into generator parameters.
func (w WorkRef) params() workload.Params {
	return workload.Params{H: w.H, D: w.D, Fraction: w.Fraction, Hot: w.Hot}
}

// Spec is one declarative sweep: the cross-product of its axes.
type Spec struct {
	// Name labels the sweep in logs; it does not affect results.
	Name string `json:"name,omitempty"`
	// Topologies and Workloads are the two registry-keyed axes.
	Topologies []TopoRef `json:"topologies"`
	Workloads  []WorkRef `json:"workloads"`
	// Disciplines is the mesh queueing-discipline axis ("furthest",
	// "fifo"); it expands only on cells the specialized §3.4 mesh
	// router serves and collapses to a single cell elsewhere.
	// Default: ["furthest"].
	Disciplines []string `json:"disciplines,omitempty"`
	// Modes is the emulation-mode axis. "route" prices raw routing
	// (the default); "erew" and "crcw" price one emulated PRAM step
	// per trial instead (Theorems 2.5 and 2.6): the workload's
	// packets become the step's memory-access pattern, requests are
	// hashed to modules and routed with read replies, and the cell's
	// rounds are the step's cost including any rehash penalty. CRCW
	// cells route with combining enabled; EREW cells carry only
	// exclusive (permutation-class) patterns — the registry's
	// NeedsCombining workloads are gated to crcw cells.
	// Default: ["route"].
	Modes []string `json:"modes,omitempty"`
	// Mode is the single-value shorthand for Modes (a spec with
	// `"mode": "crcw"` is the one-mode sweep).
	Mode string `json:"mode,omitempty"`
	// SkipPhase1 is the randomizing-phase ablation axis: true cells
	// route deterministically with no phase-1 detour. It expands on
	// every cell the generic routers or the emulator serve and
	// collapses on the specialized mesh router (whose three-stage
	// structure has no such switch). Default: [false].
	SkipPhase1 []bool `json:"skip_phase1,omitempty"`
	// Hashed is the engine link-state ablation axis: true cells force
	// the hashed-map fallback instead of the dense tables (identical
	// results, different cost — the A/B pair lands in one artifact).
	// Default: [false].
	Hashed []bool `json:"hashed,omitempty"`
	// Paged is the paged-table ablation axis: true cells force the
	// engine's paged dense tables even on key spaces small enough for
	// flat tables (identical results — the flat/paged A/B pair lands
	// in one artifact). Networks past the flat-table cap route paged
	// regardless; the per-cell resolved state lands in Result.State.
	// Cells where both Hashed and Paged are true are dropped (the two
	// forces contradict). Collapses on event cells, like Hashed.
	// Default: [false].
	Paged []bool `json:"paged,omitempty"`
	// MemBudget caps the engine's fixed link-table footprint in bytes
	// on every cell of the sweep; a dense or paged resolution over
	// budget degrades to the hashed fallback and the cell records
	// Degraded plus a "/state=hashed" key suffix. Zero means no
	// budget.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// Engines is the engine axis: "round" prices idealized synchronous
	// rounds (the default), "event" the asynchronous discrete-event
	// engine with the sweep's Latency model and Faults levels. Event
	// cells route on the generic simulators (the specialized mesh
	// router is a synchronous construction), so the discipline/
	// algorithm axis collapses on them, as do the emulation modes
	// (erew/crcw price the synchronous PRAM step model) and the hashed
	// ablation (the event loop keeps its own link map).
	// Default: ["round"].
	Engines []string `json:"engines,omitempty"`
	// Engine is the single-value shorthand for Engines.
	Engine string `json:"engine,omitempty"`
	// Latency configures the event cells' link model (nil = fixed
	// unit latency, the synchronous round geometry with asynchronous
	// scheduling). Round cells ignore it.
	Latency *LatencySpec `json:"latency,omitempty"`
	// Faults is the fault-level axis: each entry expands every event
	// cell into one cell per level (round cells collapse the axis).
	// Default: one fault-free level.
	Faults []FaultSpec `json:"faults,omitempty"`
	// Workers is the round-engine worker axis (1 = sequential; any
	// value yields identical results, which a sweep over {1, n}
	// verifies end to end). The event engine is sequential by
	// construction, so on event cells the axis is verified vacuously.
	// Default: [1].
	Workers []int `json:"workers,omitempty"`
	// Trials is the seeded repetition count per cell (default 3).
	Trials int `json:"trials,omitempty"`
	// Distribution records the per-trial rounds and max-queue samples
	// on every result line (trial_rounds / trial_max_q), feeding the
	// report layer's distribution rows (max/p99/p999/stddev/histogram
	// over trials) and the adversarial seed sweeps. Off by default so
	// historical artifacts keep their exact bytes.
	Distribution bool `json:"distribution,omitempty"`
	// Seed is the base seed shared by every cell (default 1991), so a
	// sweep cell reproduces the routebench invocation with the same
	// parameters exactly.
	Seed uint64 `json:"seed,omitempty"`
	// Algorithm selects the mesh routing algorithm for mesh-routed
	// cells ("threestage", "vb", "greedy"; default "threestage").
	Algorithm string `json:"algorithm,omitempty"`
	// Pool is the sweep's own worker-pool width: how many cells run
	// concurrently (0 = GOMAXPROCS, 1 = sequential). Results are
	// identical for any value.
	Pool int `json:"pool,omitempty"`
	// SkipIncompatible drops (family, workload) and (mode, workload)
	// pairs whose capability check fails instead of failing the sweep
	// — the knob the full-matrix E16/E17 pricings use.
	SkipIncompatible bool `json:"skip_incompatible,omitempty"`
	// Timing fills each cell's wall-clock fields (elapsed_ms,
	// rounds_per_sec). Timed JSONL is NOT byte-reproducible — leave
	// it off for artifacts; `routebench -sweep -report` turns it on
	// internally to compute speedups, then strips the wall-clock
	// fields from the result lines it emits.
	Timing bool `json:"timing,omitempty"`
	// TimeoutMS deadlines each cell individually: a cell exceeding it
	// is cut off (the engines poll cancellation cheaply) and lands in
	// the output as a structured error line with error_kind "timeout"
	// instead of killing the sweep. Zero means no per-cell deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FailFast cancels the remaining cells when one cell fails hard
	// (panic, timeout, or an invalid cell) instead of draining the
	// grid: the failing cell's error line is emitted, queued cells are
	// dropped. Default off — a poisoned cell then costs exactly one
	// error line and every other cell still prices.
	FailFast bool `json:"fail_fast,omitempty"`
}

// withDefaults substitutes the documented axis defaults.
func (s Spec) withDefaults() Spec {
	if len(s.Disciplines) == 0 {
		s.Disciplines = []string{"furthest"}
	}
	if s.Engine != "" {
		s.Engines = append(s.Engines, s.Engine)
		s.Engine = ""
	}
	if len(s.Engines) == 0 {
		s.Engines = []string{EngineRound}
	}
	if len(s.Faults) == 0 {
		s.Faults = []FaultSpec{{}}
	}
	if s.Mode != "" {
		s.Modes = append(s.Modes, s.Mode)
		s.Mode = ""
	}
	if len(s.Modes) == 0 {
		s.Modes = []string{ModeRoute}
	}
	if len(s.SkipPhase1) == 0 {
		s.SkipPhase1 = []bool{false}
	}
	if len(s.Hashed) == 0 {
		s.Hashed = []bool{false}
	}
	if len(s.Paged) == 0 {
		s.Paged = []bool{false}
	}
	if len(s.Workers) == 0 {
		s.Workers = []int{1}
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	if s.Seed == 0 {
		s.Seed = 1991
	}
	if s.Algorithm == "" {
		s.Algorithm = "threestage"
	}
	return s
}

// Cell is one point of a sweep grid — everything RunCell needs to
// produce one Result. Commands construct single cells directly; Run
// expands a Spec into them.
type Cell struct {
	Topo TopoRef
	Work WorkRef
	// Built optionally carries the pre-built topology (Run's expansion
	// fills it; benchmarks repeating one cell should too). Zero means
	// RunCell builds from Topo. Graphs are stateless and concurrent-
	// safe, so one Built may back many cells.
	Built      topology.Built
	Discipline string // mesh queue discipline; "" = furthest
	Algorithm  string // mesh routing algorithm; "" = threestage
	Mode       string // route | erew | crcw; "" = route
	// Engine selects the pricing engine: "" or "round" the synchronous
	// round loop, "event" the asynchronous discrete-event loop with
	// the cell's Latency model and Fault level.
	Engine  string
	Latency LatencySpec // event cells: link latency/bandwidth model
	Fault   FaultSpec   // event cells: fault level
	Workers int         // round-engine workers (0 = GOMAXPROCS)
	Trials  int
	Seed    uint64
	// Distribution keeps the per-trial rounds and max-queue samples on
	// the Result (TrialRounds/TrialMaxQ) instead of collapsing them
	// into mean/max only — the raw material of the report layer's
	// distribution rows and the adversarial search's seed sweeps.
	Distribution bool
	SkipPhase1   bool // ablation: no randomizing phase
	Hashed       bool // force the engine's hashed-map link state
	Paged        bool // force the engine's paged dense tables
	// MemBudget caps the engine's fixed link-table footprint in bytes
	// (0 = no budget); over-budget dense/paged resolutions degrade to
	// the hashed fallback and the Result records Degraded.
	MemBudget int64
	Timing    bool // fill ElapsedMS/RoundsPerSec (wall-clock, so
	// sweeps leave it off to keep JSONL deterministic)
	// Timeout deadlines the cell: RunCellSafe derives a per-cell
	// context from it and converts expiry into a "timeout" error
	// Result. Zero means no deadline.
	Timeout time.Duration
}

// Key is the cell's canonical scenario key: the JSONL sort key and
// the Scenario field of its Result. Workload parameters appear with
// their defaults substituted — the values the cell actually runs with
// — so cells that differ only in explicit-default vs zero parameters
// share one key (and identical results).
func (c Cell) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[n=%d,k=%d", c.Topo.Family, c.Topo.N, c.Topo.K)
	if c.Topo.Leveled {
		b.WriteString(",leveled")
	}
	p := c.Work.params().Defaulted()
	fmt.Fprintf(&b, "]/%s[h=%d,d=%d,f=%g,hot=%d]", c.Work.Name, p.H, p.D, p.Fraction, p.Hot)
	if c.Algorithm != "" {
		fmt.Fprintf(&b, "/alg=%s", c.Algorithm)
	}
	if c.Discipline != "" {
		fmt.Fprintf(&b, "/disc=%s", c.Discipline)
	}
	if c.Mode != "" && c.Mode != ModeRoute {
		fmt.Fprintf(&b, "/mode=%s", c.Mode)
	}
	if c.Engine != "" && c.Engine != EngineRound {
		fmt.Fprintf(&b, "/eng=%s/lat=%s", c.Engine, c.Latency.segment())
		if !c.Fault.zero() || c.Fault.Name != "" {
			fmt.Fprintf(&b, "/fault=%s", c.Fault.Label())
		}
	}
	if c.SkipPhase1 {
		b.WriteString("/nophase1")
	}
	if c.Hashed {
		b.WriteString("/hashedkeys")
	}
	if c.Paged {
		b.WriteString("/pagedkeys")
	}
	if c.MemBudget > 0 {
		fmt.Fprintf(&b, "/mem=%d", c.MemBudget)
	}
	if c.Distribution {
		// Distribution cells carry extra fields on their lines, so a
		// journaled non-distribution line must not satisfy one on resume.
		b.WriteString("/dist")
	}
	fmt.Fprintf(&b, "/w=%d", c.Workers)
	return b.String()
}

// The emulation-mode axis values.
const (
	// ModeRoute prices raw routing of the workload's packets.
	ModeRoute = "route"
	// ModeEREW prices one emulated EREW PRAM step per trial
	// (Theorem 2.5): exclusive accesses, no combining.
	ModeEREW = "erew"
	// ModeCRCW prices one emulated CRCW PRAM step per trial with
	// en-route combining (Theorem 2.6).
	ModeCRCW = "crcw"
)

// ModeCheck reports whether the named emulation mode can carry the
// given traffic class, naming the mismatch otherwise — the mode twin
// of workload.Generator.Check. Relations have no single-step PRAM
// form (a PRAM processor issues at most one request per step), and
// many-one or collision-prone traffic is concurrent access, which
// only the crcw mode's combining may carry.
func ModeCheck(mode string, class workload.Class) error {
	switch mode {
	case "", ModeRoute:
		return nil
	case ModeEREW:
		switch class {
		case workload.ClassPermutation:
			return nil
		case workload.ClassRelation:
			return fmt.Errorf("%s traffic has no single-step PRAM form (one request per processor per step)", class)
		default:
			return fmt.Errorf("%s traffic may touch one address concurrently; erew cells carry only permutation-class patterns (use crcw)", class)
		}
	case ModeCRCW:
		if class == workload.ClassRelation {
			return fmt.Errorf("%s traffic has no single-step PRAM form (one request per processor per step)", class)
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q (known: %s, %s, %s)", mode, ModeRoute, ModeEREW, ModeCRCW)
	}
}

// buildTopo resolves one topology reference: through the build cache
// when one is supplied (the returned Ref pins the entry until
// released; nil when the cache is disabled), by a direct registry
// build otherwise.
func buildTopo(cache *buildcache.Cache, tr TopoRef) (topology.Built, *buildcache.Ref, error) {
	if cache == nil {
		b, err := topology.Build(tr.Family, topology.Params{N: tr.N, K: tr.K})
		return b, nil, err
	}
	return cache.Get(tr.Family, topology.Params{N: tr.N, K: tr.K}, tr.Leveled)
}

// cells expands the spec into its grid, validating every axis value
// up front: unknown families, workloads or disciplines and
// incompatible (family, workload) pairs fail here — with the error
// naming the missing capability — before any routing runs. A non-nil
// cache resolves the topology axis through it: every cell of one
// topology reference shares a single cached Built. The returned
// release function drops the cache references pinning those builds —
// call it once routing is done (it is non-nil exactly when err is
// nil, and safe to call with no cache).
func (s Spec) cells(cache *buildcache.Cache) (cells []Cell, release func(), err error) {
	var refs []*buildcache.Ref
	releaseRefs := func() {
		for _, r := range refs {
			r.Release()
		}
	}
	release = releaseRefs
	// Error returns null the named release, so drop the refs here —
	// callers only see a usable release on success.
	defer func() {
		if err != nil {
			releaseRefs()
		}
	}()
	if len(s.Topologies) == 0 {
		return nil, nil, &SpecError{Field: "topologies", Err: fmt.Errorf("spec needs at least one topology")}
	}
	if len(s.Workloads) == 0 {
		return nil, nil, &SpecError{Field: "workloads", Err: fmt.Errorf("spec needs at least one workload")}
	}
	if s.Trials < 0 {
		return nil, nil, &SpecError{Field: "trials", Err: fmt.Errorf("negative trial count %d", s.Trials)}
	}
	if s.TimeoutMS < 0 {
		return nil, nil, &SpecError{Field: "timeout_ms", Err: fmt.Errorf("negative per-cell timeout %d", s.TimeoutMS)}
	}
	// Forcing the hashed map and the paged tables on every cell at once
	// contradicts (the expansion drops hashed∧paged combinations), so a
	// spec whose axes admit nothing else is malformed, not empty.
	if allBool(s.Hashed, true) && allBool(s.Paged, true) {
		return nil, nil, &SpecError{Field: "paged", Err: fmt.Errorf("hashed [true] and paged [true] contradict: a cell cannot force both link states")}
	}
	if _, err := meshAlgorithm(s.Algorithm); err != nil {
		return nil, nil, &SpecError{Field: "algorithm", Err: err}
	}
	for _, d := range s.Disciplines {
		if _, err := meshDiscipline(d); err != nil {
			return nil, nil, &SpecError{Field: "disciplines", Err: err}
		}
	}
	for _, m := range s.Modes {
		// Unknown mode names are spec errors regardless of
		// SkipIncompatible; ModeCheck against the always-legal
		// permutation class isolates the name validation.
		if err := ModeCheck(m, workload.ClassPermutation); err != nil {
			return nil, nil, &SpecError{Field: "modes", Err: err}
		}
	}
	for _, e := range s.Engines {
		if err := EngineCheck(e); err != nil {
			return nil, nil, &SpecError{Field: "engines", Err: err}
		}
	}
	var specLatency LatencySpec
	if s.Latency != nil {
		specLatency = *s.Latency
	}
	// The latency model validates alone first (against a fault-free
	// level), so a bad model name reports under its own field rather
	// than whichever fault level trips over it.
	if _, err := eventOptions(specLatency, FaultSpec{}); err != nil {
		return nil, nil, &SpecError{Field: "latency", Err: err}
	}
	seenFaults := make(map[string]bool)
	for _, f := range s.Faults {
		// Knob validation is engine-independent; the label check keeps
		// scenario keys unique across the fault axis.
		if _, err := eventOptions(specLatency, f); err != nil {
			return nil, nil, &SpecError{Field: "faults", Err: err}
		}
		if label := f.Label(); seenFaults[label] {
			return nil, nil, &SpecError{Field: "faults", Err: fmt.Errorf("duplicate fault level %q", label)}
		} else {
			seenFaults[label] = true
		}
	}
	for _, tr := range s.Topologies {
		b, ref, err := buildTopo(cache, tr)
		if err != nil {
			return nil, nil, &SpecError{Field: "topologies", Err: err}
		}
		if ref != nil {
			refs = append(refs, ref)
		}
		if tr.Leveled && b.Spec == nil {
			return nil, nil, &SpecError{Field: "topologies", Err: fmt.Errorf("%s has no leveled unrolling", b.Name())}
		}
		if b.Nodes() > topology.MaxNodes {
			return nil, nil, &SpecError{Field: "topologies", Err: fmt.Errorf("%s has %d nodes, exceeding the simulator's node-id limit (%d)", b.Name(), b.Nodes(), topology.MaxNodes)}
		}
		for _, wr := range s.Workloads {
			gen, ok := workload.Lookup(wr.Name)
			if !ok {
				return nil, nil, &SpecError{Field: "workloads", Err: fmt.Errorf("unknown workload %q (known: %v)", wr.Name, workload.Names())}
			}
			if f := wr.Fraction; f < 0 || f > 1 {
				return nil, nil, &SpecError{Field: "workloads", Err: fmt.Errorf("workload %s: fraction %v out of [0,1]", wr.Name, f)}
			}
			if err := gen.Check(b); err != nil {
				if s.SkipIncompatible {
					continue
				}
				return nil, nil, &SpecError{Field: "workloads", Err: err}
			}
			for _, mode := range s.Modes {
				if mode == ModeRoute {
					mode = ""
				}
				if err := ModeCheck(mode, gen.Class); err != nil {
					if s.SkipIncompatible {
						continue
					}
					return nil, nil, &SpecError{Field: "modes", Err: fmt.Errorf("workload %s: %w", wr.Name, err)}
				}
				// The engine axis collapses on emulation-mode cells:
				// erew/crcw price the synchronous PRAM step model.
				engines := s.Engines
				if mode != "" {
					engines = []string{EngineRound}
				}
				for _, eng := range engines {
					if eng == EngineRound {
						eng = ""
					}
					// Axes that only some routers honor collapse on the
					// rest so the grid has no duplicate rows: the
					// discipline/algorithm axis distinguishes cells the
					// specialized mesh router serves, the skip-phase-1
					// ablation every cell except those (the three-stage
					// mesh router has no such switch). Event cells route
					// generically — the §3.4 router is a synchronous
					// construction — and ignore the hashed ablation (the
					// event loop keeps its own link map), so both
					// collapse there; the fault axis expands only on
					// event cells.
					meshSpecial := eng == "" && meshRouted(b, tr, gen.Class, mode)
					disciplines := s.Disciplines
					algorithm := s.Algorithm
					skips := s.SkipPhase1
					if !meshSpecial {
						disciplines = []string{""}
						algorithm = ""
					} else {
						skips = []bool{false}
					}
					hashes := s.Hashed
					pages := s.Paged
					faults := []FaultSpec{{}}
					var latency LatencySpec
					if eng != "" {
						hashes = []bool{false}
						pages = []bool{false}
						faults = s.Faults
						latency = specLatency
					}
					for _, disc := range disciplines {
						for _, skip := range skips {
							for _, hashed := range hashes {
								for _, paged := range pages {
									// Forcing the hashed map and the paged
									// tables at once contradicts; the grid
									// keeps only the coherent combinations.
									if hashed && paged {
										continue
									}
									for _, fault := range faults {
										for _, w := range s.Workers {
											cells = append(cells, Cell{
												Topo:         tr,
												Work:         wr,
												Built:        b,
												Discipline:   disc,
												Algorithm:    algorithm,
												Mode:         mode,
												Engine:       eng,
												Latency:      latency,
												Fault:        fault,
												Workers:      w,
												Trials:       s.Trials,
												Seed:         s.Seed,
												Distribution: s.Distribution,
												SkipPhase1:   skip,
												Hashed:       hashed,
												Paged:        paged,
												MemBudget:    s.MemBudget,
												Timing:       s.Timing,
												Timeout:      time.Duration(s.TimeoutMS) * time.Millisecond,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key() < cells[j].Key() })
	return cells, release, nil
}

// meshRouted reports whether the cell runs on the paper's specialized
// mesh machinery: a mesh grid, not forced onto a leveled view,
// carrying traffic it is defined for. In route mode that is the §3.4
// three-stage router on permutation-class and local traffic; in erew
// mode the §3.3 two-phase step scheme (request leg, reply leg, both
// on the three-stage router). Everything else — h-relations and
// many-one route-mode traffic on the mesh, and crcw-mode cells, whose
// combining is a leveled/direct-view mechanism (Thm 2.6) the EREW
// mesh scheme of Thm 3.2 does not have — routes generically on the
// graph view.
func meshRouted(b topology.Built, tr TopoRef, class workload.Class, mode string) bool {
	if tr.Leveled {
		return false
	}
	if _, ok := b.Graph.(*mesh.Grid); !ok {
		return false
	}
	switch mode {
	case "", ModeRoute:
		return class == workload.ClassPermutation || class == workload.ClassLocal
	case ModeEREW:
		return true
	default: // crcw
		return false
	}
}

// meshAlgorithm resolves the algorithm axis value.
func meshAlgorithm(name string) (mesh.Algorithm, error) {
	switch name {
	case "", "threestage":
		return mesh.ThreeStage, nil
	case "vb":
		return mesh.ValiantBrebner, nil
	case "greedy":
		return mesh.Greedy, nil
	default:
		return 0, fmt.Errorf("unknown mesh algorithm %q", name)
	}
}

// allBool reports whether vs is non-empty and every value equals want.
func allBool(vs []bool, want bool) bool {
	if len(vs) == 0 {
		return false
	}
	for _, v := range vs {
		if v != want {
			return false
		}
	}
	return true
}

// meshDiscipline resolves the discipline axis value.
func meshDiscipline(name string) (mesh.Discipline, error) {
	switch name {
	case "", "furthest":
		return mesh.FurthestFirst, nil
	case "fifo":
		return mesh.FIFODiscipline, nil
	default:
		return 0, fmt.Errorf("unknown mesh discipline %q", name)
	}
}
