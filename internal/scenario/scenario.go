// Package scenario turns (topology × workload × discipline × engine
// workers × trials) grids into routing results: the declarative sweep
// layer the ROADMAP's "as many scenarios as you can imagine" north
// star calls for. A Spec names axes by registry key — the topology
// registry supplies the networks, the workload registry the traffic —
// so a family or generator registered tomorrow is sweepable with zero
// edits here. Run executes the cross-product in parallel over a
// worker pool and returns seed-deterministic, order-independent
// results: the JSONL a parallel sweep emits is line-for-line
// identical (after the built-in sort by scenario key) to a sequential
// run with the same seed.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"pramemu/internal/mesh"
	"pramemu/internal/topology"
	"pramemu/internal/workload"
)

// TopoRef selects one topology configuration by registry name.
type TopoRef struct {
	// Family is the topology-registry key.
	Family string `json:"family"`
	// N and K are the registry's size parameters (0 = family default).
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// Leveled routes on the Algorithm 2.1 unrolling where one exists
	// (leveled-only families use theirs regardless).
	Leveled bool `json:"leveled,omitempty"`
}

// WorkRef selects one workload configuration by registry name.
type WorkRef struct {
	// Name is the workload-registry key.
	Name string `json:"name"`
	// H, D, Fraction and Hot map onto workload.Params (0 = default).
	H        int     `json:"h,omitempty"`
	D        int     `json:"d,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	Hot      int     `json:"hot,omitempty"`
}

// params converts the reference into generator parameters.
func (w WorkRef) params() workload.Params {
	return workload.Params{H: w.H, D: w.D, Fraction: w.Fraction, Hot: w.Hot}
}

// Spec is one declarative sweep: the cross-product of its axes.
type Spec struct {
	// Name labels the sweep in logs; it does not affect results.
	Name string `json:"name,omitempty"`
	// Topologies and Workloads are the two registry-keyed axes.
	Topologies []TopoRef `json:"topologies"`
	Workloads  []WorkRef `json:"workloads"`
	// Disciplines is the mesh queueing-discipline axis ("furthest",
	// "fifo"); it expands only on cells the specialized §3.4 mesh
	// router serves and collapses to a single cell elsewhere.
	// Default: ["furthest"].
	Disciplines []string `json:"disciplines,omitempty"`
	// Workers is the round-engine worker axis (1 = sequential; any
	// value yields identical results, which a sweep over {1, n}
	// verifies end to end). Default: [1].
	Workers []int `json:"workers,omitempty"`
	// Trials is the seeded repetition count per cell (default 3).
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed shared by every cell (default 1991), so a
	// sweep cell reproduces the routebench invocation with the same
	// parameters exactly.
	Seed uint64 `json:"seed,omitempty"`
	// Algorithm selects the mesh routing algorithm for mesh-routed
	// cells ("threestage", "vb", "greedy"; default "threestage").
	Algorithm string `json:"algorithm,omitempty"`
	// Pool is the sweep's own worker-pool width: how many cells run
	// concurrently (0 = GOMAXPROCS, 1 = sequential). Results are
	// identical for any value.
	Pool int `json:"pool,omitempty"`
	// SkipIncompatible drops (family, workload) pairs whose
	// capability check fails instead of failing the sweep — the knob
	// the full-matrix E16 pricing uses.
	SkipIncompatible bool `json:"skip_incompatible,omitempty"`
}

// withDefaults substitutes the documented axis defaults.
func (s Spec) withDefaults() Spec {
	if len(s.Disciplines) == 0 {
		s.Disciplines = []string{"furthest"}
	}
	if len(s.Workers) == 0 {
		s.Workers = []int{1}
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	if s.Seed == 0 {
		s.Seed = 1991
	}
	if s.Algorithm == "" {
		s.Algorithm = "threestage"
	}
	return s
}

// Cell is one point of a sweep grid — everything RunCell needs to
// produce one Result. Commands construct single cells directly; Run
// expands a Spec into them.
type Cell struct {
	Topo TopoRef
	Work WorkRef
	// Built optionally carries the pre-built topology (Run's expansion
	// fills it; benchmarks repeating one cell should too). Zero means
	// RunCell builds from Topo. Graphs are stateless and concurrent-
	// safe, so one Built may back many cells.
	Built      topology.Built
	Discipline string // mesh queue discipline; "" = furthest
	Algorithm  string // mesh routing algorithm; "" = threestage
	Workers    int    // round-engine workers (0 = GOMAXPROCS)
	Trials     int
	Seed       uint64
	SkipPhase1 bool // ablation: no randomizing phase
	Hashed     bool // force the engine's hashed-map link state
	Timing     bool // fill ElapsedMS/RoundsPerSec (wall-clock, so
	// sweeps leave it off to keep JSONL deterministic)
}

// Key is the cell's canonical scenario key: the JSONL sort key and
// the Scenario field of its Result. Workload parameters appear with
// their defaults substituted — the values the cell actually runs with
// — so cells that differ only in explicit-default vs zero parameters
// share one key (and identical results).
func (c Cell) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[n=%d,k=%d", c.Topo.Family, c.Topo.N, c.Topo.K)
	if c.Topo.Leveled {
		b.WriteString(",leveled")
	}
	p := c.Work.params().Defaulted()
	fmt.Fprintf(&b, "]/%s[h=%d,d=%d,f=%g,hot=%d]", c.Work.Name, p.H, p.D, p.Fraction, p.Hot)
	if c.Algorithm != "" {
		fmt.Fprintf(&b, "/alg=%s", c.Algorithm)
	}
	if c.Discipline != "" {
		fmt.Fprintf(&b, "/disc=%s", c.Discipline)
	}
	fmt.Fprintf(&b, "/w=%d", c.Workers)
	return b.String()
}

// cells expands the spec into its grid, validating every axis value
// up front: unknown families, workloads or disciplines and
// incompatible (family, workload) pairs fail here — with the error
// naming the missing capability — before any routing runs.
func (s Spec) cells() ([]Cell, error) {
	if len(s.Topologies) == 0 {
		return nil, fmt.Errorf("scenario: spec needs at least one topology")
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("scenario: spec needs at least one workload")
	}
	if _, err := meshAlgorithm(s.Algorithm); err != nil {
		return nil, err
	}
	for _, d := range s.Disciplines {
		if _, err := meshDiscipline(d); err != nil {
			return nil, err
		}
	}
	var cells []Cell
	for _, tr := range s.Topologies {
		b, err := topology.Build(tr.Family, topology.Params{N: tr.N, K: tr.K})
		if err != nil {
			return nil, err
		}
		if tr.Leveled && b.Spec == nil {
			return nil, fmt.Errorf("%s has no leveled unrolling", b.Name())
		}
		if b.Nodes() > topology.MaxNodes {
			return nil, fmt.Errorf("%s has %d nodes, exceeding the simulator's 24-bit key space", b.Name(), b.Nodes())
		}
		for _, wr := range s.Workloads {
			gen, ok := workload.Lookup(wr.Name)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q (known: %v)", wr.Name, workload.Names())
			}
			if f := wr.Fraction; f < 0 || f > 1 {
				return nil, fmt.Errorf("workload %s: fraction %v out of [0,1]", wr.Name, f)
			}
			if err := gen.Check(b); err != nil {
				if s.SkipIncompatible {
					continue
				}
				return nil, err
			}
			// The discipline axis only distinguishes cells the
			// specialized mesh router serves; elsewhere it collapses
			// so the grid has no duplicate rows.
			disciplines := s.Disciplines
			algorithm := s.Algorithm
			if !meshRouted(b, tr, gen.Class) {
				disciplines = []string{""}
				algorithm = ""
			}
			for _, disc := range disciplines {
				for _, w := range s.Workers {
					cells = append(cells, Cell{
						Topo:       tr,
						Work:       wr,
						Built:      b,
						Discipline: disc,
						Algorithm:  algorithm,
						Workers:    w,
						Trials:     s.Trials,
						Seed:       s.Seed,
					})
				}
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key() < cells[j].Key() })
	return cells, nil
}

// meshRouted reports whether the cell runs on the specialized §3.4
// mesh router: a mesh grid, not forced onto a leveled view, carrying
// traffic the three-stage algorithm is defined for (permutation-class
// or local). Everything else — including h-relations and many-one
// traffic on the mesh — routes generically on the graph view.
func meshRouted(b topology.Built, tr TopoRef, class workload.Class) bool {
	if tr.Leveled {
		return false
	}
	if _, ok := b.Graph.(*mesh.Grid); !ok {
		return false
	}
	return class == workload.ClassPermutation || class == workload.ClassLocal
}

// meshAlgorithm resolves the algorithm axis value.
func meshAlgorithm(name string) (mesh.Algorithm, error) {
	switch name {
	case "", "threestage":
		return mesh.ThreeStage, nil
	case "vb":
		return mesh.ValiantBrebner, nil
	case "greedy":
		return mesh.Greedy, nil
	default:
		return 0, fmt.Errorf("unknown mesh algorithm %q", name)
	}
}

// meshDiscipline resolves the discipline axis value.
func meshDiscipline(name string) (mesh.Discipline, error) {
	switch name {
	case "", "furthest":
		return mesh.FurthestFirst, nil
	case "fifo":
		return mesh.FIFODiscipline, nil
	default:
		return 0, fmt.Errorf("unknown mesh discipline %q", name)
	}
}
