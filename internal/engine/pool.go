// Package engine is the shared parallel round-execution core of every
// synchronous network simulator in this repository. The paper's
// routing algorithms (Algorithms 2.1-2.3, §3.4) are all analyzed as
// synchronous round models — in one round every directed link moves at
// most one packet — and the simulators previously executed that round
// as a single sequential loop over all links. This package shards that
// loop across a worker pool while keeping the simulation bit-for-bit
// deterministic for a fixed seed, so `Workers: 1` and `Workers: N`
// produce identical traces.
//
// Determinism rests on three invariants:
//
//  1. Per-round effects are order-commutative. A round is split into a
//     drain phase (pop one packet per link, advance it) and an emit
//     phase (insert the resulting arrivals into next-round queues),
//     with a barrier between them — the double buffering that keeps
//     rounds synchronous. Within a phase, handlers may only mutate
//     their own packet and accumulate into per-shard Stats whose merge
//     operators (sum, max) are commutative.
//  2. Queue insertion order is canonical. All arrivals emitted during
//     a round are sorted by (link key, packet ID) before insertion, so
//     FIFO contents never depend on shard layout or map iteration.
//  3. Randomness is keyed to stable entities, never to workers. Each
//     packet owns a substream split from the run seed by packet ID,
//     and each shard owns a substream split by shard index.
package engine

import (
	"runtime"
	"sync"
)

// Pool is a deterministic fork-join helper: Run splits an index range
// into contiguous chunks, one per worker, so a computation that is
// independent across indices parallelizes without changing which
// worker-visible chunk an index belongs to from run to run.
type Pool struct {
	workers int
}

// NewPool returns a pool of the given width; workers <= 0 selects
// GOMAXPROCS, the engine-wide default.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool width. Callers size per-worker accumulator
// arrays with it; fn's worker argument indexes into them.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn over [0, n) split into at most Workers() contiguous
// chunks. fn(w, lo, hi) must restrict itself to state owned by indices
// [lo, hi) plus the w-th slot of any per-worker accumulator. A panic
// inside a worker is re-raised on the caller, lowest worker first.
func (p *Pool) Run(n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		fn(0, 0, n)
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	panics := make([]any, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// RunIf runs like Run when parallel is set and sequentially (one
// chunk, worker 0) otherwise — the adaptive cutoff for rounds whose
// work is too small to amortize goroutine fan-out.
func (p *Pool) RunIf(parallel bool, n int, fn func(w, lo, hi int)) {
	if !parallel || p.workers == 1 || n <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	p.Run(n, fn)
}
