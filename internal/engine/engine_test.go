package engine

import (
	"sync/atomic"
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/queue"
)

func TestPoolCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 17} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]int32
		p.Run(n, func(w, lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("workers=%d: bad chunk [%d,%d)", workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestPoolPropagatesPanic(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.Run(100, func(w, lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}

func TestPoolRunIfSequentialFallback(t *testing.T) {
	p := NewPool(8)
	calls := 0
	p.RunIf(false, 50, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 50 {
			t.Fatalf("sequential fallback got (w=%d, lo=%d, hi=%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential fallback ran %d chunks", calls)
	}
}

// lineRun routes packets down a shared line of nodes 0..length: packet
// i starts at node i%starts and walks to node length. Edge key k is
// the link k -> k+1, so low-numbered links are heavily contended.
// Returns the final stats and per-packet (hops, delay) pairs.
func lineRun(t *testing.T, workers, npkts, starts, length int) (Stats, [][2]int) {
	return lineRunOpts(t, Options{Workers: workers, Seed: 42}, npkts, starts, length)
}

func lineRunOpts(t *testing.T, opts Options, npkts, starts, length int) (Stats, [][2]int) {
	t.Helper()
	pkts := make([]*packet.Packet, npkts)
	eng := New(opts)
	handle := func(ctx *Ctx, a Arrival, round int) {
		p := a.P
		p.Hops++
		at := int(a.Key) + 1
		if at == length {
			p.Arrived = round
			st := ctx.Stats()
			st.DeliveredRequests++
			st.TotalDelay += int64(p.Delay)
			if round > st.Rounds {
				st.Rounds = round
			}
			if s := p.Steps(); s > st.MaxPacketSteps {
				st.MaxPacketSteps = s
			}
			ctx.AddLoad(at, 1)
			return
		}
		ctx.Emit(uint64(at), p)
	}
	st := eng.Run(func(ctx *Ctx) {
		for i := range pkts {
			pkts[i] = packet.New(i, i%starts, length, packet.Transit)
			ctx.Emit(uint64(i%starts), pkts[i])
		}
	}, handle, nil)
	traces := make([][2]int, npkts)
	for i, p := range pkts {
		if p.Arrived < 0 {
			t.Fatalf("workers=%d: packet %d never arrived", opts.Workers, i)
		}
		traces[i] = [2]int{p.Hops, p.Delay}
	}
	return st, traces
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	baseSt, baseTr := lineRun(t, 1, 600, 40, 60)
	if baseSt.DeliveredRequests != 600 {
		t.Fatalf("delivered %d/600", baseSt.DeliveredRequests)
	}
	if baseSt.MaxModuleLoad != 600 {
		t.Fatalf("module load %d, want 600", baseSt.MaxModuleLoad)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		st, tr := lineRun(t, workers, 600, 40, 60)
		if st != baseSt {
			t.Fatalf("workers=%d stats diverged:\n%+v\n%+v", workers, st, baseSt)
		}
		for i := range tr {
			if tr[i] != baseTr[i] {
				t.Fatalf("workers=%d packet %d trace %v != %v", workers, i, tr[i], baseTr[i])
			}
		}
	}
}

// TestDenseMatchesHashed is the storage-path equivalence property:
// declaring MaxKey (dense tables + active lists) and leaving it unset
// (hashed maps) produce bit-identical stats and per-packet traces at
// every worker count, because insertion order is canonical and
// per-round effects commute on both paths.
func TestDenseMatchesHashed(t *testing.T) {
	const npkts, starts, length = 600, 40, 60
	baseSt, baseTr := lineRunOpts(t, Options{Workers: 1, Seed: 42}, npkts, starts, length)
	for _, workers := range []int{1, 2, 4, 8} {
		st, tr := lineRunOpts(t, Options{Workers: workers, Seed: 42, MaxKey: length}, npkts, starts, length)
		if st != baseSt {
			t.Fatalf("dense workers=%d stats diverged from hashed:\n%+v\n%+v", workers, st, baseSt)
		}
		for i := range tr {
			if tr[i] != baseTr[i] {
				t.Fatalf("dense workers=%d packet %d trace %v != %v", workers, i, tr[i], baseTr[i])
			}
		}
	}
}

// TestStateResolution pins the representation choice: small dense
// declarations get flat tables, declarations beyond the flat cap get
// paged tables (not the silent hashed fallback they once did), an
// undeclared key space stays hashed, and a memory budget too small
// for the fixed footprint degrades to hashed with the demotion
// recorded in MemStats.
func TestStateResolution(t *testing.T) {
	cases := []struct {
		name     string
		opts     Options
		state    State
		degraded bool
	}{
		{"hashed by default", Options{Workers: 1}, StateHashed, false},
		{"flat dense", Options{Workers: 1, MaxKey: 1024}, StateDense, false},
		{"paged beyond flat cap", Options{Workers: 1, MaxKey: flatKeyLimit + 1}, StatePaged, false},
		{"paged forced", Options{Workers: 1, MaxKey: 1024, ForcePaged: true}, StatePaged, false},
		{"hashed beyond paged cap", Options{Workers: 1, MaxKey: pagedKeyLimit + 1}, StateHashed, false},
		{"dense within budget", Options{Workers: 1, MaxKey: 1024, MemBudget: 1 << 20}, StateDense, false},
		{"dense degraded by budget", Options{Workers: 1, MaxKey: 1 << 20, MemBudget: 1 << 10}, StateHashed, true},
		{"paged within budget", Options{Workers: 1, MaxKey: flatKeyLimit + 1, MemBudget: 1 << 20}, StatePaged, false},
		{"paged degraded by budget", Options{Workers: 1, MaxKey: pagedKeyLimit, MemBudget: 1 << 10}, StateHashed, true},
	}
	for _, c := range cases {
		eng := New(c.opts)
		if eng.State() != c.state || eng.degraded != c.degraded {
			t.Errorf("%s: state=%v degraded=%v, want %v degraded=%v",
				c.name, eng.State(), eng.degraded, c.state, c.degraded)
		}
		if m := eng.MemStats(); m.State != c.state || m.Degraded != c.degraded {
			t.Errorf("%s: MemStats reports state=%v degraded=%v", c.name, m.State, m.Degraded)
		}
	}
}

// TestPagedMatchesFlatAndHashed extends the storage-path equivalence
// property to the paged tables: the same trace run paged (both forced
// on a small key space and resolved naturally on a past-the-flat-cap
// declaration) is bit-identical to the flat-dense and hashed results
// at every worker count.
func TestPagedMatchesFlatAndHashed(t *testing.T) {
	const npkts, starts, length = 600, 40, 60
	baseSt, baseTr := lineRunOpts(t, Options{Workers: 1, Seed: 42}, npkts, starts, length)
	check := func(label string, opts Options, wantState State) {
		eng := New(opts)
		if eng.State() != wantState {
			t.Fatalf("%s workers=%d: state %v, want %v", label, opts.Workers, eng.State(), wantState)
		}
		st, tr := lineRunOpts(t, opts, npkts, starts, length)
		if st != baseSt {
			t.Fatalf("%s workers=%d stats diverged:\n%+v\n%+v", label, opts.Workers, st, baseSt)
		}
		for i := range tr {
			if tr[i] != baseTr[i] {
				t.Fatalf("%s workers=%d packet %d trace %v != %v", label, opts.Workers, i, tr[i], baseTr[i])
			}
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		check("forced-paged", Options{Workers: workers, Seed: 42, MaxKey: length, ForcePaged: true}, StatePaged)
		check("wide-paged", Options{Workers: workers, Seed: 42, MaxKey: flatKeyLimit + 1}, StatePaged)
		check("degraded-hashed", Options{Workers: workers, Seed: 42, MaxKey: length, MemBudget: 1}, StateHashed)
	}
}

// TestPagedAllocatesOnlyTouchedPages is the pay-for-what-you-touch
// property: a run over a >2^24-key declaration that touches two
// distant neighborhoods allocates exactly the two pages they land on,
// and MemStats prices the directory plus those pages.
func TestPagedAllocatesOnlyTouchedPages(t *testing.T) {
	eng := New(Options{Workers: 1, MaxKey: flatKeyLimit + pageSize})
	if eng.State() != StatePaged {
		t.Fatalf("state %v, want paged", eng.State())
	}
	p1 := packet.New(0, 0, 0, packet.Transit)
	p2 := packet.New(1, 0, 0, packet.Transit)
	eng.Run(func(ctx *Ctx) {
		ctx.Emit(3, p1)
		ctx.Emit(uint64(flatKeyLimit)+7, p2)
	}, func(ctx *Ctx, a Arrival, round int) {}, nil)
	pages := 0
	for i := range eng.shards {
		pages += eng.shards[i].pageCount
	}
	if pages != 2 {
		t.Fatalf("touched 2 keys in distant pages, allocated %d pages", pages)
	}
	m := eng.MemStats()
	want := int64(len(eng.shards[0].pages))*8 + int64(pages)*pageSize*queueSlotBytes
	if m.TableBytes != want {
		t.Fatalf("TableBytes %d, want directory+2 pages = %d", m.TableBytes, want)
	}
}

// TestDenseRejectsOutOfRangeKey pins the encoding-bug guard: emitting
// a key at or beyond the declared MaxKey panics instead of corrupting
// the table.
func TestDenseRejectsOutOfRangeKey(t *testing.T) {
	eng := New(Options{Workers: 1, MaxKey: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range key did not panic")
		}
	}()
	eng.Run(func(ctx *Ctx) {
		ctx.Emit(8, packet.New(0, 0, 0, packet.Transit))
	}, func(ctx *Ctx, a Arrival, round int) {}, nil)
}

// TestSteadyStateRoundIsAllocationFree asserts the PR's headline
// invariant: once the dense engine's tables, buffers and recycled
// queues are warm, an entire sequential Run — injection, every drain
// and every radix push phase — performs zero heap allocations. The
// paged tables preserve it: pages allocate on first touch and are
// retained, so a warm run touches no allocator either.
func TestSteadyStateRoundIsAllocationFree(t *testing.T) {
	const npkts, length = 64, 512
	pkts := make([]*packet.Packet, npkts)
	for i := range pkts {
		pkts[i] = packet.New(i, 0, 0, packet.Transit)
	}
	for _, c := range []struct {
		name string
		opts Options
		want State
	}{
		{"flat", Options{Workers: 1, Seed: 7, MaxKey: length}, StateDense},
		{"paged", Options{Workers: 1, Seed: 7, MaxKey: length, ForcePaged: true}, StatePaged},
	} {
		eng := New(c.opts)
		inject := func(ctx *Ctx) {
			for i, p := range pkts {
				p.Delay = 0
				p.EnqueuedAt = 0
				ctx.Emit(uint64(i%8), p) // pile onto few links: real contention
			}
		}
		handle := func(ctx *Ctx, a Arrival, round int) {
			if next := a.Key + 1; next < length {
				ctx.Emit(next, a.P)
			}
		}
		// Warm-up: tables, gather buffers and the queue free list reach
		// their high-water capacity. Several runs are needed because
		// recycled queues rotate through links and only grow their rings
		// lazily on the first burst each one serves.
		for i := 0; i < 50; i++ {
			eng.Run(inject, handle, nil)
		}
		if eng.State() != c.want {
			t.Fatalf("%s: state %v, want %v", c.name, eng.State(), c.want)
		}
		if allocs := testing.AllocsPerRun(10, func() {
			eng.Run(inject, handle, nil)
		}); allocs != 0 {
			t.Fatalf("%s: steady-state Run allocated %.1f objects, want 0", c.name, allocs)
		}
	}
}

// TestPushClearsStaleReferences is the scratch-retention regression
// test: after a run, the retained push-phase buffers must hold no
// packet pointers, or delivered packets (and their recorded paths)
// stay reachable until the next run overwrites the slots.
func TestPushClearsStaleReferences(t *testing.T) {
	for _, maxKey := range []uint64{0, 64} {
		eng := New(Options{Workers: 1, MaxKey: maxKey})
		pkts := make([]*packet.Packet, 40)
		eng.Run(func(ctx *Ctx) {
			for i := range pkts {
				pkts[i] = packet.New(i, 0, 0, packet.Transit)
				ctx.Emit(uint64(i%4), pkts[i])
			}
		}, func(ctx *Ctx, a Arrival, round int) {
			if next := a.Key + 1; next < 64 {
				ctx.Emit(next, a.P)
			}
		}, nil)
		for i := range eng.shards {
			sh := &eng.shards[i]
			for _, a := range sh.inbox[:cap(sh.inbox)] {
				if a.P != nil {
					t.Fatalf("maxKey=%d: inbox retains packet %d", maxKey, a.P.ID)
				}
			}
			for _, a := range sh.scratch[:cap(sh.scratch)] {
				if a.P != nil {
					t.Fatalf("maxKey=%d: scratch retains packet %d", maxKey, a.P.ID)
				}
			}
			for _, out := range sh.ctx.out {
				for _, a := range out[:cap(out)] {
					if a.P != nil {
						t.Fatalf("maxKey=%d: out buffer retains packet %d", maxKey, a.P.ID)
					}
				}
			}
		}
	}
}

func TestCombinerAbsorbs(t *testing.T) {
	// Two same-address packets injected on one link: the combiner
	// absorbs the second, so only one arrival is ever delivered (with
	// the merge recorded), mirroring Theorem 2.6 combining.
	a := packet.New(0, 0, 1, packet.ReadRequest)
	b := packet.New(1, 0, 1, packet.ReadRequest)
	a.Addr, b.Addr = 7, 7
	eng := New(Options{Workers: 1})
	st := eng.Run(func(ctx *Ctx) {
		ctx.Emit(0, a)
		ctx.Emit(0, b)
	}, func(ctx *Ctx, ar Arrival, round int) {
		ctx.Stats().DeliveredRequests += ar.P.TotalCombined()
	}, func(ctx *Ctx, q queue.Discipline, ar Arrival) bool {
		var host *packet.Packet
		q.Each(func(c *packet.Packet) bool {
			if c.Addr == ar.P.Addr {
				host = c
				return false
			}
			return true
		})
		if host == nil {
			return false
		}
		host.Combine(ar.P, 0)
		ctx.Stats().Merges++
		return true
	})
	if st.Merges != 1 {
		t.Fatalf("merges %d, want 1", st.Merges)
	}
	if st.DeliveredRequests != 2 {
		t.Fatalf("delivered %d constituents, want 2", st.DeliveredRequests)
	}
	if st.MaxQueue != 1 {
		t.Fatalf("max queue %d, want 1 (second packet combined, not queued)", st.MaxQueue)
	}
}

func TestShardRandIsStablePerShard(t *testing.T) {
	// Same seed, same workers: shard streams replay identically.
	e1 := New(Options{Workers: 4, Seed: 9})
	e2 := New(Options{Workers: 4, Seed: 9})
	for i := range e1.shards {
		a, b := e1.shards[i].ctx.Rand(), e2.shards[i].ctx.Rand()
		for j := 0; j < 8; j++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("shard %d stream not reproducible", i)
			}
		}
	}
	// Distinct shards see distinct streams.
	if len(e1.shards) > 1 {
		x := New(Options{Workers: 4, Seed: 9})
		if x.shards[0].ctx.Rand().Uint64() == x.shards[1].ctx.Rand().Uint64() {
			t.Fatal("shard 0 and 1 share a stream")
		}
	}
}

func TestQueueRecycling(t *testing.T) {
	// A long chain reuses queues: after the run every shard's free list
	// holds recycled queues rather than leaking one per key.
	eng := New(Options{Workers: 1})
	p := packet.New(0, 0, 0, packet.Transit)
	const length = 500
	eng.Run(func(ctx *Ctx) {
		ctx.Emit(0, p)
	}, func(ctx *Ctx, a Arrival, round int) {
		if int(a.Key)+1 < length {
			ctx.Emit(a.Key+1, a.P)
		}
	}, nil)
	total := 0
	for i := range eng.shards {
		total += len(eng.shards[i].free)
	}
	if total == 0 {
		t.Fatal("no queues recycled over a 500-link chain")
	}
	if total > 4 {
		t.Fatalf("%d queues allocated for a single in-flight packet", total)
	}
}
