package engine

import (
	"sort"
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

// refSort is the specification SortArrivals must match: a stable
// comparison sort on (Key, ID).
func refSort(a []Arrival) {
	sort.SliceStable(a, func(i, j int) bool {
		if a[i].Key != a[j].Key {
			return a[i].Key < a[j].Key
		}
		return a[i].P.ID < a[j].P.ID
	})
}

// randomArrivals draws n arrivals whose keys collide heavily (keyed
// modulo keyRange) and whose IDs repeat (modulo idRange), so duplicate
// keys, duplicate (key, ID) pairs and stability are all exercised.
func randomArrivals(n int, keyRange uint64, idRange int, negIDs bool, seed uint64) []Arrival {
	src := prng.New(seed)
	out := make([]Arrival, n)
	for i := range out {
		id := src.Intn(idRange)
		if negIDs && src.Intn(2) == 0 {
			id = -id
		}
		out[i] = Arrival{
			Key: src.Uint64n(keyRange),
			P:   packet.New(id, i, i, packet.Transit),
		}
	}
	return out
}

// TestSortArrivalsMatchesReference is the property test of the radix
// push phase: on random (key, ID) sets — including duplicate keys,
// fully duplicate pairs and negative IDs — SortArrivals must agree
// with the stable comparison sort element for element, down to packet
// identity (which pins stability, since equal pairs are then only
// distinguishable by emission order).
func TestSortArrivalsMatchesReference(t *testing.T) {
	cases := []struct {
		n        int
		keyRange uint64
		idRange  int
		negIDs   bool
	}{
		{0, 1, 1, false},
		{1, 1, 1, false},
		{2, 2, 2, false},
		{31, 4, 4, false},     // insertion-sort path, heavy duplicates
		{33, 4, 4, false},     // smallest radix path
		{100, 1, 1000, false}, // single key: pure ID sort
		{100, 1000, 1, false}, // single ID: pure key sort
		{500, 8, 8, false},    // many fully duplicate (key, ID) pairs
		{500, 1 << 40, 1 << 20, false},
		{500, 1 << 62, 1 << 30, true}, // wide keys, negative IDs
		{4096, 1 << 16, 1 << 16, true},
	}
	for ci, c := range cases {
		for trial := uint64(0); trial < 3; trial++ {
			in := randomArrivals(c.n, c.keyRange, c.idRange, c.negIDs, 1991+trial*7+uint64(ci))
			want := append([]Arrival(nil), in...)
			refSort(want)
			var scratch []Arrival
			got, _ := SortArrivals(in, scratch)
			if len(got) != len(want) {
				t.Fatalf("case %d trial %d: length %d != %d", ci, trial, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key || got[i].P != want[i].P {
					t.Fatalf("case %d trial %d: element %d = (key %d, id %d, %p), want (key %d, id %d, %p)",
						ci, trial, i, got[i].Key, got[i].P.ID, got[i].P,
						want[i].Key, want[i].P.ID, want[i].P)
				}
			}
		}
	}
}

// TestSortArrivalsReusesScratch pins the allocation contract: once the
// scratch buffer has grown to the batch size, re-sorting batches of
// equal or smaller size allocates nothing.
func TestSortArrivalsReusesScratch(t *testing.T) {
	batch := randomArrivals(1024, 1<<20, 1<<20, false, 3)
	buf := make([]Arrival, len(batch))
	var scratch []Arrival
	copy(buf, batch)
	buf, scratch = SortArrivals(buf, scratch)
	if allocs := testing.AllocsPerRun(10, func() {
		copy(buf[:cap(buf)][:len(batch)], batch)
		buf, scratch = SortArrivals(buf[:cap(buf)][:len(batch)], scratch)
	}); allocs != 0 {
		t.Fatalf("warm SortArrivals allocated %.1f objects, want 0", allocs)
	}
}

func BenchmarkSortArrivals(b *testing.B) {
	batch := randomArrivals(8192, 1<<20, 1<<20, false, 9)
	buf := make([]Arrival, len(batch))
	scratch := make([]Arrival, len(batch))
	b.Run("radix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf[:len(batch)], batch)
			buf, scratch = SortArrivals(buf[:cap(buf)][:len(batch)], scratch)
		}
	})
	b.Run("sort.Slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(buf[:len(batch)], batch)
			s := buf[:len(batch)]
			sort.Slice(s, func(i, j int) bool {
				if s[i].Key != s[j].Key {
					return s[i].Key < s[j].Key
				}
				return s[i].P.ID < s[j].P.ID
			})
		}
	})
}
