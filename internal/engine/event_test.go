// The asynchronous event loop's contract: with unit latency, unit gap
// and no faults it reproduces the synchronous round engine tick for
// tick; with latency or faults dialed in it stays seed-deterministic
// for any Workers value, every packet still arrives, and each fault
// axis moves the measures it should.
package engine

import (
	"strings"
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/queue"
)

// TestEventUnitLatencyMatchesRoundEngine is the bridge between the
// two loops: the event engine at its defaults (Base 1, Gap 1, no
// faults) must reproduce the round engine's statistics and per-packet
// traces exactly — the heap's (time, kind, key, ID) order replays the
// drain/push/start phase structure of a synchronous round within each
// tick.
func TestEventUnitLatencyMatchesRoundEngine(t *testing.T) {
	const npkts, starts, length = 600, 40, 60
	roundSt, roundTr := lineRunOpts(t, Options{Workers: 1, Seed: 42}, npkts, starts, length)
	eventSt, eventTr := lineRunOpts(t, Options{Workers: 1, Seed: 42, Event: &EventOptions{}}, npkts, starts, length)
	if eventSt != roundSt {
		t.Fatalf("unit-latency event stats diverged from round engine:\nevent: %+v\nround: %+v", eventSt, roundSt)
	}
	for i := range eventTr {
		if eventTr[i] != roundTr[i] {
			t.Fatalf("packet %d trace %v != round engine %v", i, eventTr[i], roundTr[i])
		}
	}
}

// faultyOpts is a kitchen-sink event configuration exercising every
// axis at once.
func faultyOpts(workers int) Options {
	return Options{Workers: workers, Seed: 42, Event: &EventOptions{
		Model:           LatencyJitter,
		Base:            2,
		Jitter:          3,
		Gap:             2,
		LinkFailure:     0.2,
		RepairTime:      10,
		Straggler:       0.2,
		StragglerFactor: 3,
		Drop:            0.15,
		RetransmitAfter: 5,
	}}
}

// TestEventDeterministicAcrossWorkers: the Workers knob must be a
// no-op on event results — the loop is sequential by construction and
// every random property keys to stable entities, never shard streams.
func TestEventDeterministicAcrossWorkers(t *testing.T) {
	const npkts, starts, length = 400, 30, 40
	baseSt, baseTr := lineRunOpts(t, faultyOpts(1), npkts, starts, length)
	if baseSt.DeliveredRequests != npkts {
		t.Fatalf("delivered %d/%d", baseSt.DeliveredRequests, npkts)
	}
	if baseSt.Retransmits == 0 {
		t.Fatal("a 15% drop run recorded no retransmits")
	}
	for _, workers := range []int{2, 4, 8} {
		st, tr := lineRunOpts(t, faultyOpts(workers), npkts, starts, length)
		if st != baseSt {
			t.Fatalf("workers=%d event stats diverged:\n%+v\n%+v", workers, st, baseSt)
		}
		for i := range tr {
			if tr[i] != baseTr[i] {
				t.Fatalf("workers=%d packet %d trace %v != %v", workers, i, tr[i], baseTr[i])
			}
		}
	}
	// Two identical invocations replay byte for byte.
	again, _ := lineRunOpts(t, faultyOpts(1), npkts, starts, length)
	if again != baseSt {
		t.Fatalf("same-seed rerun diverged:\n%+v\n%+v", again, baseSt)
	}
}

// TestEventLatencyStretchesDeliveredTime: fixed latency b multiplies
// an uncongested pipeline's delivered time by about b, and a
// bandwidth gap g throttles a contended link the same way.
func TestEventLatencyStretchesDeliveredTime(t *testing.T) {
	// 20 packets on 20 distinct start nodes of a 40-link line: they
	// follow each other and never queue, so delivered time is pure
	// latency and scales exactly with Base.
	const npkts, starts, length = 20, 20, 40
	base, _ := lineRunOpts(t, Options{Workers: 1, Seed: 7, Event: &EventOptions{}}, npkts, starts, length)
	slow, _ := lineRunOpts(t, Options{Workers: 1, Seed: 7, Event: &EventOptions{Base: 4}}, npkts, starts, length)
	if slow.Rounds != 4*base.Rounds {
		t.Fatalf("4x latency delivered at tick %d, want exactly 4*%d (uncontended pipeline)", slow.Rounds, base.Rounds)
	}
	// 100 packets funneled through one source node: the sender-side
	// gap throttles the bottleneck link.
	contended, _ := lineRunOpts(t, Options{Workers: 1, Seed: 7, Event: &EventOptions{Gap: 3}}, 100, 1, length)
	serial, _ := lineRunOpts(t, Options{Workers: 1, Seed: 7, Event: &EventOptions{}}, 100, 1, length)
	if contended.Rounds <= 2*serial.Rounds {
		t.Fatalf("gap 3 on a single-source line delivered at tick %d, not ~3x the gap-1 %d", contended.Rounds, serial.Rounds)
	}
}

// TestEventDropRetransmits: every loss is counted, every packet still
// arrives, and the delivered time can only grow.
func TestEventDropRetransmits(t *testing.T) {
	const npkts, starts, length = 200, 20, 30
	base, _ := lineRunOpts(t, Options{Workers: 1, Seed: 9, Event: &EventOptions{}}, npkts, starts, length)
	opts := Options{Workers: 1, Seed: 9, Event: &EventOptions{Drop: 0.3, RetransmitAfter: 4}}
	st, _ := lineRunOpts(t, opts, npkts, starts, length)
	if st.DeliveredRequests != npkts {
		t.Fatalf("delivered %d/%d under 30%% drop", st.DeliveredRequests, npkts)
	}
	if st.Retransmits == 0 {
		t.Fatal("30% drop recorded no retransmits")
	}
	if st.Rounds <= base.Rounds {
		t.Fatalf("lossy run delivered at tick %d, no later than lossless %d", st.Rounds, base.Rounds)
	}
}

// TestEventLinkFailureDelivers: transient outages delay traffic but
// repair by their seeded tick, so everything still arrives.
func TestEventLinkFailureDelivers(t *testing.T) {
	opts := Options{Workers: 1, Seed: 11, Event: &EventOptions{LinkFailure: 0.5, RepairTime: 20}}
	st, _ := lineRunOpts(t, opts, 200, 20, 30)
	if st.DeliveredRequests != 200 {
		t.Fatalf("delivered %d/200 under 50%% link outages", st.DeliveredRequests)
	}
	base, _ := lineRunOpts(t, Options{Workers: 1, Seed: 11, Event: &EventOptions{}}, 200, 20, 30)
	if st.Rounds <= base.Rounds {
		t.Fatalf("outage run delivered at tick %d, no later than healthy %d", st.Rounds, base.Rounds)
	}
}

// TestEventStragglerKeysToNodes: with a NodeOf hook, the straggler
// verdict is a property of the sending node — every link it sends on
// slows by the same factor — and the delivered time stretches.
func TestEventStragglerKeysToNodes(t *testing.T) {
	mk := func(straggler float64) Options {
		return Options{Workers: 1, Seed: 13, Event: &EventOptions{
			Straggler:       straggler,
			StragglerFactor: 5,
			NodeOf:          func(key uint64) int { return int(key) },
			PeerOf:          func(key uint64) int { return int(key) + 1 },
		}}
	}
	base, _ := lineRunOpts(t, mk(0), 200, 20, 30)
	st, _ := lineRunOpts(t, mk(0.5), 200, 20, 30)
	if st.DeliveredRequests != 200 {
		t.Fatalf("delivered %d/200 with stragglers", st.DeliveredRequests)
	}
	if st.Rounds <= base.Rounds {
		t.Fatalf("straggler run delivered at tick %d, no later than %d", st.Rounds, base.Rounds)
	}
}

// TestEventMatrixLatency: the per-node-pair delay matrix is seeded —
// two runs agree — and produces longer delivered times than Base
// alone on a multi-hop line.
func TestEventMatrixLatency(t *testing.T) {
	mk := func() Options {
		return Options{Workers: 1, Seed: 17, Event: &EventOptions{
			Model:  LatencyMatrix,
			Scale:  6,
			NodeOf: func(key uint64) int { return int(key) },
			PeerOf: func(key uint64) int { return int(key) + 1 },
		}}
	}
	st1, tr1 := lineRunOpts(t, mk(), 100, 10, 20)
	st2, tr2 := lineRunOpts(t, mk(), 100, 10, 20)
	if st1 != st2 {
		t.Fatalf("matrix runs diverged:\n%+v\n%+v", st1, st2)
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("matrix packet %d trace %v != %v", i, tr1[i], tr2[i])
		}
	}
	base, _ := lineRunOpts(t, Options{Workers: 1, Seed: 17, Event: &EventOptions{}}, 100, 10, 20)
	if st1.Rounds <= base.Rounds {
		t.Fatalf("matrix run delivered at tick %d, no later than unit-latency %d", st1.Rounds, base.Rounds)
	}
}

// TestEventOptionsValidate pins the knob validation and the New panic
// on invalid options.
func TestEventOptionsValidate(t *testing.T) {
	bad := []EventOptions{
		{Model: "gaussian"},
		{Drop: 1},
		{Drop: -0.1},
		{LinkFailure: 1.5},
		{Straggler: -1},
		{Base: -2},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("options %+v validated", o)
		}
	}
	if err := (EventOptions{Model: LatencyJitter, Jitter: 3, Drop: 0.5}).Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted an invalid event model")
		}
		if !strings.Contains(r.(string), "latency model") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	New(Options{Event: &EventOptions{Model: "gaussian"}})
}

// TestEventCombinerRuns: combining still applies on the event path —
// the arrival phase consults the combiner against settled queues just
// as the synchronous push phase does.
func TestEventCombinerRuns(t *testing.T) {
	a := packet.New(0, 0, 1, packet.ReadRequest)
	b := packet.New(1, 0, 1, packet.ReadRequest)
	a.Addr, b.Addr = 7, 7
	eng := New(Options{Event: &EventOptions{}})
	st := eng.Run(func(ctx *Ctx) {
		ctx.Emit(0, a)
		ctx.Emit(0, b)
	}, func(ctx *Ctx, ar Arrival, round int) {
		ctx.Stats().DeliveredRequests += ar.P.TotalCombined()
	}, func(ctx *Ctx, q queue.Discipline, ar Arrival) bool {
		var host *packet.Packet
		q.Each(func(c *packet.Packet) bool {
			if c.Addr == ar.P.Addr {
				host = c
				return false
			}
			return true
		})
		if host == nil {
			return false
		}
		host.Combine(ar.P, 0)
		ctx.Stats().Merges++
		return true
	})
	if st.Merges != 1 {
		t.Fatalf("merges %d, want 1", st.Merges)
	}
	if st.DeliveredRequests != 2 {
		t.Fatalf("delivered %d constituents, want 2", st.DeliveredRequests)
	}
	if st.MaxQueue != 1 {
		t.Fatalf("max queue %d, want 1 (second packet combined, not queued)", st.MaxQueue)
	}
}
