package engine

// State names the link-state representation an engine resolved to.
// Simulators request a dense key space by declaring MaxKey; the engine
// picks the cheapest backing store for that declaration (or the hashed
// fallback when a memory budget rules the dense stores out), and the
// resolved state is observable here so results can record which path
// priced a run.
type State uint8

const (
	// StateHashed backs link queues with a per-shard hash map. It
	// accepts arbitrary 64-bit keys and pays only for live keys, at the
	// cost of map overhead on every queue access.
	StateHashed State = iota
	// StateDense backs link queues with flat per-shard slices sized to
	// the declared key space up front — the fastest path, selected when
	// MaxKey is small enough that the full table is cheap.
	StateDense
	// StatePaged backs link queues with fixed-size pages allocated on
	// first touch: the declared key space only prices a page directory
	// (8 bytes per 4096 keys) up front, and table memory grows with
	// *touched* keys. Selected for dense declarations beyond the flat
	// table cap, raising the dense path to anything addressable.
	StatePaged
)

// String returns the lower-case state name used in scenario keys and
// JSON artifacts.
func (s State) String() string {
	switch s {
	case StateDense:
		return "dense"
	case StatePaged:
		return "paged"
	default:
		return "hashed"
	}
}

// MemStats reports the memory footprint of a run's link state. The
// engine fills State, Degraded and TableBytes; ArenaBytes is filled by
// the simulator that owns the packet arena, since arenas live outside
// the engine.
type MemStats struct {
	// State is the resolved link-state representation.
	State State
	// Degraded reports that a dense or paged request was demoted to
	// hashed because its fixed footprint exceeded Options.MemBudget.
	Degraded bool
	// TableBytes is the link-table footprint: exact slot bytes for the
	// dense and paged states (flat slots, or directory plus touched
	// pages), and an estimate from the peak live-key count for the
	// hashed state (map internals are not directly measurable).
	TableBytes int64
	// ArenaBytes is the packet-arena footprint, when the caller
	// supplied one (zero otherwise).
	ArenaBytes int64
}

// queueSlotBytes is the memory cost of one link-table slot: a
// queue.Discipline interface value, two words.
const queueSlotBytes = 16

// hashedEntryBytes is the assumed per-live-key cost of the hashed
// path's map entries (key + interface value + bucket overhead), used
// only to estimate TableBytes for StateHashed.
const hashedEntryBytes = 48

// MemStats reports the engine's resolved state and link-table
// footprint. Call it after Run: the paged page count and the hashed
// peak-live estimate both reflect what the run actually touched.
func (e *Engine) MemStats() MemStats {
	// A leased engine donated its tables when Run completed; the
	// snapshot taken at release preserves what the run actually used.
	if e.mem != nil {
		return *e.mem
	}
	m := MemStats{State: e.state, Degraded: e.degraded}
	switch e.state {
	case StateDense:
		for i := range e.shards {
			m.TableBytes += int64(len(e.shards[i].table)) * queueSlotBytes
		}
	case StatePaged:
		for i := range e.shards {
			sh := &e.shards[i]
			m.TableBytes += int64(len(sh.pages)) * 8
			m.TableBytes += int64(sh.pageCount) * pageSize * queueSlotBytes
		}
	default:
		for i := range e.shards {
			m.TableBytes += int64(e.shards[i].peakLive) * hashedEntryBytes
		}
	}
	return m
}
