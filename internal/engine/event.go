package engine

import (
	"fmt"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// The latency-model axis values of EventOptions.Model.
const (
	// LatencyFixed gives every link the same crossing time Base.
	LatencyFixed = "fixed"
	// LatencyJitter draws each link's crossing time uniformly from
	// [Base, Base+Jitter] once per run.
	LatencyJitter = "jitter"
	// LatencyMatrix places every node at a seeded coordinate on a
	// Scale×Scale grid and prices each link Base plus the Manhattan
	// distance between its endpoints — a per-node-pair delay matrix
	// without materializing n² entries. Links whose endpoints the
	// simulator cannot name (NodeOf/PeerOf nil) fall back to a uniform
	// draw over the same range.
	LatencyMatrix = "matrix"
)

// EventOptions selects the asynchronous discrete-event loop instead of
// the synchronous round loop and configures its link model. The event
// loop serves the same injection/handler/combiner callbacks over a
// timestamped min-heap of packet events: each link carries a per-run
// latency drawn from the configured distribution, a sender-side
// bandwidth cap (one transmission start per Gap ticks), and the three
// fault axes — transient link outages, straggler nodes, and packet
// drop with retransmit-after-timeout.
//
// Every random property derives from the run seed and a stable entity
// (link key, node index, packet ID, attempt number) — never from
// worker or shard streams — so event runs are byte-reproducible for
// any Workers value and any sweep pool width.
type EventOptions struct {
	// Model is the latency distribution: LatencyFixed (default),
	// LatencyJitter or LatencyMatrix.
	Model string
	// Base is the minimum link crossing time in ticks (default 1).
	// With Base 1, Gap 1 and no faults the event loop reproduces the
	// synchronous round engine tick for tick.
	Base int
	// Jitter is the uniform extra-latency span of LatencyJitter.
	Jitter int
	// Scale is the coordinate-grid side of LatencyMatrix (default 8),
	// bounding the matrix extra latency at 2*(Scale-1).
	Scale int
	// Gap is the sender-side bandwidth cap: the minimum number of
	// ticks between consecutive transmission starts on one link
	// (default 1 = the round model's one packet per link per tick).
	Gap int

	// LinkFailure is the probability that a link starts the run in a
	// transient outage; a failed link carries nothing until its seeded
	// repair tick (uniform in [1, RepairTime]), so routing always
	// terminates.
	LinkFailure float64
	// RepairTime bounds the outage duration in ticks (default 8*Base).
	RepairTime int
	// Straggler is the probability that a node is a straggler; every
	// link it sends on has latency and gap multiplied by
	// StragglerFactor. Without a NodeOf hook the draw is per link.
	Straggler float64
	// StragglerFactor is the straggler slowdown multiple (default 4).
	StragglerFactor int
	// Drop is the per-transmission loss probability; the sender holds
	// the link and retransmits RetransmitAfter ticks later, counting
	// one Stats.Retransmits per loss. Must be < 1.
	Drop float64
	// RetransmitAfter is the loss-detection timeout in ticks (default
	// 4*(Base+Jitter)).
	RetransmitAfter int

	// NodeOf and PeerOf, when set by the simulator, decode a link key
	// into its sender and receiver node — the entities the straggler
	// and matrix axes are keyed to. Nodes bounds the node index space.
	NodeOf func(key uint64) int
	PeerOf func(key uint64) int
	Nodes  int
}

// withDefaults substitutes the documented defaults.
func (o EventOptions) withDefaults() EventOptions {
	if o.Model == "" {
		o.Model = LatencyFixed
	}
	if o.Base <= 0 {
		o.Base = 1
	}
	if o.Scale <= 0 {
		o.Scale = 8
	}
	if o.Gap <= 0 {
		o.Gap = 1
	}
	if o.RepairTime <= 0 {
		o.RepairTime = 8 * o.Base
	}
	if o.StragglerFactor <= 1 {
		o.StragglerFactor = 4
	}
	if o.RetransmitAfter <= 0 {
		o.RetransmitAfter = 4 * (o.Base + o.Jitter)
	}
	return o
}

// Validate rejects impossible knob values; callers converting user
// input should validate before handing the options to New, which
// panics on them (an invalid model is a programming error there).
func (o EventOptions) Validate() error {
	switch o.Model {
	case "", LatencyFixed, LatencyJitter, LatencyMatrix:
	default:
		return fmt.Errorf("unknown latency model %q (known: %s, %s, %s)",
			o.Model, LatencyFixed, LatencyJitter, LatencyMatrix)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"link failure", o.LinkFailure}, {"straggler", o.Straggler}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("%s probability %v out of [0,1]", p.name, p.v)
		}
	}
	if o.Drop < 0 || o.Drop >= 1 {
		return fmt.Errorf("drop probability %v out of [0,1) (1 would never deliver)", o.Drop)
	}
	if o.Base < 0 || o.Jitter < 0 || o.Scale < 0 || o.Gap < 0 ||
		o.RepairTime < 0 || o.StragglerFactor < 0 || o.RetransmitAfter < 0 {
		return fmt.Errorf("negative event-engine knob")
	}
	return nil
}

// maxDropAttempts bounds the retransmission count per (link, packet)
// pair: past it the transmission is forced through. The hash draws are
// independent per attempt, so even at Drop 0.9 the bound triggers with
// probability ~1e-64; it exists so termination is unconditional.
const maxDropAttempts = 1 << 6

// The event kinds, in their processing order at equal timestamps. The
// order reconstructs the round engine's phase structure within a tick:
// deliveries (the drain) run first, then arrivals enqueue in canonical
// (key, packet ID) order with the combiner consulted against settled
// queues (the push), and only then do links start new transmissions —
// so an arrival can still combine with a packet departing next tick,
// exactly as it can in the synchronous push phase.
const (
	evDeliver = iota // a packet finished crossing its link
	evArrive         // a packet is ready to enqueue on a link
	evRetry          // a lost transmission's timeout expired
	evFree           // a link may be able to start transmitting
)

// event is one heap entry. The heap orders by (time, kind, key,
// packet ID) — a total order over distinct events, so the execution
// sequence is a pure function of the injected traffic and the seed.
type event struct {
	at      int64
	kind    uint8
	key     uint64
	p       *packet.Packet // nil on evFree
	attempt int32          // evRetry: upcoming attempt number
}

// eventLess is the heap order.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.key != b.key {
		return a.key < b.key
	}
	pa, pb := -1, -1
	if a.p != nil {
		pa = a.p.ID
	}
	if b.p != nil {
		pb = b.p.ID
	}
	return pa < pb
}

// eventLink is one link's asynchronous state: its queue, its sampled
// latency and gap, its transient-outage window and the in-flight
// packet a retransmission timeout is holding.
type eventLink struct {
	q        queue.Discipline
	inflight *packet.Packet
	freeAt   int64 // earliest next transmission start (bandwidth cap)
	downTil  int64 // transient outage: no starts before this tick
	wakeAt   int64 // pending evFree tick, -1 when none (dedup guard)
	lat      int64
	gap      int64
}

// eventLoop is the per-run state of the asynchronous engine.
type eventLoop struct {
	e     *Engine
	o     EventOptions
	seed  uint64
	heap  []event
	links map[uint64]*eventLink
	// linkRoot seeds the per-link property streams (latency draw,
	// outage draw, per-link straggler fallback); nodeRoot the per-node
	// straggler and coordinate streams. Both split by stable entity
	// index, so sampled properties are independent of touch order.
	linkRoot *prng.Source
	nodeRoot *prng.Source
	slow     map[int]bool   // straggler verdict per node
	coord    map[int][2]int // matrix coordinate per node
}

// mix64 is the splitmix64 finalizer, the stateless hash behind
// per-attempt drop draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unitDraw maps (seed, link, packet, attempt) to a uniform [0,1)
// value. Stateless, so a transmission's fate never depends on how
// work was scheduled — only on what is being transmitted.
func unitDraw(seed, key, pid, attempt uint64) float64 {
	h := mix64(seed ^ mix64(key^mix64(pid^mix64(attempt^0x6576656e74)))) // "event"
	return float64(h>>11) * (1.0 / (1 << 53))
}

// runEvent executes the asynchronous discrete-event loop: the Event
// counterpart of the synchronous loop in Run. It is strictly
// sequential — the heap order is the only schedule — which is what
// makes the Workers knob a no-op on results rather than a hazard.
func (e *Engine) runEvent(inject func(ctx *Ctx), handle Handler, combine Combiner) Stats {
	ev := &eventLoop{
		e:        e,
		o:        *e.event,
		seed:     e.seed,
		links:    make(map[uint64]*eventLink),
		linkRoot: prng.New(e.seed ^ 0x5ca1ab1e0ddba11),
		nodeRoot: prng.New(e.seed ^ 0x0fabacadaba0beef),
	}
	ctx := &e.shards[0].ctx
	if inject != nil {
		inject(ctx)
	}
	ev.harvest(ctx, 0)
	// ctxPollMask paces the cancellation poll: one non-blocking channel
	// read per 4096 heap events, the event-loop analogue of the round
	// loop's per-round check.
	const ctxPollMask = 1<<12 - 1
	for n := 0; len(ev.heap) > 0; n++ {
		if n&ctxPollMask == 0 {
			e.checkContext()
		}
		x := ev.pop()
		switch x.kind {
		case evDeliver:
			handle(ctx, Arrival{x.key, x.p}, int(x.at))
			ev.harvest(ctx, x.at)
		case evArrive:
			ev.arrive(ctx, x, combine)
		case evRetry:
			l := ev.link(x.key)
			ev.transmit(ctx, l, x.key, x.p, x.at, x.attempt)
		case evFree:
			l := ev.link(x.key)
			if l.wakeAt == x.at {
				l.wakeAt = -1
			}
			ev.tryStart(ctx, l, x.key, x.at)
		}
	}
	e.clearScratch()
	var out Stats
	out.fold(&ctx.stats)
	for _, v := range ctx.loads {
		maxInto(&out.MaxModuleLoad, v)
	}
	return out
}

// harvest converts the context's emitted arrivals into evArrive events
// at tick t. The heap's (key, packet ID) tie-break gives them the same
// canonical insertion order the round engine's radix sort does.
func (ev *eventLoop) harvest(ctx *Ctx, t int64) {
	for s, bucket := range ctx.out {
		for _, a := range bucket {
			ev.push(event{at: t, kind: evArrive, key: a.Key, p: a.P})
		}
		clear(bucket)
		ctx.out[s] = bucket[:0]
	}
}

// arrive enqueues a packet on its link (or combines it away) and
// wakes the link. Service never starts here: all of a tick's arrivals
// settle before any of its transmission starts, mirroring the round
// engine's push-then-drain phase barrier.
func (ev *eventLoop) arrive(ctx *Ctx, x event, combine Combiner) {
	l := ev.link(x.key)
	if combine != nil && l.q != nil && l.q.Len() > 0 &&
		combine(ctx, l.q, Arrival{x.key, x.p}) {
		return
	}
	if l.q == nil {
		l.q = ev.e.shards[0].takeQueue(ev.e)
	}
	x.p.EnqueuedAt = int(x.at)
	l.q.Push(x.p)
	if n := l.q.Len(); n > ctx.stats.MaxQueue {
		ctx.stats.MaxQueue = n
	}
	ev.wake(l, x.key, x.at)
}

// wake schedules an evFree at the earliest tick the link could start
// a transmission, deduplicating against an already-pending wake.
func (ev *eventLoop) wake(l *eventLink, key uint64, t int64) {
	if l.inflight != nil || l.q == nil || l.q.Len() == 0 {
		return
	}
	at := t
	if l.freeAt > at {
		at = l.freeAt
	}
	if l.downTil > at {
		at = l.downTil
	}
	if l.wakeAt == at {
		return
	}
	l.wakeAt = at
	ev.push(event{at: at, kind: evFree, key: key})
}

// tryStart pops the link's head packet and begins transmitting it,
// unless the link is held by a pending retransmission, still inside
// its bandwidth gap, or down — in which case the wake is re-armed for
// the blocking tick.
func (ev *eventLoop) tryStart(ctx *Ctx, l *eventLink, key uint64, t int64) {
	if l.inflight != nil || l.q == nil || l.q.Len() == 0 {
		return
	}
	start := t
	if l.freeAt > start {
		start = l.freeAt
	}
	if l.downTil > start {
		start = l.downTil
	}
	if start > t {
		if l.wakeAt != start {
			l.wakeAt = start
			ev.push(event{at: start, kind: evFree, key: key})
		}
		return
	}
	p := l.q.Pop()
	p.Delay += int(t) - p.EnqueuedAt
	if l.q.Len() == 0 {
		sh := &ev.e.shards[0]
		sh.free = append(sh.free, l.q)
		l.q = nil
	}
	ev.transmit(ctx, l, key, p, t, 0)
}

// transmit attempts to push p across the link at tick t. A dropped
// attempt holds the link (head-of-line, as a FIFO sender would) and
// schedules the retransmission at the timeout; a successful one
// schedules the delivery at t+latency, advances the bandwidth window
// and wakes the link for its next queued packet.
func (ev *eventLoop) transmit(ctx *Ctx, l *eventLink, key uint64, p *packet.Packet, t int64, attempt int32) {
	if ev.o.Drop > 0 && attempt < maxDropAttempts &&
		unitDraw(ev.seed, key, uint64(p.ID), uint64(attempt)) < ev.o.Drop {
		ctx.stats.Retransmits++
		l.inflight = p
		ev.push(event{at: t + int64(ev.o.RetransmitAfter), kind: evRetry, key: key, p: p, attempt: attempt + 1})
		return
	}
	l.inflight = nil
	l.freeAt = t + l.gap
	ev.push(event{at: t + l.lat, kind: evDeliver, key: key, p: p})
	ev.wake(l, key, t)
}

// link returns the link's state, sampling its per-run properties on
// first touch. Every draw comes from a stream split by the link key
// (or node index), so the sampled latency, outage and straggler
// verdicts depend only on the seed and the entity — not on when, or
// whether, other links were touched first.
func (ev *eventLoop) link(key uint64) *eventLink {
	l := ev.links[key]
	if l != nil {
		return l
	}
	l = &eventLink{wakeAt: -1}
	src := ev.linkRoot.Split(key)
	lat := int64(ev.o.Base)
	switch ev.o.Model {
	case LatencyJitter:
		if ev.o.Jitter > 0 {
			lat += int64(src.Intn(ev.o.Jitter + 1))
		}
	case LatencyMatrix:
		if ev.o.NodeOf != nil && ev.o.PeerOf != nil {
			lat += ev.pairDelay(ev.o.NodeOf(key), ev.o.PeerOf(key))
		} else if span := 2 * (ev.o.Scale - 1); span > 0 {
			lat += int64(src.Intn(span + 1))
		}
	}
	gap := int64(ev.o.Gap)
	if ev.o.LinkFailure > 0 && src.Float64() < ev.o.LinkFailure {
		l.downTil = 1 + int64(src.Intn(ev.o.RepairTime))
	}
	if ev.o.Straggler > 0 {
		slow := false
		if ev.o.NodeOf != nil {
			slow = ev.nodeSlow(ev.o.NodeOf(key))
		} else {
			slow = src.Float64() < ev.o.Straggler
		}
		if slow {
			lat *= int64(ev.o.StragglerFactor)
			gap *= int64(ev.o.StragglerFactor)
		}
	}
	l.lat, l.gap = lat, gap
	ev.links[key] = l
	return l
}

// nodeSlow memoizes the per-node straggler draw.
func (ev *eventLoop) nodeSlow(node int) bool {
	if v, ok := ev.slow[node]; ok {
		return v
	}
	if ev.slow == nil {
		ev.slow = make(map[int]bool)
	}
	v := ev.nodeRoot.Split(uint64(node)).Float64() < ev.o.Straggler
	ev.slow[node] = v
	return v
}

// pairDelay is the LatencyMatrix extra latency: the Manhattan
// distance between the endpoints' seeded grid coordinates.
func (ev *eventLoop) pairDelay(a, b int) int64 {
	ca, cb := ev.nodeCoord(a), ev.nodeCoord(b)
	dx, dy := ca[0]-cb[0], ca[1]-cb[1]
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return int64(dx + dy)
}

// nodeCoord memoizes the per-node matrix coordinate.
func (ev *eventLoop) nodeCoord(node int) [2]int {
	if c, ok := ev.coord[node]; ok {
		return c
	}
	if ev.coord == nil {
		ev.coord = make(map[int][2]int)
	}
	src := ev.nodeRoot.Split(uint64(node) | 1<<32)
	c := [2]int{src.Intn(ev.o.Scale), src.Intn(ev.o.Scale)}
	ev.coord[node] = c
	return c
}

// push inserts an event into the min-heap.
func (ev *eventLoop) push(x event) {
	h := append(ev.heap, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	ev.heap = h
}

// pop removes and returns the minimum event.
func (ev *eventLoop) pop() event {
	h := ev.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // drop the packet reference
	h = h[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		small := i
		if left < len(h) && eventLess(h[left], h[small]) {
			small = left
		}
		if right < len(h) && eventLess(h[right], h[small]) {
			small = right
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	ev.heap = h
	return top
}
