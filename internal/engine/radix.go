package engine

// SortArrivals sorts buf ascending by (Key, P.ID) — the canonical
// queue-insertion order of invariant 2 — and returns the sorted slice
// plus the spare buffer, each of which aliases buf or scratch. The
// sort is an LSD radix over the bytes of ID then Key, delta-encoded
// against the per-batch minima so negative IDs and offset key ranges
// cost no extra passes; bytes on which the whole batch agrees are
// skipped. scratch grows only when shorter than buf, so a caller that
// retains both returned slices sorts every subsequent batch of equal
// or smaller size without allocating — unlike sort.Slice, whose
// closure and interface header escape on every call.
//
// The sort is stable: arrivals with fully equal (Key, ID) keep their
// emission order.
func SortArrivals(buf, scratch []Arrival) (sorted, spare []Arrival) {
	n := len(buf)
	if n < 2 {
		return buf, scratch
	}
	if n <= 32 {
		insertionSortArrivals(buf)
		return buf, scratch
	}
	if cap(scratch) < n {
		scratch = make([]Arrival, n)
	}
	scratch = scratch[:n]
	minID, maxID := buf[0].P.ID, buf[0].P.ID
	minKey, maxKey := buf[0].Key, buf[0].Key
	for i := 1; i < n; i++ {
		if id := buf[i].P.ID; id < minID {
			minID = id
		} else if id > maxID {
			maxID = id
		}
		if k := buf[i].Key; k < minKey {
			minKey = k
		} else if k > maxKey {
			maxKey = k
		}
	}
	src, dst := buf, scratch
	// Two's-complement subtraction maps the signed ID range onto an
	// order-preserving unsigned span starting at zero.
	idBase := uint64(minID)
	idSpan := uint64(maxID) - idBase
	for shift := uint(0); idSpan>>shift != 0; shift += 8 {
		if radixPassID(src, dst, shift, idBase) {
			src, dst = dst, src
		}
	}
	keySpan := maxKey - minKey
	for shift := uint(0); keySpan>>shift != 0; shift += 8 {
		if radixPassKey(src, dst, shift, minKey) {
			src, dst = dst, src
		}
	}
	return src, dst
}

// radixPassID performs one stable counting-sort pass on byte
// (ID-base)>>shift, reporting false (nothing moved) when every element
// shares that byte.
func radixPassID(src, dst []Arrival, shift uint, base uint64) bool {
	var count [256]int
	for i := range src {
		count[(uint64(src[i].P.ID)-base)>>shift&0xff]++
	}
	if count[(uint64(src[0].P.ID)-base)>>shift&0xff] == len(src) {
		return false
	}
	var offs [256]int
	pos := 0
	for b := range count {
		offs[b] = pos
		pos += count[b]
	}
	for i := range src {
		b := (uint64(src[i].P.ID) - base) >> shift & 0xff
		dst[offs[b]] = src[i]
		offs[b]++
	}
	return true
}

// radixPassKey is radixPassID over the Key bytes.
func radixPassKey(src, dst []Arrival, shift uint, base uint64) bool {
	var count [256]int
	for i := range src {
		count[(src[i].Key-base)>>shift&0xff]++
	}
	if count[(src[0].Key-base)>>shift&0xff] == len(src) {
		return false
	}
	var offs [256]int
	pos := 0
	for b := range count {
		offs[b] = pos
		pos += count[b]
	}
	for i := range src {
		b := (src[i].Key - base) >> shift & 0xff
		dst[offs[b]] = src[i]
		offs[b]++
	}
	return true
}

// insertionSortArrivals is the small-batch path: stable, in-place and
// branch-cheap below the radix pass break-even point.
func insertionSortArrivals(a []Arrival) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && (a[j].Key > x.Key || (a[j].Key == x.Key && a[j].P.ID > x.P.ID)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}
