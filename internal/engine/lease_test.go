package engine

import (
	"testing"

	"pramemu/internal/packet"
)

// leaseLineRun is lineRunOpts plus the post-run MemStats, which the
// lease tests compare across cold and warm runs (a leased engine
// snapshots its pricing at release, so the call still answers).
func leaseLineRun(t *testing.T, opts Options, npkts, starts, length int) (Stats, [][2]int, MemStats) {
	t.Helper()
	pkts := make([]*packet.Packet, npkts)
	eng := New(opts)
	handle := func(ctx *Ctx, a Arrival, round int) {
		p := a.P
		p.Hops++
		at := int(a.Key) + 1
		if at == length {
			p.Arrived = round
			st := ctx.Stats()
			st.DeliveredRequests++
			st.TotalDelay += int64(p.Delay)
			if round > st.Rounds {
				st.Rounds = round
			}
			if s := p.Steps(); s > st.MaxPacketSteps {
				st.MaxPacketSteps = s
			}
			ctx.AddLoad(at, 1)
			return
		}
		ctx.Emit(uint64(at), p)
	}
	st := eng.Run(func(ctx *Ctx) {
		for i := range pkts {
			pkts[i] = packet.New(i, i%starts, length, packet.Transit)
			ctx.Emit(uint64(i%starts), pkts[i])
		}
	}, handle, nil)
	for i, p := range pkts {
		if p.Arrived < 0 {
			t.Fatalf("workers=%d: packet %d never arrived", opts.Workers, i)
		}
	}
	traces := make([][2]int, npkts)
	for i, p := range pkts {
		traces[i] = [2]int{p.Hops, p.Delay}
	}
	return st, traces, eng.MemStats()
}

// TestWorkerEquivalenceLeasedEngine is the lease's defining property:
// a run on adopted buffers is bit-identical — Stats, per-packet
// traces and MemStats — to the same run on fresh allocations, for the
// dense and paged states at every worker count. Each shape runs three
// times through one lease (cold stock, then two warm adoptions), so
// the second adoption also checks that a released lease is clean.
func TestWorkerEquivalenceLeasedEngine(t *testing.T) {
	const npkts, starts, length = 600, 40, 60
	shapes := []struct {
		name string
		opts Options
	}{
		{"dense", Options{Seed: 42, MaxKey: length}},
		{"paged", Options{Seed: 42, MaxKey: length, ForcePaged: true}},
	}
	for _, shape := range shapes {
		for _, workers := range []int{1, 2, 4} {
			opts := shape.opts
			opts.Workers = workers
			baseSt, baseTr, baseMem := leaseLineRun(t, opts, npkts, starts, length)
			lease := &Lease{}
			for pass := 0; pass < 3; pass++ {
				opts.Lease = lease
				st, tr, mem := leaseLineRun(t, opts, npkts, starts, length)
				if st != baseSt {
					t.Fatalf("%s workers=%d pass %d: leased stats diverged:\n%+v\n%+v",
						shape.name, workers, pass, st, baseSt)
				}
				for i := range tr {
					if tr[i] != baseTr[i] {
						t.Fatalf("%s workers=%d pass %d: packet %d trace %v != %v",
							shape.name, workers, pass, i, tr[i], baseTr[i])
					}
				}
				if mem != baseMem {
					t.Fatalf("%s workers=%d pass %d: leased MemStats diverged:\n%+v\n%+v",
						shape.name, workers, pass, mem, baseMem)
				}
			}
		}
	}
}

// TestLeaseAdoptionReusesBuffers pins that a warm engine actually
// adopts the stocked table rather than allocating fresh — the reuse
// the lease exists for.
func TestLeaseAdoptionReusesBuffers(t *testing.T) {
	const length = 60
	lease := &Lease{}
	opts := Options{Workers: 1, Seed: 42, MaxKey: length, Lease: lease}
	_, _, _ = leaseLineRun(t, opts, 100, 10, length)
	if lease.shards == nil {
		t.Fatal("completed run left the lease unstocked")
	}
	stocked := &lease.shards[0].table[0]
	warm := New(opts)
	if warm.shards[0].table == nil {
		t.Fatal("warm engine did not adopt the stocked table")
	}
	if &warm.shards[0].table[0] != stocked {
		t.Fatal("warm engine allocated a fresh table despite a matching lease")
	}
	if lease.shards != nil {
		t.Fatal("adoption left the lease stocked (two engines could alias one table)")
	}
}

// TestLeaseShapeMismatchAllocatesFresh: a lease stocked at one shape
// serves a different shape by allocating fresh and restocking at
// release, so one lease adapts as a sweep walks cell shapes.
func TestLeaseShapeMismatchAllocatesFresh(t *testing.T) {
	const length = 60
	lease := &Lease{}
	dense := Options{Workers: 1, Seed: 42, MaxKey: length, Lease: lease}
	_, _, _ = leaseLineRun(t, dense, 100, 10, length)
	if lease.state != StateDense {
		t.Fatalf("lease stocked as %v, want dense", lease.state)
	}
	paged := Options{Workers: 1, Seed: 42, MaxKey: length, ForcePaged: true, Lease: lease}
	base := Options{Workers: 1, Seed: 42, MaxKey: length, ForcePaged: true}
	wantSt, _, wantMem := leaseLineRun(t, base, 100, 10, length)
	st, _, mem := leaseLineRun(t, paged, 100, 10, length)
	if st != wantSt || mem != wantMem {
		t.Fatalf("mismatched-shape leased run diverged:\nstats %+v vs %+v\nmem %+v vs %+v",
			st, wantSt, mem, wantMem)
	}
	if lease.state != StatePaged {
		t.Fatalf("release restocked lease as %v, want paged", lease.state)
	}
}

// TestLeasedEngineSecondRunFailsLoudly: Run donates its buffers to
// the lease when it completes, so reusing the engine must fail on nil
// tables instead of silently aliasing memory another engine may have
// adopted.
func TestLeasedEngineSecondRunFailsLoudly(t *testing.T) {
	eng := New(Options{Workers: 1, Seed: 42, MaxKey: 8, Lease: &Lease{}})
	p := packet.New(0, 0, 1, packet.Transit)
	deliver := func(ctx *Ctx, a Arrival, round int) { a.P.Arrived = round }
	eng.Run(func(ctx *Ctx) { ctx.Emit(0, p) }, deliver, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second Run on a leased engine succeeded; want a loud failure")
		}
	}()
	eng.Run(func(ctx *Ctx) { ctx.Emit(0, p) }, deliver, nil)
}

// TestLeasePoolRecyclesByKey: Put then Get under one key returns the
// same lease; a different key gets a fresh one; the retention limit
// drops the oldest idle lease.
func TestLeasePoolRecyclesByKey(t *testing.T) {
	p := NewLeasePool(2)
	a, b, c := &Lease{}, &Lease{}, &Lease{}
	p.Put("ka", a)
	if got := p.Get("ka"); got != a {
		t.Fatal("Get did not return the idle lease under its key")
	}
	if got := p.Get("ka"); got == a {
		t.Fatal("Get returned a checked-out lease twice")
	}
	p.Put("ka", a)
	p.Put("kb", b)
	p.Put("kc", c) // over limit: ka's lease (oldest) is dropped
	if got := p.Get("ka"); got == a {
		t.Fatal("over-limit Put retained the oldest lease")
	}
	if got := p.Get("kb"); got != b {
		t.Fatal("over-limit Put dropped a lease it should have kept")
	}
	if got := p.Get("kc"); got != c {
		t.Fatal("the just-Put lease is gone")
	}
	p.Put("kd", nil) // nil-safe
}
