package engine

import (
	"runtime"
	"sync"

	"pramemu/internal/queue"
)

// Lease carries the engine's large per-shard allocations — dense link
// tables, paged directories and their touched pages, active-key
// lists, and the radix gather/sort/emit scratch — across runs of the
// same shape, so a warm sweep cell or daemon job reuses its
// predecessor's memory instead of re-allocating and re-faulting it.
// The shape key is (resolved state, shard count, per-shard table
// size): Options.Lease with a matching stocked lease adopts the
// buffers in New, and a completed Run hands them back; a mismatched
// shape simply allocates fresh and restocks the lease at release, so
// one lease adapts as a sweep walks cell shapes.
//
// Reuse is bit-invisible by construction. A completed run's drain
// loop leaves every table slot and page slot nil and the active lists
// empty (the engine's own within-run recycling already relies on
// this), clearScratch zeroes the scratch buffers, and touched pages
// are harvested into a free list with the directory left all-nil — so
// a warm run's first-touch page accounting (and therefore
// MemStats.TableBytes) is identical to a cold run's. An aborted run
// never releases, so dirty state cannot enter a lease. Queue free
// lists are deliberately NOT leased: NewQueue closures differ between
// simulators (mesh disciplines), and leaking one discipline into
// another's run would change behavior.
//
// A Lease is not safe for concurrent use; LeasePool hands distinct
// leases to concurrent cells.
type Lease struct {
	state     State
	nshards   int
	tableSize int
	shards    []leaseShard
}

type leaseShard struct {
	table    []queue.Discipline
	pages    []*[pageSize]queue.Discipline
	pageFree []*[pageSize]queue.Discipline
	active   []uint64
	inbox    []Arrival
	scratch  []Arrival
	out      [][]Arrival
}

// matches reports whether the lease's stock fits an engine shape.
func (l *Lease) matches(state State, nshards, tableSize int) bool {
	return l.shards != nil && l.state == state &&
		l.nshards == nshards && l.tableSize == tableSize
}

// releaseLease hands the engine's per-shard allocations back to its
// lease. Called only at the end of a completed Run — a run that
// panicked (engine.Abort) unwinds past it, so a lease never receives
// dirty buffers. The engine detaches what it donates: an (incorrect)
// second Run on a leased engine fails loudly on nil tables instead of
// silently aliasing memory another engine may have adopted.
func (e *Engine) releaseLease() {
	l := e.lease
	if l == nil {
		return
	}
	e.lease = nil
	if e.state != StateDense && e.state != StatePaged {
		return
	}
	// Snapshot the memory pricing before detaching: MemStats is
	// documented as a post-Run call, and it must report what the run
	// used even though the buffers now live in the lease.
	m := e.MemStats()
	e.mem = &m
	shards := make([]leaseShard, len(e.shards))
	for i := range e.shards {
		sh := &e.shards[i]
		ls := &shards[i]
		ls.table = sh.table
		ls.pages = sh.pages
		ls.pageFree = sh.pageFree
		// Harvest touched pages into the free list, leaving the
		// directory all-nil: the next run re-touches pages one by one
		// (drawing from the free list instead of the heap), keeping
		// its pageCount — and so its MemStats — equal to a cold run's.
		for j, pg := range sh.pages {
			if pg != nil {
				ls.pageFree = append(ls.pageFree, pg)
				sh.pages[j] = nil
			}
		}
		ls.active = sh.active[:0]
		ls.inbox = sh.inbox[:0]
		ls.scratch = sh.scratch[:0]
		ls.out = sh.ctx.out
		sh.table, sh.pages, sh.pageFree, sh.active = nil, nil, nil, nil
		sh.inbox, sh.scratch, sh.ctx.out = nil, nil, nil
	}
	l.state, l.nshards, l.tableSize = e.state, len(e.shards), e.tableSize
	l.shards = shards
}

// LeasePool recycles Leases across independent runs, keyed by an
// opaque caller-chosen shape string (the scenario layer derives it
// from the cell axes that determine engine shape). Get never blocks:
// an empty slot hands out a fresh unstocked Lease, which the first
// run fills. The pool bounds how many idle leases it retains; on
// overflow the oldest idle lease is dropped to the garbage collector,
// so a long-running daemon's lease memory stays proportional to its
// concurrency, not its history of cell shapes.
type LeasePool struct {
	mu    sync.Mutex
	limit int
	count int
	free  map[string][]*Lease
	order []string
}

// NewLeasePool returns a pool retaining at most limit idle leases;
// limit <= 0 selects 2×GOMAXPROCS, enough for a full scenario pool of
// concurrent cells plus headroom for shape churn.
func NewLeasePool(limit int) *LeasePool {
	if limit <= 0 {
		limit = 2 * runtime.GOMAXPROCS(0)
	}
	return &LeasePool{limit: limit, free: map[string][]*Lease{}}
}

// Get checks out a lease for the given shape key, or a fresh empty
// lease when none is idle.
func (p *LeasePool) Get(key string) *Lease {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s := p.free[key]; len(s) > 0 {
		l := s[len(s)-1]
		s[len(s)-1] = nil
		p.free[key] = s[:len(s)-1]
		p.count--
		return l
	}
	return &Lease{}
}

// Put returns a lease to the pool under its shape key. Over the
// retention limit, the oldest idle lease is dropped first.
func (p *LeasePool) Put(key string, l *Lease) {
	if l == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.count >= p.limit && len(p.order) > 0 {
		k := p.order[0]
		p.order = p.order[1:]
		if s := p.free[k]; len(s) > 0 {
			s[len(s)-1] = nil
			p.free[k] = s[:len(s)-1]
			p.count--
		}
	}
	if p.count >= p.limit {
		return
	}
	p.free[key] = append(p.free[key], l)
	p.order = append(p.order, key)
	p.count++
}
