package engine

// Stats is the union of the aggregate measures the simulators report
// (§2.2.1's routing time, queue size and delay, plus the emulation
// counters). Every field merges commutatively — counters by sum,
// maxima by max — which is what lets shards accumulate independently
// and fold without any ordering constraint.
type Stats struct {
	// Rounds is the last round at which any packet finished.
	Rounds int
	// RequestRounds is the last round at which a forward packet was
	// delivered to its destination module.
	RequestRounds int
	// MaxQueue is the largest queue occupancy observed on any link.
	MaxQueue int
	// TotalDelay sums every finished packet's queueing delay.
	TotalDelay int64
	// MaxPacketSteps is the largest hops+delay over finished packets.
	MaxPacketSteps int
	// DeliveredRequests and DeliveredReplies count completions
	// (combined packets count once per constituent).
	DeliveredRequests int
	DeliveredReplies  int
	// Merges counts combining events (Theorem 2.6).
	Merges int
	// Retransmits counts dropped transmissions the event engine's
	// senders retried (always zero on synchronous round runs).
	Retransmits int
	// MaxModuleLoad is the largest per-node load accumulated through
	// Ctx.AddLoad, computed at fold time from the merged per-node sums.
	MaxModuleLoad int
	// Aux is simulator-defined max-merged state (the mesh router keeps
	// its per-stage drain rounds here).
	Aux [4]int
}

// fold merges o into s: sums for counters, max for maxima.
func (s *Stats) fold(o *Stats) {
	maxInto(&s.Rounds, o.Rounds)
	maxInto(&s.RequestRounds, o.RequestRounds)
	maxInto(&s.MaxQueue, o.MaxQueue)
	s.TotalDelay += o.TotalDelay
	maxInto(&s.MaxPacketSteps, o.MaxPacketSteps)
	s.DeliveredRequests += o.DeliveredRequests
	s.DeliveredReplies += o.DeliveredReplies
	s.Merges += o.Merges
	s.Retransmits += o.Retransmits
	maxInto(&s.MaxModuleLoad, o.MaxModuleLoad)
	for i := range s.Aux {
		maxInto(&s.Aux[i], o.Aux[i])
	}
}

func maxInto(dst *int, v int) {
	if v > *dst {
		*dst = v
	}
}
