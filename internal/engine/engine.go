package engine

import (
	"sort"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Arrival is a packet about to enter the queue of the directed link
// identified by Key. Key encoding is simulator-defined; the engine
// only hashes it to a shard and orders by it.
type Arrival struct {
	Key uint64
	P   *packet.Packet
}

// Handler advances one popped packet: the packet just crossed the link
// Arrival.Key during the given round. It may mutate the packet, emit
// follow-up arrivals through ctx, and accumulate statistics — and
// nothing else, since distinct packets are handled concurrently.
type Handler func(ctx *Ctx, a Arrival, round int)

// Combiner is consulted before an arrival is enqueued: given the
// destination link's non-empty queue it may absorb the packet into a
// queued one (Theorem 2.6 message combining) and return true to skip
// the insertion. It runs on the shard owning the queue, so it may
// freely mutate queued packets.
type Combiner func(ctx *Ctx, q queue.Discipline, a Arrival) bool

// Options configures an engine run.
type Options struct {
	// Workers is the worker-pool width; <= 0 selects GOMAXPROCS and 1
	// reproduces the sequential simulation exactly (any width does —
	// that is the engine's defining invariant — but 1 also avoids every
	// synchronization cost).
	Workers int
	// Seed derives the per-shard PRNG streams (Ctx.Rand).
	Seed uint64
	// NewQueue constructs a link queue; nil selects plain FIFO, the
	// discipline of §2.2.1.
	NewQueue func() queue.Discipline
}

// Ctx is the per-shard execution context handed to Handler, Combiner
// and the injection callback. It is never shared between concurrent
// callbacks, so accumulation needs no locks.
type Ctx struct {
	stats Stats
	loads map[int]int
	rand  *prng.Source
	mask  uint64
	out   [][]Arrival // next-round buffer, bucketed by destination shard
}

// Emit schedules p to enter the queue of link key next round (or this
// round's push phase, when called during injection or a pop phase).
// Arrivals are buffered double-buffer style and sorted by (key, packet
// ID) before insertion, so emission order never matters.
func (c *Ctx) Emit(key uint64, p *packet.Packet) {
	s := shardOf(key, c.mask)
	c.out[s] = append(c.out[s], Arrival{key, p})
}

// Stats returns the shard's accumulator. All fields fold commutatively
// across shards, so handlers may update sums and maxima freely.
func (c *Ctx) Stats() *Stats { return &c.stats }

// AddLoad accumulates delta units of load on a node (module). The
// merged per-node sums yield Stats.MaxModuleLoad.
func (c *Ctx) AddLoad(node, delta int) {
	if c.loads == nil {
		c.loads = make(map[int]int)
	}
	c.loads[node] += delta
}

// Rand returns the shard's private PRNG stream, split from the run
// seed by shard index. Because shard layout varies with Workers, this
// stream must only feed decisions that cannot affect simulation output
// (randomized data structures, sampling for diagnostics); randomness
// that shapes the simulation belongs in per-packet streams.
func (c *Ctx) Rand() *prng.Source { return c.rand }

// shard owns a partition of the link queues.
type shard struct {
	ctx   Ctx
	edges map[uint64]queue.Discipline
	free  []queue.Discipline
	inbox []Arrival // scratch for the push phase
}

// Engine runs the synchronous round loop over sharded link state.
type Engine struct {
	pool     *Pool
	shards   []shard
	mask     uint64
	newQueue func() queue.Discipline
}

// parallelThreshold is the number of live link queues below which a
// round runs inline: with so little work per round, goroutine fan-out
// costs more than it saves.
const parallelThreshold = 256

// New builds an engine. The shard count is the smallest power of two
// covering the worker count, so each worker owns about one shard.
func New(opts Options) *Engine {
	pool := NewPool(opts.Workers)
	nshards := 1
	for nshards < pool.Workers() && nshards < 64 {
		nshards *= 2
	}
	newQueue := opts.NewQueue
	if newQueue == nil {
		newQueue = func() queue.Discipline { return queue.NewFIFO(4) }
	}
	e := &Engine{
		pool:     pool,
		shards:   make([]shard, nshards),
		mask:     uint64(nshards - 1),
		newQueue: newQueue,
	}
	// The shard streams come off a tweaked root so they never collide
	// with the per-packet streams Split off prng.New(seed) directly.
	root := prng.New(opts.Seed ^ 0xa5a5a5a5a5a5a5a5)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.edges = make(map[uint64]queue.Discipline)
		sh.ctx = Ctx{
			rand: root.Split(uint64(i)),
			mask: e.mask,
			out:  make([][]Arrival, nshards),
		}
	}
	return e
}

// Workers returns the effective worker count (after the GOMAXPROCS
// default is applied).
func (e *Engine) Workers() int { return e.pool.Workers() }

// shardOf hashes a link key to a shard with a splitmix64-style
// finalizer, so structured key encodings still spread evenly.
func shardOf(key, mask uint64) int {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	return int(key & mask)
}

// Run executes the round loop until every link queue drains. inject
// seeds round 0 by calling ctx.Emit for each initial arrival (and may
// record injection-time deliveries in ctx); handle advances popped
// packets; combine, if non-nil, is offered each arrival before
// insertion. Returns the folded statistics.
func (e *Engine) Run(inject func(ctx *Ctx), handle Handler, combine Combiner) Stats {
	if inject != nil {
		inject(&e.shards[0].ctx)
	}
	e.pushPhase(0, combine, false)
	for round := 1; ; round++ {
		live := 0
		for i := range e.shards {
			live += len(e.shards[i].edges)
		}
		if live == 0 {
			break
		}
		par := live >= parallelThreshold
		e.pool.RunIf(par, len(e.shards), func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				e.shards[s].drain(round, handle)
			}
		})
		e.pushPhase(round, combine, par)
	}
	var out Stats
	loads := make(map[int]int)
	for i := range e.shards {
		out.fold(&e.shards[i].ctx.stats)
		for node, v := range e.shards[i].ctx.loads {
			loads[node] += v
		}
	}
	for _, v := range loads {
		maxInto(&out.MaxModuleLoad, v)
	}
	return out
}

// drain pops the head of every queue in the shard — one packet crosses
// each link per round — accounts its queueing delay, and hands it to
// the handler. Emptied queues are recycled.
func (sh *shard) drain(round int, handle Handler) {
	for key, q := range sh.edges {
		p := q.Pop()
		p.Delay += round - p.EnqueuedAt - 1
		if q.Len() == 0 {
			delete(sh.edges, key)
			sh.free = append(sh.free, q)
		}
		handle(&sh.ctx, Arrival{key, p}, round)
	}
}

// pushPhase moves every emitted arrival into its destination shard's
// queues: each shard gathers its bucket from every source context,
// sorts by (key, ID) — the canonical insertion order that makes queue
// contents independent of shard layout — and inserts, offering each
// arrival to the combiner first.
func (e *Engine) pushPhase(round int, combine Combiner, par bool) {
	e.pool.RunIf(par, len(e.shards), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			e.pushShard(s, round, combine)
		}
	})
}

func (e *Engine) pushShard(s, round int, combine Combiner) {
	sh := &e.shards[s]
	buf := sh.inbox[:0]
	for i := range e.shards {
		src := &e.shards[i].ctx
		buf = append(buf, src.out[s]...)
		src.out[s] = src.out[s][:0]
	}
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].Key != buf[j].Key {
			return buf[i].Key < buf[j].Key
		}
		return buf[i].P.ID < buf[j].P.ID
	})
	for _, a := range buf {
		q := sh.edges[a.Key]
		if combine != nil && q != nil && combine(&sh.ctx, q, a) {
			continue
		}
		if q == nil {
			if n := len(sh.free); n > 0 {
				q = sh.free[n-1]
				sh.free = sh.free[:n-1]
			} else {
				q = e.newQueue()
			}
			sh.edges[a.Key] = q
		}
		a.P.EnqueuedAt = round
		q.Push(a.P)
		if l := q.Len(); l > sh.ctx.stats.MaxQueue {
			sh.ctx.stats.MaxQueue = l
		}
	}
	sh.inbox = buf[:0]
}
