package engine

import (
	"context"
	"fmt"
	"math/bits"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Abort is the panic value the engine unwinds with when its
// Options.Context is done mid-run. Simulators never recover it — the
// whole point is to tear down their routing state mid-flight — so it
// surfaces at the layer that owns the run (scenario.RunCellSafe),
// which converts it into a structured timeout/canceled error result
// instead of a crash. Err is the context's error, preserving the
// deadline-exceeded vs canceled distinction.
type Abort struct{ Err error }

func (a Abort) Error() string { return "engine: run aborted: " + a.Err.Error() }

// Arrival is a packet about to enter the queue of the directed link
// identified by Key. Key encoding is simulator-defined; the engine
// only maps it to a shard and orders by it.
type Arrival struct {
	Key uint64
	P   *packet.Packet
}

// Handler advances one popped packet: the packet just crossed the link
// Arrival.Key during the given round. It may mutate the packet, emit
// follow-up arrivals through ctx, and accumulate statistics — and
// nothing else, since distinct packets are handled concurrently.
type Handler func(ctx *Ctx, a Arrival, round int)

// Combiner is consulted before an arrival is enqueued: given the
// destination link's non-empty queue it may absorb the packet into a
// queued one (Theorem 2.6 message combining) and return true to skip
// the insertion. It runs on the shard owning the queue, so it may
// freely mutate queued packets.
type Combiner func(ctx *Ctx, q queue.Discipline, a Arrival) bool

// flatKeyLimit caps the declared key space the engine will back with
// flat slice-indexed tables: one table slot is one queue.Discipline
// interface value (two words), so the cap bounds flat-table memory at
// 256 MiB worst case. Beyond it the engine switches to paged tables
// (StatePaged), which price the full declaration at 8 bytes per
// pageSize keys of directory and allocate slot pages only on first
// touch — so any addressable key space stays on the dense fast path,
// bounded by touched keys instead of declared keys.
const flatKeyLimit = 1 << 24

// pageBits sizes the paged-table pages: 1<<pageBits slots per page.
// 4096 slots is 64 KiB of queue slots per page — big enough that the
// directory stays tiny, small enough that a sparse run only pays for
// the neighborhoods it touches.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// pagedKeyLimit caps the declared key space the paged tables will
// cover: the page directory costs 8 bytes per pageSize keys, so 2^34
// declared keys price a 32 MiB directory — negligible against the
// queues a run that size actually touches. Beyond it (which no
// node×degree slot encoding reaches — that is >16 billion directed
// links) the hashed fallback takes over; sparse pair-packed encodings
// that exceed it belong there anyway.
const pagedKeyLimit = 1 << 34

// Options configures an engine run.
type Options struct {
	// Workers is the worker-pool width; <= 0 selects GOMAXPROCS and 1
	// reproduces the sequential simulation exactly (any width does —
	// that is the engine's defining invariant — but 1 also avoids every
	// synchronization cost).
	Workers int
	// Seed derives the per-shard PRNG streams (Ctx.Rand).
	Seed uint64
	// NewQueue constructs a link queue; nil selects plain FIFO, the
	// discipline of §2.2.1.
	NewQueue func() queue.Discipline
	// MaxKey declares that every key the run will Emit lies in
	// [0, MaxKey). Simulators whose link encodings are dense by
	// construction (node*degree + slot) set it so each shard owns a
	// slice-indexed queue table plus an incrementally maintained
	// active-key list instead of a hash map — the allocation-free hot
	// path. Zero, or a value beyond the engine's internal table-memory
	// cap, selects the hashed fallback, which accepts arbitrary 64-bit
	// keys. The two paths produce bit-identical results: insertion
	// order is canonical either way, and per-round effects commute.
	//
	// Dense declarations up to flatKeyLimit get flat tables
	// (StateDense); larger ones get paged tables (StatePaged), whose
	// memory is bounded by touched keys. Zero selects the hashed
	// fallback (StateHashed).
	MaxKey uint64
	// MemBudget, when positive, caps the fixed (up-front) link-table
	// footprint in bytes: flat slots for StateDense, the page
	// directory for StatePaged. A dense or paged resolution whose
	// fixed footprint exceeds the budget degrades to StateHashed —
	// which only pays for live keys — instead of erroring, and the
	// demotion is recorded in MemStats.Degraded. Zero means no budget.
	MemBudget int64
	// ForcePaged forces the paged table representation for any dense
	// declaration, including ones small enough for flat tables. It
	// exists so tests and benchmarks can exercise the paged path
	// against flat-dense results on the same key space; simulators
	// never need it.
	ForcePaged bool
	// Event, when non-nil, selects the asynchronous discrete-event
	// loop instead of the synchronous round loop: the same injection,
	// handler and combiner callbacks run over a timestamped min-heap
	// with per-link latency, bandwidth caps and fault injection (see
	// EventOptions). The event loop is strictly sequential — its heap
	// order is the schedule — so Workers and MaxKey are ignored and
	// results are identical for any setting of either.
	Event *EventOptions
	// Context, when non-nil, bounds the run: the round loop polls it
	// between rounds (a non-blocking channel read, nanoseconds against
	// a round's link work) and the event loop every few thousand heap
	// events, and unwinds with an Abort panic carrying ctx.Err() when
	// it is done. A run that was never canceled is bit-identical to
	// one with no Context at all — the poll reads no randomness and
	// touches no simulation state.
	Context context.Context
	// Lease, when non-nil, recycles the engine's per-shard table,
	// page, active-list and scratch allocations across runs of the
	// same shape (see Lease). A stocked lease whose shape matches is
	// adopted in New; a completed Run hands the buffers back. Reuse is
	// bit-invisible: adopted buffers are empty by the drain/clear
	// invariants, so results and MemStats are identical with or
	// without a lease. An engine given a Lease is single-run — Run
	// donates its buffers when it returns. Dense and paged states
	// only; hashed and event engines ignore the lease.
	Lease *Lease
}

// Ctx is the per-shard execution context handed to Handler, Combiner
// and the injection callback. It is never shared between concurrent
// callbacks, so accumulation needs no locks.
type Ctx struct {
	stats  Stats
	loads  map[int]int
	rand   *prng.Source
	mask   uint64
	dense  bool
	maxKey uint64
	shard  int         // owning shard index, for diagnostics
	round  int         // round currently executing on this shard
	out    [][]Arrival // next-round buffer, bucketed by destination shard
}

// Emit schedules p to enter the queue of link key next round (or this
// round's push phase, when called during injection or a pop phase).
// Arrivals are buffered double-buffer style and sorted by (key, packet
// ID) before insertion, so emission order never matters. On a dense
// engine a key outside the declared [0, MaxKey) range panics: it is a
// simulator encoding bug that a hash map would silently absorb.
func (c *Ctx) Emit(key uint64, p *packet.Packet) {
	var s int
	if c.dense {
		if key >= c.maxKey {
			pid := -1
			if p != nil {
				pid = p.ID
			}
			panic(fmt.Sprintf("engine: shard %d round %d packet %d: emitted key %d outside the declared dense key space [0, %d)",
				c.shard, c.round, pid, key, c.maxKey))
		}
		s = int(key & c.mask)
	} else {
		s = shardOf(key, c.mask)
	}
	c.out[s] = append(c.out[s], Arrival{key, p})
}

// Stats returns the shard's accumulator. All fields fold commutatively
// across shards, so handlers may update sums and maxima freely.
func (c *Ctx) Stats() *Stats { return &c.stats }

// AddLoad accumulates delta units of load on a node (module). The
// merged per-node sums yield Stats.MaxModuleLoad.
func (c *Ctx) AddLoad(node, delta int) {
	if c.loads == nil {
		c.loads = make(map[int]int)
	}
	c.loads[node] += delta
}

// Rand returns the shard's private PRNG stream, split from the run
// seed by shard index. Because shard layout varies with Workers, this
// stream must only feed decisions that cannot affect simulation output
// (randomized data structures, sampling for diagnostics); randomness
// that shapes the simulation belongs in per-packet streams.
func (c *Ctx) Rand() *prng.Source { return c.rand }

// shard owns a partition of the link queues: a slice-indexed table
// plus active-key list on the dense path, a hash map on the fallback.
type shard struct {
	ctx Ctx
	// edges is the hashed-path link state (nil on the dense paths).
	edges map[uint64]queue.Discipline
	// table is the flat dense-path link state: the queue of key k
	// lives at table[k>>shift], since the low shift bits select the
	// shard.
	table []queue.Discipline
	// pages is the paged dense-path link state: the queue of key k
	// lives at pages[(k>>shift)>>pageBits][(k>>shift)&pageMask], with
	// pages allocated on first touch so memory tracks touched keys,
	// not the declared key space. pageCount counts allocated pages
	// (pages are retained once touched, keeping the warm loop
	// allocation-free).
	pages     []*[pageSize]queue.Discipline
	pageCount int
	// pageFree holds drained pages harvested by an adopted Lease;
	// first touch draws from it before the heap. Recycled pages are
	// all-nil by the drain invariant, so reuse is bit-invisible.
	pageFree []*[pageSize]queue.Discipline
	// peakLive is the high-water live-queue count, the basis of the
	// hashed path's TableBytes estimate.
	peakLive int
	// active lists the keys with non-empty queues, maintained
	// incrementally (append on first insert, swap-remove on drain), so
	// the drain phase iterates a compact slice instead of re-scanning.
	active []uint64
	// live counts non-empty queues on both paths, so Engine.Run never
	// re-derives liveness from container sizes.
	live    int
	shift   uint
	free    []queue.Discipline
	inbox   []Arrival // push-phase gather buffer, reused every round
	scratch []Arrival // radix-sort spare buffer, reused every round
}

// Engine runs the synchronous round loop over sharded link state.
type Engine struct {
	pool      *Pool
	shards    []shard
	mask      uint64
	newQueue  func() queue.Discipline
	dense     bool
	state     State
	degraded  bool
	seed      uint64
	event     *EventOptions   // nil = synchronous round loop
	ctx       context.Context // nil = unbounded run
	lease     *Lease          // nil = no cross-run buffer reuse
	tableSize int             // per-shard dense/paged slots (the lease shape key)
	mem       *MemStats       // pricing snapshot taken when a lease detaches the tables

	// Per-run state referenced by the preallocated phase closures, so
	// a steady-state round performs no closure or interface
	// allocation.
	round   int
	handle  Handler
	combine Combiner
	drainFn func(w, lo, hi int)
	pushFn  func(w, lo, hi int)
}

// parallelThreshold is the number of live link queues below which a
// round runs inline: with so little work per round, goroutine fan-out
// costs more than it saves.
const parallelThreshold = 256

// New builds an engine. The shard count is the smallest power of two
// covering the worker count, so each worker owns about one shard.
func New(opts Options) *Engine {
	var eventOpts *EventOptions
	if opts.Event != nil {
		ev := opts.Event.withDefaults()
		if err := ev.Validate(); err != nil {
			panic("engine: " + err.Error())
		}
		eventOpts = &ev
		// The event loop is a single global timestamped order: one
		// shard, no parallel phases, no dense tables — its link map is
		// keyed by event time, not shard layout.
		opts.Workers = 1
		opts.MaxKey = 0
	}
	pool := NewPool(opts.Workers)
	nshards := 1
	for nshards < pool.Workers() && nshards < 64 {
		nshards *= 2
	}
	newQueue := opts.NewQueue
	if newQueue == nil {
		newQueue = func() queue.Discipline { return queue.NewFIFO(4) }
	}
	shift := uint(bits.TrailingZeros(uint(nshards)))
	state, degraded := StateHashed, false
	tableSize, numPages := 0, 0
	if opts.MaxKey > 0 && opts.MaxKey <= pagedKeyLimit {
		tableSize = int((opts.MaxKey-1)>>shift) + 1
		numPages = (tableSize-1)>>pageBits + 1
		if opts.MaxKey <= flatKeyLimit && !opts.ForcePaged {
			state = StateDense
		} else {
			state = StatePaged
		}
		// The budget gates the fixed footprint — everything the dense
		// states allocate before a single key is touched: flat slots
		// for StateDense, the page directory for StatePaged. Over
		// budget degrades to hashed (pay-per-live-key) rather than
		// erroring; MemStats records the demotion.
		if opts.MemBudget > 0 {
			var fixed int64
			if state == StateDense {
				fixed = int64(nshards) * int64(tableSize) * queueSlotBytes
			} else {
				fixed = int64(nshards) * int64(numPages) * 8
			}
			if fixed > opts.MemBudget {
				state, degraded = StateHashed, true
			}
		}
	}
	e := &Engine{
		pool:      pool,
		shards:    make([]shard, nshards),
		mask:      uint64(nshards - 1),
		newQueue:  newQueue,
		dense:     state != StateHashed,
		state:     state,
		degraded:  degraded,
		seed:      opts.Seed,
		event:     eventOpts,
		ctx:       opts.Context,
		tableSize: tableSize,
	}
	// A lease attaches only on the dense states it can stock; its
	// buffers are adopted when the stocked shape matches, otherwise
	// the run allocates fresh and restocks the lease at release.
	var adopt []leaseShard
	if l := opts.Lease; l != nil && (state == StateDense || state == StatePaged) {
		e.lease = l
		if l.matches(state, nshards, tableSize) {
			adopt = l.shards
			l.shards = nil
		}
	}
	// The shard streams come off a tweaked root so they never collide
	// with the per-packet streams Split off prng.New(seed) directly.
	root := prng.New(opts.Seed ^ 0xa5a5a5a5a5a5a5a5)
	for i := range e.shards {
		sh := &e.shards[i]
		switch state {
		case StateDense:
			if adopt != nil {
				sh.table = adopt[i].table
			} else {
				sh.table = make([]queue.Discipline, tableSize)
			}
			sh.shift = shift
		case StatePaged:
			if adopt != nil {
				sh.pages = adopt[i].pages
				sh.pageFree = adopt[i].pageFree
			} else {
				sh.pages = make([]*[pageSize]queue.Discipline, numPages)
			}
			sh.shift = shift
		default:
			sh.edges = make(map[uint64]queue.Discipline)
		}
		sh.ctx = Ctx{
			rand:   root.Split(uint64(i)),
			mask:   e.mask,
			dense:  e.dense,
			maxKey: opts.MaxKey,
			shard:  i,
			out:    make([][]Arrival, nshards),
		}
		if adopt != nil {
			sh.active = adopt[i].active
			sh.inbox = adopt[i].inbox
			sh.scratch = adopt[i].scratch
			if len(adopt[i].out) == nshards {
				sh.ctx.out = adopt[i].out
			}
		}
	}
	e.drainFn = func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			e.shards[s].drain(e.round, e.handle)
		}
	}
	e.pushFn = func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			e.pushShard(s, e.round, e.combine)
		}
	}
	return e
}

// Workers returns the effective worker count (after the GOMAXPROCS
// default is applied).
func (e *Engine) Workers() int { return e.pool.Workers() }

// State returns the resolved link-state representation.
func (e *Engine) State() State { return e.state }

// shardOf hashes a link key to a shard with a splitmix64-style
// finalizer, so structured key encodings still spread evenly.
func shardOf(key, mask uint64) int {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	return int(key & mask)
}

// Run executes the round loop until every link queue drains. inject
// seeds round 0 by calling ctx.Emit for each initial arrival (and may
// record injection-time deliveries in ctx); handle advances popped
// packets; combine, if non-nil, is offered each arrival before
// insertion. Returns the folded statistics.
//
// A steady-state round on the dense path allocates nothing: link
// tables, active lists, gather and sort buffers and recycled queues
// all reach their high-water capacity during warm-up and are reused
// thereafter (the zero-allocation invariant asserted by
// TestSteadyStateRoundIsAllocationFree).
func (e *Engine) Run(inject func(ctx *Ctx), handle Handler, combine Combiner) Stats {
	if e.event != nil {
		return e.runEvent(inject, handle, combine)
	}
	e.handle, e.combine = handle, combine
	if inject != nil {
		inject(&e.shards[0].ctx)
	}
	e.round = 0
	e.pool.RunIf(false, len(e.shards), e.pushFn)
	for round := 1; ; round++ {
		e.checkContext()
		live := 0
		for i := range e.shards {
			live += e.shards[i].live
		}
		if live == 0 {
			break
		}
		par := live >= parallelThreshold
		e.round = round
		e.pool.RunIf(par, len(e.shards), e.drainFn)
		e.pool.RunIf(par, len(e.shards), e.pushFn)
	}
	e.clearScratch()
	e.releaseLease()
	var out Stats
	var loads map[int]int
	for i := range e.shards {
		out.fold(&e.shards[i].ctx.stats)
		for node, v := range e.shards[i].ctx.loads {
			if loads == nil {
				loads = make(map[int]int)
			}
			loads[node] += v
		}
	}
	for _, v := range loads {
		maxInto(&out.MaxModuleLoad, v)
	}
	return out
}

// checkContext polls Options.Context and unwinds the run with an
// Abort panic when it is done — the cancellation/deadline path of both
// loops. The poll is a non-blocking channel read: it reads no
// randomness and touches no simulation state, so a run that is never
// canceled is bit-identical to one without a Context.
func (e *Engine) checkContext() {
	if e.ctx == nil {
		return
	}
	select {
	case <-e.ctx.Done():
		panic(Abort{e.ctx.Err()})
	default:
	}
}

// clearScratch zeroes the full capacity of every retained gather,
// sort and emit buffer once the round loop has drained. During a run
// the slack beyond each round's length holds arrivals from earlier,
// busier rounds; left unzeroed after Run returns, those slots would
// pin every delivered packet (and its recorded path) until the next
// run happens to overwrite them. One sweep at the end costs a single
// pass; zeroing per round would re-clear the high-water capacity
// hundreds of times.
func (e *Engine) clearScratch() {
	for i := range e.shards {
		sh := &e.shards[i]
		clear(sh.inbox[:cap(sh.inbox)])
		clear(sh.scratch[:cap(sh.scratch)])
		for j, out := range sh.ctx.out {
			clear(out[:cap(out)])
			sh.ctx.out[j] = out[:0]
		}
	}
}

// drain pops the head of every queue in the shard — one packet crosses
// each link per round — accounts its queueing delay, and hands it to
// the handler. Emptied queues are recycled. On the dense path the
// iteration walks the compact active-key list with swap-removal;
// every key present at entry is visited exactly once, because the
// handler can only append to next-round buffers, never to this list.
func (sh *shard) drain(round int, handle Handler) {
	sh.ctx.round = round
	if sh.table != nil {
		for i := 0; i < len(sh.active); {
			key := sh.active[i]
			idx := key >> sh.shift
			q := sh.table[idx]
			p := q.Pop()
			p.Delay += round - p.EnqueuedAt - 1
			if q.Len() == 0 {
				sh.table[idx] = nil
				sh.free = append(sh.free, q)
				sh.live--
				last := len(sh.active) - 1
				sh.active[i] = sh.active[last]
				sh.active = sh.active[:last]
			} else {
				i++
			}
			handle(&sh.ctx, Arrival{key, p}, round)
		}
		return
	}
	if sh.pages != nil {
		for i := 0; i < len(sh.active); {
			key := sh.active[i]
			idx := key >> sh.shift
			pg := sh.pages[idx>>pageBits]
			slot := idx & pageMask
			q := pg[slot]
			p := q.Pop()
			p.Delay += round - p.EnqueuedAt - 1
			if q.Len() == 0 {
				pg[slot] = nil
				sh.free = append(sh.free, q)
				sh.live--
				last := len(sh.active) - 1
				sh.active[i] = sh.active[last]
				sh.active = sh.active[:last]
			} else {
				i++
			}
			handle(&sh.ctx, Arrival{key, p}, round)
		}
		return
	}
	for key, q := range sh.edges {
		p := q.Pop()
		p.Delay += round - p.EnqueuedAt - 1
		if q.Len() == 0 {
			delete(sh.edges, key)
			sh.free = append(sh.free, q)
			sh.live--
		}
		handle(&sh.ctx, Arrival{key, p}, round)
	}
}

// pushShard moves every arrival destined for shard s into its queues:
// the shard gathers its bucket from every source context, radix-sorts
// by (key, ID) — the canonical insertion order that makes queue
// contents independent of shard layout — and inserts, offering each
// arrival to the combiner first. The gather and sort buffers are
// reused as-is between rounds and zeroed once at the end of Run
// (clearScratch), so their slack never pins packets past the run.
func (e *Engine) pushShard(s, round int, combine Combiner) {
	sh := &e.shards[s]
	sh.ctx.round = round
	buf := sh.inbox[:0]
	for i := range e.shards {
		src := &e.shards[i].ctx
		buf = append(buf, src.out[s]...)
		src.out[s] = src.out[s][:0]
	}
	sorted, spare := SortArrivals(buf, sh.scratch)
	if sh.table != nil {
		for _, a := range sorted {
			idx := a.Key >> sh.shift
			q := sh.table[idx]
			if combine != nil && q != nil && combine(&sh.ctx, q, a) {
				continue
			}
			if q == nil {
				q = sh.takeQueue(e)
				sh.table[idx] = q
				sh.active = append(sh.active, a.Key)
				sh.live++
			}
			a.P.EnqueuedAt = round
			q.Push(a.P)
			if l := q.Len(); l > sh.ctx.stats.MaxQueue {
				sh.ctx.stats.MaxQueue = l
			}
		}
	} else if sh.pages != nil {
		for _, a := range sorted {
			idx := a.Key >> sh.shift
			pg := sh.pages[idx>>pageBits]
			var q queue.Discipline
			if pg != nil {
				q = pg[idx&pageMask]
			}
			if combine != nil && q != nil && combine(&sh.ctx, q, a) {
				continue
			}
			if q == nil {
				// First touch of this page allocates it (recycling a
				// leased page when one is free); combined-away
				// arrivals above never reach here, so absorption alone
				// costs no page. Pages are retained once allocated, so
				// a warm steady-state round stays allocation-free.
				if pg == nil {
					pg = sh.takePage()
					sh.pages[idx>>pageBits] = pg
					sh.pageCount++
				}
				q = sh.takeQueue(e)
				pg[idx&pageMask] = q
				sh.active = append(sh.active, a.Key)
				sh.live++
			}
			a.P.EnqueuedAt = round
			q.Push(a.P)
			if l := q.Len(); l > sh.ctx.stats.MaxQueue {
				sh.ctx.stats.MaxQueue = l
			}
		}
	} else {
		for _, a := range sorted {
			q := sh.edges[a.Key]
			if combine != nil && q != nil && combine(&sh.ctx, q, a) {
				continue
			}
			if q == nil {
				q = sh.takeQueue(e)
				sh.edges[a.Key] = q
				sh.live++
				if sh.live > sh.peakLive {
					sh.peakLive = sh.live
				}
			}
			a.P.EnqueuedAt = round
			q.Push(a.P)
			if l := q.Len(); l > sh.ctx.stats.MaxQueue {
				sh.ctx.stats.MaxQueue = l
			}
		}
	}
	sh.inbox, sh.scratch = sorted[:0], spare[:0]
}

// takePage recycles a lease-harvested page or constructs a fresh one.
// Recycled pages are all-nil by the drain invariant, so first-touch
// behavior is identical either way.
func (sh *shard) takePage() *[pageSize]queue.Discipline {
	if n := len(sh.pageFree); n > 0 {
		pg := sh.pageFree[n-1]
		sh.pageFree[n-1] = nil
		sh.pageFree = sh.pageFree[:n-1]
		return pg
	}
	return new([pageSize]queue.Discipline)
}

// takeQueue recycles a drained queue or constructs a fresh one.
func (sh *shard) takeQueue(e *Engine) queue.Discipline {
	if n := len(sh.free); n > 0 {
		q := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return q
	}
	return e.newQueue()
}
