// Registry conformance: one property suite that every registered
// family must pass, at several sizes each, replacing per-family
// ad-hoc path tests — a family registered tomorrow is covered
// automatically (unknown names fall back to default parameters).
// The suite checks the Graph contract (slots in range, mutual link
// consistency), the deterministic-path contract (NextHop walks
// terminate at dst within Diameter() — or the declared MaxPathLen for
// path-bounded/taken-sensitive graphs — and are identical when
// re-walked), and that every family routes under Valiant two-phase
// with Workers > 1 bit-identically to the sequential engine (this is
// the test CI runs under the race detector, so every registered
// topology's NextHop is race-checked under concurrent routing).
package topology_test

import (
	"fmt"
	"testing"

	"pramemu/internal/leveled"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

// conformanceSizes lists the sizes each family is exercised at;
// families without an entry run once at their default parameters.
var conformanceSizes = map[string][]topology.Params{
	"star":      {{N: 3}, {N: 4}, {N: 5}},
	"pancake":   {{N: 3}, {N: 4}, {N: 5}},
	"ttree":     {{N: 4, K: 0}, {N: 5, K: 1}, {N: 4, K: 2}},
	"shuffle":   {{N: 2}, {N: 3}, {N: 2, K: 4}},
	"debruijn":  {{N: 4}, {N: 6}, {N: 3, K: 3}},
	"hypercube": {{N: 3}, {N: 6}},
	"torus":     {{N: 4, K: 2}, {N: 5, K: 2}, {N: 3, K: 3}, {N: 2, K: 5}},
	"mesh":      {{N: 3}, {N: 6}},
	"butterfly": {{N: 4}, {N: 3, K: 3}},
}

func conformanceCases(t *testing.T) []topology.Built {
	t.Helper()
	var out []topology.Built
	for _, name := range topology.Names() {
		sizes := conformanceSizes[name]
		if len(sizes) == 0 {
			t.Logf("family %q has no conformance sizes; using defaults", name)
			sizes = []topology.Params{{}}
		}
		for _, p := range sizes {
			b, err := topology.Build(name, p)
			if err != nil {
				t.Fatalf("%s%+v: %v", name, p, err)
			}
			out = append(out, b)
		}
	}
	return out
}

// walk follows the deterministic path from src to dst, failing if it
// leaves the node range or exceeds the declared bound.
func walk(t *testing.T, g topology.Graph, src, dst int) []int {
	t.Helper()
	bound := topology.MaxPath(g)
	path := []int{src}
	at := src
	for taken := 0; ; taken++ {
		slot, done := g.NextHop(at, dst, taken)
		if done {
			if at != dst {
				t.Fatalf("%s: path %d->%d declared done at %d", g.Name(), src, dst, at)
			}
			return path
		}
		if taken >= bound {
			t.Fatalf("%s: path %d->%d exceeded bound %d", g.Name(), src, dst, bound)
		}
		if slot < 0 || slot >= g.Degree(at) {
			t.Fatalf("%s: NextHop(%d, %d, %d) slot %d out of range [0, %d)",
				g.Name(), at, dst, taken, slot, g.Degree(at))
		}
		at = g.Neighbor(at, slot)
		if at < 0 || at >= g.Nodes() {
			t.Fatalf("%s: walked off the graph to %d", g.Name(), at)
		}
		path = append(path, at)
	}
}

func samplePairs(nodes, want int, seed uint64) [][2]int {
	if nodes*nodes <= want {
		out := make([][2]int, 0, nodes*nodes)
		for u := 0; u < nodes; u++ {
			for v := 0; v < nodes; v++ {
				out = append(out, [2]int{u, v})
			}
		}
		return out
	}
	src := prng.New(seed)
	out := make([][2]int, want)
	for i := range out {
		out[i] = [2]int{src.Intn(nodes), src.Intn(nodes)}
	}
	return out
}

func TestRegistryConformance(t *testing.T) {
	for _, b := range conformanceCases(t) {
		b := b
		t.Run(b.Name(), func(t *testing.T) {
			if b.Graph != nil {
				checkGraph(t, b.Graph)
			}
			checkParallelRouting(t, b)
		})
	}
}

// checkGraph asserts the structural contract and the deterministic-
// path properties on a sample of (src, dst) pairs.
func checkGraph(t *testing.T, g topology.Graph) {
	nodes := g.Nodes()
	if nodes < 2 {
		t.Fatalf("%s has %d nodes", g.Name(), nodes)
	}
	if g.Diameter() < 1 {
		t.Fatalf("%s declares diameter %d", g.Name(), g.Diameter())
	}
	if topology.MaxPath(g) < g.Diameter() {
		t.Fatalf("%s declares MaxPathLen %d below its diameter %d",
			g.Name(), topology.MaxPath(g), g.Diameter())
	}
	// Neighbor slots stay in range on every node (or a sample when
	// the graph is large).
	step := 1
	if nodes > 4096 {
		step = nodes / 4096
	}
	for u := 0; u < nodes; u += step {
		deg := g.Degree(u)
		if deg < 1 {
			t.Fatalf("%s: node %d has degree %d", g.Name(), u, deg)
		}
		for s := 0; s < deg; s++ {
			v := g.Neighbor(u, s)
			if v < 0 || v >= nodes {
				t.Fatalf("%s: Neighbor(%d, %d) = %d out of range", g.Name(), u, s, v)
			}
		}
	}
	// Deterministic paths terminate at dst within the bound, and
	// re-walking yields the identical path.
	for _, pair := range samplePairs(nodes, 300, 42) {
		first := walk(t, g, pair[0], pair[1])
		second := walk(t, g, pair[0], pair[1])
		if fmt.Sprint(first) != fmt.Sprint(second) {
			t.Fatalf("%s: path %d->%d not deterministic:\n%v\n%v",
				g.Name(), pair[0], pair[1], first, second)
		}
	}
}

// checkParallelRouting routes a fixed-seed read-request permutation
// (with replies and combining, so the full pipeline runs) under
// Workers: 1 and Workers: 4 and requires identical statistics. Under
// `go test -race` this doubles as the race check for every registered
// topology's NextHop/Neighbor under concurrent routing.
func checkParallelRouting(t *testing.T, b topology.Built) {
	pkts := func() []*packet.Packet {
		perm := prng.New(7).Perm(b.Nodes())
		out := make([]*packet.Packet, len(perm))
		for i, dst := range perm {
			p := packet.New(i, i, dst, packet.ReadRequest)
			p.Addr = uint64(dst / 2)
			p.Proc = i
			out[i] = p
		}
		return out
	}
	route := func(workers int) any {
		if b.Graph == nil {
			return leveled.Route(b.Spec, pkts(), leveled.Options{
				Seed: 99, Replies: true, Combine: true, Workers: workers,
			})
		}
		st, err := simnet.Route(b.Graph, pkts(), simnet.Options{
			Seed: 99, Replies: true, Combine: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		return st
	}
	seq := route(1)
	par := route(4)
	if seq != par {
		t.Fatalf("%s: Workers=4 diverged from Workers=1:\nseq: %+v\npar: %+v", b.Name(), seq, par)
	}
	// Reply-free routing additionally exercises the engine's dense
	// link-state path (replies force the hashed fallback above); the
	// dense tables and the hashed maps must agree with each other and
	// across worker counts.
	direct := func(workers int, hashed bool) any {
		if b.Graph == nil {
			return leveled.Route(b.Spec, pkts(), leveled.Options{
				Seed: 99, Workers: workers, HashedKeys: hashed,
			})
		}
		st, err := simnet.Route(b.Graph, pkts(), simnet.Options{
			Seed: 99, Workers: workers, HashedKeys: hashed,
		})
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		return st
	}
	dense := direct(1, false)
	for _, v := range []struct {
		workers int
		hashed  bool
	}{{4, false}, {1, true}, {4, true}} {
		if got := direct(v.workers, v.hashed); got != dense {
			t.Fatalf("%s: Workers=%d hashed=%v diverged from dense Workers=1:\nwant: %+v\ngot:  %+v",
				b.Name(), v.workers, v.hashed, dense, got)
		}
	}
}
