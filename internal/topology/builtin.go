// Registration of the one family that lives below the registry in
// the import graph: the d-ary butterfly is defined by
// internal/leveled (which topology itself imports), so its
// registration sits here. Every graph family self-registers from its
// own package via topology.Register in an init function — the plugin
// pattern that makes a new family a local change — and
// internal/topology/families aggregates those imports for callers
// that want the full registry.

package topology

import (
	"fmt"

	"pramemu/internal/leveled"
)

func init() {
	Register(Family{
		Name:    "butterfly",
		Params:  "N = dimension k >= 1 (default 8): 2^k rows, k+1 columns; K = arity d (default 2)",
		Theorem: "Thm 2.1: the canonical unrolled leveled network",
		Build: func(p Params) (Built, error) {
			k := DefaultInt(p.N, 8)
			d := DefaultInt(p.K, 2)
			if k < 1 {
				return Built{}, fmt.Errorf("butterfly dimension must be >= 1, got %d", k)
			}
			if err := CheckPow("butterfly", d, k, MaxNodes); err != nil {
				return Built{}, err
			}
			return Built{Spec: leveled.NewDAry(d, k+1)}, nil
		},
	})
}

// DefaultInt substitutes def for the zero value — the helper family
// builders use to give Params fields documented defaults.
func DefaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// CheckPow validates 2 <= d, 1 <= n and d^n <= cap, the shared
// size-validation of the exponential families.
func CheckPow(family string, d, n, cap int) error {
	if d < 2 {
		return fmt.Errorf("%s alphabet/radix must be >= 2, got %d", family, d)
	}
	if n < 1 {
		return fmt.Errorf("%s digit/dimension count must be >= 1, got %d", family, n)
	}
	nodes := 1
	for i := 0; i < n; i++ {
		if nodes > cap/d {
			return fmt.Errorf("%s size %d^%d exceeds the %d-node bound", family, d, n, cap)
		}
		nodes *= d
	}
	return nil
}
