// Package families pulls in every built-in network family for its
// registration side effect. Import it (blank) wherever registry
// completeness matters — the commands, the experiments, the
// conformance suite — so topology.Build resolves every -net name.
// The butterfly registers from internal/topology itself (it is
// defined by internal/leveled, below the registry in the import
// graph).
package families

import (
	_ "pramemu/internal/debruijn"
	_ "pramemu/internal/hypercube"
	_ "pramemu/internal/mesh"
	_ "pramemu/internal/pancake"
	_ "pramemu/internal/shuffle"
	_ "pramemu/internal/star"
	_ "pramemu/internal/torus"
	_ "pramemu/internal/ttree"
)
