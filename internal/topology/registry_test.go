package topology_test

import (
	"strings"
	"testing"

	"pramemu/internal/hypercube"
	"pramemu/internal/topology"
)

func TestBuildUnknownNameListsFamilies(t *testing.T) {
	_, err := topology.Build("klein-bottle", topology.Params{})
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	if !strings.Contains(err.Error(), "star") {
		t.Fatalf("error does not list known families: %v", err)
	}
}

func TestBuildFillsLeveledView(t *testing.T) {
	// Families implementing Leveler get their Spec populated
	// automatically; memoryless graphs stay graph-only; the butterfly
	// is leveled-only.
	star, err := topology.Build("star", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if star.Graph == nil || star.Spec == nil {
		t.Fatalf("star should carry both views: %+v", star)
	}
	cube, err := topology.Build("hypercube", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cube.Graph == nil || cube.Spec != nil {
		t.Fatalf("hypercube should be graph-only: %+v", cube)
	}
	bf, err := topology.Build("butterfly", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Graph != nil || bf.Spec == nil {
		t.Fatalf("butterfly should be leveled-only: %+v", bf)
	}
	if bf.Nodes() != 16 || bf.Diameter() != 4 {
		t.Fatalf("butterfly Built reports (%d, %d)", bf.Nodes(), bf.Diameter())
	}
}

func TestBuildValidatesParams(t *testing.T) {
	for name, p := range map[string]topology.Params{
		"star":      {N: 42},
		"pancake":   {N: 1},
		"ttree":     {N: 5, K: 7},
		"torus":     {N: 1},
		"debruijn":  {N: 40},
		"mesh":      {N: 1},
		"hypercube": {N: 99},
		"shuffle":   {N: 1, K: 1},
		"butterfly": {N: -1},
	} {
		if _, err := topology.Build(name, p); err == nil {
			t.Errorf("%s%+v accepted", name, p)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	// The probe builds a real (tiny) graph so that, once registered,
	// it also passes the conformance sweep under any test ordering.
	f := topology.Family{
		Name: "dup-probe",
		Build: func(topology.Params) (topology.Built, error) {
			return topology.Built{Graph: hypercube.New(2)}, nil
		},
	}
	topology.Register(f)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	topology.Register(f)
}
