// Package topology is the single source of truth for every
// interconnection network in the repository. It defines the Graph
// interface that all point-to-point simulators consume (the paper's
// topology-generic framing: star graphs, d-way shuffles, leveled
// networks and meshes are instances of one framework), the optional
// capability interfaces (taken-sensitive routing, leveled unrollings,
// bounded deterministic paths), and a name-keyed registry through
// which commands, experiments and benchmarks select networks, so a
// new family is a ~100-line plugin plus one Register call rather than
// a cross-cutting change.
package topology

import (
	"fmt"
	"sort"
	"sync"

	"pramemu/internal/leveled"
)

// MaxNodes is the largest node count the point-to-point simulator can
// route: recorded packet paths store node ids as int32, and the
// simulator's packed pair link keys give each endpoint 32 bits, so
// 2^31 is where node ids would genuinely overflow. Everything below
// it routes — the engine's paged link tables bound memory by touched
// links, not declared key space — and registry builders, the emulator
// adapters and the commands all enforce this one bound. (The leveled
// router packs node ids into width-based products and keeps its own
// overflow guard, since it sits below this package in the import
// graph.)
const MaxNodes = 1 << 31

// Graph describes a static point-to-point network. Implementations
// must be stateless and safe for concurrent use: NextHop is called
// once per packet per hop, from multiple goroutines when the round
// engine runs with Workers > 1.
type Graph interface {
	// Name identifies the topology in reports.
	Name() string
	// Nodes returns the number of nodes.
	Nodes() int
	// Degree returns the number of outgoing link slots of node.
	Degree(node int) int
	// Neighbor returns the node reached from node via link slot.
	Neighbor(node, slot int) int
	// NextHop returns the outgoing slot of the deterministic path
	// from node to dst, given that the packet has already taken
	// `taken` hops since it last chose a target; done reports that
	// the packet has arrived (slot is then ignored). For
	// distance-defined topologies (star, hypercube, torus) `taken`
	// is ignored; fixed-length-path topologies (shuffle, de Bruijn)
	// use it because their unique paths have the same length
	// regardless of endpoints.
	NextHop(node, dst, taken int) (slot int, done bool)
	// Diameter returns the network diameter in links.
	Diameter() int
}

// TakenSensitive is implemented by graphs whose NextHop depends on
// the hops already taken within a phase (the d-way shuffle and the de
// Bruijn graph, whose unique paths have fixed length n). For such
// graphs two packets may combine only at equal progress; memoryless
// graphs (star, hypercube, torus) may combine whenever node and
// destination match.
type TakenSensitive interface {
	// TakenSensitive reports whether NextHop depends on `taken`.
	TakenSensitive() bool
}

// Leveler is implemented by graphs with a logical leveled-network
// unrolling (Figure 3 for the star graph; the natural n+1-column view
// of the shuffle and the de Bruijn graph). The emulator prefers this
// view when present, matching the paper's Algorithm 2.1 analysis.
type Leveler interface {
	// AsLeveled returns the leveled-network unrolling.
	AsLeveled() leveled.Spec
}

// PathBounded is implemented by graphs whose deterministic NextHop
// paths can exceed the diameter (the pancake graph's greedy
// prefix-reversal sort, transposition-tree leaf elimination). The
// bound is what path-termination checks use in place of Diameter.
type PathBounded interface {
	// MaxPathLen returns the longest deterministic path NextHop can
	// produce between any pair of nodes.
	MaxPathLen() int
}

// Coordinated is implemented by graphs whose nodes are the points of
// an axis-aligned grid: the mesh (two axes of extent n) and the k-ary
// n-cube (Dims axes of extent k). Coordinate-defined workloads — the
// tornado half-wrap adversary — require this capability, which the
// workload registry gates on.
type Coordinated interface {
	// Dims returns the number of grid axes.
	Dims() int
	// Extent returns the number of coordinate values along axis dim.
	Extent(dim int) int
	// Coord returns node's coordinate along axis dim, in [0, Extent(dim)).
	Coord(node, dim int) int
	// NodeAt returns the node at the given coordinates (len == Dims()).
	NodeAt(coords []int) int
}

// MaxPath returns the longest deterministic path g can produce: the
// declared MaxPathLen for PathBounded graphs, the diameter otherwise.
func MaxPath(g Graph) int {
	if pb, ok := g.(PathBounded); ok {
		return pb.MaxPathLen()
	}
	return g.Diameter()
}

// Params carries the size parameters of a Build call. Families map
// them onto their natural knobs and substitute documented defaults
// for zero values, so `Build(name, Params{N: n})` always works.
type Params struct {
	// N is the primary size parameter: star/pancake/ttree symbol
	// count, shuffle and de Bruijn digit count, hypercube and
	// butterfly dimension, mesh and torus side.
	N int
	// K is the secondary parameter where one exists: shuffle and de
	// Bruijn alphabet size d (0 = family default), torus dimension
	// count (0 = 2), transposition-tree shape selector.
	K int
}

// Built is the result of a registry Build: a point-to-point Graph, a
// leveled unrolling, or both. Exactly one of the views may be nil
// (the butterfly is a purely leveled family).
type Built struct {
	// Graph is the point-to-point view; nil for leveled-only
	// families.
	Graph Graph
	// Spec is the leveled unrolling; nil when none exists. Build
	// fills it automatically for graphs implementing Leveler.
	Spec leveled.Spec
}

// Name returns the display name of the built network.
func (b Built) Name() string {
	if b.Graph != nil {
		return b.Graph.Name()
	}
	return b.Spec.Name()
}

// Nodes returns the processor/module count: graph nodes, or the
// column width of a leveled-only family.
func (b Built) Nodes() int {
	if b.Graph != nil {
		return b.Graph.Nodes()
	}
	return b.Spec.Width()
}

// Diameter returns the physical network diameter: the graph's when a
// point-to-point view exists (the leveled unrolling may be longer),
// the single-traversal length ℓ-1 otherwise.
func (b Built) Diameter() int {
	if b.Graph != nil {
		return b.Graph.Diameter()
	}
	return b.Spec.Levels() - 1
}

// Family is one registered network family.
type Family struct {
	// Name keys the registry (the -net flag value).
	Name string
	// Params documents the meaning of Params.N and Params.K for this
	// family, including defaults.
	Params string
	// Theorem names the part of the paper's framework the family
	// exercises (recorded in DESIGN.md's index).
	Theorem string
	// Build constructs the network. It must validate parameters and
	// return an error (not panic) on out-of-range requests.
	Build func(p Params) (Built, error)
}

var (
	mu       sync.RWMutex
	families = map[string]Family{}
)

// Register adds a family to the registry. It panics on a duplicate
// name: two families claiming one name is a programming error.
func Register(f Family) {
	mu.Lock()
	defer mu.Unlock()
	if f.Name == "" || f.Build == nil {
		panic("topology: Register needs a name and a Build function")
	}
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("topology: family %q registered twice", f.Name))
	}
	families[f.Name] = f
}

// Lookup returns the named family.
func Lookup(name string) (Family, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := families[name]
	return f, ok
}

// Names returns every registered family name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named network with the given parameters. The
// error lists the known families when the name is unknown, so -net
// typos come back actionable.
func Build(name string, p Params) (Built, error) {
	f, ok := Lookup(name)
	if !ok {
		return Built{}, fmt.Errorf("unknown topology %q (known: %v)", name, Names())
	}
	b, err := f.Build(p)
	if err != nil {
		return Built{}, fmt.Errorf("topology %s: %w", name, err)
	}
	if b.Graph == nil && b.Spec == nil {
		return Built{}, fmt.Errorf("topology %s: family built neither view", name)
	}
	if b.Spec == nil && b.Graph != nil {
		if lv, ok := b.Graph.(Leveler); ok {
			b.Spec = lv.AsLeveled()
		}
	}
	return b, nil
}
