package pram

import (
	"strings"
	"testing"
)

func TestTraceRecordsSteps(t *testing.T) {
	tr := &TraceExecutor{}
	m := New(Config{Procs: 3, Memory: 16, Variant: CREW, Executor: tr})
	m.Run(func(p *Proc) {
		p.Write(uint64(p.ID()), int64(p.ID()))
		p.Read(uint64(p.ID()))
	})
	trace := tr.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace has %d steps", len(trace))
	}
	if err := Validate(trace); err != nil {
		t.Fatal(err)
	}
	if trace[0].Reqs[0].Op != OpWrite || trace[1].Reqs[0].Op != OpRead {
		t.Fatalf("ops wrong: %+v", trace)
	}
	// Unit pricing through the wrapper.
	if m.Time() != 2 {
		t.Fatalf("time = %d", m.Time())
	}
}

type flatPricer struct{ price int }

func (f flatPricer) ExecuteStep(step int, reqs []Request) int { return f.price }

func TestTraceInnerPricing(t *testing.T) {
	tr := &TraceExecutor{Inner: flatPricer{5}}
	m := New(Config{Procs: 2, Memory: 4, Executor: tr, Variant: CREW})
	m.Run(func(p *Proc) {
		p.Read(uint64(p.ID()))
	})
	if m.Time() != 5 {
		t.Fatalf("time = %d, want 5", m.Time())
	}
}

func TestReplay(t *testing.T) {
	tr := &TraceExecutor{}
	m := New(Config{Procs: 4, Memory: 16, Variant: CREW, Executor: tr})
	m.Run(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Read(uint64(p.ID()))
		}
	})
	if got := Replay(tr.Trace(), flatPricer{7}); got != 21 {
		t.Fatalf("replay cost = %d, want 21", got)
	}
	tr.Reset()
	if len(tr.Trace()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replay(nil) should panic")
		}
	}()
	Replay(nil, Unit{})
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []StepTrace{{Step: 1}}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "index") {
		t.Fatalf("want index error, got %v", err)
	}
	dup := []StepTrace{{Step: 0, Reqs: []Request{{Proc: 2}, {Proc: 2}}}}
	if err := Validate(dup); err == nil || !strings.Contains(err.Error(), "two requests") {
		t.Fatalf("want duplicate error, got %v", err)
	}
	good := []StepTrace{{Step: 0, Reqs: []Request{{Proc: 0}, {Proc: 1}}}}
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}
}
