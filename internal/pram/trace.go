package pram

import "fmt"

// StepTrace is the recorded request vector of one PRAM step.
type StepTrace struct {
	Step int
	Reqs []Request
}

// TraceExecutor wraps another StepExecutor and records every step's
// request vector. The recorded trace can be replayed against a
// different executor — e.g. record a program once on the ideal
// machine, then price the identical instruction stream on several
// networks without re-running the goroutines.
type TraceExecutor struct {
	// Inner prices the steps (Unit{} if nil).
	Inner StepExecutor
	trace []StepTrace
}

// ExecuteStep implements StepExecutor.
func (t *TraceExecutor) ExecuteStep(step int, reqs []Request) int {
	t.trace = append(t.trace, StepTrace{Step: step, Reqs: append([]Request(nil), reqs...)})
	inner := t.Inner
	if inner == nil {
		inner = Unit{}
	}
	return inner.ExecuteStep(step, reqs)
}

// Trace returns the recorded steps.
func (t *TraceExecutor) Trace() []StepTrace { return t.trace }

// Reset clears the recording.
func (t *TraceExecutor) Reset() { t.trace = nil }

// Replay prices a recorded trace on exec and returns the total cost —
// the emulation time the trace would incur there. It panics on an
// empty trace to catch accidental misuse.
func Replay(trace []StepTrace, exec StepExecutor) int64 {
	if len(trace) == 0 {
		panic("pram: Replay of empty trace")
	}
	total := int64(0)
	for _, st := range trace {
		total += int64(exec.ExecuteStep(st.Step, st.Reqs))
	}
	return total
}

// Validate checks a trace for internal consistency: steps numbered
// consecutively from 0 and at most one request per processor per
// step. It returns an error describing the first violation.
func Validate(trace []StepTrace) error {
	for i, st := range trace {
		if st.Step != i {
			return fmt.Errorf("pram: trace step %d has index %d", i, st.Step)
		}
		seen := make(map[int]bool, len(st.Reqs))
		for _, r := range st.Reqs {
			if seen[r.Proc] {
				return fmt.Errorf("pram: step %d has two requests from processor %d", i, r.Proc)
			}
			seen[r.Proc] = true
		}
	}
	return nil
}
