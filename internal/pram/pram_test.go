package pram

import (
	"strings"
	"testing"
)

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		EREW: "EREW", CREW: "CREW", CRCWCommon: "common",
		CRCWArbitrary: "arbitrary", CRCWPriority: "priority",
		CRCWMax: "max", CRCWSum: "sum", Variant(99): "99",
	} {
		if !strings.Contains(v.String(), want) {
			t.Errorf("%d.String() = %q, want contains %q", v, v.String(), want)
		}
	}
	if EREW.Concurrent() || CREW.Concurrent() || !CRCWMax.Concurrent() {
		t.Fatal("Concurrent predicate wrong")
	}
}

func TestNewPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no procs":  {Procs: 0, Memory: 10},
		"no memory": {Procs: 1, Memory: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) should panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{Procs: 4, Memory: 100})
	m.Run(func(p *Proc) {
		p.Write(uint64(p.ID()), int64(p.ID())*10)
		got := p.Read(uint64(p.ID()))
		if got != int64(p.ID())*10 {
			panic("read back wrong value")
		}
	})
	if m.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", m.Steps())
	}
	if m.Time() != 2 {
		t.Fatalf("unit time = %d, want 2", m.Time())
	}
	for i := uint64(0); i < 4; i++ {
		if m.Load(i) != int64(i)*10 {
			t.Fatalf("mem[%d] = %d", i, m.Load(i))
		}
	}
}

func TestReadsSeePreStepMemoryLenient(t *testing.T) {
	// In one synchronous step, processor 0 writes addr 5 while
	// processor 1 reads it: the read must observe the pre-step value.
	// Reader+writer on one address violates EREW, so a lenient
	// machine records the violation while still exposing the
	// snapshot semantics.
	m := New(Config{Procs: 2, Memory: 10, Variant: EREW, Lenient: true})
	m.Store(5, 42)
	var seen int64
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write(5, 99)
		} else {
			seen = p.Read(5)
		}
	})
	if seen != 42 {
		t.Fatalf("concurrent read saw %d, want pre-step 42", seen)
	}
	if m.Load(5) != 99 {
		t.Fatalf("write lost: mem[5] = %d", m.Load(5))
	}
	if len(m.Violations()) == 0 {
		t.Fatal("EREW violation not recorded")
	}
}

func TestEREWViolationPanics(t *testing.T) {
	m := New(Config{Procs: 2, Memory: 10, Variant: EREW})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "EREW violation") {
			t.Fatalf("want EREW violation panic, got %v", r)
		}
	}()
	m.Run(func(p *Proc) {
		p.Read(3) // both processors read address 3
	})
}

func TestCREWAllowsConcurrentReads(t *testing.T) {
	m := New(Config{Procs: 8, Memory: 10, Variant: CREW})
	m.Store(3, 7)
	m.Run(func(p *Proc) {
		if v := p.Read(3); v != 7 {
			panic("bad read")
		}
	})
	if len(m.Violations()) != 0 {
		t.Fatalf("violations: %v", m.Violations())
	}
}

func TestCREWRejectsConcurrentWrites(t *testing.T) {
	m := New(Config{Procs: 2, Memory: 10, Variant: CREW})
	defer func() {
		if recover() == nil {
			t.Fatal("want CREW violation panic")
		}
	}()
	m.Run(func(p *Proc) {
		p.Write(3, int64(p.ID()))
	})
}

func TestCRCWCommonAgreementOK(t *testing.T) {
	m := New(Config{Procs: 8, Memory: 10, Variant: CRCWCommon})
	m.Run(func(p *Proc) {
		p.Write(0, 5) // all write the same value: legal
	})
	if m.Load(0) != 5 {
		t.Fatalf("mem[0] = %d", m.Load(0))
	}
}

func TestCRCWCommonDisagreementPanics(t *testing.T) {
	m := New(Config{Procs: 2, Memory: 10, Variant: CRCWCommon})
	defer func() {
		if recover() == nil {
			t.Fatal("want common-CRCW violation panic")
		}
	}()
	m.Run(func(p *Proc) {
		p.Write(0, int64(p.ID()))
	})
}

func TestCRCWArbitraryAndPriorityLowestWins(t *testing.T) {
	for _, v := range []Variant{CRCWArbitrary, CRCWPriority} {
		m := New(Config{Procs: 8, Memory: 4, Variant: v})
		m.Run(func(p *Proc) {
			p.Write(1, int64(100+p.ID()))
		})
		if m.Load(1) != 100 {
			t.Fatalf("%v: mem[1] = %d, want 100 (lowest proc)", v, m.Load(1))
		}
	}
}

func TestCRCWMax(t *testing.T) {
	m := New(Config{Procs: 16, Memory: 4, Variant: CRCWMax})
	m.Run(func(p *Proc) {
		p.Write(2, int64(p.ID()*3%17)) // arbitrary spread
	})
	want := int64(0)
	for id := 0; id < 16; id++ {
		if v := int64(id * 3 % 17); v > want {
			want = v
		}
	}
	if m.Load(2) != want {
		t.Fatalf("max-CRCW got %d, want %d", m.Load(2), want)
	}
}

func TestCRCWSum(t *testing.T) {
	m := New(Config{Procs: 10, Memory: 4, Variant: CRCWSum})
	m.Run(func(p *Proc) {
		p.Write(0, 1)
	})
	if m.Load(0) != 10 {
		t.Fatalf("sum-CRCW got %d, want 10", m.Load(0))
	}
}

func TestIdleStepKeepsLockstep(t *testing.T) {
	// Processor 0 writes while others idle; then everyone reads.
	m := New(Config{Procs: 4, Memory: 10, Variant: CREW})
	vals := make([]int64, 4)
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write(7, 123)
		} else {
			p.Step()
		}
		vals[p.ID()] = p.Read(7)
	})
	for i, v := range vals {
		if v != 123 {
			t.Fatalf("proc %d read %d", i, v)
		}
	}
	if m.Steps() != 2 {
		t.Fatalf("steps = %d", m.Steps())
	}
}

func TestEarlyExitDoesNotDeadlock(t *testing.T) {
	// Half the processors exit immediately; the rest run 5 steps.
	m := New(Config{Procs: 8, Memory: 10, Variant: CREW})
	m.Run(func(p *Proc) {
		if p.ID()%2 == 0 {
			return
		}
		for i := 0; i < 5; i++ {
			p.Read(uint64(p.ID()))
		}
	})
	if m.Steps() != 5 {
		t.Fatalf("steps = %d, want 5", m.Steps())
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	m := New(Config{Procs: 2, Memory: 4})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("want body panic, got %v", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
	})
}

func TestAddressBoundsPanic(t *testing.T) {
	m := New(Config{Procs: 1, Memory: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address should panic")
		}
	}()
	m.Run(func(p *Proc) {
		p.Read(10)
	})
}

type countingExec struct{ calls, procsSeen int }

func (c *countingExec) ExecuteStep(step int, reqs []Request) int {
	c.calls++
	c.procsSeen = len(reqs)
	return 7
}

func TestCustomExecutorPricesSteps(t *testing.T) {
	exec := &countingExec{}
	m := New(Config{Procs: 3, Memory: 10, Executor: exec, Variant: CREW})
	m.Run(func(p *Proc) {
		p.Read(0)
		p.Read(1)
	})
	if exec.calls != 2 || exec.procsSeen != 3 {
		t.Fatalf("executor saw %d calls, %d procs", exec.calls, exec.procsSeen)
	}
	if m.Time() != 14 {
		t.Fatalf("time = %d, want 14", m.Time())
	}
}

func TestPrefixSumEREW(t *testing.T) {
	// Classic O(log n) EREW prefix sum over 16 processors, as a
	// whole-machine integration test. Memory layout: x[i] at i.
	const n = 16
	m := New(Config{Procs: n, Memory: 2 * n, Variant: EREW})
	for i := uint64(0); i < n; i++ {
		m.Store(i, int64(i+1))
	}
	m.Run(func(p *Proc) {
		for stride := 1; stride < n; stride *= 2 {
			var add int64
			if p.ID() >= stride {
				add = p.Read(uint64(p.ID() - stride))
			} else {
				p.Step()
			}
			cur := p.Read(uint64(p.ID()))
			p.Write(uint64(p.ID()), cur+add)
		}
	})
	for i := 0; i < n; i++ {
		want := int64((i + 1) * (i + 2) / 2)
		if got := m.Load(uint64(i)); got != want {
			t.Fatalf("prefix[%d] = %d, want %d", i, got, want)
		}
	}
}
