// Package pram implements the parallel random-access machine that the
// networks of this repository emulate: an arbitrary number of
// processors sharing a global memory, advancing in synchronous steps,
// with each shared-memory access costing unit time on the ideal
// machine (§1 of the paper).
//
// Programs are ordinary Go functions, one goroutine per PRAM
// processor, that call Read/Write/Step on their Proc handle; every
// call is one synchronous PRAM step (all processors act in lockstep,
// reads observe pre-step memory, write conflicts resolve by the
// machine's Variant). The same program runs unchanged on the ideal
// unit-cost executor or on any network emulator: a StepExecutor is
// consulted once per step with the full request vector and returns
// that step's cost in network time, which is where the emulation
// theorems (2.5, 2.6, 3.2) attach.
package pram

import (
	"fmt"
	"sort"
	"sync"
)

// Variant selects the PRAM's concurrent-access semantics.
type Variant int

const (
	// EREW forbids any two processors from touching the same address
	// in one step.
	EREW Variant = iota
	// CREW allows concurrent reads but exclusive writes.
	CREW
	// CRCWCommon allows concurrent writes only if all written values
	// are equal.
	CRCWCommon
	// CRCWArbitrary lets an arbitrary writer win; this implementation
	// deterministically picks the lowest processor id.
	CRCWArbitrary
	// CRCWPriority lets the lowest-numbered processor win.
	CRCWPriority
	// CRCWMax resolves concurrent writes to the maximum value.
	CRCWMax
	// CRCWSum resolves concurrent writes to the sum of values.
	CRCWSum
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCommon:
		return "CRCW-common"
	case CRCWArbitrary:
		return "CRCW-arbitrary"
	case CRCWPriority:
		return "CRCW-priority"
	case CRCWMax:
		return "CRCW-max"
	case CRCWSum:
		return "CRCW-sum"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Concurrent reports whether the variant permits concurrent writes.
func (v Variant) Concurrent() bool { return v >= CRCWCommon }

// Op is the kind of memory operation a processor issues in a step.
type Op uint8

const (
	// OpNone marks a step in which the processor only computes.
	OpNone Op = iota
	// OpRead requests the value at Addr.
	OpRead
	// OpWrite stores Value at Addr.
	OpWrite
)

// Request is one processor's memory operation for one step.
type Request struct {
	Proc  int
	Op    Op
	Addr  uint64
	Value int64
}

// StepExecutor prices one emulated PRAM step. The ideal machine
// charges 1; network executors route the requests and charge the
// routing time.
type StepExecutor interface {
	// ExecuteStep receives the step index and the request vector
	// (one entry per processor; Op may be OpNone) and returns the
	// step's cost in time units.
	ExecuteStep(step int, reqs []Request) int
}

// Unit is the ideal PRAM executor: every step costs one unit.
type Unit struct{}

// ExecuteStep implements StepExecutor.
func (Unit) ExecuteStep(step int, reqs []Request) int { return 1 }

// Machine is a PRAM instance: shared memory plus synchronization.
type Machine struct {
	variant Variant
	nprocs  int
	memSize uint64
	exec    StepExecutor
	strict  bool

	mu         sync.Mutex
	cond       *sync.Cond
	mem        map[uint64]int64
	reqs       []Request
	results    []int64
	exited     []bool
	waiting    int
	active     int
	gen        uint64
	steps      int
	time       int64
	violations []string
	// fault holds a panic value raised during a step (an access-rule
	// violation in strict mode, or an executor panic). It must be
	// delivered through the barrier — panicking inside runStep while
	// peers wait on the condition variable would deadlock them — so
	// every processor re-panics it after release and the whole Run
	// unwinds. Machine state is undefined after a fault.
	fault interface{}
}

// Config parameterizes New.
type Config struct {
	// Procs is the number of PRAM processors (goroutines).
	Procs int
	// Memory is the shared address-space size M; addresses must be
	// < Memory.
	Memory uint64
	// Variant selects concurrency semantics (default EREW).
	Variant Variant
	// Executor prices each step (default Unit{}).
	Executor StepExecutor
	// Strict panics on EREW/CREW/Common violations instead of
	// recording them (default true; set Lenient to disable).
	Lenient bool
}

// New constructs a Machine.
func New(cfg Config) *Machine {
	if cfg.Procs < 1 {
		panic("pram: need at least one processor")
	}
	if cfg.Memory == 0 {
		panic("pram: need a non-empty shared memory")
	}
	exec := cfg.Executor
	if exec == nil {
		exec = Unit{}
	}
	m := &Machine{
		variant: cfg.Variant,
		nprocs:  cfg.Procs,
		memSize: cfg.Memory,
		exec:    exec,
		strict:  !cfg.Lenient,
		mem:     make(map[uint64]int64),
		reqs:    make([]Request, cfg.Procs),
		results: make([]int64, cfg.Procs),
		exited:  make([]bool, cfg.Procs),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return m.nprocs }

// Variant returns the machine's concurrency semantics.
func (m *Machine) Variant() Variant { return m.variant }

// Steps returns the number of PRAM steps executed.
func (m *Machine) Steps() int { return m.steps }

// Time returns the accumulated cost charged by the executor — the
// emulation time the paper's theorems bound.
func (m *Machine) Time() int64 { return m.time }

// Violations returns the access-rule violations recorded in lenient
// mode.
func (m *Machine) Violations() []string { return append([]string(nil), m.violations...) }

// Load returns the current contents of addr (0 if never written).
// Call only when no program is running.
func (m *Machine) Load(addr uint64) int64 {
	m.checkAddr(addr)
	return m.mem[addr]
}

// Store initializes addr before (or inspects state between) runs.
func (m *Machine) Store(addr uint64, v int64) {
	m.checkAddr(addr)
	m.mem[addr] = v
}

func (m *Machine) checkAddr(addr uint64) {
	if addr >= m.memSize {
		panic(fmt.Sprintf("pram: address %d outside memory of size %d", addr, m.memSize))
	}
}

// Proc is a processor handle passed to program bodies.
type Proc struct {
	m  *Machine
	id int
}

// ID returns the processor index in [0, Procs()).
func (p *Proc) ID() int { return p.id }

// N returns the machine's processor count.
func (p *Proc) N() int { return p.m.nprocs }

// Read performs one synchronous PRAM step reading addr.
func (p *Proc) Read(addr uint64) int64 {
	p.m.checkAddr(addr)
	return p.m.step(p.id, Request{Proc: p.id, Op: OpRead, Addr: addr})
}

// Write performs one synchronous PRAM step writing v to addr.
func (p *Proc) Write(addr uint64, v int64) {
	p.m.checkAddr(addr)
	p.m.step(p.id, Request{Proc: p.id, Op: OpWrite, Addr: addr, Value: v})
}

// Step performs one synchronous PRAM step with no memory operation,
// keeping this processor in lockstep with the others.
func (p *Proc) Step() {
	p.m.step(p.id, Request{Proc: p.id, Op: OpNone})
}

// Run executes body on every processor as a goroutine and returns
// when all have finished. Programs must keep processors in lockstep
// (every processor issues the same number of steps along each joint
// code path) — the usual PRAM convention. Run panics with the body's
// panic value if any processor panics.
func (m *Machine) Run(body func(p *Proc)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, m.nprocs)
	m.mu.Lock()
	m.active = m.nprocs
	m.waiting = 0
	m.fault = nil
	for i := range m.exited {
		m.exited[i] = false
	}
	m.mu.Unlock()
	for id := 0; id < m.nprocs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
				m.exit(id)
			}()
			body(&Proc{m: m, id: id})
		}(id)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// step submits a request and blocks until the step completes; it
// returns this processor's read result (0 for non-reads).
func (m *Machine) step(pid int, req Request) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs[pid] = req
	m.waiting++
	if m.waiting == m.active {
		m.runStep()
	} else {
		gen := m.gen
		for gen == m.gen {
			m.cond.Wait()
		}
	}
	if m.fault != nil {
		// A strict-mode violation or executor panic occurred during
		// this step; unwind every processor (the deferred unlock in
		// step's caller chain releases m.mu).
		panic(m.fault)
	}
	return m.results[pid]
}

// exit removes a finished processor from the barrier; if it was the
// last straggler of the current step, the step fires.
func (m *Machine) exit(pid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.exited[pid] {
		return
	}
	m.exited[pid] = true
	m.reqs[pid] = Request{Proc: pid, Op: OpNone}
	m.active--
	if m.active > 0 && m.waiting == m.active {
		m.runStep()
	}
}

// runStep applies one synchronous step: all reads observe pre-step
// memory, write conflicts resolve per the variant, and the executor
// prices the step. Called with m.mu held by the last arriver.
func (m *Machine) runStep() {
	reqs := make([]Request, 0, m.active)
	for pid, req := range m.reqs {
		if m.exited[pid] {
			continue
		}
		reqs = append(reqs, req)
	}
	// Reads first: pre-step snapshot semantics.
	for _, req := range reqs {
		if req.Op == OpRead {
			m.results[req.Proc] = m.mem[req.Addr]
		} else {
			m.results[req.Proc] = 0
		}
	}
	m.checkExclusivity(reqs)
	if m.fault == nil {
		m.applyWrites(reqs)
	}
	m.steps++
	if m.fault == nil {
		// The executor may panic (e.g. a network invariant trips);
		// capture it as a fault so waiting processors are released
		// rather than deadlocked.
		func() {
			defer func() {
				if r := recover(); r != nil {
					m.fault = r
				}
			}()
			m.time += int64(m.exec.ExecuteStep(m.steps-1, reqs))
		}()
	}
	m.waiting = 0
	m.gen++
	m.cond.Broadcast()
}

// applyWrites resolves all writes of the step per the variant.
func (m *Machine) applyWrites(reqs []Request) {
	writes := make(map[uint64][]Request)
	for _, req := range reqs {
		if req.Op == OpWrite {
			writes[req.Addr] = append(writes[req.Addr], req)
		}
	}
	for addr, ws := range writes {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Proc < ws[j].Proc })
		switch m.variant {
		case CRCWCommon:
			for _, w := range ws[1:] {
				if w.Value != ws[0].Value {
					m.violate(fmt.Sprintf(
						"common CRCW write conflict at %d: %d vs %d", addr, ws[0].Value, w.Value))
				}
			}
			m.mem[addr] = ws[0].Value
		case CRCWMax:
			max := ws[0].Value
			for _, w := range ws[1:] {
				if w.Value > max {
					max = w.Value
				}
			}
			m.mem[addr] = max
		case CRCWSum:
			sum := int64(0)
			for _, w := range ws {
				sum += w.Value
			}
			m.mem[addr] = sum
		default:
			// EREW/CREW (violations reported separately), Arbitrary
			// and Priority: lowest processor id wins.
			m.mem[addr] = ws[0].Value
		}
	}
}

// checkExclusivity enforces the exclusive-access rules of EREW/CREW.
func (m *Machine) checkExclusivity(reqs []Request) {
	if m.variant.Concurrent() {
		return
	}
	type access struct{ reads, writes int }
	touched := make(map[uint64]access)
	for _, req := range reqs {
		if req.Op == OpNone {
			continue
		}
		a := touched[req.Addr]
		if req.Op == OpRead {
			a.reads++
		} else {
			a.writes++
		}
		touched[req.Addr] = a
	}
	for addr, a := range touched {
		switch {
		case m.variant == EREW && a.reads+a.writes > 1:
			m.violate(fmt.Sprintf("EREW violation at address %d: %d readers, %d writers",
				addr, a.reads, a.writes))
		case m.variant == CREW && a.writes > 1:
			m.violate(fmt.Sprintf("CREW violation at address %d: %d writers", addr, a.writes))
		case m.variant == CREW && a.writes == 1 && a.reads > 0:
			m.violate(fmt.Sprintf("CREW violation at address %d: concurrent read and write", addr))
		}
	}
}

func (m *Machine) violate(msg string) {
	if m.strict {
		if m.fault == nil {
			m.fault = "pram: " + msg
		}
		return
	}
	m.violations = append(m.violations, msg)
}
