package mesh

import (
	"fmt"
	"math/bits"

	"pramemu/internal/packet"
)

// SortRoute routes a full permutation (exactly one packet per node,
// destinations a permutation) deterministically by sorting: packets
// are shearsorted into snake order keyed by the snake index of their
// destination, which lands every packet exactly on its destination.
// This is the sorting-based routing the paper contrasts with
// randomized algorithms in §2.2.1 ("Batcher's sorting algorithms ...
// require 7n routing time for the n x n mesh-connected arrays"):
// shearsort costs (2⌈log n⌉+1)·n compare-exchange rounds, far above
// the 2n + o(n) of the three-stage algorithm, with the one advantage
// that no queues are needed (queue size 1). Experiment E12.
//
// It returns the number of rounds consumed. It panics if the packets
// do not form a permutation.
func SortRoute(g *Grid, pkts []*packet.Packet) int {
	n := g.Side()
	if len(pkts) != g.Nodes() {
		panic("mesh: SortRoute needs exactly one packet per node")
	}
	// grid[node] = packet currently held by node.
	grid := make([]*packet.Packet, g.Nodes())
	seenDst := make([]bool, g.Nodes())
	for _, p := range pkts {
		if grid[p.Src] != nil {
			panic("mesh: SortRoute with multiple packets at one source")
		}
		if seenDst[p.Dst] {
			panic("mesh: SortRoute destinations must form a permutation")
		}
		grid[p.Src] = p
		seenDst[p.Dst] = true
	}
	key := func(p *packet.Packet) int { return g.snakeIndex(p.Dst) }

	rounds := 0
	phases := bits.Len(uint(n - 1)) // ⌈log2 n⌉
	for phase := 0; phase < phases; phase++ {
		rounds += g.sortRowsSnake(grid, key)
		rounds += g.sortColumns(grid, key)
	}
	rounds += g.sortRowsSnake(grid, key)

	for node, p := range grid {
		if p.Dst != node {
			panic(fmt.Sprintf("mesh: shearsort left packet for %d at %d", p.Dst, node))
		}
		p.Arrived = rounds
	}
	return rounds
}

// snakeIndex maps a node to its boustrophedon rank: even rows run
// left-to-right, odd rows right-to-left.
func (g *Grid) snakeIndex(node int) int {
	r, c := g.RowCol(node)
	if r%2 == 1 {
		c = g.n - 1 - c
	}
	return r*g.n + c
}

// sortRowsSnake sorts every row by key with odd-even transposition —
// even rows ascending, odd rows descending — in n rounds.
func (g *Grid) sortRowsSnake(grid []*packet.Packet, key func(*packet.Packet) int) int {
	n := g.n
	for round := 0; round < n; round++ {
		start := round % 2
		for r := 0; r < n; r++ {
			asc := r%2 == 0
			for c := start; c+1 < n; c += 2 {
				a, b := g.Node(r, c), g.Node(r, c+1)
				ka, kb := key(grid[a]), key(grid[b])
				if (asc && ka > kb) || (!asc && ka < kb) {
					grid[a], grid[b] = grid[b], grid[a]
					grid[a].Hops++
					grid[b].Hops++
				}
			}
		}
	}
	return n
}

// sortColumns sorts every column ascending by key with odd-even
// transposition in n rounds.
func (g *Grid) sortColumns(grid []*packet.Packet, key func(*packet.Packet) int) int {
	n := g.n
	for round := 0; round < n; round++ {
		start := round % 2
		for c := 0; c < n; c++ {
			for r := start; r+1 < n; r += 2 {
				a, b := g.Node(r, c), g.Node(r+1, c)
				if key(grid[a]) > key(grid[b]) {
					grid[a], grid[b] = grid[b], grid[a]
					grid[a].Hops++
					grid[b].Hops++
				}
			}
		}
	}
	return n
}
