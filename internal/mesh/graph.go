// Point-to-point topology.Graph view of the grid, so the mesh joins
// the unified topology layer: the generic simulators (Valiant
// two-phase routing on arbitrary graphs, the cross-family benchmark)
// can run on it, while the paper's specialized three-stage algorithm
// of §3.4 stays in Route. Link slots enumerate the valid directions
// of a node in the fixed order north, south, east, west, so corner
// and border nodes have degree 2 or 3.
package mesh

// Degree implements topology.Graph: the number of in-grid neighbors.
func (g *Grid) Degree(node int) int {
	deg := 0
	for dir := 0; dir < numDirs; dir++ {
		if g.dirValid(node, dir) {
			deg++
		}
	}
	return deg
}

// dirValid reports whether moving in dir stays on the grid.
func (g *Grid) dirValid(node, dir int) bool {
	row, col := g.RowCol(node)
	switch dir {
	case dirNorth:
		return row > 0
	case dirSouth:
		return row < g.n-1
	case dirEast:
		return col < g.n-1
	default:
		return col > 0
	}
}

// dirNeighbor returns the node one step in dir (caller must ensure
// validity).
func (g *Grid) dirNeighbor(node, dir int) int {
	switch dir {
	case dirNorth:
		return node - g.n
	case dirSouth:
		return node + g.n
	case dirEast:
		return node + 1
	default:
		return node - 1
	}
}

// slotDir maps a link slot to its direction: the slot-th valid
// direction in canonical order.
func (g *Grid) slotDir(node, slot int) int {
	for dir := 0; dir < numDirs; dir++ {
		if g.dirValid(node, dir) {
			if slot == 0 {
				return dir
			}
			slot--
		}
	}
	panic("mesh: link slot out of range")
}

// dirSlot maps a valid direction back to its link slot.
func (g *Grid) dirSlot(node, dir int) int {
	slot := 0
	for d := 0; d < dir; d++ {
		if g.dirValid(node, d) {
			slot++
		}
	}
	return slot
}

// Neighbor implements topology.Graph.
func (g *Grid) Neighbor(node, slot int) int {
	return g.dirNeighbor(node, g.slotDir(node, slot))
}

// Dims implements topology.Coordinated: the grid has two axes,
// axis 0 = row, axis 1 = column.
func (g *Grid) Dims() int { return 2 }

// Extent implements topology.Coordinated: both axes run over [0, n).
func (g *Grid) Extent(dim int) int { return g.n }

// Coord implements topology.Coordinated.
func (g *Grid) Coord(node, dim int) int {
	row, col := g.RowCol(node)
	if dim == 0 {
		return row
	}
	return col
}

// NodeAt implements topology.Coordinated.
func (g *Grid) NodeAt(coords []int) int { return g.Node(coords[0], coords[1]) }

// NextHop implements topology.Graph with greedy dimension-ordered
// routing: fix the column first, then the row. `taken` is ignored
// (paths are memoryless).
func (g *Grid) NextHop(node, dst, taken int) (slot int, done bool) {
	row, col := g.RowCol(node)
	dstRow, dstCol := g.RowCol(dst)
	var dir int
	switch {
	case col < dstCol:
		dir = dirEast
	case col > dstCol:
		dir = dirWest
	case row < dstRow:
		dir = dirSouth
	case row > dstRow:
		dir = dirNorth
	default:
		return 0, true
	}
	return g.dirSlot(node, dir), false
}
