// Package mesh implements the n x n mesh-connected computer of §3 and
// the paper's three-stage randomized routing algorithm (§3.4), the
// building block of the 4n + o(n) EREW PRAM emulation of Theorem 3.2.
//
// The model (§3.1) is the MIMD mesh: an n x n grid of processors with
// bidirectional links; in a single step a processor can communicate
// with all four neighbors, so each directed link moves at most one
// packet per step. Contention is resolved by the furthest-destination-
// first queueing discipline.
//
// The routing algorithm partitions the mesh into horizontal slices of
// εn rows (Figure 5). A packet from (i, j) headed to (k, l):
//
//	stage 1: moves along column j to a random row i' within the
//	         slice of its origin;
//	stage 2: moves along row i' to column l;
//	stage 3: moves along column l to row k.
//
// With ε = 1/log n, stage 1 takes o(n) and stages 2 and 3 take
// n + o(n) each, giving Theorem 3.1's 2n + o(n). The same algorithm
// run with request/reply phases yields the 4n + o(n) emulation, and on
// distance-d-local workloads it terminates in 6d + o(d) (Theorem 3.3).
package mesh

import (
	"context"
	"fmt"
	"math"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Grid is an n x n mesh. Node (r, c) has identifier r*n + c.
type Grid struct {
	n int
}

// New constructs an n x n mesh. It panics unless 2 <= n <= 4096.
func New(n int) *Grid {
	if n < 2 || n > 4096 {
		panic("mesh: side must be in [2, 4096]")
	}
	return &Grid{n: n}
}

// Side returns n.
func (g *Grid) Side() int { return g.n }

// Name identifies the grid in reports.
func (g *Grid) Name() string { return fmt.Sprintf("mesh(%dx%d)", g.n, g.n) }

// Nodes returns n*n.
func (g *Grid) Nodes() int { return g.n * g.n }

// Diameter returns 2n-2.
func (g *Grid) Diameter() int { return 2*g.n - 2 }

// RowCol splits a node identifier into row and column.
func (g *Grid) RowCol(node int) (row, col int) { return node / g.n, node % g.n }

// Node builds a node identifier from row and column.
func (g *Grid) Node(row, col int) int { return row*g.n + col }

// L1 returns the mesh (Manhattan) distance between two nodes.
func (g *Grid) L1(a, b int) int {
	ar, ac := g.RowCol(a)
	br, bc := g.RowCol(b)
	return abs(ar-br) + abs(ac-bc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Discipline selects the queueing discipline for contention.
type Discipline int

const (
	// FurthestFirst is the paper's discipline: the packet with the
	// greatest remaining distance to its destination wins the link.
	FurthestFirst Discipline = iota
	// FIFODiscipline serves packets in arrival order; the ablation of
	// experiment E10.
	FIFODiscipline
)

// Algorithm selects which routing algorithm a run uses.
type Algorithm int

const (
	// ThreeStage is the paper's §3.4 algorithm (slice-randomized
	// column offset, then row, then column), 2n + o(n).
	ThreeStage Algorithm = iota
	// ValiantBrebner routes to a uniformly random row in the full
	// column first (no slices) — the 3n + o(n) baseline of [19].
	ValiantBrebner
	// Greedy is dimension-ordered row-then-column routing with no
	// randomization at all; fine for random loads, terrible against
	// adversarial ones.
	Greedy
)

// Options configures one routing run.
type Options struct {
	// Context, when non-nil, lets callers cancel or deadline a run;
	// the engine polls it cheaply (per round) and unwinds with an
	// engine.Abort panic on expiry. A never-canceled run is
	// bit-identical to one without a context.
	Context    context.Context
	Seed       uint64
	Algorithm  Algorithm
	Discipline Discipline
	// SliceRows overrides the stage-1 slice height εn; 0 means the
	// paper's ε = 1/log n, i.e. height n/log2(n).
	SliceRows int
	// LocalityBound restricts the stage-1 random row to within the
	// packet's origin-destination distance, preserving Theorem 3.3's
	// locality; 0 means no restriction.
	LocalityBound int
	// Workers is the round-engine worker count: 0 selects GOMAXPROCS,
	// 1 the sequential loop. Any value yields identical results.
	Workers int
	// HashedKeys forces the engine's hashed-map link state instead of
	// the dense-table fast path (mesh link keys node*4 + direction are
	// dense by construction). Results are bit-identical either way;
	// the knob exists for benchmarking the fallback and for
	// path-coverage tests.
	HashedKeys bool
	// PagedKeys forces the engine's paged dense tables even when the
	// declared key space fits flat ones (the engine pages
	// automatically beyond 2^24 keys). Results are bit-identical
	// either way.
	PagedKeys bool
	// MemBudget caps the engine's fixed link-table footprint in bytes;
	// over budget the run degrades to hashed state instead of
	// erroring. Zero means no budget. See engine.Options.MemBudget.
	MemBudget int64
	// MemStats, when non-nil, receives the engine's resolved state and
	// table footprint after the run.
	MemStats *engine.MemStats
	// Lease, when non-nil, recycles the engine's table and scratch
	// allocations across same-shape runs (see engine.Options.Lease);
	// results are bit-identical with or without it. Queue free lists
	// are never leased, so the discipline closure stays per-run.
	Lease *engine.Lease
}

// Stats aggregates one routing run.
type Stats struct {
	Rounds            int
	MaxQueue          int
	TotalDelay        int64
	MaxPacketSteps    int
	DeliveredRequests int
	// StageRounds records when each stage drained: StageRounds[s] is
	// the last round at which any packet was still in stage s.
	StageRounds [3]int
}

// directions
const (
	dirNorth = iota // row-1
	dirSouth        // row+1
	dirEast         // col+1
	dirWest         // col-1
	numDirs
)

// router holds the immutable per-run configuration; all mutable state
// lives in the engine's shard contexts. Link queues live in the shared
// round engine keyed by node*numDirs + dir.
type router struct {
	g     *Grid
	opts  Options
	slice int
}

// Route routes pkts on the grid. Each packet travels Src -> Dst; the
// stage-1 random row is chosen per packet from its own substream.
// Packets need unique IDs. Returns aggregate stats.
func Route(g *Grid, pkts []*packet.Packet, opts Options) Stats {
	r := &router{g: g, opts: opts}
	r.slice = opts.SliceRows
	if r.slice <= 0 {
		r.slice = int(float64(g.n) / math.Log2(float64(g.n)))
	}
	if r.slice < 1 {
		r.slice = 1
	}
	var maxKey uint64
	if !opts.HashedKeys {
		maxKey = uint64(g.Nodes()) * numDirs
	}
	eng := engine.New(engine.Options{
		Context:    opts.Context,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		NewQueue:   r.newQueue,
		MaxKey:     maxKey,
		MemBudget:  opts.MemBudget,
		ForcePaged: opts.PagedKeys,
		Lease:      opts.Lease,
	})
	st := eng.Run(func(ctx *engine.Ctx) {
		root := prng.New(opts.Seed)
		seen := make(map[int]bool, len(pkts))
		for _, p := range pkts {
			if seen[p.ID] {
				panic(fmt.Sprintf("mesh: duplicate packet ID %d", p.ID))
			}
			seen[p.ID] = true
			if p.Src < 0 || p.Src >= g.Nodes() || p.Dst < 0 || p.Dst >= g.Nodes() {
				panic(fmt.Sprintf("mesh: packet %d endpoints out of range", p.ID))
			}
			p.Rand = root.Split(uint64(p.ID))
			p.Injected = 0
			p.Arrived = -1
			p.At = p.Src
			r.initStages(p)
			if dir, done := r.nextDir(p, p.Src); done {
				p.Arrived = 0
				ctx.Stats().DeliveredRequests++
			} else {
				ctx.Emit(uint64(p.Src*numDirs+dir), p)
			}
		}
	}, r.handle, nil)
	if opts.MemStats != nil {
		*opts.MemStats = eng.MemStats()
	}
	return Stats{
		Rounds:            st.Rounds,
		MaxQueue:          st.MaxQueue,
		TotalDelay:        st.TotalDelay,
		MaxPacketSteps:    st.MaxPacketSteps,
		DeliveredRequests: st.DeliveredRequests,
		StageRounds:       [3]int{st.Aux[0], st.Aux[1], st.Aux[2]},
	}
}

// initStages picks the packet's stage-1 target row. Stage numbering:
// 0 = column move to the random row, 1 = row move to the destination
// column, 2 = column move to the destination row.
func (r *router) initStages(p *packet.Packet) {
	srcRow, _ := r.g.RowCol(p.Src)
	base := srcRow - srcRow%r.slice
	height := r.slice
	if base+height > r.g.n {
		height = r.g.n - base
	}
	lo, hi := base, base+height // [lo, hi)
	if d := r.opts.LocalityBound; d > 0 {
		// Theorem 3.3: stay within distance d of the origin row so
		// stage 1 never takes the packet far from local traffic.
		if srcRow-d > lo {
			lo = srcRow - d
		}
		if srcRow+d+1 < hi {
			hi = srcRow + d + 1
		}
	}
	p.Row2 = lo + p.Rand.Intn(hi-lo)
	if r.opts.Algorithm == ValiantBrebner {
		p.Row2 = p.Rand.Intn(r.g.n)
	}
	if r.opts.Algorithm == Greedy {
		p.Row2 = srcRow // no stage-1 displacement
	}
	p.Stage = 0
}

// nextDir returns the direction the packet takes from node, advancing
// its stage as intermediate targets are reached; done means delivered.
func (r *router) nextDir(p *packet.Packet, node int) (dir int, done bool) {
	row, col := r.g.RowCol(node)
	dstRow, dstCol := r.g.RowCol(p.Dst)
	for {
		switch p.Stage {
		case 0: // column move to the random row
			if row == p.Row2 {
				p.Stage = 1
				continue
			}
			if row > p.Row2 {
				return dirNorth, false
			}
			return dirSouth, false
		case 1: // row move to the destination column
			if col == dstCol {
				p.Stage = 2
				continue
			}
			if col < dstCol {
				return dirEast, false
			}
			return dirWest, false
		default: // column move to the destination row
			if row == dstRow {
				return 0, true
			}
			if row > dstRow {
				return dirNorth, false
			}
			return dirSouth, false
		}
	}
}

func (r *router) neighbor(node, dir int) int {
	switch dir {
	case dirNorth:
		return node - r.g.n
	case dirSouth:
		return node + r.g.n
	case dirEast:
		return node + 1
	default:
		return node - 1
	}
}

// newQueue is the engine's link-queue factory: FIFO for the ablation,
// otherwise the paper's furthest-destination-first heap.
func (r *router) newQueue() queue.Discipline {
	if r.opts.Discipline == FIFODiscipline {
		return queue.NewFIFO(4)
	}
	g := r.g
	return queue.NewPriority(func(a, b *packet.Packet) bool {
		da, db := g.L1Remaining(a), g.L1Remaining(b)
		if da != db {
			return da > db // furthest destination first
		}
		return a.ID < b.ID
	})
}

// L1Remaining returns the packet's remaining travel distance through
// its staged route: |row - Row2 or dstRow| depending on stage, plus
// the untraveled row/column legs. Used as the furthest-first priority.
func (g *Grid) L1Remaining(p *packet.Packet) int {
	row, col := g.RowCol(p.At)
	dstRow, dstCol := g.RowCol(p.Dst)
	switch p.Stage {
	case 0:
		return abs(row-p.Row2) + abs(col-dstCol) + abs(p.Row2-dstRow)
	case 1:
		return abs(col-dstCol) + abs(row-dstRow)
	default:
		return abs(row - dstRow)
	}
}

// handle advances one popped packet a hop: it just crossed the link
// encoded in a.Key. The per-stage drain rounds live in the engine's
// max-merged Aux slots. Runs concurrently on distinct packets when
// Workers > 1.
func (r *router) handle(ctx *engine.Ctx, a engine.Arrival, round int) {
	p := a.P
	p.Hops++
	node := r.neighbor(int(a.Key)/numDirs, int(a.Key)%numDirs)
	p.At = node
	stageBefore := p.Stage
	dir, done := r.nextDir(p, node)
	st := ctx.Stats()
	if p.Stage != stageBefore || done {
		if round > st.Aux[stageBefore] {
			st.Aux[stageBefore] = round
		}
	}
	if done {
		p.Arrived = round
		st.DeliveredRequests++
		st.TotalDelay += int64(p.Delay)
		if s := p.Steps(); s > st.MaxPacketSteps {
			st.MaxPacketSteps = s
		}
		if round > st.Rounds {
			st.Rounds = round
		}
		return
	}
	ctx.Emit(uint64(node*numDirs+dir), p)
}
