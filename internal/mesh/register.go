package mesh

import (
	"fmt"

	"pramemu/internal/topology"
)

func init() {
	topology.Register(topology.Family{
		Name:    "mesh",
		Params:  "N = side length in [2,4096] (default 16); N^2 nodes",
		Theorem: "§3: the n x n mesh-connected computer",
		Build: func(p topology.Params) (topology.Built, error) {
			n := topology.DefaultInt(p.N, 16)
			if n < 2 || n > 4096 {
				return topology.Built{}, fmt.Errorf("mesh side must be in [2, 4096], got %d", n)
			}
			return topology.Built{Graph: New(n)}, nil
		},
	})
}
