package mesh

import (
	"testing"

	"pramemu/internal/prng"
)

// TestParallelMatchesSequential verifies that the goroutine-parallel
// round processing is byte-identical to the sequential simulation:
// pops touch disjoint queues and arrivals are sorted before insertion
// either way.
func TestParallelMatchesSequential(t *testing.T) {
	g := New(48)
	perm := prng.New(6).Perm(g.Nodes())
	seq := Route(g, permPackets(g, perm), Options{Seed: 9})
	par := Route(g, permPackets(g, perm), Options{Seed: 9, Workers: 8})
	if seq != par {
		t.Fatalf("parallel mesh simulation diverged:\nseq %+v\npar %+v", seq, par)
	}
}

func TestParallelLocality(t *testing.T) {
	side := 64
	if testing.Short() {
		// The root equivalence suite covers worker invariance broadly;
		// the full-size sweep here is for non-short runs.
		side = 32
	}
	g := New(side)
	perm := prng.New(2).Perm(g.Nodes())
	for _, alg := range []Algorithm{ThreeStage, ValiantBrebner, Greedy} {
		seq := Route(g, permPackets(g, perm), Options{Seed: 4, Algorithm: alg})
		par := Route(g, permPackets(g, perm), Options{Seed: 4, Algorithm: alg, Workers: 4})
		if seq != par {
			t.Fatalf("alg %d diverged under workers", alg)
		}
	}
}
