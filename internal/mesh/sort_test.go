package mesh

import (
	"math/bits"
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

func TestSortRouteDeliversPermutation(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 17, 32} {
		g := New(n)
		perm := prng.New(uint64(n)).Perm(g.Nodes())
		pkts := permPackets(g, perm)
		rounds := SortRoute(g, pkts)
		want := (2*bits.Len(uint(n-1)) + 1) * n
		if rounds != want {
			t.Fatalf("n=%d: rounds = %d, want %d", n, rounds, want)
		}
		for _, p := range pkts {
			if p.Arrived != rounds {
				t.Fatalf("packet %d not stamped", p.ID)
			}
		}
	}
}

func TestSortRouteIdentity(t *testing.T) {
	g := New(8)
	pkts := make([]*packet.Packet, g.Nodes())
	for i := range pkts {
		pkts[i] = packet.New(i, i, i, packet.Transit)
	}
	SortRoute(g, pkts) // must not panic: already sorted
}

func TestSortRouteReverse(t *testing.T) {
	// Worst-case-ish input: everything reversed.
	g := New(16)
	pkts := make([]*packet.Packet, g.Nodes())
	for i := range pkts {
		pkts[i] = packet.New(i, i, g.Nodes()-1-i, packet.Transit)
	}
	SortRoute(g, pkts)
}

func TestSortRoutePanics(t *testing.T) {
	g := New(4)
	for name, build := range map[string]func() []*packet.Packet{
		"wrong count": func() []*packet.Packet {
			return []*packet.Packet{packet.New(0, 0, 1, packet.Transit)}
		},
		"dup source": func() []*packet.Packet {
			pkts := permPackets(g, prng.New(1).Perm(g.Nodes()))
			pkts[1].Src = 0
			return pkts
		},
		"dup destination": func() []*packet.Packet {
			pkts := permPackets(g, prng.New(1).Perm(g.Nodes()))
			pkts[1].Dst = pkts[0].Dst
			return pkts
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			SortRoute(g, build())
		}()
	}
}

// TestSortRouteMuchSlowerThanThreeStage pins experiment E12's shape:
// deterministic sorting-based routing costs several times the
// randomized three-stage algorithm.
func TestSortRouteMuchSlowerThanThreeStage(t *testing.T) {
	g := New(64)
	perm := prng.New(5).Perm(g.Nodes())
	sortRounds := SortRoute(g, permPackets(g, perm))
	threeStage := Route(g, permPackets(g, perm), Options{Seed: 2})
	if sortRounds < 3*threeStage.Rounds {
		t.Fatalf("sorting %d rounds vs three-stage %d: expected >= 3x gap",
			sortRounds, threeStage.Rounds)
	}
}

func TestSnakeIndex(t *testing.T) {
	g := New(4)
	want := map[int]int{
		0: 0, 1: 1, 2: 2, 3: 3, // row 0 left-to-right
		4: 7, 5: 6, 6: 5, 7: 4, // row 1 right-to-left
		8: 8, 11: 11,
		12: 15, 15: 12,
	}
	for node, idx := range want {
		if got := g.snakeIndex(node); got != idx {
			t.Fatalf("snakeIndex(%d) = %d, want %d", node, got, idx)
		}
	}
}
