package mesh

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

func permPackets(g *Grid, perm []int) []*packet.Packet {
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	return pkts
}

func TestGridBasics(t *testing.T) {
	g := New(8)
	if g.Nodes() != 64 || g.Diameter() != 14 || g.Side() != 8 {
		t.Fatalf("grid: nodes=%d diam=%d", g.Nodes(), g.Diameter())
	}
	r, c := g.RowCol(19)
	if r != 2 || c != 3 {
		t.Fatalf("RowCol(19) = %d,%d", r, c)
	}
	if g.Node(2, 3) != 19 {
		t.Fatalf("Node(2,3) = %d", g.Node(2, 3))
	}
	if g.L1(0, 63) != 14 {
		t.Fatalf("L1 corner-to-corner = %d", g.L1(0, 63))
	}
}

func TestNewPanics(t *testing.T) {
	for _, n := range []int{1, 5000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestPermutationDelivers(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		g := New(n)
		perm := prng.New(uint64(n)).Perm(g.Nodes())
		stats := Route(g, permPackets(g, perm), Options{Seed: 3})
		if stats.DeliveredRequests != g.Nodes() {
			t.Fatalf("n=%d: delivered %d/%d", n, stats.DeliveredRequests, g.Nodes())
		}
		// Theorem 3.1: 2n + o(n). Small n have large o(n) slack; cap
		// at 4n to catch gross regressions.
		if stats.Rounds > 4*n {
			t.Fatalf("n=%d: %d rounds exceeds 4n", n, stats.Rounds)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := New(16)
	perm := prng.New(2).Perm(g.Nodes())
	a := Route(g, permPackets(g, perm), Options{Seed: 5})
	b := Route(g, permPackets(g, perm), Options{Seed: 5})
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestEachAlgorithmDelivers(t *testing.T) {
	g := New(16)
	perm := prng.New(7).Perm(g.Nodes())
	for _, alg := range []Algorithm{ThreeStage, ValiantBrebner, Greedy} {
		stats := Route(g, permPackets(g, perm), Options{Seed: 1, Algorithm: alg})
		if stats.DeliveredRequests != g.Nodes() {
			t.Fatalf("alg %d: delivered %d", alg, stats.DeliveredRequests)
		}
	}
}

func TestFIFODisciplineDelivers(t *testing.T) {
	g := New(16)
	perm := prng.New(9).Perm(g.Nodes())
	stats := Route(g, permPackets(g, perm), Options{Seed: 1, Discipline: FIFODiscipline})
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d", stats.DeliveredRequests)
	}
}

// TestThreeStageBeatsValiantBrebner reproduces the paper's motivation
// for slicing: stage 1 shrinks from a full-column move (~n) to εn,
// cutting the total from ~3n to ~2n.
func TestThreeStageBeatsValiantBrebner(t *testing.T) {
	g := New(64)
	perm := prng.New(4).Perm(g.Nodes())
	three := Route(g, permPackets(g, perm), Options{Seed: 2, Algorithm: ThreeStage})
	vb := Route(g, permPackets(g, perm), Options{Seed: 2, Algorithm: ValiantBrebner})
	if three.Rounds >= vb.Rounds {
		t.Fatalf("three-stage %d rounds not better than Valiant-Brebner %d",
			three.Rounds, vb.Rounds)
	}
}

// TestGreedyFailsAdversarially shows why randomization is needed: an
// all-columns-into-one permutation serializes on greedy routing but
// stays near 2n with the three-stage algorithm... The adversarial
// pattern sends the contents of each row block to a single column.
func TestGreedyFailsAdversarially(t *testing.T) {
	const n = 32
	g := New(n)
	// Transpose permutation: (r, c) -> (c, r). Greedy row-first
	// routing funnels all of row r into column r's vertical links.
	pkts := make([]*packet.Packet, 0, g.Nodes())
	id := 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			pkts = append(pkts, packet.New(id, g.Node(r, c), g.Node(c, r), packet.Transit))
			id++
		}
	}
	greedy := Route(g, pkts, Options{Seed: 1, Algorithm: Greedy})

	pkts2 := make([]*packet.Packet, 0, g.Nodes())
	id = 0
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			pkts2 = append(pkts2, packet.New(id, g.Node(r, c), g.Node(c, r), packet.Transit))
			id++
		}
	}
	three := Route(g, pkts2, Options{Seed: 1, Algorithm: ThreeStage})
	if three.Rounds > 4*n {
		t.Fatalf("three-stage transpose took %d rounds", three.Rounds)
	}
	_ = greedy // greedy delivers but may queue heavily; see E10 bench
}

func TestLocalityBound(t *testing.T) {
	// Theorem 3.3: requests within L1 distance d complete in 6d+o(d).
	const n, d = 64, 8
	g := New(n)
	src := prng.New(11)
	pkts := make([]*packet.Packet, 0, g.Nodes())
	for node := 0; node < g.Nodes(); node++ {
		r, c := g.RowCol(node)
		dr := r + src.Intn(2*d+1) - d
		dc := c + src.Intn(2*d+1) - d
		if dr < 0 {
			dr = -dr
		}
		if dr >= n {
			dr = 2*n - 2 - dr
		}
		if dc < 0 {
			dc = -dc
		}
		if dc >= n {
			dc = 2*n - 2 - dc
		}
		pkts = append(pkts, packet.New(node, node, g.Node(dr, dc), packet.Transit))
	}
	stats := Route(g, pkts, Options{Seed: 13, LocalityBound: d, SliceRows: d})
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d", stats.DeliveredRequests)
	}
	// 6d + o(d): allow 8d for the lower-order terms at this size.
	if stats.Rounds > 8*d {
		t.Fatalf("local routing took %d rounds for d=%d (want <= %d)", stats.Rounds, d, 8*d)
	}
}

func TestStageRoundsMonotone(t *testing.T) {
	g := New(32)
	perm := prng.New(3).Perm(g.Nodes())
	stats := Route(g, permPackets(g, perm), Options{Seed: 8})
	if stats.StageRounds[0] > stats.StageRounds[1] || stats.StageRounds[1] > stats.StageRounds[2] {
		t.Fatalf("stage completion out of order: %v", stats.StageRounds)
	}
	if stats.StageRounds[2] != stats.Rounds {
		t.Fatalf("final stage %d != rounds %d", stats.StageRounds[2], stats.Rounds)
	}
	// With ε = 1/log n, stage 1 must finish in o(n) — generously n/2.
	if stats.StageRounds[0] > g.Side()/2 {
		t.Fatalf("stage 1 took %d rounds, want o(n)", stats.StageRounds[0])
	}
}

func TestQueueSizeModest(t *testing.T) {
	// §3.4: O(log n) queues for the basic algorithm; check a modest
	// absolute bound at n=64 with furthest-first.
	g := New(64)
	perm := prng.New(21).Perm(g.Nodes())
	stats := Route(g, permPackets(g, perm), Options{Seed: 9})
	if stats.MaxQueue > 24 {
		t.Fatalf("max queue %d exceeds expected O(log n) scale", stats.MaxQueue)
	}
}

func TestRoutePanics(t *testing.T) {
	g := New(4)
	for name, f := range map[string]func(){
		"duplicate ids": func() {
			Route(g, []*packet.Packet{
				packet.New(1, 0, 1, packet.Transit),
				packet.New(1, 2, 3, packet.Transit),
			}, Options{})
		},
		"out of range": func() {
			Route(g, []*packet.Packet{packet.New(0, 0, 99, packet.Transit)}, Options{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSelfPacketsDeliverImmediately(t *testing.T) {
	g := New(8)
	pkts := make([]*packet.Packet, g.Nodes())
	for i := range pkts {
		pkts[i] = packet.New(i, i, i, packet.Transit)
	}
	stats := Route(g, pkts, Options{Seed: 1, SliceRows: 1})
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d", stats.DeliveredRequests)
	}
	if stats.Rounds != 0 {
		t.Fatalf("self routing took %d rounds", stats.Rounds)
	}
}
