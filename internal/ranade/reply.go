package ranade

import (
	"fmt"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
)

// replyPass routes read replies back along the reversed request
// paths, one packet per reverse link per round, fanning out combined
// children at the nodes where they merged — Ranade's return trip,
// which the paper's Theorem 2.6 adapts via direction bits.
//
// Reverse links are keyed densely: a butterfly node has exactly two
// upstream neighbours, so the link from flat node id f back toward
// the row whose distinguishing bit is b is key f*2 + b. The keys
// index a slice-backed table with an incrementally maintained
// active-key list (the same flat-state layout as the round engine's
// dense path) — flat up to denseReplyLimit keys, fixed-size pages
// allocated on first touch beyond it, so even the largest instances
// pay only for touched reverse links; a hash map remains as the
// forced-hashed ablation. The key order equals the old packed
// (from, to) order, so round counts are unchanged.
//
// Insertions are staged per round and committed in sorted (link,
// packet ID) order — the engine's radix sort over its canonical
// Arrival ordering — which makes the whole pass deterministic and
// independent of the forward pass's worker layout.
type replyPass struct {
	n  *Network
	st *Stats
	// table is the flat dense reverse-link state; pages is the paged
	// variant serving key spaces beyond the flat cap (fixed-size
	// pages of slice headers, allocated on first touch); nil both
	// selects links.
	table  [][]*packet.Packet
	pages  []*[replyPageSize][]*packet.Packet
	active []uint64
	// links is the hashed fallback, keyed identically.
	links map[uint64][]*packet.Packet
	// staged holds this round's insertions until commit; spare is the
	// radix sort's reused scratch buffer.
	staged   []engine.Arrival
	spare    []engine.Arrival
	inFlight int
	maxQueue int
}

// denseReplyLimit caps the flat reverse-link table at 2M slice
// headers (~48 MiB up front). Beyond it the table is paged: the k=20
// worst case, 44M keys, then prices a ~86K-entry page directory plus
// only the pages reply traffic actually touches.
const denseReplyLimit = 1 << 21

// replyPageBits sizes the paged reverse-link pages, mirroring the
// round engine's paged tables.
const (
	replyPageBits = 12
	replyPageSize = 1 << replyPageBits
	replyPageMask = replyPageSize - 1
)

func newReplyPass(n *Network, st *Stats, hashed bool) *replyPass {
	rp := &replyPass{n: n, st: st}
	keys := 2 * (n.k + 1) * n.rows
	switch {
	case hashed:
		rp.links = make(map[uint64][]*packet.Packet)
	case keys <= denseReplyLimit:
		rp.table = make([][]*packet.Packet, keys)
	default:
		rp.pages = make([]*[replyPageSize][]*packet.Packet, (keys-1)>>replyPageBits+1)
	}
	return rp
}

// dense reports whether the pass keeps an active-key list (flat or
// paged tables) rather than the hashed map.
func (rp *replyPass) dense() bool { return rp.table != nil || rp.pages != nil }

// linkKey encodes the reverse link from flat node id `from` to flat
// node id `to` one level up the return path. The two candidate target
// rows differ exactly in bit level-1, so that bit indexes the pair —
// and orders it the same way the target ids themselves do.
func (rp *replyPass) linkKey(from, to int32) uint64 {
	level := int(from) >> rp.n.k
	bit := uint64(to) >> (level - 1) & 1
	return uint64(from)*2 + bit
}

// spawn turns a delivered read request into a retracing reply.
// p.Path holds flat node ids (level*rows + row) from the source
// (level 0) to the module (level k).
func (rp *replyPass) spawn(p *packet.Packet) {
	p.Kind = packet.ReadReply
	p.Stage = len(p.Path) - 1 // current index while retracing
	rp.dispatch(p, 0)
}

// dispatch fans out any children combined at the reply's current
// node, then stages the reply for its next hop (or finishes it at
// index 0). Children merged at the final module node fan out
// immediately at spawn time.
func (rp *replyPass) dispatch(p *packet.Packet, round int) {
	for i, at := range p.CombinedAt {
		if at != p.Stage {
			continue
		}
		child := p.Children[i]
		child.Kind = packet.ReadReply
		child.Value = p.Value
		child.Stage = len(child.Path) - 1
		if child.Path[child.Stage] != p.Path[p.Stage] {
			panic(fmt.Sprintf("ranade: child %d fan-out at node %d, parent at %d",
				child.ID, child.Path[child.Stage], p.Path[p.Stage]))
		}
		rp.dispatch(child, round)
	}
	if p.Stage == 0 {
		rp.finish(p, round)
		return
	}
	rp.stage(p)
}

// stage buffers an insertion; commit applies the round's buffer in
// canonical order.
func (rp *replyPass) stage(p *packet.Packet) {
	key := rp.linkKey(p.Path[p.Stage], p.Path[p.Stage-1])
	rp.staged = append(rp.staged, engine.Arrival{Key: key, P: p})
	rp.inFlight++
}

func (rp *replyPass) commit() {
	sorted, spare := engine.SortArrivals(rp.staged, rp.spare)
	for _, s := range sorted {
		q := rp.queueAt(s.Key)
		if rp.dense() && len(q) == 0 {
			rp.active = append(rp.active, s.Key)
		}
		q = append(q, s.P)
		rp.setQueue(s.Key, q)
		if len(q) > rp.maxQueue {
			rp.maxQueue = len(q)
		}
	}
	clear(sorted)
	clear(spare)
	rp.staged, rp.spare = sorted[:0], spare[:0]
}

func (rp *replyPass) queueAt(key uint64) []*packet.Packet {
	if rp.table != nil {
		return rp.table[key]
	}
	if rp.pages != nil {
		if pg := rp.pages[key>>replyPageBits]; pg != nil {
			return pg[key&replyPageMask]
		}
		return nil
	}
	return rp.links[key]
}

func (rp *replyPass) setQueue(key uint64, q []*packet.Packet) {
	if rp.table != nil {
		rp.table[key] = q
		return
	}
	if rp.pages != nil {
		pg := rp.pages[key>>replyPageBits]
		if pg == nil {
			pg = new([replyPageSize][]*packet.Packet)
			rp.pages[key>>replyPageBits] = pg
		}
		pg[key&replyPageMask] = q
		return
	}
	rp.links[key] = q
}

func (rp *replyPass) pending() bool { return rp.inFlight > 0 }

// step advances every non-empty reverse link by one packet: replies
// spawned during this round's forward pass are committed first (so a
// fresh reply moves a hop in its spawn round, as before), then each
// link head moves and re-stages for the next hop. Per-link effects
// commute — advancing a head only appends to the staged buffer, which
// commit applies in canonical order — so the iteration order over
// live links is free to be a map walk or the active list.
func (rp *replyPass) step(round int) {
	rp.commit()
	if rp.dense() {
		for i := 0; i < len(rp.active); {
			key := rp.active[i]
			q := rp.queueAt(key)
			p := q[0]
			q[0] = nil
			if len(q) == 1 {
				rp.setQueue(key, q[:0])
				last := len(rp.active) - 1
				rp.active[i] = rp.active[last]
				rp.active = rp.active[:last]
			} else {
				rp.setQueue(key, q[1:])
				i++
			}
			rp.inFlight--
			rp.advanceReply(p, round)
		}
	} else {
		for key, q := range rp.links {
			p := q[0]
			q[0] = nil
			if len(q) == 1 {
				delete(rp.links, key)
			} else {
				rp.links[key] = q[1:]
			}
			rp.inFlight--
			rp.advanceReply(p, round)
		}
	}
	rp.commit()
}

func (rp *replyPass) advanceReply(p *packet.Packet, round int) {
	p.Hops++
	p.Stage--
	rp.dispatch(p, round)
}

func (rp *replyPass) finish(p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("ranade: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	rp.st.DeliveredReplies++
}
