package ranade

import (
	"fmt"
	"sort"

	"pramemu/internal/packet"
)

// replyPass routes read replies back along the reversed request
// paths, one packet per reverse link per round, fanning out combined
// children at the nodes where they merged — Ranade's return trip,
// which the paper's Theorem 2.6 adapts via direction bits.
//
// Insertions are staged per round and committed in sorted (link,
// packet ID) order. The original implementation appended in map
// iteration order, which made reply queue contents — and hence round
// counts — vary from run to run on identical inputs; the canonical
// commit order makes the whole pass deterministic and independent of
// the forward pass's worker layout.
type replyPass struct {
	n  *Network
	st *Stats
	// links maps a directed reverse edge (from<<32 | to) to its FIFO.
	links map[uint64][]*packet.Packet
	// staged holds this round's insertions until commit.
	staged   []stagedReply
	inFlight int
	maxQueue int
}

type stagedReply struct {
	key uint64
	p   *packet.Packet
}

func newReplyPass(n *Network, st *Stats) *replyPass {
	return &replyPass{n: n, st: st, links: make(map[uint64][]*packet.Packet)}
}

// spawn turns a delivered read request into a retracing reply.
// p.Path holds flat node ids (level*rows + row) from the source
// (level 0) to the module (level k).
func (rp *replyPass) spawn(p *packet.Packet) {
	p.Kind = packet.ReadReply
	p.Stage = len(p.Path) - 1 // current index while retracing
	rp.dispatch(p, 0)
}

// dispatch fans out any children combined at the reply's current
// node, then stages the reply for its next hop (or finishes it at
// index 0). Children merged at the final module node fan out
// immediately at spawn time.
func (rp *replyPass) dispatch(p *packet.Packet, round int) {
	for i, at := range p.CombinedAt {
		if at != p.Stage {
			continue
		}
		child := p.Children[i]
		child.Kind = packet.ReadReply
		child.Value = p.Value
		child.Stage = len(child.Path) - 1
		if child.Path[child.Stage] != p.Path[p.Stage] {
			panic(fmt.Sprintf("ranade: child %d fan-out at node %d, parent at %d",
				child.ID, child.Path[child.Stage], p.Path[p.Stage]))
		}
		rp.dispatch(child, round)
	}
	if p.Stage == 0 {
		rp.finish(p, round)
		return
	}
	rp.stage(p)
}

// stage buffers an insertion; commit applies the round's buffer in
// canonical order.
func (rp *replyPass) stage(p *packet.Packet) {
	from := uint64(p.Path[p.Stage])
	to := uint64(p.Path[p.Stage-1])
	rp.staged = append(rp.staged, stagedReply{from<<32 | to, p})
	rp.inFlight++
}

func (rp *replyPass) commit() {
	sort.Slice(rp.staged, func(i, j int) bool {
		if rp.staged[i].key != rp.staged[j].key {
			return rp.staged[i].key < rp.staged[j].key
		}
		return rp.staged[i].p.ID < rp.staged[j].p.ID
	})
	for _, s := range rp.staged {
		rp.links[s.key] = append(rp.links[s.key], s.p)
		if len(rp.links[s.key]) > rp.maxQueue {
			rp.maxQueue = len(rp.links[s.key])
		}
	}
	rp.staged = rp.staged[:0]
}

func (rp *replyPass) pending() bool { return rp.inFlight > 0 }

// step advances every non-empty reverse link by one packet: replies
// spawned during this round's forward pass are committed first (so a
// fresh reply moves a hop in its spawn round, as before), then each
// link head moves and re-stages for the next hop.
func (rp *replyPass) step(round int) {
	rp.commit()
	type arrival struct {
		key uint64
		p   *packet.Packet
	}
	var moved []arrival
	for key, q := range rp.links {
		p := q[0]
		if len(q) == 1 {
			delete(rp.links, key)
		} else {
			rp.links[key] = q[1:]
		}
		rp.inFlight--
		moved = append(moved, arrival{key, p})
	}
	for _, a := range moved {
		p := a.p
		p.Hops++
		p.Stage--
		rp.dispatch(p, round)
	}
	rp.commit()
}

func (rp *replyPass) finish(p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("ranade: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	rp.st.DeliveredReplies++
}
