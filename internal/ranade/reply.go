package ranade

import (
	"fmt"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
)

// replyPass routes read replies back along the reversed request
// paths, one packet per reverse link per round, fanning out combined
// children at the nodes where they merged — Ranade's return trip,
// which the paper's Theorem 2.6 adapts via direction bits.
//
// Reverse links are keyed densely: a butterfly node has exactly two
// upstream neighbours, so the link from flat node id f back toward
// the row whose distinguishing bit is b is key f*2 + b. On all but
// the largest instances the keys index a slice-backed table with an
// incrementally maintained active-key list (the same flat-state
// layout as the round engine's dense path); a hash map serves as the
// fallback beyond the table-memory cap. The key order equals the old
// packed (from, to) order, so round counts are unchanged.
//
// Insertions are staged per round and committed in sorted (link,
// packet ID) order — the engine's radix sort over its canonical
// Arrival ordering — which makes the whole pass deterministic and
// independent of the forward pass's worker layout.
type replyPass struct {
	n  *Network
	st *Stats
	// table is the dense reverse-link state; nil selects links.
	table  [][]*packet.Packet
	active []uint64
	// links is the hashed fallback, keyed identically.
	links map[uint64][]*packet.Packet
	// staged holds this round's insertions until commit; spare is the
	// radix sort's reused scratch buffer.
	staged   []engine.Arrival
	spare    []engine.Arrival
	inFlight int
	maxQueue int
}

// denseReplyLimit caps the reverse-link table at 2M slice headers
// (~48 MiB); the k=20 worst case would need 44M.
const denseReplyLimit = 1 << 21

func newReplyPass(n *Network, st *Stats, hashed bool) *replyPass {
	rp := &replyPass{n: n, st: st}
	if keys := 2 * (n.k + 1) * n.rows; !hashed && keys <= denseReplyLimit {
		rp.table = make([][]*packet.Packet, keys)
	} else {
		rp.links = make(map[uint64][]*packet.Packet)
	}
	return rp
}

// linkKey encodes the reverse link from flat node id `from` to flat
// node id `to` one level up the return path. The two candidate target
// rows differ exactly in bit level-1, so that bit indexes the pair —
// and orders it the same way the target ids themselves do.
func (rp *replyPass) linkKey(from, to int32) uint64 {
	level := int(from) >> rp.n.k
	bit := uint64(to) >> (level - 1) & 1
	return uint64(from)*2 + bit
}

// spawn turns a delivered read request into a retracing reply.
// p.Path holds flat node ids (level*rows + row) from the source
// (level 0) to the module (level k).
func (rp *replyPass) spawn(p *packet.Packet) {
	p.Kind = packet.ReadReply
	p.Stage = len(p.Path) - 1 // current index while retracing
	rp.dispatch(p, 0)
}

// dispatch fans out any children combined at the reply's current
// node, then stages the reply for its next hop (or finishes it at
// index 0). Children merged at the final module node fan out
// immediately at spawn time.
func (rp *replyPass) dispatch(p *packet.Packet, round int) {
	for i, at := range p.CombinedAt {
		if at != p.Stage {
			continue
		}
		child := p.Children[i]
		child.Kind = packet.ReadReply
		child.Value = p.Value
		child.Stage = len(child.Path) - 1
		if child.Path[child.Stage] != p.Path[p.Stage] {
			panic(fmt.Sprintf("ranade: child %d fan-out at node %d, parent at %d",
				child.ID, child.Path[child.Stage], p.Path[p.Stage]))
		}
		rp.dispatch(child, round)
	}
	if p.Stage == 0 {
		rp.finish(p, round)
		return
	}
	rp.stage(p)
}

// stage buffers an insertion; commit applies the round's buffer in
// canonical order.
func (rp *replyPass) stage(p *packet.Packet) {
	key := rp.linkKey(p.Path[p.Stage], p.Path[p.Stage-1])
	rp.staged = append(rp.staged, engine.Arrival{Key: key, P: p})
	rp.inFlight++
}

func (rp *replyPass) commit() {
	sorted, spare := engine.SortArrivals(rp.staged, rp.spare)
	for _, s := range sorted {
		q := rp.queueAt(s.Key)
		if rp.table != nil && len(q) == 0 {
			rp.active = append(rp.active, s.Key)
		}
		q = append(q, s.P)
		rp.setQueue(s.Key, q)
		if len(q) > rp.maxQueue {
			rp.maxQueue = len(q)
		}
	}
	clear(sorted)
	clear(spare)
	rp.staged, rp.spare = sorted[:0], spare[:0]
}

func (rp *replyPass) queueAt(key uint64) []*packet.Packet {
	if rp.table != nil {
		return rp.table[key]
	}
	return rp.links[key]
}

func (rp *replyPass) setQueue(key uint64, q []*packet.Packet) {
	if rp.table != nil {
		rp.table[key] = q
		return
	}
	rp.links[key] = q
}

func (rp *replyPass) pending() bool { return rp.inFlight > 0 }

// step advances every non-empty reverse link by one packet: replies
// spawned during this round's forward pass are committed first (so a
// fresh reply moves a hop in its spawn round, as before), then each
// link head moves and re-stages for the next hop. Per-link effects
// commute — advancing a head only appends to the staged buffer, which
// commit applies in canonical order — so the iteration order over
// live links is free to be a map walk or the active list.
func (rp *replyPass) step(round int) {
	rp.commit()
	if rp.table != nil {
		for i := 0; i < len(rp.active); {
			key := rp.active[i]
			q := rp.table[key]
			p := q[0]
			q[0] = nil
			if len(q) == 1 {
				rp.table[key] = q[:0]
				last := len(rp.active) - 1
				rp.active[i] = rp.active[last]
				rp.active = rp.active[:last]
			} else {
				rp.table[key] = q[1:]
				i++
			}
			rp.inFlight--
			rp.advanceReply(p, round)
		}
	} else {
		for key, q := range rp.links {
			p := q[0]
			q[0] = nil
			if len(q) == 1 {
				delete(rp.links, key)
			} else {
				rp.links[key] = q[1:]
			}
			rp.inFlight--
			rp.advanceReply(p, round)
		}
	}
	rp.commit()
}

func (rp *replyPass) advanceReply(p *packet.Packet, round int) {
	p.Hops++
	p.Stage--
	rp.dispatch(p, round)
}

func (rp *replyPass) finish(p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("ranade: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	rp.st.DeliveredReplies++
}
