// Package ranade implements (a faithful simplification of) Ranade's
// butterfly emulation algorithm [13] ("How to Emulate Shared Memory",
// FOCS 1987) — the prior work the paper builds on: one CRCW PRAM step
// on an N-processor butterfly in O(log N) time w.h.p. The paper's
// contribution is beating its *constant* (and its diameter floor) on
// sub-logarithmic-diameter leveled networks and on the mesh; this
// package exists so those comparisons run against the real thing.
//
// The algorithm routes one batch of memory requests through the
// unrolled butterfly, maintaining the defining Ranade invariant:
// every link carries packets in nondecreasing destination-key order.
// Each node merges its (at most two) sorted input streams; equal-key
// read requests combine when they meet (the original message-
// combining construction that Theorem 2.6 adapts). Because a node may
// forward a packet only when it knows no smaller-keyed packet can
// still arrive on the other input, nodes emit *ghost* messages — pure
// progress markers carrying the key of the last real packet — and
// end-of-stream markers when a stream is exhausted. Replies retrace
// the recorded request paths in reverse, fanning out at combine
// points exactly as direction bits dictate.
package ranade

import (
	"fmt"
	"sort"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
)

// Options configures one emulated step.
type Options struct {
	// Combine enables the message-combining construction (it is
	// integral to Ranade's protocol; the flag gates it for ablations).
	Combine bool
	// Seed is accepted for interface symmetry; the forward pass is
	// deterministic given the hash placement.
	Seed uint64
	// Workers is the forward-pass worker count: 0 selects GOMAXPROCS,
	// 1 the sequential loop. Any value yields identical results — rows
	// within a level are independent (each directed butterfly link has
	// exactly one writer), and reply-link insertions are committed in
	// sorted (link, packet ID) order.
	Workers int
	// HashedKeys forces the reply pass's hashed link map instead of
	// its dense reverse-link table. Results are bit-identical either
	// way; the knob exists for path-coverage tests.
	HashedKeys bool
}

// Stats summarizes one emulated step.
type Stats struct {
	// Rounds is the total time: request pass plus reply return.
	Rounds int
	// RequestRounds is when the last request reached its module.
	RequestRounds int
	// MaxQueue is the largest real-packet queue occupancy on a link.
	MaxQueue int
	// Merges counts combining events.
	Merges int
	// DeliveredRequests and DeliveredReplies count completions
	// (combined packets count once per constituent).
	DeliveredRequests, DeliveredReplies int
	// Ghosts counts ghost transmissions (protocol overhead).
	Ghosts int
}

// item is a slot in a link stream: a real packet or a ghost marker.
type item struct {
	key   uint64 // destination-row-major sort key
	p     *packet.Packet
	ghost bool
	eos   bool
}

// link is a sorted stream between two butterfly nodes.
type link struct {
	q       []item
	sentEOS bool
	lastKey uint64
	maxReal int
}

func (l *link) push(it item) {
	if it.ghost && len(l.q) > 0 && l.q[len(l.q)-1].ghost {
		// Consecutive ghosts collapse: only the freshest matters.
		l.q[len(l.q)-1] = it
		return
	}
	l.q = append(l.q, it)
	real := 0
	for _, e := range l.q {
		if !e.ghost && !e.eos {
			real++
		}
	}
	if real > l.maxReal {
		l.maxReal = real
	}
}

func (l *link) head() (item, bool) {
	if len(l.q) == 0 {
		return item{}, false
	}
	return l.q[0], true
}

func (l *link) pop() item {
	it := l.q[0]
	l.q = l.q[1:]
	return it
}

// Network is a butterfly emulation instance: 2^k processor rows and
// 2^k memory-module rows, k+1 levels.
type Network struct {
	k    int
	rows int
}

// New constructs the butterfly with 2^k rows. It panics unless
// 1 <= k <= 20.
func New(k int) *Network {
	if k < 1 || k > 20 {
		panic("ranade: dimension must be in [1, 20]")
	}
	return &Network{k: k, rows: 1 << k}
}

// Name identifies the network.
func (n *Network) Name() string { return fmt.Sprintf("ranade-butterfly(k=%d)", n.k) }

// Nodes returns the number of processor rows (= memory modules).
func (n *Network) Nodes() int { return n.rows }

// Diameter returns the butterfly depth k (one traversal).
func (n *Network) Diameter() int { return n.k }

// node state during the forward pass: two input links, merge engine.
type node struct {
	in [2]*link
	// done[i] reports input i has delivered EOS.
	done [2]bool
}

// Route emulates one step: each request packet travels from processor
// row Src (level 0) to module row Dst (level k), combining same-Addr
// reads; reads then return replies along reversed paths. Packet IDs
// must be unique. Keys sort by (Dst, Addr) so the stream invariant
// holds per link while equal-address packets for the same module meet
// adjacently and combine.
func (n *Network) Route(pkts []*packet.Packet, combine bool, seed uint64) Stats {
	return n.RouteOpts(pkts, Options{Combine: combine, Seed: seed})
}

// stepEffects accumulates one worker's forward-pass side effects for a
// round; chunks merge commutatively (sums and maxima), so the merged
// result is independent of the worker layout.
type stepEffects struct {
	merges        int
	ghosts        int
	deliveredReq  int
	delivered     int
	requestRounds int
	spawned       []*packet.Packet
}

func (e *stepEffects) reset() {
	e.merges, e.ghosts, e.deliveredReq, e.delivered, e.requestRounds = 0, 0, 0, 0, 0
	e.spawned = e.spawned[:0]
}

// RouteOpts is Route with explicit Options (notably Workers).
func (n *Network) RouteOpts(pkts []*packet.Packet, opts Options) Stats {
	combine := opts.Combine
	st := Stats{}
	k := n.k
	// levels[l][row] is the node at level l (1..k) with its two input
	// links from level l-1. Input 0 is the straight edge, input 1 the
	// cross edge.
	nodes := make([][]node, k+1)
	for l := 1; l <= k; l++ {
		nodes[l] = make([]node, n.rows)
		for r := 0; r < n.rows; r++ {
			nodes[l][r].in[0] = &link{}
			nodes[l][r].in[1] = &link{}
		}
	}
	// Sources: sort each row's packets by key; they feed level-1 nodes.
	sources := make([][]*packet.Packet, n.rows)
	seen := make(map[int]bool, len(pkts))
	for _, p := range pkts {
		if seen[p.ID] {
			panic(fmt.Sprintf("ranade: duplicate packet ID %d", p.ID))
		}
		seen[p.ID] = true
		if p.Src < 0 || p.Src >= n.rows || p.Dst < 0 || p.Dst >= n.rows {
			panic(fmt.Sprintf("ranade: packet %d endpoints out of range", p.ID))
		}
		p.Arrived = -1
		p.Path = append(p.Path[:0], int32(p.Src))
		sources[p.Src] = append(sources[p.Src], p)
	}
	for r := range sources {
		row := sources[r]
		sort.Slice(row, func(i, j int) bool {
			if key(row[i]) != key(row[j]) {
				return key(row[i]) < key(row[j])
			}
			return row[i].ID < row[j].ID
		})
	}
	srcPos := make([]int, n.rows)

	delivered := 0
	want := len(pkts)
	round := 0
	maxRounds := 40 * (k + 1) * (maxPerRow(sources) + 1)
	replies := newReplyPass(n, &st, opts.HashedKeys)
	// Rows within a level are independent — every directed butterfly
	// link has exactly one writer per round — so the per-level node
	// loop shards over the pool; per-worker effects merge after the
	// barrier. Small instances stay inline.
	pool := engine.NewPool(opts.Workers)
	effects := make([]stepEffects, pool.Workers())
	par := n.rows >= 256
	for delivered < want || replies.pending() {
		round++
		if round > maxRounds {
			panic(fmt.Sprintf("ranade: no progress after %d rounds (protocol stall)", round))
		}
		for w := range effects {
			effects[w].reset()
		}
		// 1. Sources inject into level 1 (one item per out-link).
		pool.RunIf(par, n.rows, func(w, lo, hi int) {
			for r := lo; r < hi; r++ {
				n.injectFrom(r, sources[r], &srcPos[r], nodes[1], &effects[w])
			}
		})
		// 2. Interior nodes forward level by level. Process from the
		// deepest level backward so an item moves one level per round.
		for l := k; l >= 1; l-- {
			pool.RunIf(par, n.rows, func(w, lo, hi int) {
				for r := lo; r < hi; r++ {
					n.step(l, r, nodes, combine, round, &effects[w])
				}
			})
		}
		for w := range effects {
			eff := &effects[w]
			st.Merges += eff.merges
			st.Ghosts += eff.ghosts
			st.DeliveredRequests += eff.deliveredReq
			delivered += eff.delivered
			if eff.requestRounds > st.RequestRounds {
				st.RequestRounds = eff.requestRounds
			}
			for _, p := range eff.spawned {
				replies.spawn(p)
			}
		}
		// 3. Replies advance one hop.
		replies.step(round)
		if delivered == want && st.RequestRounds == 0 {
			st.RequestRounds = round
		}
	}
	st.Rounds = round
	for l := 1; l <= k; l++ {
		for r := 0; r < n.rows; r++ {
			for s := 0; s < 2; s++ {
				if q := nodes[l][r].in[s].maxReal; q > st.MaxQueue {
					st.MaxQueue = q
				}
			}
		}
	}
	if rq := replies.maxQueue; rq > st.MaxQueue {
		st.MaxQueue = rq
	}
	return st
}

func maxPerRow(rows [][]*packet.Packet) int {
	m := 0
	for _, r := range rows {
		if len(r) > m {
			m = len(r)
		}
	}
	return m
}

// key orders packets by destination row then address, so packets for
// the same module and address are adjacent in every merged stream.
func key(p *packet.Packet) uint64 { return uint64(p.Dst)<<32 | (p.Addr & 0xffffffff) }

// injectFrom feeds the next source packet (or EOS) into the proper
// level-1 input link.
func (n *Network) injectFrom(row int, pkts []*packet.Packet, pos *int, level1 []node, eff *stepEffects) {
	// The level-0 "node" has out-links to level-1 straight (same row)
	// and cross (row ^ 1). Send the next packet to the link its route
	// needs and a ghost to the other; after the last packet, EOS both.
	straight := level1[row].in[inSlot(row, row)]
	cross := level1[row^1].in[inSlot(row^1, row)]
	if *pos >= len(pkts) {
		for _, l := range []*link{straight, cross} {
			if !l.sentEOS {
				l.push(item{eos: true, key: ^uint64(0)})
				l.sentEOS = true
			}
		}
		return
	}
	p := pkts[*pos]
	*pos++
	next := row
	if p.Dst&1 != row&1 {
		next = row ^ 1
	}
	k := key(p)
	if next == row {
		straight.push(item{key: k, p: p})
		cross.push(item{key: k, ghost: true})
	} else {
		cross.push(item{key: k, p: p})
		straight.push(item{key: k, ghost: true})
	}
	eff.ghosts++
}

// inSlot returns which input slot of node `row` at level l the edge
// from `fromRow` at level l-1 occupies: 0 if straight, 1 if cross.
func inSlot(row, fromRow int) int {
	if row == fromRow {
		return 0
	}
	return 1
}

// step lets node (level, row) forward at most one item: the smaller
// key of its two input heads, provided both inputs can vouch no
// smaller key is coming. It reads only this node's input links and
// writes only this node's two downstream links, so distinct rows of a
// level run concurrently; side effects accumulate in eff.
func (n *Network) step(level, row int, nodes [][]node, combine bool, round int,
	eff *stepEffects) bool {
	nd := &nodes[level][row]
	h0, ok0 := nd.in[0].head()
	h1, ok1 := nd.in[1].head()
	if !ok0 || !ok1 {
		return false // must wait for knowledge on both streams
	}
	// Pick the smaller key; ghosts with equal keys yield to packets.
	pick := 0
	switch {
	case h0.eos && h1.eos:
		// Stream finished: propagate EOS downstream once.
		n.emitEOS(level, row, nodes)
		return false
	case h0.eos:
		pick = 1
	case h1.eos:
		pick = 0
	case h0.key < h1.key || (h0.key == h1.key && (h1.ghost && !h0.ghost)):
		pick = 0
	default:
		pick = 1
	}
	it, _ := nd.in[pick].head()
	if it.ghost {
		nd.in[pick].pop()
		n.forwardGhost(level, row, it.key, nodes, eff)
		return true
	}
	// A real packet. Try combining with the other head if equal key
	// and same address/kind.
	nd.in[pick].pop()
	p := it.p
	if combine {
		for absorbed := true; absorbed; {
			absorbed = false
			for s := 0; s < 2; s++ {
				oh, ok := nd.in[s].head()
				if !ok || oh.ghost || oh.eos || oh.key != it.key ||
					oh.p.Addr != p.Addr || oh.p.Kind != p.Kind {
					continue
				}
				nd.in[s].pop()
				// The merge happens at this node: close the child's
				// path here and remember this node's index in the
				// host's path (appended below) for reply fan-out.
				oh.p.Hops++
				oh.p.RecordPath(n.rowAt(level, row))
				p.Combine(oh.p, len(p.Path))
				eff.merges++
				absorbed = true
			}
		}
	}
	p.Hops++
	p.RecordPath(n.rowAt(level, row))
	if level == n.k {
		if row != p.Dst {
			panic(fmt.Sprintf("ranade: packet %d reached row %d, want %d", p.ID, row, p.Dst))
		}
		p.Arrived = round
		eff.delivered += p.TotalCombined()
		eff.deliveredReq += p.TotalCombined()
		if round > eff.requestRounds {
			eff.requestRounds = round
		}
		if p.Kind == packet.ReadRequest {
			eff.spawned = append(eff.spawned, p)
		}
		n.forwardGhost(level, row, it.key, nodes, eff) // keep peers progressing
		return true
	}
	// Forward to level+1: straight if bit `level` of dst equals bit of
	// row, else cross.
	nextRow := row
	if (p.Dst>>level)&1 != (row>>level)&1 {
		nextRow = row ^ (1 << level)
	}
	nodes[level+1][nextRow].in[inSlot01(nextRow == row)].push(item{key: it.key, p: p})
	// Ghost on the other out-link.
	otherRow := row ^ (1 << level)
	if nextRow == otherRow {
		otherRow = row
	}
	nodes[level+1][otherRow].in[inSlot01(otherRow == row)].push(item{key: it.key, ghost: true})
	eff.ghosts++
	return true
}

func inSlot01(straight bool) int {
	if straight {
		return 0
	}
	return 1
}

// forwardGhost propagates a progress marker to both downstream links
// (or nowhere at the last level).
func (n *Network) forwardGhost(level, row int, k uint64, nodes [][]node, eff *stepEffects) {
	if level == n.k {
		return
	}
	for _, r := range []int{row, row ^ (1 << level)} {
		nodes[level+1][r].in[inSlot01(r == row)].push(item{key: k, ghost: true})
	}
	eff.ghosts += 2
}

// emitEOS propagates end-of-stream downstream once per link.
func (n *Network) emitEOS(level, row int, nodes [][]node) {
	if level == n.k {
		return
	}
	for _, r := range []int{row, row ^ (1 << level)} {
		l := nodes[level+1][r].in[inSlot01(r == row)]
		if !l.sentEOS {
			l.push(item{eos: true, key: ^uint64(0)})
			l.sentEOS = true
		}
	}
}

// rowAt gives a flat node id for path recording: level*rows + row.
func (n *Network) rowAt(level, row int) int { return level*n.rows + row }
