package ranade

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

func readPackets(n int, dsts []int, addrs []uint64) []*packet.Packet {
	pkts := make([]*packet.Packet, len(dsts))
	for i, dst := range dsts {
		pkts[i] = packet.New(i, i%n, dst, packet.ReadRequest)
		pkts[i].Addr = addrs[i]
	}
	return pkts
}

func TestPermutationDelivers(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		net := New(k)
		n := net.Nodes()
		perm := prng.New(uint64(k)).Perm(n)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(i) * 7
		}
		pkts := readPackets(n, perm, addrs)
		stats := net.Route(pkts, false, 1)
		if stats.DeliveredRequests != n {
			t.Fatalf("k=%d: delivered %d/%d", k, stats.DeliveredRequests, n)
		}
		if stats.DeliveredReplies != n {
			t.Fatalf("k=%d: replies %d/%d", k, stats.DeliveredReplies, n)
		}
		// O(log N): generously under 20k rounds.
		if stats.Rounds > 20*k {
			t.Fatalf("k=%d: %d rounds not O(k)", k, stats.Rounds)
		}
	}
}

func TestWritesGetNoReplies(t *testing.T) {
	net := New(4)
	n := net.Nodes()
	perm := prng.New(2).Perm(n)
	pkts := make([]*packet.Packet, n)
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.WriteRequest)
		pkts[i].Addr = uint64(i)
	}
	stats := net.Route(pkts, false, 1)
	if stats.DeliveredRequests != n || stats.DeliveredReplies != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestHotSpotCombinesToOne(t *testing.T) {
	net := New(6) // 64 rows
	n := net.Nodes()
	dsts := make([]int, n)
	addrs := make([]uint64, n)
	for i := range dsts {
		dsts[i] = 13
		addrs[i] = 42
	}
	pkts := readPackets(n, dsts, addrs)
	stats := net.Route(pkts, true, 1)
	if stats.DeliveredRequests != n {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, n)
	}
	if stats.DeliveredReplies != n {
		t.Fatalf("replies %d/%d", stats.DeliveredReplies, n)
	}
	// A perfect combining tree performs n-1 merges.
	if stats.Merges != n-1 {
		t.Fatalf("merges = %d, want %d", stats.Merges, n-1)
	}
	// And the whole step stays O(k).
	if stats.Rounds > 20*6 {
		t.Fatalf("combined hot spot took %d rounds", stats.Rounds)
	}
}

func TestHotSpotWithoutCombiningSerializes(t *testing.T) {
	net := New(6)
	n := net.Nodes()
	dsts := make([]int, n)
	addrs := make([]uint64, n)
	for i := range dsts {
		dsts[i] = 13
		addrs[i] = 42
	}
	with := net.Route(readPackets(n, dsts, addrs), true, 1)
	without := net.Route(readPackets(n, dsts, addrs), false, 1)
	if without.Rounds < 2*with.Rounds {
		t.Fatalf("combining speedup missing: with=%d without=%d", with.Rounds, without.Rounds)
	}
}

func TestCombinedValuesPropagate(t *testing.T) {
	net := New(4)
	n := net.Nodes()
	dsts := make([]int, n)
	addrs := make([]uint64, n)
	for i := range dsts {
		dsts[i] = 5
		addrs[i] = 7
	}
	pkts := readPackets(n, dsts, addrs)
	// Simulate the module's answer: the emulator pre-stamps Value.
	for _, p := range pkts {
		p.Value = 999
	}
	net.Route(pkts, true, 1)
	for _, p := range pkts {
		if p.Kind != packet.ReadReply {
			t.Fatalf("packet %d kind %v", p.ID, p.Kind)
		}
		if p.Value != 999 {
			t.Fatalf("packet %d value %d", p.ID, p.Value)
		}
		if p.Arrived < 0 {
			t.Fatalf("packet %d reply never arrived", p.ID)
		}
	}
}

func TestDeterministic(t *testing.T) {
	net := New(5)
	n := net.Nodes()
	perm := prng.New(3).Perm(n)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	a := net.Route(readPackets(n, perm, addrs), true, 9)
	b := net.Route(readPackets(n, perm, addrs), true, 9)
	if a != b {
		t.Fatalf("nondeterministic:\n%+v\n%+v", a, b)
	}
}

func TestManyToFewModules(t *testing.T) {
	// All requests to 4 modules with distinct addresses: combining
	// cannot help, streams serialize, but everything still delivers.
	net := New(5)
	n := net.Nodes()
	dsts := make([]int, n)
	addrs := make([]uint64, n)
	for i := range dsts {
		dsts[i] = i % 4
		addrs[i] = uint64(i)
	}
	stats := net.Route(readPackets(n, dsts, addrs), true, 1)
	if stats.DeliveredRequests != n || stats.DeliveredReplies != n {
		t.Fatalf("stats %+v", stats)
	}
}

func TestPanics(t *testing.T) {
	net := New(3)
	for name, pkts := range map[string][]*packet.Packet{
		"dup ids": {
			packet.New(1, 0, 1, packet.ReadRequest),
			packet.New(1, 1, 2, packet.ReadRequest),
		},
		"bad endpoint": {packet.New(0, 0, 99, packet.ReadRequest)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			net.Route(pkts, false, 1)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New(0)
}

func TestEmptyRoute(t *testing.T) {
	net := New(3)
	stats := net.Route(nil, false, 1)
	if stats.DeliveredRequests != 0 {
		t.Fatalf("stats %+v", stats)
	}
}
