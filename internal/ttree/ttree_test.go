package ttree

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
	"pramemu/internal/star"
)

func TestStarTreeMatchesStarGraph(t *testing.T) {
	// The star-tree Cayley graph is the n-star graph; the BFS-computed
	// diameter must reproduce ⌊3(n-1)/2⌋.
	for _, n := range []int{3, 4, 5, 6} {
		g := NewStar(n)
		sg := star.New(n)
		if g.Nodes() != sg.Nodes() {
			t.Fatalf("n=%d: nodes %d != star %d", n, g.Nodes(), sg.Nodes())
		}
		if g.Degree(0) != sg.Degree(0) {
			t.Fatalf("n=%d: degree %d != star %d", n, g.Degree(0), sg.Degree(0))
		}
		if g.Diameter() != sg.Diameter() {
			t.Fatalf("n=%d: diameter %d != star's %d", n, g.Diameter(), sg.Diameter())
		}
	}
}

func TestPathTreeIsBubbleSortGraph(t *testing.T) {
	// The path-tree graph is the bubble-sort graph, whose diameter is
	// the maximum inversion count n(n-1)/2.
	for _, n := range []int{3, 4, 5} {
		g := NewPath(n)
		if want := n * (n - 1) / 2; g.Diameter() != want {
			t.Fatalf("n=%d: bubble-sort diameter %d, want %d", n, g.Diameter(), want)
		}
	}
}

func TestNeighborIsInvolution(t *testing.T) {
	for _, g := range []*Graph{NewPath(5), NewBinary(5), NewStar(5)} {
		for u := 0; u < g.Nodes(); u++ {
			for s := 0; s < g.Degree(u); s++ {
				v := g.Neighbor(u, s)
				if v == u {
					t.Fatalf("%s: node %d slot %d is a self-loop", g.Name(), u, s)
				}
				if back := g.Neighbor(v, s); back != u {
					t.Fatalf("%s: transposition not involutive at %d slot %d", g.Name(), u, s)
				}
			}
		}
	}
}

func TestLeafEliminationPathsExhaustive(t *testing.T) {
	// Every ordered pair on all three shapes at n=5: paths terminate
	// within (n-1)² hops at the right node and never undo a placement.
	for _, g := range []*Graph{NewPath(5), NewBinary(5), NewStar(5)} {
		bound := g.MaxPathLen()
		for u := 0; u < g.Nodes(); u++ {
			for v := 0; v < g.Nodes(); v++ {
				if d := g.Distance(u, v); d > bound {
					t.Fatalf("%s: path %d->%d took %d hops, bound %d", g.Name(), u, v, d, bound)
				}
			}
		}
	}
}

func TestValiantPermutationRouting(t *testing.T) {
	g := NewBinary(5) // 120 nodes
	perm := prng.New(5).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
}

func TestNewValidatesTrees(t *testing.T) {
	for name, edges := range map[string][][2]int{
		"too few edges": {{0, 1}},
		"cycle":         {{0, 1}, {1, 2}, {2, 0}},
		"duplicate":     {{0, 1}, {0, 1}, {2, 3}},
		"out of range":  {{0, 1}, {1, 2}, {3, 9}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%s) should panic", name)
				}
			}()
			New(4, "bad", edges)
		}()
	}
}
