package ttree

import (
	"fmt"

	"pramemu/internal/topology"
)

func init() {
	topology.Register(topology.Family{
		Name:    "ttree",
		Params:  "N = symbol count n in [2,9] (default 5); K = tree shape: 0 path (bubble-sort), 1 binary, 2 star",
		Theorem: "Thm 2.2 generalized to any transposition-tree Cayley graph",
		Build: func(p topology.Params) (topology.Built, error) {
			n := topology.DefaultInt(p.N, 5)
			if n < 2 || n > 9 {
				return topology.Built{}, fmt.Errorf("ttree symbol count n must be in [2, 9], got %d", n)
			}
			switch p.K {
			case 0:
				return topology.Built{Graph: NewPath(n)}, nil
			case 1:
				return topology.Built{Graph: NewBinary(n)}, nil
			case 2:
				return topology.Built{Graph: NewStar(n)}, nil
			default:
				return topology.Built{}, fmt.Errorf("ttree shape K must be 0 (path), 1 (binary) or 2 (star), got %d", p.K)
			}
		},
	})
}
