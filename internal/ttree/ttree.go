// Package ttree implements Cayley graphs of transposition trees,
// generalizing the n-star graph to an arbitrary generator tree: fix a
// tree T on the n symbol positions; the generators are the
// transpositions (u, v) for each tree edge, so the graph has n! nodes
// of degree n-1. The star graph is the star tree centered at position
// 0; the path tree gives the bubble-sort graph. These are exactly the
// Cayley-graph networks the paper's Theorem 2.2 argument covers: the
// two-phase randomized algorithm routes any permutation in Õ(routing
// path length) on any of them.
//
// Deterministic paths follow leaf elimination: repeatedly take the
// smallest-index leaf of the remaining tree, march the symbol that
// belongs there along its tree path home, then delete the leaf. The
// remaining vertex set stays a connected subtree, so a marching
// symbol never displaces an already-placed one and the walk
// terminates within (n-1)² swaps, the bound MaxPathLen declares.
package ttree

import (
	"fmt"
	"sort"

	"pramemu/internal/mathx"
)

// Graph is a transposition-tree Cayley graph with precomputed
// adjacency, permutation and tree-routing tables. Safe for concurrent
// use after construction.
type Graph struct {
	n     int
	label string
	nodes int
	// perms[u*n+i] is the symbol at position i of node u's label.
	perms []uint8
	// invs[u*n+s] is the position of symbol s in node u's label.
	invs []uint8
	// adj[u*(n-1)+s] is the rank of u with the endpoints of tree edge
	// s transposed.
	adj []int32
	// edges is the generator list, sorted lexicographically; the slot
	// order of every node.
	edges [][2]int
	// slotOf[u*n+v] is the slot of tree edge (u, v), -1 otherwise.
	slotOf []int8
	// step[u*n+v] is the neighbor of u on the tree path to v.
	step []uint8
	// elim is the leaf-elimination order: elim[k] is the smallest-
	// index leaf of the tree with elim[0..k-1] removed.
	elim []uint8
	diam int
}

// New constructs the Cayley graph of the transposition tree with the
// given edges on positions 0..n-1. It panics unless 2 <= n <= 9 and
// the edges form a tree; the graph diameter is computed exactly by a
// breadth-first search from the identity (Cayley graphs are
// vertex-transitive).
func New(n int, label string, edges [][2]int) *Graph {
	if n < 2 || n > 9 {
		panic("ttree: n must be in [2, 9]")
	}
	if len(edges) != n-1 {
		panic(fmt.Sprintf("ttree: %d edges cannot form a tree on %d positions", len(edges), n))
	}
	g := &Graph{n: n, label: label, nodes: int(mathx.Factorial(n))}
	g.buildTree(edges)
	g.buildAdjacency()
	g.diam = g.bfsDiameter()
	return g
}

// NewPath returns the bubble-sort graph: the path tree 0-1-...-(n-1).
func NewPath(n int) *Graph {
	edges := make([][2]int, n-1)
	for i := range edges {
		edges[i] = [2]int{i, i + 1}
	}
	return New(n, "path", edges)
}

// NewStar returns the star-tree graph (isomorphic to the n-star
// graph): every position joined to position 0.
func NewStar(n int) *Graph {
	edges := make([][2]int, n-1)
	for i := range edges {
		edges[i] = [2]int{0, i + 1}
	}
	return New(n, "star", edges)
}

// NewBinary returns the complete-binary-tree graph: position i joined
// to its heap children 2i+1 and 2i+2.
func NewBinary(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n {
				edges = append(edges, [2]int{i, c})
			}
		}
	}
	return New(n, "binary", edges)
}

func (g *Graph) buildTree(edges [][2]int) {
	n := g.n
	g.edges = make([][2]int, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n || u == v {
			panic(fmt.Sprintf("ttree: edge (%d, %d) out of range", e[0], e[1]))
		}
		g.edges[i] = [2]int{u, v}
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i][0] != g.edges[j][0] {
			return g.edges[i][0] < g.edges[j][0]
		}
		return g.edges[i][1] < g.edges[j][1]
	})
	g.slotOf = make([]int8, n*n)
	for i := range g.slotOf {
		g.slotOf[i] = -1
	}
	nbrs := make([][]int, n)
	for s, e := range g.edges {
		u, v := e[0], e[1]
		if g.slotOf[u*n+v] != -1 {
			panic(fmt.Sprintf("ttree: duplicate edge (%d, %d)", u, v))
		}
		g.slotOf[u*n+v] = int8(s)
		g.slotOf[v*n+u] = int8(s)
		nbrs[u] = append(nbrs[u], v)
		nbrs[v] = append(nbrs[v], u)
	}
	// step[u][v] by BFS from every v over the tree; also validates
	// connectivity (n-1 edges + connected = tree).
	g.step = make([]uint8, n*n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		seen := make([]bool, n)
		seen[v] = true
		queue = append(queue[:0], v)
		reached := 0
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			reached++
			for _, y := range nbrs[x] {
				if !seen[y] {
					seen[y] = true
					// First hop from y toward v is x.
					g.step[y*n+v] = uint8(x)
					queue = append(queue, y)
				}
			}
		}
		if reached != n {
			panic("ttree: edges do not form a connected tree")
		}
	}
	// Leaf-elimination order: repeatedly remove the smallest-index
	// leaf, leaving the last vertex unprocessed (it is forced).
	deg := make([]int, n)
	for _, e := range g.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	removed := make([]bool, n)
	g.elim = make([]uint8, 0, n-1)
	for len(g.elim) < n-1 {
		leaf := -1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] <= 1 {
				leaf = v
				break
			}
		}
		removed[leaf] = true
		g.elim = append(g.elim, uint8(leaf))
		for _, y := range nbrs[leaf] {
			if !removed[y] {
				deg[y]--
			}
		}
		deg[leaf] = 0
	}
}

func (g *Graph) buildAdjacency() {
	n := g.n
	g.perms = make([]uint8, g.nodes*n)
	g.invs = make([]uint8, g.nodes*n)
	g.adj = make([]int32, g.nodes*(n-1))
	perm := make([]int, n)
	swapped := make([]int, n)
	for u := 0; u < g.nodes; u++ {
		mathx.PermUnrank(uint64(u), perm)
		for i, s := range perm {
			g.perms[u*n+i] = uint8(s)
			g.invs[u*n+s] = uint8(i)
		}
		for s, e := range g.edges {
			copy(swapped, perm)
			swapped[e[0]], swapped[e[1]] = swapped[e[1]], swapped[e[0]]
			g.adj[u*(n-1)+s] = int32(mathx.PermRank(swapped))
		}
	}
}

// bfsDiameter returns the eccentricity of the identity permutation,
// which equals the diameter by vertex-transitivity.
func (g *Graph) bfsDiameter() int {
	dist := make([]int32, g.nodes)
	for i := range dist {
		dist[i] = -1
	}
	id := int(mathx.PermRank(identity(g.n)))
	dist[id] = 0
	queue := []int{id}
	far := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for s := 0; s < g.n-1; s++ {
			v := int(g.adj[u*(g.n-1)+s])
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if int(dist[v]) > far {
					far = int(dist[v])
				}
				queue = append(queue, v)
			}
		}
	}
	return far
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// N returns the symbol count n.
func (g *Graph) N() int { return g.n }

// Name implements topology.Graph.
func (g *Graph) Name() string { return fmt.Sprintf("ttree(%s,n=%d)", g.label, g.n) }

// Nodes implements topology.Graph: n! nodes.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements topology.Graph: one generator per tree edge.
func (g *Graph) Degree(node int) int { return g.n - 1 }

// Neighbor implements topology.Graph: apply the transposition of tree
// edge slot.
func (g *Graph) Neighbor(node, slot int) int {
	return int(g.adj[node*(g.n-1)+slot])
}

// Diameter implements topology.Graph (exact, BFS-computed at
// construction).
func (g *Graph) Diameter() int { return g.diam }

// MaxPathLen implements topology.PathBounded: leaf elimination
// marches at most n-1 symbols along tree paths of at most n-1 edges.
func (g *Graph) MaxPathLen() int { return (g.n - 1) * (g.n - 1) }

// NextHop implements topology.Graph with leaf elimination on the
// relative permutation: the first still-unplaced home (in elimination
// order) determines the marching symbol, and the swap is the first
// tree edge on its path home. Earlier-eliminated vertices already
// hold their symbols and the path never crosses them, so placements
// are permanent.
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	if node == dst {
		return 0, true
	}
	n := g.n
	cur := g.perms[node*n : node*n+n]
	wantInv := g.invs[dst*n : dst*n+n]
	// posOf[h] = current position of the symbol whose home is h.
	var posOf [16]uint8
	for i := 0; i < n; i++ {
		posOf[wantInv[cur[i]]] = uint8(i)
	}
	for _, e := range g.elim {
		home := int(e)
		pos := int(posOf[home])
		if pos == home {
			continue
		}
		next := int(g.step[pos*n+home])
		return int(g.slotOf[pos*n+next]), false
	}
	panic("ttree: NextHop found no misplaced symbol with node != dst")
}

// Distance returns the length of the leaf-elimination path from u to
// v (an upper bound on the true Cayley distance).
func (g *Graph) Distance(u, v int) int {
	d := 0
	for u != v {
		slot, done := g.NextHop(u, v, d)
		if done {
			break
		}
		u = g.Neighbor(u, slot)
		d++
		if d > g.MaxPathLen() {
			panic("ttree: leaf elimination exceeded its (n-1)² bound")
		}
	}
	return d
}
