// Package sweepd is the sweep pipeline as a fault-tolerant service:
// a persistent HTTP/JSON daemon wrapping scenario.RunJournaled. Jobs
// are content-addressed — the job ID is the canonical spec hash, so a
// duplicate POST of an identical spec is served from the cache (the
// finished artifact on disk) without re-running — and crash-safe: the
// journaled runner checkpoints every completed cell, graceful
// shutdown cancels running jobs mid-round, and a restarted daemon
// finds their spec files and journals in DataDir and resumes them to
// byte-identical artifacts. The job queue is bounded; a full queue
// sheds load with 429 + Retry-After rather than growing without
// bound.
//
// The API:
//
//	POST /sweeps              submit a spec (JSON body) → job status
//	GET  /sweeps/{id}         job status
//	GET  /sweeps/{id}/artifact  the finished JSONL artifact
//	GET  /sweeps/{id}/diff?against={id}  byte-compare two finished artifacts
//	POST /sweeps/{id}/cancel  cancel a queued or running job
//	GET  /healthz             liveness + queue occupancy + build-cache stats
package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pramemu/internal/buildcache"
	"pramemu/internal/scenario"
)

// Config tunes the daemon.
type Config struct {
	// DataDir persists specs, journals and artifacts; it is the
	// daemon's entire durable state. Required.
	DataDir string
	// QueueDepth bounds the jobs waiting to run; submissions beyond
	// it get 429 + Retry-After (default 16).
	QueueDepth int
	// Workers is the number of jobs priced concurrently (default 1 —
	// each sweep already runs its grid over its own Spec.Pool).
	Workers int
	// JobTimeout caps one job's wall clock, checkpointing what
	// completed (0 = none).
	JobTimeout time.Duration
	// Retries re-runs transiently failed cells (timeouts) with
	// exponential backoff before a job's artifact finalizes.
	Retries int
	// RetryBackoff is the first retry delay, doubling per pass
	// (default 100ms).
	RetryBackoff time.Duration
	// BuildCacheBudget sizes the server's topology build cache in
	// bytes: successive jobs over the same families adopt one cached
	// build instead of re-constructing it (artifact bytes are
	// unaffected). 0 selects the buildcache default (256 MiB);
	// negative disables caching.
	BuildCacheBudget int64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.BuildCacheBudget == 0 {
		c.BuildCacheBudget = buildcache.DefaultBudget
	}
	return c
}

// The job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Status is the job-status JSON of the API.
type Status struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// Cached marks a submission answered from the content-addressed
	// cache — the spec hash already had a finished artifact.
	Cached bool `json:"cached,omitempty"`
	// Cells and Errors mirror the artifact trailer once done.
	Cells  int    `json:"cells,omitempty"`
	Errors int    `json:"errors,omitempty"`
	Error  string `json:"error,omitempty"`
}

// job is the in-memory record; all fields are guarded by Server.mu.
type job struct {
	id         string
	name       string
	spec       scenario.Spec
	state      string
	cells      int
	failures   int
	errMsg     string
	userCancel bool
	cancel     context.CancelFunc
}

// Server is the daemon: an http.Handler plus the worker pool behind
// it. Create with New, serve it, and Close it on shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *job
	// cache is the server-wide topology build cache: one per Server,
	// shared by every worker, so a farm of repeated sweeps over the
	// same families builds each topology once.
	cache *buildcache.Cache

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job
}

// New builds a Server over DataDir, re-registering finished jobs from
// their artifacts and re-enqueueing interrupted ones (spec file
// present, artifact absent) so a restart resumes where the previous
// daemon was killed.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("sweepd: Config.DataDir is required")
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	pending, done, err := scanDataDir(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg: cfg,
		// The queue is sized for the configured depth plus every job
		// recovered from disk: recovered work must never be shed.
		queue:   make(chan *job, cfg.QueueDepth+len(pending)),
		cache:   buildcache.New(cfg.BuildCacheBudget),
		baseCtx: ctx,
		stop:    stop,
		jobs:    make(map[string]*job),
	}
	for _, j := range done {
		s.jobs[j.id] = j
	}
	for _, j := range pending {
		s.jobs[j.id] = j
		s.queue <- j
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/artifact", s.handleArtifact)
	s.mux.HandleFunc("GET /sweeps/{id}/diff", s.handleDiff)
	s.mux.HandleFunc("POST /sweeps/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close checkpoints and stops the daemon: running jobs are canceled
// (their journals keep every completed cell), queued jobs stay queued
// on disk, and the workers are waited out. A daemon restarted over
// the same DataDir resumes all of them.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// scanDataDir recovers the durable state: finished jobs from their
// artifacts (trailer counts included), interrupted ones from their
// spec files.
func scanDataDir(dir string) (pending, done []*job, err error) {
	specs, err := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("sweepd: scanning %s: %w", dir, err)
	}
	sort.Strings(specs)
	for _, path := range specs {
		id := strings.TrimSuffix(filepath.Base(path), ".spec.json")
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("sweepd: %w", err)
		}
		spec, err := scenario.ReadSpec(f)
		f.Close()
		if err != nil {
			// An unreadable spec cannot be resumed; leave the file for
			// the operator, skip the job.
			continue
		}
		j := &job{id: id, name: spec.Name, spec: spec}
		if t, err := readTrailer(artifactPath(dir, id)); err == nil {
			j.state, j.cells, j.failures = StateDone, t.Cells, t.Errors
			done = append(done, j)
			continue
		}
		j.state = StateQueued
		pending = append(pending, j)
	}
	return pending, done, nil
}

func artifactPath(dir, id string) string { return filepath.Join(dir, id+".jsonl") }
func specPath(dir, id string) string     { return filepath.Join(dir, id+".spec.json") }

// readTrailer opens a finished artifact and verifies its trailer.
func readTrailer(path string) (scenario.Trailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return scenario.Trailer{}, err
	}
	defer f.Close()
	return scenario.VerifyTrailer(f)
}

// worker prices queued jobs until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job through the journaled runner and settles
// its state: done (artifact published, cell failures included),
// canceled (user), queued again (daemon shutdown — checkpointed for
// the next daemon), or failed.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued {
		s.mu.Unlock()
		return // canceled while waiting
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.state, j.cancel = StateRunning, cancel
	s.mu.Unlock()
	defer cancel()
	runCtx := ctx
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	results, err := scenario.RunJournaled(runCtx, j.spec, artifactPath(s.cfg.DataDir, j.id), scenario.JournalOptions{
		Retries: s.cfg.Retries,
		Backoff: s.cfg.RetryBackoff,
		Cache:   s.cache,
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	var agg *scenario.AggregateError
	switch {
	case err == nil:
		j.state, j.cells = StateDone, len(results)
	case errors.As(err, &agg):
		// The artifact finalized with error lines: the job is done,
		// the failures are on record in it and in the status.
		j.state, j.cells, j.failures = StateDone, len(results), agg.Failed
		j.errMsg = err.Error()
	case s.baseCtx.Err() != nil:
		// Daemon shutdown: back to queued. The spec file and journal
		// on disk are the checkpoint a restarted daemon resumes.
		j.state = StateQueued
	case j.userCancel:
		j.state, j.errMsg = StateCanceled, "canceled by request"
		// A canceled job must not resurrect on restart; resubmitting
		// the same spec still resumes its journal.
		os.Remove(specPath(s.cfg.DataDir, j.id))
	default:
		j.state, j.errMsg = StateFailed, err.Error()
		// Failed jobs do not auto-rerun on restart either, but the
		// journal keeps completed cells for a future resubmission.
		os.Remove(specPath(s.cfg.DataDir, j.id))
	}
}

// status snapshots a job under the lock.
func (s *Server) status(j *job, cached bool) Status {
	return Status{
		ID:     j.id,
		Name:   j.name,
		State:  j.state,
		Cached: cached,
		Cells:  j.cells,
		Errors: j.failures,
		Error:  j.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// handleSubmit is POST /sweeps: parse the spec, content-address it,
// answer duplicates from the cache, shed load when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := scenario.ReadSpec(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	id, err := scenario.SpecHash(spec)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.state != StateCanceled && j.state != StateFailed {
		// Same spec hash: the existing job answers. A finished one is
		// the content-addressed cache hit — no cell re-runs.
		writeJSON(w, http.StatusOK, s.status(j, j.state == StateDone))
		return
	}
	// New spec, or a resubmission reviving a canceled/failed job —
	// its journal, if any survived, still shortcuts the re-run.
	j := &job{id: id, name: spec.Name, spec: spec, state: StateQueued}
	select {
	case s.queue <- j:
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{
			fmt.Sprintf("job queue full (%d queued); retry later", cap(s.queue)),
		})
		return
	}
	// The spec file persists the submission so a killed daemon can
	// resume it; written after the queue admits the job, so shed
	// submissions leave no state.
	if err := writeSpecFile(specPath(s.cfg.DataDir, id), spec); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	s.jobs[id] = j
	writeJSON(w, http.StatusAccepted, s.status(j, false))
}

// writeSpecFile persists a submitted spec atomically.
func writeSpecFile(path string, spec scenario.Spec) error {
	b, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("sweepd: encoding spec: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweepd: persisting spec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweepd: persisting spec: %w", err)
	}
	return nil
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
	}
	return j
}

// handleStatus is GET /sweeps/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := s.status(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleArtifact is GET /sweeps/{id}/artifact: stream the finished
// JSONL. The file exists only after the atomic rename, so a 200 body
// is always a complete, trailer-closed artifact.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, apiError{fmt.Sprintf("job is %s; artifact available when done", state)})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	http.ServeFile(w, r, artifactPath(s.cfg.DataDir, j.id))
}

// diffStatus is the JSON answer of GET /sweeps/{id}/diff.
type diffStatus struct {
	A         string `json:"a"`
	B         string `json:"b"`
	Identical bool   `json:"identical"`
	// Detail names the first drifting line when the artifacts differ.
	Detail string `json:"detail,omitempty"`
}

// handleDiff is GET /sweeps/{id}/diff?against={id}: compare two
// finished, trailer-verified artifacts byte for byte server-side —
// the warm-farm reproducibility check without shipping either
// artifact over the wire. Unknown jobs 404, unfinished ones 409, and
// a drift answers 200 with identical=false plus the first differing
// line (drift is a finding, not a transport error).
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	against := r.URL.Query().Get("against")
	if against == "" {
		writeJSON(w, http.StatusBadRequest, apiError{"missing ?against=<job id>"})
		return
	}
	s.mu.Lock()
	k := s.jobs[against]
	var states [2]string
	if k != nil {
		states = [2]string{j.state, k.state}
	}
	s.mu.Unlock()
	if k == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	for i, id := range []string{j.id, k.id} {
		if states[i] != StateDone {
			writeJSON(w, http.StatusConflict, apiError{fmt.Sprintf("job %s is %s; diff available when done", id, states[i])})
			return
		}
	}
	a, err := os.ReadFile(artifactPath(s.cfg.DataDir, j.id))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	b, err := os.ReadFile(artifactPath(s.cfg.DataDir, k.id))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	detail, same, err := scenario.DiffArtifacts(j.id, a, k.id, b)
	if err != nil {
		// A stored artifact failing trailer verification is server-side
		// corruption, not a client mistake.
		writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, diffStatus{A: j.id, B: k.id, Identical: same, Detail: detail})
}

// handleCancel is POST /sweeps/{id}/cancel: a queued job is dropped,
// a running one aborted within a round.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state, j.errMsg = StateCanceled, "canceled by request"
		os.Remove(specPath(s.cfg.DataDir, j.id))
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := s.status(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// healthz is the liveness probe, reporting queue occupancy so load
// shedding is observable before it bites.
type healthz struct {
	Status     string `json:"status"`
	Queued     int    `json:"queued"`
	QueueDepth int    `json:"queue_depth"`
	Jobs       int    `json:"jobs"`
	// BuildCache reports the server's topology build cache: hit/miss/
	// eviction counters, resident entries and bytes, and cumulative
	// build time — how much construction work the warm farm is saving.
	BuildCache buildcache.Stats `json:"build_cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, healthz{
		Status:     "ok",
		Queued:     len(s.queue),
		QueueDepth: cap(s.queue),
		Jobs:       n,
		BuildCache: s.cache.Stats(),
	})
}
