package sweepd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pramemu/internal/buildcache"
)

func diffReq(t *testing.T, s *Server, id, against string, wantCode int) diffStatus {
	t.Helper()
	w := do(t, s, http.MethodGet, "/sweeps/"+id+"/diff?against="+against, nil)
	if w.Code != wantCode {
		t.Fatalf("GET diff: want %d, got %d: %s", wantCode, w.Code, w.Body)
	}
	var d diffStatus
	if wantCode == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
			t.Fatalf("diff JSON: %v\n%s", err, w.Body)
		}
	}
	return d
}

// TestSweepdDiffEndpoint covers the artifact-diff API: a job diffed
// against itself is identical, two jobs from different seeds report
// the drifting line (drift is a finding — 200, not an error), and the
// error statuses are 400 for a missing ?against, 404 for unknown jobs
// on either side, 409 while either job is still running.
func TestSweepdDiffEndpoint(t *testing.T) {
	s := newServer(t, Config{})
	a := submit(t, s, fastSpec(7), http.StatusAccepted)
	waitState(t, s, a.ID, StateDone)
	b := submit(t, s, fastSpec(8), http.StatusAccepted)
	waitState(t, s, b.ID, StateDone)

	same := diffReq(t, s, a.ID, a.ID, http.StatusOK)
	if !same.Identical {
		t.Errorf("job diffed against itself: identical = false, detail %q", same.Detail)
	}

	drift := diffReq(t, s, a.ID, b.ID, http.StatusOK)
	if drift.Identical {
		t.Error("different seeds reported identical artifacts")
	}
	if !strings.Contains(drift.Detail, "line") {
		t.Errorf("drift detail %q does not locate the drifting line", drift.Detail)
	}
	if drift.A != a.ID || drift.B != b.ID {
		t.Errorf("diff names jobs %q/%q, want %q/%q", drift.A, drift.B, a.ID, b.ID)
	}

	if w := do(t, s, http.MethodGet, "/sweeps/"+a.ID+"/diff", nil); w.Code != http.StatusBadRequest {
		t.Errorf("diff without ?against: %d, want 400", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/sweeps/nope/diff?against="+a.ID, nil); w.Code != http.StatusNotFound {
		t.Errorf("diff of unknown job: %d, want 404", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/sweeps/"+a.ID+"/diff?against=nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("diff against unknown job: %d, want 404", w.Code)
	}

	running := submit(t, s, slowSpec(9, 3), http.StatusAccepted)
	waitState(t, s, running.ID, StateRunning)
	w := do(t, s, http.MethodGet, "/sweeps/"+a.ID+"/diff?against="+running.ID, nil)
	if w.Code != http.StatusConflict {
		t.Errorf("diff against a running job: %d, want 409: %s", w.Code, w.Body)
	}
	do(t, s, http.MethodPost, "/sweeps/"+running.ID+"/cancel", nil)
}

// TestSweepdBuildCacheAcrossJobs: the server's cache is shared by all
// jobs, so a second job naming the same topology adopts the first
// job's build — observable as hits on /healthz's build_cache block.
func TestSweepdBuildCacheAcrossJobs(t *testing.T) {
	s := newServer(t, Config{})
	a := submit(t, s, fastSpec(7), http.StatusAccepted)
	waitState(t, s, a.ID, StateDone)
	b := submit(t, s, fastSpec(8), http.StatusAccepted)
	waitState(t, s, b.ID, StateDone)

	w := do(t, s, http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", w.Code)
	}
	var h struct {
		BuildCache buildcache.Stats `json:"build_cache"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, w.Body)
	}
	if h.BuildCache.Misses < 1 {
		t.Errorf("build_cache.misses = %d, want >= 1", h.BuildCache.Misses)
	}
	if h.BuildCache.Hits < 1 {
		t.Errorf("build_cache.hits = %d, want >= 1 (second job shares the first's build)", h.BuildCache.Hits)
	}
}
