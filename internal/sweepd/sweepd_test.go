// The daemon's fault-tolerance contract, end to end over its HTTP
// surface: duplicate submissions answer from the content-addressed
// cache, a full queue sheds load with 429 + Retry-After, cancellation
// stops a running job within a round, a poisoned cell costs one error
// line (the job still finishes), and a daemon killed mid-sweep resumes
// over the same data directory to a byte-identical artifact.
// TestSweepd* names ride CI's TestSweep race pattern.
package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pramemu/internal/packet"
	"pramemu/internal/scenario"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// Test-only generators: boom panics inside its cell, test-sleepy
// stalls before handing over a real permutation — so running jobs can
// be canceled or checkpointed mid-sweep deterministically.
func init() {
	perm, ok := workload.Lookup("perm")
	if !ok {
		panic("sweepd_test: perm workload missing")
	}
	workload.Register(workload.Generator{
		Name:  "boom",
		Class: workload.ClassPermutation,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			panic("poisoned cell")
		},
	})
	workload.Register(workload.Generator{
		Name:  "test-sleepy",
		Class: workload.ClassPermutation,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			time.Sleep(100 * time.Millisecond)
			return perm.Generate(b, p, a, seed)
		},
	})
}

// fastSpec is a one-cell sweep that completes in milliseconds.
func fastSpec(seed uint64) scenario.Spec {
	return scenario.Spec{
		Name:       "fast",
		Topologies: []scenario.TopoRef{{Family: "star", N: 4}},
		Workloads:  []scenario.WorkRef{{Name: "perm"}},
		Trials:     1,
		Seed:       seed,
		Pool:       1,
	}
}

// slowSpec stalls ~100ms per cell, long enough to observe and
// interrupt a running job.
func slowSpec(seed uint64, cells int) scenario.Spec {
	topos := []scenario.TopoRef{{Family: "star", N: 4}, {Family: "mesh", N: 4}, {Family: "torus", N: 4, K: 2}}
	return scenario.Spec{
		Name:       "slow",
		Topologies: topos[:cells],
		Workloads:  []scenario.WorkRef{{Name: "test-sleepy"}},
		Trials:     1,
		Seed:       seed,
		Pool:       1,
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func do(t *testing.T, s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func submit(t *testing.T, s *Server, spec scenario.Spec, wantCode int) Status {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/sweeps", b)
	if w.Code != wantCode {
		t.Fatalf("POST /sweeps: want %d, got %d: %s", wantCode, w.Code, w.Body)
	}
	var st Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("POST /sweeps: bad status JSON: %v\n%s", err, w.Body)
	}
	return st
}

// waitState polls GET /sweeps/{id} until the job reaches the wanted
// state.
func waitState(t *testing.T, s *Server, id, want string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w := do(t, s, http.MethodGet, "/sweeps/"+id, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /sweeps/%s: %d: %s", id, w.Code, w.Body)
		}
		var st Status
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func artifact(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	w := do(t, s, http.MethodGet, "/sweeps/"+id+"/artifact", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET artifact: %d: %s", w.Code, w.Body)
	}
	return w.Body.Bytes()
}

// TestSweepdSubmitPollFetch is the happy path: submit, poll to done,
// fetch a trailer-closed artifact; unknown jobs 404, an unfinished
// artifact 409s, and healthz reports the queue.
func TestSweepdSubmitPollFetch(t *testing.T) {
	s := newServer(t, Config{})
	st := submit(t, s, fastSpec(7), http.StatusAccepted)
	if st.ID == "" || st.Cached {
		t.Fatalf("fresh submission: %+v", st)
	}
	done := waitState(t, s, st.ID, StateDone)
	if done.Cells != 1 || done.Errors != 0 {
		t.Fatalf("want 1 clean cell, got %+v", done)
	}
	data := artifact(t, s, st.ID)
	tr, err := scenario.VerifyTrailer(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("served artifact fails the trailer check: %v", err)
	}
	if tr.Cells != 1 {
		t.Fatalf("trailer: %+v", tr)
	}
	if w := do(t, s, http.MethodGet, "/sweeps/nope", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: want 404, got %d", w.Code)
	}
	if w := do(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d: %s", w.Code, w.Body)
	}
	if w := do(t, s, http.MethodPost, "/sweeps", []byte("not json")); w.Code != http.StatusBadRequest {
		t.Fatalf("garbage spec: want 400, got %d", w.Code)
	}
}

// TestSweepdDuplicateServedFromCache pins content addressing: the
// same spec POSTed again answers 200 from the cache with the same job
// ID and no re-run; a different seed is a different job.
func TestSweepdDuplicateServedFromCache(t *testing.T) {
	s := newServer(t, Config{})
	st := submit(t, s, fastSpec(7), http.StatusAccepted)
	waitState(t, s, st.ID, StateDone)
	first := artifact(t, s, st.ID)

	dup := submit(t, s, fastSpec(7), http.StatusOK)
	if dup.ID != st.ID || !dup.Cached || dup.State != StateDone {
		t.Fatalf("duplicate submission not served from cache: %+v", dup)
	}
	if !bytes.Equal(artifact(t, s, st.ID), first) {
		t.Fatal("cached artifact drifted")
	}
	other := submit(t, s, fastSpec(8), http.StatusAccepted)
	if other.ID == st.ID {
		t.Fatal("different seed hashed to the same job")
	}
}

// TestSweepdQueueFullSheds pins load shedding: with a depth-1 queue
// and the only worker busy, the third submission gets 429 with a
// Retry-After hint — and succeeds once the queue drains.
func TestSweepdQueueFullSheds(t *testing.T) {
	s := newServer(t, Config{QueueDepth: 1, Workers: 1})
	running := submit(t, s, slowSpec(1, 2), http.StatusAccepted)
	waitState(t, s, running.ID, StateRunning)
	queued := submit(t, s, slowSpec(2, 2), http.StatusAccepted)

	b, err := json.Marshal(slowSpec(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, http.MethodPost, "/sweeps", b)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: want 429, got %d: %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	// A shed submission leaves no durable state: once the queue
	// drains, the same spec is accepted.
	waitState(t, s, queued.ID, StateDone)
	shed := submit(t, s, slowSpec(3, 2), http.StatusAccepted)
	waitState(t, s, shed.ID, StateDone)
}

// TestSweepdCancelMidRun pins cancellation: a running job stops
// within a round, settles as canceled, serves no artifact — and a
// resubmission revives it.
func TestSweepdCancelMidRun(t *testing.T) {
	s := newServer(t, Config{})
	st := submit(t, s, slowSpec(4, 2), http.StatusAccepted)
	waitState(t, s, st.ID, StateRunning)
	if w := do(t, s, http.MethodPost, "/sweeps/"+st.ID+"/cancel", nil); w.Code != http.StatusOK {
		t.Fatalf("cancel: %d: %s", w.Code, w.Body)
	}
	got := waitState(t, s, st.ID, StateCanceled)
	if got.Error == "" {
		t.Fatalf("canceled job carries no reason: %+v", got)
	}
	if w := do(t, s, http.MethodGet, "/sweeps/"+st.ID+"/artifact", nil); w.Code != http.StatusConflict {
		t.Fatalf("canceled artifact: want 409, got %d", w.Code)
	}
	revived := submit(t, s, slowSpec(4, 2), http.StatusAccepted)
	if revived.ID != st.ID {
		t.Fatalf("revival changed the job ID: %s vs %s", revived.ID, st.ID)
	}
	waitState(t, s, st.ID, StateDone)
}

// TestSweepdPoisonedCellIsolated pins panic isolation through the
// daemon: a job with a panicking cell still finishes done, the error
// count lands in the status and the trailer, and every healthy cell's
// line is in the artifact.
func TestSweepdPoisonedCellIsolated(t *testing.T) {
	s := newServer(t, Config{})
	spec := fastSpec(7)
	spec.Workloads = []scenario.WorkRef{{Name: "boom"}, {Name: "perm"}}
	st := submit(t, s, spec, http.StatusAccepted)
	done := waitState(t, s, st.ID, StateDone)
	if done.Cells != 2 || done.Errors != 1 {
		t.Fatalf("want 2 cells with 1 error, got %+v", done)
	}
	data := artifact(t, s, st.ID)
	tr, err := scenario.VerifyTrailer(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cells != 2 || tr.Errors != 1 {
		t.Fatalf("trailer: %+v", tr)
	}
	if !strings.Contains(string(data), `"error_kind":"panic"`) || !strings.Contains(string(data), `"rounds_mean"`) {
		t.Fatalf("artifact missing the error line or the healthy line:\n%s", data)
	}
}

// TestSweepdInvalidSpecFails pins the failed path: a spec that
// expands to no runnable grid settles as failed with the field named,
// and a resubmission is accepted (failed jobs do not poison their
// hash).
func TestSweepdInvalidSpecFails(t *testing.T) {
	s := newServer(t, Config{})
	spec := fastSpec(7)
	spec.Workloads = []scenario.WorkRef{{Name: "nope"}}
	st := submit(t, s, spec, http.StatusAccepted)
	failed := waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(failed.Error, "workloads") {
		t.Fatalf("failure does not name the spec field: %+v", failed)
	}
	resub := submit(t, s, spec, http.StatusAccepted)
	if resub.ID != st.ID {
		t.Fatal("resubmission changed the job ID")
	}
	waitState(t, s, st.ID, StateFailed)
}

// TestSweepdCheckpointResume is the kill-and-restart acceptance
// property: a daemon closed mid-sweep leaves its checkpoint (spec
// file + journal) in DataDir, and a new daemon over the same
// directory resumes the job to an artifact byte-identical to an
// uninterrupted run's.
func TestSweepdCheckpointResume(t *testing.T) {
	// The reference: the same spec run to completion uninterrupted.
	ref := newServer(t, Config{})
	spec := slowSpec(5, 3)
	st := submit(t, ref, spec, http.StatusAccepted)
	waitState(t, ref, st.ID, StateDone)
	want := artifact(t, ref, st.ID)

	// The interrupted run: close the daemon while the job is mid-cell.
	dir := t.TempDir()
	first, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := submit(t, first, spec, http.StatusAccepted)
	if got.ID != st.ID {
		t.Fatalf("spec hashed differently across daemons: %s vs %s", got.ID, st.ID)
	}
	waitState(t, first, st.ID, StateRunning)
	time.Sleep(120 * time.Millisecond) // let at least one cell land in the journal
	first.Close()

	// The restarted daemon finds the spec file without an artifact and
	// resumes it.
	second, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	done := waitState(t, second, st.ID, StateDone)
	if done.Cells != 3 || done.Errors != 0 {
		t.Fatalf("resumed job: %+v", done)
	}
	if resumed := artifact(t, second, st.ID); !bytes.Equal(resumed, want) {
		t.Fatalf("resumed artifact drifted from the uninterrupted run:\n--- want\n%s--- got\n%s", want, resumed)
	}

	// A third daemon over the same directory serves the finished job
	// from its artifact without re-running anything.
	third, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	cached := submit(t, third, spec, http.StatusOK)
	if !cached.Cached || cached.State != StateDone {
		t.Fatalf("restarted daemon lost the artifact cache: %+v", cached)
	}
}

// TestSweepdConcurrentSubmissions hammers the daemon from many
// goroutines under the race detector: distinct specs all complete,
// duplicates collapse onto one job each, and every response is one of
// the documented codes.
func TestSweepdConcurrentSubmissions(t *testing.T) {
	s := newServer(t, Config{Workers: 2, QueueDepth: 32})
	const clients = 8
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Four distinct specs, each submitted twice.
			spec := fastSpec(uint64(100 + i%4))
			b, err := json.Marshal(spec)
			if err != nil {
				t.Error(err)
				return
			}
			w := do(t, s, http.MethodPost, "/sweeps", b)
			if w.Code != http.StatusAccepted && w.Code != http.StatusOK {
				t.Errorf("POST: unexpected %d: %s", w.Code, w.Body)
				return
			}
			var st Status
			if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	unique := make(map[string]bool)
	for i, id := range ids {
		unique[id] = true
		if id != ids[i%4] {
			t.Fatalf("duplicate spec %d mapped to a different job", i)
		}
	}
	if len(unique) != 4 {
		t.Fatalf("want 4 distinct jobs, got %d", len(unique))
	}
	for id := range unique {
		waitState(t, s, id, StateDone)
		if _, err := scenario.VerifyTrailer(bytes.NewReader(artifact(t, s, id))); err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
	}
	w := do(t, s, http.MethodGet, "/healthz", nil)
	var h struct {
		Jobs int `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Jobs != 4 {
		t.Fatalf("healthz: want 4 jobs, got %s", w.Body)
	}
}

// TestSweepdConfigValidation pins the constructor contract.
func TestSweepdConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil || !strings.Contains(err.Error(), "DataDir") {
		t.Fatalf("want a DataDir error, got %v", err)
	}
	cfg := Config{}.withDefaults()
	if cfg.QueueDepth != 16 || cfg.Workers != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

// TestSweepdCancelQueued pins cancellation of a job that never
// started: it settles immediately and its spec file is gone, so a
// restart does not resurrect it.
func TestSweepdCancelQueued(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, Config{DataDir: dir, Workers: 1, QueueDepth: 4})
	running := submit(t, s, slowSpec(6, 2), http.StatusAccepted)
	waitState(t, s, running.ID, StateRunning)
	queued := submit(t, s, fastSpec(42), http.StatusAccepted)
	if w := do(t, s, http.MethodPost, fmt.Sprintf("/sweeps/%s/cancel", queued.ID), nil); w.Code != http.StatusOK {
		t.Fatalf("cancel queued: %d", w.Code)
	}
	got := waitState(t, s, queued.ID, StateCanceled)
	if got.State != StateCanceled {
		t.Fatalf("queued job not canceled: %+v", got)
	}
	waitState(t, s, running.ID, StateDone)
}
