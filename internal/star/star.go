// Package star implements the n-star graph of §2.3.4 — the flagship
// sub-logarithmic-diameter network of the paper. An n-star has n!
// nodes, one per permutation of n symbols; node u is adjacent to
// SWAPj(u) for 2 <= j <= n, where SWAPj exchanges the first and j-th
// symbols. Degree n-1 and diameter ⌊3(n-1)/2⌋ both grow sub-
// logarithmically in the network size n!.
//
// The package provides the physical topology (a simnet.Topology, with
// the greedy cycle-fixing shortest-path rule used for the unique
// deterministic paths of Algorithm 2.2) and the logical leveled-
// network unrolling of Figure 3 (a leveled.Spec whose levels apply
// one greedy move each, padded with self-links once a packet has
// arrived).
package star

import (
	"fmt"

	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
)

// Graph is an n-star graph with precomputed adjacency, permutation
// and inverse-permutation tables, so routing decisions are O(n) with
// no allocation. Safe for concurrent use after construction.
type Graph struct {
	n     int
	nodes int
	// perms[u] holds the permutation of node u, n bytes per node.
	perms []uint8
	// invs[u] holds the inverse permutation: invs[u][s] = position of
	// symbol s in node u's label.
	invs []uint8
	// adj[u*(n-1)+j-1] = rank of SWAP_{j+1}(u) for slot j in [0, n-2].
	adj []int32
}

// New constructs the n-star graph. It panics unless 2 <= n <= 10
// (10! = 3.6M nodes is the largest practical simulation size).
func New(n int) *Graph {
	if n < 2 || n > 10 {
		panic("star: n must be in [2, 10]")
	}
	nodes := int(mathx.Factorial(n))
	g := &Graph{
		n:     n,
		nodes: nodes,
		perms: make([]uint8, nodes*n),
		invs:  make([]uint8, nodes*n),
		adj:   make([]int32, nodes*(n-1)),
	}
	perm := make([]int, n)
	swapped := make([]int, n)
	for u := 0; u < nodes; u++ {
		mathx.PermUnrank(uint64(u), perm)
		for i, s := range perm {
			g.perms[u*n+i] = uint8(s)
			g.invs[u*n+s] = uint8(i)
		}
		for j := 1; j < n; j++ {
			copy(swapped, perm)
			swapped[0], swapped[j] = swapped[j], swapped[0]
			g.adj[u*(n-1)+j-1] = int32(mathx.PermRank(swapped))
		}
	}
	return g
}

// N returns the symbol count n.
func (g *Graph) N() int { return g.n }

// Name implements simnet.Topology.
func (g *Graph) Name() string { return fmt.Sprintf("star(n=%d)", g.n) }

// Nodes implements simnet.Topology: n! nodes.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements simnet.Topology: every node has n-1 neighbors.
func (g *Graph) Degree(node int) int { return g.n - 1 }

// Neighbor implements simnet.Topology: slot j yields SWAP_{j+2}...
// i.e. slot 0 swaps positions 0 and 1, slot n-2 swaps 0 and n-1.
func (g *Graph) Neighbor(node, slot int) int {
	return int(g.adj[node*(g.n-1)+slot])
}

// Diameter implements simnet.Topology: ⌊3(n-1)/2⌋ (Akers, Harel and
// Krishnamurthy).
func (g *Graph) Diameter() int { return 3 * (g.n - 1) / 2 }

// Perm writes node's permutation label into out (len >= n).
func (g *Graph) Perm(node int, out []int) {
	for i := 0; i < g.n; i++ {
		out[i] = int(g.perms[node*g.n+i])
	}
}

// NextHop implements simnet.Topology with the greedy cycle-fixing
// rule: if the front symbol is not at its target position, send it
// home (one swap); otherwise bring the lowest-indexed misplaced
// symbol to the front. This realizes the optimal routing distance
// c + m of the star graph literature and defines the unique
// deterministic paths that Algorithm 2.2's phases follow.
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	if node == dst {
		return 0, true
	}
	j := g.nextSwap(node, dst)
	return j - 1, false
}

// nextSwap returns the position (1-based, i.e. SWAP_{j+1} in the
// paper's 1-indexed notation) to exchange with the front. node != dst.
func (g *Graph) nextSwap(node, dst int) int {
	n := g.n
	cur := g.perms[node*n : node*n+n]
	want := g.perms[dst*n : dst*n+n]
	front := cur[0]
	home := int(g.invs[dst*n+int(front)])
	if home != 0 {
		return home
	}
	// Front symbol is already home; unlock the next unfinished cycle.
	for j := 1; j < n; j++ {
		if cur[j] != want[j] {
			return j
		}
	}
	panic("star: nextSwap called with node == dst")
}

// Distance returns the length of the greedy path from u to v, which
// equals the star-graph distance m + c (misplaced symbols plus
// unfinished cycles, adjusted for the front position).
func (g *Graph) Distance(u, v int) int {
	d := 0
	for u != v {
		j := g.nextSwap(u, v)
		u = g.Neighbor(u, j-1)
		d++
		if d > 2*g.n {
			panic("star: greedy routing failed to terminate")
		}
	}
	return d
}

// AsLeveled returns the logical leveled-network view of Figure 3:
// 2n-1 columns of n! nodes; each level applies one star move (slots
// 0..n-2) or stays in place (slot n-1), and the unique path applies
// the greedy rule then pads with stays. 2(n-1) edge-levels dominate
// the diameter ⌊3(n-1)/2⌋, so every greedy path fits.
func (g *Graph) AsLeveled() leveled.Spec { return &leveledStar{g} }

type leveledStar struct{ g *Graph }

func (s *leveledStar) Name() string                  { return fmt.Sprintf("star-leveled(n=%d)", s.g.n) }
func (s *leveledStar) Levels() int                   { return 2*s.g.n - 1 }
func (s *leveledStar) Width() int                    { return s.g.nodes }
func (s *leveledStar) Degree() int                   { return s.g.n }
func (s *leveledStar) OutDegree(level, node int) int { return s.g.n }

func (s *leveledStar) Out(level, node, slot int) int {
	if slot == s.g.n-1 {
		return node // the padding self-link
	}
	return s.g.Neighbor(node, slot)
}

func (s *leveledStar) NextHop(level, node, dst int) int {
	if node == dst {
		return s.g.n - 1 // arrived: stay
	}
	return s.g.nextSwap(node, dst) - 1
}
