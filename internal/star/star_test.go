package star

import (
	"testing"

	"pramemu/internal/mathx"
	"pramemu/internal/prng"
)

func TestDimensions(t *testing.T) {
	for n := 2; n <= 7; n++ {
		g := New(n)
		if g.Nodes() != int(mathx.Factorial(n)) {
			t.Fatalf("n=%d: %d nodes", n, g.Nodes())
		}
		if g.Degree(0) != n-1 {
			t.Fatalf("n=%d: degree %d", n, g.Degree(0))
		}
		if g.Diameter() != 3*(n-1)/2 {
			t.Fatalf("n=%d: diameter %d", n, g.Diameter())
		}
		if g.N() != n {
			t.Fatalf("n=%d: N() = %d", n, g.N())
		}
	}
}

func TestNewPanics(t *testing.T) {
	for _, n := range []int{1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) should panic", n)
				}
			}()
			New(n)
		}()
	}
}

// TestFigure2ThreeStar checks the 3-star adjacency against Figure 2(a)
// of the paper: a 6-cycle alternating SWAP2 and SWAP3 edges.
func TestFigure2ThreeStar(t *testing.T) {
	g := New(3)
	if g.Nodes() != 6 {
		t.Fatalf("3-star has %d nodes", g.Nodes())
	}
	perm := make([]int, 3)
	for u := 0; u < 6; u++ {
		g.Perm(u, perm)
		// SWAP2 neighbor (slot 0) exchanges positions 0,1.
		v := g.Neighbor(u, 0)
		got := make([]int, 3)
		g.Perm(v, got)
		if got[0] != perm[1] || got[1] != perm[0] || got[2] != perm[2] {
			t.Fatalf("SWAP2 of %v gave %v", perm, got)
		}
		// SWAP3 neighbor (slot 1) exchanges positions 0,2.
		w := g.Neighbor(u, 1)
		g.Perm(w, got)
		if got[0] != perm[2] || got[2] != perm[0] || got[1] != perm[1] {
			t.Fatalf("SWAP3 of %v gave %v", perm, got)
		}
	}
}

func TestAdjacencyIsSymmetricInvolution(t *testing.T) {
	// SWAPj is an involution, so every edge slot maps back via the
	// same slot: Neighbor(Neighbor(u, j), j) == u.
	for n := 2; n <= 6; n++ {
		g := New(n)
		for u := 0; u < g.Nodes(); u++ {
			for j := 0; j < n-1; j++ {
				v := g.Neighbor(u, j)
				if v == u {
					t.Fatalf("n=%d: self-loop at node %d slot %d", n, u, j)
				}
				if g.Neighbor(v, j) != u {
					t.Fatalf("n=%d: SWAP slot %d is not an involution at %d", n, j, u)
				}
			}
		}
	}
}

func TestVertexSymmetryDegreeCount(t *testing.T) {
	// All n! nodes have exactly n-1 distinct neighbors.
	g := New(5)
	for u := 0; u < g.Nodes(); u++ {
		seen := map[int]bool{}
		for j := 0; j < 4; j++ {
			seen[g.Neighbor(u, j)] = true
		}
		if len(seen) != 4 {
			t.Fatalf("node %d has %d distinct neighbors", u, len(seen))
		}
	}
}

// bfsDistances returns exact distances from src by breadth-first
// search — the ground truth for the greedy routing rule.
func bfsDistances(g *Graph, src int) []int {
	dist := make([]int, g.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for j := 0; j < g.N()-1; j++ {
				v := g.Neighbor(u, j)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// TestGreedyRoutingIsOptimal verifies that the greedy cycle-fixing
// rule attains the exact star-graph distance for every pair (n <= 5,
// exhaustive) — i.e. it realizes the optimal paths of [1, 2].
func TestGreedyRoutingIsOptimal(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := New(n)
		for src := 0; src < g.Nodes(); src++ {
			dist := bfsDistances(g, src)
			for dst := 0; dst < g.Nodes(); dst++ {
				// Distance routes dst -> src direction-agnostically;
				// star graphs are vertex symmetric so check both.
				if got := g.Distance(src, dst); got != dist[dst] {
					t.Fatalf("n=%d: greedy distance %d->%d = %d, BFS = %d",
						n, src, dst, got, dist[dst])
				}
			}
		}
	}
}

// TestDiameterMatchesFormula verifies max distance == ⌊3(n-1)/2⌋
// (Akers-Harel-Krishnamurthy), exhaustively for n <= 5.
func TestDiameterMatchesFormula(t *testing.T) {
	for n := 2; n <= 5; n++ {
		g := New(n)
		max := 0
		dist := bfsDistances(g, 0) // vertex symmetric: src 0 suffices
		for _, d := range dist {
			if d > max {
				max = d
			}
			if d < 0 {
				t.Fatalf("n=%d: graph is not connected", n)
			}
		}
		if max != g.Diameter() {
			t.Fatalf("n=%d: eccentricity %d, formula %d", n, max, g.Diameter())
		}
	}
}

func TestGreedyWithinLeveledBudget(t *testing.T) {
	// The leveled unrolling allots 2n-2 moves; every greedy path must
	// fit. Exhaustive for n <= 5, sampled for n = 6, 7.
	for n := 2; n <= 5; n++ {
		g := New(n)
		for src := 0; src < g.Nodes(); src++ {
			for dst := 0; dst < g.Nodes(); dst++ {
				if d := g.Distance(src, dst); d > 2*n-2 {
					t.Fatalf("n=%d: greedy path %d exceeds budget %d", n, d, 2*n-2)
				}
			}
		}
	}
	for _, n := range []int{6, 7} {
		g := New(n)
		src := prng.New(uint64(n))
		for trial := 0; trial < 20000; trial++ {
			u, v := src.Intn(g.Nodes()), src.Intn(g.Nodes())
			if d := g.Distance(u, v); d > 2*n-2 {
				t.Fatalf("n=%d: greedy path %d->%d of length %d exceeds budget %d",
					n, u, v, d, 2*n-2)
			}
		}
	}
}

func TestNextHopDone(t *testing.T) {
	g := New(4)
	if _, done := g.NextHop(5, 5, 0); !done {
		t.Fatal("NextHop at destination must report done")
	}
	slot, done := g.NextHop(5, 6, 0)
	if done {
		t.Fatal("NextHop away from destination must not report done")
	}
	if slot < 0 || slot >= 3 {
		t.Fatalf("NextHop slot %d out of range", slot)
	}
}

func TestAsLeveledSpec(t *testing.T) {
	g := New(4)
	spec := g.AsLeveled()
	if spec.Width() != 24 || spec.Levels() != 7 || spec.Degree() != 4 {
		t.Fatalf("leveled star: width=%d levels=%d degree=%d",
			spec.Width(), spec.Levels(), spec.Degree())
	}
	// Unique-path property: NextHop walks must reach every dst within
	// the edge budget, then stay put via the self slot.
	for src := 0; src < spec.Width(); src++ {
		for dst := 0; dst < spec.Width(); dst++ {
			node := src
			for level := 0; level < spec.Levels()-1; level++ {
				slot := spec.NextHop(level, node, dst)
				node = spec.Out(level, node, slot)
			}
			if node != dst {
				t.Fatalf("leveled path %d->%d ended at %d", src, dst, node)
			}
		}
	}
}

func TestAsLeveledSelfSlot(t *testing.T) {
	g := New(5)
	spec := g.AsLeveled()
	for _, node := range []int{0, 17, 101} {
		if spec.Out(0, node, g.N()-1) != node {
			t.Fatalf("self slot moved node %d", node)
		}
		if spec.NextHop(3, node, node) != g.N()-1 {
			t.Fatal("NextHop at destination must choose the self slot")
		}
	}
}

func TestPermLabels(t *testing.T) {
	g := New(4)
	perm := make([]int, 4)
	g.Perm(0, perm) // rank 0 = identity
	for i, v := range perm {
		if v != i {
			t.Fatalf("node 0 label %v, want identity", perm)
		}
	}
	g.Perm(g.Nodes()-1, perm) // last rank = reverse
	for i, v := range perm {
		if v != 3-i {
			t.Fatalf("last node label %v, want reverse", perm)
		}
	}
}
