// Package advsearch hunts worst-case inputs per topology family: the
// search subsystem behind `routebench -advsearch` and experiment E21.
// The paper's routing bounds are with-high-probability statements;
// every sweep so far reports a handful of seeds, so nobody has
// measured the tail and no input in the repo is *trying* to be bad.
// Three strategies behind one Searcher interface close that gap:
// large-scale seed sweeps with full round/maxQ distributions (the
// scenario layer's Distribution axis), a scan over structured
// adversaries from the workload registry (bit-reversal and friends
// plus this package's own adv:* patterns), and a greedy permutation
// search that mutates swap pairs and keeps whatever grows the
// observed maximum. Everything derives from the spec's seed alone —
// results are byte-reproducible for any pool width — and a found
// permutation can be frozen into sweeps/adversarial/ as a permanent
// regression workload (workload.Frozen).
package advsearch

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pramemu/internal/scenario"
	"pramemu/internal/workload"
)

// Spec is one adversarial search: the families to attack, the
// strategies to use and their budgets. Like scenario.Spec it is pure
// data — two runs of one spec produce identical findings.
type Spec struct {
	// Name labels the search in logs and artifacts.
	Name string `json:"name,omitempty"`
	// Families are the topology instances to hunt on.
	Families []scenario.TopoRef `json:"families"`
	// Strategies selects the searchers by name ("seeds",
	// "structured", "greedy"). Default: all three.
	Strategies []string `json:"strategies,omitempty"`
	// Seeds is the seed-sweep width: how many trial seeds the "seeds"
	// strategy prices per family (default 32).
	Seeds int `json:"seeds,omitempty"`
	// Iters is the greedy budget: how many swap-pair mutations the
	// "greedy" strategy evaluates per family (default 64).
	Iters int `json:"iters,omitempty"`
	// Trials is the per-evaluation trial count of the structured and
	// greedy strategies (default 2).
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed every strategy derives its randomness
	// from (default 1991).
	Seed uint64 `json:"seed,omitempty"`
	// Pool is how many families search concurrently (0 = GOMAXPROCS).
	// Findings are identical for any value.
	Pool int `json:"pool,omitempty"`
	// BoundC is the theorem constant: a family's observed-worst rounds
	// are compared against BoundC × diameter (default 16 — the paper's
	// O(diameter) claims hold whp with a small constant; 16 gives the
	// regression gate honest headroom over the ~3.4 observed today).
	BoundC float64 `json:"bound_c,omitempty"`
}

// withDefaults substitutes the documented defaults.
func (s Spec) withDefaults() Spec {
	if len(s.Strategies) == 0 {
		s.Strategies = []string{"seeds", "structured", "greedy"}
	}
	if s.Seeds == 0 {
		s.Seeds = 32
	}
	if s.Iters == 0 {
		s.Iters = 64
	}
	if s.Trials == 0 {
		s.Trials = 2
	}
	if s.Seed == 0 {
		s.Seed = 1991
	}
	if s.BoundC == 0 {
		s.BoundC = 16
	}
	return s
}

// ReadSpec parses a search spec from JSON, rejecting unknown fields
// so typos fail loudly instead of silently defaulting.
func ReadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("advsearch: parsing spec: %w", err)
	}
	return s, nil
}

// Finding is one worst case a strategy observed: the instance it was
// found on, the input that realizes it (workload name + seed, plus
// the raw permutation for greedy winners so it can be frozen), the
// observed metrics and how they compare to the theorem bound.
type Finding struct {
	Family   string `json:"family"`
	Topology string `json:"topology"`
	N        int    `json:"n,omitempty"`
	K        int    `json:"k,omitempty"`
	Nodes    int    `json:"nodes"`
	Diameter int    `json:"diameter"`
	// Strategy names the searcher ("seeds" | "structured" | "greedy"),
	// Workload the registry workload that realizes the case ("perm"
	// for seed sweeps, the scanned name for structured, "greedy" for
	// searched permutations) and Seed the base seed reproducing the
	// observed metrics at Trials repetitions.
	Strategy string `json:"strategy"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Trials   int    `json:"trials"`
	// Rounds and MaxQ are the worst observed values; RoundsPerDiam
	// normalizes rounds by the instance diameter — the figure the
	// theorem bounds in O(diameter) terms.
	Rounds        int     `json:"rounds"`
	MaxQ          int     `json:"max_q"`
	RoundsPerDiam float64 `json:"rounds_per_diam"`
	// Bound is BoundC × diameter; WithinBound whether the observed
	// worst stays under it. A false here is the search's jackpot: an
	// input beating the theorem constant.
	Bound       float64 `json:"bound"`
	WithinBound bool    `json:"within_bound"`
	// The seed strategy's distribution statistics over its sweep
	// (absent on structured/greedy findings).
	RoundsDist *scenario.DistStats `json:"rounds_dist,omitempty"`
	MaxQDist   *scenario.DistStats `json:"max_q_dist,omitempty"`
	// Perm is the greedy winner's destination table, carried for
	// freezing but kept out of the JSON artifact (frozen files encode
	// it compactly).
	Perm []int `json:"-"`
}

// Report is the artifact of one search run.
type Report struct {
	Name     string    `json:"name,omitempty"`
	Seed     uint64    `json:"seed"`
	BoundC   float64   `json:"bound_c"`
	Findings []Finding `json:"findings"`
}

// Worst returns one finding per (family, strategy): the maximum by
// (rounds, maxQ), in family-then-strategy order — the rows of E21.
func (r Report) Worst() []Finding {
	type key struct{ family, strategy string }
	best := make(map[key]Finding)
	var keys []key
	for _, f := range r.Findings {
		k := key{f.Family, f.Strategy}
		b, seen := best[k]
		if !seen {
			keys = append(keys, k)
		}
		if !seen || f.Rounds > b.Rounds || (f.Rounds == b.Rounds && f.MaxQ > b.MaxQ) {
			best[k] = f
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].strategy < keys[j].strategy
	})
	out := make([]Finding, len(keys))
	for i, k := range keys {
		out[i] = best[k]
	}
	return out
}

// Env is the per-search context handed to every Searcher: the spec's
// budgets plus the seed-sweep cache RunJournaled primes from its
// journaled cell artifact.
type Env struct {
	Seeds  int
	Iters  int
	Trials int
	Seed   uint64
	// SeedCache maps a topology's cell key to the already-priced
	// Distribution result of the seeds strategy's cell — the bridge
	// from the journaled scenario sweep to the searcher, so a resumed
	// search never re-prices completed seed sweeps. Nil means price
	// live.
	SeedCache map[string]scenario.Result
}

// Searcher is one strategy: given the environment and a topology
// instance, return the worst inputs it can find. Implementations must
// derive all randomness from Env.Seed and the instance alone.
type Searcher interface {
	Name() string
	Search(ctx context.Context, env Env, topo scenario.TopoRef) ([]Finding, error)
}

// searcherByName resolves a strategy name.
func searcherByName(name string) (Searcher, error) {
	switch name {
	case "seeds":
		return seedSweeper{}, nil
	case "structured":
		return structuredScan{}, nil
	case "greedy":
		return greedySearcher{}, nil
	default:
		return nil, fmt.Errorf("advsearch: unknown strategy %q (known: seeds, structured, greedy)", name)
	}
}

// familySeed derives the per-instance seed every strategy splits its
// randomness from: a function of the spec seed and the instance's
// identity alone, independent of pool scheduling — the root of the
// pool-width reproducibility property.
func familySeed(seed uint64, topo scenario.TopoRef) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d/%t", topo.Family, topo.N, topo.K, topo.Leveled)
	return seed ^ h.Sum64()
}

// evalCell prices one (instance, workload) pair through the scenario
// layer — the shared evaluation primitive of every strategy. The cell
// runs on the shared build cache, so repeated candidate evaluations
// on one instance rebuild nothing.
func evalCell(ctx context.Context, topo scenario.TopoRef, work string, trials int, seed uint64, dist bool) (scenario.Result, error) {
	return scenario.RunCellContext(ctx, scenario.Cell{
		Topo:         topo,
		Work:         scenario.WorkRef{Name: work},
		Workers:      1,
		Trials:       trials,
		Seed:         seed,
		Distribution: dist,
	})
}

// finalize fills a finding's derived fields from an evaluation result.
func finalize(f Finding, res scenario.Result, topo scenario.TopoRef) Finding {
	f.Family = topo.Family
	f.N, f.K = topo.N, topo.K
	f.Topology = res.Topology
	f.Nodes = res.Nodes
	f.Diameter = res.Diameter
	if res.Diameter > 0 {
		f.RoundsPerDiam = float64(f.Rounds) / float64(res.Diameter)
	}
	return f
}

// Run executes the search: every requested strategy on every family,
// Pool families concurrently, findings sorted canonically. The
// findings are identical for any pool width (TestAdvSearchPoolWidth-
// Independence) because every strategy seeds from the spec and the
// instance alone.
func Run(ctx context.Context, spec Spec) (Report, error) {
	return run(ctx, spec, nil)
}

// run is Run with an optional pre-priced seed-sweep cache (the
// journaled path's resume bridge).
func run(ctx context.Context, spec Spec, seedCache map[string]scenario.Result) (Report, error) {
	spec = spec.withDefaults()
	if len(spec.Families) == 0 {
		return Report{}, fmt.Errorf("advsearch: spec %q names no families", spec.Name)
	}
	searchers := make([]Searcher, len(spec.Strategies))
	for i, name := range spec.Strategies {
		s, err := searcherByName(name)
		if err != nil {
			return Report{}, err
		}
		searchers[i] = s
	}
	env := Env{
		Seeds:     spec.Seeds,
		Iters:     spec.Iters,
		Trials:    spec.Trials,
		Seed:      spec.Seed,
		SeedCache: seedCache,
	}
	pool := spec.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if pool > len(spec.Families) {
		pool = len(spec.Families)
	}
	perFamily := make([][]Finding, len(spec.Families))
	errs := make([]error, len(spec.Families))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				topo := spec.Families[i]
				for _, s := range searchers {
					found, err := s.Search(ctx, env, topo)
					if err != nil {
						errs[i] = fmt.Errorf("advsearch: %s on %s: %w", s.Name(), topo.Family, err)
						break
					}
					perFamily[i] = append(perFamily[i], found...)
				}
			}
		}()
	}
	for i := range spec.Families {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}
	var findings []Finding
	for i := range perFamily {
		for j := range perFamily[i] {
			findings = append(findings, bound(perFamily[i][j], spec.BoundC))
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.K != b.K {
			return a.K < b.K
		}
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		return a.Workload < b.Workload
	})
	return Report{Name: spec.Name, Seed: spec.Seed, BoundC: spec.BoundC, Findings: findings}, ctx.Err()
}

// bound fills the theorem-comparison fields.
func bound(f Finding, c float64) Finding {
	f.Bound = c * float64(f.Diameter)
	f.WithinBound = float64(f.Rounds) <= f.Bound
	return f
}

// seedSpec is the scenario sweep realizing the seeds strategy across
// every family at once — the journaled, resumable stage of
// RunJournaled. Its cells are exactly the cells seedSweeper.Search
// prices one at a time, so both paths produce identical findings.
func seedSpec(spec Spec) scenario.Spec {
	return scenario.Spec{
		Name:         spec.Name + "-seeds",
		Topologies:   spec.Families,
		Workloads:    []scenario.WorkRef{{Name: "perm"}},
		Trials:       spec.Seeds,
		Seed:         spec.Seed,
		Distribution: true,
		Pool:         spec.Pool,
	}
}

// RunJournaled is Run with crash-safe, resumable artifacts: the
// seed-sweep stage runs through scenario.RunJournaled into
// out+".cells" (with its sidecar journal — an interrupted search
// resumes without re-pricing completed families), the structured and
// greedy stages run live, and the final report is written to out via
// a temp-file rename, so out either holds a complete report or the
// previous one.
func RunJournaled(ctx context.Context, spec Spec, out string) (Report, error) {
	spec = spec.withDefaults()
	var seedCache map[string]scenario.Result
	if hasStrategy(spec, "seeds") {
		results, err := scenario.RunJournaled(ctx, seedSpec(spec), out+".cells", scenario.JournalOptions{})
		if err != nil {
			return Report{}, fmt.Errorf("advsearch: seed sweep: %w", err)
		}
		// Key each family's result by its topology segment — the same
		// key seedSweeper.Search looks up — by prefix-matching the cell
		// key (spec expansion appends workload/engine segments the
		// searcher cannot reconstruct).
		seedCache = make(map[string]scenario.Result, len(results))
		for _, topo := range spec.Families {
			seg := topoSegment(topo)
			for _, r := range results {
				if strings.HasPrefix(r.Scenario, seg+"/") {
					seedCache[seg] = r
					break
				}
			}
		}
	}
	rep, err := run(ctx, spec, seedCache)
	if err != nil {
		return rep, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	tmp := out + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return rep, err
	}
	if err := os.Rename(tmp, out); err != nil {
		return rep, err
	}
	return rep, nil
}

// hasStrategy reports whether the (defaulted) spec runs the named
// strategy.
func hasStrategy(spec Spec, name string) bool {
	for _, s := range spec.Strategies {
		if s == name {
			return true
		}
	}
	return false
}

// Freeze converts a greedy finding into a frozen workload named
// "adv:<family>:<name>" — the bridge from a search win to a
// permanent regression workload.
func Freeze(name string, f Finding) (workload.Frozen, error) {
	if len(f.Perm) == 0 {
		return workload.Frozen{}, fmt.Errorf("advsearch: finding %s/%s carries no permutation to freeze", f.Family, f.Strategy)
	}
	return workload.Frozen{
		Name:   name,
		Family: f.Family,
		N:      f.N,
		K:      f.K,
		Nodes:  f.Nodes,
		Seed:   f.Seed,
		Trials: f.Trials,
		Rounds: f.Rounds,
		MaxQ:   f.MaxQ,
		Note:   fmt.Sprintf("found by %s search (workload %s)", f.Strategy, f.Workload),
		Perm:   append([]int(nil), f.Perm...),
	}, nil
}

// Strategies returns the known strategy names, sorted — routebench's
// -list output.
func Strategies() []string { return []string{"greedy", "seeds", "structured"} }
