// The search subsystem's contract: findings are byte-identical for
// any pool width, the journaled path resumes to the same report, the
// seed strategy's winning seed actually reproduces its metrics, and
// checked-in frozen adversaries still achieve their recorded worst.

package advsearch

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pramemu/internal/scenario"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// testSpec is the small-but-real search every test runs: three
// families covering pow2, square and neither, all three strategies,
// budgets small enough for the race detector.
func testSpec() Spec {
	return Spec{
		Name: "advsearch-test",
		Families: []scenario.TopoRef{
			{Family: "hypercube", N: 3},
			{Family: "mesh", N: 4},
			{Family: "star", N: 4},
		},
		Seeds:  4,
		Iters:  3,
		Trials: 1,
		Seed:   7,
	}
}

func TestAdvSearchPoolWidthIndependence(t *testing.T) {
	spec := testSpec()
	var reports []Report
	for _, pool := range []int{1, 4} {
		s := spec
		s.Pool = pool
		rep, err := Run(context.Background(), s)
		if err != nil {
			t.Fatalf("pool %d: %v", pool, err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("findings depend on pool width:\npool=1: %+v\npool=4: %+v", reports[0], reports[1])
	}
}

func TestAdvSearchFindings(t *testing.T) {
	rep, err := Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("search returned no findings")
	}
	perStrategy := map[string]int{}
	for _, f := range rep.Findings {
		perStrategy[f.Strategy]++
		if f.Nodes == 0 || f.Diameter == 0 {
			t.Errorf("%s/%s: missing instance fields: %+v", f.Family, f.Strategy, f)
		}
		if f.Rounds <= 0 {
			t.Errorf("%s/%s/%s: nonpositive rounds %d", f.Family, f.Strategy, f.Workload, f.Rounds)
		}
		if f.Bound != rep.BoundC*float64(f.Diameter) {
			t.Errorf("%s/%s: bound %v != %v×%d", f.Family, f.Strategy, f.Bound, rep.BoundC, f.Diameter)
		}
		if !f.WithinBound {
			t.Errorf("%s/%s/%s: rounds %d beat the theorem bound %v — a real finding, but on these instances it means a regression",
				f.Family, f.Strategy, f.Workload, f.Rounds, f.Bound)
		}
	}
	// Every strategy found something on every family (structured finds
	// several per family; star admits neither pow2 nor square patterns
	// but still prices tornado and the khot ramp).
	for _, s := range Strategies() {
		if perStrategy[s] < len(testSpec().Families) {
			t.Errorf("strategy %s produced %d findings, want >= %d", s, perStrategy[s], len(testSpec().Families))
		}
	}
	// The seed strategy's distributions cover its sweep.
	for _, f := range rep.Findings {
		if f.Strategy != "seeds" {
			continue
		}
		if f.RoundsDist == nil || f.RoundsDist.N != testSpec().Seeds {
			t.Errorf("%s/seeds: rounds distribution over %+v trials, want %d", f.Family, f.RoundsDist, testSpec().Seeds)
		}
		if f.RoundsDist.Max != f.Rounds {
			t.Errorf("%s/seeds: dist max %d != finding rounds %d", f.Family, f.RoundsDist.Max, f.Rounds)
		}
	}
	// Worst: one row per (family, strategy), dominating its group.
	worst := rep.Worst()
	if len(worst) != len(testSpec().Families)*len(Strategies()) {
		t.Fatalf("Worst returned %d rows, want %d", len(worst), len(testSpec().Families)*len(Strategies()))
	}
	for _, w := range worst {
		for _, f := range rep.Findings {
			if f.Family == w.Family && f.Strategy == w.Strategy &&
				(f.Rounds > w.Rounds || (f.Rounds == w.Rounds && f.MaxQ > w.MaxQ)) {
				t.Errorf("Worst row %s/%s (%d rounds) dominated by %s (%d rounds)", w.Family, w.Strategy, w.Rounds, f.Workload, f.Rounds)
			}
		}
	}
}

// TestAdvSearchSeedReproduces pins the seed strategy's core promise:
// re-running the named workload at the finding's seed with one trial
// observes exactly the reported worst.
func TestAdvSearchSeedReproduces(t *testing.T) {
	spec := testSpec()
	spec.Strategies = []string{"seeds"}
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		res, err := evalCell(context.Background(),
			scenario.TopoRef{Family: f.Family, N: f.N, K: f.K}, f.Workload, 1, f.Seed, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.RoundsMax != f.Rounds || res.MaxQueue != f.MaxQ {
			t.Errorf("%s: replaying seed %d observed %d rounds / maxQ %d, finding recorded %d / %d",
				f.Family, f.Seed, res.RoundsMax, res.MaxQueue, f.Rounds, f.MaxQ)
		}
	}
}

func TestAdvSearchGreedyFreezes(t *testing.T) {
	spec := testSpec()
	spec.Strategies = []string{"greedy"}
	spec.Families = spec.Families[:1]
	rep, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 1 || len(rep.Findings[0].Perm) == 0 {
		t.Fatalf("greedy finding carries no permutation: %+v", rep.Findings)
	}
	f := rep.Findings[0]
	fr, err := Freeze("worst", f)
	if err != nil {
		t.Fatal(err)
	}
	if fr.WorkloadName() != "adv:hypercube:worst" || fr.Nodes != f.Nodes || fr.Rounds != f.Rounds {
		t.Fatalf("frozen workload does not match the finding: %+v", fr)
	}
	// The frozen workload replays to at least the recorded metrics.
	if err := workload.RegisterFrozen(fr); err != nil {
		t.Fatal(err)
	}
	defer workload.Deregister(fr.WorkloadName())
	res, err := evalCell(context.Background(),
		scenario.TopoRef{Family: f.Family, N: f.N, K: f.K}, fr.WorkloadName(), f.Trials, f.Seed, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsMax < fr.Rounds || res.MaxQueue < fr.MaxQ {
		t.Fatalf("frozen replay observed %d rounds / maxQ %d, below recorded %d / %d",
			res.RoundsMax, res.MaxQueue, fr.Rounds, fr.MaxQ)
	}
	// Findings without a permutation refuse to freeze.
	if _, err := Freeze("x", Finding{Family: "mesh", Strategy: "seeds"}); err == nil {
		t.Fatal("Freeze accepted a finding without a permutation")
	}
}

func TestAdvSearchJournaledResume(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "adv.json")
	spec := testSpec()
	first, err := RunJournaled(context.Background(), spec, out)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out, out + ".cells"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing artifact %s: %v", p, err)
		}
	}
	// A second run resumes the journaled seed sweep (completed cells
	// replay from the artifact) and lands on the identical report.
	second, err := RunJournaled(context.Background(), spec, out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("resumed report differs:\n%+v\n%+v", first, second)
	}
	// And matches the live path finding-for-finding.
	live, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, live) {
		t.Fatalf("journaled report differs from live run:\n%+v\n%+v", first, live)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"findings"`) {
		t.Fatalf("artifact %s lacks findings", out)
	}
}

func TestAdvSearchSpec(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(
		`{"name":"x","families":[{"family":"mesh","n":4}],"strategies":["seeds"],"seeds":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "x" || len(spec.Families) != 1 || spec.Seeds != 8 {
		t.Fatalf("spec parsed wrong: %+v", spec)
	}
	if _, err := ReadSpec(strings.NewReader(`{"familys":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Run(context.Background(), Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Run(context.Background(), Spec{
		Families:   []scenario.TopoRef{{Family: "mesh", N: 4}},
		Strategies: []string{"anneal"},
	}); err == nil || !strings.Contains(err.Error(), "anneal") {
		t.Fatalf("unknown strategy error %v does not name it", err)
	}
}

// TestAdvSearchFrozenRegression is the repo's permanent regression
// gate: every adversary checked in under sweeps/adversarial/ must
// still achieve at least its recorded rounds and maxQ when replayed
// on its pinned instance. A drop means a router change weakened a
// known worst case — investigate before re-freezing.
func TestAdvSearchFrozenRegression(t *testing.T) {
	dir := filepath.Join("..", "..", "sweeps", "adversarial")
	n, err := workload.LoadFrozenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("no frozen adversaries under %s — the repo must carry at least one", dir)
	}
	for _, name := range workload.FrozenNames() {
		fr, ok := workload.LookupFrozen(name)
		if !ok {
			t.Fatalf("frozen name %s not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			res, err := evalCell(context.Background(),
				scenario.TopoRef{Family: fr.Family, N: fr.N, K: fr.K}, name, fr.Trials, fr.Seed, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.RoundsMax < fr.Rounds || res.MaxQueue < fr.MaxQ {
				t.Errorf("replay observed %d rounds / maxQ %d, below the recorded %d / %d",
					res.RoundsMax, res.MaxQueue, fr.Rounds, fr.MaxQ)
			}
		})
	}
}
