// The structured adversaries this package contributes to the workload
// registry: deliberately bad inputs composed from the classic worst
// cases, registered under adv:* names through the same capability
// system as every other generator — so the conformance suite, the
// sweep layer and the structured scan pick them up with zero edits.

package advsearch

import (
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/topology"
	"pramemu/internal/workload"
)

// log2 returns k with 2^k == nodes; callers gate on NeedsPow2.
func log2(nodes int) int {
	k := 0
	for 1<<k < nodes {
		k++
	}
	return k
}

// side returns s with s*s == nodes; callers gate on NeedsSquare.
func side(nodes int) int {
	s := 0
	for s*s < nodes {
		s++
	}
	return s
}

func init() {
	workload.Register(workload.Generator{
		Name: "adv:revcomp", Params: "Kind",
		Class:   workload.ClassPermutation,
		Traffic: "bit-reversal composed with bit-complement: reversal's congestion plus complement's maximal distance",
		Needs:   workload.NeedsPow2,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			nodes := b.Nodes()
			k := log2(nodes)
			pkts := make([]*packet.Packet, nodes)
			for i := 0; i < nodes; i++ {
				rev := 0
				for bit := 0; bit < k; bit++ {
					rev = rev<<1 | (i >> bit & 1)
				}
				pkts[i] = packet.NewIn(a, i, i, nodes-1-rev, p.Kind)
			}
			return pkts, nil
		},
	})
	workload.Register(workload.Generator{
		Name: "adv:transtack", Params: "Kind",
		Class:   workload.ClassPermutation,
		Traffic: "transpose-of-shifted-transpose stack: transpose congestion that a transpose-aware router cannot cancel",
		Needs:   workload.NeedsSquare,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			nodes := b.Nodes()
			s := side(nodes)
			t := func(i int) int { return (i%s)*s + i/s }
			pkts := make([]*packet.Packet, nodes)
			for i := 0; i < nodes; i++ {
				pkts[i] = packet.NewIn(a, i, i, t((t(i)+1)%nodes), p.Kind)
			}
			return pkts, nil
		},
	})
	workload.Register(workload.Generator{
		Name: "adv:khotramp", Params: "Kind, Hot",
		Class:   workload.ClassManyOne,
		Traffic: "hotspot ramp: node i goes hot with probability i/(n-1), so combining trees skew toward the high half",
		Needs:   workload.NeedsCombining,
		Generate: func(b topology.Built, p workload.Params, a *packet.Arena, seed uint64) ([]*packet.Packet, error) {
			nodes := b.Nodes()
			hot := p.Hot
			if hot < 1 {
				hot = 4
			}
			if hot > nodes {
				hot = nodes
			}
			kind := p.Kind
			if !kind.IsRequest() {
				kind = packet.ReadRequest
			}
			src := prng.New(seed)
			// Distinct hot destinations, drawn deterministically (the
			// khot idiom).
			hotDsts := make([]int, 0, hot)
			used := make(map[int]bool, hot)
			for len(hotDsts) < hot {
				d := src.Intn(nodes)
				if !used[d] {
					used[d] = true
					hotDsts = append(hotDsts, d)
				}
			}
			pkts := make([]*packet.Packet, nodes)
			for i := 0; i < nodes; i++ {
				j := src.Intn(hot)
				pk := packet.NewIn(a, i, i, hotDsts[j], kind)
				pk.Proc = i
				// The ramp: node i's hot probability climbs linearly
				// from 0 to 1 across the node range, concentrating the
				// shared addresses on the high half's combining trees.
				ramp := 0.0
				if nodes > 1 {
					ramp = float64(i) / float64(nodes-1)
				}
				if src.Float64() < ramp {
					pk.Addr = uint64(j) // shared hot address
				} else {
					pk.Addr = uint64(nodes + i) // private address
				}
				pkts[i] = pk
			}
			return pkts, nil
		},
	})
}
