// The three search strategies behind the Searcher interface. Each
// derives every random choice from the spec seed and the topology
// instance alone (familySeed), so a search's findings are identical
// for any pool width and across resumed runs.

package advsearch

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"pramemu/internal/buildcache"
	"pramemu/internal/prng"
	"pramemu/internal/scenario"
	"pramemu/internal/topology"
	"pramemu/internal/workload"
)

// topoSegment is the topology segment leading the instance's scenario
// keys — the join key between a journaled seed-sweep artifact and the
// family it priced.
func topoSegment(t scenario.TopoRef) string {
	s := fmt.Sprintf("%s[n=%d,k=%d", t.Family, t.N, t.K)
	if t.Leveled {
		s += ",leveled"
	}
	return s + "]"
}

// seedSweeper is the "seeds" strategy: one Distribution cell with
// Seeds trials prices the family under that many seeded permutations
// at once, the per-trial arrays yield the full round/maxQ
// distributions, and the worst trial's seed identifies the input.
type seedSweeper struct{}

func (seedSweeper) Name() string { return "seeds" }

func (seedSweeper) Search(ctx context.Context, env Env, topo scenario.TopoRef) ([]Finding, error) {
	res, ok := env.SeedCache[topoSegment(topo)]
	if !ok {
		var err error
		res, err = evalCell(ctx, topo, "perm", env.Seeds, env.Seed, true)
		if err != nil {
			return nil, err
		}
	}
	if len(res.TrialRounds) == 0 {
		return nil, fmt.Errorf("seed sweep of %s returned no per-trial samples", topoSegment(topo))
	}
	// The worst trial by (rounds, maxQ) names the finding's seed:
	// running the same workload with Seed = that trial's seed and
	// Trials = 1 reproduces the observed worst exactly. Rounds and MaxQ
	// come from that single trial — the sweep-wide maxima live in the
	// distributions.
	worst := 0
	for i := range res.TrialRounds {
		if res.TrialRounds[i] > res.TrialRounds[worst] ||
			(res.TrialRounds[i] == res.TrialRounds[worst] && res.TrialMaxQ[i] > res.TrialMaxQ[worst]) {
			worst = i
		}
	}
	rd := scenario.NewDistStats(res.TrialRounds)
	qd := scenario.NewDistStats(res.TrialMaxQ)
	f := Finding{
		Strategy:   "seeds",
		Workload:   "perm",
		Seed:       res.Seed + uint64(worst),
		Trials:     1,
		Rounds:     res.TrialRounds[worst],
		MaxQ:       res.TrialMaxQ[worst],
		RoundsDist: &rd,
		MaxQDist:   &qd,
	}
	return []Finding{finalize(f, res, topo)}, nil
}

// structuredScan is the "structured" strategy: price every registered
// structured adversary the instance's capabilities admit — the
// classic worst permutations (bitrev, bitcomp, transpose, tornado)
// plus every adv:* pattern in the registry (this package's ramps and
// stacks, and any frozen adversary loaded from disk), excluding the
// greedy strategy's transient adv:cand:* slots.
type structuredScan struct{}

func (structuredScan) Name() string { return "structured" }

// structuredCandidates returns the workload names the scan prices,
// sorted for deterministic finding order.
func structuredCandidates() []string {
	names := []string{"bitcomp", "bitrev", "tornado", "transpose"}
	for _, n := range workload.Names() {
		if strings.HasPrefix(n, "adv:") && !strings.HasPrefix(n, "adv:cand:") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func (structuredScan) Search(ctx context.Context, env Env, topo scenario.TopoRef) ([]Finding, error) {
	built, ref, err := buildcache.Default().Get(topo.Family, topology.Params{N: topo.N, K: topo.K}, topo.Leveled)
	if err != nil {
		return nil, err
	}
	defer ref.Release()
	var out []Finding
	for _, name := range structuredCandidates() {
		gen, ok := workload.Lookup(name)
		if !ok || gen.Check(built) != nil {
			continue
		}
		res, err := evalCell(ctx, topo, name, env.Trials, env.Seed, false)
		if err != nil {
			return nil, err
		}
		f := Finding{
			Strategy: "structured",
			Workload: name,
			Seed:     env.Seed,
			Trials:   env.Trials,
			Rounds:   res.RoundsMax,
			MaxQ:     res.MaxQueue,
		}
		out = append(out, finalize(f, res, topo))
	}
	return out, nil
}

// candSeq distinguishes concurrent greedy searches' candidate slots.
// The slot name never reaches a finding, so the process-scoped
// counter cannot perturb reproducibility.
var candSeq atomic.Uint64

// greedySearcher is the "greedy" strategy: start from a seeded random
// permutation and hill-climb by swap-pair mutations, keeping a
// mutation when the observed (maxQ, rounds) grows lexicographically.
// Candidates evaluate through the registry's transient slot
// (workload.RegisterPerm) and the scenario layer's build cache, so
// each of the Iters evaluations reroutes but never rebuilds.
type greedySearcher struct{}

func (greedySearcher) Name() string { return "greedy" }

func (greedySearcher) Search(ctx context.Context, env Env, topo scenario.TopoRef) ([]Finding, error) {
	built, ref, err := buildcache.Default().Get(topo.Family, topology.Params{N: topo.N, K: topo.K}, topo.Leveled)
	if err != nil {
		return nil, err
	}
	defer ref.Release()
	nodes := built.Nodes()
	cand := fmt.Sprintf("adv:cand:%s-n%d-k%d-%d", topo.Family, topo.N, topo.K, candSeq.Add(1))
	defer workload.Deregister(cand)
	eval := func(p []int) (scenario.Result, error) {
		if err := workload.RegisterPerm(cand, p); err != nil {
			return scenario.Result{}, err
		}
		return evalCell(ctx, topo, cand, env.Trials, env.Seed, false)
	}
	rng := prng.New(familySeed(env.Seed, topo)).Split(3)
	perm := rng.Perm(nodes)
	best, err := eval(perm)
	if err != nil {
		return nil, err
	}
	bestPerm := append([]int(nil), perm...)
	for it := 0; it < env.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		i, j := rng.Intn(nodes), rng.Intn(nodes)
		if i == j {
			continue
		}
		perm[i], perm[j] = perm[j], perm[i]
		res, err := eval(perm)
		if err != nil {
			return nil, err
		}
		if res.MaxQueue > best.MaxQueue ||
			(res.MaxQueue == best.MaxQueue && res.RoundsMax > best.RoundsMax) {
			best = res
			copy(bestPerm, perm)
		} else {
			perm[i], perm[j] = perm[j], perm[i] // revert
		}
	}
	f := Finding{
		Strategy: "greedy",
		Workload: "greedy",
		Seed:     env.Seed,
		Trials:   env.Trials,
		Rounds:   best.RoundsMax,
		MaxQ:     best.MaxQueue,
		Perm:     bestPerm,
	}
	return []Finding{finalize(f, best, topo)}, nil
}
