package shuffle

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
)

func TestDimensions(t *testing.T) {
	g := New(3, 4)
	if g.Nodes() != 81 || g.Degree(0) != 3 || g.Diameter() != 4 || g.D() != 3 {
		t.Fatalf("shuffle(3,4): nodes=%d degree=%d diam=%d", g.Nodes(), g.Degree(0), g.Diameter())
	}
	nw := NewNWay(4)
	if nw.Nodes() != 256 || nw.Degree(0) != 4 || nw.Diameter() != 4 {
		t.Fatalf("4-way shuffle: nodes=%d", nw.Nodes())
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"d too small": func() { New(1, 3) },
		"n too small": func() { New(2, 0) },
		"too large":   func() { New(2, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestFigure4TwoWayShuffle checks the 2-way shuffle with n=2 against
// Figure 4 of the paper: 4 nodes 00,01,10,11 where each node x1x0 is
// linked to l·x1 for l in {0,1}.
func TestFigure4TwoWayShuffle(t *testing.T) {
	g := New(2, 2)
	want := map[int][2]int{
		0: {0, 2}, // 00 -> 00, 10
		1: {0, 2}, // 01 -> 00, 10
		2: {1, 3}, // 10 -> 01, 11
		3: {1, 3}, // 11 -> 01, 11
	}
	for node, w := range want {
		for slot := 0; slot < 2; slot++ {
			if got := g.Neighbor(node, slot); got != w[slot] {
				t.Fatalf("Neighbor(%d,%d) = %d, want %d", node, slot, got, w[slot])
			}
		}
	}
}

// TestUniquePathLengthN verifies the defining property: following
// NextHop from any src reaches any dst in exactly n hops.
func TestUniquePathLengthN(t *testing.T) {
	for _, cfg := range []struct{ d, n int }{{2, 4}, {3, 3}, {4, 4}, {5, 3}} {
		g := New(cfg.d, cfg.n)
		for src := 0; src < g.Nodes(); src += 3 {
			for dst := 0; dst < g.Nodes(); dst += 7 {
				node := src
				for taken := 0; taken < g.n; taken++ {
					slot, done := g.NextHop(node, dst, taken)
					if done {
						t.Fatalf("premature done at hop %d", taken)
					}
					node = g.Neighbor(node, slot)
				}
				if node != dst {
					t.Fatalf("d=%d n=%d: path %d->%d ended at %d", cfg.d, cfg.n, src, dst, node)
				}
				if _, done := g.NextHop(node, dst, g.n); !done {
					t.Fatal("NextHop after n hops must report done")
				}
			}
		}
	}
}

func TestAsLeveledUniquePath(t *testing.T) {
	g := New(3, 3)
	spec := g.AsLeveled()
	if spec.Levels() != 4 || spec.Width() != 27 || spec.Degree() != 3 {
		t.Fatalf("leveled shuffle dims: %d %d %d", spec.Levels(), spec.Width(), spec.Degree())
	}
	for src := 0; src < 27; src++ {
		for dst := 0; dst < 27; dst++ {
			node := src
			for level := 0; level < spec.Levels()-1; level++ {
				node = spec.Out(level, node, spec.NextHop(level, node, dst))
			}
			if node != dst {
				t.Fatalf("leveled path %d->%d ended at %d", src, dst, node)
			}
		}
	}
}

// TestAlgorithm23Permutation runs the paper's Algorithm 2.3 (two-phase
// randomized routing on the n-way shuffle) end to end on the direct
// simulator and checks Theorem 2.3's Õ(n) shape.
func TestAlgorithm23Permutation(t *testing.T) {
	g := NewNWay(4) // 256 nodes, diameter 4
	perm := prng.New(8).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
	// Two phases of exactly n hops each plus queueing delay: the
	// routing time must be Õ(n) — generously, under 12n.
	if stats.Rounds < 2*g.Diameter() || stats.Rounds > 12*g.Diameter() {
		t.Fatalf("rounds = %d, want within [%d, %d]", stats.Rounds, 2*g.Diameter(), 12*g.Diameter())
	}
}

func TestRepliesRetraceOnShuffle(t *testing.T) {
	g := New(3, 3)
	perm := prng.New(4).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.ReadRequest)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 6, Replies: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredReplies != g.Nodes() {
		t.Fatalf("replies %d/%d", stats.DeliveredReplies, g.Nodes())
	}
}

func TestDigit(t *testing.T) {
	g := New(5, 4)
	label := 3*125 + 1*25 + 4*5 + 2 // digits (lsb first): 2,4,1,3
	want := []int{2, 4, 1, 3}
	for i, w := range want {
		if got := g.digit(label, i); got != w {
			t.Fatalf("digit(%d, %d) = %d, want %d", label, i, got, w)
		}
	}
}
