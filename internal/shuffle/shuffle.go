// Package shuffle implements the d-way shuffle network of §2.3.5: d^n
// nodes labelled by n-digit base-d strings, where node dn...d1 is
// linked to l·dn...d2 for every digit l (shift the label down and
// insert l at the top). Between any two nodes there is a unique path
// of exactly n links, so the network is a leveled network of n+1
// columns with degree d; choosing d = n gives the paper's n-way
// shuffle with N = n^n nodes and sub-logarithmic diameter n.
//
// The package provides both views: a leveled.Spec (the natural form
// for Algorithm 2.3, which is Algorithm 2.1 on this topology) and a
// simnet.Topology for direct simulation with reverse-link replies.
package shuffle

import (
	"fmt"

	"pramemu/internal/leveled"
	"pramemu/internal/topology"
)

// Graph is a d-way shuffle network on d^n nodes.
type Graph struct {
	d, n  int
	nodes int
	top   int // d^(n-1), the weight of the most significant digit
}

// New constructs the d-way shuffle with n digit positions. It panics
// if d < 2, n < 1, or d^n exceeds the simulator's node-id limit
// (topology.MaxNodes, 2^31).
func New(d, n int) *Graph {
	if d < 2 {
		panic("shuffle: d must be >= 2")
	}
	if n < 1 {
		panic("shuffle: n must be >= 1")
	}
	nodes := 1
	for i := 0; i < n; i++ {
		if nodes > topology.MaxNodes/d {
			panic("shuffle: d^n exceeds the simulator's node-id limit")
		}
		nodes *= d
	}
	return &Graph{d: d, n: n, nodes: nodes, top: nodes / d}
}

// NewNWay returns the n-way shuffle (d = n) with n^n nodes.
func NewNWay(n int) *Graph { return New(n, n) }

// D returns the digit alphabet size (and out-degree) d.
func (g *Graph) D() int { return g.d }

// Name implements simnet.Topology.
func (g *Graph) Name() string { return fmt.Sprintf("shuffle(d=%d,n=%d)", g.d, g.n) }

// Nodes implements simnet.Topology: d^n.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements simnet.Topology: d outgoing shift links.
func (g *Graph) Degree(node int) int { return g.d }

// Neighbor implements simnet.Topology: insert digit `slot` at the
// top, shifting the label down one position.
func (g *Graph) Neighbor(node, slot int) int {
	return slot*g.top + node/g.d
}

// Diameter implements simnet.Topology: every unique path has exactly
// n links.
func (g *Graph) Diameter() int { return g.n }

// NextHop implements simnet.Topology. The unique path to dst inserts
// dst's digits from least to most significant; after n insertions the
// label equals dst regardless of the starting node, so arrival is
// determined by the hop count, not by node identity.
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	if taken >= g.n {
		if node != dst {
			panic(fmt.Sprintf("shuffle: path ended at %d, want %d", node, dst))
		}
		return 0, true
	}
	return g.digit(dst, taken), false
}

// TakenSensitive implements simnet.TakenSensitive: shuffle unique
// paths have fixed length n, so NextHop depends on the hops already
// taken and combining requires equal progress.
func (g *Graph) TakenSensitive() bool { return true }

// digit returns base-d digit i of label (digit 0 least significant).
func (g *Graph) digit(label, i int) int {
	for ; i > 0; i-- {
		label /= g.d
	}
	return label % g.d
}

// AsLeveled returns the leveled-network view: n+1 columns of d^n
// nodes, level i inserting digit i of the destination.
func (g *Graph) AsLeveled() leveled.Spec { return &leveledShuffle{g} }

type leveledShuffle struct{ g *Graph }

func (s *leveledShuffle) Name() string {
	return fmt.Sprintf("shuffle-leveled(d=%d,n=%d)", s.g.d, s.g.n)
}
func (s *leveledShuffle) Levels() int                   { return s.g.n + 1 }
func (s *leveledShuffle) Width() int                    { return s.g.nodes }
func (s *leveledShuffle) Degree() int                   { return s.g.d }
func (s *leveledShuffle) OutDegree(level, node int) int { return s.g.d }
func (s *leveledShuffle) Out(level, node, slot int) int { return s.g.Neighbor(node, slot) }
func (s *leveledShuffle) NextHop(level, node, dst int) int {
	return s.g.digit(dst, level)
}
