package shuffle

import "pramemu/internal/topology"

func init() {
	topology.Register(topology.Family{
		Name:    "shuffle",
		Params:  "N = digit count n >= 1 (default 3); K = alphabet d >= 2 (default d = n, the n-way shuffle)",
		Theorem: "Thm 2.3 / Cor 2.2: fixed-length unique paths, leveled view",
		Build: func(p topology.Params) (topology.Built, error) {
			n := topology.DefaultInt(p.N, 3)
			d := topology.DefaultInt(p.K, n)
			if err := topology.CheckPow("shuffle", d, n, topology.MaxNodes); err != nil {
				return topology.Built{}, err
			}
			return topology.Built{Graph: New(d, n)}, nil
		},
	})
}
