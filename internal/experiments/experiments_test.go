package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Trials: 2, Seed: 7} }

func TestAllExperimentsProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tables := All(quick())
	if len(tables) != 19 {
		t.Fatalf("expected 19 experiment tables, got %d", len(tables))
	}
	for i, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("experiment %d produced no rows:\n%s", i+1, tb)
		}
		if !strings.Contains(tb.String(), "E") {
			t.Fatalf("experiment %d lacks a title", i+1)
		}
	}
}

// lastFloat extracts the float in the given column of the last row of
// a rendered table — crude but sufficient for shape assertions.
func cellFloat(t *testing.T, line string, col int) float64 {
	fields := strings.Fields(line)
	if col >= len(fields) {
		t.Fatalf("line %q has %d fields", line, len(fields))
	}
	v, err := strconv.ParseFloat(fields[col], 64)
	if err != nil {
		t.Fatalf("parse %q: %v", fields[col], err)
	}
	return v
}

func dataLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "-") {
			continue
		}
		out = append(out, trimmed)
	}
	// Drop title and header.
	return out[2:]
}

func TestE7ThreeStageBeatsValiantBrebner(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E7MeshRouting(quick())
	lines := dataLines(tb.String())
	// Rows alternate three-stage / valiant-brebner per n; compare the
	// rounds/n column (index 5 after splitting: n N alg mean max
	// rounds/n maxQ — "three-stage" is one field).
	for i := 0; i+1 < len(lines); i += 2 {
		three := cellFloat(t, lines[i], 5)
		vb := cellFloat(t, lines[i+1], 5)
		if three >= vb {
			t.Fatalf("three-stage %.2f not below valiant-brebner %.2f\n%s", three, vb, tb)
		}
	}
}

func TestE8TwoPhaseBeatsKU(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E8MeshEmulation(quick())
	lines := dataLines(tb.String())
	for i := 0; i+1 < len(lines); i += 2 {
		// columns: n scheme... cost(mean) cost(max) cost/n; scheme
		// names contain spaces, so index from the end.
		f1 := strings.Fields(lines[i])
		f2 := strings.Fields(lines[i+1])
		two, err1 := strconv.ParseFloat(f1[len(f1)-1], 64)
		ku, err2 := strconv.ParseFloat(f2[len(f2)-1], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("parse failure on:\n%s", tb)
		}
		if two >= ku {
			t.Fatalf("two-phase %.2f not below KU %.2f\n%s", two, ku, tb)
		}
	}
}

func TestE12SortingMuchSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E12SortVsRoute(quick())
	lines := dataLines(tb.String())
	for _, line := range lines {
		f := strings.Fields(line)
		ratio, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if ratio < 2 {
			t.Fatalf("sorting/routing ratio %.2f below 2\n%s", ratio, tb)
		}
	}
}

// TestE18EventRowsCoverEveryFamily pins E18's shape: every family in
// the registry appears with both a synchronous baseline row and
// event-mode rows at each fault level, the fault-free event rows stay
// retransmit-free, and the harsh rows record retransmits somewhere.
func TestE18EventRowsCoverEveryFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E18AsynchronyMatrix(quick())
	lines := dataLines(tb.String())
	families := map[string]map[string]bool{}
	harshRetransmits := 0
	for _, line := range lines {
		f := strings.Fields(line)
		// columns: family workload engine fault N diam delivered(mean)
		// delivered/diam retransmits maxQ
		family, eng, fault := f[0], f[2], f[3]
		if families[family] == nil {
			families[family] = map[string]bool{}
		}
		families[family][eng+"/"+fault] = true
		retr, err := strconv.Atoi(f[len(f)-2])
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if eng == "event" && fault == "none" && retr != 0 {
			t.Fatalf("fault-free event row records retransmits:\n%s", line)
		}
		if eng == "round" && retr != 0 {
			t.Fatalf("synchronous row records retransmits:\n%s", line)
		}
		if fault == "harsh" {
			harshRetransmits += retr
		}
	}
	for family, cells := range families {
		for _, want := range []string{"round/-", "event/none", "event/moderate", "event/harsh"} {
			if !cells[want] {
				t.Fatalf("family %s lacks the %s cell: %v", family, want, cells)
			}
		}
	}
	if harshRetransmits == 0 {
		t.Fatal("harsh fault level (15% drop) recorded no retransmits anywhere")
	}
}

// TestE19PagedMatchesDense pins E19's defining property: on every A/B
// rung the forced-paged row reproduces the dense row's routing columns
// exactly (rounds, rounds/diam, maxQ — the engine's bit-identity
// invariant surfacing in the table), every row reports a resolved
// state with a positive footprint, and both rungs of both families
// appear.
func TestE19PagedMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E19ScaleCeiling(quick())
	lines := dataLines(tb.String())
	// columns: family network N tables state diam rounds(mean)
	// rounds/diam table(B) arena(B) B/node maxQ
	type rowKey struct{ network, tables string }
	rows := map[rowKey][]string{}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 12 {
			t.Fatalf("row has %d fields, want 12: %q", len(f), line)
		}
		if f[4] != "dense" && f[4] != "paged" && f[4] != "hashed" {
			t.Fatalf("unresolved state %q in row %q", f[4], line)
		}
		for _, col := range []int{8, 9, 10} { // table(B), arena(B), B/node
			if v := cellFloat(t, line, col); v <= 0 {
				t.Fatalf("non-positive footprint column %d in row %q", col, line)
			}
		}
		rows[rowKey{f[1], f[3]}] = f
	}
	abPairs := 0
	for key, forced := range rows {
		if key.tables != "forced-paged" {
			continue
		}
		abPairs++
		if forced[4] != "paged" {
			t.Fatalf("forced-paged row resolved to %q: %v", forced[4], forced)
		}
		auto, ok := rows[rowKey{key.network, "auto"}]
		if !ok {
			t.Fatalf("forced-paged row %s has no auto twin", key.network)
		}
		for _, col := range []int{6, 7, 11} { // rounds(mean), rounds/diam, maxQ
			if forced[col] != auto[col] {
				t.Fatalf("%s: paged column %d diverged from dense: %q vs %q",
					key.network, col, forced[col], auto[col])
			}
		}
	}
	if abPairs != 2 {
		t.Fatalf("expected 2 A/B rungs (debruijn, torus), got %d:\n%s", abPairs, tb)
	}
}

func TestE11NoRehashOnHealthyNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E11Rehash(quick())
	lines := dataLines(tb.String())
	for _, line := range lines {
		if !strings.Contains(line, "healthy") {
			continue
		}
		f := strings.Fields(line)
		// columns: name... threshold steps rehashes bits
		rehashes, err := strconv.Atoi(f[len(f)-2])
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if rehashes != 0 {
			t.Fatalf("healthy network rehashed %d times:\n%s", rehashes, tb)
		}
	}
}

// TestE21CoversEveryFamilyAndStrategy pins E21's shape: every family
// in the registry contributes one worst row per search strategy, the
// bound column is consistent with the diameter, and the structured
// adversaries never lose to the seed sweep's mean — they exist to be
// worse than random.
func TestE21CoversEveryFamilyAndStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	tb := E21AdversarialBounds(quick())
	lines := dataLines(tb.String())
	families := map[string]map[string]bool{}
	for _, line := range lines {
		// columns: family N diam strategy input rounds(worst)
		// rounds/diam bound within maxQ
		f := strings.Fields(line)
		if len(f) != 10 {
			t.Fatalf("row has %d fields, want 10: %q", len(f), line)
		}
		family, strategy := f[0], f[3]
		if families[family] == nil {
			families[family] = map[string]bool{}
		}
		families[family][strategy] = true
		diam := cellFloat(t, line, 2)
		bound := cellFloat(t, line, 7)
		rounds := cellFloat(t, line, 5)
		if bound != 16*diam {
			t.Fatalf("bound %v != 16×diam %v in row %q", bound, diam, line)
		}
		if within := f[8] == "true"; within != (rounds <= bound) {
			t.Fatalf("within column %q contradicts rounds %v vs bound %v", f[8], rounds, bound)
		}
	}
	if len(families) != 9 {
		t.Fatalf("expected all 9 families, got %d:\n%s", len(families), tb)
	}
	for family, strategies := range families {
		for _, want := range []string{"seeds", "structured", "greedy"} {
			if !strategies[want] {
				t.Fatalf("family %s lacks the %s strategy row: %v", family, want, strategies)
			}
		}
	}
}
