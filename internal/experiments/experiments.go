// Package experiments regenerates every evaluation result of the
// paper. Each exported function is one experiment from the index in
// DESIGN.md: it runs the relevant workloads over the relevant
// networks and returns a metrics.Table whose rows are what
// EXPERIMENTS.md records. The benchmark harness (bench_test.go) and
// the cmd/tables binary both drive these functions; benchmarks use
// reduced trial counts, cmd/tables the defaults. The grid experiments
// (E2, E3, E10, E14, E16, E17, E18) are declarative scenario sweeps
// over the topology and workload registries — their hand-rolled
// routing loops live in internal/scenario now, E17 additionally
// sweeps the emulation-mode axis (erew/crcw PRAM steps instead of raw
// routing), and E18 sweeps the engine and fault axes (asynchronous
// event-driven delivery under link latency, outages, stragglers and
// packet loss, against the synchronous round baseline). E20 prices
// the build cache and buffer pools: the same cross-family sweep cold
// and warm, with the warm results asserted identical to the cold.
package experiments

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"pramemu/internal/advsearch"
	"pramemu/internal/buildcache"
	"pramemu/internal/emul"
	"pramemu/internal/hashing"
	"pramemu/internal/hypercube"
	"pramemu/internal/leveled"
	"pramemu/internal/mathx"
	"pramemu/internal/mesh"
	"pramemu/internal/metrics"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/ranade"
	"pramemu/internal/scenario"
	"pramemu/internal/star"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// Options tunes experiment size; the zero value picks full defaults.
type Options struct {
	// Trials is the number of seeded repetitions per configuration
	// (default 5).
	Trials int
	// Quick shrinks the largest configurations for use in unit tests
	// and benchmarks.
	Quick bool
	// Seed is the base seed (default 1991, the paper's year).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Seed == 0 {
		o.Seed = 1991
	}
	return o
}

// fmtF formats a float with two decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// mustSweep runs a scenario sweep on a statically sized experiment
// grid, where a validation failure is a programming error rather
// than an operating condition.
func mustSweep(spec scenario.Spec) []scenario.Result {
	results, err := scenario.Run(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return results
}

// mustBuild resolves a registry topology through the process-wide
// build cache: the experiment drivers price the same comparable-size
// networks over and over, so every driver after the first adopts a
// cached build instead of re-constructing it. The pin is released
// immediately — the entry stays resident (unpinned) for the next
// driver until the cache budget evicts it.
func mustBuild(name string, p topology.Params) topology.Built {
	b, ref, err := buildcache.Default().Get(name, p, false)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", name, err))
	}
	ref.Release()
	return b
}

// mustEmul builds an emulator for a statically sized configuration.
func mustEmul(net emul.Network, cfg emul.Config) *emul.Emulator {
	e, err := emul.New(net, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return e
}

// registryNet builds a named network through the topology registry
// and adapts it for the emulator (preferring the leveled view, as the
// paper's leveled-network theorems do).
func registryNet(name string, p topology.Params) emul.Network {
	b := mustBuild(name, p)
	net, err := emul.NewTopologyNetwork(b)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return net
}

// E1LeveledPermutation reproduces Theorem 2.1: permutation routing on
// leveled networks completes in Õ(ℓ) with FIFO queues of size Õ(ℓ).
// Two sweeps: binary butterflies of growing depth (fixed d, growing
// ℓ) and d-ary butterflies with ℓ = d+1 (the ℓ = O(d) regime the
// emulation needs).
func E1LeveledPermutation(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E1 (Thm 2.1) permutation routing on leveled networks",
		"network", "d", "levels", "N", "rounds(mean)", "rounds(max)", "rounds/l", "maxQ", "queue/l")
	butterflies := []int{6, 8, 10, 12, 14}
	if o.Quick {
		butterflies = []int{6, 8}
	}
	for _, k := range butterflies {
		spec := leveled.NewButterfly(k)
		addRow(t, spec, o)
	}
	ds := []int{2, 3, 4, 5, 6}
	if o.Quick {
		ds = []int{2, 3, 4}
	}
	for _, d := range ds {
		spec := leveled.NewDAry(d, d+1)
		addRow(t, spec, o)
	}
	return t
}

func addRow(t *metrics.Table, spec leveled.Spec, o Options) {
	rounds := make([]int, 0, o.Trials)
	maxQ := 0
	for trial := 0; trial < o.Trials; trial++ {
		seed := o.Seed + uint64(trial)
		pkts := workload.Permutation(spec.Width(), packet.Transit, seed)
		s := leveled.Route(spec, pkts, leveled.Options{Seed: seed * 31})
		rounds = append(rounds, s.Rounds)
		if s.MaxQueue > maxQ {
			maxQ = s.MaxQueue
		}
	}
	l := float64(spec.Levels())
	t.AddRow(spec.Name(),
		fmt.Sprintf("%d", spec.Degree()),
		fmt.Sprintf("%d", spec.Levels()),
		fmt.Sprintf("%d", spec.Width()),
		fmtF(mathx.MeanInts(rounds)),
		fmt.Sprintf("%d", mathx.MaxInts(rounds)),
		fmtF(mathx.MeanInts(rounds)/l),
		fmt.Sprintf("%d", maxQ),
		fmtF(float64(maxQ)/l))
}

// E2StarRouting reproduces Theorem 2.2 and Corollary 2.1: permutation
// and partial n-relation routing on the n-star graph in Õ(n) steps,
// on both the physical network (Algorithm 2.2, random intermediate
// node) and the logical leveled unrolling (Algorithm 2.1, random link
// per level) — one scenario sweep per n crossing the two views with
// the two traffic classes.
func E2StarRouting(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E2 (Thm 2.2, Cor 2.1) n-star routing",
		"n", "N=n!", "diam", "workload", "algorithm", "rounds(mean)", "rounds(max)", "rounds/diam", "maxQ")
	ns := []int{4, 5, 6, 7}
	if o.Quick {
		ns = []int{4, 5}
	}
	for _, n := range ns {
		results := mustSweep(scenario.Spec{
			Topologies: []scenario.TopoRef{
				{Family: "star", N: n},
				{Family: "star", N: n, Leveled: true},
			},
			Workloads: []scenario.WorkRef{
				{Name: "perm"},
				{Name: "relation", H: n},
			},
			Trials: o.Trials, Seed: o.Seed,
		})
		for _, r := range results {
			wl := r.Workload
			if wl == "relation" {
				wl = "n-relation"
			}
			t.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", r.Nodes),
				fmt.Sprintf("%d", r.Diameter),
				wl, r.View,
				fmtF(r.RoundsMean),
				fmt.Sprintf("%d", r.RoundsMax),
				fmtF(r.RoundsPerDiam),
				fmt.Sprintf("%d", r.MaxQueue))
		}
	}
	return t
}

// E3ShuffleRouting reproduces Theorem 2.3 and Corollary 2.2:
// permutation and partial n-relation routing on the n-way shuffle in
// Õ(n), via Algorithm 2.3 on the leveled view.
func E3ShuffleRouting(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E3 (Thm 2.3, Cor 2.2) n-way shuffle routing",
		"n", "N=n^n", "workload", "rounds(mean)", "rounds(max)", "rounds/n", "maxQ")
	ns := []int{2, 3, 4, 5}
	if !o.Quick {
		ns = append(ns, 6)
	}
	for _, n := range ns {
		results := mustSweep(scenario.Spec{
			Topologies: []scenario.TopoRef{{Family: "shuffle", N: n, Leveled: true}},
			Workloads: []scenario.WorkRef{
				{Name: "perm"},
				{Name: "relation", H: n},
			},
			Trials: o.Trials, Seed: o.Seed,
		})
		for _, r := range results {
			wl := r.Workload
			if wl == "relation" {
				wl = "n-relation"
			}
			t.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", r.Nodes),
				wl,
				fmtF(r.RoundsMean),
				fmt.Sprintf("%d", r.RoundsMax),
				fmtF(r.RoundsMean/float64(n)),
				fmt.Sprintf("%d", r.MaxQueue))
		}
	}
	return t
}

// E4HashLoad reproduces Lemma 2.2 and Corollaries 3.1-3.2: with
// degree S = cL, the maximum number of one step's addresses mapped to
// a single module stays below cL w.h.p.; a degree sweep shows the
// polynomial degree buying down the tail, and N-into-N hashing shows
// the log/loglog balls-in-bins shape.
func E4HashLoad(o Options) *metrics.Table {
	o = o.withDefaults()
	trials := o.Trials * 4
	t := metrics.NewTable("E4 (Lemma 2.2, Cor 3.1) hash max module load",
		"network", "N", "L", "degree S", "maxload(mean)", "maxload(max)", "bound cL", "hash bits")
	type cfg struct {
		name string
		n, l int
	}
	cfgs := []cfg{
		{"star n=6", 720, 7},
		{"star n=7", 5040, 9},
		{"shuffle n=4", 256, 4},
		{"shuffle n=5", 3125, 5},
	}
	if o.Quick {
		cfgs = cfgs[:2]
	}
	src := prng.New(o.Seed)
	for _, c := range cfgs {
		for _, mult := range []int{1, 2, 4} {
			degree := mult * c.l
			class := hashing.NewClass(1<<30, c.n, degree)
			loads := make([]int, 0, trials)
			bits := 0
			for trial := 0; trial < trials; trial++ {
				f := class.Draw(src)
				bits = f.Bits()
				addrs := make([]uint64, c.n)
				for i := range addrs {
					addrs[i] = src.Uint64n(1 << 30)
				}
				loads = append(loads, f.MaxLoad(addrs))
			}
			t.AddRow(c.name,
				fmt.Sprintf("%d", c.n),
				fmt.Sprintf("%d", c.l),
				fmt.Sprintf("%d", degree),
				fmtF(mathx.MeanInts(loads)),
				fmt.Sprintf("%d", mathx.MaxInts(loads)),
				fmt.Sprintf("%d", 2*c.l),
				fmt.Sprintf("%d", bits))
		}
	}
	return t
}

// E5PRAMStepLeveled reproduces Theorems 2.5 and 2.6 with Corollaries
// 2.3-2.6: one EREW or CRCW PRAM step emulated on the star graph and
// the n-way shuffle costs Õ(diameter) network rounds, with combining
// keeping the CRCW hot spot at the same scale.
func E5PRAMStepLeveled(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E5 (Thm 2.5/2.6) PRAM step emulation on leveled networks",
		"network", "N", "diam", "step", "combine", "cost(mean)", "cost(max)", "cost/diam", "merges")
	type netCfg struct {
		name string
		net  emul.Network
	}
	var nets []netCfg
	starNs := []int{4, 5, 6}
	shuffleNs := []int{3, 4}
	if o.Quick {
		starNs = []int{4, 5}
		shuffleNs = []int{3}
	}
	for _, n := range starNs {
		nets = append(nets, netCfg{fmt.Sprintf("star(n=%d)", n), registryNet("star", topology.Params{N: n})})
	}
	for _, n := range shuffleNs {
		nets = append(nets, netCfg{fmt.Sprintf("shuffle(d=%d,n=%d)", n, n), registryNet("shuffle", topology.Params{N: n})})
	}
	for _, nc := range nets {
		for _, mode := range []struct {
			step    string
			combine bool
		}{
			{"EREW random", false},
			{"CRCW hotspot", true},
			{"CRCW hotspot", false},
		} {
			costs := make([]int, 0, o.Trials)
			merges := 0
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + uint64(trial)
				e := mustEmul(nc.net, emul.Config{
					Memory:  1 << 24,
					Seed:    seed,
					Combine: mode.combine,
				})
				var stats emul.RouteStats
				var cost int
				if mode.step == "EREW random" {
					stats, cost = e.RouteRequests(workload.RandomStep(nc.net.Nodes(), 1<<24, false, seed*7))
				} else {
					stats, cost = e.RouteRequests(workload.CRCWStep(nc.net.Nodes(), 12345))
				}
				costs = append(costs, cost)
				merges += stats.Merges
			}
			t.AddRow(nc.name,
				fmt.Sprintf("%d", nc.net.Nodes()),
				fmt.Sprintf("%d", nc.net.Diameter()),
				mode.step,
				fmt.Sprintf("%v", mode.combine),
				fmtF(mathx.MeanInts(costs)),
				fmt.Sprintf("%d", mathx.MaxInts(costs)),
				fmtF(mathx.MeanInts(costs)/float64(nc.net.Diameter())),
				fmt.Sprintf("%d", merges/o.Trials))
		}
	}
	return t
}

// E6StarVsHypercube reproduces the introduction's comparison: the
// star graph's degree and diameter grow more slowly than the
// hypercube's as a function of network size, and PRAM-step emulation
// time (∝ diameter) is accordingly sub-logarithmic vs logarithmic.
func E6StarVsHypercube(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E6 (intro, §2.3.4) star vs hypercube",
		"network", "N", "degree", "diameter", "EREW step cost", "cost/log2(N)")
	type pair struct {
		starN, cubeK int
	}
	pairs := []pair{{4, 5}, {5, 7}, {6, 10}}
	if !o.Quick {
		pairs = append(pairs, pair{7, 12})
	}
	for _, pr := range pairs {
		sg := star.New(pr.starN)
		cg := hypercube.New(pr.cubeK)
		rb := ranade.New(pr.cubeK)
		starNet, err := emul.NewDirectTopologyNetwork(topology.Built{Graph: sg})
		if err != nil {
			panic(err)
		}
		cubeNet, err := emul.NewDirectTopologyNetwork(topology.Built{Graph: cg})
		if err != nil {
			panic(err)
		}
		for _, side := range []struct {
			name     string
			net      emul.Network
			degree   int
			diameter int
		}{
			{sg.Name(), starNet, pr.starN - 1, sg.Diameter()},
			{cg.Name(), cubeNet, pr.cubeK, cg.Diameter()},
			{rb.Name(), &emul.RanadeNetwork{Net: rb}, 2, rb.Diameter()},
		} {
			costs := make([]int, 0, o.Trials)
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + uint64(trial)
				e := mustEmul(side.net, emul.Config{Memory: 1 << 24, Seed: seed})
				_, cost := e.RouteRequests(workload.RandomStep(side.net.Nodes(), 1<<24, false, seed*3))
				costs = append(costs, cost)
			}
			logN := 0.0
			for v := side.net.Nodes(); v > 1; v /= 2 {
				logN++
			}
			t.AddRow(side.name,
				fmt.Sprintf("%d", side.net.Nodes()),
				fmt.Sprintf("%d", side.degree),
				fmt.Sprintf("%d", side.diameter),
				fmtF(mathx.MeanInts(costs)),
				fmtF(mathx.MeanInts(costs)/logN))
		}
	}
	return t
}

// E7MeshRouting reproduces Theorem 3.1: the three-stage mesh routing
// algorithm finishes a random permutation in 2n + o(n) rounds with
// modest queues, against the Valiant-Brebner 3n baseline.
func E7MeshRouting(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E7 (Thm 3.1) mesh permutation routing, three-stage vs Valiant-Brebner",
		"n", "N", "algorithm", "rounds(mean)", "rounds(max)", "rounds/n", "maxQ")
	ns := []int{16, 32, 64, 128}
	if !o.Quick {
		ns = append(ns, 256)
	}
	for _, n := range ns {
		g := mesh.New(n)
		for _, alg := range []struct {
			name string
			a    mesh.Algorithm
		}{{"three-stage", mesh.ThreeStage}, {"valiant-brebner", mesh.ValiantBrebner}} {
			rounds := make([]int, 0, o.Trials)
			maxQ := 0
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + uint64(trial)
				pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
				s := mesh.Route(g, pkts, mesh.Options{Seed: seed * 7, Algorithm: alg.a})
				rounds = append(rounds, s.Rounds)
				if s.MaxQueue > maxQ {
					maxQ = s.MaxQueue
				}
			}
			t.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", g.Nodes()),
				alg.name,
				fmtF(mathx.MeanInts(rounds)),
				fmt.Sprintf("%d", mathx.MaxInts(rounds)),
				fmtF(mathx.MeanInts(rounds)/float64(n)),
				fmt.Sprintf("%d", maxQ))
		}
	}
	return t
}

// E8MeshEmulation reproduces Theorem 3.2: one EREW PRAM step on the
// n x n mesh costs 4n + o(n) with the paper's two-phase scheme,
// against the Karlin-Upfal four-phase scheme (~8n).
func E8MeshEmulation(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E8 (Thm 3.2) EREW PRAM step on the mesh",
		"n", "scheme", "cost(mean)", "cost(max)", "cost/n")
	ns := []int{16, 32, 64}
	if !o.Quick {
		ns = append(ns, 128)
	}
	for _, n := range ns {
		g := mesh.New(n)
		for _, scheme := range []struct {
			name string
			s    emul.MeshScheme
		}{{"two-phase (ours)", emul.TwoPhase}, {"karlin-upfal 4-phase", emul.KarlinUpfal4Phase}} {
			costs := make([]int, 0, o.Trials)
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + uint64(trial)
				net := &emul.MeshNetwork{G: g, Scheme: scheme.s}
				e := mustEmul(net, emul.Config{Memory: 1 << 26, Seed: seed})
				_, cost := e.RouteRequests(workload.RandomStep(g.Nodes(), 1<<26, false, seed*5))
				costs = append(costs, cost)
			}
			t.AddRow(fmt.Sprintf("%d", n), scheme.name,
				fmtF(mathx.MeanInts(costs)),
				fmt.Sprintf("%d", mathx.MaxInts(costs)),
				fmtF(mathx.MeanInts(costs)/float64(n)))
		}
	}
	return t
}

// E9MeshLocality reproduces Theorem 3.3: requests originating within
// L1 distance d of their memory finish in O(d) — ~2d per routing
// phase, ~4d for the emulated request+reply step, within the 6d+o(d)
// bound. The workload comes through the registry's capability gate
// (the mesh adapter preserves the reflection-clamped L1 sampling).
func E9MeshLocality(o Options) *metrics.Table {
	o = o.withDefaults()
	n := 128
	if o.Quick {
		n = 64
	}
	b := mustBuild("mesh", topology.Params{N: n})
	g := b.Graph.(*mesh.Grid)
	t := metrics.NewTable(
		fmt.Sprintf("E9 (Thm 3.3) locality on the %dx%d mesh", n, n),
		"d", "phase rounds(mean)", "phase/d", "step cost(mean)", "step/d", "bound 6d")
	ds := []int{4, 8, 16, 32}
	if !o.Quick {
		ds = append(ds, 64)
	}
	for _, d := range ds {
		phase := make([]int, 0, o.Trials)
		step := make([]int, 0, o.Trials)
		for trial := 0; trial < o.Trials; trial++ {
			seed := o.Seed + uint64(trial)
			pkts, err := workload.Generate("local", b, workload.Params{D: d}, nil, seed)
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			opts := mesh.Options{Seed: seed * 3, LocalityBound: d, SliceRows: maxInt(1, d/4)}
			s := mesh.Route(g, pkts, opts)
			phase = append(phase, s.Rounds)
			// Emulated step: request leg + reply leg.
			reply := make([]*packet.Packet, len(pkts))
			for i, p := range pkts {
				reply[i] = packet.New(i, p.Dst, p.Src, packet.Transit)
			}
			opts.Seed = seed * 11
			s2 := mesh.Route(g, reply, opts)
			step = append(step, s.Rounds+s2.Rounds)
		}
		t.AddRow(fmt.Sprintf("%d", d),
			fmtF(mathx.MeanInts(phase)),
			fmtF(mathx.MeanInts(phase)/float64(d)),
			fmtF(mathx.MeanInts(step)),
			fmtF(mathx.MeanInts(step)/float64(d)),
			fmt.Sprintf("%d", 6*d))
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E10QueueSizes ablates the queueing discipline (§3.4): furthest-
// destination-first vs FIFO on random permutations, reporting max
// queue occupancy and completion time — the sweep runner's
// discipline axis on the mesh family.
func E10QueueSizes(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E10 (§3.4) queue discipline ablation on the mesh",
		"n", "discipline", "rounds(mean)", "rounds(max)", "maxQ")
	ns := []int{32, 64, 128}
	if o.Quick {
		ns = []int{32, 64}
	}
	var topos []scenario.TopoRef
	for _, n := range ns {
		topos = append(topos, scenario.TopoRef{Family: "mesh", N: n})
	}
	results := mustSweep(scenario.Spec{
		Topologies:  topos,
		Workloads:   []scenario.WorkRef{{Name: "perm"}},
		Disciplines: []string{"furthest", "fifo"},
		Trials:      o.Trials, Seed: o.Seed,
	})
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%d", intSqrt(r.Nodes)), r.Discipline,
			fmtF(r.RoundsMean),
			fmt.Sprintf("%d", r.RoundsMax),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// intSqrt returns the integer square root of a perfect square.
func intSqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// E11Rehash reproduces §2.1's rehashing claims: with the proper
// degree S = cL the rehash never fires across hundreds of steps on a
// healthy network, while a deliberately tiny network with a tight
// threshold shows the machinery working and its cost being charged.
func E11Rehash(o Options) *metrics.Table {
	o = o.withDefaults()
	steps := 200
	if o.Quick {
		steps = 40
	}
	t := metrics.NewTable("E11 (§2.1) rehash frequency",
		"network", "threshold cL", "steps", "rehashes", "hash bits")
	for _, cfg := range []struct {
		name   string
		net    emul.Network
		factor int
	}{
		{"star n=5 (healthy)", starLeveledNet(5), 4},
		{"star n=6 (healthy)", starLeveledNet(6), 4},
		{"star n=3 (tight threshold)", starLeveledNet(3), 1},
	} {
		e := mustEmul(cfg.net, emul.Config{
			Memory:         1 << 22,
			Seed:           o.Seed,
			OverloadFactor: cfg.factor,
		})
		for s := 0; s < steps; s++ {
			e.RouteRequests(workload.RandomStep(cfg.net.Nodes(), 1<<22, s%2 == 0, o.Seed+uint64(s)))
		}
		t.AddRow(cfg.name,
			fmt.Sprintf("%d", cfg.factor*cfg.net.Diameter()),
			fmt.Sprintf("%d", steps),
			fmt.Sprintf("%d", e.Rehashes()),
			fmt.Sprintf("%d", e.HashBits()))
	}
	return t
}

func starLeveledNet(n int) emul.Network {
	return registryNet("star", topology.Params{N: n})
}

// E12SortVsRoute reproduces §2.2.1's remark that sorting-based
// (Batcher-style) routing costs many times the network diameter:
// shearsort permutation routing vs the three-stage randomized
// algorithm.
func E12SortVsRoute(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E12 (§2.2.1) deterministic sorting-based routing vs randomized",
		"n", "shearsort rounds", "three-stage rounds(mean)", "ratio")
	ns := []int{16, 32, 64, 128}
	if o.Quick {
		ns = []int{16, 32}
	}
	for _, n := range ns {
		g := mesh.New(n)
		sortRounds := mesh.SortRoute(g, workload.Permutation(g.Nodes(), packet.Transit, o.Seed))
		rounds := make([]int, 0, o.Trials)
		for trial := 0; trial < o.Trials; trial++ {
			seed := o.Seed + uint64(trial)
			pkts := workload.Permutation(g.Nodes(), packet.Transit, seed)
			s := mesh.Route(g, pkts, mesh.Options{Seed: seed})
			rounds = append(rounds, s.Rounds)
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", sortRounds),
			fmtF(mathx.MeanInts(rounds)),
			fmtF(float64(sortRounds)/mathx.MeanInts(rounds)))
	}
	return t
}

// CrossFamilySizes picks a comparable size (a few thousand nodes, or
// a few hundred in quick mode) for each registered family so the E14
// rounds/diam comparison is apples-to-apples. Families registered
// without an entry fall back to their default parameters. The E14
// benchmark (bench_test.go) uses the same table, so the table and
// the benchmark always price identical configurations.
func CrossFamilySizes(quick bool) map[string]topology.Params {
	if quick {
		return map[string]topology.Params{
			"star":      {N: 5},       // 120
			"pancake":   {N: 5},       // 120
			"ttree":     {N: 5},       // 120
			"shuffle":   {N: 4},       // 256
			"debruijn":  {N: 8, K: 2}, // 256
			"hypercube": {N: 8},       // 256
			"torus":     {N: 4, K: 4}, // 256
			"mesh":      {N: 16},      // 256
			"butterfly": {N: 8},       // 256 rows
		}
	}
	return map[string]topology.Params{
		"star":      {N: 7},        // 5040
		"pancake":   {N: 7},        // 5040
		"ttree":     {N: 7},        // 5040
		"shuffle":   {N: 5},        // 3125
		"debruijn":  {N: 12, K: 2}, // 4096
		"hypercube": {N: 12},       // 4096
		"torus":     {N: 8, K: 4},  // 4096
		"mesh":      {N: 64},       // 4096
		"butterfly": {N: 12},       // 4096 rows
	}
}

// registryTopos enumerates every registered family as a sweep
// reference at the comparable size table's parameters, routing on the
// leveled unrolling when one exists (the emulator's preference, as
// the paper's leveled-network theorems do). The degree column of E14
// comes back alongside, keyed by family.
func registryTopos(quick bool) ([]scenario.TopoRef, map[string]string) {
	sizes := CrossFamilySizes(quick)
	var topos []scenario.TopoRef
	degrees := make(map[string]string)
	for _, name := range topology.Names() {
		p := sizes[name]
		b := mustBuild(name, p)
		topos = append(topos, scenario.TopoRef{Family: name, N: p.N, K: p.K, Leveled: b.Spec != nil})
		if b.Graph != nil {
			degrees[name] = fmt.Sprintf("%d", maxDegree(b.Graph))
		} else {
			degrees[name] = fmt.Sprintf("%d", b.Spec.Degree())
		}
	}
	return topos, degrees
}

// E14CrossFamily prices permutation routing across every family in
// the topology registry at comparable sizes, reporting rounds/diam —
// the paper's claim that the two-phase framework is topology-generic:
// routing time stays Õ(diameter) whichever network family carries the
// traffic. Families with a leveled unrolling route via Algorithm 2.1
// on it; the rest route via Algorithm 2.2 on the graph. A family
// registered tomorrow joins the sweep with no edits here.
func E14CrossFamily(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E14 (framework) cross-family permutation routing at comparable sizes",
		"family", "network", "N", "degree", "diam", "view", "rounds(mean)", "rounds(max)", "rounds/diam", "maxQ")
	topos, degrees := registryTopos(o.Quick)
	results := mustSweep(scenario.Spec{
		Topologies: topos,
		Workloads:  []scenario.WorkRef{{Name: "perm"}},
		Trials:     o.Trials, Seed: o.Seed,
	})
	for _, r := range results {
		t.AddRow(r.Family,
			r.Topology,
			fmt.Sprintf("%d", r.Nodes),
			degrees[r.Family],
			fmt.Sprintf("%d", r.Diameter),
			r.View,
			fmtF(r.RoundsMean),
			fmt.Sprintf("%d", r.RoundsMax),
			fmtF(r.RoundsPerDiam),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// E16ScenarioMatrix prices every registered topology family against
// every applicable registered workload generator — the full
// cross-product of the two registries, gated by the workload
// capability checks (SkipIncompatible drops pairs like bitrev on a
// factorial-sized family). A family or generator registered tomorrow
// appears in this table with no edits here. Sizes are the quick
// comparable table regardless of o.Quick: the matrix is wide, so each
// cell stays small.
func E16ScenarioMatrix(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E16 (registries) every family x every applicable workload",
		"family", "workload", "class", "N", "view", "rounds(mean)", "rounds/diam", "maxQ")
	topos, _ := registryTopos(true)
	var works []scenario.WorkRef
	for _, name := range workload.Names() {
		works = append(works, scenario.WorkRef{Name: name})
	}
	results := mustSweep(scenario.Spec{
		Topologies:       topos,
		Workloads:        works,
		Trials:           o.Trials,
		Seed:             o.Seed,
		SkipIncompatible: true,
	})
	for _, r := range results {
		gen, _ := workload.Lookup(r.Workload)
		t.AddRow(r.Family,
			r.Workload,
			gen.Class.String(),
			fmt.Sprintf("%d", r.Nodes),
			r.View,
			fmtF(r.RoundsMean),
			fmtF(r.RoundsPerDiam),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// E17EmulationMatrix prices Theorems 2.5/2.6 over the whole grid: one
// emulated PRAM step (request routing, read replies, rehash charges)
// on every registered topology family × every single-step access
// pattern, in both emulation modes — erew (exclusive accesses, Thm
// 2.5) and crcw (combining enabled, Thm 2.6). The mode axis gates
// pairs the way the PRAM does: many-one patterns are concurrent
// access and only run on crcw cells, h-relations have no single-step
// form at all. cost/diam is the theorems' bound; it stays a modest
// constant on every family because emulation cost tracks the
// diameter, not the family identity. Like E16, sizes are the quick
// comparable table regardless of o.Quick: the matrix is wide, so each
// cell stays small.
func E17EmulationMatrix(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E17 (Thm 2.5/2.6) emulated PRAM step: every family x every access pattern x mode",
		"family", "workload", "mode", "N", "diam", "view", "cost(mean)", "cost/diam", "merges", "rehashes", "maxQ")
	topos, _ := registryTopos(true)
	var works []scenario.WorkRef
	for _, name := range workload.Names() {
		works = append(works, scenario.WorkRef{Name: name})
	}
	results := mustSweep(scenario.Spec{
		Topologies:       topos,
		Workloads:        works,
		Modes:            []string{scenario.ModeEREW, scenario.ModeCRCW},
		Trials:           o.Trials,
		Seed:             o.Seed,
		SkipIncompatible: true,
	})
	for _, r := range results {
		t.AddRow(r.Family,
			r.Workload,
			r.Mode,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Diameter),
			r.View,
			fmtF(r.RoundsMean),
			fmtF(r.RoundsPerDiam),
			fmt.Sprintf("%d", r.Merges),
			fmt.Sprintf("%d", r.Rehashes),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// E18Latency is the link model E18 dials into its event cells: unit
// base latency with two ticks of uniform jitter — enough asynchrony
// to break the synchronous-round lockstep without dominating the
// routing time itself.
func E18Latency() *scenario.LatencySpec {
	return &scenario.LatencySpec{Model: "jitter", Jitter: 2}
}

// E18FaultLevels is the canonical fault ladder of E18: a fault-free
// level (isolating pure asynchrony against the synchronous baseline),
// a moderate level and a harsh one combining transient link outages,
// straggler nodes and packet loss with retransmission.
func E18FaultLevels() []scenario.FaultSpec {
	return []scenario.FaultSpec{
		{Name: "none"},
		{Name: "moderate", LinkFailure: 0.05, Straggler: 0.1, Drop: 0.05},
		{Name: "harsh", LinkFailure: 0.2, Straggler: 0.25, StragglerFactor: 4, Drop: 0.15},
	}
}

// E18AsynchronyMatrix prices routing under asynchrony: every
// registered family × a permutation and a many-one workload, on the
// synchronous round engine (the baseline every other experiment
// reports) and on the asynchronous event engine at each fault level
// of the E18 ladder. delivered/diam is the asynchronous counterpart
// of rounds/diam — the last delivery tick over the diameter — and the
// paper's Õ(diameter) bound degrades gracefully along the ladder:
// jitter alone costs a small constant factor, and even the harsh
// level (outages + stragglers + 15% loss) stays diameter-tracking,
// with the retransmit column pricing the loss recovery explicitly.
// Like E16/E17, sizes are the quick comparable table: the matrix is
// wide, so each cell stays small.
func E18AsynchronyMatrix(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E18 (asynchrony) event engine vs synchronous rounds: every family x workload x fault level",
		"family", "workload", "engine", "fault", "N", "diam", "delivered(mean)", "delivered/diam", "retransmits", "maxQ")
	topos, _ := registryTopos(true)
	results := mustSweep(scenario.Spec{
		Topologies:       topos,
		Workloads:        []scenario.WorkRef{{Name: "perm"}, {Name: "khot"}},
		Engines:          []string{scenario.EngineRound, scenario.EngineEvent},
		Latency:          E18Latency(),
		Faults:           E18FaultLevels(),
		Trials:           o.Trials,
		Seed:             o.Seed,
		SkipIncompatible: true,
	})
	for _, r := range results {
		eng, fault := r.Engine, r.Fault
		if eng == "" {
			eng = scenario.EngineRound
			fault = "-"
		}
		t.AddRow(r.Family,
			r.Workload,
			eng,
			fault,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Diameter),
			fmtF(r.RoundsMean),
			fmtF(r.RoundsPerDiam),
			fmt.Sprintf("%d", r.Retransmits),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// E19Sizes is the scale ladder E19 climbs, split at the engine's
// flat-table bound. The ab rungs still fit the flat dense tables
// (every link key below 2^24), so they price the dense-vs-paged A/B
// directly via the sweep's paged axis; the ceiling rungs grow until
// the de Bruijn key space crosses the flat bound and the engine pages
// on its own. Every rung routes the point-to-point graph view: the
// leveled de Bruijn unrolling multiplies the key space by its level
// count, which would page the A/B rungs too and leave nothing dense
// to compare against. Quick sizes shrink every rung to unit-test
// scale (where nothing pages naturally and only the forced axis
// exercises the paged path). The E19 benchmark (bench_test.go) uses
// the same ladder, so the table and the benchmark price identical
// configurations.
func E19Sizes(quick bool) (ab, ceiling []scenario.TopoRef) {
	if quick {
		return []scenario.TopoRef{
				{Family: "debruijn", N: 14, K: 2}, // 16384
				{Family: "torus", N: 128, K: 2},   // 16384
			}, []scenario.TopoRef{
				{Family: "debruijn", N: 16, K: 2}, // 65536
				{Family: "torus", N: 256, K: 2},   // 65536
			}
	}
	return []scenario.TopoRef{
			{Family: "debruijn", N: 20, K: 2}, // 1048576
			{Family: "torus", N: 512, K: 2},   // 262144
		}, []scenario.TopoRef{
			{Family: "debruijn", N: 22, K: 2}, // 4194304, dense at the flat bound
			{Family: "debruijn", N: 24, K: 2}, // 16777216, pages naturally
			{Family: "torus", N: 1024, K: 2},  // 1048576
		}
}

// E19ScaleCeiling prices million-node-and-beyond routing — the scale
// the engine's paged tables and 64-bit link keys exist for. Two
// sweeps: an A/B at sizes where the flat dense tables still fit,
// routing each configuration once dense and once on the forced paged
// path (identical rounds by construction; the B/node column prices
// what paging costs), and a ceiling ladder that grows de Bruijn to
// 16.7M nodes — past the flat 2^24-key bound, where the engine pages
// on its own — alongside a 2^20-node torus. rounds/diam staying flat
// up the ladder is the paper's Õ(diameter) claim surviving three
// orders of magnitude of scale; B/node staying flat is the engine's
// footprint claim (memory linear in the network, not the key space).
// Trials are forced to 1 and Workers to [1]: the top rung routes 16.7M
// packets in one trial (~19 minutes of wall clock on one core; the
// full ladder is ~30), and variance is not what this table measures.
func E19ScaleCeiling(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E19 (scale) million-node ceiling: dense vs paged tables up the ladder",
		"family", "network", "N", "tables", "state", "diam", "rounds(mean)", "rounds/diam", "table(B)", "arena(B)", "B/node", "maxQ")
	ab, ceiling := E19Sizes(o.Quick)
	results := mustSweep(scenario.Spec{
		Topologies: ab,
		Workloads:  []scenario.WorkRef{{Name: "perm"}},
		Paged:      []bool{false, true},
		Workers:    []int{1},
		Trials:     1, Seed: o.Seed,
	})
	results = append(results, mustSweep(scenario.Spec{
		Topologies: ceiling,
		Workloads:  []scenario.WorkRef{{Name: "perm"}},
		Workers:    []int{1},
		Trials:     1, Seed: o.Seed,
	})...)
	for _, r := range results {
		tables := "auto"
		if r.Paged {
			tables = "forced-paged"
		}
		t.AddRow(r.Family,
			r.Topology,
			fmt.Sprintf("%d", r.Nodes),
			tables,
			r.State,
			fmt.Sprintf("%d", r.Diameter),
			fmtF(r.RoundsMean),
			fmtF(r.RoundsPerDiam),
			fmt.Sprintf("%d", r.TableBytes),
			fmt.Sprintf("%d", r.ArenaBytes),
			fmtF(r.BPerNode),
			fmt.Sprintf("%d", r.MaxQueue))
	}
	return t
}

// E20BuildCache prices the cross-cell build cache and buffer pools:
// one fresh cache serves the same cross-family sweep twice — the cold
// pass constructs every topology, the warm pass adopts the cached
// builds plus the pooled arenas and engine tables — and each row
// records one pass's cache traffic, build time, end-to-end time and
// heap allocation per cell. The warm row's misses column must read 0,
// and the warm result lines are asserted field-identical to the cold
// pass's (the bit-identity the cache and pools guarantee). The cells/
// hits/misses/evict columns are deterministic; the time and KB
// columns are wall-clock and heap measurements that vary run to run.
func E20BuildCache(o Options) *metrics.Table {
	o = o.withDefaults()
	topos, _ := registryTopos(o.Quick)
	spec := scenario.Spec{
		Name:             "e20-cache",
		Topologies:       topos,
		Workloads:        []scenario.WorkRef{{Name: "perm"}, {Name: "khot", Hot: 4}},
		Workers:          []int{1},
		Trials:           o.Trials,
		Seed:             o.Seed,
		SkipIncompatible: true,
	}
	cache := buildcache.New(buildcache.DefaultBudget)
	t := metrics.NewTable("E20 (cache) cold vs warm sweep through the build cache and buffer pools",
		"pass", "cells", "hits", "misses", "evict", "build(ms)", "sweep(ms)", "KB/cell")
	var cold []scenario.Result
	for _, pass := range []string{"cold", "warm"} {
		before := cache.Stats()
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		results, err := scenario.RunContextOptions(context.Background(), spec, scenario.RunOptions{Cache: cache})
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		switch {
		case pass == "cold":
			cold = results
		case len(results) != len(cold):
			panic(fmt.Sprintf("experiments: warm pass priced %d cells, cold %d", len(results), len(cold)))
		default:
			for i := range results {
				if !reflect.DeepEqual(results[i], cold[i]) {
					panic(fmt.Sprintf("experiments: warm result drifted at %s", results[i].Scenario))
				}
			}
		}
		d := cache.Stats().Delta(before)
		t.AddRow(pass,
			fmt.Sprintf("%d", len(results)),
			fmt.Sprintf("%d", d.Hits),
			fmt.Sprintf("%d", d.Misses),
			fmt.Sprintf("%d", d.Evictions),
			fmtF(float64(d.BuildNS)/1e6),
			fmtF(float64(elapsed.Nanoseconds())/1e6),
			fmtF(float64(m1.TotalAlloc-m0.TotalAlloc)/float64(len(results))/1024))
	}
	return t
}

// E21AdversarialBounds hunts worst-case inputs on every registered
// family and reports the observed worst against the theorem bound —
// the tail the paper's with-high-probability statements hide. Per
// family, the three internal/advsearch strategies (seed sweeps with
// full distributions, structured adversaries like adv:revcomp, greedy
// permutation search) each contribute their worst finding; the bound
// column is C×diameter with the search default C, and a "no" in the
// within column is an input beating the theorem constant. A family
// registered tomorrow is hunted with no edits here.
func E21AdversarialBounds(o Options) *metrics.Table {
	o = o.withDefaults()
	topos, _ := registryTopos(true)
	spec := advsearch.Spec{
		Name:     "e21",
		Families: topos,
		Seeds:    32,
		Iters:    40,
		Trials:   2,
		Seed:     o.Seed,
	}
	if o.Quick {
		spec.Seeds, spec.Iters = 8, 6
	}
	rep, err := advsearch.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	t := metrics.NewTable("E21 (adversarial) observed-worst inputs vs the theorem bound per family",
		"family", "N", "diam", "strategy", "input", "rounds(worst)", "rounds/diam", "bound", "within", "maxQ")
	for _, f := range rep.Worst() {
		t.AddRow(f.Family,
			fmt.Sprintf("%d", f.Nodes),
			fmt.Sprintf("%d", f.Diameter),
			f.Strategy,
			fmt.Sprintf("%s@%d", f.Workload, f.Seed),
			fmt.Sprintf("%d", f.Rounds),
			fmtF(f.RoundsPerDiam),
			fmtF(f.Bound),
			fmt.Sprintf("%t", f.WithinBound),
			fmt.Sprintf("%d", f.MaxQ))
	}
	return t
}

// maxDegree samples nodes for the graph's characteristic (maximum)
// degree — node 0 alone would report a mesh corner as degree 2.
func maxDegree(g topology.Graph) int {
	step := 1
	if g.Nodes() > 4096 {
		step = g.Nodes() / 4096
	}
	max := 0
	for u := 0; u < g.Nodes(); u += step {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// All runs every experiment and returns the tables in order.
func All(o Options) []*metrics.Table {
	return []*metrics.Table{
		E1LeveledPermutation(o),
		E2StarRouting(o),
		E3ShuffleRouting(o),
		E4HashLoad(o),
		E5PRAMStepLeveled(o),
		E6StarVsHypercube(o),
		E7MeshRouting(o),
		E8MeshEmulation(o),
		E9MeshLocality(o),
		E10QueueSizes(o),
		E11Rehash(o),
		E12SortVsRoute(o),
		E14CrossFamily(o),
		E16ScenarioMatrix(o),
		E17EmulationMatrix(o),
		E18AsynchronyMatrix(o),
		E19ScaleCeiling(o),
		E20BuildCache(o),
		E21AdversarialBounds(o),
	}
}
