package packet

import (
	"sync"
	"unsafe"
)

// arenaSlabSize is the number of packets per slab: large enough that
// slab bookkeeping vanishes, small enough that a run of a few hundred
// packets does not overshoot badly.
const arenaSlabSize = 1024

// Arena is a slab allocator for Packets. New hands out pointers into
// contiguous fixed-size slabs instead of scattering one heap object
// per packet, so a routing run's packets are cache-adjacent and cost
// the garbage collector a handful of slabs rather than millions of
// pointers to trace. Packets are index-addressed: the i-th packet
// allocated since the last Reset is At(i).
//
// Reset recycles every slab for the next run without freeing: the
// returned pointers remain valid but their packets will be
// re-initialized (including their Path/Children scratch capacity) as
// New hands the slots out again, so a caller must not hold packets
// across a Reset. An Arena is not safe for concurrent use; the
// simulators allocate at injection time only, which is single-
// threaded by construction.
type Arena struct {
	slabs [][]Packet
	n     int
	// hw is the high-water allocation count since the arena left the
	// pool (or was constructed): Bytes prices this run's peak, not
	// whatever larger shape a pooled arena served before, so pooled
	// reuse cannot leak into byte-reproducible sweep artifacts.
	hw int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// New allocates a packet travelling from src to dst, injected at
// round 0 — packet.New, but from the arena's slabs. Recycled slots
// keep the capacity of their Path, Children and CombinedAt slices, so
// a run that records paths stops allocating per-hop once the arena
// has been through one Reset cycle at the same shape.
func (a *Arena) New(id, src, dst int, kind Kind) *Packet {
	slab, slot := a.n/arenaSlabSize, a.n%arenaSlabSize
	if slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Packet, arenaSlabSize))
	}
	a.n++
	if a.n > a.hw {
		a.hw = a.n
	}
	p := &a.slabs[slab][slot]
	path, children, combinedAt := p.Path[:0], p.Children[:0], p.CombinedAt[:0]
	*p = Packet{ID: id, Src: src, Dst: dst, Kind: kind, Arrived: -1}
	p.Path, p.Children, p.CombinedAt = path, children, combinedAt
	return p
}

// Len returns the number of packets allocated since the last Reset.
func (a *Arena) Len() int { return a.n }

// At returns the i-th packet allocated since the last Reset.
func (a *Arena) At(i int) *Packet {
	if i < 0 || i >= a.n {
		panic("packet: Arena.At index out of range")
	}
	return &a.slabs[i/arenaSlabSize][i%arenaSlabSize]
}

// Reset recycles the arena: all slabs are retained and the next New
// reuses them from the start. Every packet handed out before the
// Reset is invalidated (its memory will be reused).
func (a *Arena) Reset() { a.n = 0 }

// Bytes returns the slab footprint of this arena's use: the slabs
// covering its high-water allocation count since it was constructed
// or checked out of the pool (Reset preserves the high-water mark, so
// a multi-trial run reports its peak). It deliberately excludes any
// larger slab set a pooled arena retains from earlier runs, as well
// as the backing arrays of per-packet Path/Children/CombinedAt
// slices. It is the packet-side half of a run's memory pricing
// (engine.MemStats holds the link-table half).
func (a *Arena) Bytes() int64 {
	slabs := (a.hw + arenaSlabSize - 1) / arenaSlabSize
	return int64(slabs) * arenaSlabSize * int64(unsafe.Sizeof(Packet{}))
}

// arenaPool recycles arenas across sweep cells and daemon jobs: a
// warm cell reuses the slabs (and per-packet scratch capacity) its
// predecessors grew instead of re-allocating them.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// GetArena checks an arena out of the process-wide pool, reset to an
// empty state: zero length and a zero high-water mark, so Bytes
// prices only the checkout's own use. Slab memory and recycled
// per-packet scratch capacity carry over — that reuse is the point —
// but every slot is fully re-initialized by New before it is handed
// out, so results cannot depend on what ran before.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.n, a.hw = 0, 0
	return a
}

// PutArena returns an arena to the pool. The caller must no longer
// hold any packet allocated from it.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.Put(a)
}

// NewIn allocates from a when non-nil and from the heap otherwise,
// letting workload generators take an optional arena without
// branching at every call site.
func NewIn(a *Arena, id, src, dst int, kind Kind) *Packet {
	if a == nil {
		return New(id, src, dst, kind)
	}
	return a.New(id, src, dst, kind)
}
