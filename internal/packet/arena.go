package packet

import "unsafe"

// arenaSlabSize is the number of packets per slab: large enough that
// slab bookkeeping vanishes, small enough that a run of a few hundred
// packets does not overshoot badly.
const arenaSlabSize = 1024

// Arena is a slab allocator for Packets. New hands out pointers into
// contiguous fixed-size slabs instead of scattering one heap object
// per packet, so a routing run's packets are cache-adjacent and cost
// the garbage collector a handful of slabs rather than millions of
// pointers to trace. Packets are index-addressed: the i-th packet
// allocated since the last Reset is At(i).
//
// Reset recycles every slab for the next run without freeing: the
// returned pointers remain valid but their packets will be
// re-initialized (including their Path/Children scratch capacity) as
// New hands the slots out again, so a caller must not hold packets
// across a Reset. An Arena is not safe for concurrent use; the
// simulators allocate at injection time only, which is single-
// threaded by construction.
type Arena struct {
	slabs [][]Packet
	n     int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// New allocates a packet travelling from src to dst, injected at
// round 0 — packet.New, but from the arena's slabs. Recycled slots
// keep the capacity of their Path, Children and CombinedAt slices, so
// a run that records paths stops allocating per-hop once the arena
// has been through one Reset cycle at the same shape.
func (a *Arena) New(id, src, dst int, kind Kind) *Packet {
	slab, slot := a.n/arenaSlabSize, a.n%arenaSlabSize
	if slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]Packet, arenaSlabSize))
	}
	a.n++
	p := &a.slabs[slab][slot]
	path, children, combinedAt := p.Path[:0], p.Children[:0], p.CombinedAt[:0]
	*p = Packet{ID: id, Src: src, Dst: dst, Kind: kind, Arrived: -1}
	p.Path, p.Children, p.CombinedAt = path, children, combinedAt
	return p
}

// Len returns the number of packets allocated since the last Reset.
func (a *Arena) Len() int { return a.n }

// At returns the i-th packet allocated since the last Reset.
func (a *Arena) At(i int) *Packet {
	if i < 0 || i >= a.n {
		panic("packet: Arena.At index out of range")
	}
	return &a.slabs[i/arenaSlabSize][i%arenaSlabSize]
}

// Reset recycles the arena: all slabs are retained and the next New
// reuses them from the start. Every packet handed out before the
// Reset is invalidated (its memory will be reused).
func (a *Arena) Reset() { a.n = 0 }

// Bytes returns the slab footprint: the memory held by every slab ever
// allocated (slabs survive Reset), not counting the backing arrays of
// per-packet Path/Children/CombinedAt slices. It is the packet-side
// half of a run's memory pricing (engine.MemStats holds the
// link-table half).
func (a *Arena) Bytes() int64 {
	return int64(len(a.slabs)) * arenaSlabSize * int64(unsafe.Sizeof(Packet{}))
}

// NewIn allocates from a when non-nil and from the heap otherwise,
// letting workload generators take an optional arena without
// branching at every call site.
func NewIn(a *Arena, id, src, dst int, kind Kind) *Packet {
	if a == nil {
		return New(id, src, dst, kind)
	}
	return a.New(id, src, dst, kind)
}
