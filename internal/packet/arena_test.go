package packet

import "testing"

func TestArenaAllocatesDistinctPackets(t *testing.T) {
	a := NewArena()
	const n = 3000 // spans several slabs
	seen := make(map[*Packet]bool, n)
	for i := 0; i < n; i++ {
		p := a.New(i, i, n-i, ReadRequest)
		if p.ID != i || p.Src != i || p.Dst != n-i || p.Kind != ReadRequest || p.Arrived != -1 {
			t.Fatalf("packet %d mis-initialized: %+v", i, p)
		}
		if seen[p] {
			t.Fatalf("packet %d aliases an earlier allocation", i)
		}
		seen[p] = true
	}
	if a.Len() != n {
		t.Fatalf("Len() = %d, want %d", a.Len(), n)
	}
}

func TestArenaAtIsIndexAddressed(t *testing.T) {
	a := NewArena()
	ptrs := make([]*Packet, 2500)
	for i := range ptrs {
		ptrs[i] = a.New(i, 0, 0, Transit)
	}
	for i := range ptrs {
		if a.At(i) != ptrs[i] {
			t.Fatalf("At(%d) != pointer returned by New", i)
		}
	}
}

// TestArenaReuseAcrossRuns is the per-run recycling property: after a
// Reset, New hands back the same slots fully re-initialized, with the
// scratch capacity of Path/Children preserved so steady-state runs
// stop allocating.
func TestArenaReuseAcrossRuns(t *testing.T) {
	a := NewArena()
	const n = 1500
	firstRun := make([]*Packet, n)
	for i := 0; i < n; i++ {
		p := a.New(i, i, i+1, ReadRequest)
		p.Hops, p.Delay, p.Addr, p.Value = 9, 9, 9, 9
		p.RecordPath(i)
		p.RecordPath(i + 1)
		p.Combine(a.New(0, 0, 0, ReadRequest), 1)
		firstRun[i] = p
		i++ // the Combine child consumed a slot
	}
	reused := a.Len()
	a.Reset()
	if a.Len() != 0 {
		t.Fatalf("Len() = %d after Reset", a.Len())
	}
	for i := 0; i < reused; i++ {
		p := a.New(i, 1, 2, Transit)
		if p != a.At(i) {
			t.Fatalf("packet %d not recycled in place", i)
		}
		if p.Hops != 0 || p.Delay != 0 || p.Addr != 0 || p.Value != 0 ||
			p.Arrived != -1 || p.Rand != nil {
			t.Fatalf("packet %d carries stale state after Reset: %+v", i, p)
		}
		if len(p.Path) != 0 || len(p.Children) != 0 || len(p.CombinedAt) != 0 {
			t.Fatalf("packet %d carries stale slices after Reset: %+v", i, p)
		}
	}
	// Third cycle at the same shape: recording into recycled capacity
	// must not allocate.
	a.Reset()
	if allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		for i := 0; i < reused; i++ {
			p := a.New(i, i, i+1, Transit)
			p.RecordPath(i)
			p.RecordPath(i + 1)
		}
	}); allocs != 0 {
		t.Fatalf("warm arena cycle allocated %.1f objects, want 0", allocs)
	}
}

func TestNewInNilArenaFallsBackToHeap(t *testing.T) {
	p := NewIn(nil, 3, 1, 2, WriteRequest)
	if p.ID != 3 || p.Src != 1 || p.Dst != 2 || p.Kind != WriteRequest || p.Arrived != -1 {
		t.Fatalf("heap fallback mis-initialized: %+v", p)
	}
	a := NewArena()
	if q := NewIn(a, 4, 0, 0, Transit); q != a.At(0) {
		t.Fatal("NewIn with arena did not allocate from it")
	}
}

func TestArenaAtPanicsOutOfRange(t *testing.T) {
	a := NewArena()
	a.New(0, 0, 0, Transit)
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) did not panic", i)
				}
			}()
			a.At(i)
		}()
	}
}
