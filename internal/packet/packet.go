// Package packet defines the unit of communication in every simulated
// interconnection network: a (source, destination) pair (§2.2.1 of the
// paper) carrying an optional PRAM memory request, together with the
// bookkeeping the simulators need (hop and delay counters for the
// queue-line lemma, the recorded path for reverse-path replies, and
// the combining tree of Theorem 2.6).
package packet

import (
	"fmt"

	"pramemu/internal/prng"
)

// Kind classifies what a packet is doing in the emulation. Pure
// routing experiments use Transit.
type Kind uint8

const (
	// Transit is a plain routing payload with no memory semantics.
	Transit Kind = iota
	// ReadRequest asks the destination memory module for Addr.
	ReadRequest
	// WriteRequest delivers Value to Addr at the destination module.
	WriteRequest
	// ReadReply carries the value of Addr back to the requester.
	ReadReply
	// WriteAck confirms a write back to the requester.
	WriteAck
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Transit:
		return "transit"
	case ReadRequest:
		return "read-req"
	case WriteRequest:
		return "write-req"
	case ReadReply:
		return "read-reply"
	case WriteAck:
		return "write-ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsRequest reports whether the packet flows processor -> memory module.
func (k Kind) IsRequest() bool { return k == ReadRequest || k == WriteRequest }

// IsReply reports whether the packet flows memory module -> processor.
func (k Kind) IsReply() bool { return k == ReadReply || k == WriteAck }

// Packet is one routable message. Simulators own all fields; the zero
// value is not useful — construct with New.
type Packet struct {
	// ID is unique within one routing run and breaks ties
	// deterministically in priority queue disciplines.
	ID int
	// Src and Dst are node identifiers in the simulated network.
	Src, Dst int
	// Kind, Addr and Value carry the PRAM memory operation, if any.
	Kind  Kind
	Addr  uint64
	Value int64
	// Proc is the PRAM processor on whose behalf the packet travels
	// (equal to Src for requests; preserved through combining so every
	// requester receives its reply, cf. the direction bits of Thm 2.6).
	Proc int

	// Phase is the routing phase the packet is in (1 = toward the
	// random intermediate node, 2 = toward the true destination).
	Phase int
	// Inter is the random intermediate destination of two-phase
	// routing (Valiant), chosen at injection time.
	Inter int
	// Stage is network-specific sub-state (e.g. the mesh's three
	// stages within one routing phase).
	Stage int
	// Row2 is the mesh's stage-1 random row choice.
	Row2 int
	// At is the node the packet currently occupies (maintained by
	// simulators that need position-dependent priorities).
	At int

	// Hops counts links traversed; Delay counts rounds spent waiting
	// in queues. Their sum plus injection round is the arrival time
	// (the "number of steps taken by a packet", §2.2.1).
	Hops  int
	Delay int
	// Injected is the simulation round at which the packet entered
	// the network; Arrived is set on delivery (-1 until then).
	Injected int
	Arrived  int
	// EnqueuedAt is the round at which the packet entered its current
	// queue; simulators use it to account delay lazily on dequeue.
	EnqueuedAt int

	// Path records the node identifiers visited, when the simulator
	// has reply-retracing or combining enabled. Path[0] == Src.
	Path []int32

	// Rand is the packet's private random stream ("flipping a d-sided
	// coin", Algorithm 2.1). Deriving it from the packet ID keeps
	// sequential and parallel simulation byte-identical.
	Rand *prng.Source

	// Children holds packets merged into this one by CRCW combining
	// (Theorem 2.6); CombinedAt is the index into the HOST's Path
	// (this packet's) at which the
	// merge happened, so replies can fan back out at that node.
	Children   []*Packet
	CombinedAt []int
}

// New returns a packet travelling from src to dst, injected at round 0.
func New(id, src, dst int, kind Kind) *Packet {
	return &Packet{ID: id, Src: src, Dst: dst, Kind: kind, Arrived: -1}
}

// RecordPath appends node to the packet's recorded path.
func (p *Packet) RecordPath(node int) { p.Path = append(p.Path, int32(node)) }

// Combine absorbs q into p (both must be requests for the same Addr
// headed to the same Dst). at is the index into p's path of the node
// performing the merge. The paper's Theorem 2.6 stores log d direction
// bits per merge; we store the child packet itself, whose own Path
// plays the role of the accumulated direction bits.
func (p *Packet) Combine(q *Packet, at int) {
	p.Children = append(p.Children, q)
	p.CombinedAt = append(p.CombinedAt, at)
}

// TotalCombined returns the number of original requests represented by
// p, including itself and all transitively combined children.
func (p *Packet) TotalCombined() int {
	total := 1
	for _, c := range p.Children {
		total += c.TotalCombined()
	}
	return total
}

// Steps returns hops + queueing delay, the per-packet cost measure of
// §2.2.1 ("the number of steps taken by a packet x is simply the sum
// of the delay of x and the length of the path of x").
func (p *Packet) Steps() int { return p.Hops + p.Delay }

// String implements fmt.Stringer for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d %s %d->%d phase=%d addr=%d}",
		p.ID, p.Kind, p.Src, p.Dst, p.Phase, p.Addr)
}
