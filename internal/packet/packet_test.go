package packet

import (
	"strings"
	"testing"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k              Kind
		isReq, isRep   bool
		stringContains string
	}{
		{Transit, false, false, "transit"},
		{ReadRequest, true, false, "read-req"},
		{WriteRequest, true, false, "write-req"},
		{ReadReply, false, true, "read-reply"},
		{WriteAck, false, true, "write-ack"},
	}
	for _, c := range cases {
		if c.k.IsRequest() != c.isReq {
			t.Errorf("%v.IsRequest() = %v", c.k, c.k.IsRequest())
		}
		if c.k.IsReply() != c.isRep {
			t.Errorf("%v.IsReply() = %v", c.k, c.k.IsReply())
		}
		if !strings.Contains(c.k.String(), c.stringContains) {
			t.Errorf("%v.String() = %q", c.k, c.k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should print its numeric value")
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(7, 1, 2, ReadRequest)
	if p.ID != 7 || p.Src != 1 || p.Dst != 2 || p.Kind != ReadRequest {
		t.Fatalf("New populated wrong fields: %+v", p)
	}
	if p.Arrived != -1 {
		t.Fatalf("new packet must not be marked arrived: %d", p.Arrived)
	}
	if p.Steps() != 0 {
		t.Fatalf("fresh packet Steps() = %d", p.Steps())
	}
}

func TestSteps(t *testing.T) {
	p := New(0, 0, 1, Transit)
	p.Hops = 5
	p.Delay = 3
	if p.Steps() != 8 {
		t.Fatalf("Steps = %d, want 8", p.Steps())
	}
}

func TestRecordPath(t *testing.T) {
	p := New(0, 4, 9, Transit)
	for _, node := range []int{4, 6, 9} {
		p.RecordPath(node)
	}
	if len(p.Path) != 3 || p.Path[0] != 4 || p.Path[2] != 9 {
		t.Fatalf("Path = %v", p.Path)
	}
}

func TestCombineTree(t *testing.T) {
	root := New(0, 0, 5, ReadRequest)
	a := New(1, 1, 5, ReadRequest)
	b := New(2, 2, 5, ReadRequest)
	c := New(3, 3, 5, ReadRequest)
	a.Combine(b, 1) // b merged into a first
	root.Combine(a, 2)
	root.Combine(c, 3)
	if got := root.TotalCombined(); got != 4 {
		t.Fatalf("TotalCombined = %d, want 4", got)
	}
	if len(root.Children) != 2 || root.CombinedAt[0] != 2 || root.CombinedAt[1] != 3 {
		t.Fatalf("combine records wrong: %v %v", root.Children, root.CombinedAt)
	}
}

func TestStringFormat(t *testing.T) {
	p := New(3, 1, 2, WriteRequest)
	p.Addr = 42
	s := p.String()
	for _, want := range []string{"id=3", "1->2", "addr=42", "write-req"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
