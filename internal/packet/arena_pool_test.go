package packet

import (
	"testing"
	"unsafe"
)

const slabBytes = arenaSlabSize * int64(unsafe.Sizeof(Packet{}))

// TestArenaBytesIsHighWater pins the pricing contract: Bytes covers
// the peak allocation count since construction (Reset preserves it,
// so a multi-trial run reports its largest trial), rounded up to
// whole slabs.
func TestArenaBytesIsHighWater(t *testing.T) {
	a := NewArena()
	if a.Bytes() != 0 {
		t.Fatalf("empty arena Bytes = %d, want 0", a.Bytes())
	}
	for i := 0; i < arenaSlabSize+1; i++ {
		a.New(i, 0, 1, Transit)
	}
	if a.Bytes() != 2*slabBytes {
		t.Fatalf("Bytes = %d after slab+1 allocations, want 2 slabs = %d", a.Bytes(), 2*slabBytes)
	}
	// A smaller follow-up run must not shrink the report: the peak is
	// what the arena cost this checkout.
	a.Reset()
	a.New(0, 0, 1, Transit)
	if a.Bytes() != 2*slabBytes {
		t.Fatalf("Bytes = %d after Reset + 1 allocation, want retained peak %d", a.Bytes(), 2*slabBytes)
	}
}

// TestArenaPoolZeroesHighWater is the byte-reproducibility half of
// pooling: an arena that served a large run must price a small
// checkout as if freshly constructed, or pooled reuse would leak
// wall-clock history into sweep artifacts' arena_bytes fields.
func TestArenaPoolZeroesHighWater(t *testing.T) {
	a := GetArena()
	for i := 0; i < 3*arenaSlabSize; i++ {
		a.New(i, 0, 1, Transit)
	}
	grown := a.Bytes()
	if grown != 3*slabBytes {
		t.Fatalf("Bytes = %d, want 3 slabs = %d", grown, 3*slabBytes)
	}
	PutArena(a)
	b := GetArena()
	// The pool is process-wide, so b may or may not be a (another test
	// may have stocked it); either way the contract holds: zero length,
	// zero high-water, fresh pricing.
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Fatalf("pooled checkout: Len = %d, Bytes = %d, want 0, 0", b.Len(), b.Bytes())
	}
	b.New(0, 0, 1, Transit)
	if b.Bytes() != slabBytes {
		t.Fatalf("Bytes = %d after 1 allocation on pooled arena, want 1 slab = %d", b.Bytes(), slabBytes)
	}
	PutArena(b)
}

// TestArenaPoolReinitializesSlots: recycled slots must be field-reset
// by New (scratch capacity may carry over, contents must not).
func TestArenaPoolReinitializesSlots(t *testing.T) {
	a := GetArena()
	p := a.New(7, 1, 2, ReadRequest)
	p.Hops, p.Delay = 9, 9
	p.Path = append(p.Path, 1, 2, 3)
	PutArena(a)
	b := GetArena()
	q := b.New(0, 3, 4, Transit)
	if q.Hops != 0 || q.Delay != 0 || len(q.Path) != 0 || q.Arrived != -1 {
		t.Fatalf("pooled slot not reinitialized: %+v", q)
	}
	if q.ID != 0 || q.Src != 3 || q.Dst != 4 || q.Kind != Transit {
		t.Fatalf("pooled slot wrong identity: %+v", q)
	}
	PutArena(b)
}

// TestPutArenaNilSafe: error paths release unconditionally.
func TestPutArenaNilSafe(t *testing.T) {
	PutArena(nil)
}
