package emul

import (
	"testing"

	"pramemu/internal/mesh"
	"pramemu/internal/pram"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// registryNet builds a test network through the topology registry and
// the generic adapter (leveled view preferred, as the emulator does).
func registryNet(name string, p topology.Params) Network {
	b, err := topology.Build(name, p)
	if err != nil {
		panic(err)
	}
	net, err := NewTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	return net
}

func starNet(n int) Network { return registryNet("star", topology.Params{N: n}) }

func starDirect(n int) Network {
	b, err := topology.Build("star", topology.Params{N: n})
	if err != nil {
		panic(err)
	}
	net, err := NewDirectTopologyNetwork(b)
	if err != nil {
		panic(err)
	}
	return net
}

func shuffleNet(n int) Network { return registryNet("shuffle", topology.Params{N: n}) }

func cubeNet(k int) Network { return registryNet("hypercube", topology.Params{N: k}) }

func meshNet(n int) Network {
	return &MeshNetwork{G: mesh.New(n)}
}

// mustNew builds an emulator, failing the test process on config
// errors (all test configs are meant to be valid).
func mustNew(net Network, cfg Config) *Emulator {
	e, err := New(net, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

func TestNewRejectsDegenerateConfigs(t *testing.T) {
	net := starNet(4)
	for name, cfg := range map[string]Config{
		"no memory":     {Memory: 0},
		"too few addrs": {Memory: 5},
	} {
		if _, err := New(net, cfg); err == nil {
			t.Errorf("New(%s) should return an error", name)
		}
	}
}

// oversizedGraph is a fake point-to-point graph claiming more nodes
// than the simulator's node-id limit (topology.MaxNodes).
type oversizedGraph struct{ topology.Graph }

func (oversizedGraph) Name() string  { return "oversized" }
func (oversizedGraph) Nodes() int    { return 1<<31 + 1 }
func (oversizedGraph) Diameter() int { return 1 }

func TestOversizedNetworkFailsCleanly(t *testing.T) {
	// A 2^25-node de Bruijn graph costs O(1) to build and — now that
	// the engine pages its link tables — adapts cleanly; only a
	// network past topology.MaxNodes must be rejected with an error
	// instead of crashing the process mid-run.
	b, err := topology.Build("debruijn", topology.Params{N: 25, K: 2})
	if err != nil {
		t.Fatalf("building the graph itself should be cheap and legal: %v", err)
	}
	if _, err := NewTopologyNetwork(b); err != nil {
		t.Fatalf("leveled adapter rejected a 2^25-node network: %v", err)
	}
	if _, err := NewDirectTopologyNetwork(b); err != nil {
		t.Fatalf("direct adapter rejected a 2^25-node network: %v", err)
	}
	huge := topology.Built{Graph: oversizedGraph{}}
	if _, err := NewTopologyNetwork(huge); err == nil {
		t.Fatal("adapter accepted a network beyond the node-id limit")
	}
	net, err := NewTopologyNetwork(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, Config{Memory: 1 << 25, Seed: 1}); err != nil {
		t.Fatalf("emulator rejected a 2^25-node network: %v", err)
	}
}

func TestEREWStepOnEveryNetwork(t *testing.T) {
	nets := []Network{starNet(5), starDirect(5), shuffleNet(3), cubeNet(7), meshNet(12)}
	for _, net := range nets {
		e := mustNew(net, Config{Memory: 1 << 16, Seed: 11})
		reqs := workload.RandomStep(net.Nodes(), 1<<16, false, 3)
		stats, cost := e.RouteRequests(reqs)
		if stats.Requests != net.Nodes() {
			t.Fatalf("%s: delivered %d/%d", net.Name(), stats.Requests, net.Nodes())
		}
		if stats.Replies != net.Nodes() {
			t.Fatalf("%s: replies %d/%d", net.Name(), stats.Replies, net.Nodes())
		}
		if cost < net.Diameter() {
			t.Fatalf("%s: cost %d below diameter %d", net.Name(), cost, net.Diameter())
		}
		if e.Rehashes() != 0 {
			t.Fatalf("%s: unexpected rehash", net.Name())
		}
	}
}

func TestWriteStepHasNoReplies(t *testing.T) {
	net := starNet(5)
	e := mustNew(net, Config{Memory: 1 << 16, Seed: 4})
	reqs := workload.RandomStep(net.Nodes(), 1<<16, true, 9)
	stats, _ := e.RouteRequests(reqs)
	if stats.Replies != 0 {
		t.Fatalf("write step produced %d replies", stats.Replies)
	}
	if stats.Requests != net.Nodes() {
		t.Fatalf("delivered %d", stats.Requests)
	}
}

func TestCRCWHotSpotCombines(t *testing.T) {
	net := starNet(5)
	e := mustNew(net, Config{Memory: 1 << 12, Seed: 7, Combine: true})
	reqs := workload.CRCWStep(net.Nodes(), 42)
	stats, cost := e.RouteRequests(reqs)
	if stats.Merges == 0 {
		t.Fatal("fully concurrent step produced no merges")
	}
	if stats.Replies != net.Nodes() {
		t.Fatalf("replies %d/%d", stats.Replies, net.Nodes())
	}
	// Theorem 2.6: the combined step stays near the diameter; without
	// combining it would serialize ~N deep at the hot module.
	if cost > 20*net.Diameter() {
		t.Fatalf("combined hot-spot step cost %d not O(diameter %d)", cost, net.Diameter())
	}
}

func TestCRCWHotSpotWithoutCombiningSerializes(t *testing.T) {
	net := starNet(5)
	with := mustNew(net, Config{Memory: 1 << 12, Seed: 7, Combine: true})
	without := mustNew(net, Config{Memory: 1 << 12, Seed: 7, Combine: false})
	reqs := workload.CRCWStep(net.Nodes(), 42)
	_, costWith := with.RouteRequests(reqs)
	_, costWithout := without.RouteRequests(reqs)
	if costWith*2 > costWithout {
		t.Fatalf("combining gave no speedup: with=%d without=%d", costWith, costWithout)
	}
}

func TestComputeOnlyStepCostsOne(t *testing.T) {
	net := starNet(4)
	e := mustNew(net, Config{Memory: 1 << 10, Seed: 1})
	reqs := make([]pram.Request, net.Nodes())
	for i := range reqs {
		reqs[i] = pram.Request{Proc: i, Op: pram.OpNone}
	}
	_, cost := e.RouteRequests(reqs)
	if cost != 1 {
		t.Fatalf("compute-only step cost %d, want 1", cost)
	}
}

func TestRehashOnDegenerateOverload(t *testing.T) {
	// With OverloadFactor 0 replaced by a tiny explicit threshold via
	// a tiny diameter... force overload by routing many distinct
	// addresses that all land on one module: use threshold 4*diam and
	// a workload with more distinct hot addresses than that, all
	// landing wherever they land — instead, drive overload by making
	// the address space tiny relative to module count? Simplest:
	// check the rehash path directly via an adversarial workload that
	// reads 6*diam distinct addresses from one processor... which is
	// not expressible (one request per proc). So instead verify the
	// accounting API: Rehashes starts at zero and HashBits is the
	// O(L log M) size.
	net := starNet(4)
	e := mustNew(net, Config{Memory: 1 << 20, Seed: 2})
	if e.Rehashes() != 0 {
		t.Fatal("fresh emulator has rehashes")
	}
	// S = 2 * diameter = 8 coefficients of 21 bits (P just above 2^20).
	if bits := e.HashBits(); bits != 8*21 {
		t.Fatalf("HashBits = %d, want 168", bits)
	}
}

func TestEmulatorAsStepExecutor(t *testing.T) {
	// Run a real PRAM program through the star-graph emulation and
	// check both the results and the charged time.
	net := starNet(4) // 24 processors
	e := mustNew(net, Config{Memory: 256, Seed: 5})
	m := pram.New(pram.Config{
		Procs:    24,
		Memory:   256,
		Variant:  pram.EREW,
		Executor: e,
	})
	for i := uint64(0); i < 24; i++ {
		m.Store(i, int64(i))
	}
	m.Run(func(p *pram.Proc) {
		v := p.Read(uint64(p.ID()))
		p.Write(uint64(p.ID())+24, v*2)
	})
	for i := uint64(0); i < 24; i++ {
		if got := m.Load(i + 24); got != int64(i)*2 {
			t.Fatalf("mem[%d] = %d, want %d", i+24, got, int64(i)*2)
		}
	}
	if m.Steps() != 2 {
		t.Fatalf("steps = %d", m.Steps())
	}
	// Each step must cost at least the round trip 2*diam... at least
	// diameter, and the emulator recorded stats per step.
	if m.Time() < int64(2*net.Diameter()) {
		t.Fatalf("time = %d suspiciously small", m.Time())
	}
	if len(e.StepStats()) != 2 {
		t.Fatalf("step stats = %d entries", len(e.StepStats()))
	}
}

func TestMeshTwoPhaseVsKU4Phase(t *testing.T) {
	// The paper's motivation for §3.3: dropping the two random
	// detours roughly halves the emulation time.
	g := mesh.New(24)
	two := mustNew(&MeshNetwork{G: g}, Config{Memory: 1 << 16, Seed: 3})
	four := mustNew(&MeshNetwork{G: g, Scheme: KarlinUpfal4Phase}, Config{Memory: 1 << 16, Seed: 3})
	reqs := workload.RandomStep(g.Nodes(), 1<<16, false, 8)
	_, costTwo := two.RouteRequests(reqs)
	_, costFour := four.RouteRequests(reqs)
	if costTwo >= costFour {
		t.Fatalf("two-phase %d not cheaper than KU four-phase %d", costTwo, costFour)
	}
}

func TestLeveledVsDirectStarAgreeOnScale(t *testing.T) {
	// Algorithm 2.1 (random link per level, logical network) and
	// Algorithm 2.2 (random intermediate node, physical network) are
	// both Õ(n); their measured costs should be within a small factor.
	lev := mustNew(starNet(5), Config{Memory: 1 << 14, Seed: 6})
	dir := mustNew(starDirect(5), Config{Memory: 1 << 14, Seed: 6})
	reqs := workload.RandomStep(120, 1<<14, false, 2)
	_, costLev := lev.RouteRequests(reqs)
	_, costDir := dir.RouteRequests(reqs)
	ratio := float64(costLev) / float64(costDir)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("leveled %d vs direct %d out of expected band", costLev, costDir)
	}
}

func TestDiameterReporting(t *testing.T) {
	// The star routes on its leveled unrolling but must report the
	// physical diameter; a leveled-only family reports ℓ-1.
	if d := starNet(5).Diameter(); d != 6 {
		t.Fatalf("star(5) diameter = %d, want 6", d)
	}
	if d := registryNet("butterfly", topology.Params{N: 4}).Diameter(); d != 4 {
		t.Fatalf("butterfly(4) leveled diameter = %d, want levels-1 = 4", d)
	}
}
