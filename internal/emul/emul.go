// Package emul binds the PRAM to an interconnection network: it is
// the paper's emulation recipe (§2.1, §2.4, §3.3). The shared address
// space is scattered over the network's memory modules by a hash
// function drawn from the Karlin–Upfal class H; each PRAM instruction
// becomes one batch of read/write request packets routed from every
// processor to the module holding its address "and back in case of a
// read instruction"; CRCW steps additionally combine packets with the
// same destination address en route (Theorem 2.6). If a step's
// address placement overloads some module beyond the allotted cℓ
// budget, a new hash function is chosen and the whole memory is
// remapped — the rehashing protocol whose cost is charged explicitly
// and whose frequency experiment E11 shows to be negligible.
//
// The Emulator implements pram.StepExecutor, so any PRAM program runs
// unchanged on any emulated network; memory semantics are enforced by
// the pram.Machine while the network run prices the step.
package emul

import (
	"fmt"

	"pramemu/internal/hashing"
	"pramemu/internal/packet"
	"pramemu/internal/pram"
	"pramemu/internal/topology"
)

// RouteStats is the network-independent summary of routing one
// emulated PRAM step.
type RouteStats struct {
	// Rounds is the step's cost in network time (request delivery
	// plus reply return).
	Rounds int
	// MaxQueue is the largest link-queue occupancy observed.
	MaxQueue int
	// Merges counts CRCW combining events (Theorem 2.6).
	Merges int
	// MaxModuleLoad is the largest number of requests delivered to
	// one memory module.
	MaxModuleLoad int
	// Requests and Replies count delivered forward packets and
	// returned read replies.
	Requests, Replies int
}

// Network is an interconnection network that can route one emulated
// PRAM step: deliver every request packet from its Src processor to
// its Dst module and return a reply for every read.
type Network interface {
	// Name identifies the network in reports.
	Name() string
	// Nodes returns the number of processor/memory-module nodes.
	Nodes() int
	// Diameter returns the network diameter, the L in the paper's
	// bounds (emulation is optimal when a step costs O(L)).
	Diameter() int
	// Route routes the request packets (with replies for reads),
	// combining same-address requests when combine is set. workers is
	// the simulator's round-engine width (0 = GOMAXPROCS, 1 =
	// sequential); every width yields identical RouteStats.
	Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats
}

// Config parameterizes an Emulator.
type Config struct {
	// Memory is the PRAM address-space size M.
	Memory uint64
	// HashDegree is the polynomial degree S = cL of the hash class;
	// 0 means 2 * Diameter (c = 2).
	HashDegree int
	// OverloadFactor c sets the rehash trigger: a step whose max
	// module load exceeds c * Diameter forces a rehash. 0 means 4.
	OverloadFactor int
	// Combine enables CRCW en-route message combining.
	Combine bool
	// Seed drives hashing and routing randomness.
	Seed uint64
	// Workers is the network simulator's round-engine width, passed
	// through to every routed step: 0 selects GOMAXPROCS, 1 the
	// sequential loop. Any value yields identical emulation results.
	Workers int
}

// Emulator prices PRAM steps by routing them over a Network.
type Emulator struct {
	net       Network
	cfg       Config
	hash      *hashing.Manager
	steps     []RouteStats
	rehashes  int
	seedCtr   uint64
	threshold int
}

// New builds an emulator for the given network. Degenerate
// configurations (empty address space, more processors than
// addresses, a network beyond the simulator's key space) come back
// as errors so callers fail cleanly instead of crashing the process.
func New(net Network, cfg Config) (*Emulator, error) {
	if cfg.Memory == 0 {
		return nil, fmt.Errorf("emul: address space must be non-empty")
	}
	if uint64(net.Nodes()) > cfg.Memory {
		return nil, fmt.Errorf("emul: %s has %d modules but only %d addresses; EREW steps would be impossible",
			net.Name(), net.Nodes(), cfg.Memory)
	}
	if net.Nodes() > topology.MaxNodes {
		return nil, fmt.Errorf("emul: %s has %d nodes, exceeding the simulator's node-id limit (%d)",
			net.Name(), net.Nodes(), topology.MaxNodes)
	}
	degree := cfg.HashDegree
	if degree == 0 {
		degree = 2 * net.Diameter()
	}
	factor := cfg.OverloadFactor
	if factor == 0 {
		factor = 4
	}
	class := hashing.NewClass(cfg.Memory, net.Nodes(), degree)
	return &Emulator{
		net:       net,
		cfg:       cfg,
		hash:      hashing.NewManager(class, cfg.Seed),
		threshold: factor * net.Diameter(),
	}, nil
}

// Network returns the emulated network.
func (e *Emulator) Network() Network { return e.net }

// Rehashes returns how many rehash events have occurred.
func (e *Emulator) Rehashes() int { return e.rehashes }

// StepStats returns the per-step routing statistics recorded so far.
func (e *Emulator) StepStats() []RouteStats { return append([]RouteStats(nil), e.steps...) }

// HashBits returns the description size of the current hash function
// in bits (the O(L log M) of §2.1).
func (e *Emulator) HashBits() int { return e.hash.Current().Bits() }

// ExecuteStep implements pram.StepExecutor: one PRAM instruction is
// emulated by hashing each touched address to its module, routing the
// request packets and read replies, and charging the routing time.
func (e *Emulator) ExecuteStep(step int, reqs []pram.Request) int {
	stats, cost := e.routeRequests(reqs)
	e.steps = append(e.steps, stats)
	return cost
}

// RouteRequests emulates a single synthetic step outside any PRAM
// program (used by the benchmark harness) and returns its stats and
// total cost including any rehash penalty.
func (e *Emulator) RouteRequests(reqs []pram.Request) (RouteStats, int) {
	return e.routeRequests(reqs)
}

func (e *Emulator) routeRequests(reqs []pram.Request) (RouteStats, int) {
	cost := 0
	for attempt := 0; ; attempt++ {
		pkts, reads := e.buildPackets(reqs)
		if len(pkts) == 0 {
			// A compute-only step still costs one unit of time.
			return RouteStats{}, cost + 1
		}
		if load := e.maxAddrLoad(reqs); load > e.threshold {
			// Lemma 2.2's bad event: some module drew more than cL of
			// the step's addresses. Draw a new hash function and remap
			// the whole memory (charged below), then retry.
			e.rehash()
			cost += e.rehashCost()
			if attempt > 64 {
				panic("emul: persistent overload after 64 rehashes (degenerate workload)")
			}
			continue
		}
		stats := e.net.Route(pkts, e.cfg.Combine, e.nextSeed(), e.cfg.Workers)
		if stats.Requests != len(pkts) {
			panic(fmt.Sprintf("emul: %s delivered %d/%d requests",
				e.net.Name(), stats.Requests, len(pkts)))
		}
		if stats.Replies != reads {
			panic(fmt.Sprintf("emul: %s returned %d/%d read replies",
				e.net.Name(), stats.Replies, reads))
		}
		return stats, cost + stats.Rounds
	}
}

// buildPackets turns a request vector into routable packets. Requests
// from processor p originate at node p; the destination is the hashed
// module of the address.
func (e *Emulator) buildPackets(reqs []pram.Request) (pkts []*packet.Packet, reads int) {
	h := e.hash.Current()
	id := 0
	for _, req := range reqs {
		if req.Op == pram.OpNone {
			continue
		}
		if req.Proc < 0 || req.Proc >= e.net.Nodes() {
			panic(fmt.Sprintf("emul: processor %d has no node on %s", req.Proc, e.net.Name()))
		}
		kind := packet.ReadRequest
		if req.Op == pram.OpWrite {
			kind = packet.WriteRequest
		} else {
			reads++
		}
		p := packet.New(id, req.Proc, h.Hash(req.Addr), kind)
		p.Addr = req.Addr
		p.Value = req.Value
		p.Proc = req.Proc
		pkts = append(pkts, p)
		id++
	}
	return pkts, reads
}

// maxAddrLoad returns the largest number of distinct step addresses
// hashed to one module — the quantity Lemma 2.2 bounds.
func (e *Emulator) maxAddrLoad(reqs []pram.Request) int {
	h := e.hash.Current()
	perModule := make(map[int]map[uint64]struct{})
	max := 0
	for _, req := range reqs {
		if req.Op == pram.OpNone {
			continue
		}
		mod := h.Hash(req.Addr)
		set := perModule[mod]
		if set == nil {
			set = make(map[uint64]struct{})
			perModule[mod] = set
		}
		set[req.Addr] = struct{}{}
		if len(set) > max {
			max = len(set)
		}
	}
	return max
}

func (e *Emulator) rehash() {
	e.hash.Rehash()
	e.rehashes++
}

// rehashCost charges the memory redistribution: every module relocates
// its ~M/N locations, pipelined through the network in batches that
// each take a two-phase routing (~2 * diameter). This is the
// "rehashing is very expensive" of §2.1, made concrete.
func (e *Emulator) rehashCost() int {
	perModule := int(e.cfg.Memory / uint64(e.net.Nodes()))
	if perModule < 1 {
		perModule = 1
	}
	return perModule * 2 * e.net.Diameter()
}

func (e *Emulator) nextSeed() uint64 {
	e.seedCtr++
	return e.cfg.Seed ^ (e.seedCtr * 0x9e3779b97f4a7c15)
}
