package emul

import (
	"fmt"

	"pramemu/internal/leveled"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/ranade"
	"pramemu/internal/simnet"
)

// LeveledNetwork adapts a leveled.Spec (star logical network, d-way
// shuffle, butterfly, ...) to the emulator: requests traverse the
// two-phase Algorithm 2.1 pipeline, replies retrace reversed paths
// with Theorem 2.6 direction bits, combining optional.
type LeveledNetwork struct {
	Spec leveled.Spec
	// Diam is the physical network diameter reported to the emulator
	// (the leveled unrolling may be longer than the diameter).
	Diam int
}

// Name implements Network.
func (n *LeveledNetwork) Name() string { return n.Spec.Name() }

// Nodes implements Network: one processor/module pair per column node.
func (n *LeveledNetwork) Nodes() int { return n.Spec.Width() }

// Diameter implements Network.
func (n *LeveledNetwork) Diameter() int {
	if n.Diam > 0 {
		return n.Diam
	}
	return n.Spec.Levels() - 1
}

// Route implements Network.
func (n *LeveledNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	s := leveled.Route(n.Spec, pkts, leveled.Options{
		Seed:    seed,
		Replies: true,
		Combine: combine,
		Workers: workers,
	})
	return RouteStats{
		Rounds:        s.Rounds,
		MaxQueue:      s.MaxQueue,
		Merges:        s.Merges,
		MaxModuleLoad: s.MaxModuleLoad,
		Requests:      s.DeliveredRequests,
		Replies:       s.DeliveredReplies,
	}
}

// DirectNetwork adapts a simnet.Topology (star graph, hypercube,
// shuffle) to the emulator using Algorithm 2.2-style two-phase
// routing with a random intermediate node.
type DirectNetwork struct {
	Topo simnet.Topology
}

// Name implements Network.
func (n *DirectNetwork) Name() string { return n.Topo.Name() }

// Nodes implements Network.
func (n *DirectNetwork) Nodes() int { return n.Topo.Nodes() }

// Diameter implements Network.
func (n *DirectNetwork) Diameter() int { return n.Topo.Diameter() }

// Route implements Network.
func (n *DirectNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	s := simnet.Route(n.Topo, pkts, simnet.Options{
		Seed:    seed,
		Replies: true,
		Combine: combine,
		Workers: workers,
	})
	return RouteStats{
		Rounds:        s.Rounds,
		MaxQueue:      s.MaxQueue,
		Merges:        s.Merges,
		MaxModuleLoad: s.MaxModuleLoad,
		Requests:      s.DeliveredRequests,
		Replies:       s.DeliveredReplies,
	}
}

// RanadeNetwork adapts Ranade's butterfly emulation [13] — the prior
// work whose O(log N) time (and constant) the paper's leveled-network
// results improve upon. Combining is always available (it is integral
// to Ranade's sorted-stream protocol); the combine flag gates it for
// ablations.
type RanadeNetwork struct {
	Net *ranade.Network
}

// Name implements Network.
func (n *RanadeNetwork) Name() string { return n.Net.Name() }

// Nodes implements Network.
func (n *RanadeNetwork) Nodes() int { return n.Net.Nodes() }

// Diameter implements Network.
func (n *RanadeNetwork) Diameter() int { return n.Net.Diameter() }

// Route implements Network.
func (n *RanadeNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	s := n.Net.RouteOpts(pkts, ranade.Options{Combine: combine, Seed: seed, Workers: workers})
	return RouteStats{
		Rounds:        s.Rounds,
		MaxQueue:      s.MaxQueue,
		Merges:        s.Merges,
		MaxModuleLoad: 0, // per-module loads are not tracked by this pass
		Requests:      s.DeliveredRequests,
		Replies:       s.DeliveredReplies,
	}
}

// MeshNetwork adapts the n x n mesh. Scheme selects between the
// paper's two-phase emulation (§3.3: request routing then reply
// routing, 4n + o(n)) and the Karlin–Upfal four-phase scheme the
// paper improves upon (requests detour via a random node in each
// direction, ~8n).
type MeshNetwork struct {
	G      *mesh.Grid
	Scheme MeshScheme
	// Opts carries the routing algorithm/discipline for each phase.
	Opts mesh.Options
}

// MeshScheme selects the emulation structure on the mesh.
type MeshScheme int

const (
	// TwoPhase is the paper's algorithm: request, then reply.
	TwoPhase MeshScheme = iota
	// KarlinUpfal4Phase detours both the request and the reply
	// through a uniformly random node (phases 1-4 of §3.3's summary
	// of [4]).
	KarlinUpfal4Phase
)

// Name implements Network.
func (n *MeshNetwork) Name() string {
	if n.Scheme == KarlinUpfal4Phase {
		return n.G.Name() + "-ku4"
	}
	return n.G.Name()
}

// Nodes implements Network.
func (n *MeshNetwork) Nodes() int { return n.G.Nodes() }

// Diameter implements Network.
func (n *MeshNetwork) Diameter() int { return n.G.Diameter() }

// Route implements Network. The mesh router has no reply-retrace
// machinery (and the paper's mesh algorithm does not retrace): the
// reply phase is an independent routing task from module back to
// processor. CRCW combining is a leveled-network mechanism (Thm 2.6);
// the mesh emulation is the EREW algorithm of Theorem 3.2, so combine
// is ignored here.
func (n *MeshNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	_ = combine
	src := prng.New(seed)
	legs := n.buildLegs(pkts, src)
	out := RouteStats{}
	for i, leg := range legs {
		if len(leg) == 0 {
			continue
		}
		opts := n.Opts
		opts.Seed = seed ^ uint64(i+1)*0x9e3779b97f4a7c15
		opts.Workers = workers
		s := mesh.Route(n.G, leg, opts)
		if s.DeliveredRequests != len(leg) {
			panic(fmt.Sprintf("emul: mesh leg %d delivered %d/%d", i, s.DeliveredRequests, len(leg)))
		}
		out.Rounds += s.Rounds
		if s.MaxQueue > out.MaxQueue {
			out.MaxQueue = s.MaxQueue
		}
	}
	out.Requests = len(pkts)
	for _, p := range pkts {
		if p.Kind == packet.ReadRequest {
			out.Replies++
		}
	}
	// Module load: delivered requests per destination node.
	loads := make(map[int]int)
	for _, p := range pkts {
		loads[p.Dst]++
		if loads[p.Dst] > out.MaxModuleLoad {
			out.MaxModuleLoad = loads[p.Dst]
		}
	}
	return out
}

// buildLegs expands the request packets into the routing legs of the
// chosen scheme. Each leg gets fresh packet clones (the mesh router
// mutates routing state).
func (n *MeshNetwork) buildLegs(pkts []*packet.Packet, src *prng.Source) [][]*packet.Packet {
	clone := func(id, from, to int, kind packet.Kind) *packet.Packet {
		return packet.New(id, from, to, kind)
	}
	switch n.Scheme {
	case KarlinUpfal4Phase:
		// Request: processor -> random node k -> module.
		// Reply (reads): module -> random node k' -> processor.
		var leg1, leg2, leg3, leg4 []*packet.Packet
		for i, p := range pkts {
			k := src.Intn(n.G.Nodes())
			leg1 = append(leg1, clone(i, p.Src, k, packet.Transit))
			leg2 = append(leg2, clone(i, k, p.Dst, packet.Transit))
			if p.Kind == packet.ReadRequest {
				k2 := src.Intn(n.G.Nodes())
				leg3 = append(leg3, clone(i, p.Dst, k2, packet.Transit))
				leg4 = append(leg4, clone(i, k2, p.Src, packet.Transit))
			}
		}
		return [][]*packet.Packet{leg1, leg2, leg3, leg4}
	default: // TwoPhase
		var req, rep []*packet.Packet
		for i, p := range pkts {
			req = append(req, clone(i, p.Src, p.Dst, packet.Transit))
			if p.Kind == packet.ReadRequest {
				rep = append(rep, clone(i, p.Dst, p.Src, packet.Transit))
			}
		}
		return [][]*packet.Packet{req, rep}
	}
}
