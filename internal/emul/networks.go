package emul

import (
	"context"
	"fmt"

	"pramemu/internal/engine"
	"pramemu/internal/leveled"
	"pramemu/internal/mesh"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/ranade"
	"pramemu/internal/simnet"
	"pramemu/internal/topology"
)

// TopologyNetwork is the one generic adapter between the unified
// topology layer and the emulator: any registry-built network routes
// PRAM steps through it. When the family has a leveled unrolling the
// adapter runs Algorithm 2.1 on it (the paper's preferred analysis
// for star, shuffle, butterfly and de Bruijn); otherwise — or when
// forced direct — it runs Algorithm 2.2-style two-phase routing with
// a random intermediate node on the point-to-point graph. Requests
// traverse the two-phase pipeline, replies retrace reversed paths
// with Theorem 2.6 direction bits, combining optional.
type TopologyNetwork struct {
	graph  topology.Graph // nil for leveled-only families
	spec   leveled.Spec   // nil when no unrolling exists
	diam   int
	direct bool

	// Context, when non-nil, cancels or deadlines every routed step:
	// the round engine polls it cheaply and unwinds with an
	// engine.Abort panic on expiry (recovered by the scenario layer).
	Context context.Context
	// SkipPhase1 disables the randomizing first traversal of each
	// routed step (the scenario layer's ablation axis): requests go
	// straight along their deterministic paths.
	SkipPhase1 bool
	// HashedKeys forces the round engine's hashed-map link state
	// instead of the dense tables on every routed step (identical
	// results; the A/B knob of the flat-state engine PR).
	HashedKeys bool
	// PagedKeys forces the engine's paged dense tables even on key
	// spaces small enough for flat tables (identical results; the
	// paged A/B knob).
	PagedKeys bool
	// MemBudget caps the engine's fixed link-table footprint in bytes
	// on every routed step; over-budget dense/paged resolutions
	// degrade to the hashed fallback. Zero means no budget.
	MemBudget int64
	// MemStats, when non-nil, receives the resolved state and memory
	// footprint of each routed step (the last step's values persist).
	MemStats *engine.MemStats
	// Lease, when non-nil, recycles engine table and scratch
	// allocations across the adapter's routed steps (emulated steps
	// route with replies and therefore resolve to the hashed state,
	// where the lease is a no-op today — the field keeps the adapter
	// uniform with the routers it wraps).
	Lease *engine.Lease
}

// NewTopologyNetwork adapts a registry-built network, preferring the
// leveled view when one exists. It returns an error when the network
// exceeds the simulator's node-id limit (topology.MaxNodes), so
// oversized graphs fail at construction rather than mid-run.
func NewTopologyNetwork(t topology.Built) (*TopologyNetwork, error) {
	return newTopologyNetwork(t, false)
}

// NewDirectTopologyNetwork adapts a registry-built network forcing
// the point-to-point view (Algorithm 2.2) even when a leveled
// unrolling exists — the form experiment E6's comparison uses.
func NewDirectTopologyNetwork(t topology.Built) (*TopologyNetwork, error) {
	return newTopologyNetwork(t, true)
}

func newTopologyNetwork(t topology.Built, direct bool) (*TopologyNetwork, error) {
	n := &TopologyNetwork{graph: t.Graph, spec: t.Spec, diam: t.Diameter(), direct: direct}
	if direct && t.Graph == nil {
		return nil, fmt.Errorf("emul: %s has no point-to-point view to route directly", t.Name())
	}
	if n.Nodes() > topology.MaxNodes {
		return nil, fmt.Errorf("emul: %s has %d nodes, exceeding the simulator's node-id limit (%d)",
			t.Name(), n.Nodes(), topology.MaxNodes)
	}
	return n, nil
}

// Name implements Network.
func (n *TopologyNetwork) Name() string {
	if n.useLeveled() {
		return n.spec.Name()
	}
	return n.graph.Name()
}

// Nodes implements Network: one processor/module pair per node (per
// column node on a leveled-only family).
func (n *TopologyNetwork) Nodes() int {
	if n.useLeveled() {
		return n.spec.Width()
	}
	return n.graph.Nodes()
}

// Diameter implements Network: the physical network diameter (the
// leveled unrolling may be longer than the diameter).
func (n *TopologyNetwork) Diameter() int { return n.diam }

func (n *TopologyNetwork) useLeveled() bool { return n.spec != nil && !n.direct }

// Route implements Network.
func (n *TopologyNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	if n.useLeveled() {
		s := leveled.Route(n.spec, pkts, leveled.Options{
			Context:    n.Context,
			Seed:       seed,
			Replies:    true,
			Combine:    combine,
			Workers:    workers,
			SkipPhase1: n.SkipPhase1,
			HashedKeys: n.HashedKeys,
			PagedKeys:  n.PagedKeys,
			MemBudget:  n.MemBudget,
			MemStats:   n.MemStats,
			Lease:      n.Lease,
		})
		return RouteStats{
			Rounds:        s.Rounds,
			MaxQueue:      s.MaxQueue,
			Merges:        s.Merges,
			MaxModuleLoad: s.MaxModuleLoad,
			Requests:      s.DeliveredRequests,
			Replies:       s.DeliveredReplies,
		}
	}
	s, err := simnet.Route(n.graph, pkts, simnet.Options{
		Context:    n.Context,
		Seed:       seed,
		Replies:    true,
		Combine:    combine,
		Workers:    workers,
		SkipPhase1: n.SkipPhase1,
		HashedKeys: n.HashedKeys,
		PagedKeys:  n.PagedKeys,
		MemBudget:  n.MemBudget,
		MemStats:   n.MemStats,
		Lease:      n.Lease,
	})
	if err != nil {
		// The constructor verified the key space; any residual error
		// is a programming bug, not an operating condition.
		panic(fmt.Sprintf("emul: %v", err))
	}
	return RouteStats{
		Rounds:        s.Rounds,
		MaxQueue:      s.MaxQueue,
		Merges:        s.Merges,
		MaxModuleLoad: s.MaxModuleLoad,
		Requests:      s.DeliveredRequests,
		Replies:       s.DeliveredReplies,
	}
}

// RanadeNetwork adapts Ranade's butterfly emulation [13] — the prior
// work whose O(log N) time (and constant) the paper's leveled-network
// results improve upon. Combining is always available (it is integral
// to Ranade's sorted-stream protocol); the combine flag gates it for
// ablations.
type RanadeNetwork struct {
	Net *ranade.Network
}

// Name implements Network.
func (n *RanadeNetwork) Name() string { return n.Net.Name() }

// Nodes implements Network.
func (n *RanadeNetwork) Nodes() int { return n.Net.Nodes() }

// Diameter implements Network.
func (n *RanadeNetwork) Diameter() int { return n.Net.Diameter() }

// Route implements Network.
func (n *RanadeNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	s := n.Net.RouteOpts(pkts, ranade.Options{Combine: combine, Seed: seed, Workers: workers})
	return RouteStats{
		Rounds:        s.Rounds,
		MaxQueue:      s.MaxQueue,
		Merges:        s.Merges,
		MaxModuleLoad: 0, // per-module loads are not tracked by this pass
		Requests:      s.DeliveredRequests,
		Replies:       s.DeliveredReplies,
	}
}

// MeshNetwork adapts the n x n mesh. Scheme selects between the
// paper's two-phase emulation (§3.3: request routing then reply
// routing, 4n + o(n)) and the Karlin–Upfal four-phase scheme the
// paper improves upon (requests detour via a random node in each
// direction, ~8n).
type MeshNetwork struct {
	G      *mesh.Grid
	Scheme MeshScheme
	// Opts carries the routing algorithm/discipline for each phase.
	Opts mesh.Options
}

// MeshScheme selects the emulation structure on the mesh.
type MeshScheme int

const (
	// TwoPhase is the paper's algorithm: request, then reply.
	TwoPhase MeshScheme = iota
	// KarlinUpfal4Phase detours both the request and the reply
	// through a uniformly random node (phases 1-4 of §3.3's summary
	// of [4]).
	KarlinUpfal4Phase
)

// Name implements Network.
func (n *MeshNetwork) Name() string {
	if n.Scheme == KarlinUpfal4Phase {
		return n.G.Name() + "-ku4"
	}
	return n.G.Name()
}

// Nodes implements Network.
func (n *MeshNetwork) Nodes() int { return n.G.Nodes() }

// Diameter implements Network.
func (n *MeshNetwork) Diameter() int { return n.G.Diameter() }

// Route implements Network. The mesh router has no reply-retrace
// machinery (and the paper's mesh algorithm does not retrace): the
// reply phase is an independent routing task from module back to
// processor. CRCW combining is a leveled-network mechanism (Thm 2.6);
// the mesh emulation is the EREW algorithm of Theorem 3.2, so combine
// is ignored here.
func (n *MeshNetwork) Route(pkts []*packet.Packet, combine bool, seed uint64, workers int) RouteStats {
	_ = combine
	src := prng.New(seed)
	legs := n.buildLegs(pkts, src)
	out := RouteStats{}
	for i, leg := range legs {
		if len(leg) == 0 {
			continue
		}
		opts := n.Opts
		opts.Seed = seed ^ uint64(i+1)*0x9e3779b97f4a7c15
		opts.Workers = workers
		s := mesh.Route(n.G, leg, opts)
		if s.DeliveredRequests != len(leg) {
			panic(fmt.Sprintf("emul: mesh leg %d delivered %d/%d", i, s.DeliveredRequests, len(leg)))
		}
		out.Rounds += s.Rounds
		if s.MaxQueue > out.MaxQueue {
			out.MaxQueue = s.MaxQueue
		}
	}
	out.Requests = len(pkts)
	for _, p := range pkts {
		if p.Kind == packet.ReadRequest {
			out.Replies++
		}
	}
	// Module load: delivered requests per destination node.
	loads := make(map[int]int)
	for _, p := range pkts {
		loads[p.Dst]++
		if loads[p.Dst] > out.MaxModuleLoad {
			out.MaxModuleLoad = loads[p.Dst]
		}
	}
	return out
}

// buildLegs expands the request packets into the routing legs of the
// chosen scheme. Each leg gets fresh packet clones (the mesh router
// mutates routing state).
func (n *MeshNetwork) buildLegs(pkts []*packet.Packet, src *prng.Source) [][]*packet.Packet {
	clone := func(id, from, to int, kind packet.Kind) *packet.Packet {
		return packet.New(id, from, to, kind)
	}
	switch n.Scheme {
	case KarlinUpfal4Phase:
		// Request: processor -> random node k -> module.
		// Reply (reads): module -> random node k' -> processor.
		var leg1, leg2, leg3, leg4 []*packet.Packet
		for i, p := range pkts {
			k := src.Intn(n.G.Nodes())
			leg1 = append(leg1, clone(i, p.Src, k, packet.Transit))
			leg2 = append(leg2, clone(i, k, p.Dst, packet.Transit))
			if p.Kind == packet.ReadRequest {
				k2 := src.Intn(n.G.Nodes())
				leg3 = append(leg3, clone(i, p.Dst, k2, packet.Transit))
				leg4 = append(leg4, clone(i, k2, p.Src, packet.Transit))
			}
		}
		return [][]*packet.Packet{leg1, leg2, leg3, leg4}
	default: // TwoPhase
		var req, rep []*packet.Packet
		for i, p := range pkts {
			req = append(req, clone(i, p.Src, p.Dst, packet.Transit))
			if p.Kind == packet.ReadRequest {
				rep = append(rep, clone(i, p.Dst, p.Src, packet.Transit))
			}
		}
		return [][]*packet.Packet{req, rep}
	}
}
