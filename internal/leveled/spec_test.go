package leveled

import (
	"testing"
	"testing/quick"
)

func TestDAryDimensions(t *testing.T) {
	b := NewDAry(3, 5)
	if b.Width() != 81 || b.Levels() != 5 || b.Degree() != 3 {
		t.Fatalf("DAry(3,5): width=%d levels=%d degree=%d", b.Width(), b.Levels(), b.Degree())
	}
	bf := NewButterfly(3)
	if bf.Width() != 8 || bf.Levels() != 4 || bf.Degree() != 2 {
		t.Fatalf("Butterfly(3): width=%d levels=%d", bf.Width(), bf.Levels())
	}
	if bf.Name() == "" || b.Name() == "" {
		t.Fatal("specs must have names")
	}
}

func TestDAryPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"degree 1":  func() { NewDAry(1, 3) },
		"levels 1":  func() { NewDAry(2, 1) },
		"too large": func() { NewDAry(2, 40) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDAry %s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDAryOutSetsDigit(t *testing.T) {
	b := NewDAry(3, 4) // width 27, digits 0..2 at levels 0..2
	// Node 14 = 112 base 3 (digit0=2, digit1=1, digit2=1).
	if got := b.Out(0, 14, 0); got != 12 { // set digit0 to 0: 110_3 = 12
		t.Fatalf("Out(0,14,0) = %d, want 12", got)
	}
	if got := b.Out(1, 14, 2); got != 17 { // set digit1 to 2: 122_3 = 17
		t.Fatalf("Out(1,14,2) = %d, want 17", got)
	}
	if got := b.Out(2, 14, 0); got != 5 { // set digit2 to 0: 012_3 = 5
		t.Fatalf("Out(2,14,0) = %d, want 5", got)
	}
}

func TestDAryOutSelfWhenDigitMatches(t *testing.T) {
	b := NewDAry(2, 4)
	for node := 0; node < b.Width(); node++ {
		for level := 0; level < b.Levels()-1; level++ {
			digit := node >> level & 1
			if got := b.Out(level, node, digit); got != node {
				t.Fatalf("Out(%d,%d,%d) = %d, want self", level, node, digit, got)
			}
		}
	}
}

// TestDAryUniquePath verifies the defining property of a leveled
// network (§2.3.1): following NextHop from any first-column node
// reaches any chosen last-column node in exactly ℓ-1 hops.
func TestDAryUniquePath(t *testing.T) {
	for _, cfg := range []struct{ d, levels int }{{2, 5}, {3, 4}, {4, 3}, {5, 4}} {
		b := NewDAry(cfg.d, cfg.levels)
		for src := 0; src < b.Width(); src += 7 {
			for dst := 0; dst < b.Width(); dst += 5 {
				node := src
				for level := 0; level < b.Levels()-1; level++ {
					slot := b.NextHop(level, node, dst)
					if slot < 0 || slot >= b.OutDegree(level, node) {
						t.Fatalf("NextHop out of range: %d", slot)
					}
					node = b.Out(level, node, slot)
				}
				if node != dst {
					t.Fatalf("d=%d l=%d: path from %d aimed at %d ended at %d",
						cfg.d, cfg.levels, src, dst, node)
				}
			}
		}
	}
}

func TestDAryOutInRange(t *testing.T) {
	b := NewDAry(4, 4)
	check := func(nodeRaw, levelRaw, slotRaw uint16) bool {
		node := int(nodeRaw) % b.Width()
		level := int(levelRaw) % (b.Levels() - 1)
		slot := int(slotRaw) % b.Degree()
		out := b.Out(level, node, slot)
		return out >= 0 && out < b.Width()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
