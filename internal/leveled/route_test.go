package leveled

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

// permPackets builds one Transit packet per first-column node whose
// destinations form the given permutation.
func permPackets(perm []int, kind packet.Kind) []*packet.Packet {
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, kind)
	}
	return pkts
}

func TestRoutePermutationDelivers(t *testing.T) {
	for _, cfg := range []struct{ d, levels int }{{2, 6}, {3, 5}, {4, 4}} {
		spec := NewDAry(cfg.d, cfg.levels)
		perm := prng.New(1).Perm(spec.Width())
		pkts := permPackets(perm, packet.Transit)
		stats := Route(spec, pkts, Options{Seed: 42})
		if stats.DeliveredRequests != spec.Width() {
			t.Fatalf("%s: delivered %d/%d", spec.Name(), stats.DeliveredRequests, spec.Width())
		}
		minTime := 2 * (spec.Levels() - 1)
		if stats.Rounds < minTime {
			t.Fatalf("%s: %d rounds < path length %d", spec.Name(), stats.Rounds, minTime)
		}
		// Theorem 2.1: Õ(ℓ). Allow a generous constant; the benches
		// measure the real one (~3).
		if stats.Rounds > 20*spec.Levels() {
			t.Fatalf("%s: %d rounds way beyond Õ(ℓ)", spec.Name(), stats.Rounds)
		}
		for _, p := range pkts {
			if p.Arrived < 0 {
				t.Fatalf("packet %d never arrived", p.ID)
			}
		}
	}
}

func TestRouteDeterministicSameSeed(t *testing.T) {
	spec := NewDAry(3, 5)
	perm := prng.New(9).Perm(spec.Width())
	a := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 7})
	b := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 7})
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	c := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 8})
	if a == c {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestRouteParallelMatchesSequential(t *testing.T) {
	spec := NewDAry(2, 10) // 512 nodes so the parallel path engages
	perm := prng.New(3).Perm(spec.Width())
	seq := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 5, Replies: true})
	par := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 5, Replies: true, Workers: 4})
	if seq != par {
		t.Fatalf("parallel simulation diverged:\nseq %+v\npar %+v", seq, par)
	}
}

func TestRoutePathsAreValidEdges(t *testing.T) {
	spec := NewDAry(3, 4)
	perm := prng.New(11).Perm(spec.Width())
	pkts := permPackets(perm, packet.Transit)
	Route(spec, pkts, Options{Seed: 1, RecordPaths: true})
	for _, p := range pkts {
		if len(p.Path) != 2*spec.Levels()-1 {
			t.Fatalf("packet %d path length %d, want %d", p.ID, len(p.Path), 2*spec.Levels()-1)
		}
		if int(p.Path[0]) != p.Src || int(p.Path[len(p.Path)-1]) != p.Dst {
			t.Fatalf("packet %d path endpoints %d..%d", p.ID, p.Path[0], p.Path[len(p.Path)-1])
		}
		for j := 0; j+1 < len(p.Path); j++ {
			phys := j
			if j >= spec.Levels()-1 {
				phys = j - (spec.Levels() - 1)
			}
			from, to := int(p.Path[j]), int(p.Path[j+1])
			found := false
			for slot := 0; slot < spec.OutDegree(phys, from); slot++ {
				if spec.Out(phys, from, slot) == to {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("packet %d hop %d->%d at level %d is not an edge", p.ID, from, to, j)
			}
		}
	}
}

func TestRouteReplies(t *testing.T) {
	spec := NewDAry(2, 7)
	perm := prng.New(2).Perm(spec.Width())
	pkts := permPackets(perm, packet.ReadRequest)
	stats := Route(spec, pkts, Options{Seed: 4, Replies: true})
	if stats.DeliveredReplies != spec.Width() {
		t.Fatalf("replies home: %d/%d", stats.DeliveredReplies, spec.Width())
	}
	if stats.Rounds < stats.RequestRounds {
		t.Fatalf("rounds %d < request rounds %d", stats.Rounds, stats.RequestRounds)
	}
	for _, p := range pkts {
		if p.Kind != packet.ReadReply {
			t.Fatalf("packet %d kind %v after reply run", p.ID, p.Kind)
		}
	}
}

func TestRouteSkipPhase1(t *testing.T) {
	spec := NewDAry(2, 8)
	perm := prng.New(6).Perm(spec.Width())
	stats := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 3, SkipPhase1: true})
	if stats.DeliveredRequests != spec.Width() {
		t.Fatalf("delivered %d", stats.DeliveredRequests)
	}
	if stats.Rounds < spec.Levels()-1 {
		t.Fatalf("rounds %d below single-pass path length", stats.Rounds)
	}
}

// TestRouteAdversarialNeedsPhase1 demonstrates the point of Valiant's
// randomizing phase: the "digit reversal" permutation funnels many
// deterministic unique paths through the same middle links, while
// two-phase routing stays near the diameter.
func TestRouteAdversarialNeedsPhase1(t *testing.T) {
	const k = 14 // butterfly with 16384 rows; deterministic congestion ~ sqrt(N)
	spec := NewButterfly(k)
	perm := make([]int, spec.Width())
	for i := range perm {
		rev := 0
		for b := 0; b < k; b++ {
			rev = rev<<1 | (i >> b & 1)
		}
		perm[i] = rev
	}
	det := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 1, SkipPhase1: true})
	rnd := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 1})
	if det.Rounds < 2*rnd.Rounds {
		t.Fatalf("bit reversal should crush deterministic routing: det=%d rnd=%d",
			det.Rounds, rnd.Rounds)
	}
}

func TestRouteHotSpotCombining(t *testing.T) {
	spec := NewDAry(2, 8) // 128 rows
	n := spec.Width()
	pkts := make([]*packet.Packet, n)
	for i := 0; i < n; i++ {
		pkts[i] = packet.New(i, i, 77, packet.ReadRequest)
		pkts[i].Addr = 1234
		pkts[i].Value = -1
	}
	stats := Route(spec, pkts, Options{Seed: 10, Replies: true, Combine: true})
	if stats.Merges == 0 {
		t.Fatal("hot-spot run produced no combining merges")
	}
	if stats.DeliveredRequests != n {
		t.Fatalf("delivered requests %d, want %d", stats.DeliveredRequests, n)
	}
	if stats.DeliveredReplies != n {
		t.Fatalf("delivered replies %d, want %d", stats.DeliveredReplies, n)
	}
	if stats.MaxModuleLoad != n {
		t.Fatalf("module load %d, want %d", stats.MaxModuleLoad, n)
	}
	for _, p := range pkts {
		if p.Kind != packet.ReadReply {
			t.Fatalf("packet %d not flipped to reply: %v", p.ID, p.Kind)
		}
	}
}

func TestRouteCombiningSpeedsUpHotSpot(t *testing.T) {
	spec := NewDAry(2, 9) // 256 rows
	build := func() []*packet.Packet {
		pkts := make([]*packet.Packet, spec.Width())
		for i := range pkts {
			pkts[i] = packet.New(i, i, 0, packet.ReadRequest)
			pkts[i].Addr = 55
		}
		return pkts
	}
	with := Route(spec, build(), Options{Seed: 2, Replies: true, Combine: true})
	without := Route(spec, build(), Options{Seed: 2, Replies: true})
	// Without combining, 256 requests serialize through the module's
	// single incoming link: at least ~N rounds. With combining the
	// whole run stays near the diameter.
	if without.Rounds < spec.Width()/2 {
		t.Fatalf("uncombined hot spot finished suspiciously fast: %d", without.Rounds)
	}
	if with.Rounds*3 > without.Rounds {
		t.Fatalf("combining did not help: with=%d without=%d", with.Rounds, without.Rounds)
	}
}

func TestRouteRelation(t *testing.T) {
	// Partial ℓ-relation (Theorem 2.4): ℓ packets at each source, at
	// most ℓ per destination — realized here by ℓ independent random
	// permutations.
	spec := NewDAry(3, 5)
	src := prng.New(14)
	var pkts []*packet.Packet
	id := 0
	for rel := 0; rel < spec.Levels(); rel++ {
		perm := src.Perm(spec.Width())
		for i, dst := range perm {
			pkts = append(pkts, packet.New(id, i, dst, packet.Transit))
			id++
		}
	}
	stats := Route(spec, pkts, Options{Seed: 21})
	if stats.DeliveredRequests != len(pkts) {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, len(pkts))
	}
	if stats.Rounds > 40*spec.Levels() {
		t.Fatalf("ℓ-relation rounds %d not Õ(ℓ)", stats.Rounds)
	}
}

func TestRoutePanics(t *testing.T) {
	spec := NewDAry(2, 3)
	for name, f := range map[string]func(){
		"duplicate ids": func() {
			Route(spec, []*packet.Packet{
				packet.New(1, 0, 0, packet.Transit),
				packet.New(1, 1, 1, packet.Transit),
			}, Options{})
		},
		"src out of range": func() {
			Route(spec, []*packet.Packet{packet.New(0, -1, 0, packet.Transit)}, Options{})
		},
		"dst out of range": func() {
			Route(spec, []*packet.Packet{packet.New(0, 0, 99, packet.Transit)}, Options{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRouteEmpty(t *testing.T) {
	stats := Route(NewDAry(2, 3), nil, Options{})
	if stats.Rounds != 0 || stats.DeliveredRequests != 0 {
		t.Fatalf("empty route stats: %+v", stats)
	}
}

func TestRouteQueueBound(t *testing.T) {
	// Theorem 2.1: FIFO queues of size Õ(ℓ) suffice. Check the
	// observed max queue is within a small multiple of ℓ.
	spec := NewDAry(2, 11)
	perm := prng.New(17).Perm(spec.Width())
	stats := Route(spec, permPackets(perm, packet.Transit), Options{Seed: 23})
	if stats.MaxQueue > 4*spec.Levels() {
		t.Fatalf("max queue %d exceeds 4ℓ = %d", stats.MaxQueue, 4*spec.Levels())
	}
}
