package leveled

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
)

// pathLinks returns the set of directed logical links of a recorded
// path, keyed by (level, from, to).
func pathLinks(p *packet.Packet) map[[3]int32]bool {
	links := make(map[[3]int32]bool, len(p.Path)-1)
	for j := 0; j+1 < len(p.Path); j++ {
		links[[3]int32{int32(j), p.Path[j], p.Path[j+1]}] = true
	}
	return links
}

// TestQueueLineLemma validates Fact 2.1 empirically: in a nonrepeating
// routing scheme, the number of steps a packet is delayed is at most
// the number of packets whose paths overlap (share a link with) its
// path. A single deterministic traversal is nonrepeating (divergence
// at level l fixes digit l for good), so we check the lemma there,
// under the heavy contention of the bit-reversal permutation.
func TestQueueLineLemma(t *testing.T) {
	spec := NewDAry(2, 8)
	perm := make([]int, spec.Width())
	for i := range perm {
		rev := 0
		for b := 0; b < 7; b++ {
			rev = rev<<1 | (i >> b & 1)
		}
		perm[i] = rev
	}
	pkts := permPackets(perm, packet.Transit)
	Route(spec, pkts, Options{Seed: 6, RecordPaths: true, SkipPhase1: true})

	links := make([]map[[3]int32]bool, len(pkts))
	for i, p := range pkts {
		links[i] = pathLinks(p)
	}
	for i, p := range pkts {
		overlapping := 0
		for j, q := range pkts {
			if i == j {
				continue
			}
			for l := range links[j] {
				if links[i][l] {
					overlapping++
					break
				}
			}
			_ = q
		}
		if p.Delay > overlapping {
			t.Fatalf("packet %d delayed %d rounds but only %d packets overlap its path",
				p.ID, p.Delay, overlapping)
		}
	}
}

// TestNonrepeatingProperty validates Definition 2.1 for a single
// leveled traversal: if two paths share a link and then diverge, they
// never share a link again (divergence at level l means the labels
// differ in digit l, which later levels never touch). This is the
// property that licenses the queue-line lemma in the proofs of
// Theorems 2.1 and 2.4; each phase of the two-phase algorithm is one
// such traversal.
func TestNonrepeatingProperty(t *testing.T) {
	spec := NewDAry(3, 5)
	perm := prng.New(8).Perm(spec.Width())
	pkts := permPackets(perm, packet.Transit)
	Route(spec, pkts, Options{Seed: 12, RecordPaths: true, SkipPhase1: true})

	for i := 0; i < len(pkts); i++ {
		for j := i + 1; j < len(pkts); j++ {
			a, b := pkts[i].Path, pkts[j].Path
			if len(a) != len(b) {
				t.Fatal("leveled paths must have equal length")
			}
			shared, diverged, rejoined := false, false, false
			for l := 0; l+1 < len(a); l++ {
				same := a[l] == b[l] && a[l+1] == b[l+1]
				switch {
				case same && !shared:
					shared = true
				case !same && shared:
					diverged = true
					shared = false
				case same && diverged:
					rejoined = true
				}
			}
			if rejoined {
				t.Fatalf("packets %d and %d diverged and re-shared a link:\n%v\n%v",
					pkts[i].ID, pkts[j].ID, a, b)
			}
		}
	}
}

// TestDelayAccountingMatchesArrival cross-checks the simulator's
// cost model: arrival round == injection + hops + delay for every
// packet (the "number of steps" identity of §2.2.1).
func TestDelayAccountingMatchesArrival(t *testing.T) {
	spec := NewDAry(2, 9)
	perm := prng.New(10).Perm(spec.Width())
	pkts := permPackets(perm, packet.Transit)
	Route(spec, pkts, Options{Seed: 3})
	for _, p := range pkts {
		if p.Arrived != p.Injected+p.Hops+p.Delay {
			t.Fatalf("packet %d: arrived %d != injected %d + hops %d + delay %d",
				p.ID, p.Arrived, p.Injected, p.Hops, p.Delay)
		}
	}
}
