// Package leveled implements the paper's central abstraction (§2.3.1):
// a leveled network of ℓ columns of N nodes each, with links only
// between adjacent columns, at most d outgoing links per node, and a
// unique path of length ℓ-1 from every first-column node to every
// last-column node. It provides the universal two-phase randomized
// routing algorithm (Algorithm 2.1) with FIFO queues, the partial
// ℓ-relation extension used by Theorem 2.4, reverse-path replies, and
// the en-route message combining of Theorem 2.6.
//
// Phase 1 walks the network once, choosing a uniformly random outgoing
// link at every level ("flipping a d-sided coin"), so each packet
// lands on a random last-column node. Phase 2 walks the network a
// second time following the unique path to the true destination. For
// recirculating networks such as the n-star graph and the d-way
// shuffle — the networks the paper targets, where the first and last
// columns are the same physical nodes — the second walk is literal
// recirculation; for a butterfly it is the standard unrolled
// double-traversal. The simulator therefore runs a single pipeline of
// 2ℓ-1 logical columns, the first ℓ with random hops and the rest
// with deterministic hops, which is exactly the structure the proofs
// of Theorems 2.1 and 2.4 analyze.
package leveled

import "fmt"

// Spec describes a leveled network topology. Implementations must be
// stateless and safe for concurrent use: the simulator calls Out and
// NextHop from multiple goroutines.
type Spec interface {
	// Name identifies the topology in reports.
	Name() string
	// Levels returns ℓ, the number of columns.
	Levels() int
	// Width returns N, the number of nodes per column.
	Width() int
	// Degree returns d, the maximum out-degree of any node.
	Degree() int
	// OutDegree returns the number of outgoing links of node at the
	// given level (0 <= level < Levels()-1).
	OutDegree(level, node int) int
	// Out returns the node in column level+1 reached via link slot k.
	Out(level, node, slot int) int
	// NextHop returns the link slot that the unique path from node
	// (at the given level) to last-column node dst uses.
	NextHop(level, node, dst int) int
}

// DAry is a generalized d-ary butterfly: width d^(levels-1), and the
// link slots at level i set the i-th base-d digit of the node label.
// DAry(2, k+1) is the classic butterfly on 2^k rows. DAry(d, d+1) is
// the family with ℓ = O(d) used to exercise Theorem 2.1's regime.
type DAry struct {
	d      int
	levels int
	width  int
	pow    []int // pow[i] = d^i
}

// NewDAry returns a d-ary butterfly with the given number of columns.
// It panics if d < 2, levels < 2, or the width d^(levels-1) overflows
// a practical simulation size (2^31).
func NewDAry(d, levels int) *DAry {
	if d < 2 {
		panic("leveled: DAry degree must be >= 2")
	}
	if levels < 2 {
		panic("leveled: DAry needs at least 2 levels")
	}
	width := 1
	pow := make([]int, levels)
	for i := 0; i < levels; i++ {
		pow[i] = width
		if i < levels-1 {
			if width > (1<<31)/d {
				panic("leveled: DAry width overflows practical size")
			}
			width *= d
		}
	}
	return &DAry{d: d, levels: levels, width: width, pow: pow}
}

// Name implements Spec.
func (b *DAry) Name() string { return fmt.Sprintf("dary(d=%d,l=%d)", b.d, b.levels) }

// Levels implements Spec.
func (b *DAry) Levels() int { return b.levels }

// Width implements Spec.
func (b *DAry) Width() int { return b.width }

// Degree implements Spec.
func (b *DAry) Degree() int { return b.d }

// OutDegree implements Spec.
func (b *DAry) OutDegree(level, node int) int { return b.d }

// Out implements Spec: replace base-d digit `level` of node with slot.
func (b *DAry) Out(level, node, slot int) int {
	digit := node / b.pow[level] % b.d
	return node + (slot-digit)*b.pow[level]
}

// NextHop implements Spec: the unique path to dst fixes digit `level`
// of the label to dst's digit at that position.
func (b *DAry) NextHop(level, node, dst int) int {
	return dst / b.pow[level] % b.d
}

// NewButterfly returns the classic binary butterfly with 2^k rows and
// k+1 columns.
func NewButterfly(k int) *DAry { return NewDAry(2, k+1) }
