package leveled

import (
	"context"
	"fmt"

	"pramemu/internal/engine"
	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Options configures a routing run.
type Options struct {
	// Context, when non-nil, lets callers cancel or deadline a run;
	// the engine polls it cheaply (per round / every few thousand
	// events) and unwinds with an engine.Abort panic on expiry. A
	// never-canceled run is bit-identical to one without a context.
	Context context.Context
	// Seed drives every random choice; equal seeds give identical runs.
	Seed uint64
	// SkipPhase1 disables the randomizing first traversal and routes
	// every packet directly along its unique path. This is the
	// ablation showing why Valiant's phase 1 is needed: adversarial
	// permutations then congest single links.
	SkipPhase1 bool
	// Replies makes every delivered request retrace its recorded path
	// in reverse as a reply (ReadReply / WriteAck), per the direction
	// bits of Theorem 2.6. Rounds then counts until all replies are
	// home.
	Replies bool
	// Combine merges same-kind requests for the same address and
	// module that meet in a queue during the deterministic traversal
	// (Theorem 2.6's message combining). Implies path recording.
	Combine bool
	// RecordPaths forces path recording even without Replies/Combine
	// (used by path-property tests).
	RecordPaths bool
	// Workers is the round-engine worker count: 0 selects GOMAXPROCS,
	// 1 the sequential loop. Any value yields identical results.
	Workers int
	// HashedKeys forces the engine's hashed-map link state instead of
	// the dense-table fast path (reply-free runs declare the dense
	// forward key space (column, node, slot) to the engine). Results
	// are bit-identical either way; the knob exists for benchmarking
	// the fallback and for path-coverage tests.
	HashedKeys bool
	// PagedKeys forces the engine's paged dense tables even when the
	// declared key space fits flat ones (the engine pages
	// automatically beyond 2^24 keys). Results are bit-identical
	// either way; the knob exists for equivalence tests and
	// benchmarks.
	PagedKeys bool
	// MemBudget caps the engine's fixed link-table footprint in bytes;
	// over budget the run degrades to hashed state instead of
	// erroring. Zero means no budget. See engine.Options.MemBudget.
	MemBudget int64
	// MemStats, when non-nil, receives the engine's resolved state and
	// table footprint after the run.
	MemStats *engine.MemStats
	// Lease, when non-nil, recycles the engine's table and scratch
	// allocations across same-shape runs (see engine.Options.Lease);
	// results are bit-identical with or without it.
	Lease *engine.Lease
	// Event, when non-nil, routes on the asynchronous discrete-event
	// engine instead of synchronous rounds (see engine.EventOptions).
	// The router fills the node-decoding hooks so the straggler and
	// delay-matrix axes key to width-space nodes (a straggler node is
	// slow in every column). Stats.Rounds then reports the last
	// delivery tick (the delivered time).
	Event *engine.EventOptions
}

// Stats reports the outcome of one routing run.
type Stats struct {
	// Rounds is the total routing time in link steps, including the
	// reply traffic when Options.Replies is set.
	Rounds int
	// RequestRounds is the round by which every forward packet had
	// been delivered to its destination.
	RequestRounds int
	// MaxQueue is the largest queue occupancy observed on any link.
	MaxQueue int
	// TotalDelay sums every packet's time spent waiting in queues.
	TotalDelay int64
	// MaxPacketSteps is the largest hops+delay over all packets.
	MaxPacketSteps int
	// DeliveredRequests counts original requests that reached their
	// module (combined packets count once per constituent).
	DeliveredRequests int
	// DeliveredReplies counts original requesters that received a
	// reply.
	DeliveredReplies int
	// Merges counts combining events (Theorem 2.6).
	Merges int
	// Retransmits counts dropped transmissions the event engine's
	// senders retried (zero on synchronous runs).
	Retransmits int
	// MaxModuleLoad is the largest number of (un-combined) requests
	// delivered to a single last-column node.
	MaxModuleLoad int
}

const reverseBit = uint64(1) << 63

// keySpaceOverflows reports whether the product a*b*c wraps uint64 or
// reaches 2^63, where it would collide with the reverse-bit namespace.
func keySpaceOverflows(a, b, c uint64) bool {
	if a == 0 || b == 0 || c == 0 {
		return false
	}
	if a > (reverseBit-1)/b {
		return true
	}
	return a*b > (reverseBit-1)/c
}

// forwardKey encodes the directed forward link (logical column, node,
// out-slot) densely as (level*width + node)*degree + slot, so the
// whole forward key space is [0, (logical-1)*width*degree) and the
// engine can back it with slice-indexed tables. The encoding orders
// identically to the previous packed (level, node, slot) bit fields —
// strictly monotone in the triple — so routing results are unchanged.
func (r *router) forwardKey(level, node, slot int) uint64 {
	return (uint64(level)*r.width+uint64(node))*r.degree + uint64(slot)
}

// reverseKey encodes a reply link by its endpoint node pair, packed
// as the width-based product (level*width + from)*width + to under the
// reverse bit. Reply traffic is sparse in this space, exists only when
// Options.Replies is set, and always sorts after the forward keys (the
// reverse bit). The product is strictly monotone in (level, from, to),
// the same order as the old 48/24-bit fields, so insertion order — and
// therefore every result — is unchanged; unlike fixed bit fields it
// keeps working up to topology-scale widths (2^31 nodes).
func (r *router) reverseKey(level, from, to int) uint64 {
	return reverseBit | ((uint64(level)*r.width+uint64(from))*r.width + uint64(to))
}

// router holds the immutable per-run configuration; all mutable state
// lives in the engine's shard contexts.
type router struct {
	spec    Spec
	opts    Options
	levels  int // ℓ
	logical int // logical columns: 2ℓ-1 (or ℓ when SkipPhase1)
	record  bool
	width   uint64 // spec.Width(), the forward-key node stride
	degree  uint64 // spec.Degree(), the forward-key slot stride
}

// Route routes pkts through the leveled network described by spec
// using the universal two-phase randomized algorithm (Algorithm 2.1).
// Each packet travels from its Src in the first column to its Dst in
// the last column. Packets must have unique IDs. Route mutates the
// packets (hop/delay/path bookkeeping) and returns aggregate Stats.
func Route(spec Spec, pkts []*packet.Packet, opts Options) Stats {
	if spec.Levels() < 2 {
		panic("leveled: network needs at least 2 levels")
	}
	// Guard the product key encodings against 64-bit wrap: forward keys
	// reach (logical-1)*width*degree and reverse keys logical*width^2,
	// and either crossing 2^63 would collide with the reverse-bit
	// namespace. Every spec the old 24-bit bit-field guard admitted
	// passes this one; it newly admits topology-scale widths.
	logical := uint64(2*spec.Levels() - 1)
	w, d := uint64(spec.Width()), uint64(spec.Degree())
	if keySpaceOverflows(logical, w, w) || keySpaceOverflows(logical, w, d) {
		panic("leveled: width x degree key space overflows 63 bits")
	}
	r := &router{
		spec:    spec,
		opts:    opts,
		levels:  spec.Levels(),
		logical: 2*spec.Levels() - 1,
		record:  opts.Replies || opts.Combine || opts.RecordPaths,
		width:   uint64(spec.Width()),
		degree:  uint64(spec.Degree()),
	}
	if opts.SkipPhase1 {
		r.logical = spec.Levels()
	}
	// Reply-free runs declare the dense forward key space so the
	// engine swaps its hash maps for slice-indexed tables; replies
	// live under reverseBit, outside any declarable range.
	var maxKey uint64
	if !opts.Replies && !opts.HashedKeys {
		maxKey = uint64(r.logical-1) * r.width * r.degree
	}
	engOpts := engine.Options{
		Context:    opts.Context,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		MaxKey:     maxKey,
		MemBudget:  opts.MemBudget,
		ForcePaged: opts.PagedKeys,
		Lease:      opts.Lease,
	}
	if opts.Event != nil {
		ev := *opts.Event
		ev.Nodes = spec.Width()
		ev.NodeOf = func(key uint64) int {
			if key&reverseBit != 0 {
				return int((key &^ reverseBit) / r.width % r.width)
			}
			return int((key / r.degree) % r.width)
		}
		ev.PeerOf = func(key uint64) int {
			if key&reverseBit != 0 {
				return int((key &^ reverseBit) % r.width)
			}
			cell := key / r.degree
			return r.spec.Out(r.physLevel(int(cell/r.width)), int(cell%r.width), int(key%r.degree))
		}
		engOpts.Event = &ev
	}
	eng := engine.New(engOpts)
	var combiner engine.Combiner
	if opts.Combine {
		combiner = r.combine
	}
	st := eng.Run(func(ctx *engine.Ctx) {
		root := prng.New(opts.Seed)
		seen := make(map[int]bool, len(pkts))
		for _, p := range pkts {
			if seen[p.ID] {
				panic(fmt.Sprintf("leveled: duplicate packet ID %d", p.ID))
			}
			seen[p.ID] = true
			if p.Src < 0 || p.Src >= spec.Width() || p.Dst < 0 || p.Dst >= spec.Width() {
				panic(fmt.Sprintf("leveled: packet %d endpoints out of range", p.ID))
			}
			p.Rand = root.Split(uint64(p.ID))
			p.Injected = 0
			p.EnqueuedAt = 0
			p.Arrived = -1
			if r.record {
				p.Path = append(p.Path[:0], int32(p.Src))
			}
			slot := r.chooseSlot(p, 0, p.Src)
			ctx.Emit(r.forwardKey(0, p.Src, slot), p)
		}
	}, r.handle, combiner)
	if opts.MemStats != nil {
		*opts.MemStats = eng.MemStats()
	}
	return Stats{
		Rounds:            st.Rounds,
		RequestRounds:     st.RequestRounds,
		MaxQueue:          st.MaxQueue,
		TotalDelay:        st.TotalDelay,
		MaxPacketSteps:    st.MaxPacketSteps,
		DeliveredRequests: st.DeliveredRequests,
		DeliveredReplies:  st.DeliveredReplies,
		Merges:            st.Merges,
		Retransmits:       st.Retransmits,
		MaxModuleLoad:     st.MaxModuleLoad,
	}
}

// chooseSlot picks the outgoing link slot for a packet sitting at the
// given logical column: a random link during the first traversal, the
// unique-path link during the second.
func (r *router) chooseSlot(p *packet.Packet, logicalCol, node int) int {
	physical := logicalCol
	random := true
	if r.opts.SkipPhase1 {
		random = false
	} else if logicalCol >= r.levels-1 {
		physical = logicalCol - (r.levels - 1)
		random = false
	}
	if random {
		return p.Rand.Intn(r.spec.OutDegree(physical, node))
	}
	return r.spec.NextHop(physical, node, p.Dst)
}

// physLevel maps a logical edge level to the Spec level it uses.
func (r *router) physLevel(logicalEdge int) int {
	if r.opts.SkipPhase1 || logicalEdge < r.levels-1 {
		return logicalEdge
	}
	return logicalEdge - (r.levels - 1)
}

// handle advances one popped packet a column. Runs concurrently on
// distinct packets when Workers > 1.
func (r *router) handle(ctx *engine.Ctx, a engine.Arrival, round int) {
	p := a.P
	p.Hops++
	if a.Key&reverseBit != 0 {
		r.handleReplyArrival(ctx, p, round)
		return
	}
	cell := a.Key / r.degree
	slot := int(a.Key % r.degree)
	level := int(cell / r.width)
	fromNode := int(cell % r.width)
	node := r.spec.Out(r.physLevel(level), fromNode, slot)
	col := level + 1
	if r.record {
		p.RecordPath(node)
	}
	if col == r.logical-1 {
		r.deliverForward(ctx, p, node, round)
		return
	}
	next := r.chooseSlot(p, col, node)
	ctx.Emit(r.forwardKey(col, node, next), p)
}

// deliverForward completes a request's forward journey at the module
// node and, if configured, spawns its reply.
func (r *router) deliverForward(ctx *engine.Ctx, p *packet.Packet, node, round int) {
	if node != p.Dst {
		panic(fmt.Sprintf("leveled: packet %d delivered to %d, want %d", p.ID, node, p.Dst))
	}
	st := ctx.Stats()
	p.Arrived = round
	if round > st.RequestRounds {
		st.RequestRounds = round
	}
	wantReply := r.opts.Replies && p.Kind == packet.ReadRequest
	if !wantReply {
		// The packet's journey ends here: writes are fire-and-forget
		// ("back in case of a read instruction", §2.1).
		r.noteFinished(ctx, p)
	}
	st.DeliveredRequests += p.TotalCombined()
	ctx.AddLoad(node, p.TotalCombined())
	if !wantReply {
		return
	}
	r.makeReply(p)
	p.Stage = r.logical - 1 // current column index while retracing
	a := r.replyArrival(p)
	ctx.Emit(a.Key, a.P)
}

// makeReply flips a delivered request into its reply kind in place.
func (r *router) makeReply(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadRequest:
		p.Kind = packet.ReadReply
	case packet.WriteRequest:
		p.Kind = packet.WriteAck
	default:
		p.Kind = packet.ReadReply
	}
}

// replyArrival builds the queue insertion for a reply at column
// p.Stage about to traverse the reverse link toward column p.Stage-1.
func (r *router) replyArrival(p *packet.Packet) engine.Arrival {
	from := int(p.Path[p.Stage])
	to := int(p.Path[p.Stage-1])
	return engine.Arrival{Key: r.reverseKey(p.Stage-1, from, to), P: p}
}

// handleReplyArrival advances a retracing reply one column toward its
// requester, fanning out combined children where they merged.
func (r *router) handleReplyArrival(ctx *engine.Ctx, p *packet.Packet, round int) {
	p.Stage--
	col := p.Stage
	// Fan out any children that were combined into p at this column.
	for i, at := range p.CombinedAt {
		if at != col {
			continue
		}
		child := p.Children[i]
		r.makeReply(child)
		if child.Kind == packet.ReadReply {
			child.Value = p.Value
		}
		child.Stage = col
		if col == 0 {
			r.finishReply(ctx, child, round)
		} else {
			a := r.replyArrival(child)
			ctx.Emit(a.Key, a.P)
		}
	}
	if col == 0 {
		r.finishReply(ctx, p, round)
		return
	}
	a := r.replyArrival(p)
	ctx.Emit(a.Key, a.P)
}

func (r *router) finishReply(ctx *engine.Ctx, p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("leveled: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	ctx.Stats().DeliveredReplies++
	r.noteFinished(ctx, p)
}

// noteFinished folds a finished packet's cost into the aggregates.
func (r *router) noteFinished(ctx *engine.Ctx, p *packet.Packet) {
	st := ctx.Stats()
	st.TotalDelay += int64(p.Delay)
	if s := p.Steps(); s > st.MaxPacketSteps {
		st.MaxPacketSteps = s
	}
	if p.Arrived > st.Rounds {
		st.Rounds = p.Arrived
	}
}

// onDeterministicPath reports whether a forward edge key belongs to
// the second (unique-path) traversal, where two packets for the same
// address and module are guaranteed to share their remaining route
// and may therefore combine.
func (r *router) onDeterministicPath(key uint64) bool {
	level := int(key / (r.width * r.degree))
	return r.opts.SkipPhase1 || level >= r.levels-1
}

// combine merges an arriving request into a queued one with the same
// kind, address and module, if one exists on this deterministic-path
// link. Returns true if merged.
func (r *router) combine(ctx *engine.Ctx, q queue.Discipline, a engine.Arrival) bool {
	if a.Key&reverseBit != 0 || !r.onDeterministicPath(a.Key) {
		return false
	}
	p := a.P
	var host *packet.Packet
	q.Each(func(c *packet.Packet) bool {
		if c.Kind == p.Kind && c.Addr == p.Addr && c.Dst == p.Dst {
			host = c
			return false
		}
		return true
	})
	if host == nil {
		return false
	}
	// Both packets have arrived at the same column; that column index
	// is len(Path)-1 for each.
	host.Combine(p, len(p.Path)-1)
	ctx.Stats().Merges++
	return true
}
