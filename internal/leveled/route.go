package leveled

import (
	"fmt"
	"sort"
	"sync"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/queue"
)

// Options configures a routing run.
type Options struct {
	// Seed drives every random choice; equal seeds give identical runs.
	Seed uint64
	// SkipPhase1 disables the randomizing first traversal and routes
	// every packet directly along its unique path. This is the
	// ablation showing why Valiant's phase 1 is needed: adversarial
	// permutations then congest single links.
	SkipPhase1 bool
	// Replies makes every delivered request retrace its recorded path
	// in reverse as a reply (ReadReply / WriteAck), per the direction
	// bits of Theorem 2.6. Rounds then counts until all replies are
	// home.
	Replies bool
	// Combine merges same-kind requests for the same address and
	// module that meet in a queue during the deterministic traversal
	// (Theorem 2.6's message combining). Implies path recording.
	Combine bool
	// RecordPaths forces path recording even without Replies/Combine
	// (used by path-property tests).
	RecordPaths bool
	// Workers > 1 enables goroutine-parallel round processing. The
	// result is identical to the sequential simulation.
	Workers int
}

// Stats reports the outcome of one routing run.
type Stats struct {
	// Rounds is the total routing time in link steps, including the
	// reply traffic when Options.Replies is set.
	Rounds int
	// RequestRounds is the round by which every forward packet had
	// been delivered to its destination.
	RequestRounds int
	// MaxQueue is the largest queue occupancy observed on any link.
	MaxQueue int
	// TotalDelay sums every packet's time spent waiting in queues.
	TotalDelay int64
	// MaxPacketSteps is the largest hops+delay over all packets.
	MaxPacketSteps int
	// DeliveredRequests counts original requests that reached their
	// module (combined packets count once per constituent).
	DeliveredRequests int
	// DeliveredReplies counts original requesters that received a
	// reply.
	DeliveredReplies int
	// Merges counts combining events (Theorem 2.6).
	Merges int
	// MaxModuleLoad is the largest number of (un-combined) requests
	// delivered to a single last-column node.
	MaxModuleLoad int
}

const reverseBit = uint64(1) << 63

func forwardKey(level, node, slot int) uint64 {
	return uint64(level)<<48 | uint64(node)<<24 | uint64(slot)
}

func reverseKey(level, from, to int) uint64 {
	return reverseBit | uint64(level)<<48 | uint64(from)<<24 | uint64(to)
}

// router holds the per-run state of the synchronous simulation.
type router struct {
	spec    Spec
	opts    Options
	levels  int // ℓ
	logical int // logical columns: 2ℓ-1 (or ℓ when SkipPhase1)
	edges   map[uint64]*queue.FIFO
	free    []*queue.FIFO
	stats   Stats
	loads   map[int]int // forward deliveries per module
	record  bool
}

type arrival struct {
	key uint64
	p   *packet.Packet
}

// Route routes pkts through the leveled network described by spec
// using the universal two-phase randomized algorithm (Algorithm 2.1).
// Each packet travels from its Src in the first column to its Dst in
// the last column. Packets must have unique IDs. Route mutates the
// packets (hop/delay/path bookkeeping) and returns aggregate Stats.
func Route(spec Spec, pkts []*packet.Packet, opts Options) Stats {
	if spec.Levels() < 2 {
		panic("leveled: network needs at least 2 levels")
	}
	if spec.Width() > 1<<24 || spec.Degree() > 1<<24 {
		panic("leveled: width or degree exceeds the 24-bit key space")
	}
	r := &router{
		spec:    spec,
		opts:    opts,
		levels:  spec.Levels(),
		logical: 2*spec.Levels() - 1,
		edges:   make(map[uint64]*queue.FIFO),
		loads:   make(map[int]int),
		record:  opts.Replies || opts.Combine || opts.RecordPaths,
	}
	if opts.SkipPhase1 {
		r.logical = spec.Levels()
	}
	root := prng.New(opts.Seed)
	seen := make(map[int]bool, len(pkts))
	var injections []arrival
	for _, p := range pkts {
		if seen[p.ID] {
			panic(fmt.Sprintf("leveled: duplicate packet ID %d", p.ID))
		}
		seen[p.ID] = true
		if p.Src < 0 || p.Src >= spec.Width() || p.Dst < 0 || p.Dst >= spec.Width() {
			panic(fmt.Sprintf("leveled: packet %d endpoints out of range", p.ID))
		}
		p.Rand = root.Split(uint64(p.ID))
		p.Injected = 0
		p.EnqueuedAt = 0
		p.Arrived = -1
		if r.record {
			p.Path = append(p.Path[:0], int32(p.Src))
		}
		slot := r.chooseSlot(p, 0, p.Src)
		injections = append(injections, arrival{forwardKey(0, p.Src, slot), p})
	}
	r.pushAll(injections, 0)

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	for round := 1; len(r.edges) > 0; round++ {
		popped := r.popPhase(round, workers)
		arrivals := r.handlePhase(popped, round)
		r.pushAll(arrivals, round)
	}
	return r.stats
}

// chooseSlot picks the outgoing link slot for a packet sitting at the
// given logical column: a random link during the first traversal, the
// unique-path link during the second.
func (r *router) chooseSlot(p *packet.Packet, logicalCol, node int) int {
	physical := logicalCol
	random := true
	if r.opts.SkipPhase1 {
		random = false
	} else if logicalCol >= r.levels-1 {
		physical = logicalCol - (r.levels - 1)
		random = false
	}
	if random {
		return p.Rand.Intn(r.spec.OutDegree(physical, node))
	}
	return r.spec.NextHop(physical, node, p.Dst)
}

// physLevel maps a logical edge level to the Spec level it uses.
func (r *router) physLevel(logicalEdge int) int {
	if r.opts.SkipPhase1 || logicalEdge < r.levels-1 {
		return logicalEdge
	}
	return logicalEdge - (r.levels - 1)
}

// popPhase pops the head of every non-empty link queue (one packet
// crosses each link per round) and returns the popped packets with
// the key of the edge they crossed. Emptied queues are recycled.
func (r *router) popPhase(round, workers int) []arrival {
	if workers <= 1 || len(r.edges) < 256 {
		popped := make([]arrival, 0, len(r.edges))
		for key, q := range r.edges {
			p := q.Pop()
			p.Delay += round - p.EnqueuedAt - 1
			popped = append(popped, arrival{key, p})
			if q.Len() == 0 {
				delete(r.edges, key)
				r.free = append(r.free, q)
			}
		}
		return popped
	}
	keys := make([]uint64, 0, len(r.edges))
	for key := range r.edges {
		keys = append(keys, key)
	}
	popped := make([]arrival, len(keys))
	var wg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(keys) {
			break
		}
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				q := r.edges[keys[i]]
				p := q.Pop()
				p.Delay += round - p.EnqueuedAt - 1
				popped[i] = arrival{keys[i], p}
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, key := range keys {
		if q := r.edges[key]; q.Len() == 0 {
			delete(r.edges, key)
			r.free = append(r.free, q)
		}
	}
	return popped
}

// handlePhase advances every popped packet one column and produces
// the next round's queue insertions.
func (r *router) handlePhase(popped []arrival, round int) []arrival {
	arrivals := make([]arrival, 0, len(popped))
	for _, a := range popped {
		p := a.p
		p.Hops++
		if a.key&reverseBit != 0 {
			arrivals = r.handleReplyArrival(arrivals, p, round)
			continue
		}
		level := int(a.key >> 48)
		fromNode := int(a.key >> 24 & 0xffffff)
		slot := int(a.key & 0xffffff)
		node := r.spec.Out(r.physLevel(level), fromNode, slot)
		col := level + 1
		if r.record {
			p.RecordPath(node)
		}
		if col == r.logical-1 {
			r.deliverForward(p, node, round, &arrivals)
			continue
		}
		next := r.chooseSlot(p, col, node)
		arrivals = append(arrivals, arrival{forwardKey(col, node, next), p})
	}
	// Sort so that queue insertion order is independent of map
	// iteration order: parallel and sequential runs stay identical.
	sort.Slice(arrivals, func(i, j int) bool {
		if arrivals[i].key != arrivals[j].key {
			return arrivals[i].key < arrivals[j].key
		}
		return arrivals[i].p.ID < arrivals[j].p.ID
	})
	return arrivals
}

// deliverForward completes a request's forward journey at the module
// node and, if configured, spawns its reply.
func (r *router) deliverForward(p *packet.Packet, node, round int, arrivals *[]arrival) {
	if node != p.Dst {
		panic(fmt.Sprintf("leveled: packet %d delivered to %d, want %d", p.ID, node, p.Dst))
	}
	p.Arrived = round
	if round > r.stats.RequestRounds {
		r.stats.RequestRounds = round
	}
	wantReply := r.opts.Replies && p.Kind == packet.ReadRequest
	if !wantReply {
		// The packet's journey ends here: writes are fire-and-forget
		// ("back in case of a read instruction", §2.1).
		r.noteFinished(p)
	}
	n := p.TotalCombined()
	r.stats.DeliveredRequests += n
	r.loads[node] += n
	if r.loads[node] > r.stats.MaxModuleLoad {
		r.stats.MaxModuleLoad = r.loads[node]
	}
	if !wantReply {
		return
	}
	r.makeReply(p)
	p.Stage = r.logical - 1 // current column index while retracing
	*arrivals = append(*arrivals, r.replyArrival(p))
}

// makeReply flips a delivered request into its reply kind in place.
func (r *router) makeReply(p *packet.Packet) {
	switch p.Kind {
	case packet.ReadRequest:
		p.Kind = packet.ReadReply
	case packet.WriteRequest:
		p.Kind = packet.WriteAck
	default:
		p.Kind = packet.ReadReply
	}
}

// replyArrival builds the queue insertion for a reply at column
// p.Stage about to traverse the reverse link toward column p.Stage-1.
func (r *router) replyArrival(p *packet.Packet) arrival {
	from := int(p.Path[p.Stage])
	to := int(p.Path[p.Stage-1])
	return arrival{reverseKey(p.Stage-1, from, to), p}
}

// handleReplyArrival advances a retracing reply one column toward its
// requester, fanning out combined children where they merged.
func (r *router) handleReplyArrival(arrivals []arrival, p *packet.Packet, round int) []arrival {
	p.Stage--
	col := p.Stage
	// Fan out any children that were combined into p at this column.
	for i, at := range p.CombinedAt {
		if at != col {
			continue
		}
		child := p.Children[i]
		r.makeReply(child)
		if child.Kind == packet.ReadReply {
			child.Value = p.Value
		}
		child.Stage = col
		if col == 0 {
			r.finishReply(child, round)
		} else {
			arrivals = append(arrivals, r.replyArrival(child))
		}
	}
	if col == 0 {
		r.finishReply(p, round)
		return arrivals
	}
	return append(arrivals, r.replyArrival(p))
}

func (r *router) finishReply(p *packet.Packet, round int) {
	if int(p.Path[0]) != p.Src {
		panic(fmt.Sprintf("leveled: reply %d retraced to %d, want %d", p.ID, p.Path[0], p.Src))
	}
	p.Arrived = round
	r.stats.DeliveredReplies++
	r.noteFinished(p)
}

// noteFinished folds a finished packet's cost into the aggregates.
func (r *router) noteFinished(p *packet.Packet) {
	r.stats.TotalDelay += int64(p.Delay)
	if s := p.Steps(); s > r.stats.MaxPacketSteps {
		r.stats.MaxPacketSteps = s
	}
	if p.Arrived > r.stats.Rounds {
		r.stats.Rounds = p.Arrived
	}
}

// pushAll inserts the (already sorted) arrivals into their queues,
// applying Theorem 2.6 combining where enabled.
func (r *router) pushAll(arrivals []arrival, round int) {
	for _, a := range arrivals {
		p := a.p
		if r.opts.Combine && a.key&reverseBit == 0 && r.onDeterministicPath(a.key) {
			if r.tryCombine(a.key, p) {
				continue
			}
		}
		q := r.edges[a.key]
		if q == nil {
			if n := len(r.free); n > 0 {
				q = r.free[n-1]
				r.free = r.free[:n-1]
			} else {
				q = queue.NewFIFO(4)
			}
			r.edges[a.key] = q
		}
		p.EnqueuedAt = round
		q.Push(p)
		if q.Len() > r.stats.MaxQueue {
			r.stats.MaxQueue = q.Len()
		}
	}
}

// onDeterministicPath reports whether a forward edge key belongs to
// the second (unique-path) traversal, where two packets for the same
// address and module are guaranteed to share their remaining route
// and may therefore combine.
func (r *router) onDeterministicPath(key uint64) bool {
	level := int(key >> 48)
	return r.opts.SkipPhase1 || level >= r.levels-1
}

// tryCombine merges p into a queued request with the same kind,
// address and module, if one exists. Returns true if merged.
func (r *router) tryCombine(key uint64, p *packet.Packet) bool {
	q := r.edges[key]
	if q == nil {
		return false
	}
	var host *packet.Packet
	q.Each(func(c *packet.Packet) bool {
		if c.Kind == p.Kind && c.Addr == p.Addr && c.Dst == p.Dst {
			host = c
			return false
		}
		return true
	})
	if host == nil {
		return false
	}
	// Both packets have arrived at the same column; that column index
	// is len(Path)-1 for each.
	host.Combine(p, len(p.Path)-1)
	r.stats.Merges++
	return true
}
