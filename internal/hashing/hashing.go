// Package hashing implements the Karlin–Upfal universal class of hash
// functions the paper uses to scatter the PRAM's shared address space
// over the network's memory modules (§2.1):
//
//	H = { h : h(x) = ((Σ_{0<=i<S} a_i x^i) mod P) mod N }
//
// where P is a prime >= M (the PRAM address-space size), the a_i are
// drawn uniformly from Z_P, and the degree S = cL for a constant c
// and L the diameter of the emulating network. Lemma 2.2 bounds the
// probability that any module receives more than γ >= S of the items
// touched in one PRAM step, which is what makes the Õ(ℓ)-time
// emulation go through. Each function needs only O(L log M) bits to
// describe — the property the paper highlights as making the scheme
// practical — which Func.Bits reports.
package hashing

import (
	"fmt"

	"pramemu/internal/mathx"
	"pramemu/internal/prng"
)

// Class is the family H for a fixed address-space size M, module
// count N and polynomial degree S.
type Class struct {
	// P is the prime modulus, the smallest prime >= M.
	P uint64
	// N is the number of memory modules.
	N int
	// Degree is S, the number of coefficients (polynomial degree + 1).
	Degree int
}

// NewClass builds the family H for an address space of M locations
// hashed onto n modules with polynomial degree S (the paper sets
// S = cL with L the network diameter). It panics on degenerate
// parameters.
func NewClass(m uint64, n int, degree int) *Class {
	if m == 0 {
		panic("hashing: address space must be non-empty")
	}
	if n < 1 {
		panic("hashing: need at least one memory module")
	}
	if degree < 1 {
		panic("hashing: polynomial degree must be >= 1")
	}
	return &Class{P: mathx.NextPrime(m), N: n, Degree: degree}
}

// Func is one hash function drawn from a Class.
type Func struct {
	class  *Class
	coeffs []uint64 // a_{S-1}, ..., a_0 order for Horner evaluation
}

// Draw samples a uniformly random member of the class using src.
func (c *Class) Draw(src *prng.Source) *Func {
	coeffs := make([]uint64, c.Degree)
	for i := range coeffs {
		coeffs[i] = src.Uint64n(c.P)
	}
	return &Func{class: c, coeffs: coeffs}
}

// Hash maps address x to a module in [0, N). Addresses must be < P
// (i.e. within the declared address space, up to prime rounding).
func (f *Func) Hash(x uint64) int {
	if x >= f.class.P {
		panic(fmt.Sprintf("hashing: address %d outside address space (P=%d)", x, f.class.P))
	}
	p := f.class.P
	acc := uint64(0)
	for _, a := range f.coeffs {
		acc = mathx.AddMod(mathx.MulMod(acc, x, p), a, p)
	}
	return int(acc % uint64(f.class.N))
}

// Bits returns the description length of the function in bits:
// S coefficients of ⌈log2 P⌉ bits each — the O(L log M) of §2.1.
func (f *Func) Bits() int {
	bitsPerCoeff := 0
	for v := f.class.P - 1; v > 0; v >>= 1 {
		bitsPerCoeff++
	}
	return len(f.coeffs) * bitsPerCoeff
}

// MaxLoad returns the largest number of addresses from addrs mapped
// to a single module — the x^S_L quantity bounded by Lemma 2.2.
func (f *Func) MaxLoad(addrs []uint64) int {
	loads := make(map[int]int)
	max := 0
	for _, a := range addrs {
		loads[f.Hash(a)]++
		if loads[f.Hash(a)] > max {
			max = loads[f.Hash(a)]
		}
	}
	return max
}

// Manager pairs a Class with a current function and implements the
// paper's rehashing protocol: if a routing attempt exceeds its
// allotted time (because some module drew more than cL items), a
// designated processor draws a fresh function and all locations are
// redistributed. Rehashes "hardly happen"; Manager counts them so
// experiment E11 can report the observed frequency.
type Manager struct {
	class    *Class
	src      *prng.Source
	current  *Func
	rehashes int
}

// NewManager draws an initial function for the class from seed.
func NewManager(c *Class, seed uint64) *Manager {
	src := prng.New(seed)
	return &Manager{class: c, src: src, current: c.Draw(src)}
}

// Current returns the active hash function.
func (m *Manager) Current() *Func { return m.current }

// Rehash draws a fresh function, invalidating the previous placement.
func (m *Manager) Rehash() {
	m.current = m.class.Draw(m.src)
	m.rehashes++
}

// Rehashes returns how many times Rehash has been called.
func (m *Manager) Rehashes() int { return m.rehashes }
