package hashing

import (
	"math"
	"testing"

	"pramemu/internal/prng"
)

func TestNewClassPrime(t *testing.T) {
	c := NewClass(1000, 16, 8)
	if c.P != 1009 {
		t.Fatalf("P = %d, want 1009", c.P)
	}
	if c.N != 16 || c.Degree != 8 {
		t.Fatalf("class = %+v", c)
	}
}

func TestNewClassPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero M":      func() { NewClass(0, 4, 2) },
		"zero N":      func() { NewClass(10, 0, 2) },
		"zero degree": func() { NewClass(10, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHashInRange(t *testing.T) {
	c := NewClass(1<<20, 100, 12)
	f := c.Draw(prng.New(1))
	for x := uint64(0); x < 10000; x++ {
		h := f.Hash(x)
		if h < 0 || h >= 100 {
			t.Fatalf("Hash(%d) = %d out of range", x, h)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	c := NewClass(1<<16, 64, 6)
	f1 := c.Draw(prng.New(7))
	f2 := c.Draw(prng.New(7))
	for x := uint64(0); x < 1000; x++ {
		if f1.Hash(x) != f2.Hash(x) {
			t.Fatal("functions drawn with equal seeds differ")
		}
	}
}

func TestDrawsDiffer(t *testing.T) {
	c := NewClass(1<<16, 64, 6)
	f1 := c.Draw(prng.New(1))
	f2 := c.Draw(prng.New(2))
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if f1.Hash(x) == f2.Hash(x) {
			same++
		}
	}
	// Two random functions agree on ~1/64 of points.
	if same > 100 {
		t.Fatalf("independent draws agree on %d/1000 points", same)
	}
}

func TestHashPanicsOutsideAddressSpace(t *testing.T) {
	c := NewClass(100, 10, 2)
	f := c.Draw(prng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("hashing beyond P should panic")
		}
	}()
	f.Hash(c.P)
}

func TestUniformity(t *testing.T) {
	// Chi-squared test over 64 modules with 64k sequential addresses.
	const n, draws = 64, 1 << 16
	c := NewClass(1<<20, n, 10)
	f := c.Draw(prng.New(3))
	var counts [n]int
	for x := uint64(0); x < draws; x++ {
		counts[f.Hash(x)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, cnt := range counts {
		d := float64(cnt) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom: p=0.001 at ~103. Allow 150 for slack.
	if chi2 > 150 {
		t.Fatalf("chi2 = %.1f over 64 modules", chi2)
	}
}

// TestLemma22MaxLoad checks the empirical content of Lemma 2.2: with
// degree S = cL, mapping N requested items onto N modules keeps the
// maximum module load at most a small multiple of L, w.h.p.
func TestLemma22MaxLoad(t *testing.T) {
	const n = 5040 // star graph n=7: N = 7! nodes
	const l = 9    // its diameter
	c := NewClass(1<<30, n, 2*l)
	addrs := make([]uint64, n)
	src := prng.New(42)
	for trial := 0; trial < 5; trial++ {
		f := c.Draw(src)
		for i := range addrs {
			addrs[i] = src.Uint64n(1 << 30)
		}
		if load := f.MaxLoad(addrs); load > 2*l {
			t.Fatalf("trial %d: max load %d exceeds 2L = %d", trial, load, 2*l)
		}
	}
}

// TestCorollary31LogOverLogLog checks Corollary 3.1's balls-in-bins
// shape: N items into N buckets gives max load O(log N / log log N).
func TestCorollary31LogOverLogLog(t *testing.T) {
	const n = 1 << 14
	c := NewClass(1<<30, n, 16)
	src := prng.New(9)
	f := c.Draw(src)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = src.Uint64n(1 << 30)
	}
	bound := 4 * math.Log(n) / math.Log(math.Log(n))
	if load := f.MaxLoad(addrs); float64(load) > bound {
		t.Fatalf("max load %d exceeds 4·logN/loglogN = %.1f", load, bound)
	}
}

func TestBits(t *testing.T) {
	c := NewClass(1<<20, 64, 10)
	f := c.Draw(prng.New(1))
	// P is just above 2^20, so 21 bits per coefficient, 10 coefficients.
	if got := f.Bits(); got != 210 {
		t.Fatalf("Bits = %d, want 210", got)
	}
}

func TestManagerRehash(t *testing.T) {
	c := NewClass(1<<16, 32, 4)
	m := NewManager(c, 5)
	before := m.Current()
	if m.Rehashes() != 0 {
		t.Fatal("fresh manager has rehashes")
	}
	m.Rehash()
	if m.Rehashes() != 1 {
		t.Fatalf("rehashes = %d", m.Rehashes())
	}
	after := m.Current()
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		if before.Hash(x) != after.Hash(x) {
			diff++
		}
	}
	if diff < 900 {
		t.Fatalf("rehash changed only %d/1000 mappings", diff)
	}
}

func TestDegreeOneIsLinear(t *testing.T) {
	// A degree-1 "polynomial" is a constant function mod P: every
	// address maps to the same module. This guards the Horner order.
	c := NewClass(1000, 10, 1)
	f := c.Draw(prng.New(2))
	first := f.Hash(0)
	for x := uint64(1); x < 100; x++ {
		if f.Hash(x) != first {
			t.Fatal("degree-1 class must be constant functions")
		}
	}
}
