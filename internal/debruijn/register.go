package debruijn

import "pramemu/internal/topology"

func init() {
	topology.Register(topology.Family{
		Name:    "debruijn",
		Params:  "N = digit count n >= 1 (default 10); K = alphabet d >= 2 (default 2); d^n nodes",
		Theorem: "leveled-network framework at constant degree (§2.3.1)",
		Build: func(p topology.Params) (topology.Built, error) {
			n := topology.DefaultInt(p.N, 10)
			d := topology.DefaultInt(p.K, 2)
			if err := topology.CheckPow("debruijn", d, n, topology.MaxNodes); err != nil {
				return topology.Built{}, err
			}
			return topology.Built{Graph: New(d, n)}, nil
		},
	})
}
