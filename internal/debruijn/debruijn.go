// Package debruijn implements the d-ary de Bruijn graph B(d, n): d^n
// nodes labelled by n-digit base-d strings, node x linked to the
// shift-and-append successors (x·d + a) mod d^n for every digit a.
// Constant degree d with logarithmic diameter n makes it the
// bounded-degree counterpart of the paper's leveled-network families:
// like the d-way shuffle, between any two nodes there is a unique
// walk of exactly n links (append dst's digits most-significant
// first), so the graph unrolls into a leveled network of n+1 columns
// and Algorithm 2.1's two-phase analysis applies directly.
//
// Construction is O(1) space, so arbitrarily large instances are
// cheap to build — the simulator's key-space check is what bounds a
// routable run, and it now fails with an error rather than a panic.
package debruijn

import (
	"fmt"

	"pramemu/internal/leveled"
	"pramemu/internal/topology"
)

// Graph is a d-ary de Bruijn graph on d^n nodes.
type Graph struct {
	d, n  int
	nodes int
}

// New constructs B(d, n). It panics if d < 2, n < 1, or d^n exceeds
// the simulator's node-id limit (topology.MaxNodes, 2^31;
// construction itself is O(1), and the same bound is what the
// simulator enforces — with an error rather than a panic — on
// oversized graphs).
func New(d, n int) *Graph {
	if d < 2 {
		panic("debruijn: d must be >= 2")
	}
	if n < 1 {
		panic("debruijn: n must be >= 1")
	}
	nodes := 1
	for i := 0; i < n; i++ {
		if nodes > topology.MaxNodes/d {
			panic("debruijn: d^n exceeds the simulator's node-id limit")
		}
		nodes *= d
	}
	return &Graph{d: d, n: n, nodes: nodes}
}

// D returns the digit alphabet size (and out-degree) d.
func (g *Graph) D() int { return g.d }

// Name implements topology.Graph.
func (g *Graph) Name() string { return fmt.Sprintf("debruijn(d=%d,n=%d)", g.d, g.n) }

// Nodes implements topology.Graph: d^n.
func (g *Graph) Nodes() int { return g.nodes }

// Degree implements topology.Graph: d shift-append links (self-loops
// at the constant strings included, as in the standard definition).
func (g *Graph) Degree(node int) int { return g.d }

// Neighbor implements topology.Graph: shift the label up one digit
// and append `slot`.
func (g *Graph) Neighbor(node, slot int) int {
	return (node*g.d + slot) % g.nodes
}

// Diameter implements topology.Graph: n.
func (g *Graph) Diameter() int { return g.n }

// NextHop implements topology.Graph. The unique fixed-length walk to
// dst appends dst's digits from most to least significant; after n
// appends the label equals dst regardless of the start, so arrival is
// determined by the hop count, not by node identity.
func (g *Graph) NextHop(node, dst, taken int) (slot int, done bool) {
	if taken >= g.n {
		if node != dst {
			panic(fmt.Sprintf("debruijn: walk ended at %d, want %d", node, dst))
		}
		return 0, true
	}
	return g.digit(dst, g.n-1-taken), false
}

// TakenSensitive implements topology.TakenSensitive: unique walks
// have fixed length n, so NextHop depends on the hops already taken
// and combining requires equal progress.
func (g *Graph) TakenSensitive() bool { return true }

// digit returns base-d digit i of label (digit 0 least significant).
func (g *Graph) digit(label, i int) int {
	for ; i > 0; i-- {
		label /= g.d
	}
	return label % g.d
}

// AsLeveled implements topology.Leveler: n+1 columns of d^n nodes,
// level i appending digit n-1-i of the destination.
func (g *Graph) AsLeveled() leveled.Spec { return &leveledDeBruijn{g} }

type leveledDeBruijn struct{ g *Graph }

func (s *leveledDeBruijn) Name() string {
	return fmt.Sprintf("debruijn-leveled(d=%d,n=%d)", s.g.d, s.g.n)
}
func (s *leveledDeBruijn) Levels() int                   { return s.g.n + 1 }
func (s *leveledDeBruijn) Width() int                    { return s.g.nodes }
func (s *leveledDeBruijn) Degree() int                   { return s.g.d }
func (s *leveledDeBruijn) OutDegree(level, node int) int { return s.g.d }
func (s *leveledDeBruijn) Out(level, node, slot int) int { return s.g.Neighbor(node, slot) }
func (s *leveledDeBruijn) NextHop(level, node, dst int) int {
	return s.g.digit(dst, s.g.n-1-level)
}
