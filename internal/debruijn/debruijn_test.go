package debruijn

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/prng"
	"pramemu/internal/simnet"
)

func TestBasicShape(t *testing.T) {
	g := New(2, 4)
	if g.Nodes() != 16 || g.Degree(0) != 2 || g.Diameter() != 4 {
		t.Fatalf("B(2,4) shape (%d, %d, %d)", g.Nodes(), g.Degree(0), g.Diameter())
	}
	if !g.TakenSensitive() {
		t.Fatal("fixed-length walks must be taken-sensitive")
	}
}

func TestNeighborShiftAppend(t *testing.T) {
	g := New(2, 3)
	// 011 -> shift-append 1 -> 111; -> append 0 -> 110.
	if got := g.Neighbor(3, 1); got != 7 {
		t.Fatalf("neighbor(011, 1) = %03b, want 111", got)
	}
	if got := g.Neighbor(3, 0); got != 6 {
		t.Fatalf("neighbor(011, 0) = %03b, want 110", got)
	}
	// The all-zero string has a self-loop on digit 0.
	if got := g.Neighbor(0, 0); got != 0 {
		t.Fatalf("neighbor(000, 0) = %d, want the self-loop", got)
	}
}

func TestFixedLengthWalksExhaustive(t *testing.T) {
	// Every pair on B(3,3): the unique walk takes exactly n hops and
	// lands on dst regardless of the start.
	g := New(3, 3)
	for u := 0; u < g.Nodes(); u++ {
		for v := 0; v < g.Nodes(); v++ {
			at := u
			for taken := 0; ; taken++ {
				slot, done := g.NextHop(at, v, taken)
				if done {
					if taken != g.Diameter() {
						t.Fatalf("walk %d->%d finished after %d hops, want %d", u, v, taken, g.Diameter())
					}
					break
				}
				at = g.Neighbor(at, slot)
			}
			if at != v {
				t.Fatalf("walk %d->%d ended at %d", u, v, at)
			}
		}
	}
}

func TestLeveledViewMatchesGraph(t *testing.T) {
	g := New(2, 5)
	spec := g.AsLeveled()
	if spec.Levels() != 6 || spec.Width() != g.Nodes() || spec.Degree() != 2 {
		t.Fatalf("leveled shape (%d, %d, %d)", spec.Levels(), spec.Width(), spec.Degree())
	}
	for level := 0; level < spec.Levels()-1; level++ {
		for node := 0; node < spec.Width(); node += 3 {
			for slot := 0; slot < 2; slot++ {
				if spec.Out(level, node, slot) != g.Neighbor(node, slot) {
					t.Fatalf("Out(%d, %d, %d) diverges from the graph", level, node, slot)
				}
			}
			dst := (node * 11) % spec.Width()
			wantSlot, _ := g.NextHop(node, dst, level)
			if got := spec.NextHop(level, node, dst); got != wantSlot {
				t.Fatalf("leveled NextHop(%d, %d, %d) = %d, want %d", level, node, dst, got, wantSlot)
			}
		}
	}
}

func TestValiantPermutationRouting(t *testing.T) {
	g := New(2, 8) // 256 nodes
	perm := prng.New(6).Perm(g.Nodes())
	pkts := make([]*packet.Packet, len(perm))
	for i, dst := range perm {
		pkts[i] = packet.New(i, i, dst, packet.Transit)
	}
	stats, err := simnet.Route(g, pkts, simnet.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveredRequests != g.Nodes() {
		t.Fatalf("delivered %d/%d", stats.DeliveredRequests, g.Nodes())
	}
	// Two fixed-length phases of n hops each plus queueing delay.
	if stats.Rounds < 2*g.Diameter() || stats.Rounds > 15*g.Diameter() {
		t.Fatalf("rounds %d outside Õ(n) band for n=%d", stats.Rounds, g.Diameter())
	}
}

func TestHugeConstructionIsCheapAndRoutable(t *testing.T) {
	// Building B(2,25) is O(1), and with the engine's paged link
	// tables a 2^25-node graph routes (an empty run prices only the
	// page directory, not the 2^26-key table the flat path would
	// allocate). Only past topology.MaxNodes does construction panic.
	g := New(2, 25)
	if g.Nodes() != 1<<25 {
		t.Fatalf("nodes %d", g.Nodes())
	}
	if _, err := simnet.Route(g, nil, simnet.Options{Seed: 1}); err != nil {
		t.Fatalf("simnet rejected a 2^25-node graph: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 32) should panic: 2^32 exceeds the node-id limit")
		}
	}()
	New(2, 32)
}
