// Package buildcache is the process-wide topology build cache: a
// content-keyed (family, N, K, leveled), size-budgeted, ref-counted
// LRU of topology.Built values with singleflight deduplication.
// Graphs are stateless and safe for concurrent use by contract
// (topology.Graph), so every cell, experiment row and sweepd job that
// names the same network can route on one immutable build instead of
// reconstructing it — spec expansion, the scenario fallback path, the
// experiment table drivers and the sweep daemon all resolve builds
// here. Concurrent requests for the same key are deduplicated: one
// caller builds while the rest wait on the entry, so a sweep pool
// fanning out over one topology constructs it exactly once.
//
// Entries are reference-counted: a Ref pins its build against
// eviction for as long as a grid (or a single cell) is routing on it,
// and Release hands the pin back. The budget bounds resident bytes of
// *unpinned* entries — eviction is LRU over ready entries with no
// outstanding refs, so a cache whose live working set exceeds the
// budget degrades to build-per-use for the overflow instead of
// failing. Failed builds are never cached; the error is returned to
// every waiter and the key is retried on the next Get.
package buildcache

import (
	"sync"
	"time"

	"pramemu/internal/topology"
)

// DefaultBudget is the Default cache's byte budget: generous against
// the registry families' real footprints (a 16.7M-node de Bruijn
// graph prices around 1 GiB of table-free adjacency arithmetic, the
// Cayley families far less), small against the engine tables the
// builds feed.
const DefaultBudget int64 = 256 << 20

// Key identifies one build: the registry family plus its size
// parameters, and whether the cell routes the leveled unrolling —
// part of the key so per-view accounting in stats matches cell
// identity, even though Build returns both views in one value.
type Key struct {
	Family  string
	N, K    int
	Leveled bool
}

// Stats is a point-in-time snapshot of the cache counters. Hits,
// Misses, Evictions and BuildNS are cumulative; Entries and Bytes are
// current residency. The JSON shape is what sweepd's /healthz and the
// -report trailer embed.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	BuildNS   int64 `json:"build_ns"`
}

// Delta returns the cumulative counters relative to an earlier
// snapshot, keeping the residency fields at their current values —
// the per-run accounting the -report trailer wants.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
		BuildNS:   s.BuildNS - prev.BuildNS,
	}
}

type entry struct {
	key   Key
	built topology.Built
	bytes int64
	refs  int
	seq   uint64        // last-use stamp; smallest = LRU victim
	ready chan struct{} // closed when built or err is final
	err   error
}

// Cache is one build cache. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	seq     uint64
	entries map[Key]*entry
	bytes   int64

	hits, misses, evictions, buildNS int64
}

// New returns a cache bounding unpinned entries to budget bytes. A
// budget <= 0 disables caching entirely: Get builds fresh every call
// (still counting misses and build time), returns no Ref, and retains
// nothing.
func New(budget int64) *Cache {
	return &Cache{budget: budget, entries: map[Key]*entry{}}
}

// Ref pins one cache entry against eviction. Release is idempotent
// and nil-safe, so callers on error paths can release unconditionally.
type Ref struct {
	c    *Cache
	e    *entry
	once sync.Once
}

// Release returns the pin. Once every Ref on an entry is released the
// entry becomes evictable (it stays resident until the budget needs
// the space).
func (r *Ref) Release() {
	if r == nil || r.c == nil {
		return
	}
	r.once.Do(func() {
		r.c.mu.Lock()
		r.e.refs--
		r.c.evict()
		r.c.mu.Unlock()
	})
}

// Get resolves a build through the cache: a resident entry is a hit,
// an in-flight build is joined (singleflight), and a miss builds
// under the requesting goroutine and publishes the result. The
// returned Ref (nil only when caching is disabled or on error) pins
// the entry; callers release it when they stop routing on the build.
func (c *Cache) Get(family string, p topology.Params, leveled bool) (topology.Built, *Ref, error) {
	key := Key{Family: family, N: p.N, K: p.K, Leveled: leveled}
	c.mu.Lock()
	if c.budget <= 0 {
		c.misses++
		c.mu.Unlock()
		start := time.Now()
		b, err := topology.Build(family, p)
		elapsed := time.Since(start).Nanoseconds()
		c.mu.Lock()
		c.buildNS += elapsed
		c.mu.Unlock()
		if err != nil {
			return topology.Built{}, nil, err
		}
		return b, nil, nil
	}
	for {
		e, ok := c.entries[key]
		if !ok {
			break
		}
		if ready(e) {
			c.hits++
			e.refs++
			c.seq++
			e.seq = c.seq
			c.mu.Unlock()
			return e.built, &Ref{c: c, e: e}, nil
		}
		// In flight: wait off the lock, then re-check — the builder
		// removes the entry on failure, and a tight budget may have
		// evicted it between the close and our wakeup.
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return topology.Built{}, nil, e.err
		}
		c.mu.Lock()
	}
	// Miss: publish the in-flight entry, build outside the lock.
	e := &entry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	start := time.Now()
	b, err := topology.Build(family, p)
	elapsed := time.Since(start).Nanoseconds()
	c.mu.Lock()
	c.buildNS += elapsed
	if err != nil {
		delete(c.entries, key)
		e.err = err
		close(e.ready)
		c.mu.Unlock()
		return topology.Built{}, nil, err
	}
	e.built = b
	e.bytes = sizeOf(b)
	e.refs = 1
	c.seq++
	e.seq = c.seq
	c.bytes += e.bytes
	close(e.ready)
	c.evict()
	c.mu.Unlock()
	return b, &Ref{c: c, e: e}, nil
}

// SetBudget rebudgets the cache in place (existing Refs stay valid).
// Shrinking evicts idle entries immediately; <= 0 disables caching
// and drains idle entries now, with pinned ones falling out as their
// refs release.
func (c *Cache) SetBudget(budget int64) {
	c.mu.Lock()
	c.budget = budget
	c.evict()
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		BuildNS:   c.buildNS,
	}
}

// evict drops least-recently-used idle entries until resident bytes
// fit the budget. Pinned (refs > 0) and in-flight entries are never
// victims, so a working set larger than the budget simply stays — the
// budget bounds what the cache holds speculatively, not what callers
// are actively routing on. Callers hold c.mu.
func (c *Cache) evict() {
	for c.bytes > c.budget {
		var victim *entry
		for _, e := range c.entries {
			if e.refs > 0 || !ready(e) || e.err != nil {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// ready reports whether e's build has finished (the channel is closed
// by the builder under the happens-before edge waiters rely on).
func ready(e *entry) bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// sizeOf estimates a build's resident footprint for budgeting. Exact
// sizes would need reflection over nine family layouts; the estimate
// charges a fixed base plus per-node adjacency arithmetic and a
// per-level term for the unrolling, which tracks the real footprints
// within a small factor — good enough for an LRU watermark.
func sizeOf(b topology.Built) int64 {
	s := int64(512)
	if b.Graph != nil {
		s += int64(b.Graph.Nodes()) * 64
	}
	if b.Spec != nil {
		s += int64(b.Spec.Levels()) * 64
	}
	return s
}

var defaultCache = New(DefaultBudget)

// Default is the process-wide cache every layer shares unless handed
// an explicit one: scenario expansion, the single-cell fallback path,
// the experiment drivers and routebench all resolve builds through
// it, so a warm process amortizes construction across them.
func Default() *Cache { return defaultCache }

// SetDefaultBudget rebudgets the Default cache (the routebench
// -buildcache flag); <= 0 disables process-wide caching.
func SetDefaultBudget(budget int64) { defaultCache.SetBudget(budget) }
