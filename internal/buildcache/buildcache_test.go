package buildcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

// The bctest family counts constructions (the observable singleflight
// and error-retry behavior) and delegates to the star family for a
// real Built value. A negative N is the registry's error path.
var (
	buildCount   atomic.Int64
	registerOnce sync.Once
)

func registerTestFamily() {
	registerOnce.Do(func() {
		topology.Register(topology.Family{
			Name:    "bctest",
			Params:  "N: star dimension (test-only counting family)",
			Theorem: "test",
			Build: func(p topology.Params) (topology.Built, error) {
				buildCount.Add(1)
				if p.N < 0 {
					return topology.Built{}, errors.New("bctest: negative n")
				}
				time.Sleep(2 * time.Millisecond) // widen the singleflight window
				return topology.Build("star", p)
			},
		})
	})
}

func TestBuildCacheSingleflight(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	before := buildCount.Load()
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, ref, err := c.Get("bctest", topology.Params{N: 4}, false)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if b.Nodes() != 24 {
				t.Errorf("Nodes() = %d, want 24", b.Nodes())
			}
			ref.Release()
		}()
	}
	wg.Wait()
	if got := buildCount.Load() - before; got != 1 {
		t.Errorf("%d concurrent Gets ran %d builds, want 1", callers, got)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Misses != callers {
		t.Errorf("Hits+Misses = %d, want %d", st.Hits+st.Misses, callers)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1", st.Entries)
	}
	if st.BuildNS <= 0 {
		t.Errorf("BuildNS = %d, want > 0", st.BuildNS)
	}
}

func TestBuildCacheHitReturnsSameBuild(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	a, ra, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	b, rb, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph != b.Graph {
		t.Error("hit returned a different Graph than the miss built")
	}
	ra.Release()
	rb.Release()
}

func TestBuildCacheEvictionAndRefcount(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	// Two keys of identical footprint: same build, leveled flag split.
	_, r1, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	r1.Release()
	oneEntry := c.Stats().Bytes
	if oneEntry <= 0 {
		t.Fatalf("Bytes = %d after one insert, want > 0", oneEntry)
	}
	// Budget one entry: the cache can hold either key, not both.
	c.SetBudget(oneEntry)

	_, r2, err := c.Get("bctest", topology.Params{N: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	r2.Release()
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("after over-budget insert: Evictions = %d, Entries = %d, want 1, 1",
			st.Evictions, st.Entries)
	}
	if st.Bytes > oneEntry {
		t.Errorf("Bytes = %d exceeds budget %d with an idle victim available", st.Bytes, oneEntry)
	}
	// The unleveled key was the LRU victim; re-getting it is a miss
	// and evicts the leveled key in turn.
	misses := st.Misses
	_, r3, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Misses != misses+1 {
		t.Errorf("re-Get of evicted key: Misses = %d, want %d", st.Misses, misses+1)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (leveled key was idle LRU)", st.Evictions)
	}
	// Pinned entries are never victims: while r3 is held, a second
	// over-budget insert leaves both entries resident.
	_, r4, err := c.Get("bctest", topology.Params{N: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Entries != 2 {
		t.Errorf("Entries = %d with both keys pinned, want 2 (pins block eviction)", st.Entries)
	}
	// Releases are idempotent and nil-safe; the second Release and the
	// nil Release must be no-ops.
	r3.Release()
	r3.Release()
	var rnil *Ref
	rnil.Release()
	r4.Release()
	st = c.Stats()
	if st.Bytes > oneEntry {
		t.Errorf("Bytes = %d after releases, want <= budget %d", st.Bytes, oneEntry)
	}
}

func TestBuildCacheDisabled(t *testing.T) {
	registerTestFamily()
	c := New(-1)
	before := buildCount.Load()
	for i := 0; i < 3; i++ {
		b, ref, err := c.Get("bctest", topology.Params{N: 4}, false)
		if err != nil {
			t.Fatal(err)
		}
		if ref != nil {
			t.Error("disabled cache returned a non-nil Ref")
		}
		if b.Nodes() != 24 {
			t.Errorf("Nodes() = %d, want 24", b.Nodes())
		}
	}
	st := c.Stats()
	if got := buildCount.Load() - before; got != 3 {
		t.Errorf("disabled cache ran %d builds for 3 Gets, want 3", got)
	}
	if st.Misses != 3 || st.Hits != 0 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("disabled cache stats = %+v, want 3 misses and nothing resident", st)
	}
	if st.BuildNS <= 0 {
		t.Errorf("BuildNS = %d, want > 0 (disabled path still prices builds)", st.BuildNS)
	}
}

func TestBuildCacheErrorNotCached(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	before := buildCount.Load()
	for i := 0; i < 2; i++ {
		_, ref, err := c.Get("bctest", topology.Params{N: -1}, false)
		if err == nil {
			t.Fatal("Get with negative n succeeded, want error")
		}
		if ref != nil {
			t.Error("failed Get returned a non-nil Ref")
		}
	}
	if got := buildCount.Load() - before; got != 2 {
		t.Errorf("failed key retried %d builds, want 2 (errors are not cached)", got)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("failed builds left residency: %+v", st)
	}
}

func TestBuildCacheStatsDelta(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	_, r, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	before := c.Stats()
	_, r, err = c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	d := c.Stats().Delta(before)
	if d.Hits != 1 || d.Misses != 0 || d.BuildNS != 0 {
		t.Errorf("Delta = %+v, want exactly one hit and no build time", d)
	}
	if d.Entries != 1 || d.Bytes != before.Bytes {
		t.Errorf("Delta residency = %d entries / %d bytes, want current values (1 / %d)",
			d.Entries, d.Bytes, before.Bytes)
	}
}

func TestBuildCacheDefaultBudgetSwap(t *testing.T) {
	registerTestFamily()
	c := New(DefaultBudget)
	_, r, err := c.Get("bctest", topology.Params{N: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	// Shrinking below residency drains idle entries immediately.
	c.SetBudget(1)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("SetBudget(1) left residency: %+v", st)
	}
}
