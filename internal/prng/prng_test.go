package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 17; i++ {
		b.Uint64() // consume from b only
	}
	sa, sb := a.Split(3), b.Split(3)
	for i := 0; i < 100; i++ {
		if sa.Uint64() != sb.Uint64() {
			t.Fatal("Split must depend only on seed material, not consumption")
		}
	}
}

func TestSplitStreamsDistinct(t *testing.T) {
	root := New(9)
	a, b := root.Split(0), root.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("substreams 0 and 1 collided %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) should panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniform(t *testing.T) {
	// Chi-squared check of Intn(10) over 100k draws. With 9 degrees of
	// freedom the 99.9th percentile is ~27.9; use 40 for slack since
	// the seed is fixed and the test must never flake.
	s := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 40 {
		t.Fatalf("Intn(10) not uniform: chi2 = %.1f, counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over 0..3.
	s := New(13)
	var counts [4]int
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[s.Perm(4)[0]]++
	}
	for v, c := range counts {
		if c < draws/4-draws/40 || c > draws/4+draws/40 {
			t.Fatalf("Perm(4)[0]=%d occurred %d times, want ~%d", v, c, draws/4)
		}
	}
}

func TestShuffleSliceMatchesShuffle(t *testing.T) {
	a := New(21)
	b := New(21)
	p := a.Perm(50)
	q := make([]int, 50)
	for i := range q {
		q[i] = i
	}
	b.ShuffleSlice(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("ShuffleSlice must consume randomness exactly like Shuffle")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += s.Intn(1000)
	}
	_ = sink
}
