// Package prng provides the deterministic pseudo-random number
// generators used by every randomized component in this repository.
//
// All experiments in the paper are randomized ("with high probability"
// bounds), so reproducibility demands that every source of randomness
// be an explicit, seedable stream. We use splitmix64 for seeding and
// stream-splitting and xoshiro256** for bulk generation; both are tiny,
// fast, and have well-understood statistical behaviour. Per-node
// substreams are derived with Split so that sequential and
// goroutine-parallel simulation consume identical random choices.
package prng

import "math/bits"

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used for seeding xoshiro and for deriving substreams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. It is not safe for concurrent
// use; derive one Source per goroutine with Split.
type Source struct {
	s    [4]uint64
	seed uint64
}

// New returns a Source seeded from the given 64-bit seed. Distinct
// seeds yield statistically independent streams.
func New(seed uint64) *Source {
	src := Source{seed: seed}
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives the i-th substream of s without perturbing s's own
// sequence. Substreams with distinct indices are independent, and the
// derivation depends only on s's original seed, not on how much of s
// has been consumed, so parallel and sequential simulations that hand
// substream i to node i see identical randomness.
func (s *Source) Split(i uint64) *Source {
	sm := s.seed ^ 0x6a09e667f3bcc909
	base := splitmix64(&sm)
	mix := base ^ bits.RotateLeft64(i*0xd1342543de82ef95+0x2545f4914f6cdd1d, 17)
	return New(mix)
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with non-positive n")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), bound)
		}
	}
	return int(hi)
}

// Uint64n returns a uniformly random uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n called with zero n")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1.0p-53
}

// Perm returns a uniformly random permutation of [0, n) as a slice,
// generated with the Fisher–Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random in place.
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleSlice permutes the first n elements addressed by swap
// uniformly at random, for callers with non-int element types.
func (s *Source) ShuffleSlice(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
