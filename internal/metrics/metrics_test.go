package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("E7: mesh routing", "n", "rounds", "rounds/n")
	tb.AddRow("16", "38", "2.38")
	tb.AddRow("256", "530", "2.07")
	out := tb.String()
	for _, want := range []string{"E7: mesh routing", "rounds/n", "256", "2.07", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRowf("%d|%.2f", 3, 1.5)
	if !strings.Contains(tb.String(), "1.50") {
		t.Fatal("AddRowf formatting lost")
	}
}

func TestTablePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no columns": func() { NewTable("x") },
		"bad row":    func() { NewTable("x", "a", "b").AddRow("1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 3, 3, 3, 9} {
		h.Observe(v)
	}
	if h.Total() != 7 || h.Count(3) != 3 || h.Max() != 9 {
		t.Fatalf("histogram stats wrong: total=%d count3=%d max=%d", h.Total(), h.Count(3), h.Max())
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("median = %d, want 2", q)
	}
	if q := h.Quantile(1.0); q != 9 {
		t.Fatalf("q100 = %d, want 9", q)
	}
	if q := h.Quantile(0.0); q != 1 {
		t.Fatalf("q0 = %d, want 1", q)
	}
	if !strings.Contains(h.String(), "3: 3") {
		t.Fatalf("histogram string:\n%s", h.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Max() != 0 || h.Total() != 0 {
		t.Fatal("empty histogram stats")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("quantile of empty histogram should panic")
		}
	}()
	h.Quantile(0.5)
}

func TestSeriesFit(t *testing.T) {
	s := NewSeries("mesh")
	for n := 1; n <= 8; n++ {
		s.Add(float64(n), 2*float64(n)+5)
	}
	slope, intercept, r2 := s.Fit()
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-5) > 1e-9 || r2 < 0.999 {
		t.Fatalf("fit = %v %v %v", slope, intercept, r2)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSeriesRatioSummary(t *testing.T) {
	s := NewSeries("r")
	s.Add(10, 20)
	s.Add(20, 60)
	sum := s.RatioSummary()
	if sum.Min != 2 || sum.Max != 3 || sum.Mean != 2.5 {
		t.Fatalf("ratio summary %+v", sum)
	}
}
