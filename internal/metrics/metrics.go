// Package metrics provides the reporting primitives the benchmark
// harness uses to regenerate the paper's results: aligned ASCII
// tables (one per experiment), integer histograms (queue-occupancy
// distributions), and labelled measurement series with linear-fit
// summaries ("measured time = a·n + b").
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pramemu/internal/mathx"
)

// Table is a titled, column-aligned ASCII table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	if len(headers) == 0 {
		panic("metrics: table needs at least one column")
	}
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; it panics if the cell count mismatches the
// header count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns",
			len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...interface{}) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Histogram counts integer observations.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: make(map[int]int)} }

// Observe records one value.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Count returns how many times v was observed.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the smallest value v such that at least fraction q
// of observations are <= v. It panics on an empty histogram.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		panic("metrics: quantile of empty histogram")
	}
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	need := int(q * float64(h.total))
	if need < 1 {
		need = 1
	}
	seen := 0
	for _, v := range keys {
		seen += h.counts[v]
		if seen >= need {
			return v
		}
	}
	return keys[len(keys)-1]
}

// String renders "value: count" lines in ascending order.
func (h *Histogram) String() string {
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, v := range keys {
		fmt.Fprintf(&b, "%6d: %d\n", v, h.counts[v])
	}
	return b.String()
}

// Series is a labelled sequence of (x, y) measurements with repeats:
// one experiment sweep, e.g. x = mesh side n, y = routing rounds.
type Series struct {
	Label string
	xs    []float64
	ys    []float64
}

// NewSeries creates an empty series.
func NewSeries(label string) *Series { return &Series{Label: label} }

// Add records a measurement.
func (s *Series) Add(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.xs) }

// Fit returns the least-squares slope, intercept and r² of y against
// x — the "measured constant" in front of the theorem's leading term.
func (s *Series) Fit() (slope, intercept, r2 float64) {
	return mathx.LinearFit(s.xs, s.ys)
}

// RatioSummary summarizes y/x over all points (mean and max), a
// scale-free way to report "time per unit of diameter".
func (s *Series) RatioSummary() mathx.Summary {
	ratios := make([]float64, len(s.xs))
	for i := range s.xs {
		ratios[i] = s.ys[i] / s.xs[i]
	}
	return mathx.Summarize(ratios)
}
