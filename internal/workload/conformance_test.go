// Registry conformance: one property suite that every registered
// workload generator must pass on every compatible topology —
// the sibling of internal/topology/conformance_test.go. A generator
// registered tomorrow is covered automatically: destinations in
// range, exact packet counts per traffic class, bijectivity for
// permutation-class workloads, bit-identical output for the same seed
// across two calls and across the arena/non-arena allocation paths,
// and distance bounds for the local class.
package workload_test

import (
	"testing"

	"pramemu/internal/packet"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
	"pramemu/internal/workload"
)

// conformanceTopos spans the capability space: square and non-square
// node counts, powers of two and factorials, coordinate grids,
// taken-sensitive graphs and a leveled-only family.
var conformanceTopos = []struct {
	family string
	p      topology.Params
}{
	{"star", topology.Params{N: 4}},           // 24 nodes: not square, not pow2
	{"hypercube", topology.Params{N: 4}},      // 16: pow2 and square
	{"torus", topology.Params{N: 4, K: 2}},    // 16: coordinates, pow2, square
	{"mesh", topology.Params{N: 5}},           // 25: coordinates, square
	{"shuffle", topology.Params{N: 3}},        // 27: taken-sensitive
	{"debruijn", topology.Params{N: 4, K: 2}}, // 16: taken-sensitive, pow2
	{"butterfly", topology.Params{N: 3}},      // leveled-only: no graph view
}

// seededGenerators lists the generators whose output must vary with
// the seed; the rest are fixed patterns of the node count.
var seededGenerators = map[string]bool{
	"perm": true, "relation": true, "hotspot": true, "khot": true, "local": true,
}

func conformanceBuilt(t *testing.T) []topology.Built {
	t.Helper()
	out := make([]topology.Built, 0, len(conformanceTopos))
	for _, c := range conformanceTopos {
		b, err := topology.Build(c.family, c.p)
		if err != nil {
			t.Fatalf("%s%+v: %v", c.family, c.p, err)
		}
		out = append(out, b)
	}
	return out
}

func TestWorkloadRegistryConformance(t *testing.T) {
	built := conformanceBuilt(t)
	for _, name := range workload.Names() {
		gen, ok := workload.Lookup(name)
		if !ok {
			t.Fatalf("Names returned unknown generator %q", name)
		}
		compatible := 0
		for _, b := range built {
			if err := gen.Check(b); err != nil {
				// Incompatible pairs must fail through Generate with
				// the same capability-naming error.
				if _, gerr := workload.Generate(name, b, workload.Params{}, nil, 7); gerr == nil {
					t.Errorf("%s on %s: Check rejects (%v) but Generate accepts", name, b.Name(), err)
				}
				continue
			}
			compatible++
			t.Run(name+"/"+b.Name(), func(t *testing.T) {
				checkGenerator(t, name, gen, b)
			})
		}
		if compatible == 0 {
			t.Errorf("generator %q is compatible with no conformance topology", name)
		}
	}
}

func checkGenerator(t *testing.T, name string, gen workload.Generator, b topology.Built) {
	const seed = 7
	p := workload.Params{}
	first, err := workload.Generate(name, b, p, nil, seed)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	second, err := workload.Generate(name, b, p, nil, seed)
	if err != nil {
		t.Fatalf("regenerate: %v", err)
	}
	arena := packet.NewArena()
	third, err := workload.Generate(name, b, p, arena, seed)
	if err != nil {
		t.Fatalf("arena generate: %v", err)
	}
	if len(first) != len(second) || len(first) != len(third) {
		t.Fatalf("lengths diverge: %d / %d / %d", len(first), len(second), len(third))
	}
	for i := range first {
		if !samePacket(first[i], second[i]) {
			t.Fatalf("packet %d differs across same-seed calls: %+v vs %+v", i, first[i], second[i])
		}
		if !samePacket(first[i], third[i]) {
			t.Fatalf("packet %d differs across heap/arena paths: %+v vs %+v", i, first[i], third[i])
		}
		if third[i] != arena.At(i) {
			t.Fatalf("packet %d not arena-allocated", i)
		}
	}

	nodes := b.Nodes()
	want := nodes
	if gen.Class == workload.ClassRelation {
		want = nodes * p.Defaulted().H
	}
	if len(first) != want {
		t.Fatalf("%d packets, want %d (class %s)", len(first), want, gen.Class)
	}
	seen := make(map[int]int, nodes)
	ids := make(map[int]bool, len(first))
	for _, pk := range first {
		if pk.Src < 0 || pk.Src >= nodes || pk.Dst < 0 || pk.Dst >= nodes {
			t.Fatalf("packet %d->%d out of range [0,%d)", pk.Src, pk.Dst, nodes)
		}
		if ids[pk.ID] {
			t.Fatalf("duplicate packet ID %d", pk.ID)
		}
		ids[pk.ID] = true
		seen[pk.Dst]++
	}
	switch gen.Class {
	case workload.ClassPermutation:
		for dst, count := range seen {
			if count != 1 {
				t.Fatalf("destination %d hit %d times; permutation class must be bijective", dst, count)
			}
		}
		if len(seen) != nodes {
			t.Fatalf("permutation covers %d of %d destinations", len(seen), nodes)
		}
	case workload.ClassRelation:
		h := p.Defaulted().H
		for dst, count := range seen {
			if count > h {
				t.Fatalf("destination %d receives %d > h=%d packets", dst, count, h)
			}
		}
	case workload.ClassLocal:
		checkLocalDistances(t, b.Graph, first, p.Defaulted().D)
	}

	if seededGenerators[name] {
		other, err := workload.Generate(name, b, p, nil, seed+1)
		if err != nil {
			t.Fatalf("reseed: %v", err)
		}
		same := true
		for i := range first {
			if first[i].Dst != other[i].Dst || first[i].Addr != other[i].Addr {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("generator %q ignores its seed", name)
		}
	}
}

// checkLocalDistances verifies every local-class packet's destination
// lies within BFS distance d of its source.
func checkLocalDistances(t *testing.T, g topology.Graph, pkts []*packet.Packet, d int) {
	t.Helper()
	n := g.Nodes()
	dist := make([]int, n)
	for _, pk := range pkts {
		for i := range dist {
			dist[i] = -1
		}
		dist[pk.Src] = 0
		frontier := []int{pk.Src}
		for depth := 0; depth < d && dist[pk.Dst] == -1; depth++ {
			var next []int
			for _, u := range frontier {
				for s := 0; s < g.Degree(u); s++ {
					if v := g.Neighbor(u, s); dist[v] == -1 {
						dist[v] = depth + 1
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		if dist[pk.Dst] == -1 || dist[pk.Dst] > d {
			t.Fatalf("packet %d->%d beyond BFS distance %d", pk.Src, pk.Dst, d)
		}
	}
}

func samePacket(a, b *packet.Packet) bool {
	return a.ID == b.ID && a.Src == b.Src && a.Dst == b.Dst &&
		a.Kind == b.Kind && a.Addr == b.Addr && a.Value == b.Value && a.Proc == b.Proc
}
