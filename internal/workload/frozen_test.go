// The frozen-adversary mechanism: encode/decode round-trips exactly,
// hostile bytes never panic (the fuzz target), registration is
// idempotent and node-count-gated, and candidate slots overwrite and
// deregister cleanly.
package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pramemu/internal/prng"
	"pramemu/internal/topology"
	_ "pramemu/internal/topology/families"
)

// sameFrozen compares two frozen workloads field by field (the
// package itself defines a function named reflect, so DeepEqual is
// off the table here).
func sameFrozen(a, b Frozen) bool {
	return a.Name == b.Name && a.Family == b.Family && a.N == b.N &&
		a.K == b.K && a.Nodes == b.Nodes && a.Seed == b.Seed &&
		a.Trials == b.Trials && a.Rounds == b.Rounds && a.MaxQ == b.MaxQ &&
		a.Note == b.Note && permEqual(a.Perm, b.Perm)
}

func testFrozen(name string, nodes int) Frozen {
	return Frozen{
		Name: name, Family: "hypercube", N: 4, Nodes: nodes,
		Seed: 1991, Trials: 2, Rounds: 9, MaxQ: 5, Note: "test fixture",
		Perm: prng.New(42).Perm(nodes),
	}
}

func TestFrozenRoundTrip(t *testing.T) {
	f := testFrozen("rt", 16)
	data, err := EncodeFrozen(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrozen(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFrozen(got, f) {
		t.Fatalf("round trip mutated the frozen workload:\n%+v\n%+v", got, f)
	}
	if got.WorkloadName() != "adv:hypercube:rt" {
		t.Fatalf("workload name %q", got.WorkloadName())
	}
}

func TestFrozenDecodeRejects(t *testing.T) {
	good, err := EncodeFrozen(testFrozen("bad", 8))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOTAPERM" + string(good[8:])),
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0x01),
		"header only": good[:12],
	}
	// Out-of-range and repeated destinations, patched into the varint
	// tail (entries of an 8-node permutation encode in one byte each).
	oor := append([]byte{}, good...)
	oor[len(oor)-1] = 200
	cases["out of range"] = oor
	dup := append([]byte{}, good...)
	dup[len(dup)-1] = dup[len(dup)-2]
	cases["not bijective"] = dup
	for name, data := range cases {
		if _, err := DecodeFrozen(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

func TestFrozenEncodeValidates(t *testing.T) {
	for name, f := range map[string]Frozen{
		"no name":       {Family: "mesh", Nodes: 2, Perm: []int{1, 0}},
		"colon in name": {Name: "a:b", Family: "mesh", Nodes: 2, Perm: []int{1, 0}},
		"node mismatch": {Name: "x", Family: "mesh", Nodes: 3, Perm: []int{1, 0}},
		"not a perm":    {Name: "x", Family: "mesh", Nodes: 2, Perm: []int{1, 1}},
		"out of range":  {Name: "x", Family: "mesh", Nodes: 2, Perm: []int{1, 5}},
	} {
		if _, err := EncodeFrozen(f); err == nil {
			t.Errorf("%s: encode accepted an invalid frozen workload", name)
		}
	}
}

func TestRegisterFrozenIdempotentAndGated(t *testing.T) {
	f := testFrozen("gate", 16)
	if err := RegisterFrozen(f); err != nil {
		t.Fatal(err)
	}
	defer Deregister(f.WorkloadName())
	// Same contents again: a no-op, not a duplicate-registration panic.
	if err := RegisterFrozen(f); err != nil {
		t.Fatalf("idempotent re-registration failed: %v", err)
	}
	// Same name, different permutation: refused.
	g := f
	g.Perm = append([]int{}, f.Perm...)
	g.Perm[0], g.Perm[1] = g.Perm[1], g.Perm[0]
	if err := RegisterFrozen(g); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
	gen, ok := Lookup(f.WorkloadName())
	if !ok {
		t.Fatalf("frozen workload not in the registry")
	}
	cube, err := topology.Build("hypercube", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Check(cube); err != nil {
		t.Fatalf("frozen workload refused its own instance: %v", err)
	}
	star, err := topology.Build("star", topology.Params{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.Check(star); err == nil || !strings.Contains(err.Error(), "pinned to 16 nodes") {
		t.Fatalf("frozen workload accepted a 24-node topology: %v", err)
	}
	// The generator realizes exactly the frozen table.
	pkts, err := Generate(f.WorkloadName(), cube, Params{}, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, pk := range pkts {
		if pk.Src != i || pk.Dst != f.Perm[i] {
			t.Fatalf("packet %d routes %d->%d, want %d->%d", i, pk.Src, pk.Dst, i, f.Perm[i])
		}
	}
	if got, ok := LookupFrozen(f.WorkloadName()); !ok || !sameFrozen(got, f) {
		t.Fatalf("LookupFrozen lost the metadata: %+v", got)
	}
}

func TestRegisterPermOverwritesAndDeregisters(t *testing.T) {
	const name = "adv:cand:test"
	if err := RegisterPerm(name, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	// Overwrite is the point of the candidate slot.
	if err := RegisterPerm(name, []int{0, 1}); err != nil {
		t.Fatalf("candidate overwrite failed: %v", err)
	}
	if err := RegisterPerm(name, []int{0, 0}); err == nil {
		t.Fatal("non-bijective candidate accepted")
	}
	if !Deregister(name) {
		t.Fatal("Deregister missed the candidate")
	}
	if Deregister(name) {
		t.Fatal("Deregister found a removed candidate")
	}
	if _, ok := Lookup(name); ok {
		t.Fatal("candidate survived Deregister")
	}
}

func TestLoadFrozenDir(t *testing.T) {
	dir := t.TempDir()
	f := testFrozen("dirload", 16)
	path, err := WriteFrozenFile(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "hypercube-dirload.advperm" {
		t.Fatalf("unexpected frozen file name %q", path)
	}
	// A stray non-frozen file is skipped, not an error.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer Deregister(f.WorkloadName())
	for pass := 0; pass < 2; pass++ { // idempotent across repeated loads
		n, err := LoadFrozenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("pass %d loaded %d frozen workloads, want 1", pass, n)
		}
	}
	if _, ok := LookupFrozen(f.WorkloadName()); !ok {
		t.Fatal("loaded frozen workload not registered")
	}
	if n, err := LoadFrozenDir(filepath.Join(dir, "missing")); n != 0 || err != nil {
		t.Fatalf("missing directory: %d, %v", n, err)
	}
	// A corrupt file names its path in the error.
	if err := os.WriteFile(filepath.Join(dir, "bad.advperm"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrozenDir(dir); err == nil || !strings.Contains(err.Error(), "bad.advperm") {
		t.Fatalf("corrupt file error %v does not name the file", err)
	}
}

// FuzzFrozenWorkload drives hostile bytes through the decode path —
// it must reject or accept but never panic — and, via the seed
// corpus, keeps the encode→decode round trip honest.
func FuzzFrozenWorkload(f *testing.F) {
	for _, nodes := range []int{1, 2, 8, 16} {
		data, err := EncodeFrozen(testFrozen("fuzz", nodes))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(frozenMagic))
	f.Add([]byte(frozenMagic + "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrozen(data)
		if err != nil {
			return
		}
		// Anything decode accepts must re-encode to the same frozen
		// workload (not necessarily the same bytes — varint lengths
		// canonicalize) and pass validation.
		out, err := EncodeFrozen(fr)
		if err != nil {
			t.Fatalf("decoded frozen workload fails to re-encode: %v", err)
		}
		back, err := DecodeFrozen(out)
		if err != nil {
			t.Fatalf("re-encoded frozen workload fails to decode: %v", err)
		}
		if !sameFrozen(back, fr) {
			t.Fatalf("round trip mutated the frozen workload:\n%+v\n%+v", back, fr)
		}
	})
}
